// Sharded: partition the key space across independent template trees.
// Each shard is a complete 3-path tree — its own engine, simulated-HTM
// context, and fallback indicator — so update traffic on disjoint key
// ranges never shares a conflict domain. Point operations route to the
// owning shard; range queries fan out across shard boundaries and come
// back globally key-ordered; statistics and invariant checks aggregate.
//
// With AtomicRangeQueries the fan-out is also atomic ACROSS shards:
// every shard carries a version monitor its updaters advance at commit,
// and a multi-shard read retries until no shard's version moved while
// it ran — so the merged result is a consistent cut, and KeySum may run
// concurrently with the writers.
package main

import (
	"fmt"
	"log"
	"sync"

	"htmtree"
)

func main() {
	const keySpan = 1 << 20
	tree, err := htmtree.NewShardedABTree(htmtree.Config{
		Algorithm:          htmtree.ThreePath,
		Shards:             8,
		ShardKeySpan:       keySpan, // balance the partition over the keys we will use
		AtomicRangeQueries: true,    // cross-shard reads are consistent cuts
	})
	if err != nil {
		log.Fatal(err)
	}

	// Eight writers hammer the whole key range; with eight shards their
	// transactions mostly land on different trees.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			for i := 0; i < 50000; i++ {
				k := uint64((g*50000+i)*17)%keySpan + 1
				if i%4 == 3 {
					h.Delete(k)
				} else {
					h.Insert(k, k*2)
				}
			}
		}(g)
	}
	wg.Wait()

	h := tree.NewHandle()
	sum, count := tree.KeySum()
	fmt.Printf("8 shards hold %d keys (key-sum %d)\n", count, sum)

	// This window spans several shard boundaries (shard width is
	// keySpan/8 = 131072); the fan-out result must be globally sorted.
	const shardWidth = keySpan / 8
	lo, hi := uint64(130000), uint64(400000)
	pairs := h.RangeQuery(lo, hi, nil)
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key >= pairs[i].Key {
			log.Fatalf("fan-out range query out of order at %d", i)
		}
	}
	fmt.Printf("range [%d,%d) spans shards %d-%d: %d pairs, sorted\n",
		lo, hi, lo/shardWidth, (hi-1)/shardWidth, len(pairs))

	if err := tree.CheckInvariants(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	fmt.Println("per-shard tree invariants and the partition invariant hold")

	st := tree.Stats()
	fmt.Printf("aggregate ops per path: fast=%d middle=%d fallback=%d\n",
		st.Ops.Fast, st.Ops.Middle, st.Ops.Fallback)
	fmt.Printf("aggregate transactions: %d commits, %d aborts (fast path)\n",
		st.TxCommits.Fast, st.TxAborts.Fast)
	fmt.Printf("atomic cross-shard reads: %d attempts, %d retries, %d escalations\n",
		st.Range.Attempts, st.Range.Retries, st.Range.Escalations)
}
