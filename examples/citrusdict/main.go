// Citrusdict demonstrates the Section 10.1 extension: the CITRUS
// RCU-based internal BST, accelerated with the 3-path template. The
// fallback path pays an rcu.Synchronize (grace-period wait) on every
// two-child delete; the HTM paths eliminate it because the whole delete
// commits atomically. The example measures delete-heavy throughput under
// the plain algorithm and under 3-path.
package main

import (
	"fmt"
	"sync"
	"time"

	"htmtree/internal/citrus"
	"htmtree/internal/engine"
)

func main() {
	fmt.Println("CITRUS internal BST (RCU + fine-grained locks), delete-heavy workload")
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		tput := run(alg)
		fmt.Printf("%-10s %12.0f ops/sec\n", alg, tput)
	}
	fmt.Println("(3-path wins because its transactions make rcu_wait unnecessary)")
}

func run(alg engine.Algorithm) float64 {
	tr := citrus.New(citrus.Config{Algorithm: alg})
	const dur = 300 * time.Millisecond
	const threads = 4

	stop := make(chan struct{})
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.NewHandle()
			n := int64(0)
			rng := uint64(g)*0x9e3779b97f4a7c15 + 1
			for {
				select {
				case <-stop:
					mu.Lock()
					total += n
					mu.Unlock()
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rng%4096 + 1
				if rng&(1<<40) == 0 {
					h.Insert(k, k)
				} else {
					h.Delete(k) // two-child deletes trigger rcu_wait on the fallback path
				}
				n++
			}
		}(g)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		panic(err)
	}
	return float64(total) / dur.Seconds()
}
