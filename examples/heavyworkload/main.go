// Heavyworkload demonstrates the core phenomenon of the paper: under a
// workload where one thread runs large range queries (which overflow the
// HTM capacity and must run on the software fallback path), two-path
// algorithms collapse — TLE serializes behind the fallback path — while
// the 3-path algorithm keeps updates flowing on its middle path.
//
// It runs the same update+range-query workload under every algorithm and
// prints throughput plus where operations completed.
package main

import (
	"fmt"
	"time"

	"htmtree"
)

func main() {
	fmt.Println("workload: 3 update threads + 1 range-query thread, keys [1,20000]")
	fmt.Printf("%-12s %12s %9s %9s %9s\n",
		"algorithm", "updates/sec", "fast%", "middle%", "fallback%")

	for _, alg := range htmtree.Algorithms() {
		tree, err := htmtree.NewABTree(htmtree.Config{Algorithm: alg})
		if err != nil {
			panic(err)
		}
		updates := runWorkload(tree)
		st := tree.Stats()
		tot := float64(st.Ops.Total())
		fmt.Printf("%-12s %12.0f %8.1f%% %8.1f%% %8.1f%%\n",
			alg, updates,
			100*float64(st.Ops.Fast)/tot,
			100*float64(st.Ops.Middle)/tot,
			100*float64(st.Ops.Fallback)/tot)
	}
}

func runWorkload(tree *htmtree.Tree) (updatesPerSec float64) {
	const dur = 300 * time.Millisecond
	stop := make(chan struct{})
	counts := make(chan int, 4)

	// Range-query thread: long scans, the fallback-path residents.
	go func() {
		h := tree.NewHandle()
		var out []htmtree.KV
		for {
			select {
			case <-stop:
				counts <- 0
				return
			default:
			}
			out = h.RangeQuery(1, 15000, out[:0])
		}
	}()
	// Update threads.
	for g := 0; g < 3; g++ {
		go func(g int) {
			h := tree.NewHandle()
			n := 0
			rng := uint64(g)*2654435761 + 1
			for {
				select {
				case <-stop:
					counts <- n
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rng%20000 + 1
				if rng&(1<<32) == 0 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
				n++
			}
		}(g)
	}

	time.Sleep(dur)
	close(stop)
	total := 0
	for i := 0; i < 4; i++ {
		total += <-counts
	}
	return float64(total) / dur.Seconds()
}
