// Quickstart: create a 3-path accelerated (a,b)-tree through the public
// API, use it from several goroutines, and print the execution-path
// statistics that make the three-path design visible.
package main

import (
	"fmt"
	"log"
	"sync"

	"htmtree"
)

func main() {
	tree, err := htmtree.NewABTree(htmtree.Config{Algorithm: htmtree.ThreePath})
	if err != nil {
		log.Fatal(err)
	}

	// One handle per goroutine: handles carry per-thread transaction
	// state, exactly like the per-process contexts in the paper.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			for i := 0; i < 10000; i++ {
				k := uint64(g*10000 + i + 1)
				h.Insert(k, k*2)
			}
		}(g)
	}
	wg.Wait()

	h := tree.NewHandle()
	if v, ok := h.Search(12345); ok {
		fmt.Printf("search(12345) = %d\n", v)
	}
	pairs := h.RangeQuery(100, 120, nil)
	fmt.Printf("range [100,120): %d pairs, first=%v last=%v\n",
		len(pairs), pairs[0], pairs[len(pairs)-1])

	old, existed := h.Delete(12345)
	fmt.Printf("delete(12345) = (%d, %v)\n", old, existed)

	sum, count := tree.KeySum()
	fmt.Printf("tree holds %d keys (key-sum checksum %d)\n", count, sum)
	if err := tree.CheckInvariants(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}

	st := tree.Stats()
	fmt.Printf("operations per path: fast=%d middle=%d fallback=%d\n",
		st.Ops.Fast, st.Ops.Middle, st.Ops.Fallback)
	fmt.Printf("transactions: %d commits, %d aborts (fast path)\n",
		st.TxCommits.Fast, st.TxAborts.Fast)
}
