// Kcaslist demonstrates the Section 10.2 extension: a sorted linked
// list whose updates are k-CAS operations. The fallback path uses a
// software k-CAS built from single-word CAS (descriptors, helping); the
// HTM paths perform the same multi-word update as one transaction, and
// the fast path additionally skips every descriptor check.
package main

import (
	"fmt"
	"sync"
	"time"

	"htmtree/internal/engine"
	"htmtree/internal/kcas"
)

func main() {
	fmt.Println("sorted linked list over k-CAS, 50/50 insert/delete, keys [1,128]")
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		fmt.Printf("%-10s %12.0f ops/sec\n", alg, run(alg))
	}
}

func run(alg engine.Algorithm) float64 {
	l := kcas.NewList(kcas.ListConfig{Algorithm: alg})
	const dur = 300 * time.Millisecond
	const threads = 4

	stop := make(chan struct{})
	var mu sync.Mutex
	var total int64
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := l.NewHandle()
			n := int64(0)
			rng := uint64(g)*0xbf58476d1ce4e5b9 + 7
			for {
				select {
				case <-stop:
					mu.Lock()
					total += n
					mu.Unlock()
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rng%128 + 1
				if rng&(1<<33) == 0 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
				n++
			}
		}(g)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return float64(total) / dur.Seconds()
}
