// Adaptive routing: survive a skewed workload without giving up range
// queries. A range-partitioned sharded tree collapses onto one shard
// when the keys are hot at one end (every update lands on the shard
// owning the hot range — exactly the conflict domain sharding was
// supposed to split). Config.Router offers three ways out:
//
//   - RouterRange (default): fast, order-preserving, skew-sensitive.
//   - RouterHash: scatter keys by a mixing hash — skew-oblivious, but
//     every multi-key range query must visit all shards.
//   - RouterAdaptive (shown here): keep range routing, watch per-shard
//     operation counters, and migrate boundary slices of a hot shard's
//     key range to its neighbors at runtime. A migration briefly
//     quiesces exactly the two shards touching the moved boundary
//     (the same per-shard monitor gates that make AtomicRangeQueries
//     work), moves the keys, and atomically publishes a new routing
//     table — point lookups, range queries and key sums stay correct
//     throughout.
package main

import (
	"fmt"
	"log"
	"sync"

	"htmtree"
)

func main() {
	const keySpan = 1 << 16
	tree, err := htmtree.NewShardedABTree(htmtree.Config{
		Algorithm:    htmtree.ThreePath,
		Shards:       8,
		ShardKeySpan: keySpan,
		Router:       htmtree.RouterAdaptive,
		// React quickly for the demo; defaults are more patient.
		RebalanceCheckOps: 512,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Hot-range workload: 90% of the updates hammer the lowest 1/8 of
	// the key space — with static range routing, all of that would
	// serialize on shard 0.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			rng := uint64(g)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for i := 0; i < 300000; i++ {
				var k uint64
				if next()%10 != 0 {
					k = next()%(keySpan/8) + 1 // hot head
				} else {
					k = next()%keySpan + 1
				}
				if i%4 == 3 {
					h.Delete(k)
				} else {
					h.Insert(k, k*2)
				}
			}
		}(g)
	}
	wg.Wait()

	st := tree.Stats()
	fmt.Printf("rebalancer: %d imbalance checks, %d migrations, %d keys moved\n",
		st.Rebalance.Checks, st.Rebalance.Migrations, st.Rebalance.KeysMoved)
	if st.Rebalance.Migrations == 0 {
		log.Fatal("expected the hot head to trigger migrations")
	}

	// Range queries and key sums survived every migration: the fan-out
	// revalidates per-shard versions, so each result is a consistent cut.
	h := tree.NewHandle()
	pairs := h.RangeQuery(1, keySpan/8, nil)
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key >= pairs[i].Key {
			log.Fatalf("range query out of order at %d", i)
		}
	}
	sum, count := tree.KeySum()
	fmt.Printf("hot range holds %d keys; tree-wide %d keys (key-sum %d)\n",
		len(pairs), count, sum)

	if err := tree.CheckInvariants(); err != nil {
		log.Fatalf("invariant violation after migrations: %v", err)
	}
	fmt.Println("per-shard tree invariants and the partition invariant hold")
	rq := tree.Stats().Range // refreshed: the reads above count too
	fmt.Printf("atomic cross-shard reads: %d attempts, %d retries, %d escalations\n",
		rq.Attempts, rq.Retries, rq.Escalations)
}
