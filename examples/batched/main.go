// Batched: amortize per-operation overhead with the asynchronous API.
//
// Every point operation on a sharded tree pays a fixed toll before it
// touches a node: handle dispatch, a routing-table lookup, and — when
// the tree rebalances — a monitor admission bracket. An AsyncHandle
// buffers operations and flushes them as one key-sorted, shard-grouped
// batch, so that toll is paid once per shard-group instead of once per
// op. Results come back through futures: Wait blocks (flushing first
// if the op is still buffered), OnComplete registers a callback, and a
// flushing RangeQuery is the read-your-writes sync point.
//
// Stats.Batch shows the amortization directly: at batch size 64 on 8
// shards, expect roughly 8 ops per router lookup and per monitor
// bracket — an unbatched stream pays 1.
package main

import (
	"fmt"
	"log"
	"sync"

	"htmtree"
)

func main() {
	const keySpan = 1 << 20
	tree, err := htmtree.NewShardedABTree(htmtree.Config{
		Algorithm:    htmtree.ThreePath,
		Shards:       8,
		ShardKeySpan: keySpan,
		Router:       htmtree.RouterAdaptive, // admitting handles: brackets visible in stats
		BatchMaxOps:  64,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four writers push batched inserts; futures settle per batch.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ah := tree.NewAsyncHandle()
			futs := make([]htmtree.PointFuture, 0, 64)
			for i := 0; i < 50000; i++ {
				k := uint64((g*50000+i)*17)%keySpan + 1
				futs = append(futs, ah.Insert(k, k*2))
				if len(futs) == cap(futs) {
					ah.Flush()
					for _, f := range futs {
						f.Wait() // already resolved; returns (old, existed)
					}
					futs = futs[:0]
				}
			}
			ah.Flush()
		}(g)
	}
	wg.Wait()

	// Callback completion: fires when the enclosing batch flushes.
	ah := tree.NewAsyncHandle()
	done := make(chan struct{})
	ah.Insert(7, 77).OnComplete(func(old uint64, existed bool) {
		fmt.Printf("insert(7) completed: old=%d existed=%v\n", old, existed)
		close(done)
	})
	// A range query flushes the buffer first (read-your-writes), so the
	// callback above has fired by the time it returns.
	pairs := ah.RangeQuery(1, 20).Wait()
	<-done
	fmt.Printf("range [1,20) sees %d keys, first=%d\n", len(pairs), pairs[0].Key)

	// Waiting on a still-buffered future flushes implicitly.
	fut := ah.Delete(7)
	if old, existed := fut.Wait(); !existed || old != 77 {
		log.Fatalf("delete(7) = (%d,%v), want (77,true)", old, existed)
	}

	st := tree.Stats()
	sum, count := tree.KeySum()
	fmt.Printf("tree holds %d keys (key-sum %d)\n", count, sum)
	fmt.Printf("batch: %d ops in %d flushes (%.1f ops/flush), %d shard-groups\n",
		st.Batch.BatchedOps, st.Batch.Flushes,
		float64(st.Batch.BatchedOps)/float64(st.Batch.Flushes), st.Batch.Groups)
	fmt.Printf("amortization: %.1f ops per router lookup, %.1f per monitor bracket (unbatched pays 1.0)\n",
		float64(st.Batch.GroupOps)/float64(st.Batch.RouterLookups),
		float64(st.Batch.GroupOps)/float64(st.Batch.MonitorBrackets))

	if err := tree.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants OK")
}
