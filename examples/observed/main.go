// Observed runs a mixed workload on an instrumented sharded (a,b)-tree
// and serves the live observability endpoint while it runs: Prometheus
// metrics, a JSON variable snapshot, the flight-recorder dump, and the
// standard pprof handlers. Point a browser or curl at it while the
// workload churns — see README.md next to this file for the endpoints.
//
//	go run ./examples/observed -http :6060 -dur 60s
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"htmtree"
	"htmtree/internal/obs"
)

func main() {
	addr := flag.String("http", ":6060", "observability endpoint address")
	dur := flag.Duration("dur", 30*time.Second, "workload duration")
	threads := flag.Int("threads", 4, "update threads (plus one range-query thread)")
	flag.Parse()

	tree, err := htmtree.NewShardedABTree(htmtree.Config{
		Algorithm:     htmtree.ThreePath,
		Shards:        4,
		ShardKeySpan:  1 << 16,
		Observability: &htmtree.ObsConfig{}, // defaults: sampled latency + events
	})
	if err != nil {
		panic(err)
	}

	srv, err := obs.Serve(*addr, tree.Obs)
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("serving observability on http://%s  (/metrics /vars /events /debug/pprof/)\n", srv.Addr())
	fmt.Printf("running %d update threads + 1 range-query thread for %v...\n", *threads, *dur)

	var (
		stop atomic.Bool
		ops  atomic.Uint64
		wg   sync.WaitGroup
	)
	for g := 0; g < *threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			rng := uint64(g)*2654435761 + 1
			for !stop.Load() {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rng%(1<<16) + 1
				if rng&(1<<32) == 0 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
				ops.Add(1)
			}
		}(g)
	}
	// One long-scan thread keeps the fallback path (and its flight-recorder
	// acquire events) warm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tree.NewHandle()
		var out []htmtree.KV
		for !stop.Load() {
			out = h.RangeQuery(1, 1<<15, out[:0])
		}
	}()

	deadline := time.Now().Add(*dur)
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Second)
		fmt.Printf("  %d ops so far, %d flight-recorder events buffered\n",
			ops.Load(), len(tree.Obs().Events()))
	}
	stop.Store(true)
	wg.Wait()

	st := tree.Stats()
	fmt.Printf("done: %d ops (fast %d / middle %d / fallback %d)\n",
		ops.Load(), st.Ops.Fast, st.Ops.Middle, st.Ops.Fallback)
}
