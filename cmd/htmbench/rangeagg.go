package main

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/shard"
	"htmtree/internal/workload"
	"htmtree/internal/xrand"
)

// The rangeagg experiment measures the PR-8 aggregate machinery from
// both ends:
//
//  1. A quiescent sweep of range size x tree size comparing the
//     O(log n) subtree-aggregate descent (Handle.RangeAgg on the
//     (a,b)-tree) against the leaf walk a client would otherwise run
//     (RangeQuery + summation — the BST's RangeAgg implementation, and
//     the only option before maintained aggregates). The walk's cost
//     grows linearly with the range; the descent's does not, so the
//     speedup column grows with the range fraction.
//  2. A concurrent retry comparison on a sharded tree with atomic
//     cross-shard reads: updaters churn the key space while one query
//     thread reads half-keyspace windows either by walking (RangeQuery)
//     or via aggregates (RangeAgg). Both go through the same
//     sample/read/validate protocol, but the aggregate read shrinks the
//     validation window from O(range) to O(shards * log n), which is
//     what makes bounded-retry validation succeed at large ranges — the
//     rq_retries / retries_per_query columns show the drop.

// aggFrac is one range-size point of the sweep: queries span keys/den.
type aggFrac struct {
	name string
	den  uint64
}

var aggFracs = []aggFrac{{"1/64", 64}, {"1/16", 16}, {"1/4", 4}, {"full", 1}}

// aggSweepPoint is one measured (tree size, range fraction) cell.
type aggSweepPoint struct {
	keys, span    uint64
	frac          string
	den           uint64
	aggNs, walkNs float64
	speedup       float64
}

// aggTreeSizes returns the tree sizes swept: one decade below -ab-keys
// (when that stays meaningfully large) plus -ab-keys itself.
func aggTreeSizes(o options) []uint64 {
	if o.abKeys >= 10000 {
		return []uint64{o.abKeys / 10, o.abKeys}
	}
	return []uint64{o.abKeys}
}

// rangeAggSweep fills an (a,b)-tree with every key of [1, keys] and
// time-boxes random-window queries of each fraction through both
// implementations. The full fill makes every window's tuple known in
// closed form, so each cell is also a correctness check.
func rangeAggSweep(o options) []aggSweepPoint {
	var pts []aggSweepPoint
	for _, keys := range aggTreeSizes(o) {
		spec := workload.Spec{
			Structure: "abtree",
			Algorithm: engine.AlgThreePath,
			HTM:       o.htmCfg(htm.Config{}),
			Policy:    o.policy,
		}
		d := o.newDict(spec)
		h := d.NewHandle()
		ah := h.(dict.AggHandle)
		for k := uint64(1); k <= keys; k++ {
			h.Insert(k, k)
		}
		var out []dict.KV
		for _, f := range aggFracs {
			span := keys / f.den
			if span == 0 {
				continue
			}
			wantSum := func(lo uint64) uint64 { return (2*lo + span - 1) * span / 2 }
			measure := func(fn func(lo uint64)) float64 {
				rng := xrand.New(o.seed, f.den)
				deadline := time.Now().Add(o.duration)
				var n uint64
				start := time.Now()
				for n < 8 || time.Now().Before(deadline) {
					fn(rng.Uint64n(keys-span+1) + 1)
					n++
				}
				return float64(time.Since(start).Nanoseconds()) / float64(n)
			}
			aggNs := measure(func(lo uint64) {
				a, err := ah.RangeAgg(lo, lo+span)
				if err != nil || a.Sum != wantSum(lo) || a.Count != span {
					fmt.Fprintf(os.Stderr, "WARNING: rangeagg[%d,%d) = (%+v, %v), want sum %d count %d\n",
						lo, lo+span, a, err, wantSum(lo), span)
				}
			})
			walkNs := measure(func(lo uint64) {
				out = h.RangeQuery(lo, lo+span, out[:0])
				var sum uint64
				for _, p := range out {
					sum += p.Key
				}
				if sum != wantSum(lo) {
					fmt.Fprintf(os.Stderr, "WARNING: walk sum[%d,%d) = %d, want %d\n",
						lo, lo+span, sum, wantSum(lo))
				}
			})
			pts = append(pts, aggSweepPoint{
				keys: keys, span: span, frac: f.name, den: f.den,
				aggNs: aggNs, walkNs: walkNs, speedup: walkNs / aggNs,
			})
		}
	}
	return pts
}

// aggRetryResult is one concurrent retry-comparison window.
type aggRetryResult struct {
	updates, queries uint64
	stats            shard.RQStats
}

// rangeAggRetryTrial churns a sharded atomic (a,b)-tree with u updaters
// while one query thread reads half-keyspace windows in the given mode
// ("walk" = RangeQuery + sum, "agg" = RangeAgg).
func rangeAggRetryTrial(o options, shards, u int, mode string, seed uint64) aggRetryResult {
	keyRange := o.abKeys
	spec := workload.Spec{
		Structure: "abtree",
		Algorithm: engine.AlgThreePath,
		Shards:    shards,
		KeySpan:   keyRange,
		AtomicRQ:  true,
		HTM:       o.htmCfg(htm.Config{}),
		Policy:    o.policy,
	}
	d := o.newDict(spec)
	hp := d.NewHandle()
	for k := uint64(1); k <= keyRange; k += 2 { // prefill half the keys
		hp.Insert(k, k)
	}
	var (
		stop    atomic.Bool
		updates atomic.Uint64
		queries atomic.Uint64
		wg      sync.WaitGroup
	)
	for g := 0; g < u; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := d.NewHandle()
			rng := xrand.New(seed, uint64(g)+1)
			var done uint64
			for !stop.Load() {
				k := rng.Uint64n(keyRange) + 1
				if rng.Next()&1 == 0 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
				done++
			}
			updates.Add(done)
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := d.NewHandle()
		ah := h.(dict.AggHandle)
		rng := xrand.New(seed, 0xa66)
		span := keyRange / 2
		var out []dict.KV
		var done uint64
		for !stop.Load() {
			lo := rng.Uint64n(keyRange-span+1) + 1
			if mode == "agg" {
				if _, err := ah.RangeAgg(lo, lo+span); err != nil {
					fmt.Fprintf(os.Stderr, "WARNING: rangeagg retry trial: %v\n", err)
					return
				}
			} else {
				out = h.RangeQuery(lo, lo+span, out[:0])
				var sum uint64
				for _, p := range out {
					sum += p.Key
				}
				_ = sum
			}
			done++
		}
		queries.Add(done)
	}()
	time.Sleep(o.duration)
	stop.Store(true)
	wg.Wait()
	return aggRetryResult{
		updates: updates.Load(),
		queries: queries.Load(),
		stats:   d.(*shard.Dict).RQStats(),
	}
}

// rangeAggRetryMedians runs the retry comparison for both modes,
// o.trials times each, and returns the per-mode median (by query
// throughput).
func rangeAggRetryMedians(o options, shards, u int) map[string]aggRetryResult {
	med := make(map[string]aggRetryResult, 2)
	for _, mode := range []string{"walk", "agg"} {
		results := make([]aggRetryResult, 0, o.trials)
		for i := 0; i < o.trials; i++ {
			results = append(results, rangeAggRetryTrial(o, shards, u, mode, trialSeed(o.seed, i)))
		}
		sort.Slice(results, func(i, j int) bool { return results[i].queries < results[j].queries })
		med[mode] = results[len(results)/2]
	}
	return med
}

func rangeAggShards(o options) int {
	if o.shards >= 2 {
		return o.shards
	}
	return 8
}

func rangeAgg(o options) {
	fmt.Println("# Range aggregates: O(log n) subtree-aggregate queries vs leaf walks (abtree, 3-path)")
	fmt.Println("# extras: keys, range_keys, frac, agg_ns_per_query, walk_ns_per_query, speedup")
	for _, p := range rangeAggSweep(o) {
		row{experiment: "rangeagg", structure: "abtree", algorithm: "3-path",
			threads: 1, shards: 1,
			extras: []string{
				kv("keys", "%d", p.keys),
				kv("range_keys", "%d", p.span),
				kv("frac", "%s", p.frac),
				kv("agg_ns_per_query", "%.0f", p.aggNs),
				kv("walk_ns_per_query", "%.0f", p.walkNs),
				kv("speedup", "%.1f", p.speedup),
			}}.emit()
	}

	shards := rangeAggShards(o)
	n := o.threads[len(o.threads)-1]
	u := n - 1
	if u < 1 {
		u = 1
	}
	fmt.Printf("# Atomic half-keyspace reads under churn: %d updaters + 1 query thread, %d shards\n", u, shards)
	fmt.Println("# extras: mode, updaters, updates_per_sec, queries_per_sec, rq_attempts, rq_retries, rq_escalations, retries_per_query")
	med := rangeAggRetryMedians(o, shards, u)
	secs := o.duration.Seconds()
	for _, mode := range []string{"walk", "agg"} {
		r := med[mode]
		retPerQ := 0.0
		if r.queries > 0 {
			retPerQ = float64(r.stats.Retries) / float64(r.queries)
		}
		row{experiment: "rangeagg", structure: "abtree", algorithm: "3-path",
			threads: u + 1, shards: shards,
			extras: []string{
				kv("mode", "%s", mode),
				kv("updaters", "%d", u),
				kv("updates_per_sec", "%.0f", float64(r.updates)/secs),
				kv("queries_per_sec", "%.0f", float64(r.queries)/secs),
				kv("rq_attempts", "%d", r.stats.Attempts),
				kv("rq_retries", "%d", r.stats.Retries),
				kv("rq_escalations", "%d", r.stats.Escalations),
				kv("retries_per_query", "%.3f", retPerQ),
			}}.emit()
	}
}

// rangeAggJSONRows renders the same measurements as machine-readable
// rows for the committed BENCH_*.json baselines: one row per sweep
// cell (named rangeagg/abtree/keys<N>/den<D>) and one per retry mode
// (rangeagg-retries/abtree/x<shards>/<mode>), with the
// experiment-specific numbers in the extras map.
func rangeAggJSONRows(o options) []jsonRow {
	var rows []jsonRow
	for _, p := range rangeAggSweep(o) {
		r := jsonRow{
			Schema:     schemaVersion,
			Name:       fmt.Sprintf("rangeagg/abtree/keys%d/den%d", p.keys, p.den),
			Throughput: 1e9 / p.aggNs,
			NsOp:       p.aggNs,
			Extras: map[string]float64{
				"range_keys":        float64(p.span),
				"agg_ns_per_query":  p.aggNs,
				"walk_ns_per_query": p.walkNs,
				"speedup":           p.speedup,
			},
		}
		rows = append(rows, r)
	}
	shards := rangeAggShards(o)
	n := o.threads[len(o.threads)-1]
	u := n - 1
	if u < 1 {
		u = 1
	}
	med := rangeAggRetryMedians(o, shards, u)
	secs := o.duration.Seconds()
	for _, mode := range []string{"walk", "agg"} {
		r := med[mode]
		retPerQ := 0.0
		if r.queries > 0 {
			retPerQ = float64(r.stats.Retries) / float64(r.queries)
		}
		jr := jsonRow{
			Schema:     schemaVersion,
			Name:       fmt.Sprintf("rangeagg-retries/abtree/x%d/%s", shards, mode),
			Throughput: float64(r.queries) / secs,
			Extras: map[string]float64{
				"updaters":          float64(u),
				"updates_per_sec":   float64(r.updates) / secs,
				"rq_attempts":       float64(r.stats.Attempts),
				"rq_retries":        float64(r.stats.Retries),
				"rq_escalations":    float64(r.stats.Escalations),
				"retries_per_query": retPerQ,
			},
		}
		if r.queries > 0 {
			jr.NsOp = 1e9 * secs / float64(r.queries)
		}
		rows = append(rows, jr)
	}
	return rows
}
