package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/fault"
	"htmtree/internal/htm"
	"htmtree/internal/workload"
	"htmtree/internal/xrand"
)

// The chaos experiment arms the deterministic fault-injection plane
// (internal/fault) against live workloads and reports survival metrics
// rather than performance: did the key-sum checksum hold under an abort
// storm, how many operations the rest of the system completed while an
// announced fallback owner was stalled or dead, how many announced
// operations helpers finished on a dead owner's behalf, and how long
// operations waited behind stalled quiesce gates and migrations.
//
// Every family derives its seed from -seed through trialSeed, and each
// row records the seed and the compiled plan, so a failing row
// reproduces exactly from the printed (seed, plan) pair.
//
// Families:
//
//   - abort-storm: probabilistic forced aborts on every transactional
//     access, one row per injected cause. Safety: key-sum must hold.
//   - owner-stall: the announced helpable-fallback owner sleeps 2ms on
//     every 16th fallback entry. Liveness: the watchdog requires other
//     threads to complete operations inside every stall window.
//   - owner-death: the announced owner parks forever (a crashed
//     thread). Peers must help the announced operation to completion;
//     the row reports kills, helps and the minimum progress observed
//     during any kill window. Key-sum is not checked — a killed
//     worker's in-flight operation completes via helpers but its
//     accounting delta is lost with the goroutine (the exact-safety
//     twin of this family lives in internal/modelcheck's chaos
//     battery, which replays intent logs through the sequential
//     model).
//   - migrate: stalls inside the adaptive router's quiesce gates and
//     between migration steps (shard swap, stale-key deletion) under a
//     skewed workload that forces rebalancing. Safety: key-sum holds
//     across interrupted migrations; max_wait_ns bounds the worst
//     operation wait behind a held gate.
//   - ebr-pin: reclamation threads stall while their epoch pin is
//     announced, delaying grace periods. Safety: key-sum.
//   - agg-stall: the aggregate-fixup seqlock writer stalls mid-fixup
//     (version odd) under the analytics mix. Safety: key-sum plus
//     completed aggregate queries (readers must retry, not wedge).
//   - batch-delay: batched updaters' pipeline flushes stall. Safety:
//     key-sum across delayed flushes.
const (
	chaosKeys = 2048
	// Owner-death family shape: kill the announced owner on every 3rd
	// fallback entry until deathKills owners are dead, across
	// deathWorkers update threads on disjoint key ranges.
	deathWorkers = 6
	deathEvery   = 3
	deathKills   = 4
	deathKeys    = uint64(600)
)

// chaosThreads is the worker count for the workload-driven families:
// the -threads sweep's maximum, but at least 4 so stall windows always
// have peers able to make progress.
func chaosThreads(o options) int {
	n := o.threads[len(o.threads)-1]
	if n < 4 {
		n = 4
	}
	return n
}

// chaosRow is one family's survival report; it is both the JSON
// artifact row (the CI chaos guard's input) and the source of the
// uniform CSV row.
type chaosRow struct {
	Schema    int    `json:"schema"`
	Name      string `json:"name"` // structure/chaos/family[/variant]
	Family    string `json:"family"`
	Structure string `json:"structure"`
	Threads   int    `json:"threads"`
	Seed      uint64 `json:"seed"`
	Plan      string `json:"plan"`

	Throughput float64 `json:"throughput"`
	Ops        uint64  `json:"ops"`

	// KeySumChecked is false for the owner-death family (see above);
	// for every other family KeySumOK is the safety verdict.
	KeySumChecked bool `json:"keysum_checked"`
	KeySumOK      bool `json:"keysum_ok"`

	// Fires counts injections actually fired, per point name.
	Fires map[string]uint64 `json:"fires"`

	// Kills is how many owners were parked forever; Helps how many
	// announced fallback operations were completed by a helper-side
	// executor; Dead how many worker goroutines never returned (each a
	// parked owner still holding its goroutine).
	Kills uint64 `json:"kills"`
	Helps uint64 `json:"helps"`
	Dead  int    `json:"dead"`

	// StallWindows/MinWindowOps/LivenessOK come from the fault.Liveness
	// watchdog: windows observed, the minimum operations completed by
	// the rest of the system inside any window, and whether every
	// window saw nonzero progress.
	StallWindows int    `json:"stall_windows"`
	MinWindowOps uint64 `json:"min_window_ops"`
	LivenessOK   bool   `json:"liveness_ok"`

	// MaxWaitNs is the worst single-operation latency (the max-quiesce-
	// wait bound for the migrate family); zero when not measured.
	MaxWaitNs uint64 `json:"max_wait_ns"`

	// Migrations counts boundary migrations survived (migrate family).
	Migrations uint64 `json:"migrations"`
}

// chaosTrialOpts shapes one workload-driven chaos trial.
type chaosTrialOpts struct {
	name, family string
	spec         workload.Spec
	cfg          workload.Config
	plan         *fault.Plan
	// watch attaches a fault.Liveness watchdog: watched stalls open
	// progress windows and the workload's workers feed OpDone.
	watch bool
}

// runChaosTrial runs one family through the standard workload harness.
func runChaosTrial(o options, ct chaosTrialOpts) chaosRow {
	var lv *fault.Liveness
	if ct.watch {
		lv = &fault.Liveness{}
		ct.plan.Watch(lv)
		ct.cfg.Liveness = lv
	}
	ct.spec.Faults = ct.plan
	ct.cfg.Faults = ct.plan // batched updaters arm their pipeline from the config
	d := o.newDict(ct.spec)
	res := workload.Run(d, ct.cfg)
	r := chaosRow{
		Schema:        schemaVersion,
		Name:          ct.name,
		Family:        ct.family,
		Structure:     ct.spec.Structure,
		Threads:       ct.cfg.Threads,
		Seed:          ct.plan.Seed(),
		Plan:          ct.plan.String(),
		Throughput:    res.Throughput,
		Ops:           res.Ops,
		KeySumChecked: true,
		KeySumOK:      res.KeySumOK,
		Fires:         ct.plan.FireCounts(),
		Helps:         res.PathStats.Policy.Helps,
		LivenessOK:    true,
		Migrations:    res.Rebalance.Migrations,
	}
	if res.Latency != nil {
		r.MaxWaitNs = res.Latency.Max()
	}
	if lv != nil {
		lv.Finish()
		r.StallWindows = len(lv.Windows())
		if m, ok := lv.MinProgress(); ok {
			r.MinWindowOps = m
		}
		r.LivenessOK = lv.Check() == nil
	}
	return r
}

// runChaosOwnerDeath is the owner-death family's dedicated runner. The
// standard harness cannot host it: a killed owner parks its goroutine
// forever, so workload.Run's join would hang. This runner gives each
// worker a done channel, joins with a timeout (the stragglers are the
// dead), drains the last announced descriptor through dict.Helper, and
// only then releases the parked goroutines.
func runChaosOwnerDeath(o options, seed uint64) chaosRow {
	plan := fault.New(seed, fault.Rule{
		Point: fault.PointFallbackOwner,
		Every: deathEvery,
		Kill:  true,
		Count: deathKills,
		Watch: true,
	})
	lv := &fault.Liveness{}
	plan.Watch(lv)
	// Unsharded on purpose: a sharded tree's fallback runs inside a
	// monitor bracket, and an owner killed while holding the bracket
	// wedges the quiesce gate forever. SpuriousEvery 1 + AttemptLimit 1
	// push essentially every update onto the helpable fallback, so the
	// kill budget is spent within the first few operations.
	spec := workload.Spec{
		Structure:    "bst",
		Algorithm:    engine.AlgTLE,
		Helpable:     true,
		AttemptLimit: 1,
		HTM:          htm.Config{SpuriousEvery: 1},
		Policy:       o.policy,
		Faults:       plan,
	}
	d := o.newDict(spec)

	var stop atomic.Bool
	done := make([]chan struct{}, deathWorkers)
	for w := 0; w < deathWorkers; w++ {
		done[w] = make(chan struct{})
		go func(w int) {
			defer close(done[w])
			h := d.NewHandle()
			rng := xrand.New(seed, uint64(w)+1)
			span := deathKeys / uint64(deathWorkers)
			lo := uint64(w)*span + 1
			for !stop.Load() {
				k := lo + rng.Uint64n(span)
				if rng.Next()&1 == 0 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
				lv.OpDone()
			}
		}(w)
	}
	time.Sleep(o.duration)
	stop.Store(true)

	// Timeout join: survivors close their channel promptly; a worker
	// that does not is parked inside a kill. The non-blocking first
	// check keeps an already-finished survivor from losing the select
	// race against an expired timer.
	deadline := time.Now().Add(time.Second)
	alive := 0
	for _, ch := range done {
		select {
		case <-ch:
			alive++
			continue
		default:
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-ch:
			alive++
		case <-t.C:
		}
		t.Stop()
	}

	// Drain: the TM has one announcement slot, so at most one killed
	// owner's descriptor can still be pending — every earlier one was
	// necessarily helped to completion before its successor could
	// announce. Helping is idempotent, so loop until it reports idle.
	if helper, ok := d.NewHandle().(dict.Helper); ok {
		for i := 0; i < 8 && helper.Help(); i++ {
		}
	}

	lv.Finish()
	r := chaosRow{
		Schema:        schemaVersion,
		Name:          "bst/chaos/owner-death",
		Family:        "owner-death",
		Structure:     "bst",
		Threads:       deathWorkers,
		Seed:          seed,
		Plan:          plan.String(),
		Throughput:    float64(lv.Ops()) / o.duration.Seconds(),
		Ops:           lv.Ops(),
		KeySumChecked: false,
		Fires:         plan.FireCounts(),
		Kills:         plan.Fires(fault.PointFallbackOwner),
		Dead:          deathWorkers - alive,
		StallWindows:  len(lv.Windows()),
	}
	if sp, ok := d.(workload.StatsProvider); ok {
		r.Helps = sp.OpStats().Policy.Helps
	}
	if m, ok := lv.MinProgress(); ok {
		r.MinWindowOps = m
	}
	r.LivenessOK = lv.Check() == nil

	// Unpark the dead last, after every metric is read: the released
	// goroutines re-execute an already-completed descriptor (helping is
	// idempotent), observe stop, and exit.
	plan.ReleaseKilled()
	return r
}

// runChaos runs every family once and returns the rows.
func runChaos(o options) []chaosRow {
	threads := chaosThreads(o)
	fi := 0
	seed := func() uint64 { fi++; return trialSeed(o.seed, fi-1) }
	var rows []chaosRow

	// abort-storm: one row per forced cause on the BST, plus the
	// (a,b)-tree under the default spurious storm.
	storm := []struct {
		structure string
		variant   string
		cause     htm.AbortCause
	}{
		{"bst", "spurious", htm.CauseSpurious},
		{"bst", "conflict", htm.CauseConflict},
		{"bst", "capacity", htm.CauseCapacity},
		{"abtree", "spurious", htm.CauseSpurious},
	}
	for _, sc := range storm {
		s := seed()
		rows = append(rows, runChaosTrial(o, chaosTrialOpts{
			name:   sc.structure + "/chaos/abort-storm/" + sc.variant,
			family: "abort-storm",
			spec: workload.Spec{
				Structure: sc.structure,
				Algorithm: engine.AlgThreePath,
				HTM:       o.htmCfg(htm.Config{}),
				Policy:    o.policy,
			},
			cfg: workload.Config{
				Threads: threads, Duration: o.duration,
				KeyRange: chaosKeys, Kind: workload.Light, Seed: s,
			},
			plan: fault.New(s, fault.Rule{
				Point: fault.PointTxAccess, Prob: 0.02, Cause: uint8(sc.cause),
			}),
		}))
	}

	// owner-stall: helpable fallback, announced owner sleeps 2ms on
	// every 16th fallback entry; watchdog windows must see progress.
	s := seed()
	rows = append(rows, runChaosTrial(o, chaosTrialOpts{
		name:   "bst/chaos/owner-stall",
		family: "owner-stall",
		spec: workload.Spec{
			Structure:    "bst",
			Algorithm:    engine.AlgTLE,
			Helpable:     true,
			AttemptLimit: 2,
			HTM:          htm.Config{SpuriousEvery: 20},
			Policy:       o.policy,
		},
		cfg: workload.Config{
			Threads: threads, Duration: o.duration,
			KeyRange: chaosKeys, Kind: workload.Light, Seed: s,
			MeasureLatency: true,
		},
		// Count-bounded so every stall fires while the trial is still
		// loaded: a stall straddling the end of the window has no peers
		// left to make progress and would report an empty window.
		plan: fault.New(s, fault.Rule{
			Point: fault.PointFallbackOwner, Every: 16, Count: 24,
			Stall: 2 * time.Millisecond, Watch: true,
		}),
		watch: true,
	}))

	// owner-death (dedicated runner; see above).
	rows = append(rows, runChaosOwnerDeath(o, seed()))

	// migrate: skewed updates on an adaptive sharded tree force
	// boundary migrations; every quiesce acquisition and both
	// inter-step migration windows stall.
	s = seed()
	rows = append(rows, runChaosTrial(o, chaosTrialOpts{
		name:   "bst/chaos/migrate",
		family: "migrate",
		spec: workload.Spec{
			Structure: "bst",
			Algorithm: engine.AlgThreePath,
			Shards:    4,
			KeySpan:   chaosKeys,
			Router:    "adaptive",
			HTM:       o.htmCfg(htm.Config{}),
			Policy:    o.policy,
		},
		cfg: workload.Config{
			Threads: threads, Duration: o.duration,
			KeyRange: chaosKeys, Kind: workload.Light, Seed: s,
			Dist: workload.DistZipf, ZipfTheta: 0.9,
			MeasureLatency: true,
		},
		plan: fault.New(s,
			fault.Rule{Point: fault.PointQuiesce, Every: 1, Stall: 200 * time.Microsecond},
			fault.Rule{Point: fault.PointMigrateSwap, Every: 1, Stall: 200 * time.Microsecond},
			fault.Rule{Point: fault.PointMigrateDelete, Every: 1, Stall: 200 * time.Microsecond},
		),
	}))

	// ebr-pin: epoch pins stall after announcing, delaying grace
	// periods behind live readers.
	s = seed()
	rows = append(rows, runChaosTrial(o, chaosTrialOpts{
		name:   "bst/chaos/ebr-pin",
		family: "ebr-pin",
		spec: workload.Spec{
			Structure: "bst",
			Algorithm: engine.AlgThreePath,
			HTM:       o.htmCfg(htm.Config{}),
			Policy:    o.policy,
		},
		cfg: workload.Config{
			Threads: threads, Duration: o.duration,
			KeyRange: chaosKeys, Kind: workload.Light, Seed: s,
		},
		plan: fault.New(s, fault.Rule{
			Point: fault.PointEBRPin, Every: 256, Stall: 200 * time.Microsecond,
		}),
	}))

	// agg-stall: fallback operations stall inside the aggregate
	// seqlock's write section while the analytics thread queries.
	s = seed()
	rows = append(rows, runChaosTrial(o, chaosTrialOpts{
		name:   "abtree/chaos/agg-stall",
		family: "agg-stall",
		spec: workload.Spec{
			Structure:    "abtree",
			Algorithm:    engine.AlgThreePath,
			AttemptLimit: 2,
			HTM:          htm.Config{SpuriousEvery: 20},
			Policy:       o.policy,
		},
		cfg: workload.Config{
			Threads: threads, Duration: o.duration,
			KeyRange: chaosKeys, Kind: workload.Analytics, Seed: s,
		},
		plan: fault.New(s, fault.Rule{
			Point: fault.PointAggFixup, Every: 8, Stall: 200 * time.Microsecond,
		}),
	}))

	// batch-delay: the async pipeline's flushes stall.
	s = seed()
	rows = append(rows, runChaosTrial(o, chaosTrialOpts{
		name:   "bst/chaos/batch-delay",
		family: "batch-delay",
		spec: workload.Spec{
			Structure: "bst",
			Algorithm: engine.AlgThreePath,
			HTM:       o.htmCfg(htm.Config{}),
			Policy:    o.policy,
		},
		cfg: workload.Config{
			Threads: threads, Duration: o.duration,
			KeyRange: chaosKeys, Kind: workload.Light, Seed: s,
			BatchOps: 16,
		},
		plan: fault.New(s, fault.Rule{
			Point: fault.PointBatchFlush, Every: 8, Stall: 200 * time.Microsecond,
		}),
	}))

	return rows
}

// chaos prints the uniform CSV rows with the survival metrics in
// extras.
func chaos(o options) {
	fmt.Printf("# Chaos: fault-injection survival on %d threads (seed %d)\n",
		chaosThreads(o), o.seed)
	fmt.Println("# extras: family, seed, keysum_ok (- when unchecked), fires, kills, helps, dead, stall_windows, min_window_ops, liveness_ok, max_wait_ns, migrations")
	for _, r := range runChaos(o) {
		keysum := "-"
		if r.KeySumChecked {
			keysum = fmt.Sprintf("%v", r.KeySumOK)
		}
		var fires uint64
		for _, n := range r.Fires {
			fires += n
		}
		extras := []string{
			kv("family", "%s", r.Family),
			kv("seed", "%d", r.Seed),
			kv("keysum_ok", "%s", keysum),
			kv("fires", "%d", fires),
			kv("kills", "%d", r.Kills),
			kv("helps", "%d", r.Helps),
			kv("dead", "%d", r.Dead),
			kv("stall_windows", "%d", r.StallWindows),
			kv("min_window_ops", "%d", r.MinWindowOps),
			kv("liveness_ok", "%v", r.LivenessOK),
		}
		if r.MaxWaitNs > 0 {
			extras = append(extras, kv("max_wait_ns", "%d", r.MaxWaitNs))
		}
		if r.Migrations > 0 {
			extras = append(extras, kv("migrations", "%d", r.Migrations))
		}
		row{
			experiment: "chaos", structure: r.Structure, workload: "light",
			algorithm: "-", threads: r.Threads,
			throughput: r.Throughput, extras: extras,
		}.emit()
	}
}

// chaosJSON emits the full survival artifact for
// `-format json -experiment chaos` — the CI chaos guard's input.
func chaosJSON(o options) error {
	rows := runChaos(o)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
