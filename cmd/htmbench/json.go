package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/workload"
)

// jsonRow is one machine-readable benchmark result. This is the schema
// of the committed BENCH_*.json baselines: the bench trajectory of the
// repository is the sequence of these files, produced by
// `htmbench -format json` on a fixed host.
type jsonRow struct {
	// Schema is the output schema version (csv.go's schemaVersion):
	// rows with different stamps must not be diffed field-by-field.
	Schema int `json:"schema"`
	// Name identifies the experiment: structure/workload/xShards.
	Name string `json:"name"`
	// Throughput is completed operations per second over all threads.
	Throughput float64 `json:"throughput"`
	// NsOp is thread-nanoseconds per completed operation
	// (threads * 1e9 / throughput): the average cost of one operation on
	// one worker, comparable across thread counts.
	NsOp float64 `json:"ns_op"`
	// AllocsOp is the steady-state heap allocations per point operation,
	// measured single-threaded on a warmed tree (delete+insert+search
	// cycle, the pooled hot path). Zero means the allocation-free hot
	// path is intact.
	AllocsOp float64 `json:"allocs_op"`
	// P50Ns/P99Ns/P999Ns are per-operation update latency quantiles
	// (nanoseconds, ~3% bucket quantization) from the trial's per-thread
	// histogram capture; the heavy workloads' dedicated range-query
	// thread is excluded, so the columns are comparable across kinds.
	P50Ns  uint64 `json:"p50_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	P999Ns uint64 `json:"p999_ns"`
	// Paths counts operation completions per execution path during the
	// throughput trial.
	Paths map[string]uint64 `json:"paths"`
	// Aborts counts failed transactional attempts during the throughput
	// trial, keyed "path/cause" (e.g. "fast/conflict"); zero buckets are
	// omitted, so an absent map means an abort-free run.
	Aborts map[string]uint64 `json:"aborts,omitempty"`
	// Policy counts the retry policy's actions during the throughput
	// trial: backoffs, free_retries, capacity_skips, demotions. Zero
	// counters are omitted.
	Policy map[string]uint64 `json:"policy,omitempty"`
	// Extras carries experiment-specific numbers — the JSON counterpart
	// of the CSV extras column (e.g. the rangeagg rows' walk-vs-aggregate
	// speedup and retry counters). Absent for the baseline suite rows.
	Extras map[string]float64 `json:"extras,omitempty"`
}

// abortMap flattens the nonzero per-path-per-cause abort counters into
// the "path/cause"-keyed form of jsonRow.Aborts. Returns nil when no
// attempt aborted.
func abortMap(a engine.AbortCounts) map[string]uint64 {
	var m map[string]uint64
	for p := 1; p < htm.NumPaths; p++ {
		for c := 1; c < htm.NumCauses; c++ {
			if n := a.On(htm.PathKind(p), htm.AbortCause(c)); n > 0 {
				if m == nil {
					m = make(map[string]uint64)
				}
				m[htm.PathKind(p).String()+"/"+htm.AbortCause(c).String()] = n
			}
		}
	}
	return m
}

// policyMap flattens the nonzero retry-policy action counters. Returns
// nil when the policy never intervened (e.g. StaticPolicy).
func policyMap(ps engine.PolicyStats) map[string]uint64 {
	var m map[string]uint64
	put := func(k string, v uint64) {
		if v > 0 {
			if m == nil {
				m = make(map[string]uint64)
			}
			m[k] = v
		}
	}
	put("backoffs", ps.Backoffs)
	put("free_retries", ps.FreeRetries)
	put("capacity_skips", ps.CapacitySkips)
	put("demotions", ps.Demotions)
	put("helps", ps.Helps)
	return m
}

// jsonExperiments runs the machine-readable benchmark suite: for each
// structure, the light and heavy workloads on the unsharded tree and on
// a multi-shard tree (8 shards, or -shards when given larger). The
// multi-shard light rows are the write-throughput numbers the PR-5
// acceptance tracks.
func jsonExperiments(o options) error {
	shards := o.shards
	if shards < 2 {
		shards = 8
	}
	n := o.threads[len(o.threads)-1]
	var rows []jsonRow
	for _, ds := range specs(o) {
		for _, sh := range []int{1, shards} {
			for _, kind := range []workload.Kind{workload.Light, workload.Heavy} {
				if kind == workload.Heavy && n < 2 {
					continue // heavy needs >= 1 updater + 1 RQ thread
				}
				spec := workload.Spec{
					Structure: ds.structure,
					Algorithm: engine.AlgThreePath,
					Shards:    sh,
					KeySpan:   ds.keyRange,
					Router:    o.router,
					HTM:       o.htmCfg(htm.Config{}),
					Policy:    o.policy,
				}
				med, res := trial(o, o.mkSpec(spec), workload.Config{
					Threads:        n,
					Duration:       o.duration,
					KeyRange:       ds.keyRange,
					RQSizeMax:      ds.rqMax,
					Kind:           kind,
					MeasureLatency: true,
				})
				row := jsonRow{
					Schema:     schemaVersion,
					Name:       fmt.Sprintf("%s/%s/x%d", ds.structure, kind, sh),
					Throughput: med,
					AllocsOp:   steadyStateAllocs(spec),
					P50Ns:      res.Latency.Quantile(0.5),
					P99Ns:      res.Latency.Quantile(0.99),
					P999Ns:     res.Latency.Quantile(0.999),
					Paths: map[string]uint64{
						"fast":     res.PathStats.Fast,
						"middle":   res.PathStats.Middle,
						"fallback": res.PathStats.Fallback,
					},
					Aborts: abortMap(res.PathStats.Aborts),
					Policy: policyMap(res.PathStats.Policy),
				}
				if med > 0 {
					row.NsOp = float64(n) * 1e9 / med
				}
				rows = append(rows, row)
			}
		}
	}
	rows = append(rows, rangeAggJSONRows(o)...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// steadyStateAllocs measures heap allocations per point operation on a
// warmed single-handle tree: the same discipline as the repository's
// allocation-gate test, reported here so the JSON baseline records it
// per configuration.
func steadyStateAllocs(spec workload.Spec) float64 {
	d := spec.New()
	h := d.NewHandle()
	const keys = 512
	for k := uint64(1); k <= keys; k++ {
		h.Insert(k, k)
	}
	cycle := func(k uint64) {
		h.Delete(k)
		h.Insert(k, k)
		h.Search(k)
	}
	for i := 0; i < 400; i++ {
		cycle(uint64(i%keys) + 1)
	}
	const runs = 400
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		cycle(uint64(i%keys) + 1)
	}
	runtime.ReadMemStats(&after)
	perCycle := float64(after.Mallocs-before.Mallocs) / runs
	return perCycle / 3 // three point ops per cycle
}
