package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"htmtree/internal/engine"
	"htmtree/internal/hist"
	"htmtree/internal/htm"
	"htmtree/internal/workload"
)

// The oversub experiment runs more threads than GOMAXPROCS so the
// scheduler preempts threads inside the fallback critical section, and
// compares the classic TLE lock against the helpable lock-free lock.
// With the classic lock a descheduled owner convoys the whole shard —
// every fast path subscribes to the lock word and every other fallback
// spins on it — so the convoy shows up as a p999 plateau of scheduling
// quanta. With the helpable fallback any running thread completes the
// announced operation instead of waiting, which removes the owner from
// the critical path and collapses the tail.
//
// The configuration forces the pathology deterministically: GOMAXPROCS
// is pinned (default 2) under an 8+ thread workload, a spurious-abort
// injection drives a small share of operations off the fast path, and
// the preempt hook deschedules the fallback thread (a sleep, not a
// yield — a yielded goroutine goes straight back on the run queue,
// which understates a real quantum loss) at the worst possible
// instant: holding, or having announced under, the fallback lock.
//
// Only every oversubSleepEvery-th fallback is descheduled. The split
// keeps the two tail populations apart: the preempted owner's own
// operation necessarily eats the descheduling in BOTH variants, so
// descheduling events must stay below the p999 rank (0.1% of
// operations), while each classic-lock convoy turns all threads-1
// peers into victims — and that amplified population is what crosses
// the p999 rank for the classic lock only. The helpable lock removes
// exactly the victims, which is the measured difference.
//
// Workers yield between operations (workload.Config.YieldEvery: 1) so
// the timed window never spans a scheduling-quantum boundary. Without
// it every worker runs until sysmon preempts it mid-operation and the
// in-flight operation is charged a multi-quantum run-queue wait;
// that procs-bound population (~GOMAXPROCS/10ms events/s at 10ms+
// each) sits at the p999 rank in BOTH variants and buries the convoy
// signal under identical scheduler noise.
//
// Spurious rates are per transactional access, and an (a,b)-tree
// operation touches an order of magnitude more words than a BST
// operation, hence the per-structure split.
const (
	oversubProcs      = 2                    // GOMAXPROCS pin during the experiment
	oversubKeys       = 512                  // small key range: genuine conflicts too
	oversubAttempts   = 2                    // fast-path budget before the fallback
	oversubPreempt    = 8 * time.Millisecond // simulated quantum loss in the fallback
	oversubSleepEvery = 16                   // deschedule 1 in N fallbacks; others yield
)

// oversubSpurious is the per-structure spurious-abort injection rate
// (one per N transactional accesses).
var oversubSpurious = map[string]uint64{"bst": 20, "abtree": 48}

// oversubRow is one measured configuration; it is both the JSON
// artifact row (with the full latency histogram embedded, the
// acceptance artifact for comparing fallback variants) and the source
// of the uniform CSV row.
type oversubRow struct {
	Schema     int           `json:"schema"`
	Name       string        `json:"name"` // structure/oversub/fallback
	Structure  string        `json:"structure"`
	Fallback   string        `json:"fallback"` // "tle" or "helpable"
	Procs      int           `json:"gomaxprocs"`
	Threads    int           `json:"threads"`
	Shards     int           `json:"shards"`
	Throughput float64       `json:"throughput"`
	P50Ns      uint64        `json:"p50_ns"`
	P99Ns      uint64        `json:"p99_ns"`
	P999Ns     uint64        `json:"p999_ns"`
	MaxNs      uint64        `json:"max_ns"`
	Fallbacks  uint64        `json:"fallbacks"` // operations completed on the fallback path
	Helps      uint64        `json:"helps"`     // announced ops completed by a helper-side executor
	Hist       []hist.Bucket `json:"latency_hist"`

	lat *hist.Hist
}

// runOversub measures both trees × {classic TLE, helpable} fallback
// under oversubscription. Trials are summarized by median p999 — the
// quantity the experiment is about; throughput medians would let one
// lucky schedule hide the convoy.
// oversubThreads is the worker count: oversubscribed well past the
// processor pin, even when the -threads sweep tops out lower.
func oversubThreads(o options) int {
	return max(o.threads[len(o.threads)-1], 8*oversubProcs)
}

func runOversub(o options) []oversubRow {
	prev := runtime.GOMAXPROCS(oversubProcs)
	defer runtime.GOMAXPROCS(prev)
	threads := oversubThreads(o)
	var rows []oversubRow
	for _, structure := range []string{"bst", "abtree"} {
		for _, fallback := range []string{"tle", "helpable"} {
			var preempts atomic.Uint64
			spec := workload.Spec{
				Structure:    structure,
				Algorithm:    engine.AlgTLE,
				Shards:       o.shards,
				KeySpan:      oversubKeys,
				Router:       o.router,
				HTM:          o.htmCfg(htm.Config{SpuriousEvery: oversubSpurious[structure]}),
				Policy:       o.policy,
				Helpable:     fallback == "helpable",
				AttemptLimit: oversubAttempts,
				// No yield on the other fallbacks: an injected Gosched
				// parks the measuring thread behind every CPU-hot peer,
				// which charges ~a scheduling quantum to the measured
				// operation in either variant — noise, not protocol.
				PreemptPoint: func() {
					if preempts.Add(1)%oversubSleepEvery == 0 {
						time.Sleep(oversubPreempt)
					}
				},
			}
			results := make([]workload.Result, 0, o.trials)
			for i := 0; i < o.trials; i++ {
				res := workload.Run(o.newDict(spec), workload.Config{
					Threads:        threads,
					Duration:       o.duration,
					KeyRange:       oversubKeys,
					Kind:           workload.Light,
					Seed:           trialSeed(o.seed, i),
					MeasureLatency: true,
					YieldEvery:     1,
				})
				if !res.KeySumOK {
					fmt.Fprintf(os.Stderr, "WARNING: oversub %s/%s key-sum validation FAILED\n",
						structure, fallback)
				}
				results = append(results, res)
			}
			sort.Slice(results, func(i, j int) bool {
				return results[i].Latency.Quantile(0.999) < results[j].Latency.Quantile(0.999)
			})
			med := results[len(results)/2]
			rows = append(rows, oversubRow{
				Schema:     schemaVersion,
				Name:       fmt.Sprintf("%s/oversub/%s", structure, fallback),
				Structure:  structure,
				Fallback:   fallback,
				Procs:      oversubProcs,
				Threads:    threads,
				Shards:     o.shards,
				Throughput: med.Throughput,
				P50Ns:      med.Latency.Quantile(0.5),
				P99Ns:      med.Latency.Quantile(0.99),
				P999Ns:     med.Latency.Quantile(0.999),
				MaxNs:      med.Latency.Max(),
				Fallbacks:  med.PathStats.Fallback,
				Helps:      med.PathStats.Policy.Helps,
				Hist:       med.Latency.Buckets(),
				lat:        med.Latency,
			})
		}
	}
	return rows
}

// oversub prints the uniform CSV rows; each helpable row carries the
// p999 improvement over its tree's classic-TLE baseline in extras.
func oversub(o options) {
	fmt.Printf("# Oversubscription: %d threads on GOMAXPROCS=%d, TLE vs helpable fallback\n",
		oversubThreads(o), oversubProcs)
	fmt.Println("# extras: gomaxprocs, fallback, fallbacks, helps, max_ns, p999_speedup_vs_tle")
	rows := runOversub(o)
	baseline := map[string]uint64{}
	for _, r := range rows {
		if r.Fallback == "tle" {
			baseline[r.Structure] = r.P999Ns
		}
	}
	for _, r := range rows {
		extras := []string{
			kv("gomaxprocs", "%d", r.Procs),
			kv("fallback", "%s", r.Fallback),
			kv("fallbacks", "%d", r.Fallbacks),
			kv("helps", "%d", r.Helps),
			kv("max_ns", "%d", r.MaxNs),
		}
		if r.Fallback == "helpable" && r.P999Ns > 0 {
			extras = append(extras,
				kv("p999_speedup_vs_tle", "%.2f", float64(baseline[r.Structure])/float64(r.P999Ns)))
		}
		row{
			experiment: "oversub", structure: r.Structure, workload: "light",
			algorithm: "tle", threads: r.Threads, shards: r.Shards,
			throughput: r.Throughput, lat: r.lat, extras: extras,
		}.emit()
	}
}

// oversubJSON emits the full artifact — every configuration with its
// embedded latency histogram — for `-format json -experiment oversub`
// (the CI regression guard and the committed acceptance evidence).
func oversubJSON(o options) error {
	rows := runOversub(o)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
