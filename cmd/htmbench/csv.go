package main

import (
	"fmt"
	"strings"

	"htmtree/internal/hist"
	"htmtree/internal/obs"
)

// schemaVersion stamps every CSV row (first column) and JSON row
// ("schema" field). It is the observability layer's obs.SchemaVersion —
// one stamp shared by the bench artifacts and the live /vars endpoint,
// bumped whenever a column or field changes meaning, so committed
// BENCH_*.json baselines, scraped CSV and endpoint snapshots stay
// diffable across repository revisions.
//
// v2: uniform CSV column set across all experiments (one header for the
// whole run, experiment-specific counters folded into the extras
// column) and latency quantile columns; JSON rows gain schema,
// p50/p99/p999 and the policy "helps" counter.
const schemaVersion = obs.SchemaVersion

// trialSeed derives trial i's workload seed from the run's base seed.
// Every experiment uses this one derivation (prime stride keeps trials
// decorrelated while staying reproducible from -seed alone); changing
// it invalidates committed BENCH_*.json baselines, so it changes never.
func trialSeed(base uint64, i int) uint64 {
	return base + uint64(i)*7919
}

// csvHeader prints the single uniform header every experiment's rows
// share. Before v2 each experiment printed its own ad-hoc column set,
// so concatenated output could not be parsed as one table and columns
// like the abortpolicy action counters existed in some tables and not
// others; now every row has exactly these columns, with columns that an
// experiment does not measure left empty and its specific counters
// carried in extras as ordered semicolon-separated key=value pairs
// (each experiment's legend comment names its keys).
func csvHeader() {
	fmt.Printf("# htmbench CSV schema v%d\n", schemaVersion)
	fmt.Println("schema,experiment,structure,workload,algorithm,threads,shards,throughput,p50_ns,p99_ns,p999_ns,extras")
}

// row is one uniform CSV record.
type row struct {
	experiment string
	structure  string
	workload   string // "light"/"heavy", or empty when not applicable
	algorithm  string
	threads    int
	shards     int
	throughput float64    // 0 leaves the column empty (not measured)
	lat        *hist.Hist // nil leaves the quantile columns empty
	extras     []string   // ordered "key=value" pairs
}

func (r row) emit() {
	tput := ""
	if r.throughput > 0 {
		tput = fmt.Sprintf("%.0f", r.throughput)
	}
	p50, p99, p999 := "", "", ""
	if r.lat != nil && r.lat.Count() > 0 {
		p50 = fmt.Sprintf("%d", r.lat.Quantile(0.5))
		p99 = fmt.Sprintf("%d", r.lat.Quantile(0.99))
		p999 = fmt.Sprintf("%d", r.lat.Quantile(0.999))
	}
	fmt.Printf("%d,%s,%s,%s,%s,%d,%d,%s,%s,%s,%s,%s\n",
		schemaVersion, r.experiment, r.structure, r.workload, r.algorithm,
		r.threads, r.shards, tput, p50, p99, p999, strings.Join(r.extras, ";"))
}

// kv formats one extras entry.
func kv(key string, format string, v ...any) string {
	return key + "=" + fmt.Sprintf(format, v...)
}
