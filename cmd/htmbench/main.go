// Command htmbench regenerates the tables and figures of Brown's "A
// Template for Implementing Fast Lock-free Trees Using HTM" (PODC 2017)
// on the simulated-HTM substrate. Each experiment prints CSV rows (and a
// short legend) matching the corresponding paper artifact:
//
//	-experiment fig14     throughput vs threads, BST + (a,b)-tree, light
//	                      and heavy workloads (Figure 14; Figure 15 is
//	                      the same sweep with -threads extended)
//	-experiment fig16     transaction commit/abort rates per path
//	-experiment fig17     Hybrid NOrec comparison (BST, light workload)
//	-experiment pathusage operations completed per path (Section 7.2)
//	-experiment sec8      searches outside transactions (Section 8)
//	-experiment sec10     CITRUS and k-CAS list acceleration (Section 10)
//	-experiment headline  (a,b)-tree 3-path vs non-htm ratios (abstract)
//	-experiment shardscale throughput vs shard count (beyond the paper:
//	                      the key space partitioned across independent
//	                      trees, each with its own engine and HTM context),
//	                      with pinned-vs-unpinned updater rows
//	-experiment rqconsistency retry/escalation rate of atomic cross-shard
//	                      range queries as update load grows (beyond the
//	                      paper: the per-shard version validation scheme)
//	-experiment rangeagg  O(log n) subtree-aggregate queries vs leaf
//	                      walks across range size x tree size, plus the
//	                      retry-rate drop aggregate reads buy atomic
//	                      half-keyspace windows under churn (beyond the
//	                      paper: transactionally maintained aggregates)
//	-experiment skew      range vs hash vs adaptive shard routing under a
//	                      Zipfian key distribution (beyond the paper: the
//	                      router abstraction and live rebalancing)
//	-experiment batchamortize batched vs unbatched point-op throughput as
//	                      batch size grows, with the amortized router-
//	                      lookup and monitor-bracket counts (beyond the
//	                      paper: the async batching subsystem)
//	-experiment abortpolicy static vs adaptive retry policy under the
//	                      default, POWER8 capacity-heavy and spurious-
//	                      heavy abort profiles, with per-cause abort and
//	                      policy-action counters (beyond the paper: the
//	                      abort-taxonomy-driven path policy)
//	-experiment oversub   tail latency with threads > GOMAXPROCS: the
//	                      classic TLE fallback lock vs the helpable
//	                      lock-free lock, p50/p99/p999 per variant
//	                      (beyond the paper: the lock-free-locks
//	                      fallback)
//	-experiment obsoverhead instrumented (Config.Observability with
//	                      default sampling) vs uninstrumented point-op
//	                      throughput and tail latency, both trees,
//	                      unsharded and sharded — the observability
//	                      layer's measured price against its <=5% budget
//	-experiment all       everything above
//
// Every experiment emits rows of one uniform, version-stamped CSV
// schema (see csv.go): a single header covers the whole run, and
// experiment-specific counters ride in the final extras column as
// key=value pairs.
//
// -format json replaces the CSV tables with the machine-readable
// baseline suite: one JSON row per structure x workload x shard-count
// with throughput, thread-ns/op, steady-state allocs/op, latency
// quantiles and per-path operation counts — the schema of the
// committed BENCH_*.json files. With `-experiment oversub` the JSON
// output is instead the oversubscription artifact: both fallback
// variants with their full latency histograms embedded.
//
// -http serves the live observability endpoint while the experiments
// run: Prometheus /metrics, JSON /vars, the flight-recorder /events
// dump and /debug/pprof/, all scraping the tree currently under
// measurement (every tree is then built with Config.Observability).
//
// -experiment also accepts a comma-separated list (e.g.
// "skew,rqconsistency"). The -shards flag partitions every tree in the
// figure experiments across N shards (default 1, the paper's unsharded
// configuration); -router selects the shard routing policy, -zipf
// switches the update key distribution to Zipfian with the given theta,
// and -batch runs the update threads through the asynchronous batched
// path with N-op batches. -policy selects the engine retry policy
// (adaptive|static) for every experiment, and -spurious injects a
// simulated spurious abort every N transactional accesses into
// experiments that do not pin their own HTM profile.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"htmtree/internal/abtree"
	"htmtree/internal/bst"
	"htmtree/internal/citrus"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/hybridnorec"
	"htmtree/internal/kcas"
	"htmtree/internal/obs"
	"htmtree/internal/shard"
	"htmtree/internal/workload"
	"htmtree/internal/xrand"
)

type options struct {
	experiment string
	threads    []int
	duration   time.Duration
	trials     int
	bstKeys    uint64
	abKeys     uint64
	listKeys   uint64
	seed       uint64
	allAlgs    bool
	shards     int
	router     string
	zipf       float64
	batch      int
	format     string
	spurious   uint64
	policy     string
	httpAddr   string
	// obsCfg, set when -http is given, instruments every tree the
	// workload.Spec paths build and publishes it as the live endpoint's
	// scrape source.
	obsCfg *obs.Config
}

// liveObs is the tree currently under measurement, scraped by the -http
// endpoint; trials swap it as they construct fresh instances.
var liveObs atomic.Pointer[obs.Obs]

// newDict constructs sp's dictionary — instrumented and published as
// the live observability source when -http is serving.
func (o options) newDict(sp workload.Spec) dict.Dict {
	if o.obsCfg == nil {
		return sp.New()
	}
	sp.Observe = o.obsCfg
	d, ob := sp.NewObserved()
	liveObs.Store(ob)
	return d
}

// mkSpec adapts newDict to trial's fresh-instance constructor shape.
func (o options) mkSpec(sp workload.Spec) func() dict.Dict {
	return func() dict.Dict { return o.newDict(sp) }
}

// htmCfg merges the -spurious flag into an experiment's HTM config
// (experiments that pin their own spurious rate keep it).
func (o options) htmCfg(hc htm.Config) htm.Config {
	if hc.SpuriousEvery == 0 {
		hc.SpuriousEvery = o.spurious
	}
	return hc
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "htmbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var o options
	var threadsFlag string
	flag.StringVar(&o.experiment, "experiment", "all",
		"comma-separated list of fig14|fig16|fig17|pathusage|sec8|sec10|headline|shardscale|rqconsistency|rangeagg|skew|batchamortize|abortpolicy|oversub|obsoverhead|chaos, or all")
	flag.StringVar(&threadsFlag, "threads", "1,2,4,8", "comma-separated thread counts")
	flag.DurationVar(&o.duration, "duration", 300*time.Millisecond, "measurement window per trial")
	flag.IntVar(&o.trials, "trials", 3, "trials per configuration (median reported)")
	flag.Uint64Var(&o.bstKeys, "bst-keys", 10000, "BST key range (paper: 1e4)")
	flag.Uint64Var(&o.abKeys, "ab-keys", 100000, "(a,b)-tree key range (paper: 1e6)")
	flag.Uint64Var(&o.listKeys, "list-keys", 256, "k-CAS list key range")
	flag.Uint64Var(&o.seed, "seed", 1, "base random seed")
	flag.BoolVar(&o.allAlgs, "all-algs", false, "include 2-path-ncon and scx-htm in figures")
	flag.IntVar(&o.shards, "shards", 1, "partition each tree across N shards (1 = unsharded)")
	flag.StringVar(&o.router, "router", "range", "shard routing policy: range|hash|adaptive")
	flag.Float64Var(&o.zipf, "zipf", 0, "Zipfian update-key theta in (0,1); 0 = uniform keys")
	flag.IntVar(&o.batch, "batch", 1, "batch update threads' operations N at a time through the async pipeline (1 = unbatched)")
	flag.Uint64Var(&o.spurious, "spurious", 0,
		"inject a simulated spurious abort every N transactional accesses (0 = none); experiments that pin their own HTM profile keep it")
	flag.StringVar(&o.policy, "policy", "adaptive",
		"engine retry policy for all experiments: adaptive|static (abortpolicy compares both regardless)")
	flag.StringVar(&o.httpAddr, "http", "",
		"serve the live observability endpoint on this address while experiments run (e.g. :6060): /metrics, /vars, /events, /debug/pprof/; every tree is then built instrumented")
	flag.StringVar(&o.format, "format", "csv",
		"output format: csv runs the selected -experiment tables; json runs the machine-readable baseline suite (structure x light/heavy x 1/N shards with throughput, ns/op, steady-state allocs/op and per-path counts) used for the committed BENCH_*.json trajectory")
	flag.Parse()

	if o.shards < 1 {
		return fmt.Errorf("bad -shards %d", o.shards)
	}
	switch o.router {
	case "range", "hash", "adaptive":
	default:
		return fmt.Errorf("bad -router %q (want range, hash or adaptive)", o.router)
	}
	if o.zipf < 0 || o.zipf >= 1 {
		return fmt.Errorf("bad -zipf %v (want 0, or theta in (0,1))", o.zipf)
	}
	if o.batch < 1 {
		return fmt.Errorf("bad -batch %d (want >= 1)", o.batch)
	}
	if _, ok := engine.ParsePolicy(o.policy); !ok {
		return fmt.Errorf("bad -policy %q (want %s)", o.policy, strings.Join(engine.PolicyNames, " or "))
	}
	switch o.format {
	case "csv", "json":
	default:
		return fmt.Errorf("bad -format %q (want csv or json)", o.format)
	}

	if o.httpAddr != "" {
		o.obsCfg = &obs.Config{}
		srv, err := obs.Serve(o.httpAddr, liveObs.Load)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr,
			"htmbench: observability endpoint on http://%s (/metrics, /vars, /events, /debug/pprof/)\n",
			srv.Addr())
	}

	for _, part := range strings.Split(threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -threads element %q", part)
		}
		o.threads = append(o.threads, n)
	}

	var exps []string
	for _, e := range strings.Split(o.experiment, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if e == "all" {
			exps = append(exps, "fig14", "fig16", "fig17", "pathusage", "sec8",
				"sec10", "headline", "shardscale", "rqconsistency", "rangeagg",
				"skew", "batchamortize", "abortpolicy", "oversub", "obsoverhead",
				"chaos")
			continue
		}
		exps = append(exps, e)
	}
	// Reject unknown names before running anything: a typo at the end
	// of the list must not cost the minutes the earlier experiments take.
	for _, e := range exps {
		switch e {
		case "fig14", "fig16", "fig17", "pathusage", "sec8", "sec10",
			"headline", "shardscale", "rqconsistency", "rangeagg", "skew",
			"batchamortize", "abortpolicy", "oversub", "obsoverhead", "chaos":
		default:
			return fmt.Errorf("unknown experiment %q", e)
		}
	}

	if o.format == "json" {
		if len(exps) == 1 && exps[0] == "oversub" {
			return oversubJSON(o)
		}
		if len(exps) == 1 && exps[0] == "obsoverhead" {
			return obsOverheadJSON(o)
		}
		if len(exps) == 1 && exps[0] == "chaos" {
			return chaosJSON(o)
		}
		return jsonExperiments(o)
	}

	csvHeader()
	for _, e := range exps {
		switch e {
		case "fig14":
			fig14(o)
		case "fig16":
			fig16(o)
		case "fig17":
			fig17(o)
		case "pathusage":
			pathUsage(o)
		case "sec8":
			sec8(o)
		case "sec10":
			sec10(o)
		case "headline":
			headline(o)
		case "shardscale":
			shardScale(o)
		case "rqconsistency":
			rqConsistency(o)
		case "rangeagg":
			rangeAgg(o)
		case "skew":
			skew(o)
		case "batchamortize":
			batchAmortize(o)
		case "abortpolicy":
			abortPolicy(o)
		case "oversub":
			oversub(o)
		case "obsoverhead":
			obsOverhead(o)
		case "chaos":
			chaos(o)
		default:
			return fmt.Errorf("unknown experiment %q", e)
		}
	}
	return nil
}

// figureAlgorithms are the series shown in the paper's figures.
func figureAlgorithms(all bool) []engine.Algorithm {
	algs := []engine.Algorithm{
		engine.AlgNonHTM, engine.AlgTLE, engine.AlgTwoPathConc, engine.AlgThreePath,
	}
	if all {
		algs = append(algs, engine.AlgTwoPathNCon, engine.AlgSCXHTM)
	}
	return algs
}

// dsSpec describes one data-structure column of Figure 14/15.
type dsSpec struct {
	name      string // CSV label, including any "/xN" shard suffix
	structure string // bare workload.Spec structure name
	keyRange  uint64
	rqMax     uint64
	make      func(alg engine.Algorithm, searchOutside bool, htmCfg htm.Config) dict.Dict
}

func specs(o options) []dsSpec {
	mk := func(structure string, keyRange uint64) func(engine.Algorithm, bool, htm.Config) dict.Dict {
		return func(alg engine.Algorithm, so bool, hc htm.Config) dict.Dict {
			return o.newDict(workload.Spec{
				Structure:       structure,
				Algorithm:       alg,
				Shards:          o.shards,
				KeySpan:         keyRange,
				Router:          o.router,
				SearchOutsideTx: so,
				HTM:             o.htmCfg(hc),
				Policy:          o.policy,
			})
		}
	}
	// Sharded runs are labeled "bst/x8" (plus a router suffix for
	// non-default routing) so their CSV rows cannot be mixed up with
	// unsharded results; unsharded labels are unchanged.
	label := func(structure string) string {
		if o.shards > 1 {
			s := fmt.Sprintf("%s/x%d", structure, o.shards)
			if o.router != "range" {
				s += "/" + o.router
			}
			return s
		}
		return structure
	}
	return []dsSpec{
		{name: label("bst"), structure: "bst", keyRange: o.bstKeys, rqMax: 1000,
			make: mk("bst", o.bstKeys)},
		{name: label("abtree"), structure: "abtree", keyRange: o.abKeys, rqMax: 10000,
			make: mk("abtree", o.abKeys)},
	}
}

// trial runs cfg o.trials times on fresh instances from mk and returns
// the median throughput plus the last run's full result. The -zipf flag
// switches every trial's update keys to the Zipfian distribution.
func trial(o options, mk func() dict.Dict, cfg workload.Config) (float64, workload.Result) {
	if o.zipf > 0 {
		cfg.Dist = workload.DistZipf
		cfg.ZipfTheta = o.zipf
	}
	if o.batch > 1 && cfg.BatchOps == 0 {
		cfg.BatchOps = o.batch
	}
	tputs := make([]float64, 0, o.trials)
	var last workload.Result
	for i := 0; i < o.trials; i++ {
		cfg.Seed = trialSeed(o.seed, i)
		d := mk()
		last = workload.Run(d, cfg)
		if !last.KeySumOK {
			fmt.Fprintf(os.Stderr, "WARNING: key-sum validation FAILED (%+v)\n", cfg)
		}
		tputs = append(tputs, last.Throughput)
	}
	sort.Float64s(tputs)
	return tputs[len(tputs)/2], last
}

func fig14(o options) {
	fmt.Println("# Figure 14/15: throughput (ops/sec) vs threads")
	for _, spec := range specs(o) {
		for _, kind := range []workload.Kind{workload.Light, workload.Heavy} {
			for _, alg := range figureAlgorithms(o.allAlgs) {
				for _, n := range o.threads {
					if kind == workload.Heavy && n < 2 {
						continue // heavy needs >= 1 updater + 1 RQ thread
					}
					spec, kind, alg, n := spec, kind, alg, n
					med, _ := trial(o, func() dict.Dict { return spec.make(alg, false, htm.Config{}) },
						workload.Config{
							Threads:   n,
							Duration:  o.duration,
							KeyRange:  spec.keyRange,
							RQSizeMax: spec.rqMax,
							Kind:      kind,
						})
					row{experiment: "fig14", structure: spec.name, workload: kind.String(),
						algorithm: alg.String(), threads: n, shards: o.shards,
						throughput: med}.emit()
				}
			}
		}
	}
}

func fig16(o options) {
	n := o.threads[len(o.threads)-1]
	fmt.Println("# Figure 16: transaction commit/abort rates (max threads)")
	fmt.Println("# extras: path, commits, aborts, abort_conflict, abort_capacity, abort_explicit, abort_spurious")
	for _, spec := range specs(o) {
		for _, kind := range []workload.Kind{workload.Light, workload.Heavy} {
			for _, alg := range []engine.Algorithm{engine.AlgTLE, engine.AlgTwoPathConc, engine.AlgThreePath} {
				if kind == workload.Heavy && n < 2 {
					continue
				}
				_, res := trial(o, func() dict.Dict { return spec.make(alg, false, htm.Config{}) },
					workload.Config{
						Threads: n, Duration: o.duration,
						KeyRange: spec.keyRange, RQSizeMax: spec.rqMax, Kind: kind,
					})
				hs := res.HTMStats
				for _, p := range []htm.PathKind{htm.PathFast, htm.PathMiddle} {
					if hs.Commits[p] == 0 && hs.TotalAborts(p) == 0 {
						continue
					}
					row{experiment: "fig16", structure: spec.name, workload: kind.String(),
						algorithm: alg.String(), threads: n, shards: o.shards,
						extras: []string{
							kv("path", "%s", p),
							kv("commits", "%d", hs.Commits[p]),
							kv("aborts", "%d", hs.TotalAborts(p)),
							kv("abort_conflict", "%d", hs.Aborts[p][htm.CauseConflict]),
							kv("abort_capacity", "%d", hs.Aborts[p][htm.CauseCapacity]),
							kv("abort_explicit", "%d", hs.Aborts[p][htm.CauseExplicit]),
							kv("abort_spurious", "%d", hs.Aborts[p][htm.CauseSpurious]),
						}}.emit()
				}
			}
		}
	}
}

func fig17(o options) {
	fmt.Println("# Figure 17: BST light workload incl. Hybrid NOrec")
	series := []struct {
		name string
		mk   func() dict.Dict
	}{
		{"non-htm", func() dict.Dict { return bst.New(bst.Config{Algorithm: engine.AlgNonHTM}) }},
		{"tle", func() dict.Dict { return bst.New(bst.Config{Algorithm: engine.AlgTLE}) }},
		{"2-path-con", func() dict.Dict { return bst.New(bst.Config{Algorithm: engine.AlgTwoPathConc}) }},
		{"3-path", func() dict.Dict { return bst.New(bst.Config{Algorithm: engine.AlgThreePath}) }},
		{"hybrid-norec", func() dict.Dict { return hybridnorec.NewBST(htm.Config{}, 0) }},
	}
	for _, s := range series {
		for _, n := range o.threads {
			med, _ := trial(o, s.mk, workload.Config{
				Threads: n, Duration: o.duration, KeyRange: o.bstKeys, Kind: workload.Light,
			})
			row{experiment: "fig17", structure: "bst", workload: "light",
				algorithm: s.name, threads: n, shards: 1, throughput: med}.emit()
		}
	}
}

func pathUsage(o options) {
	n := o.threads[len(o.threads)-1]
	fmt.Println("# Section 7.2: operations completed per path (3-path, max threads)")
	fmt.Println("# extras: fast_pct, middle_pct, fallback_pct")
	for _, spec := range specs(o) {
		for _, kind := range []workload.Kind{workload.Light, workload.Heavy} {
			if kind == workload.Heavy && n < 2 {
				continue
			}
			_, res := trial(o, func() dict.Dict { return spec.make(engine.AlgThreePath, false, htm.Config{}) },
				workload.Config{
					Threads: n, Duration: o.duration,
					KeyRange: spec.keyRange, RQSizeMax: spec.rqMax, Kind: kind,
				})
			ps := res.PathStats
			tot := float64(ps.Total())
			row{experiment: "pathusage", structure: spec.name, workload: kind.String(),
				algorithm: "3-path", threads: n, shards: o.shards,
				extras: []string{
					kv("fast_pct", "%.2f", 100*float64(ps.Fast)/tot),
					kv("middle_pct", "%.2f", 100*float64(ps.Middle)/tot),
					kv("fallback_pct", "%.2f", 100*float64(ps.Fallback)/tot),
				}}.emit()
		}
	}
}

func sec8(o options) {
	n := o.threads[len(o.threads)-1]
	fmt.Println("# Section 8: searches outside transactions (3-path, light workload)")
	fmt.Println("# extras: htm_profile, search_outside_tx, gain_pct (on the outside-tx row)")
	for _, spec := range specs(o) {
		for _, profile := range []struct {
			name string
			cfg  htm.Config
		}{{"intel", htm.Config{}}, {"power8", htm.POWER8Config()}} {
			inTx, _ := trial(o, func() dict.Dict { return spec.make(engine.AlgThreePath, false, profile.cfg) },
				workload.Config{Threads: n, Duration: o.duration, KeyRange: spec.keyRange, Kind: workload.Light})
			outTx, _ := trial(o, func() dict.Dict { return spec.make(engine.AlgThreePath, true, profile.cfg) },
				workload.Config{Threads: n, Duration: o.duration, KeyRange: spec.keyRange, Kind: workload.Light})
			base := row{experiment: "sec8", structure: spec.name, workload: "light",
				algorithm: "3-path", threads: n, shards: o.shards}
			in, out := base, base
			in.throughput = inTx
			in.extras = []string{kv("htm_profile", "%s", profile.name),
				kv("search_outside_tx", "%d", 0)}
			out.throughput = outTx
			out.extras = []string{kv("htm_profile", "%s", profile.name),
				kv("search_outside_tx", "%d", 1),
				kv("gain_pct", "%.1f", 100*(outTx-inTx)/inTx)}
			in.emit()
			out.emit()
		}
	}
}

func sec10(o options) {
	n := o.threads[len(o.threads)-1]
	fmt.Println("# Section 10: accelerating RCU (CITRUS) and k-CAS (list)")
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		alg := alg
		med, _ := trial(o, func() dict.Dict { return citrus.New(citrus.Config{Algorithm: alg}) },
			workload.Config{Threads: n, Duration: o.duration, KeyRange: o.bstKeys, Kind: workload.Light})
		row{experiment: "sec10", structure: "citrus", workload: "light",
			algorithm: alg.String(), threads: n, shards: 1, throughput: med}.emit()
	}
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		alg := alg
		med, _ := trial(o, func() dict.Dict { return kcas.NewList(kcas.ListConfig{Algorithm: alg}) },
			workload.Config{Threads: n, Duration: o.duration, KeyRange: o.listKeys, Kind: workload.Light})
		row{experiment: "sec10", structure: "kcas-list", workload: "light",
			algorithm: alg.String(), threads: n, shards: 1, throughput: med}.emit()
	}
}

// shardScale sweeps the shard count and, for each sharded point, also
// measures updaters pinned to their home shards: a pinned updater never
// leaves its shard's key range, so its transactions never conflict with
// another shard's traffic — the conflict-domain win partitioning exists
// for, shown explicitly against the unpinned rows.
func shardScale(o options) {
	n := o.threads[len(o.threads)-1]
	fmt.Println("# Shard scaling: throughput vs shard count (3-path, max threads)")
	fmt.Println("# extras: pinned, speedup_vs_1")
	for _, ds := range specs(o) {
		for _, kind := range []workload.Kind{workload.Light, workload.Heavy} {
			if kind == workload.Heavy && n < 2 {
				continue
			}
			var base float64
			for _, shards := range []int{1, 2, 4, 8, 16} {
				spec := workload.Spec{
					Structure: ds.structure,
					Algorithm: engine.AlgThreePath,
					Shards:    shards,
					KeySpan:   ds.keyRange,
					HTM:       o.htmCfg(htm.Config{}),
					Policy:    o.policy,
				}
				pinnedModes := []bool{false}
				if shards > 1 {
					pinnedModes = append(pinnedModes, true)
				}
				for _, pinned := range pinnedModes {
					med, _ := trial(o, o.mkSpec(spec), workload.Config{
						Threads:     n,
						Duration:    o.duration,
						KeyRange:    ds.keyRange,
						RQSizeMax:   ds.rqMax,
						Kind:        kind,
						PinUpdaters: pinned,
					})
					if shards == 1 {
						base = med
					}
					speedup := 0.0
					if base > 0 {
						speedup = med / base
					}
					pin := 0
					if pinned {
						pin = 1
					}
					row{experiment: "shardscale", structure: ds.structure,
						workload: kind.String(), algorithm: "3-path",
						threads: n, shards: shards, throughput: med,
						extras: []string{
							kv("pinned", "%d", pin),
							kv("speedup_vs_1", "%.2f", speedup),
						}}.emit()
				}
			}
		}
	}
}

// skew compares the three shard routers under a Zipfian update
// workload: range routing collapses the hot key head onto one shard
// (max_shard_share → 1), hash routing scatters it, and adaptive
// routing migrates boundary slices of the hot shard's range to its
// neighbors at runtime (the migrations and keys_moved columns show the
// rebalancer working, max_shard_share its convergence toward 1/shards).
// max_shard_share is the router-quality signal independent of the host:
// on multi-core machines the collapsed share is exactly the fraction of
// the workload re-serialized onto one tree's conflict domain, and the
// throughput column shows hash/adaptive pulling ahead of range; on a
// single core only the share separates the routers.
func skew(o options) {
	shards := o.shards
	if shards < 2 {
		shards = 8 // the experiment is about spreading a hot shard
	}
	theta := o.zipf
	if theta == 0 {
		theta = 0.99
	}
	n := o.threads[len(o.threads)-1]
	fmt.Printf("# Skew: shard routing under Zipfian updates (3-path, %d shards, theta %.2f, light workload)\n",
		shards, theta)
	fmt.Println("# extras: router, speedup_vs_range, max_shard_share, migrations, keys_moved")
	for _, ds := range specs(o) {
		var base float64
		for _, router := range []string{"range", "hash", "adaptive"} {
			spec := workload.Spec{
				Structure: ds.structure,
				Algorithm: engine.AlgThreePath,
				Shards:    shards,
				KeySpan:   ds.keyRange,
				Router:    router,
				// Evaluate often enough that rebalancing converges
				// within a short measurement window.
				RebalanceCheckOps: 512,
				HTM:               o.htmCfg(htm.Config{}),
				Policy:            o.policy,
			}
			med, res := trial(o, o.mkSpec(spec), workload.Config{
				Threads:   n,
				Duration:  o.duration,
				KeyRange:  ds.keyRange,
				Kind:      workload.Light,
				Dist:      workload.DistZipf,
				ZipfTheta: theta,
			})
			if router == "range" {
				base = med
			}
			speedup := 0.0
			if base > 0 {
				speedup = med / base
			}
			row{experiment: "skew", structure: ds.structure, workload: "light",
				algorithm: "3-path", threads: n, shards: shards, throughput: med,
				extras: []string{
					kv("router", "%s", router),
					kv("speedup_vs_range", "%.2f", speedup),
					kv("max_shard_share", "%.3f", res.MaxShardShare),
					kv("migrations", "%d", res.Rebalance.Migrations),
					kv("keys_moved", "%d", res.Rebalance.KeysMoved),
				}}.emit()
		}
	}
}

// batchAmortize sweeps the async batch size against the unbatched
// baseline on a sharded tree: updaters enqueue point operations into
// per-thread pipelines that flush as sorted, shard-grouped batches, so
// each group pays one router lookup and one monitor admission instead
// of one per op. Reported are throughput (speedup over batch=1) and
// the amortization factors themselves — ops per router lookup and per
// monitor bracket — which separate the batching win from host noise:
// on a single core the throughput columns barely move, but the
// amortized counts drop by roughly the group size regardless of host.
// The tree rebalances (router "adaptive") with the evaluation window
// pushed out of reach, so every update pays shard-level admission —
// the bracket the batch path amortizes — without migrations moving
// the measurement.
func batchAmortize(o options) {
	shards := o.shards
	if shards < 2 {
		shards = 8 // the experiment is about amortizing per-shard dispatch
	}
	n := o.threads[len(o.threads)-1]
	fmt.Printf("# Batch amortization: batched vs unbatched updates (3-path, %d shards, light workload)\n", shards)
	fmt.Println("# extras: batch, speedup_vs_unbatched, groups, ops_per_group, ops_per_router_lookup, ops_per_monitor_bracket")
	for _, ds := range specs(o) {
		var base float64
		for _, b := range []int{1, 8, 16, 32, 64, 128} {
			spec := workload.Spec{
				Structure: ds.structure,
				Algorithm: engine.AlgThreePath,
				Shards:    shards,
				KeySpan:   ds.keyRange,
				Router:    "adaptive",
				// Keep migrations out of the measurement window; the
				// admitting handles (and their per-op monitor brackets)
				// remain.
				RebalanceCheckOps: 1 << 30,
				HTM:               o.htmCfg(htm.Config{}),
				Policy:            o.policy,
			}
			med, res := trial(o, o.mkSpec(spec), workload.Config{
				Threads:  n,
				Duration: o.duration,
				KeyRange: ds.keyRange,
				Kind:     workload.Light,
				BatchOps: b,
			})
			if b == 1 {
				base = med
			}
			speedup := 0.0
			if base > 0 {
				speedup = med / base
			}
			opsPer := func(den uint64) float64 {
				if den == 0 {
					return 0
				}
				return float64(res.Batch.Ops) / float64(den)
			}
			row{experiment: "batchamortize", structure: ds.structure,
				workload: "light", algorithm: "3-path",
				threads: n, shards: shards, throughput: med,
				extras: []string{
					kv("batch", "%d", b),
					kv("speedup_vs_unbatched", "%.2f", speedup),
					kv("groups", "%d", res.Batch.Groups),
					kv("ops_per_group", "%.1f", opsPer(res.Batch.Groups)),
					kv("ops_per_router_lookup", "%.1f", opsPer(res.Batch.RouterLookups)),
					kv("ops_per_monitor_bracket", "%.1f", opsPer(res.Batch.MonitorEnters)),
				}}.emit()
		}
	}
}

// abortPolicy compares the static (cause-blind fixed-budget) and
// adaptive (taxonomy-driven) retry policies head to head under three
// abort profiles: the default Intel-like simulator, the POWER8
// capacity-heavy profile on the heavy workload (range queries overflow
// the 64-entry transaction capacity, so capacity aborts dominate), and
// a spurious-heavy profile. Each row reports throughput, engine-level
// aborts per completed operation, the per-cause abort split summed
// over paths, and the policy's own action counters — backoffs, free
// (budget-exempt) retries, capacity path-skips and fast-path site
// demotions. Static rows show zeros in the action columns by
// construction; the adaptive win shows up as lower aborts_per_op on
// the capacity- and spurious-heavy profiles at equal or better
// throughput.
func abortPolicy(o options) {
	n := o.threads[len(o.threads)-1]
	spuriousEvery := o.spurious
	if spuriousEvery == 0 {
		spuriousEvery = 50
	}
	fmt.Println("# Abort policy: static vs adaptive retry under three abort profiles (3-path, max threads)")
	fmt.Println("# extras: profile, policy, ops, aborts_per_op, hw_aborts_per_op, abort_conflict, abort_capacity, abort_explicit, abort_spurious, backoffs, free_retries, capacity_skips, demotions, helps")
	profiles := []struct {
		name string
		hc   htm.Config
		kind workload.Kind
	}{
		{"default", htm.Config{}, workload.Light},
		{"power8-capacity", htm.POWER8Config(), workload.Heavy},
		{"spurious", htm.Config{SpuriousEvery: spuriousEvery}, workload.Light},
	}
	for _, ds := range specs(o) {
		for _, prof := range profiles {
			if prof.kind == workload.Heavy && n < 2 {
				continue // heavy needs >= 1 updater + 1 RQ thread
			}
			for _, policy := range engine.PolicyNames {
				spec := workload.Spec{
					Structure: ds.structure,
					Algorithm: engine.AlgThreePath,
					Shards:    o.shards,
					KeySpan:   ds.keyRange,
					Router:    o.router,
					HTM:       prof.hc,
					Policy:    policy,
				}
				med, res := trial(o, o.mkSpec(spec), workload.Config{
					Threads:   n,
					Duration:  o.duration,
					KeyRange:  ds.keyRange,
					RQSizeMax: ds.rqMax,
					Kind:      prof.kind,
				})
				ps := res.PathStats
				ops := ps.Total()
				cause := func(c htm.AbortCause) uint64 {
					var t uint64
					for p := 1; p < htm.NumPaths; p++ {
						t += ps.Aborts.On(htm.PathKind(p), c)
					}
					return t
				}
				perOp, hwPerOp := 0.0, 0.0
				if ops > 0 {
					perOp = float64(ps.Aborts.Total()) / float64(ops)
					// Explicit aborts are operation-requested control flow
					// (helping, fallback-busy); the remainder is what the
					// retry policy can actually influence.
					hw := cause(htm.CauseConflict) + cause(htm.CauseCapacity) + cause(htm.CauseSpurious)
					hwPerOp = float64(hw) / float64(ops)
				}
				row{experiment: "abortpolicy", structure: ds.name,
					workload: prof.kind.String(), algorithm: "3-path",
					threads: n, shards: o.shards, throughput: med,
					extras: []string{
						kv("profile", "%s", prof.name),
						kv("policy", "%s", policy),
						kv("ops", "%d", ops),
						kv("aborts_per_op", "%.3f", perOp),
						kv("hw_aborts_per_op", "%.3f", hwPerOp),
						kv("abort_conflict", "%d", cause(htm.CauseConflict)),
						kv("abort_capacity", "%d", cause(htm.CauseCapacity)),
						kv("abort_explicit", "%d", cause(htm.CauseExplicit)),
						kv("abort_spurious", "%d", cause(htm.CauseSpurious)),
						kv("backoffs", "%d", ps.Policy.Backoffs),
						kv("free_retries", "%d", ps.Policy.FreeRetries),
						kv("capacity_skips", "%d", ps.Policy.CapacitySkips),
						kv("demotions", "%d", ps.Policy.Demotions),
						kv("helps", "%d", ps.Policy.Helps),
					}}.emit()
			}
		}
	}
}

// rqTrialResult is one rqConsistency measurement window.
type rqTrialResult struct {
	updates, rqs uint64
	stats        shard.RQStats
}

// rqConsistency measures the cost of atomic cross-shard range queries:
// one range-query thread issues multi-shard windows against a sharded
// 3-path tree with per-shard version validation while u updater threads
// churn the key space. Reported are both sides' throughput and the
// validation loop's retry and quiesce-escalation counters — the
// optimistic scheme's price as update rate grows.
func rqConsistency(o options) {
	shards := o.shards
	if shards < 2 {
		shards = 8 // the experiment is about cross-shard windows
	}
	fmt.Println("# RQ consistency: atomic cross-shard range queries under increasing update load")
	fmt.Printf("# 3-path, %d shards; each row: updaters u + 1 range-query thread\n", shards)
	fmt.Println("# extras: updaters, updates_per_sec, rqs_per_sec, rq_attempts, rq_retries, rq_escalations, retries_per_rq")
	for _, ds := range specs(o) {
		keyRange := ds.keyRange
		width := keyRange / uint64(shards)
		if width == 0 {
			width = 1
		}
		for _, n := range o.threads {
			u := n - 1
			runTrial := func(seed uint64) rqTrialResult {
				spec := workload.Spec{
					Structure: ds.structure,
					Algorithm: engine.AlgThreePath,
					Shards:    shards,
					KeySpan:   keyRange,
					Router:    o.router,
					AtomicRQ:  true,
					HTM:       o.htmCfg(htm.Config{}),
					Policy:    o.policy,
				}
				d := o.newDict(spec)
				hp := d.NewHandle()
				for k := uint64(1); k <= keyRange; k += 2 { // prefill half the keys
					hp.Insert(k, k)
				}
				var (
					stop    atomic.Bool
					updates atomic.Uint64
					rqs     atomic.Uint64
					wg      sync.WaitGroup
				)
				for g := 0; g < u; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						h := d.NewHandle()
						rng := xrand.New(seed, uint64(g)+1)
						var done uint64
						for !stop.Load() {
							k := rng.Uint64n(keyRange) + 1
							if rng.Next()&1 == 0 {
								h.Insert(k, k)
							} else {
								h.Delete(k)
							}
							done++
						}
						updates.Add(done)
					}(g)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := d.NewHandle()
					rng := xrand.New(seed, 0x5eed)
					var out []dict.KV
					var done uint64
					for !stop.Load() {
						// Windows of 1..4 shard widths: most fan out.
						lo := rng.Uint64n(keyRange) + 1
						hi := lo + width + rng.Uint64n(3*width)
						out = h.RangeQuery(lo, hi, out[:0])
						done++
					}
					rqs.Add(done)
				}()
				time.Sleep(o.duration)
				stop.Store(true)
				wg.Wait()
				return rqTrialResult{
					updates: updates.Load(),
					rqs:     rqs.Load(),
					stats:   d.(*shard.Dict).RQStats(),
				}
			}
			// Like trial(): o.trials runs, median by range-query
			// throughput reported.
			results := make([]rqTrialResult, 0, o.trials)
			for i := 0; i < o.trials; i++ {
				results = append(results, runTrial(trialSeed(o.seed, i)))
			}
			sort.Slice(results, func(i, j int) bool { return results[i].rqs < results[j].rqs })
			med := results[len(results)/2]
			secs := o.duration.Seconds()
			retPerRQ := 0.0
			if med.rqs > 0 {
				retPerRQ = float64(med.stats.Retries) / float64(med.rqs)
			}
			row{experiment: "rqconsistency", structure: ds.structure,
				algorithm: "3-path", threads: n, shards: shards,
				extras: []string{
					kv("updaters", "%d", u),
					kv("updates_per_sec", "%.0f", float64(med.updates)/secs),
					kv("rqs_per_sec", "%.0f", float64(med.rqs)/secs),
					kv("rq_attempts", "%d", med.stats.Attempts),
					kv("rq_retries", "%d", med.stats.Retries),
					kv("rq_escalations", "%d", med.stats.Escalations),
					kv("retries_per_rq", "%.3f", retPerRQ),
				}}.emit()
		}
	}
}

func headline(o options) {
	n := o.threads[len(o.threads)-1]
	fmt.Println("# Headline: (a,b)-tree, 3-path vs non-htm (paper: 4.0-4.2x at 72 threads)")
	fmt.Println("# extras: ratio_vs_non_htm (on the 3-path row); a trailing comment gives the average")
	var ratios []float64
	for _, kind := range []workload.Kind{workload.Light, workload.Heavy} {
		if kind == workload.Heavy && n < 2 {
			continue
		}
		base, _ := trial(o, func() dict.Dict { return abtree.New(abtree.Config{Algorithm: engine.AlgNonHTM}) },
			workload.Config{Threads: n, Duration: o.duration, KeyRange: o.abKeys, RQSizeMax: 10000, Kind: kind})
		acc, _ := trial(o, func() dict.Dict { return abtree.New(abtree.Config{Algorithm: engine.AlgThreePath}) },
			workload.Config{Threads: n, Duration: o.duration, KeyRange: o.abKeys, RQSizeMax: 10000, Kind: kind})
		r := acc / base
		ratios = append(ratios, r)
		row{experiment: "headline", structure: "abtree", workload: kind.String(),
			algorithm: "non-htm", threads: n, shards: 1, throughput: base}.emit()
		row{experiment: "headline", structure: "abtree", workload: kind.String(),
			algorithm: "3-path", threads: n, shards: 1, throughput: acc,
			extras: []string{kv("ratio_vs_non_htm", "%.2f", r)}}.emit()
	}
	var avg float64
	for _, r := range ratios {
		avg += r
	}
	fmt.Printf("# headline average ratio: %.2f\n", avg/float64(len(ratios)))
}
