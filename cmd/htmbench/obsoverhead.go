package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/hist"
	"htmtree/internal/htm"
	"htmtree/internal/obs"
	"htmtree/internal/workload"
)

// The obsoverhead experiment measures the observability layer's price:
// point-operation throughput and tail latency with Config.Observability
// at its default sampling (latency and hot flight-recorder events each
// 1/64, per-thread recorders on) against the uninstrumented baseline —
// both structures, unsharded and sharded, 3-path, light workload at the
// max thread count. The instrumented rows carry overhead_pct, the
// throughput cost relative to their paired baseline; CI guards it
// against the <= 5% budget.

// obsOverheadRow is one measured configuration.
type obsOverheadRow struct {
	structure   string
	shards      int
	observed    int // 0 = baseline, 1 = instrumented
	throughput  float64
	lat         *hist.Hist
	paths       map[string]uint64
	overheadPct float64 // instrumented rows only
}

// obsOverheadMeasurements runs the sweep. For each structure and shard
// count it runs o.trials *interleaved pairs* — one uninstrumented
// trial, then its instrumented twin with the same seed, back to back —
// and derives the overhead from the median of the per-pair throughput
// ratios. Pairing cancels the slow host drift (thermal, scheduler,
// co-tenant noise) that swamps a few-percent effect when all baseline
// trials run before all instrumented ones.
func obsOverheadMeasurements(o options, n, shards int) []obsOverheadRow {
	var out []obsOverheadRow
	for _, ds := range []struct {
		structure string
		keyRange  uint64
	}{{"bst", o.bstKeys}, {"abtree", o.abKeys}} {
		for _, sh := range []int{1, shards} {
			spec := workload.Spec{
				Structure: ds.structure,
				Algorithm: engine.AlgThreePath,
				Shards:    sh,
				KeySpan:   ds.keyRange,
				HTM:       o.htmCfg(htm.Config{}),
				Policy:    o.policy,
			}
			// The baseline deliberately bypasses o.newDict: with -http
			// serving, newDict instruments every tree, which would erase
			// the very difference this experiment measures.
			mkBase := spec.New
			obsSpec := spec
			obsSpec.Observe = &obs.Config{}
			mkObs := func() dict.Dict {
				d, ob := obsSpec.NewObserved()
				liveObs.Store(ob)
				return d
			}
			cfg := workload.Config{
				Threads:        n,
				Duration:       o.duration,
				KeyRange:       ds.keyRange,
				Kind:           workload.Light,
				MeasureLatency: true,
			}
			if o.zipf > 0 {
				cfg.Dist = workload.DistZipf
				cfg.ZipfTheta = o.zipf
			}
			var (
				baseT, obsT, ratios []float64
				results             [2]workload.Result
			)
			for i := 0; i < o.trials; i++ {
				cfg.Seed = trialSeed(o.seed, i)
				// Alternate which twin runs first and collect the GC debt
				// of the previous tree before each run, so neither
				// position in the pair systematically inherits the
				// other's garbage or cache state.
				order := []int{0, 1}
				if i%2 == 1 {
					order = []int{1, 0}
				}
				for _, which := range order {
					runtime.GC()
					if which == 0 {
						results[0] = workload.Run(mkBase(), cfg)
					} else {
						results[1] = workload.Run(mkObs(), cfg)
					}
				}
				for _, res := range results {
					if !res.KeySumOK {
						fmt.Fprintf(os.Stderr, "WARNING: key-sum validation FAILED (%+v)\n", cfg)
					}
				}
				baseT = append(baseT, results[0].Throughput)
				obsT = append(obsT, results[1].Throughput)
				if results[0].Throughput > 0 {
					ratios = append(ratios, results[1].Throughput/results[0].Throughput)
				}
			}
			overhead := 0.0
			if len(ratios) > 0 {
				sort.Float64s(ratios)
				overhead = 100 * (1 - ratios[len(ratios)/2])
			}
			for observed, res := range results {
				tputs := baseT
				if observed == 1 {
					tputs = obsT
				}
				sort.Float64s(tputs)
				r := obsOverheadRow{
					structure:  ds.structure,
					shards:     sh,
					observed:   observed,
					throughput: tputs[len(tputs)/2],
					lat:        res.Latency,
					paths: map[string]uint64{
						"fast":     res.PathStats.Fast,
						"middle":   res.PathStats.Middle,
						"fallback": res.PathStats.Fallback,
					},
				}
				if observed == 1 {
					r.overheadPct = overhead
				}
				out = append(out, r)
			}
		}
	}
	return out
}

// obsOverhead prints the CSV rows.
func obsOverhead(o options) {
	n := o.threads[len(o.threads)-1]
	shards := o.shards
	if shards < 2 {
		shards = 8 // compare unsharded against a genuinely sharded tree
	}
	fmt.Println("# Observability overhead: instrumented vs uninstrumented point ops (3-path, light workload, max threads)")
	fmt.Println("# extras: observed, overhead_pct (instrumented rows: throughput cost vs the paired baseline)")
	for _, m := range obsOverheadMeasurements(o, n, shards) {
		ex := []string{kv("observed", "%d", m.observed)}
		if m.observed == 1 {
			ex = append(ex, kv("overhead_pct", "%.2f", m.overheadPct))
		}
		row{experiment: "obsoverhead", structure: m.structure, workload: "light",
			algorithm: "3-path", threads: n, shards: m.shards,
			throughput: m.throughput, lat: m.lat, extras: ex}.emit()
	}
}

// obsOverheadJSON is the machine-readable artifact
// (`-format json -experiment obsoverhead`): one row per structure x
// shard count x instrumentation state, the instrumented rows carrying
// overhead_pct in extras — the schema of the committed BENCH_*_OBS.json
// guard file.
func obsOverheadJSON(o options) error {
	n := o.threads[len(o.threads)-1]
	shards := o.shards
	if shards < 2 {
		shards = 8
	}
	var rows []jsonRow
	for _, m := range obsOverheadMeasurements(o, n, shards) {
		state := "baseline"
		if m.observed == 1 {
			state = "observed"
		}
		r := jsonRow{
			Schema:     schemaVersion,
			Name:       fmt.Sprintf("obsoverhead/%s/x%d/%s", m.structure, m.shards, state),
			Throughput: m.throughput,
			Paths:      m.paths,
			Extras:     map[string]float64{"observed": float64(m.observed)},
		}
		if m.throughput > 0 {
			r.NsOp = float64(n) * 1e9 / m.throughput
		}
		if m.lat != nil && m.lat.Count() > 0 {
			r.P50Ns = m.lat.Quantile(0.5)
			r.P99Ns = m.lat.Quantile(0.99)
			r.P999Ns = m.lat.Quantile(0.999)
		}
		if m.observed == 1 {
			r.Extras["overhead_pct"] = m.overheadPct
		}
		rows = append(rows, r)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
