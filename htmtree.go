// Package htmtree is a Go reproduction of Trevor Brown's "A Template
// for Implementing Fast Lock-free Trees Using HTM" (PODC 2017).
//
// It provides two concurrent ordered dictionaries built from the LLX/SCX
// tree update template — an unbalanced external binary search tree and a
// relaxed (a,b)-tree — each runnable under every template algorithm the
// paper studies:
//
//   - NonHTM: the original lock-free template (the baseline),
//   - TLE: transactional lock elision,
//   - TwoPathConc: HTM fast path concurrent with the lock-free fallback,
//   - TwoPathNCon: HTM fast path, concurrency with the fallback disallowed,
//   - ThreePath: the paper's contribution — an uninstrumented HTM fast
//     path, an instrumented HTM middle path, and a lock-free fallback
//     path, with concurrency between adjacent paths,
//   - SCXHTM: the Section 4 algorithm (HTM-accelerated LLX/SCX
//     primitives with the operation structure unchanged).
//
// Hardware transactional memory is simulated in software (Go has no TSX
// intrinsics): transactions are opaque and strongly atomic with respect
// to non-transactional accesses, and abort with conflict / capacity /
// explicit / spurious causes, so every algorithmic interaction the paper
// describes is exercised. See DESIGN.md for the substitution argument
// and EXPERIMENTS.md for paper-versus-measured results.
//
// Quickstart:
//
//	tree, err := htmtree.NewABTree(htmtree.Config{Algorithm: htmtree.ThreePath})
//	if err != nil { ... }
//	h := tree.NewHandle() // one handle per goroutine
//	h.Insert(42, 1)
//	v, ok := h.Search(42)
//	pairs := h.RangeQuery(0, 100, nil)
package htmtree

import (
	"fmt"
	"strconv"
	"time"

	"htmtree/internal/abtree"
	"htmtree/internal/batch"
	"htmtree/internal/bst"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/fault"
	"htmtree/internal/htm"
	"htmtree/internal/obs"
	"htmtree/internal/shard"
)

// Algorithm names one of the template implementations.
type Algorithm string

// The template algorithms of the paper.
const (
	NonHTM      Algorithm = "non-htm"
	TLE         Algorithm = "tle"
	TwoPathConc Algorithm = "2-path-con"
	TwoPathNCon Algorithm = "2-path-ncon"
	ThreePath   Algorithm = "3-path"
	SCXHTM      Algorithm = "scx-htm"
)

// Algorithms lists every algorithm in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{NonHTM, TLE, TwoPathConc, TwoPathNCon, ThreePath, SCXHTM}
}

// MaxKey is the largest key a client may store (larger values are
// reserved for internal sentinels).
const MaxKey = dict.MaxKey

// Policy names a retry policy: what the engine does with the abort
// cause (conflict / capacity / spurious / explicit) a failed
// transactional attempt reports.
type Policy string

// Retry policies.
const (
	// PolicyAdaptive (the default) adapts per cause: randomized bounded
	// exponential backoff before conflict retries, immediate path
	// abandonment on capacity aborts (with per-site capacity memory
	// that starts repeat offenders past the fast path), and bounded
	// budget-free retries after spurious aborts.
	PolicyAdaptive Policy = "adaptive"
	// PolicyStatic is the cause-blind baseline: fixed attempt budgets,
	// no backoff — the loops of the paper's Section 7 setup.
	PolicyStatic Policy = "static"
)

// Policies lists every retry policy, default first.
func Policies() []Policy { return []Policy{PolicyAdaptive, PolicyStatic} }

// TMBackend names a transactional-memory backend implementation.
type TMBackend string

// TM backends.
const (
	// TMBackendSim (the default) is the TL2-flavoured simulator:
	// optimistic per-cell versioning with capacity limits and spurious
	// abort injection.
	TMBackendSim TMBackend = "sim"
	// TMBackendTLELock serializes each tree's (or shard's) transactions
	// on a mutex: no conflicts between transactions, no footprint
	// limit, no spurious aborts — the classic software substitute on
	// machines without TM. Strong atomicity against non-transactional
	// fallback-path code is preserved (commits still run the versioned
	// protocol).
	TMBackendTLELock TMBackend = "tle-lock"
)

// TMBackends lists every TM backend, default first.
func TMBackends() []TMBackend { return []TMBackend{TMBackendSim, TMBackendTLELock} }

// RouterKind names a shard-routing policy for sharded trees.
type RouterKind string

// Shard routing policies.
const (
	// RouterRange is the default contiguous key-range split: shard i
	// owns [i*width, (i+1)*width). Fast, order-preserving fan-outs, but
	// a skewed (Zipfian / hot-range) workload collapses onto the shard
	// owning the hot keys.
	RouterRange RouterKind = "range"
	// RouterHash scatters keys across shards by a mixing hash:
	// skew-oblivious, but every multi-key RangeQuery must visit all
	// shards and merge-sort the results.
	RouterHash RouterKind = "hash"
	// RouterAdaptive is the range router plus live rebalancing: the
	// tree tracks per-shard operation counts and, when one shard runs
	// disproportionately hot, migrates a boundary slice of its key range
	// to a neighbor shard by briefly quiescing exactly the two affected
	// shards and swapping the routing table. Implies the
	// AtomicRangeQueries read-validation protocol.
	RouterAdaptive RouterKind = "adaptive"
)

// RouterKinds lists every routing policy in presentation order.
func RouterKinds() []RouterKind {
	return []RouterKind{RouterRange, RouterHash, RouterAdaptive}
}

// KV is a key-value pair returned by range queries.
type KV struct {
	Key, Val uint64
}

// Agg is the aggregate tuple of a key range: the sum and count of the
// keys present, and the smallest and largest of them. An empty range
// has Count == 0 with Min == MaxUint64 and Max == 0 (the merge
// identities); check Count before trusting Min/Max.
type Agg struct {
	Sum, Count, Min, Max uint64
}

// Config configures a tree. The zero value selects the 3-path algorithm
// with the paper's default parameters.
type Config struct {
	// Algorithm selects the template implementation (default ThreePath).
	Algorithm Algorithm

	// ReadCapacity and WriteCapacity bound the simulated transactional
	// footprint (defaults model an Intel-like HTM).
	ReadCapacity, WriteCapacity int
	// POWER8Profile selects the much smaller POWER8-like transactional
	// footprint (Section 8 of the paper) instead.
	POWER8Profile bool
	// SpuriousAbortEvery injects a spurious abort with probability
	// 1/SpuriousAbortEvery per transactional access (0 disables).
	SpuriousAbortEvery uint64
	// TMBackend selects the transactional-memory implementation
	// (default TMBackendSim). The capacity and spurious knobs above
	// only apply to the simulator.
	TMBackend TMBackend

	// RetryPolicy selects how the engine reacts to each abort cause
	// (default PolicyAdaptive).
	RetryPolicy Policy

	// AttemptLimit is the fast-path budget for TLE and the 2-path
	// algorithms (default 20); FastLimit and MiddleLimit are the 3-path
	// budgets (default 10 each).
	AttemptLimit, FastLimit, MiddleLimit int
	// UseSNZI replaces the fallback-presence counter with a scalable
	// non-zero indicator.
	UseSNZI bool
	// HelpableFallback replaces the TLE fallback's classic spin lock
	// with a helpable lock: a fallback operation announces itself as a
	// descriptor before taking the lock word, and any thread that finds
	// the word held completes the announced operation instead of
	// spinning — so a preempted lock holder no longer stalls every other
	// thread (the lock-free-locks construction). TLE algorithm only;
	// ignored by the others, whose fallbacks are already lock-free.
	HelpableFallback bool
	// PreemptFallbackPoint, when non-nil, is called once by each
	// fallback operation immediately after it acquires (or, with
	// HelpableFallback, announces under) the fallback lock — a
	// scheduling-perturbation hook for oversubscription stress tests.
	//
	// Deprecated: use Faults with a FaultFallbackOwner rule, which
	// generalizes this hook to deterministic triggers, stalls, and
	// permanent owner death. The field keeps working: it is compiled
	// into the tree's fault plan as a Func rule firing on every
	// fallback entry.
	PreemptFallbackPoint func()
	// Faults, when non-nil, arms the deterministic fault-injection
	// plane (NewFaultPlan) across every layer of the tree: forced
	// transactional aborts, fallback-owner stalls and permanent owner
	// death, quiesce and migration interruptions, reclamation pin
	// stalls, aggregate-seqlock writer stalls, and batch flush delays.
	// One plan may be shared by several trees; its per-point counters
	// are then global. On an observed tree (Observability set) every
	// fired fault is additionally recorded in the flight recorder as a
	// fault_abort / fault_stall / fault_kill event, so a chaos failure
	// reproduces from the (seed, plan) pair alone. Nil (the default)
	// compiles every injection check to a single predictable branch.
	Faults *FaultPlan
	// SearchOutsideTx enables the Section 8 optimization: operations
	// locate their target with unsubscribed reads and revalidate inside
	// the transaction.
	SearchOutsideTx bool

	// A and B are the (a,b)-tree degree bounds (defaults 6 and 16;
	// ignored by the BST).
	A, B int

	// Shards is the partition count for NewShardedBST / NewShardedABTree
	// (default 8; ignored by NewBST / NewABTree). Each
	// shard is an independent tree with its own engine, HTM context, and
	// fallback indicator.
	Shards int
	// ShardKeySpan is the exclusive upper bound of the key range the
	// partition is balanced over (default MaxKey+1). Set it near the
	// workload's key range so the shards share load evenly; larger keys
	// remain legal and route to the last shard.
	ShardKeySpan uint64
	// Router selects how keys map to shards on a sharded tree (default
	// RouterRange, the original contiguous split). RouterHash scatters
	// keys (skew-oblivious, all-shard range queries); RouterAdaptive
	// adds live key-range rebalancing to the range split. Ignored by
	// unsharded trees.
	Router RouterKind
	// RebalanceCheckOps is the number of point operations a handle
	// performs between shard-imbalance evaluations with RouterAdaptive
	// (default 1024). Smaller values react to skew faster but evaluate
	// more often.
	RebalanceCheckOps int
	// RebalanceRatio triggers a migration when the busiest shard
	// performed more than RebalanceRatio times the per-shard mean of
	// recent operations (default 1.5). Values in (0, 1] force a
	// migration on every evaluation — useful in tests.
	RebalanceRatio float64
	// AtomicRangeQueries makes RangeQuery and KeySum on a sharded tree
	// atomic across shards: every shard carries a version/epoch monitor
	// that updaters advance exactly at operation commit, and a
	// multi-shard read validates that no shard's version moved while it
	// ran, retrying (and, after RQRetries attempts, briefly quiescing
	// the overlapping shards) otherwise. Without it, a cross-shard read
	// observes each shard at a possibly different point in time.
	// Ignored by unsharded trees, whose reads are single operations and
	// already atomic.
	AtomicRangeQueries bool
	// RQRetries bounds the optimistic validation attempts of an atomic
	// cross-shard read before it escalates to quiescing the overlapping
	// shards (default 8). Ignored unless AtomicRangeQueries.
	RQRetries int

	// BatchMaxOps is the buffer size at which an asynchronous handle
	// (NewAsyncHandle, Handle.Batch) flushes its pending operations as
	// one sorted, shard-grouped batch (default 64). Larger batches
	// amortize routing and admission overhead further but delay
	// results longer.
	BatchMaxOps int
	// BatchMaxDelay bounds how long an asynchronous operation may sit
	// buffered before a background timer flushes it (0, the default,
	// disables the timer: the buffer flushes only on size, RangeQuery,
	// Flush, or Wait). Applies to NewAsyncHandle; Handle.Batch contexts
	// never arm the timer so the underlying Handle stays usable from
	// its own goroutine.
	BatchMaxDelay time.Duration
	// BatchRQNoFlush leaves buffered point operations in place when an
	// asynchronous RangeQuery arrives. By default the query flushes
	// them first, so it observes the handle's own pending writes
	// (read-your-writes).
	BatchRQNoFlush bool

	// Observability, when non-nil, attaches the live observability
	// layer: a pull-model metrics registry over the counters the tree
	// already maintains (Prometheus text and JSON exposition), sampled
	// operation latency histograms, per-thread flight recorders of
	// abort/help/migration events, and runtime/trace regions around
	// operation execution. Retrieve the domain with Tree.Obs and serve
	// it over HTTP with obs.Serve. The zero ObsConfig selects the
	// default sampling rates; instrumented steady-state point
	// operations stay allocation-free.
	Observability *ObsConfig
}

// ObsConfig configures the observability layer (Config.Observability).
// The zero value selects the defaults; see each field for how to
// disable its subsystem outright.
type ObsConfig struct {
	// LatencySample times one point operation in every LatencySample
	// (default 64; negative disables latency timing).
	LatencySample int
	// EventSample records one hot-path flight-recorder event (operation
	// completions, transactional aborts) in every EventSample (default
	// 64; negative disables hot events). Cold events — announce, help,
	// install, fallback acquisition, quiesce, migration — are always
	// recorded.
	EventSample int
	// EventBuffer is the per-thread flight-recorder ring capacity in
	// events, rounded up to a power of two (default 2048; negative
	// disables the recorder entirely).
	EventBuffer int
}

// Fault-injection plane (internal/fault), re-exported for external
// chaos harnesses: a FaultPlan compiles a seed and per-point FaultRule
// triggers into deterministic injected effects at the named seams.
// See Config.Faults and ARCHITECTURE.md ("Fault injection & liveness
// checking") for the point catalogue and reproduction workflow.
type (
	// FaultPlan is a compiled, live fault plan (fault.Plan).
	FaultPlan = fault.Plan
	// FaultRule arms one injection point (fault.Rule).
	FaultRule = fault.Rule
	// FaultPoint names an injection point (fault.Point).
	FaultPoint = fault.Point
	// FaultLiveness is the progress watchdog (fault.Liveness):
	// attach with plan.Watch, feed it completed operations with
	// OpDone, and Check that throughput stayed nonzero during every
	// watched stall window.
	FaultLiveness = fault.Liveness
)

// The injection-point catalogue (see the fault package for the exact
// seam each point is compiled into).
const (
	FaultTxAccess      = fault.PointTxAccess
	FaultFallbackOwner = fault.PointFallbackOwner
	FaultQuiesce       = fault.PointQuiesce
	FaultMigrateSwap   = fault.PointMigrateSwap
	FaultMigrateDelete = fault.PointMigrateDelete
	FaultEBRPin        = fault.PointEBRPin
	FaultAggFixup      = fault.PointAggFixup
	FaultBatchFlush    = fault.PointBatchFlush
)

// NewFaultPlan compiles a fault plan from a seed and rules
// (fault.New). Every trigger decision is a pure function of the seed,
// the point, and the per-point encounter index, so a run reproduces
// from the (seed, plan) pair.
func NewFaultPlan(seed uint64, rules ...FaultRule) *FaultPlan {
	return fault.New(seed, rules...)
}

// withFaults resolves the effective fault plan: Config.Faults extended
// with the deprecated PreemptFallbackPoint hook compiled to a
// FaultFallbackOwner Func rule firing on every fallback entry. Public
// constructors call it once, before any per-shard construction, so a
// sharded tree's shards share one compiled plan (and one set of
// encounter counters).
func (c Config) withFaults() Config {
	if c.PreemptFallbackPoint != nil {
		c.Faults = c.Faults.With(FaultRule{
			Point: FaultFallbackOwner,
			Func:  c.PreemptFallbackPoint,
		})
		c.PreemptFallbackPoint = nil
	}
	return c
}

// wireFaultRecorder bridges fired faults into the flight recorder:
// every fire becomes a cold event (fault_abort for forced
// transactional aborts, fault_kill for owner death, fault_stall
// otherwise) with A = the fault point and B = the per-point fire
// sequence number, so a recorded chaos run names exactly which
// injections it suffered.
func wireFaultRecorder(p *FaultPlan, o *obs.Obs) {
	if p == nil || o == nil {
		return
	}
	rec := o.Node().NewThread()
	p.SetOnFire(func(e fault.Effect) {
		kind := obs.EvFaultStall
		switch {
		case e.Point == fault.PointTxAccess:
			kind = obs.EvFaultAbort
		case e.Kill:
			kind = obs.EvFaultKill
		}
		rec.RareEvent(kind, 0, htm.CauseNone, uint64(e.Point), e.Seq)
	})
}

// domain builds the tree's observability domain, nil when disabled.
func (c Config) obsDomain() *obs.Obs {
	if c.Observability == nil {
		return nil
	}
	return obs.New(obs.Config{
		LatencySample: c.Observability.LatencySample,
		EventSample:   c.Observability.EventSample,
		EventBuffer:   c.Observability.EventBuffer,
	})
}

// obsNode returns an unlabelled registration node of o, or nil.
func obsNode(o *obs.Obs) *obs.Node {
	if o == nil {
		return nil
	}
	return o.Node()
}

func (c Config) algorithm() (engine.Algorithm, error) {
	if c.Algorithm == "" {
		return engine.AlgThreePath, nil
	}
	a, ok := engine.ParseAlgorithm(string(c.Algorithm))
	if !ok {
		return 0, fmt.Errorf("htmtree: unknown algorithm %q", c.Algorithm)
	}
	return a, nil
}

func (c Config) htmConfig() (htm.Config, error) {
	cfg := htm.Config{
		ReadCapacity:  c.ReadCapacity,
		WriteCapacity: c.WriteCapacity,
		SpuriousEvery: c.SpuriousAbortEvery,
		Faults:        c.Faults,
	}
	switch c.TMBackend {
	case "", TMBackendSim:
	case TMBackendTLELock:
		cfg.Backend = htm.BackendTLELock
	default:
		return cfg, fmt.Errorf("htmtree: unknown TM backend %q", c.TMBackend)
	}
	if c.POWER8Profile {
		p := htm.POWER8Config()
		if cfg.ReadCapacity == 0 {
			cfg.ReadCapacity = p.ReadCapacity
		}
		if cfg.WriteCapacity == 0 {
			cfg.WriteCapacity = p.WriteCapacity
		}
	}
	return cfg, nil
}

func (c Config) engineConfig() (engine.Config, error) {
	cfg := engine.Config{
		AttemptLimit:     c.AttemptLimit,
		FastLimit:        c.FastLimit,
		MiddleLimit:      c.MiddleLimit,
		HelpableFallback: c.HelpableFallback,
		// PreemptFallbackPoint is not mapped here: withFaults compiled
		// it into c.Faults before construction.
		Faults: c.Faults,
	}
	if c.UseSNZI {
		cfg.Indicator = engine.NewSNZIIndicator()
	}
	pol, ok := engine.ParsePolicy(string(c.RetryPolicy))
	if !ok {
		return cfg, fmt.Errorf("htmtree: unknown retry policy %q", c.RetryPolicy)
	}
	cfg.Policy = pol
	return cfg, nil
}

// statsSource exposes the internal statistics of a tree.
type statsSource interface {
	OpStats() engine.OpStats
	HTMStats() htm.Stats
}

// Tree is a concurrent ordered dictionary (BST or (a,b)-tree) built from
// the accelerated tree update template. Create one with NewBST or
// NewABTree and access it through per-goroutine handles.
type Tree struct {
	d          dict.Dict
	stats      statsSource
	invariants func(strict bool) error

	// aggStats reports how many aggregate queries were answered by the
	// O(log n) transactional descent versus the LLX-validated leaf walk
	// (nil for structures without maintained aggregates, i.e. the BST).
	aggStats func() (fast, walk uint64)

	// batchCfg templates the pipelines behind NewAsyncHandle and
	// Handle.Batch; batchCtrs aggregates their flush activity for
	// Stats.Batch.
	batchCfg  batch.Config
	batchCtrs *batch.Counters

	// obs is the live observability domain (nil unless
	// Config.Observability was set).
	obs *obs.Obs
}

// Obs returns the tree's observability domain — nil unless the tree
// was built with Config.Observability. Serve it over HTTP with
// obs.Serve, scrape it directly with Obs.Snapshot/WriteProm, or drain
// the flight recorders with Obs.Events.
func (t *Tree) Obs() *obs.Obs { return t.obs }

// setBatchConfig validates the async-batching knobs and installs the
// pipeline template every constructor shares.
func (t *Tree) setBatchConfig(cfg Config) error {
	if cfg.BatchMaxOps < 0 {
		return fmt.Errorf("htmtree: Config.BatchMaxOps = %d (want >= 0; 0 selects the default %d)",
			cfg.BatchMaxOps, batch.DefaultMaxOps)
	}
	if cfg.BatchMaxDelay < 0 {
		return fmt.Errorf("htmtree: Config.BatchMaxDelay = %v (want >= 0; 0 disables the flush timer)",
			cfg.BatchMaxDelay)
	}
	t.batchCtrs = &batch.Counters{}
	t.batchCfg = batch.Config{
		MaxOps:       cfg.BatchMaxOps,
		MaxDelay:     cfg.BatchMaxDelay,
		RangeNoFlush: cfg.BatchRQNoFlush,
		Counters:     t.batchCtrs,
		Faults:       cfg.Faults,
	}
	return nil
}

// withBatch finishes a constructed tree by installing the async
// batching configuration (all four public constructors go through it).
func withBatch(t *Tree, err error, cfg Config) (*Tree, error) {
	if err != nil {
		return nil, err
	}
	if err := t.setBatchConfig(cfg); err != nil {
		return nil, err
	}
	return t, nil
}

// withObs attaches the observability domain to a finished tree and
// registers the tree-level metric families (batch-flush activity; the
// engine and shard layers registered their own families during
// construction). Runs after withBatch so batchCtrs exists.
func withObs(t *Tree, err error, o *obs.Obs) (*Tree, error) {
	if err != nil || o == nil {
		return t, err
	}
	t.obs = o
	ctrs := t.batchCtrs
	n := o.Node()
	n.Counter("htmtree_batch_flushes_total",
		"Non-empty batch buffer flushes across the tree's asynchronous handles.",
		func(emit obs.Point) { emit(float64(ctrs.Snapshot().Flushes)) })
	n.Counter("htmtree_batch_flushed_ops_total",
		"Point operations carried by batch flushes.",
		func(emit obs.Point) { emit(float64(ctrs.Snapshot().FlushedOps)) })
	return t, nil
}

// NewBST creates an unbalanced external binary search tree (paper
// Section 6.1).
func NewBST(cfg Config) (*Tree, error) {
	cfg = cfg.withFaults()
	o := cfg.obsDomain()
	wireFaultRecorder(cfg.Faults, o)
	t, err := newBST(cfg, nil, obsNode(o))
	t, err = withBatch(t, err, cfg)
	return withObs(t, err, o)
}

func newBST(cfg Config, mon *engine.UpdateMonitor, node *obs.Node) (*Tree, error) {
	alg, err := cfg.algorithm()
	if err != nil {
		return nil, err
	}
	hcfg, err := cfg.htmConfig()
	if err != nil {
		return nil, err
	}
	ecfg, err := cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	ecfg.Monitor = mon
	ecfg.Obs = node
	t := bst.New(bst.Config{
		Algorithm:       alg,
		HTM:             hcfg,
		Engine:          ecfg,
		SearchOutsideTx: cfg.SearchOutsideTx,
	})
	return &Tree{
		d:     t,
		stats: t,
		invariants: func(bool) error {
			return t.CheckInvariants()
		},
	}, nil
}

// NewABTree creates a relaxed (a,b)-tree (paper Section 6.2).
func NewABTree(cfg Config) (*Tree, error) {
	cfg = cfg.withFaults()
	o := cfg.obsDomain()
	wireFaultRecorder(cfg.Faults, o)
	t, err := newABTree(cfg, nil, obsNode(o))
	t, err = withBatch(t, err, cfg)
	return withObs(t, err, o)
}

func newABTree(cfg Config, mon *engine.UpdateMonitor, node *obs.Node) (*Tree, error) {
	alg, err := cfg.algorithm()
	if err != nil {
		return nil, err
	}
	if cfg.A != 0 && (cfg.A < 2 || cfg.B < 2*cfg.A-1) {
		return nil, fmt.Errorf("htmtree: invalid degree bounds a=%d b=%d", cfg.A, cfg.B)
	}
	hcfg, err := cfg.htmConfig()
	if err != nil {
		return nil, err
	}
	ecfg, err := cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	ecfg.Monitor = mon
	ecfg.Obs = node
	t := abtree.New(abtree.Config{
		A:               cfg.A,
		B:               cfg.B,
		Algorithm:       alg,
		HTM:             hcfg,
		Engine:          ecfg,
		SearchOutsideTx: cfg.SearchOutsideTx,
	})
	return &Tree{d: t, stats: t, invariants: t.CheckInvariants, aggStats: t.AggStats}, nil
}

// newSharded partitions the key space across cfg.Shards instances built
// by mk, wiring aggregate stats and invariant checking through the
// shard layer. With AtomicRangeQueries or RouterAdaptive each inner
// tree's engine gets the shard's update monitor, and the SNZI
// preference carries over to the quiesce gates. With an observability
// domain each inner engine registers its families under a shard="i"
// label and the shard layer registers its own (read validation,
// migration) unlabelled.
func newSharded(cfg Config, o *obs.Obs, mk func(mon *engine.UpdateMonitor, node *obs.Node) (*Tree, error)) (*Tree, error) {
	var inner []*Tree
	var ctorErr error
	scfg := shard.Config{
		Shards:    cfg.Shards,
		KeySpan:   cfg.ShardKeySpan,
		Atomic:    cfg.AtomicRangeQueries,
		RQRetries: cfg.RQRetries,
		Obs:       obsNode(o),
		Faults:    cfg.Faults,
		New: func(i int, mon *engine.UpdateMonitor) dict.Dict {
			var node *obs.Node
			if o != nil {
				node = o.Node(obs.L("shard", strconv.Itoa(i)))
			}
			t, mkErr := mk(mon, node)
			if mkErr != nil {
				ctorErr = mkErr
				return emptyDict{}
			}
			inner = append(inner, t)
			return t.d
		},
	}
	switch cfg.Router {
	case "", RouterRange:
		// The default contiguous split, built by the shard layer.
	case RouterHash:
		n := cfg.Shards
		if n == 0 {
			n = shard.DefaultShards
		}
		r, rerr := shard.NewHashRouter(n)
		if rerr != nil {
			return nil, rerr
		}
		scfg.Router = r
	case RouterAdaptive:
		scfg.Rebalance = &shard.RebalanceConfig{
			CheckOps: cfg.RebalanceCheckOps,
			Ratio:    cfg.RebalanceRatio,
		}
	default:
		return nil, fmt.Errorf("htmtree: unknown router %q", cfg.Router)
	}
	if cfg.UseSNZI {
		scfg.Gate = func(int) engine.Indicator { return engine.NewSNZIIndicator() }
	}
	sd, err := shard.New(scfg)
	if err != nil {
		return nil, err
	}
	if ctorErr != nil {
		return nil, ctorErr
	}
	st := &Tree{
		d:     sd,
		stats: sd,
		invariants: func(strict bool) error {
			for i, t := range inner {
				if ivErr := t.invariants(strict); ivErr != nil {
					return fmt.Errorf("shard %d: %w", i, ivErr)
				}
			}
			return sd.CheckPartition()
		},
	}
	if len(inner) > 0 && inner[0].aggStats != nil {
		st.aggStats = func() (fast, walk uint64) {
			for _, t := range inner {
				f, w := t.aggStats()
				fast += f
				walk += w
			}
			return fast, walk
		}
	}
	return st, nil
}

// emptyDict stands in for a shard whose constructor failed; the shard
// dictionary holding it is discarded before use.
type emptyDict struct{}

func (emptyDict) NewHandle() dict.Handle      { return nil }
func (emptyDict) KeySum() (sum, count uint64) { return 0, 0 }

// NewShardedBST creates a sharded BST: the key space is partitioned
// across cfg.Shards independent trees (each with its own engine, HTM
// context, and fallback indicator). Point operations route to the
// owning shard; RangeQuery fans out to the overlapping shards and
// returns a globally key-ordered result — atomic per shard always, and
// atomic across shards when cfg.AtomicRangeQueries is set; KeySum,
// Stats, and CheckInvariants aggregate.
func NewShardedBST(cfg Config) (*Tree, error) {
	cfg = cfg.withFaults()
	o := cfg.obsDomain()
	wireFaultRecorder(cfg.Faults, o)
	t, err := newSharded(cfg, o, func(mon *engine.UpdateMonitor, node *obs.Node) (*Tree, error) {
		return newBST(cfg, mon, node)
	})
	t, err = withBatch(t, err, cfg)
	return withObs(t, err, o)
}

// NewShardedABTree creates a sharded relaxed (a,b)-tree; see
// NewShardedBST for the partitioning contract.
func NewShardedABTree(cfg Config) (*Tree, error) {
	cfg = cfg.withFaults()
	o := cfg.obsDomain()
	wireFaultRecorder(cfg.Faults, o)
	t, err := newSharded(cfg, o, func(mon *engine.UpdateMonitor, node *obs.Node) (*Tree, error) {
		return newABTree(cfg, mon, node)
	})
	t, err = withBatch(t, err, cfg)
	return withObs(t, err, o)
}

// NewHandle registers a per-goroutine handle. Handles must not be shared
// between goroutines.
func (t *Tree) NewHandle() *Handle {
	return &Handle{t: t, h: t.d.NewHandle()}
}

// NewAsyncHandle registers a per-goroutine asynchronous handle: point
// operations enqueue into a batch buffer and return futures, and the
// buffer flushes as one key-sorted, shard-grouped batch when it
// reaches Config.BatchMaxOps, when Config.BatchMaxDelay elapses, on an
// asynchronous RangeQuery (unless Config.BatchRQNoFlush), on Flush, or
// when a future of a still-buffered operation is waited on. On a
// sharded tree each shard-group executes with one router lookup and
// one monitor admission instead of one per operation — the batching
// subsystem's amortization, reported by Stats.Batch.
//
// One goroutine should enqueue per AsyncHandle (like Handle); with
// BatchMaxDelay set, the background timer may flush concurrently,
// which the handle synchronizes internally.
func (t *Tree) NewAsyncHandle() *AsyncHandle {
	return &AsyncHandle{p: batch.New(t.d.NewHandle(), t.batchCfg)}
}

// Batch returns an asynchronous batching context over this handle's
// registration. It shares the underlying per-goroutine handle: while
// batched operations are pending, direct Handle calls would interleave
// with a flush, so use one style at a time (Flush drains the context,
// after which the Handle is plainly usable again). Unlike
// NewAsyncHandle, a Batch context never arms the BatchMaxDelay timer —
// flushes happen only on size, RangeQuery, Flush, or Wait, always on
// the calling goroutine.
func (h *Handle) Batch() *AsyncHandle {
	cfg := h.t.batchCfg
	cfg.MaxDelay = 0
	return &AsyncHandle{p: batch.New(h.h, cfg)}
}

// KeySum returns the sum and count of the keys present (the paper's
// validation checksum). On a sharded tree with AtomicRangeQueries it is
// a consistent cut and may run concurrently with updates; otherwise it
// is quiescent use only.
func (t *Tree) KeySum() (sum, count uint64) { return t.d.KeySum() }

// CheckInvariants validates the structure (quiescent use only).
func (t *Tree) CheckInvariants() error { return t.invariants(true) }

// Handle is a per-goroutine handle to a Tree.
type Handle struct {
	t   *Tree
	h   dict.Handle
	buf []dict.KV
}

// Insert associates key with val, returning the previous value and
// whether the key was already present.
func (h *Handle) Insert(key, val uint64) (old uint64, existed bool) {
	return h.h.Insert(key, val)
}

// Delete removes key, returning its value and whether it was present.
func (h *Handle) Delete(key uint64) (old uint64, existed bool) {
	return h.h.Delete(key)
}

// Search returns the value associated with key, if present.
func (h *Handle) Search(key uint64) (val uint64, found bool) {
	return h.h.Search(key)
}

// RangeQuery appends all pairs with lo <= key < hi, in ascending key
// order, to out and returns the extended slice.
func (h *Handle) RangeQuery(lo, hi uint64, out []KV) []KV {
	h.buf = h.h.RangeQuery(lo, hi, h.buf[:0])
	for _, p := range h.buf {
		out = append(out, KV{Key: p.Key, Val: p.Val})
	}
	return out
}

// Help drives one announced helpable-fallback operation (if any) to
// completion on this handle's thread and reports whether it helped; on
// a sharded tree it fans over every shard. Normal operation never
// needs it — blocked threads help automatically — but a chaos harness
// whose fault plan killed an owner after its announcement loops Help
// to drain the orphaned descriptor before final verification. Returns
// false on trees without the helpable fallback.
func (h *Handle) Help() bool {
	if hh, ok := h.h.(dict.Helper); ok {
		return hh.Help()
	}
	return false
}

// RangeAgg returns the aggregate tuple (key sum, count, min, max) of
// the keys in [lo, hi), atomically with respect to concurrent updates.
//
// On an (a,b)-tree it descends transactionally maintained subtree
// aggregates in O(log n), independent of the range size; on the BST it
// walks the range (the O(range) control — see ARCHITECTURE.md). On a
// sharded tree it merges per-shard tuples into a consistent cut, which
// requires AtomicRangeQueries (or RouterAdaptive); other sharded
// configurations return an error.
func (h *Handle) RangeAgg(lo, hi uint64) (Agg, error) {
	ah, ok := h.h.(dict.AggHandle)
	if !ok {
		return Agg{Min: ^uint64(0)}, fmt.Errorf("htmtree: %T does not support aggregate queries", h.h)
	}
	a, err := ah.RangeAgg(lo, hi)
	return Agg{Sum: a.Sum, Count: a.Count, Min: a.Min, Max: a.Max}, err
}

// RangeSum returns the sum and count of the keys in [lo, hi); see
// RangeAgg for the atomicity contract and cost model.
func (h *Handle) RangeSum(lo, hi uint64) (sum, count uint64, err error) {
	a, err := h.RangeAgg(lo, hi)
	return a.Sum, a.Count, err
}

// Count returns the number of keys present. Unlike Tree.KeySum it is
// atomic with respect to concurrent updates (see RangeAgg).
func (h *Handle) Count() (uint64, error) {
	a, err := h.RangeAgg(0, MaxKey+1)
	return a.Count, err
}

// Min returns the smallest key present (ok reports whether the tree
// was non-empty); see RangeAgg for the atomicity contract.
func (h *Handle) Min() (key uint64, ok bool, err error) {
	a, err := h.RangeAgg(0, MaxKey+1)
	return a.Min, a.Count > 0, err
}

// Max returns the largest key present (ok reports whether the tree was
// non-empty); see RangeAgg for the atomicity contract.
func (h *Handle) Max() (key uint64, ok bool, err error) {
	a, err := h.RangeAgg(0, MaxKey+1)
	return a.Max, a.Count > 0, err
}

// AsyncHandle is a per-goroutine asynchronous, batching handle to a
// Tree (see Tree.NewAsyncHandle and Handle.Batch). Operations on
// different keys may be reordered within a batch (execution is sorted
// by key and grouped by shard); operations on the same key keep their
// enqueue order, and every future resolves to the result its operation
// saw at its place in that execution.
type AsyncHandle struct {
	p *batch.Pipeline
}

// Insert enqueues an asynchronous insert. The future resolves to the
// previous value and whether the key already existed.
func (h *AsyncHandle) Insert(key, val uint64) PointFuture {
	return PointFuture{p: h.p.Insert(key, val)}
}

// Delete enqueues an asynchronous delete. The future resolves to the
// removed value and whether the key was present.
func (h *AsyncHandle) Delete(key uint64) PointFuture {
	return PointFuture{p: h.p.Delete(key)}
}

// Search enqueues an asynchronous search. The future resolves to the
// value found and whether the key was present at the operation's place
// in the batch — a search enqueued after an insert of the same key
// sees that insert.
func (h *AsyncHandle) Search(key uint64) PointFuture {
	return PointFuture{p: h.p.Search(key)}
}

// RangeQuery runs an asynchronous range query over [lo, hi). Unless
// the tree was configured with BatchRQNoFlush it first flushes the
// buffered point operations (read-your-writes). The returned future is
// already completed; it exists for OnComplete chaining symmetry.
func (h *AsyncHandle) RangeQuery(lo, hi uint64) RangeFuture {
	return RangeFuture{p: h.p.RangeQuery(lo, hi)}
}

// Flush executes every buffered operation now and completes its
// future. Flushing an empty handle is a no-op.
func (h *AsyncHandle) Flush() { h.p.Flush() }

// Pending returns the number of buffered, not yet executed operations.
func (h *AsyncHandle) Pending() int { return h.p.Pending() }

// PointFuture is the result of an asynchronous Insert, Delete, or
// Search. The zero value is invalid; futures come from AsyncHandle.
type PointFuture struct {
	p *batch.PointPromise
}

// Wait blocks until the operation executed and returns its result —
// (previous value, existed) for Insert and Delete, (value, found) for
// Search. Waiting on a still-buffered operation flushes the owning
// handle first; calling Wait repeatedly returns the same result.
func (f PointFuture) Wait() (val uint64, ok bool) {
	r := f.p.Wait()
	return r.Val, r.OK
}

// Done reports whether the result is available without blocking.
func (f PointFuture) Done() bool { return f.p.Done() }

// OnComplete registers fn to run with the result once the operation
// executes (immediately, on the caller, if it already has). fn runs on
// the flushing goroutine and must not call back into the owning
// asynchronous handle.
func (f PointFuture) OnComplete(fn func(val uint64, ok bool)) {
	f.p.OnComplete(func(r batch.PointResult) { fn(r.Val, r.OK) })
}

// RangeFuture is the result of an asynchronous RangeQuery.
type RangeFuture struct {
	p *batch.RangePromise
}

// Wait returns the query's pairs in ascending key order.
func (f RangeFuture) Wait() []KV {
	pairs := f.p.Wait()
	out := make([]KV, len(pairs))
	for i, p := range pairs {
		out[i] = KV{Key: p.Key, Val: p.Val}
	}
	return out
}

// Done reports whether the result is available without blocking.
func (f RangeFuture) Done() bool { return f.p.Done() }

// OnComplete registers fn to run with the result once the query
// executes; see PointFuture.OnComplete for the callback contract.
func (f RangeFuture) OnComplete(fn func([]KV)) {
	f.p.OnComplete(func(pairs []dict.KV) {
		out := make([]KV, len(pairs))
		for i, p := range pairs {
			out[i] = KV{Key: p.Key, Val: p.Val}
		}
		fn(out)
	})
}

// PathCounts counts events per execution path.
type PathCounts struct {
	Fast, Middle, Fallback uint64
}

// Total sums the three paths.
func (p PathCounts) Total() uint64 { return p.Fast + p.Middle + p.Fallback }

// RangeQueryStats counts the outcomes of atomic cross-shard reads.
type RangeQueryStats struct {
	// Attempts counts validated snapshot attempts (including the
	// successful final attempt of every read), Retries the attempts
	// invalidated by concurrent updates, and Escalations the reads that
	// exhausted the optimistic budget and briefly quiesced their shards.
	Attempts, Retries, Escalations uint64
}

// BatchStats counts batched/asynchronous execution activity. The
// amortization batching exists for reads off directly: an unbatched
// stream pays one router lookup (and, on a rebalancing sharded tree,
// one monitor admission) per operation, so GroupOps/RouterLookups and
// GroupOps/MonitorBrackets are the factors by which batching cut that
// per-operation overhead.
type BatchStats struct {
	// Flushes counts non-empty buffer flushes across the tree's
	// asynchronous handles and BatchedOps the point operations they
	// carried (BatchedOps/Flushes is the realized mean batch size).
	Flushes, BatchedOps uint64
	// SizeFlushes, TimerFlushes, ExplicitFlushes and RangeFlushes split
	// Flushes by trigger: the BatchMaxOps threshold, the BatchMaxDelay
	// timer, an explicit Flush or Wait, and a flushing RangeQuery.
	SizeFlushes, TimerFlushes, ExplicitFlushes, RangeFlushes uint64
	// Groups counts the per-shard groups batches executed as and
	// GroupOps the operations they carried (sharded trees only;
	// GroupOps/Groups is the realized per-shard locality).
	Groups, GroupOps uint64
	// RouterLookups counts routing decisions taken by group execution
	// and MonitorBrackets the shard-level admissions — one per group
	// where unbatched dispatch pays one per op.
	RouterLookups, MonitorBrackets uint64
	// Restarts counts groups re-routed because a live migration swapped
	// the routing table mid-batch (the batch then re-executed its
	// remaining operations under the new table).
	Restarts uint64
}

// PolicyStats counts the retry policy's abort-taxonomy actions.
type PolicyStats struct {
	// Backoffs counts randomized waits taken before conflict retries,
	// FreeRetries the spurious-abort retries granted without consuming
	// attempt budget, CapacitySkips the paths abandoned with budget
	// remaining after a capacity abort, and Demotions the operations
	// that started past the fast path on their site's capacity memory.
	Backoffs, FreeRetries, CapacitySkips, Demotions uint64
	// Helps counts announced fallback operations completed by threads
	// other than (or alongside) their announcer; nonzero only with
	// Config.HelpableFallback.
	Helps uint64
}

// AggregateStats counts aggregate-query executions by answer path.
type AggregateStats struct {
	// Fast counts queries answered by the O(log n) transactional descent
	// over maintained subtree aggregates, Walk the queries that fell
	// back to the LLX-validated leaf walk (fallback-path or TLE-locked
	// executions). Always zero on a BST, whose RangeAgg walks the range
	// without touching either counter.
	Fast, Walk uint64
}

// RebalanceStats counts live shard-rebalancing activity (RouterAdaptive).
type RebalanceStats struct {
	// Checks counts imbalance evaluations, Migrations the boundary
	// migrations performed, and KeysMoved the keys moved between shards
	// across all migrations.
	Checks, Migrations, KeysMoved uint64
}

// Stats is a snapshot of a tree's execution statistics: how many
// operations completed on each path (Section 7.2 of the paper) and how
// transactions committed/aborted (Figure 16).
type Stats struct {
	// Ops counts operation completions per path.
	Ops PathCounts
	// TxCommits and TxAborts count transaction outcomes per path.
	TxCommits, TxAborts PathCounts
	// AbortCauses breaks aborts down as "path/cause" -> count.
	AbortCauses map[string]uint64
	// Policy reports the retry policy's actions (all zero under
	// PolicyStatic).
	Policy PolicyStats
	// Range reports atomic cross-shard read outcomes; all zero unless
	// the tree is sharded with AtomicRangeQueries (or RouterAdaptive,
	// which implies the same read validation).
	Range RangeQueryStats
	// Rebalance reports live shard-rebalancing activity; all zero
	// unless the tree is sharded with RouterAdaptive.
	Rebalance RebalanceStats
	// Aggregate reports how aggregate queries (Handle.RangeAgg and
	// friends) were answered on (a,b)-trees.
	Aggregate AggregateStats
	// Batch reports batched/asynchronous execution activity; all zero
	// until an AsyncHandle (or Handle.Batch context) flushes.
	Batch BatchStats
}

// Stats returns a snapshot of the tree's statistics. Safe to call while
// operations run (the snapshot is then approximate).
func (t *Tree) Stats() Stats {
	ops := t.stats.OpStats()
	hs := t.stats.HTMStats()
	s := Stats{
		Ops: PathCounts{Fast: ops.Fast, Middle: ops.Middle, Fallback: ops.Fallback},
		TxCommits: PathCounts{
			Fast:     hs.Commits[htm.PathFast],
			Middle:   hs.Commits[htm.PathMiddle],
			Fallback: hs.Commits[htm.PathFallback],
		},
		TxAborts: PathCounts{
			Fast:     hs.TotalAborts(htm.PathFast),
			Middle:   hs.TotalAborts(htm.PathMiddle),
			Fallback: hs.TotalAborts(htm.PathFallback),
		},
		AbortCauses: make(map[string]uint64),
		Policy: PolicyStats{
			Backoffs:      ops.Policy.Backoffs,
			FreeRetries:   ops.Policy.FreeRetries,
			CapacitySkips: ops.Policy.CapacitySkips,
			Demotions:     ops.Policy.Demotions,
			Helps:         ops.Policy.Helps,
		},
	}
	for _, p := range []htm.PathKind{htm.PathFast, htm.PathMiddle, htm.PathFallback} {
		for c := htm.CauseExplicit; c <= htm.CauseSpurious; c++ {
			if n := hs.Aborts[p][c]; n > 0 {
				s.AbortCauses[p.String()+"/"+c.String()] = n
			}
		}
	}
	if t.aggStats != nil {
		s.Aggregate.Fast, s.Aggregate.Walk = t.aggStats()
	}
	var bs batch.Stats
	if t.batchCtrs != nil {
		bs = t.batchCtrs.Snapshot()
	}
	s.Batch = BatchStats{
		Flushes:         bs.Flushes,
		BatchedOps:      bs.FlushedOps,
		SizeFlushes:     bs.SizeFlushes,
		TimerFlushes:    bs.TimerFlushes,
		ExplicitFlushes: bs.ExplicitFlushes,
		RangeFlushes:    bs.RangeFlushes,
	}
	if sd, ok := t.d.(*shard.Dict); ok {
		rs := sd.RQStats()
		s.Range = RangeQueryStats{
			Attempts:    rs.Attempts,
			Retries:     rs.Retries,
			Escalations: rs.Escalations,
		}
		rb := sd.RebalanceStats()
		s.Rebalance = RebalanceStats{
			Checks:     rb.Checks,
			Migrations: rb.Migrations,
			KeysMoved:  rb.KeysMoved,
		}
		gb := sd.BatchStats()
		s.Batch.Groups = gb.Groups
		s.Batch.GroupOps = gb.Ops
		s.Batch.RouterLookups = gb.RouterLookups
		s.Batch.MonitorBrackets = gb.MonitorEnters
		s.Batch.Restarts = gb.Restarts
	}
	return s
}
