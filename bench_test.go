// Benchmarks regenerating the paper's tables and figures, one benchmark
// per artifact (Section 7 and the extension sections). Each benchmark
// iteration runs a fixed-length workload trial and reports throughput
// as ops/sec, so relative numbers across algorithms reproduce the
// figures' series. Run with:
//
//	go test -bench=. -benchmem
//
// For full sweeps (thread counts, both workloads, CSV output) use
// cmd/htmbench instead.
package htmtree_test

import (
	"testing"
	"time"

	"htmtree/internal/abtree"
	"htmtree/internal/bst"
	"htmtree/internal/citrus"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/hybridnorec"
	"htmtree/internal/kcas"
	"htmtree/internal/workload"
)

const (
	benchDuration = 100 * time.Millisecond
	benchThreads  = 4
	bstKeys       = 10000
	abKeys        = 50000
)

// figureAlgs are the series of Figures 14/15.
var figureAlgs = []engine.Algorithm{
	engine.AlgNonHTM, engine.AlgTLE, engine.AlgTwoPathConc, engine.AlgThreePath,
}

// runTrialBench runs one workload trial per iteration and reports
// throughput.
func runTrialBench(b *testing.B, mk func() dict.Dict, cfg workload.Config) {
	b.Helper()
	b.ReportAllocs()
	cfg.Threads = benchThreads
	cfg.Duration = benchDuration
	var tput float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := workload.Run(mk(), cfg)
		if !res.KeySumOK {
			b.Fatal("key-sum validation failed")
		}
		tput += res.Throughput
	}
	b.ReportMetric(tput/float64(b.N), "ops/sec")
}

// ---- Figure 14 (and 15): throughput, both trees, light and heavy ----

func BenchmarkFig14BSTLight(b *testing.B) {
	for _, alg := range figureAlgs {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			runTrialBench(b,
				func() dict.Dict { return bst.New(bst.Config{Algorithm: alg}) },
				workload.Config{KeyRange: bstKeys, Kind: workload.Light})
		})
	}
}

func BenchmarkFig14BSTHeavy(b *testing.B) {
	for _, alg := range figureAlgs {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			runTrialBench(b,
				func() dict.Dict { return bst.New(bst.Config{Algorithm: alg}) },
				workload.Config{KeyRange: bstKeys, RQSizeMax: 1000, Kind: workload.Heavy})
		})
	}
}

func BenchmarkFig14ABLight(b *testing.B) {
	for _, alg := range figureAlgs {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			runTrialBench(b,
				func() dict.Dict { return abtree.New(abtree.Config{Algorithm: alg}) },
				workload.Config{KeyRange: abKeys, Kind: workload.Light})
		})
	}
}

func BenchmarkFig14ABHeavy(b *testing.B) {
	for _, alg := range figureAlgs {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			runTrialBench(b,
				func() dict.Dict { return abtree.New(abtree.Config{Algorithm: alg}) },
				workload.Config{KeyRange: abKeys, RQSizeMax: 10000, Kind: workload.Heavy})
		})
	}
}

// ---- Figure 16: commit/abort rates (reported as custom metrics) ----

func BenchmarkFig16AbortRates(b *testing.B) {
	for _, alg := range []engine.Algorithm{engine.AlgTLE, engine.AlgTwoPathConc, engine.AlgThreePath} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			var commits, aborts uint64
			for i := 0; i < b.N; i++ {
				tr := abtree.New(abtree.Config{Algorithm: alg})
				res := workload.Run(tr, workload.Config{
					Threads: benchThreads, Duration: benchDuration,
					KeyRange: abKeys, RQSizeMax: 10000, Kind: workload.Heavy,
					Seed: uint64(i) + 1,
				})
				hs := res.HTMStats
				commits += hs.Commits[htm.PathFast] + hs.Commits[htm.PathMiddle]
				aborts += hs.TotalAborts(htm.PathFast) + hs.TotalAborts(htm.PathMiddle)
			}
			total := commits + aborts
			if total > 0 {
				b.ReportMetric(100*float64(commits)/float64(total), "%commit")
				b.ReportMetric(100*float64(aborts)/float64(total), "%abort")
			}
		})
	}
}

// ---- Section 7.2: path usage ----

func BenchmarkSec72PathUsage(b *testing.B) {
	for _, kind := range []workload.Kind{workload.Light, workload.Heavy} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			var fast, total uint64
			for i := 0; i < b.N; i++ {
				tr := abtree.New(abtree.Config{Algorithm: engine.AlgThreePath})
				res := workload.Run(tr, workload.Config{
					Threads: benchThreads, Duration: benchDuration,
					KeyRange: abKeys, RQSizeMax: 10000, Kind: kind,
					Seed: uint64(i) + 1,
				})
				fast += res.PathStats.Fast
				total += res.PathStats.Total()
			}
			b.ReportMetric(100*float64(fast)/float64(total), "%fast-path")
		})
	}
}

// ---- Figure 17: Hybrid NOrec ----

func BenchmarkFig17HybridNOrec(b *testing.B) {
	series := []struct {
		name string
		mk   func() dict.Dict
	}{
		{"3-path", func() dict.Dict { return bst.New(bst.Config{Algorithm: engine.AlgThreePath}) }},
		{"hybrid-norec", func() dict.Dict { return hybridnorec.NewBST(htm.Config{}, 0) }},
	}
	for _, s := range series {
		s := s
		b.Run(s.name, func(b *testing.B) {
			runTrialBench(b, s.mk, workload.Config{KeyRange: bstKeys, Kind: workload.Light})
		})
	}
}

// ---- Section 8: searches outside transactions ----

func BenchmarkSec8SearchOutsideTx(b *testing.B) {
	for _, outside := range []bool{false, true} {
		outside := outside
		name := "search-in-tx"
		if outside {
			name = "search-outside-tx"
		}
		b.Run(name, func(b *testing.B) {
			runTrialBench(b,
				func() dict.Dict {
					return abtree.New(abtree.Config{
						Algorithm:       engine.AlgThreePath,
						SearchOutsideTx: outside,
					})
				},
				workload.Config{KeyRange: abKeys, Kind: workload.Light})
		})
	}
}

// ---- Section 9: reclamation (allocation pressure of the template
// paths; the fast path's in-place updates allocate nothing) ----

func BenchmarkSec9AllocationPerOp(b *testing.B) {
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			tr := abtree.New(abtree.Config{Algorithm: alg})
			h := tr.NewHandle()
			for k := uint64(1); k <= 4096; k++ {
				h.Insert(k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i%4096) + 1
				h.Insert(k, uint64(i)) // value update: in place on fast path
			}
		})
	}
}

// ---- Section 10: CITRUS and k-CAS list ----

func BenchmarkSec10Citrus(b *testing.B) {
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			runTrialBench(b,
				func() dict.Dict { return citrus.New(citrus.Config{Algorithm: alg}) },
				workload.Config{KeyRange: bstKeys, Kind: workload.Light})
		})
	}
}

func BenchmarkSec10KCASList(b *testing.B) {
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			runTrialBench(b,
				func() dict.Dict { return kcas.NewList(kcas.ListConfig{Algorithm: alg}) },
				workload.Config{KeyRange: 256, Kind: workload.Light})
		})
	}
}

// ---- Shard scaling (beyond the paper): the key space partitioned
// across independent trees, each with its own engine, HTM context, and
// fallback indicator. Compare x1/x4/x16 within a structure; cmd/htmbench
// -experiment shardscale runs the full sweep. ----

func benchShardScaling(b *testing.B, structure string, keyRange, rqMax uint64) {
	b.Helper()
	for _, shards := range []int{1, 4, 16} {
		spec := workload.Spec{
			Structure: structure,
			Algorithm: engine.AlgThreePath,
			Shards:    shards,
			KeySpan:   keyRange,
		}
		b.Run(spec.Name(), func(b *testing.B) {
			runTrialBench(b, spec.New,
				workload.Config{KeyRange: keyRange, RQSizeMax: rqMax, Kind: workload.Heavy})
		})
	}
}

func BenchmarkShardScalingBST(b *testing.B) {
	benchShardScaling(b, "bst", bstKeys, 1000)
}

func BenchmarkShardScalingABTree(b *testing.B) {
	benchShardScaling(b, "abtree", abKeys, 10000)
}

// ---- Headline: (a,b)-tree 3-path vs non-htm ----

func BenchmarkHeadlineABTree(b *testing.B) {
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			runTrialBench(b,
				func() dict.Dict { return abtree.New(abtree.Config{Algorithm: alg}) },
				workload.Config{KeyRange: abKeys, RQSizeMax: 10000, Kind: workload.Heavy})
		})
	}
}
