// Focused hot-path microbenchmarks: one delete+insert+search cycle per
// iteration on a warmed tree, single-threaded — the pooled
// point-operation path the allocation gate protects. Complements the
// workload-trial benchmarks in bench_test.go (which measure throughput
// under the paper's mixed workloads) with a number that isolates
// per-operation latency and allocations.
package htmtree_test

import (
	"testing"

	"htmtree/internal/abtree"
	"htmtree/internal/bst"
	"htmtree/internal/engine"
)

func BenchmarkMicroABTreeCycle(b *testing.B) {
	tr := abtree.New(abtree.Config{Algorithm: engine.AlgThreePath})
	h := tr.NewHandle()
	for k := uint64(1); k <= 512; k++ {
		h.Insert(k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%512) + 1
		h.Delete(k)
		h.Insert(k, k)
		h.Search(k)
	}
}

func BenchmarkMicroBSTCycle(b *testing.B) {
	tr := bst.New(bst.Config{Algorithm: engine.AlgThreePath})
	h := tr.NewHandle()
	for k := uint64(1); k <= 512; k++ {
		h.Insert(k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%512) + 1
		h.Delete(k)
		h.Insert(k, k)
		h.Search(k)
	}
}
