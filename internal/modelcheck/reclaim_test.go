package modelcheck

import (
	"fmt"
	"sync"
	"testing"

	"htmtree"
)

// TestRaceKeySumVsReclamation hammers the consistent-cut KeySum of a
// sharded atomic tree while updaters churn pooled nodes. The KeySum
// walk runs outside any engine operation, so it must join the trees'
// reclamation domains itself (a dedicated ebr reader context) — without
// that, a pooled internal node's plain key/child arrays could be
// rewritten mid-walk, a Go data race this test surfaces under -race.
func TestRaceKeySumVsReclamation(t *testing.T) {
	t.Parallel()
	const keySpan = 256
	iters := 3000
	if testing.Short() {
		iters = 800
	}
	for _, structure := range []string{"bst", "abtree"} {
		structure := structure
		t.Run(structure, func(t *testing.T) {
			t.Parallel()
			cfg := htmtree.Config{
				Algorithm:          htmtree.ThreePath,
				Shards:             4,
				ShardKeySpan:       keySpan,
				AtomicRangeQueries: true,
				A:                  2,
				B:                  4,
			}
			var (
				tree *htmtree.Tree
				err  error
			)
			if structure == "bst" {
				tree, err = htmtree.NewShardedBST(cfg)
			} else {
				tree, err = htmtree.NewShardedABTree(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := tree.NewHandle()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := uint64((g*7919+i*13)%keySpan) + 1
						if i%2 == 0 {
							h.Insert(k, k)
						} else {
							h.Delete(k)
						}
					}
				}(g)
			}
			for i := 0; i < iters; i++ {
				if _, count := tree.KeySum(); count > keySpan {
					t.Errorf("KeySum count %d exceeds key span %d", count, keySpan)
					break
				}
			}
			close(stop)
			wg.Wait()
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRaceReclamationStress hammers insert/delete on a small key range
// with pooled nodes under the race detector, across both structures and
// forced execution-path transitions. Deletions dominate so nodes cycle
// through the pools continuously: fast-path removals recycle
// immediately (and must abort any stale transactional reader via the
// version-advancing recycle stores), while removals observable from the
// fallback path ride grace periods — precisely the windows where an
// unsynchronized reuse write would surface as a race report or a
// key-sum mismatch. Sized for `go test -race -short ./...`.
func TestRaceReclamationStress(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 4
		keySpan    = 128
	)
	opsPerG := 4000
	if testing.Short() {
		opsPerG = 1200
	}
	for _, structure := range []string{"bst", "abtree"} {
		for _, spurious := range []uint64{0, 6} {
			structure, spurious := structure, spurious
			t.Run(fmt.Sprintf("%s/spurious=%d", structure, spurious), func(t *testing.T) {
				t.Parallel()
				cfg := htmtree.Config{
					Algorithm:          htmtree.ThreePath,
					FastLimit:          2,
					MiddleLimit:        2,
					SpuriousAbortEvery: spurious,
					A:                  2,
					B:                  4, // tiny degree bounds: constant splits and joins
				}
				var (
					tree *htmtree.Tree
					err  error
				)
				if structure == "bst" {
					tree, err = htmtree.NewBST(cfg)
				} else {
					tree, err = htmtree.NewABTree(cfg)
				}
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				sums := make([]int64, goroutines)
				counts := make([]int64, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						h := tree.NewHandle()
						for i := 0; i < opsPerG; i++ {
							k := uint64((g*104729+i*31)%keySpan) + 1
							if i%3 == 0 {
								if _, existed := h.Insert(k, k); !existed {
									sums[g] += int64(k)
									counts[g]++
								}
							} else {
								if _, existed := h.Delete(k); existed {
									sums[g] -= int64(k)
									counts[g]--
								}
							}
							if i%257 == 0 {
								if _, found := h.Search(k); found {
									_ = found
								}
							}
						}
					}(g)
				}
				wg.Wait()
				var wantSum, wantCount int64
				for g := range sums {
					wantSum += sums[g]
					wantCount += counts[g]
				}
				sum, count := tree.KeySum()
				if int64(sum) != wantSum || int64(count) != wantCount {
					t.Fatalf("key-sum (%d,%d), threads (%d,%d): reclamation corrupted the tree",
						sum, count, wantSum, wantCount)
				}
				if err := tree.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
