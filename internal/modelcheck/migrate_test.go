package modelcheck

import (
	"fmt"
	"sync"
	"testing"

	"htmtree"
)

// TestRaceMigrationsWithPointOps stresses live key-range rebalancing
// under the race detector: updater goroutines hammer keys concentrated
// around one shard boundary (most traffic in the two shards a
// migration will pick as donor and receiver) with forcing knobs that
// fire migrations continuously, so boundary moves constantly
// interleave with point operations on both affected shards — the
// route/admit/migrate synchronization where an unsynchronized access
// or a stale-routing window would hide. Per-thread key-sum deltas and
// the partition invariant must hold at the end. Sized for
// `go test -race -short ./...`.
func TestRaceMigrationsWithPointOps(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 4
		shards     = 4
		keySpan    = 512 // width 128; hot traffic around the 128 boundary
	)
	opsPerG := 30000
	if testing.Short() {
		opsPerG = 8000
	}
	for _, structure := range []string{"bst", "abtree"} {
		structure := structure
		t.Run(structure, func(t *testing.T) {
			t.Parallel()
			cfg := htmtree.Config{
				Algorithm:         htmtree.ThreePath,
				Shards:            shards,
				ShardKeySpan:      keySpan,
				Router:            htmtree.RouterAdaptive,
				RebalanceCheckOps: 64,
				RebalanceRatio:    0.01, // migrate on any imbalance
			}
			var (
				tree *htmtree.Tree
				err  error
			)
			if structure == "bst" {
				tree, err = htmtree.NewShardedBST(cfg)
			} else {
				tree, err = htmtree.NewShardedABTree(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			// Sentinel keys (multiples of 31, which the updaters skip):
			// inserted once, never deleted, spread across every shard.
			// A Search for one must succeed at every instant, including
			// mid-migration — a stale-routing read of a donor shard
			// after its keys moved would miss. Their mass is part of
			// the final key-sum accounting below.
			var sentSum, sentCount int64
			{
				h := tree.NewHandle()
				for k := uint64(31); k < keySpan; k += 31 {
					h.Insert(k, k)
					sentSum += int64(k)
					sentCount++
				}
			}
			var wg sync.WaitGroup
			sums := make([]int64, goroutines)
			counts := make([]int64, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := tree.NewHandle()
					var out []htmtree.KV
					for i := 0; i < opsPerG; i++ {
						// 3 of 4 ops land within ±64 of the shard 0/1
						// boundary; the rest roam the whole span so the
						// other boundaries migrate too. Sentinels
						// (multiples of 31) are left alone.
						var k uint64
						if i%4 != 0 {
							k = uint64(64+(g*7919+i*31)%128) + 1
						} else {
							k = uint64((g*104729+i*131)%keySpan) + 1
						}
						if k%31 == 0 {
							k++
						}
						if i%64 == 0 {
							s := uint64((i/64)%int(keySpan/31))*31 + 31
							if v, found := h.Search(s); !found || v != s {
								panic(fmt.Sprintf("sentinel %d lost mid-migration: (%d,%v)", s, v, found))
							}
						}
						switch i % 8 {
						case 0, 1, 2:
							if _, existed := h.Insert(k, k); !existed {
								sums[g] += int64(k)
								counts[g]++
							}
						case 3, 4, 5:
							if _, existed := h.Delete(k); existed {
								sums[g] -= int64(k)
								counts[g]--
							}
						case 6:
							if v, found := h.Search(k); found && v != k {
								panic(fmt.Sprintf("Search(%d) returned foreign value %d", k, v))
							}
						case 7:
							out = h.RangeQuery(k, k+32, out[:0])
							for j := 1; j < len(out); j++ {
								if out[j-1].Key >= out[j].Key {
									panic(fmt.Sprintf("unsorted fan-out at key %d", k))
								}
							}
						}
					}
				}(g)
			}
			wg.Wait()
			wantSum, wantCount := sentSum, sentCount
			for g := range sums {
				wantSum += sums[g]
				wantCount += counts[g]
			}
			sum, count := tree.KeySum()
			if int64(sum) != wantSum || int64(count) != wantCount {
				t.Fatalf("key-sum (%d,%d), threads (%d,%d)", sum, count, wantSum, wantCount)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := tree.Stats().Rebalance
			if st.Migrations == 0 {
				t.Fatalf("no migrations fired: the stress never exercised boundary moves (%+v)", st)
			}
			t.Logf("%s: %d migrations, %d keys moved under %d concurrent updaters",
				structure, st.Migrations, st.KeysMoved, goroutines)
		})
	}
}
