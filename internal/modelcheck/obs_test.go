package modelcheck

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"htmtree"
)

// Observability race battery: every capture surface of the PR 9
// observability layer — metric-family scrapes, latency-histogram
// snapshots, flight-recorder drains — runs concurrently with the
// hottest writer traffic each configuration can produce, under the race
// detector. The scraper goroutine hammers WriteProm, Snapshot and
// Events in a tight loop for the whole trial, so every reader/writer
// pairing (atomic counter sums vs operation threads, hist.Atomic
// snapshot vs Record, ring drain vs the reserve-then-store writers,
// including the shard layer's shared multi-writer recorder) gets
// exercised rather than sampled.

// observedScrapeLoop scrapes tree's domain until stop, then reports how
// many full scrape rounds completed.
func observedScrapeLoop(t *testing.T, tree *htmtree.Tree, stop *atomic.Bool) *sync.WaitGroup {
	t.Helper()
	o := tree.Obs()
	if o == nil {
		t.Fatal("tree built without observability domain")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := o.WriteProm(io.Discard); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
			o.Snapshot()
			o.Events()
			o.LatencySnapshot()
		}
	}()
	return &wg
}

// observedChurn runs the standard tracked mixed workload (inserts,
// deletes, range queries) and returns the expected key-sum and count.
func observedChurn(tree *htmtree.Tree, goroutines, opsPerG int, keySpan uint64) (sum, count int64) {
	var wg sync.WaitGroup
	sums := make([]int64, goroutines)
	counts := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			var out []htmtree.KV
			for i := 0; i < opsPerG; i++ {
				k := uint64((g*7919+i*31)%int(keySpan)) + 1
				switch i % 4 {
				case 0, 1:
					if _, existed := h.Insert(k, k); !existed {
						sums[g] += int64(k)
						counts[g]++
					}
				case 2:
					if _, existed := h.Delete(k); existed {
						sums[g] -= int64(k)
						counts[g]--
					}
				case 3:
					out = h.RangeQuery(k, k+16, out[:0])
				}
			}
		}(g)
	}
	wg.Wait()
	for g := range sums {
		sum += sums[g]
		count += counts[g]
	}
	return sum, count
}

// finishObserved stops the scraper, differentially validates the tree
// against the threads' tracked totals, and checks the observability
// layer actually captured the trial.
func finishObserved(t *testing.T, tree *htmtree.Tree, stop *atomic.Bool, scr *sync.WaitGroup,
	wantSum, wantCount int64) {
	t.Helper()
	stop.Store(true)
	scr.Wait()
	sum, count := tree.KeySum()
	if int64(sum) != wantSum || int64(count) != wantCount {
		t.Fatalf("key-sum (%d,%d), threads (%d,%d)", sum, count, wantSum, wantCount)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	o := tree.Obs()
	var b strings.Builder
	if err := o.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "htmtree_ops_total") {
		t.Fatal("final scrape missing htmtree_ops_total")
	}
	if len(o.Events()) == 0 {
		t.Fatal("flight recorder captured nothing")
	}
}

// TestRaceObservedPathTransitions is the differential variant: the
// spurious-abort storm of TestRacePathTransitions with every thread
// recording sampled events and a concurrent scraper, unsharded and
// sharded. The tiny event ring forces continual wrap-around, the
// recorder's only multi-step state.
func TestRaceObservedPathTransitions(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 4
		keySpan    = 256
	)
	opsPerG := 3000
	if testing.Short() {
		opsPerG = 800
	}
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("x%d", shards), func(t *testing.T) {
			t.Parallel()
			cfg := htmtree.Config{
				Algorithm:          htmtree.ThreePath,
				AttemptLimit:       1,
				FastLimit:          1,
				MiddleLimit:        1,
				SpuriousAbortEvery: 3,
				Shards:             shards,
				ShardKeySpan:       keySpan,
				Observability: &htmtree.ObsConfig{
					LatencySample: 2,
					EventSample:   2,
					EventBuffer:   64,
				},
			}
			var (
				tree *htmtree.Tree
				err  error
			)
			if shards > 1 {
				tree, err = htmtree.NewShardedBST(cfg)
			} else {
				tree, err = htmtree.NewBST(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			var stop atomic.Bool
			scr := observedScrapeLoop(t, tree, &stop)
			sum, count := observedChurn(tree, goroutines, opsPerG, keySpan)
			finishObserved(t, tree, &stop, scr, sum, count)
			if st := tree.Stats(); st.Ops.Middle == 0 || st.Ops.Fallback == 0 {
				t.Fatalf("3-path transitions not exercised: %+v", st.Ops)
			}
		})
	}
}

// TestRaceObservedHelpableTLE drives the announce/help/install protocol
// with the recorder on: helpable-fallback cold events (announce, help,
// install, acquire) are recorded unconditionally by whichever thread
// performs them, so helping threads write into their own rings while
// the owner writes into its — concurrently with the scraper's drains.
func TestRaceObservedHelpableTLE(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 4
		keySpan    = 128
	)
	opsPerG := 2000
	if testing.Short() {
		opsPerG = 600
	}
	tree, err := htmtree.NewBST(htmtree.Config{
		Algorithm:          htmtree.TLE,
		HelpableFallback:   true,
		AttemptLimit:       1,
		SpuriousAbortEvery: 3,
		Observability:      &htmtree.ObsConfig{EventSample: 2, EventBuffer: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	scr := observedScrapeLoop(t, tree, &stop)
	sum, count := observedChurn(tree, goroutines, opsPerG, keySpan)
	finishObserved(t, tree, &stop, scr, sum, count)
	if st := tree.Stats(); st.Ops.Fallback == 0 {
		t.Fatalf("helpable fallback never reached: %+v", st.Ops)
	}
}

// TestRaceObservedMigration churns an adaptive-router sharded tree
// tuned to migrate constantly: the shard layer's migration and quiesce
// events go through one shared recorder thread (RareEvent's multi-writer
// path) while per-shard engines record their own, all under concurrent
// scrapes.
func TestRaceObservedMigration(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 4
		keySpan    = 512
	)
	opsPerG := 3000
	if testing.Short() {
		opsPerG = 800
	}
	tree, err := htmtree.NewShardedABTree(htmtree.Config{
		Algorithm:         htmtree.ThreePath,
		Shards:            4,
		ShardKeySpan:      keySpan,
		Router:            htmtree.RouterAdaptive,
		RebalanceCheckOps: 64,
		RebalanceRatio:    0.01, // migrate on any imbalance
		Observability:     &htmtree.ObsConfig{EventSample: 2, EventBuffer: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	scr := observedScrapeLoop(t, tree, &stop)

	// Skew the churn onto the low shard so the rebalancer has an
	// imbalance to chase throughout the run.
	var wg sync.WaitGroup
	sums := make([]int64, goroutines)
	counts := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			for i := 0; i < opsPerG; i++ {
				k := uint64((g*31+i*7)%(keySpan/4)) + 1
				if i%3 != 2 {
					if _, existed := h.Insert(k, k); !existed {
						sums[g] += int64(k)
						counts[g]++
					}
				} else if _, existed := h.Delete(k); existed {
					sums[g] -= int64(k)
					counts[g]--
				}
			}
		}(g)
	}
	wg.Wait()
	var wantSum, wantCount int64
	for g := range sums {
		wantSum += sums[g]
		wantCount += counts[g]
	}
	finishObserved(t, tree, &stop, scr, wantSum, wantCount)
	if mig := tree.Stats().Rebalance.Migrations; mig == 0 {
		t.Fatal("no migrations happened; the multi-writer recorder path went unexercised")
	}
	var sawMigrate bool
	for _, ev := range tree.Obs().Events() {
		if ev.KindName == "migrate_begin" || ev.KindName == "migrate_end" {
			sawMigrate = true
			break
		}
	}
	if !sawMigrate {
		t.Fatal("migrations ran but no migrate events were recorded")
	}
}
