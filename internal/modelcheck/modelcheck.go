// Package modelcheck cross-checks every dictionary configuration in the
// repository against a trivially correct sequential model. The tests
// run randomized operation sequences over each {algorithm × structure ×
// shard count} combination and require op-for-op agreement on every
// return value, range-query result, key-sum checksum, and structural
// invariant — the differential counterpart of the paper's key-sum
// validation (Section 7.1), which only checks aggregate state.
package modelcheck

import "sort"

// Model is a sequential ordered dictionary with obviously correct
// semantics: a plain map plus sort-on-demand range queries. It mirrors
// the dict.Handle method set so tests can drive it in lockstep with a
// real dictionary.
type Model struct {
	m map[uint64]uint64
}

// NewModel creates an empty model.
func NewModel() *Model { return &Model{m: make(map[uint64]uint64)} }

// Insert associates key with val, returning the previous value and
// whether the key was already present.
func (md *Model) Insert(key, val uint64) (old uint64, existed bool) {
	old, existed = md.m[key]
	md.m[key] = val
	return old, existed
}

// Delete removes key, returning its value and whether it was present.
func (md *Model) Delete(key uint64) (old uint64, existed bool) {
	old, existed = md.m[key]
	delete(md.m, key)
	return old, existed
}

// Search returns the value associated with key, if present.
func (md *Model) Search(key uint64) (val uint64, found bool) {
	val, found = md.m[key]
	return val, found
}

// RangeQuery returns the pairs with lo <= key < hi in ascending key
// order.
func (md *Model) RangeQuery(lo, hi uint64) (keys, vals []uint64) {
	for k := range md.m {
		if k >= lo && k < hi {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		vals = append(vals, md.m[k])
	}
	return keys, vals
}

// RangeAgg returns the sum, count, minimum and maximum of the keys in
// [lo, hi). An empty range reports min = MaxUint64 and max = 0, the
// merge identities the dictionaries use.
func (md *Model) RangeAgg(lo, hi uint64) (sum, count, min, max uint64) {
	min = ^uint64(0)
	for k := range md.m {
		if k >= lo && k < hi {
			sum += k
			count++
			if k < min {
				min = k
			}
			if k > max {
				max = k
			}
		}
	}
	return sum, count, min, max
}

// KeySum returns the sum and count of the keys present.
func (md *Model) KeySum() (sum, count uint64) {
	for k := range md.m {
		sum += k
		count++
	}
	return sum, count
}
