package modelcheck

import (
	"testing"

	"htmtree"
)

// FuzzOps feeds fuzzer-chosen operation streams through every template
// configuration at once — BST and a-b-tree, the plain 3-path and the
// helpable TLE fallback (spurious aborts force the announce protocol
// even single-threaded) — in lockstep with the sequential model. The
// byte stream is the schedule: 3 bytes per operation (opcode, key,
// value), keys folded into a 64-key space so the fuzzer hits every
// structural transition (root churn, leaf splits and joins, empty
// deletes) without having to guess 64-bit keys.
func FuzzOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 7})
	// insert 1..4, delete 2, search 2, range over everything.
	f.Add([]byte{
		0, 1, 10, 0, 2, 20, 0, 3, 30, 0, 4, 40,
		1, 2, 0, 2, 2, 0, 3, 0, 64,
	})
	// hammer one key: insert/overwrite/delete cycles.
	f.Add([]byte{0, 9, 1, 0, 9, 2, 1, 9, 0, 0, 9, 3, 1, 9, 0, 1, 9, 0})
	// aggregate queries interleaved with churn.
	f.Add([]byte{0, 5, 5, 4, 0, 32, 0, 6, 6, 4, 4, 8, 1, 5, 0, 4, 0, 64})

	f.Fuzz(func(t *testing.T, data []byte) {
		type sut struct {
			name string
			tree *htmtree.Tree
		}
		mk := func(name string, ctor func(htmtree.Config) (*htmtree.Tree, error), cfg htmtree.Config) sut {
			tree, err := ctor(cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return sut{name, tree}
		}
		helpable := htmtree.Config{
			Algorithm:          htmtree.TLE,
			SpuriousAbortEvery: 3,
			AttemptLimit:       1,
			HelpableFallback:   true,
		}
		suts := []sut{
			mk("bst/3path", htmtree.NewBST, htmtree.Config{}),
			mk("abtree/3path", htmtree.NewABTree, htmtree.Config{}),
			mk("bst/tle-helpable", htmtree.NewBST, helpable),
			mk("abtree/tle-helpable", htmtree.NewABTree, helpable),
		}
		handles := make([]*htmtree.Handle, len(suts))
		for i, s := range suts {
			handles[i] = s.tree.NewHandle()
		}
		model := NewModel()

		for i := 0; i+3 <= len(data); i += 3 {
			op, kb, vb := data[i], data[i+1], data[i+2]
			k := uint64(kb%64) + 1
			v := uint64(vb)
			switch op % 5 {
			case 0:
				wantOld, wantEx := model.Insert(k, v)
				for j, h := range handles {
					old, existed := h.Insert(k, v)
					if existed != wantEx || (existed && old != wantOld) {
						t.Fatalf("%s op %d Insert(%d,%d) = (%d,%v), model (%d,%v)",
							suts[j].name, i/3, k, v, old, existed, wantOld, wantEx)
					}
				}
			case 1:
				wantOld, wantEx := model.Delete(k)
				for j, h := range handles {
					old, existed := h.Delete(k)
					if existed != wantEx || (existed && old != wantOld) {
						t.Fatalf("%s op %d Delete(%d) = (%d,%v), model (%d,%v)",
							suts[j].name, i/3, k, old, existed, wantOld, wantEx)
					}
				}
			case 2:
				want, wantOK := model.Search(k)
				for j, h := range handles {
					got, ok := h.Search(k)
					if ok != wantOK || (ok && got != want) {
						t.Fatalf("%s op %d Search(%d) = (%d,%v), model (%d,%v)",
							suts[j].name, i/3, k, got, ok, want, wantOK)
					}
				}
			case 3:
				lo, hi := k, k+uint64(vb%64)
				wantKeys, wantVals := model.RangeQuery(lo, hi)
				for j, h := range handles {
					out := h.RangeQuery(lo, hi, nil)
					if len(out) != len(wantKeys) {
						t.Fatalf("%s op %d RQ[%d,%d): %d pairs, model %d",
							suts[j].name, i/3, lo, hi, len(out), len(wantKeys))
					}
					for p, kv := range out {
						if kv.Key != wantKeys[p] || kv.Val != wantVals[p] {
							t.Fatalf("%s op %d RQ[%d,%d)[%d] = (%d,%d), model (%d,%d)",
								suts[j].name, i/3, lo, hi, p, kv.Key, kv.Val, wantKeys[p], wantVals[p])
						}
					}
				}
			case 4:
				lo, hi := k, k+uint64(vb%64)
				sum, cnt, min, max := model.RangeAgg(lo, hi)
				for j, h := range handles {
					got, err := h.RangeAgg(lo, hi)
					if err != nil {
						continue // structure without aggregate support
					}
					if got.Sum != sum || got.Count != cnt || got.Min != min || got.Max != max {
						t.Fatalf("%s op %d RangeAgg[%d,%d) = %+v, model (sum=%d,count=%d,min=%d,max=%d)",
							suts[j].name, i/3, lo, hi, got, sum, cnt, min, max)
					}
				}
			}
		}

		wantSum, wantCnt := model.KeySum()
		for _, s := range suts {
			sum, cnt := s.tree.KeySum()
			if sum != wantSum || cnt != wantCnt {
				t.Fatalf("%s KeySum = (%d,%d), model (%d,%d)", s.name, sum, cnt, wantSum, wantCnt)
			}
			if err := s.tree.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
		}
	})
}
