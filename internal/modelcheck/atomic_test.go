package modelcheck

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"htmtree"
)

// Cross-shard atomicity harness. Three deterministic writers run
// concurrently with a reader:
//
//   - Two round-robin writers (one per key region) execute the
//     sequential history step s = 1, 2, 3, ...: insert key
//     w*rrKeys + ((rrStride*s) mod rrKeys) + 1 with value s. The stride
//     is coprime with rrKeys, so consecutive steps land in different
//     shards — exactly the access pattern that tears a non-atomic
//     fan-out. Because the writer is sequential, every consistent cut
//     of the dictionary equals the state after some prefix of its
//     steps, and that state is computable in closed form.
//   - A ring writer walks a token around ringSize keys spread across
//     shards: insert the next key, then delete the current one. Every
//     consistent cut holds exactly one token or two ring-adjacent ones,
//     which makes KeySum tears detectable.
//
// The reader checks every atomic RangeQuery and KeySum result against
// those invariants; any result that matches no prefix of the sequential
// histories is a violation of cross-shard atomicity.
const (
	rrKeys     = 64 // round-robin keys per writer
	rrStride   = 17 // coprime with rrKeys: consecutive steps hop shards
	rrInv      = 49 // rrStride⁻¹ mod rrKeys
	numRR      = 2  // round-robin writers
	ringSize   = 16
	ringBase   = numRR*rrKeys + 1
	ringSpace  = 8 // key distance between ring slots (spans shards)
	atomicSpan = 256
)

func rrKey(w int, s uint64) uint64 {
	return uint64(w)*rrKeys + (rrStride*s)%rrKeys + 1
}

// lastWrite returns the largest step s <= t that wrote key k for
// round-robin writer w, or 0 if no step <= t wrote it.
func lastWrite(w int, k, t uint64) uint64 {
	r := (rrInv * (k - 1 - uint64(w)*rrKeys)) % rrKeys
	if r == 0 {
		r = rrKeys
	}
	if t < r {
		return 0
	}
	return t - (t-r)%rrKeys
}

func ringKey(j int) uint64 { return ringBase + uint64(j)*ringSpace }

func ringIndex(k uint64) (int, bool) {
	if k < ringBase || (k-ringBase)%ringSpace != 0 {
		return 0, false
	}
	j := int((k - ringBase) / ringSpace)
	if j >= ringSize {
		return 0, false
	}
	return j, true
}

// checkRRWindow verifies that the pairs observed for writer w inside
// [lo, hi) match the state after some prefix of w's sequential history.
// The prefix length can exceed the largest observed value by at most
// rrKeys-1 (every window key is rewritten once per cycle), so the
// search is bounded.
func checkRRWindow(w int, lo, hi uint64, obs map[uint64]uint64) error {
	rlo, rhi := uint64(w)*rrKeys+1, uint64(w+1)*rrKeys
	if lo > rlo {
		rlo = lo
	}
	if hi-1 < rhi {
		rhi = hi - 1
	}
	if rlo > rhi {
		return nil // window does not overlap this writer's region
	}
	var maxv uint64
	for _, v := range obs {
		if v > maxv {
			maxv = v
		}
	}
	for t := maxv; t < maxv+rrKeys; t++ {
		match := true
		for k := rlo; k <= rhi; k++ {
			want := lastWrite(w, k, t)
			got, present := obs[k]
			if want == 0 {
				if present {
					match = false
					break
				}
				continue
			}
			if !present || got != want {
				match = false
				break
			}
		}
		if match {
			return nil
		}
	}
	return fmt.Errorf("writer %d window [%d,%d): observed values %v match no prefix of the sequential history (max step %d)",
		w, lo, hi, obs, maxv)
}

// checkRing verifies the observed ring keys form a consistent cut of
// the token walk: exactly one token, or two on ring-adjacent slots.
func checkRing(keys []uint64) error {
	switch len(keys) {
	case 1:
		return nil
	case 2:
		j1, ok1 := ringIndex(keys[0])
		j2, ok2 := ringIndex(keys[1])
		if !ok1 || !ok2 {
			return fmt.Errorf("non-ring keys %v in ring region", keys)
		}
		if j2 == j1+1 || (j1 == 0 && j2 == ringSize-1) {
			return nil
		}
		return fmt.Errorf("ring tokens on non-adjacent slots %d and %d", j1, j2)
	default:
		return fmt.Errorf("ring holds %d tokens, want 1 or 2", len(keys))
	}
}

// runAtomicityHarness starts the writers, then runs iters reader
// checks, returning the observed cross-shard atomicity violations.
// router selects the shard routing policy; RouterAdaptive runs with
// forcing knobs so boundary migrations fire continuously underneath
// the checked atomic reads. The invariants are router-independent:
// every consistent cut satisfies them regardless of which shard owns
// which key at which moment.
func runAtomicityHarness(t *testing.T, router htmtree.RouterKind, atomic bool, iters int) []error {
	t.Helper()
	cfg := htmtree.Config{
		Algorithm:          htmtree.ThreePath,
		Shards:             8,
		ShardKeySpan:       atomicSpan,
		Router:             router,
		AtomicRangeQueries: atomic,
	}
	if router == htmtree.RouterAdaptive {
		cfg.RebalanceCheckOps = 64
		cfg.RebalanceRatio = 0.01 // migrate on any imbalance
	}
	tree, err := htmtree.NewShardedBST(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	ready := make([]chan struct{}, numRR+1)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	for w := 0; w < numRR; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tree.NewHandle()
			var s uint64
			for s = 1; s <= rrKeys; s++ { // warmup: every key present
				h.Insert(rrKey(w, s), s)
			}
			close(ready[w])
			for s = rrKeys + 1; ; s++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Insert(rrKey(w, s), s)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tree.NewHandle()
		h.Insert(ringKey(0), ringKey(0))
		close(ready[numRR])
		for j := 0; ; j = (j + 1) % ringSize {
			select {
			case <-stop:
				return
			default:
			}
			next := (j + 1) % ringSize
			h.Insert(ringKey(next), ringKey(next))
			h.Delete(ringKey(j))
		}
	}()
	for _, ch := range ready {
		<-ch
	}

	var violations []error
	record := func(err error) {
		if err != nil && len(violations) < 10 {
			violations = append(violations, err)
		}
	}
	h := tree.NewHandle()
	rng := rand.New(rand.NewSource(0xa70b1c))
	for i := 0; i < iters; i++ {
		// Full-span query: every writer's region plus the ring.
		out := h.RangeQuery(1, atomicSpan+1, nil)
		obs := make([]map[uint64]uint64, numRR)
		for w := range obs {
			obs[w] = make(map[uint64]uint64)
		}
		var ringKeys []uint64
		for _, kv := range out {
			if kv.Key <= numRR*rrKeys {
				obs[int((kv.Key-1)/rrKeys)][kv.Key] = kv.Val
			} else {
				ringKeys = append(ringKeys, kv.Key)
			}
		}
		for w := 0; w < numRR; w++ {
			record(checkRRWindow(w, 1, atomicSpan+1, obs[w]))
		}
		record(checkRing(ringKeys))

		// Partial multi-shard window inside the round-robin regions.
		lo := uint64(rng.Intn(numRR*rrKeys-64)) + 1
		hi := lo + 48 + uint64(rng.Intn(80))
		pobs := make([]map[uint64]uint64, numRR)
		for w := range pobs {
			pobs[w] = make(map[uint64]uint64)
		}
		for _, kv := range h.RangeQuery(lo, hi, nil) {
			if kv.Key <= numRR*rrKeys {
				pobs[int((kv.Key-1)/rrKeys)][kv.Key] = kv.Val
			}
		}
		for w := 0; w < numRR; w++ {
			record(checkRRWindow(w, lo, hi, pobs[w]))
		}

		// KeySum: the fixed writer regions plus 1 or 2 adjacent tokens.
		if i%4 == 0 {
			sum, count := tree.KeySum()
			base := uint64(numRR*rrKeys) * uint64(numRR*rrKeys+1) / 2
			switch count {
			case numRR*rrKeys + 1:
				if _, ok := ringIndex(sum - base); !ok {
					record(fmt.Errorf("KeySum (%d,%d): extra mass %d is no single ring token", sum, count, sum-base))
				}
			case numRR*rrKeys + 2:
				ok := false
				for j := 0; j < ringSize; j++ {
					n := (j + 1) % ringSize
					if sum-base == ringKey(j)+ringKey(n) {
						ok = true
						break
					}
				}
				if !ok {
					record(fmt.Errorf("KeySum (%d,%d): extra mass %d is no adjacent token pair", sum, count, sum-base))
				}
			default:
				record(fmt.Errorf("KeySum count %d, want %d or %d", count, numRR*rrKeys+1, numRR*rrKeys+2))
			}
		}
	}
	close(stop)
	wg.Wait()
	if router == htmtree.RouterAdaptive {
		st := tree.Stats().Rebalance
		if st.Migrations == 0 {
			t.Errorf("adaptive harness performed no migrations: atomic reads were never raced against a boundary move (%+v)", st)
		} else {
			t.Logf("adaptive: %d migrations (%d keys) concurrent with atomic reads", st.Migrations, st.KeysMoved)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Errorf("post-migration invariants: %v", err)
		}
	}
	return violations
}

// TestCrossShardRangeQueryAtomicity runs concurrent updaters against
// cross-shard range queries and key sums with AtomicRangeQueries
// enabled, for every shard router: every result must match some prefix
// of the writers' sequential histories. The adaptive variant
// additionally forces live boundary migrations under the readers — the
// scenario the two-shard quiesce protocol must keep atomic. Running
// the same harness with validation disabled (see
// TestCrossShardTearingWithoutValidation) demonstrates the violations
// the version scheme eliminates.
func TestCrossShardRangeQueryAtomicity(t *testing.T) {
	t.Parallel()
	for _, router := range htmtree.RouterKinds() {
		router := router
		t.Run(string(router), func(t *testing.T) {
			t.Parallel()
			iters := 400
			if testing.Short() {
				iters = 80
			}
			if vs := runAtomicityHarness(t, router, true, iters); len(vs) > 0 {
				for _, v := range vs {
					t.Error(v)
				}
				t.Fatalf("%d cross-shard atomicity violations with validation enabled", len(vs))
			}
		})
	}
}

// TestCrossShardTearingWithoutValidation is the control: the same
// harness with per-shard version validation disabled. It documents
// (rather than asserts) the torn results, because whether a tear is
// observed in a finite run depends on scheduling; a run that sees none
// is skipped, not failed.
func TestCrossShardTearingWithoutValidation(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("control experiment; skipped in -short")
	}
	vs := runAtomicityHarness(t, htmtree.RouterRange, false, 400)
	if len(vs) == 0 {
		t.Skip("no tearing observed this run (scheduler too serial to demonstrate)")
	}
	t.Logf("without validation: %d violations observed, e.g. %v", len(vs), vs[0])
}
