package modelcheck

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"htmtree"
)

// pendingCheck pairs a batched operation's future with the result the
// sequential model predicts for it. The prediction is computed at
// enqueue time, which is sound because the batch contract pins per-op
// results to per-key program order: a point operation's result depends
// only on the preceding operations on its own key, and those keep
// their enqueue order through the sort and the shard grouping — so the
// model applied in enqueue order predicts every batched result
// exactly, whatever cross-key reordering execution performs.
type pendingCheck struct {
	desc     string
	fut      htmtree.PointFuture
	wantVal  uint64
	wantOK   bool
	wantless bool // Insert/Delete with existed=false: Val unspecified
}

// TestBatchedDifferentialAllRouters drives one random operation stream
// through an asynchronous (batched) handle and the sequential model in
// lockstep, over both structures and all three shard routers. Flushes
// are triggered every way the subsystem supports — size threshold,
// flushing RangeQuery, explicit Flush, and Wait on a buffered future —
// and every resolved future must match the model, every range query
// must return exactly the model's pairs, and the final key-sum,
// structural invariants, and partition invariant must hold. Adaptive
// combos run with forcing knobs so live migrations interleave with the
// batched stream.
func TestBatchedDifferentialAllRouters(t *testing.T) {
	t.Parallel()
	const (
		keySpan = 512
		numOps  = 4000
	)
	for _, structure := range []string{"bst", "abtree"} {
		for _, router := range htmtree.RouterKinds() {
			structure, router := structure, router
			t.Run(fmt.Sprintf("%s/x8/%s", structure, router), func(t *testing.T) {
				t.Parallel()
				cfg := htmtree.Config{
					Algorithm:    htmtree.ThreePath,
					Shards:       8,
					ShardKeySpan: keySpan,
					Router:       router,
					BatchMaxOps:  16,
				}
				if router == htmtree.RouterAdaptive {
					cfg.RebalanceCheckOps = 64
					cfg.RebalanceRatio = 0.01 // force migrations on any imbalance
				}
				var (
					tree *htmtree.Tree
					err  error
				)
				if structure == "bst" {
					tree, err = htmtree.NewShardedBST(cfg)
				} else {
					tree, err = htmtree.NewShardedABTree(cfg)
				}
				if err != nil {
					t.Fatal(err)
				}
				ah := tree.NewAsyncHandle()
				model := NewModel()
				rng := rand.New(rand.NewSource(0xba7c4))

				var pend []pendingCheck
				drain := func(i int) {
					for _, pc := range pend {
						val, ok := pc.fut.Wait()
						if ok != pc.wantOK || (ok && !pc.wantless && val != pc.wantVal) {
							t.Fatalf("op %d %s = (%d,%v), model (%d,%v)",
								i, pc.desc, val, ok, pc.wantVal, pc.wantOK)
						}
					}
					pend = pend[:0]
				}

				for i := 0; i < numOps; i++ {
					// Quadratic low-end bias so the adaptive combos see
					// genuine skew and migrate mid-stream.
					k := uint64(rng.Intn(keySpan))*uint64(rng.Intn(keySpan))/keySpan + 1
					switch rng.Intn(10) {
					case 0, 1, 2:
						v := uint64(rng.Intn(1 << 30))
						wantOld, wantEx := model.Insert(k, v)
						pend = append(pend, pendingCheck{
							desc: fmt.Sprintf("Insert(%d,%d)", k, v),
							fut:  ah.Insert(k, v), wantVal: wantOld, wantOK: wantEx, wantless: !wantEx,
						})
					case 3, 4:
						wantOld, wantEx := model.Delete(k)
						pend = append(pend, pendingCheck{
							desc: fmt.Sprintf("Delete(%d)", k),
							fut:  ah.Delete(k), wantVal: wantOld, wantOK: wantEx, wantless: !wantEx,
						})
					case 5, 6:
						want, wantOK := model.Search(k)
						pend = append(pend, pendingCheck{
							desc: fmt.Sprintf("Search(%d)", k),
							fut:  ah.Search(k), wantVal: want, wantOK: wantOK,
						})
					case 7:
						// Flushing range query: a sync point that must
						// observe every op enqueued so far (the model
						// already has).
						lo := uint64(rng.Intn(keySpan)) + 1
						hi := lo + uint64(rng.Intn(keySpan))
						out := ah.RangeQuery(lo, hi).Wait()
						wantKeys, wantVals := model.RangeQuery(lo, hi)
						if len(out) != len(wantKeys) {
							t.Fatalf("op %d RQ[%d,%d): %d pairs, model %d",
								i, lo, hi, len(out), len(wantKeys))
						}
						for j, kv := range out {
							if kv.Key != wantKeys[j] || kv.Val != wantVals[j] {
								t.Fatalf("op %d RQ[%d,%d)[%d] = (%d,%d), model (%d,%d)",
									i, lo, hi, j, kv.Key, kv.Val, wantKeys[j], wantVals[j])
							}
						}
						drain(i)
					case 8:
						ah.Flush()
						drain(i)
					case 9:
						// Wait on a buffered future mid-batch: flushes.
						if len(pend) > 0 {
							drain(i)
						}
					}
				}
				ah.Flush()
				drain(numOps)

				sum, count := tree.KeySum()
				wantSum, wantCount := model.KeySum()
				if sum != wantSum || count != wantCount {
					t.Fatalf("KeySum = (%d,%d), model (%d,%d)", sum, count, wantSum, wantCount)
				}
				if err := tree.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				st := tree.Stats()
				if st.Batch.Flushes == 0 || st.Batch.BatchedOps == 0 {
					t.Fatalf("no batched execution recorded: %+v", st.Batch)
				}
				if st.Batch.Groups == 0 {
					t.Fatalf("no shard-groups recorded on a sharded tree: %+v", st.Batch)
				}
				if router == htmtree.RouterAdaptive && st.Rebalance.Migrations == 0 {
					t.Fatalf("adaptive combo performed no migrations: batched ops did not feed the rebalance cadence (%+v)", st.Rebalance)
				}
			})
		}
	}
}

// TestRaceBatchedMigrationInFlight forces live migrations while whole
// batches are in flight: four goroutines push size-triggered batches of
// boundary-hot keys through asynchronous handles on an adaptive tree
// with forcing knobs, so routing-table swaps land between a batch's
// routing and its segment admissions. The group executor must then
// drop the admission and re-route (Stats.Batch.Restarts) rather than
// commit through stale routing — which the final partition invariant
// (CheckInvariants) and per-goroutine key-sum accounting would expose.
// Sized for `go test -race -short ./...`.
func TestRaceBatchedMigrationInFlight(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 4
		shards     = 4
		keySpan    = 512
		batchSize  = 32
	)
	opsPerG := 30000
	if testing.Short() {
		opsPerG = 8000
	}
	for _, structure := range []string{"bst", "abtree"} {
		structure := structure
		t.Run(structure, func(t *testing.T) {
			t.Parallel()
			cfg := htmtree.Config{
				Algorithm:         htmtree.ThreePath,
				Shards:            shards,
				ShardKeySpan:      keySpan,
				Router:            htmtree.RouterAdaptive,
				RebalanceCheckOps: 64,
				RebalanceRatio:    0.01, // migrate on any imbalance
				BatchMaxOps:       batchSize,
			}
			var (
				tree *htmtree.Tree
				err  error
			)
			if structure == "bst" {
				tree, err = htmtree.NewShardedBST(cfg)
			} else {
				tree, err = htmtree.NewShardedABTree(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			sums := make([]int64, goroutines)
			counts := make([]int64, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					ah := tree.NewAsyncHandle()
					type rec struct {
						k   uint64
						ins bool
						fut htmtree.PointFuture
					}
					buf := make([]rec, 0, batchSize)
					settle := func() {
						ah.Flush()
						for _, r := range buf {
							_, existed := r.fut.Wait()
							if r.ins && !existed {
								sums[g] += int64(r.k)
								counts[g]++
							}
							if !r.ins && existed {
								sums[g] -= int64(r.k)
								counts[g]--
							}
						}
						buf = buf[:0]
					}
					for i := 0; i < opsPerG; i++ {
						// 3 of 4 ops land within ±64 of the shard 0/1
						// boundary so migrations keep firing there; the
						// rest roam the whole span.
						var k uint64
						if i%4 != 0 {
							k = uint64(64+(g*7919+i*31)%128) + 1
						} else {
							k = uint64((g*104729+i*131)%keySpan) + 1
						}
						if i%2 == 0 {
							buf = append(buf, rec{k, true, ah.Insert(k, k)})
						} else {
							buf = append(buf, rec{k, false, ah.Delete(k)})
						}
						if len(buf) >= batchSize {
							settle()
						}
					}
					settle()
				}(g)
			}
			wg.Wait()
			var wantSum, wantCount int64
			for g := range sums {
				wantSum += sums[g]
				wantCount += counts[g]
			}
			sum, count := tree.KeySum()
			if int64(sum) != wantSum || int64(count) != wantCount {
				t.Fatalf("key-sum (%d,%d), threads (%d,%d)", sum, count, wantSum, wantCount)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := tree.Stats()
			if st.Rebalance.Migrations == 0 {
				t.Fatalf("no migrations fired under the batched stress (%+v)", st.Rebalance)
			}
			if st.Batch.GroupOps == 0 || st.Batch.MonitorBrackets == 0 {
				t.Fatalf("batched admission never exercised: %+v", st.Batch)
			}
			t.Logf("%s: %d migrations, %d batch groups, %d stale-route restarts",
				structure, st.Rebalance.Migrations, st.Batch.Groups, st.Batch.Restarts)
		})
	}
}
