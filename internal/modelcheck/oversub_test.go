package modelcheck

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"htmtree"
)

// oversubCombo is one point of the oversubscription stress sweep: both
// structures, the classic TLE lock and the helpable fallback, unsharded
// and 8-way sharded.
type oversubCombo struct {
	structure string
	helpable  bool
	shards    int
}

func oversubCombos() []oversubCombo {
	var cs []oversubCombo
	for _, structure := range []string{"bst", "abtree"} {
		for _, helpable := range []bool{false, true} {
			for _, shards := range []int{1, 8} {
				cs = append(cs, oversubCombo{structure, helpable, shards})
			}
		}
	}
	return cs
}

func (c oversubCombo) name() string {
	fb := "tle"
	if c.helpable {
		fb = "helpable"
	}
	return fmt.Sprintf("%s/%s/x%d", c.structure, fb, c.shards)
}

// TestOversubscribedDifferential is the correctness companion of the
// benchmark suite's oversub experiment: the TLE fallback — classic lock
// and helpable lock-free lock — exercised with more threads than
// processors, so critical-section owners are genuinely descheduled
// mid-protocol, with a scheduling yield injected into every fallback
// body to force the worst interleavings deterministically rather than
// waiting for the scheduler to find them.
//
// Every thread owns a disjoint contiguous key range and drives a
// per-thread sequential model in lockstep: point-op return values and
// in-range range queries must agree op for op. Disjointness makes the
// per-thread differential sound under concurrency — no other thread's
// operations can change this thread's window — while the shared trees,
// the shared TLE word (and announcement slots, helpers executing other
// threads' operations with their own handles), and the shared shard
// boundaries stay fully contended. A helper that completed the wrong
// operation, delivered a stale descriptor result, double-applied an
// announced insert, or leaked the lock word would surface as a
// lockstep disagreement, a wedged thread, or a final key-sum mismatch.
func TestOversubscribedDifferential(t *testing.T) {
	const (
		threads   = 8
		procs     = 2
		perThread = 512 // keys per thread range
	)
	numOps := 1500
	if testing.Short() {
		numOps = 400
	}
	// The pin is process-global, so this test must not run in parallel
	// with others and the sweep's combos run sequentially under it.
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	keySpan := uint64(threads * perThread)
	for _, c := range oversubCombos() {
		t.Run(c.name(), func(t *testing.T) {
			cfg := htmtree.Config{
				Algorithm:    htmtree.TLE,
				Shards:       c.shards,
				ShardKeySpan: keySpan,
				// Force heavy fallback traffic: a spurious abort every
				// few transactional accesses overwhelms a two-attempt
				// fast-path budget.
				SpuriousAbortEvery:   8,
				AttemptLimit:         2,
				HelpableFallback:     c.helpable,
				PreemptFallbackPoint: runtime.Gosched,
			}
			var (
				tree *htmtree.Tree
				err  error
			)
			switch {
			case c.structure == "bst" && c.shards > 1:
				tree, err = htmtree.NewShardedBST(cfg)
			case c.structure == "bst":
				tree, err = htmtree.NewBST(cfg)
			case c.shards > 1:
				tree, err = htmtree.NewShardedABTree(cfg)
			default:
				tree, err = htmtree.NewABTree(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}

			var (
				wg      sync.WaitGroup
				mu      sync.Mutex
				wantSum uint64
				wantCnt uint64
			)
			for ti := 0; ti < threads; ti++ {
				wg.Add(1)
				go func(ti int) {
					defer wg.Done()
					h := tree.NewHandle()
					model := NewModel()
					rng := rand.New(rand.NewSource(int64(0xc0ffee + ti)))
					base := uint64(ti*perThread) + 1 // own range [base, base+perThread)
					for i := 0; i < numOps; i++ {
						k := base + uint64(rng.Intn(perThread))
						switch rng.Intn(8) {
						case 0, 1, 2:
							v := uint64(rng.Intn(1 << 30))
							old, existed := h.Insert(k, v)
							wantOld, wantEx := model.Insert(k, v)
							if existed != wantEx || (existed && old != wantOld) {
								t.Errorf("thread %d op %d Insert(%d,%d) = (%d,%v), model (%d,%v)",
									ti, i, k, v, old, existed, wantOld, wantEx)
								return
							}
						case 3, 4:
							old, existed := h.Delete(k)
							wantOld, wantEx := model.Delete(k)
							if existed != wantEx || (existed && old != wantOld) {
								t.Errorf("thread %d op %d Delete(%d) = (%d,%v), model (%d,%v)",
									ti, i, k, old, existed, wantOld, wantEx)
								return
							}
						case 5, 6:
							got, found := h.Search(k)
							want, ok := model.Search(k)
							if found != ok || (found && got != want) {
								t.Errorf("thread %d op %d Search(%d) = (%d,%v), model (%d,%v)",
									ti, i, k, got, found, want, ok)
								return
							}
						case 7:
							// A window inside the thread's own range: other
							// threads' keys are outside it by construction,
							// so the result must equal the model exactly
							// even mid-contention (and on sharded combos the
							// window can still straddle shard boundaries).
							lo := base + uint64(rng.Intn(perThread))
							hi := lo + uint64(rng.Intn(perThread))
							if end := base + perThread; hi > end {
								hi = end
							}
							out := h.RangeQuery(lo, hi, nil)
							wantKeys, wantVals := model.RangeQuery(lo, hi)
							if len(out) != len(wantKeys) {
								t.Errorf("thread %d op %d RQ[%d,%d): %d pairs, model %d",
									ti, i, lo, hi, len(out), len(wantKeys))
								return
							}
							for j, kv := range out {
								if kv.Key != wantKeys[j] || kv.Val != wantVals[j] {
									t.Errorf("thread %d op %d RQ[%d,%d)[%d] = (%d,%d), model (%d,%d)",
										ti, i, lo, hi, j, kv.Key, kv.Val, wantKeys[j], wantVals[j])
									return
								}
							}
						}
					}
					// Fold this thread's model into the shared expectation.
					sum, count := model.KeySum()
					mu.Lock()
					wantSum += sum
					wantCnt += count
					mu.Unlock()
				}(ti)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			sum, count := tree.KeySum()
			if sum != wantSum || count != wantCnt {
				t.Fatalf("KeySum = (%d,%d), models (%d,%d)", sum, count, wantSum, wantCnt)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := tree.Stats()
			if st.Ops.Fallback == 0 {
				t.Fatal("no operation completed on the fallback path: the sweep did not stress the lock under test")
			}
			if c.helpable {
				t.Logf("fallbacks=%d helps=%d", st.Ops.Fallback, st.Policy.Helps)
			}
		})
	}
}
