package modelcheck

import (
	"fmt"
	"math/rand"
	"testing"

	"htmtree"
)

// combo is one point of the differential sweep: every template
// algorithm, both structures, unsharded and 8-way sharded — the latter
// under all three shard routers. Adaptive combos run with forcing
// knobs (tiny evaluation windows, trigger on any imbalance), so live
// boundary migrations interleave with the checked operation stream.
type combo struct {
	structure string
	algorithm htmtree.Algorithm
	shards    int
	router    htmtree.RouterKind
}

func allCombos() []combo {
	var cs []combo
	for _, structure := range []string{"bst", "abtree"} {
		for _, alg := range htmtree.Algorithms() {
			cs = append(cs, combo{structure, alg, 1, ""})
			for _, router := range htmtree.RouterKinds() {
				cs = append(cs, combo{structure, alg, 8, router})
			}
		}
	}
	return cs
}

func (c combo) name() string {
	n := fmt.Sprintf("%s/%s/x%d", c.structure, c.algorithm, c.shards)
	if c.shards > 1 {
		n += "/" + string(c.router)
	}
	return n
}

func (c combo) build(t *testing.T, keySpan uint64) *htmtree.Tree {
	t.Helper()
	cfg := htmtree.Config{
		Algorithm:    c.algorithm,
		Shards:       c.shards,
		ShardKeySpan: keySpan,
		Router:       c.router,
	}
	if c.router == htmtree.RouterAdaptive {
		cfg.RebalanceCheckOps = 64
		cfg.RebalanceRatio = 0.01 // force migrations on any imbalance
	}
	var (
		tree *htmtree.Tree
		err  error
	)
	switch {
	case c.structure == "bst" && c.shards > 1:
		tree, err = htmtree.NewShardedBST(cfg)
	case c.structure == "bst":
		tree, err = htmtree.NewBST(cfg)
	case c.shards > 1:
		tree, err = htmtree.NewShardedABTree(cfg)
	default:
		tree, err = htmtree.NewABTree(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestDifferentialAllConfigurations drives one random operation stream
// through every configuration and the model in lockstep. Every return
// value must agree; every range query must return exactly the model's
// pairs in ascending key order (for sharded trees this exercises
// fan-out windows that land inside one shard, cross a boundary, and
// span all shards); and the final key-sum and invariants must hold.
//
// Point-op keys are drawn with a quadratic bias toward the low end of
// the key space (product of two uniforms), so the adaptive combos'
// forced rebalancer sees genuine skew and migrates boundaries in the
// middle of the checked stream — the differential then also proves
// migrations preserve op-for-op agreement.
func TestDifferentialAllConfigurations(t *testing.T) {
	t.Parallel()
	const (
		keySpan = 512
		numOps  = 4000
	)
	for _, c := range allCombos() {
		c := c
		t.Run(c.name(), func(t *testing.T) {
			t.Parallel()
			tree := c.build(t, keySpan)
			h := tree.NewHandle()
			model := NewModel()
			rng := rand.New(rand.NewSource(0x5eed))
			for i := 0; i < numOps; i++ {
				k := uint64(rng.Intn(keySpan))*uint64(rng.Intn(keySpan))/keySpan + 1
				switch rng.Intn(8) {
				case 0, 1, 2:
					v := uint64(rng.Intn(1 << 30))
					old, existed := h.Insert(k, v)
					wantOld, wantEx := model.Insert(k, v)
					if existed != wantEx || (existed && old != wantOld) {
						t.Fatalf("op %d Insert(%d,%d) = (%d,%v), model (%d,%v)",
							i, k, v, old, existed, wantOld, wantEx)
					}
				case 3, 4:
					old, existed := h.Delete(k)
					wantOld, wantEx := model.Delete(k)
					if existed != wantEx || (existed && old != wantOld) {
						t.Fatalf("op %d Delete(%d) = (%d,%v), model (%d,%v)",
							i, k, old, existed, wantOld, wantEx)
					}
				case 5, 6:
					got, found := h.Search(k)
					want, ok := model.Search(k)
					if found != ok || (found && got != want) {
						t.Fatalf("op %d Search(%d) = (%d,%v), model (%d,%v)",
							i, k, got, found, want, ok)
					}
				case 7:
					// Window length biased from tiny (one shard) to the
					// whole key space (all shards).
					lo := uint64(rng.Intn(keySpan)) + 1
					hi := lo + uint64(rng.Intn(keySpan))
					out := h.RangeQuery(lo, hi, nil)
					wantKeys, wantVals := model.RangeQuery(lo, hi)
					if len(out) != len(wantKeys) {
						t.Fatalf("op %d RQ[%d,%d): %d pairs, model %d",
							i, lo, hi, len(out), len(wantKeys))
					}
					for j, kv := range out {
						if kv.Key != wantKeys[j] || kv.Val != wantVals[j] {
							t.Fatalf("op %d RQ[%d,%d)[%d] = (%d,%d), model (%d,%d)",
								i, lo, hi, j, kv.Key, kv.Val, wantKeys[j], wantVals[j])
						}
						if j > 0 && out[j-1].Key >= kv.Key {
							t.Fatalf("op %d RQ[%d,%d) not in ascending key order", i, lo, hi)
						}
					}
				}
			}
			sum, count := tree.KeySum()
			wantSum, wantCount := model.KeySum()
			if sum != wantSum || count != wantCount {
				t.Fatalf("KeySum = (%d,%d), model (%d,%d)", sum, count, wantSum, wantCount)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if c.router == htmtree.RouterAdaptive {
				st := tree.Stats().Rebalance
				if st.Migrations == 0 {
					t.Fatalf("adaptive combo performed no migrations: the differential did not cover live rebalancing (%+v)", st)
				}
				t.Logf("adaptive: %d migrations, %d keys moved interleaved with the checked stream",
					st.Migrations, st.KeysMoved)
			}
		})
	}
}

// TestRangeQuerySnapshotConsistency checks range queries against
// concurrent updates. A writer toggles whole key blocks between
// "all present" (with val = key*2) and "all absent", so a mid-toggle
// window may see a block partially — but every pair a reader does see
// must be well-formed: key inside the requested window, ascending
// order across shard boundaries, and the value the write discipline
// dictates (a torn pair would betray a non-atomic per-shard read).
func TestRangeQuerySnapshotConsistency(t *testing.T) {
	t.Parallel()
	const (
		blockSize = 64
		numBlocks = 16
		keySpan   = blockSize * numBlocks
	)
	for _, shards := range []int{1, 8} {
		shards := shards
		t.Run(fmt.Sprintf("x%d", shards), func(t *testing.T) {
			t.Parallel()
			cfg := htmtree.Config{
				Algorithm:    htmtree.ThreePath,
				Shards:       shards,
				ShardKeySpan: keySpan,
			}
			var (
				tree *htmtree.Tree
				err  error
			)
			if shards > 1 {
				tree, err = htmtree.NewShardedABTree(cfg)
			} else {
				tree, err = htmtree.NewABTree(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				h := tree.NewHandle()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					b := uint64(i % numBlocks)
					lo := b*blockSize + 1
					for k := lo; k < lo+blockSize; k++ {
						if i%2 == 0 {
							h.Insert(k, k*2)
						} else {
							h.Delete(k)
						}
					}
				}
			}()

			h := tree.NewHandle()
			rng := rand.New(rand.NewSource(99))
			iters := 3000
			if testing.Short() {
				iters = 500
			}
			for i := 0; i < iters; i++ {
				lo := uint64(rng.Intn(keySpan)) + 1
				hi := lo + uint64(rng.Intn(4*blockSize))
				out := h.RangeQuery(lo, hi, nil)
				for j, kv := range out {
					if kv.Key < lo || kv.Key >= hi {
						t.Fatalf("RQ[%d,%d) returned out-of-window key %d", lo, hi, kv.Key)
					}
					if j > 0 && out[j-1].Key >= kv.Key {
						t.Fatalf("RQ[%d,%d) not in ascending key order", lo, hi)
					}
					if kv.Val != kv.Key*2 {
						t.Fatalf("RQ[%d,%d) observed torn pair (%d,%d)", lo, hi, kv.Key, kv.Val)
					}
				}
			}
			close(stop)
			<-writerDone
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
