package modelcheck

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"htmtree"
)

// TestDifferentialPoliciesAndBackends runs the lockstep differential
// under every retry policy × TM backend combination, with injected
// spurious aborts and tiny attempt budgets so the policies actually
// steer (free retries, capacity skips and demotions all fire inside
// the checked stream). Correctness must be policy- and
// backend-independent: the policy only chooses where an operation
// runs, never what it does.
func TestDifferentialPoliciesAndBackends(t *testing.T) {
	t.Parallel()
	const (
		keySpan = 512
		numOps  = 3000
	)
	for _, structure := range []string{"bst", "abtree"} {
		for _, policy := range htmtree.Policies() {
			for _, backend := range htmtree.TMBackends() {
				structure, policy, backend := structure, policy, backend
				t.Run(fmt.Sprintf("%s/%s/%s", structure, policy, backend), func(t *testing.T) {
					t.Parallel()
					cfg := htmtree.Config{
						Algorithm:          htmtree.ThreePath,
						RetryPolicy:        policy,
						TMBackend:          backend,
						SpuriousAbortEvery: 5,
						FastLimit:          2,
						MiddleLimit:        2,
					}
					var (
						tree *htmtree.Tree
						err  error
					)
					if structure == "bst" {
						tree, err = htmtree.NewBST(cfg)
					} else {
						tree, err = htmtree.NewABTree(cfg)
					}
					if err != nil {
						t.Fatal(err)
					}
					h := tree.NewHandle()
					model := NewModel()
					rng := rand.New(rand.NewSource(0xabc))
					for i := 0; i < numOps; i++ {
						k := uint64(rng.Intn(keySpan)) + 1
						switch rng.Intn(6) {
						case 0, 1, 2:
							v := uint64(rng.Intn(1 << 30))
							old, existed := h.Insert(k, v)
							wantOld, wantEx := model.Insert(k, v)
							if existed != wantEx || (existed && old != wantOld) {
								t.Fatalf("op %d Insert(%d,%d) = (%d,%v), model (%d,%v)",
									i, k, v, old, existed, wantOld, wantEx)
							}
						case 3, 4:
							old, existed := h.Delete(k)
							wantOld, wantEx := model.Delete(k)
							if existed != wantEx || (existed && old != wantOld) {
								t.Fatalf("op %d Delete(%d) = (%d,%v), model (%d,%v)",
									i, k, old, existed, wantOld, wantEx)
							}
						default:
							got, found := h.Search(k)
							want, ok := model.Search(k)
							if found != ok || (found && got != want) {
								t.Fatalf("op %d Search(%d) = (%d,%v), model (%d,%v)",
									i, k, got, found, want, ok)
							}
						}
					}
					sum, count := tree.KeySum()
					wantSum, wantCount := model.KeySum()
					if sum != wantSum || count != wantCount {
						t.Fatalf("KeySum = (%d,%d), model (%d,%d)", sum, count, wantSum, wantCount)
					}
					if err := tree.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestConcurrentKeySumPoliciesAndBackends is the concurrent counterpart:
// goroutines hammer one tree per policy × backend combo under spurious
// aborts, and the final key-sum must match the threads' accounting.
// For the tle-lock backend this doubles as a serialization check (every
// transactional path of the tree funnels through one mutex while the
// lock-free fallback path bypasses it).
func TestConcurrentKeySumPoliciesAndBackends(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 4
		keySpan    = 256
	)
	opsPerG := 2500
	if testing.Short() {
		opsPerG = 600
	}
	for _, policy := range htmtree.Policies() {
		for _, backend := range htmtree.TMBackends() {
			policy, backend := policy, backend
			t.Run(fmt.Sprintf("%s/%s", policy, backend), func(t *testing.T) {
				t.Parallel()
				tree, err := htmtree.NewBST(htmtree.Config{
					Algorithm:          htmtree.ThreePath,
					RetryPolicy:        policy,
					TMBackend:          backend,
					SpuriousAbortEvery: 3,
					FastLimit:          1,
					MiddleLimit:        1,
				})
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				sums := make([]int64, goroutines)
				counts := make([]int64, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						h := tree.NewHandle()
						for i := 0; i < opsPerG; i++ {
							k := uint64((g*7919+i*31)%keySpan) + 1
							if i%3 == 2 {
								if _, existed := h.Delete(k); existed {
									sums[g] -= int64(k)
									counts[g]--
								}
							} else {
								if _, existed := h.Insert(k, k); !existed {
									sums[g] += int64(k)
									counts[g]++
								}
							}
						}
					}(g)
				}
				wg.Wait()
				var wantSum, wantCount int64
				for g := range sums {
					wantSum += sums[g]
					wantCount += counts[g]
				}
				sum, count := tree.KeySum()
				if int64(sum) != wantSum || int64(count) != wantCount {
					t.Fatalf("key-sum (%d,%d), threads (%d,%d)", sum, count, wantSum, wantCount)
				}
				if err := tree.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
