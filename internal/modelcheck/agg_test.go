package modelcheck

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"htmtree"
)

// buildAgg constructs the combo's tree for aggregate checking: sharded
// combos get AtomicRangeQueries (aggregate fan-outs require the
// validated read protocol), TLE combos get the helpable fallback (so
// the differential also covers helped swings' aggregate fixups), and
// adaptive combos keep the migration-forcing knobs.
func (c combo) buildAgg(t *testing.T, keySpan uint64) *htmtree.Tree {
	t.Helper()
	cfg := htmtree.Config{
		Algorithm:          c.algorithm,
		Shards:             c.shards,
		ShardKeySpan:       keySpan,
		Router:             c.router,
		AtomicRangeQueries: c.shards > 1,
	}
	if c.algorithm == htmtree.TLE {
		cfg.HelpableFallback = true
	}
	if c.router == htmtree.RouterAdaptive {
		cfg.RebalanceCheckOps = 64
		cfg.RebalanceRatio = 0.01 // force migrations on any imbalance
	}
	var (
		tree *htmtree.Tree
		err  error
	)
	switch {
	case c.structure == "bst" && c.shards > 1:
		tree, err = htmtree.NewShardedBST(cfg)
	case c.structure == "bst":
		tree, err = htmtree.NewBST(cfg)
	case c.shards > 1:
		tree, err = htmtree.NewShardedABTree(cfg)
	default:
		tree, err = htmtree.NewABTree(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestDifferentialAggregates drives a random stream of updates and
// aggregate queries through every configuration and the model in
// lockstep: every RangeAgg window (and the whole-tree Count/Min/Max
// convenience forms) must return exactly the model's tuple. On the
// (a,b)-tree this exercises the O(log n) aggregate descent against
// every update path that maintains the per-child tuples (including
// TLE's helped fallback swings); the BST runs the same checks through
// its walking implementation — the interface-level control. The final
// CheckInvariants recomputes every node's tuple from the leaves.
func TestDifferentialAggregates(t *testing.T) {
	t.Parallel()
	const (
		keySpan = 512
		numOps  = 4000
	)
	for _, c := range allCombos() {
		c := c
		t.Run(c.name(), func(t *testing.T) {
			t.Parallel()
			tree := c.buildAgg(t, keySpan)
			h := tree.NewHandle()
			model := NewModel()
			rng := rand.New(rand.NewSource(0xa66a))
			for i := 0; i < numOps; i++ {
				k := uint64(rng.Intn(keySpan))*uint64(rng.Intn(keySpan))/keySpan + 1
				op := rng.Intn(8)
				// First third: updates only. A cross-shard aggregate
				// query runs an engine op on every shard, which dilutes
				// the per-shard load skew the adaptive rebalancer judges;
				// a pure update prefix lets the forced migrations fire,
				// and the aggregate-heavy remainder then checks against
				// (and interleaves with) the migrated layout.
				if i < numOps/3 && op > 4 {
					op = rng.Intn(5)
				}
				switch op {
				case 0, 1, 2:
					v := uint64(rng.Intn(1 << 30))
					old, existed := h.Insert(k, v)
					wantOld, wantEx := model.Insert(k, v)
					if existed != wantEx || (existed && old != wantOld) {
						t.Fatalf("op %d Insert(%d,%d) = (%d,%v), model (%d,%v)",
							i, k, v, old, existed, wantOld, wantEx)
					}
				case 3, 4:
					old, existed := h.Delete(k)
					wantOld, wantEx := model.Delete(k)
					if existed != wantEx || (existed && old != wantOld) {
						t.Fatalf("op %d Delete(%d) = (%d,%v), model (%d,%v)",
							i, k, old, existed, wantOld, wantEx)
					}
				case 5, 6:
					// Window length biased from tiny (one shard) to the
					// whole key space (all shards).
					lo := uint64(rng.Intn(keySpan)) + 1
					hi := lo + uint64(rng.Intn(keySpan))
					a, err := h.RangeAgg(lo, hi)
					if err != nil {
						t.Fatalf("op %d RangeAgg[%d,%d): %v", i, lo, hi, err)
					}
					sum, count, min, max := model.RangeAgg(lo, hi)
					if a.Sum != sum || a.Count != count || a.Min != min || a.Max != max {
						t.Fatalf("op %d RangeAgg[%d,%d) = %+v, model {Sum:%d Count:%d Min:%d Max:%d}",
							i, lo, hi, a, sum, count, min, max)
					}
				case 7:
					sum, count, min, max := model.RangeAgg(0, htmtree.MaxKey+1)
					gotCount, err := h.Count()
					if err != nil || gotCount != count {
						t.Fatalf("op %d Count() = (%d,%v), model %d", i, gotCount, err, count)
					}
					gotMin, ok, err := h.Min()
					if err != nil || ok != (count > 0) || (ok && gotMin != min) {
						t.Fatalf("op %d Min() = (%d,%v,%v), model (%d,%v)", i, gotMin, ok, err, min, count > 0)
					}
					gotMax, ok, err := h.Max()
					if err != nil || ok != (count > 0) || (ok && gotMax != max) {
						t.Fatalf("op %d Max() = (%d,%v,%v), model (%d,%v)", i, gotMax, ok, err, max, count > 0)
					}
					gotSum, gotN, err := h.RangeSum(0, htmtree.MaxKey+1)
					if err != nil || gotSum != sum || gotN != count {
						t.Fatalf("op %d RangeSum = (%d,%d,%v), model (%d,%d)", i, gotSum, gotN, err, sum, count)
					}
				}
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if c.router == htmtree.RouterAdaptive {
				st := tree.Stats().Rebalance
				if st.Migrations == 0 {
					t.Fatalf("adaptive combo performed no migrations: the differential did not cover live rebalancing (%+v)", st)
				}
			}
			if c.structure == "abtree" && c.algorithm != htmtree.TLE {
				// The transactional algorithms must answer at least some
				// queries on the O(log n) descent (TLE's Locked bodies
				// always take the validated walk).
				if st := tree.Stats().Aggregate; st.Fast == 0 && c.algorithm != htmtree.NonHTM {
					t.Errorf("no aggregate query used the fast descent: %+v", st)
				}
			}
		})
	}
}

// rrMass is the aggregate mass of the round-robin regions: after
// warmup the harness writers keep every key in [1, numRR*rrKeys]
// permanently present (steps only overwrite values), so their sum and
// count are constants of every consistent cut.
const rrTotal = numRR * rrKeys

func rrBaseSum() uint64 { return uint64(rrTotal) * uint64(rrTotal+1) / 2 }

// checkFullAgg verifies a whole-span aggregate tuple is a consistent
// cut of the harness writers: the fixed round-robin mass plus exactly
// one ring token, or two on adjacent slots; Min pinned by key 1 and
// Max by the highest token the sum implies.
func checkFullAgg(a htmtree.Agg) error {
	base := rrBaseSum()
	if a.Min != 1 {
		return fmt.Errorf("full-span agg Min = %d, want 1 (key 1 is permanently present)", a.Min)
	}
	switch a.Count {
	case rrTotal + 1:
		j, ok := ringIndex(a.Sum - base)
		if !ok {
			return fmt.Errorf("full-span agg (%d,%d): extra mass %d is no single ring token", a.Sum, a.Count, a.Sum-base)
		}
		if a.Max != ringKey(j) {
			return fmt.Errorf("full-span agg Max = %d, want token %d", a.Max, ringKey(j))
		}
	case rrTotal + 2:
		// Two pair sums can coincide (the wrap-around pair aliases an
		// interior one), so a pair matches only if both its sum and its
		// higher token agree with the observed tuple.
		for j := 0; j < ringSize; j++ {
			n := (j + 1) % ringSize
			hiTok := ringKey(j)
			if ringKey(n) > hiTok {
				hiTok = ringKey(n)
			}
			if a.Sum-base == ringKey(j)+ringKey(n) && a.Max == hiTok {
				return nil
			}
		}
		return fmt.Errorf("full-span agg (Sum:%d Count:%d Max:%d): extra mass %d matches no adjacent token pair", a.Sum, a.Count, a.Max, a.Sum-base)
	default:
		return fmt.Errorf("full-span agg count %d, want %d or %d", a.Count, rrTotal+1, rrTotal+2)
	}
	return nil
}

// runAggAtomicityHarness reuses the cross-shard atomicity writers
// (round-robin value rewriters hopping shards each step, plus a ring
// token walker) but reads with RangeAgg instead of RangeQuery: unlike
// a torn range query, a torn aggregate leaves no per-key output to
// cross-check, so the checks here are closed-form invariants every
// consistent cut must satisfy. The dictionary is a sharded (a,b)-tree,
// so the merged per-shard tuples come from the O(log n) aggregate
// descent under concurrent updates — and, for RouterAdaptive, under
// continuously forced boundary migrations.
func runAggAtomicityHarness(t *testing.T, router htmtree.RouterKind, algorithm htmtree.Algorithm, helpable bool, iters int) []error {
	t.Helper()
	cfg := htmtree.Config{
		Algorithm:          algorithm,
		Shards:             8,
		ShardKeySpan:       atomicSpan,
		Router:             router,
		AtomicRangeQueries: true,
		HelpableFallback:   helpable,
	}
	if router == htmtree.RouterAdaptive {
		cfg.RebalanceCheckOps = 64
		cfg.RebalanceRatio = 0.01 // migrate on any imbalance
	}
	tree, err := htmtree.NewShardedABTree(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	ready := make([]chan struct{}, numRR+1)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	for w := 0; w < numRR; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tree.NewHandle()
			var s uint64
			for s = 1; s <= rrKeys; s++ { // warmup: every key present
				h.Insert(rrKey(w, s), s)
			}
			close(ready[w])
			for s = rrKeys + 1; ; s++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Insert(rrKey(w, s), s)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tree.NewHandle()
		h.Insert(ringKey(0), ringKey(0))
		close(ready[numRR])
		for j := 0; ; j = (j + 1) % ringSize {
			select {
			case <-stop:
				return
			default:
			}
			next := (j + 1) % ringSize
			h.Insert(ringKey(next), ringKey(next))
			h.Delete(ringKey(j))
		}
	}()
	for _, ch := range ready {
		<-ch
	}

	var violations []error
	record := func(err error) {
		if err != nil && len(violations) < 10 {
			violations = append(violations, err)
		}
	}
	h := tree.NewHandle()
	rng := rand.New(rand.NewSource(0xa66b1c))
	for i := 0; i < iters; i++ {
		// Full-span aggregate: every writer's region plus the ring.
		a, aerr := h.RangeAgg(1, atomicSpan+1)
		if aerr != nil {
			record(aerr)
			continue
		}
		record(checkFullAgg(a))

		// Window fully inside the round-robin regions, where every key
		// is permanently present: the tuple is known in closed form, so
		// any tear in sum, count, min or max is directly visible.
		lo := uint64(rng.Intn(rrTotal-64)) + 1
		hi := lo + 48 + uint64(rng.Intn(rrTotal-int(lo)-47))
		a, aerr = h.RangeAgg(lo, hi)
		if aerr != nil {
			record(aerr)
			continue
		}
		want := htmtree.Agg{
			Sum:   (lo + hi - 1) * (hi - lo) / 2,
			Count: hi - lo,
			Min:   lo,
			Max:   hi - 1,
		}
		if a != want {
			record(fmt.Errorf("agg[%d,%d) = %+v, want %+v (all round-robin keys are permanently present)", lo, hi, a, want))
		}
	}
	close(stop)
	wg.Wait()
	if router == htmtree.RouterAdaptive {
		st := tree.Stats().Rebalance
		if st.Migrations == 0 {
			t.Errorf("adaptive harness performed no migrations: aggregate reads were never raced against a boundary move (%+v)", st)
		} else {
			t.Logf("adaptive: %d migrations (%d keys) concurrent with aggregate reads", st.Migrations, st.KeysMoved)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Errorf("post-run invariants: %v", err)
	}
	return violations
}

// TestCrossShardAggregateAtomicity runs concurrent updaters against
// cross-shard aggregate queries for every shard router: every merged
// tuple must be a consistent cut of the writers' sequential histories.
// The adaptive variant forces live boundary migrations under the
// readers; a tle-helpable variant routes the updates through announced
// fallback descriptors, so helped SCX swings (and their exactly-once
// aggregate fixups) race the aggregate readers too.
func TestCrossShardAggregateAtomicity(t *testing.T) {
	t.Parallel()
	variants := []struct {
		name      string
		router    htmtree.RouterKind
		algorithm htmtree.Algorithm
		helpable  bool
	}{
		{"range", htmtree.RouterRange, htmtree.ThreePath, false},
		{"hash", htmtree.RouterHash, htmtree.ThreePath, false},
		{"adaptive", htmtree.RouterAdaptive, htmtree.ThreePath, false},
		{"tle-helpable", htmtree.RouterAdaptive, htmtree.TLE, true},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			iters := 400
			if testing.Short() {
				iters = 80
			}
			if vs := runAggAtomicityHarness(t, v.router, v.algorithm, v.helpable, iters); len(vs) > 0 {
				for _, err := range vs {
					t.Error(err)
				}
				t.Fatalf("%d cross-shard aggregate atomicity violations", len(vs))
			}
		})
	}
}
