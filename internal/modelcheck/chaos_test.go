package modelcheck

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"htmtree"
	"htmtree/internal/htm"
)

// The chaos battery is the exact-safety twin of the benchmark suite's
// chaos experiment: every fault family the injection plane supports,
// run against lockstep sequential models under the race detector.
//
// Each worker owns a disjoint contiguous key range and drives its own
// model, so op-for-op agreement is sound under full concurrency (the
// shared trees, announcement slots, shard boundaries and fallback
// locks stay contended); the injected faults must change scheduling,
// never results.

// chaosLockstep drives `threads` workers in lockstep with per-thread
// models over disjoint ranges [ti*perThread+1, (ti+1)*perThread], then
// validates the final key-sum and invariants. Each completed operation
// is reported to lv (nil ok).
func chaosLockstep(t *testing.T, tree *htmtree.Tree, lv *htmtree.FaultLiveness, threads, perThread, numOps int, seed int64) {
	t.Helper()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		wantSum uint64
		wantCnt uint64
	)
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			h := tree.NewHandle()
			model := NewModel()
			rng := rand.New(rand.NewSource(seed + int64(ti)))
			base := uint64(ti*perThread) + 1
			for i := 0; i < numOps; i++ {
				k := base + uint64(rng.Intn(perThread))
				switch rng.Intn(8) {
				case 0, 1, 2:
					v := uint64(rng.Intn(1 << 30))
					old, existed := h.Insert(k, v)
					wantOld, wantEx := model.Insert(k, v)
					if existed != wantEx || (existed && old != wantOld) {
						t.Errorf("thread %d op %d Insert(%d,%d) = (%d,%v), model (%d,%v)",
							ti, i, k, v, old, existed, wantOld, wantEx)
						return
					}
				case 3, 4:
					old, existed := h.Delete(k)
					wantOld, wantEx := model.Delete(k)
					if existed != wantEx || (existed && old != wantOld) {
						t.Errorf("thread %d op %d Delete(%d) = (%d,%v), model (%d,%v)",
							ti, i, k, old, existed, wantOld, wantEx)
						return
					}
				case 5, 6:
					got, found := h.Search(k)
					want, ok := model.Search(k)
					if found != ok || (found && got != want) {
						t.Errorf("thread %d op %d Search(%d) = (%d,%v), model (%d,%v)",
							ti, i, k, got, found, want, ok)
						return
					}
				case 7:
					lo := base + uint64(rng.Intn(perThread))
					hi := lo + uint64(rng.Intn(perThread))
					if end := base + uint64(perThread); hi > end {
						hi = end
					}
					out := h.RangeQuery(lo, hi, nil)
					wantKeys, wantVals := model.RangeQuery(lo, hi)
					if len(out) != len(wantKeys) {
						t.Errorf("thread %d op %d RQ[%d,%d): %d pairs, model %d",
							ti, i, lo, hi, len(out), len(wantKeys))
						return
					}
					for j, kv := range out {
						if kv.Key != wantKeys[j] || kv.Val != wantVals[j] {
							t.Errorf("thread %d op %d RQ[%d,%d)[%d] = (%d,%d), model (%d,%d)",
								ti, i, lo, hi, j, kv.Key, kv.Val, wantKeys[j], wantVals[j])
							return
						}
					}
				}
				lv.OpDone()
			}
			sum, count := model.KeySum()
			mu.Lock()
			wantSum += sum
			wantCnt += count
			mu.Unlock()
		}(ti)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	sum, count := tree.KeySum()
	if sum != wantSum || count != wantCnt {
		t.Fatalf("KeySum = (%d,%d), models (%d,%d)", sum, count, wantSum, wantCnt)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// chaosOps scales the per-thread operation count down under -short.
func chaosOps(full int) int {
	if testing.Short() {
		return full / 3
	}
	return full
}

// TestChaosOwnerDeathDifferential is the acceptance battery for
// permanent owner death: a fault plan kills the announced helpable
// fallback owner on every 3rd fallback entry (four times), so four of
// six workers crash mid-protocol with their operation announced but
// not executed. The test proves:
//
//   - exactly-once completion: every worker's logged intents — the
//     dead workers' final, announced-but-unreturned operation included
//     — replayed through a sequential model, equal the tree's final
//     state key for key;
//   - progress: the liveness watchdog sees other threads complete
//     operations inside every kill window, and the survivors finish
//     their full bounded workload (a wedge would time the join out);
//   - helping really happened (engine help counter nonzero).
//
// Intents are logged BEFORE each operation starts, which makes the
// replay sound for crashed workers: the kill point sits after the
// announce, so a logged-but-unreturned operation is guaranteed to be
// driven to completion by helpers (the drain below forces the last
// one), while an operation is never executed without its intent on
// record.
func TestChaosOwnerDeathDifferential(t *testing.T) {
	const (
		workers   = 6
		perThread = 96
		kEvery    = 3
		kCount    = 4
	)
	numOps := chaosOps(360)
	for _, structure := range []string{"bst", "abtree"} {
		t.Run(structure, func(t *testing.T) {
			plan := htmtree.NewFaultPlan(0xdead0+uint64(len(structure)), htmtree.FaultRule{
				Point: htmtree.FaultFallbackOwner,
				Every: kEvery,
				Kill:  true,
				Count: kCount,
				Watch: true,
			})
			lv := &htmtree.FaultLiveness{}
			plan.Watch(lv)
			cfg := htmtree.Config{
				Algorithm: htmtree.TLE,
				// Every transactional access aborts and the budget is
				// one attempt: essentially every operation enters the
				// helpable fallback, so the kill budget is spent within
				// the first dozen operations.
				SpuriousAbortEvery: 1,
				AttemptLimit:       1,
				HelpableFallback:   true,
				Faults:             plan,
			}
			var (
				tree *htmtree.Tree
				err  error
			)
			if structure == "bst" {
				tree, err = htmtree.NewBST(cfg)
			} else {
				tree, err = htmtree.NewABTree(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}

			type intent struct {
				kind byte // 'i', 'd', 's'
				key  uint64
				val  uint64
			}
			type workerState struct {
				mu        sync.Mutex
				intents   []intent
				completed int
			}
			states := make([]*workerState, workers)
			done := make([]chan struct{}, workers)
			var halt atomic.Bool

			for w := 0; w < workers; w++ {
				states[w] = &workerState{}
				done[w] = make(chan struct{})
				go func(w int) {
					defer close(done[w])
					ws := states[w]
					h := tree.NewHandle()
					model := NewModel()
					rng := rand.New(rand.NewSource(int64(0xfeed + w)))
					base := uint64(w*perThread) + 1
					for i := 0; i < numOps; i++ {
						if halt.Load() {
							return
						}
						k := base + uint64(rng.Intn(perThread))
						v := uint64(rng.Intn(1 << 30))
						// Updates only: searches are not helpable — they
						// take the TLE word classically, and killing a
						// classic lock holder wedges the engine by design
						// (the weakness the helpable protocol removes; see
						// the classic owner-fault seam in engine.go). The
						// kill plan must only ever land on announced
						// updates. Reads are verified post-drain instead.
						var kind byte
						if rng.Intn(2) == 0 {
							kind = 'i'
						} else {
							kind = 'd'
						}
						ws.mu.Lock()
						ws.intents = append(ws.intents, intent{kind, k, v})
						ws.mu.Unlock()
						switch kind {
						case 'i':
							old, existed := h.Insert(k, v)
							if halt.Load() {
								return // resumed post-release: tree mutated, no compares
							}
							wantOld, wantEx := model.Insert(k, v)
							if existed != wantEx || (existed && old != wantOld) {
								t.Errorf("worker %d op %d Insert(%d) = (%d,%v), model (%d,%v)",
									w, i, k, old, existed, wantOld, wantEx)
								return
							}
						case 'd':
							old, existed := h.Delete(k)
							if halt.Load() {
								return
							}
							wantOld, wantEx := model.Delete(k)
							if existed != wantEx || (existed && old != wantOld) {
								t.Errorf("worker %d op %d Delete(%d) = (%d,%v), model (%d,%v)",
									w, i, k, old, existed, wantOld, wantEx)
								return
							}
						}
						lv.OpDone()
						ws.mu.Lock()
						ws.completed++
						ws.mu.Unlock()
					}
				}(w)
			}

			// Join: survivors finish their bounded workload; a worker
			// that does not is parked inside a kill and will never close
			// its channel. Poll rather than block — once the expected
			// survivor count is in and the kill budget is spent, a short
			// grace period settles any straggler, instead of burning a
			// full timeout on channels that cannot close.
			closed := make([]bool, workers)
			returned, grace := 0, 0
			for tick := 0; tick < 600 && returned < workers; tick++ {
				for w, ch := range done {
					if closed[w] {
						continue
					}
					select {
					case <-ch:
						closed[w] = true
						returned++
					default:
					}
				}
				if returned >= workers-kCount && plan.Fires(htmtree.FaultFallbackOwner) == kCount {
					if grace++; grace > 40 {
						break
					}
				} else {
					grace = 0
				}
				time.Sleep(50 * time.Millisecond)
			}
			deadWorkers := 0
			for w, c := range closed {
				if !c {
					deadWorkers++
					t.Logf("worker %d did not return (killed owner)", w)
				}
			}
			halt.Store(true)
			if t.Failed() {
				plan.ReleaseKilled()
				return
			}
			kills := plan.Fires(htmtree.FaultFallbackOwner)
			if kills != kCount {
				t.Errorf("kills fired = %d, want %d", kills, kCount)
			}
			if deadWorkers != int(kills) {
				t.Errorf("dead workers = %d, kills = %d (each kill must park exactly one owner)", deadWorkers, kills)
			}

			// Drain: the TM has a single announcement slot, so at most
			// one killed owner's descriptor is still pending (every
			// earlier one was necessarily helped to completion before
			// its successor could announce). Complete it here.
			hh := tree.NewHandle()
			for i := 0; i < 16 && hh.Help(); i++ {
			}

			// Replay every worker's intents — including the dead
			// workers' final announced-but-unreturned operation — and
			// compare the tree key for key.
			var wantSum, wantCnt uint64
			for w, ws := range states {
				ws.mu.Lock()
				intents, completed := ws.intents, ws.completed
				ws.mu.Unlock()
				if len(intents) < completed || len(intents) > completed+1 {
					t.Fatalf("worker %d: %d intents, %d completed (log out of step)", w, len(intents), completed)
				}
				replay := NewModel()
				for _, in := range intents {
					switch in.kind {
					case 'i':
						replay.Insert(in.key, in.val)
					case 'd':
						replay.Delete(in.key)
					}
				}
				base := uint64(w*perThread) + 1
				for k := base; k < base+perThread; k++ {
					got, found := hh.Search(k)
					want, ok := replay.Search(k)
					if found != ok || (found && got != want) {
						t.Fatalf("worker %d range: tree[%d] = (%d,%v), replay (%d,%v)",
							w, k, got, found, want, ok)
					}
				}
				sum, cnt := replay.KeySum()
				wantSum += sum
				wantCnt += cnt
			}
			sum, cnt := tree.KeySum()
			if sum != wantSum || cnt != wantCnt {
				t.Errorf("KeySum = (%d,%d), replay (%d,%d)", sum, cnt, wantSum, wantCnt)
			}
			if err := tree.CheckInvariants(); err != nil {
				// A crashed owner legitimately leaves a relaxed-tree
				// degree violation behind: helpers complete the
				// announced operation but only the owner runs the
				// deferred fix, and the owner is dead. Anything else is
				// a real corruption.
				if structure == "abtree" && strings.Contains(err.Error(), "underfull") {
					t.Logf("tolerated relaxed violation from dead owner: %v", err)
				} else {
					t.Error(err)
				}
			}

			// Liveness: every kill window must have seen other threads
			// complete operations, and helping must actually have
			// happened.
			lv.Finish()
			if err := lv.Check(); err != nil {
				t.Error(err)
			}
			ws := lv.Windows()
			if uint64(len(ws)) != kills {
				t.Errorf("stall windows = %d, kills = %d", len(ws), kills)
			}
			for i, w := range ws {
				if !w.Kill {
					t.Errorf("window %d is not a kill window", i)
				}
				if w.Progress() == 0 {
					t.Errorf("kill window %d saw zero progress (system blocked on the dead owner)", i)
				}
			}
			if helps := tree.Stats().Policy.Helps; helps == 0 {
				t.Error("no announced operation was completed by a helper")
			}

			// Teardown, after every assertion: unpark the dead owners.
			// They re-drive an already-completed descriptor (helping is
			// idempotent), observe halt, and exit.
			plan.ReleaseKilled()
		})
	}
}

// TestChaosAbortStormDifferential forces aborts by cause — spurious,
// conflict, capacity — with 5% probability per transactional access on
// sharded trees, and requires op-for-op model agreement: the retry
// policy's cause-specific reactions (free retries, backoff, path
// abandonment, fast-path demotion) must never change results.
func TestChaosAbortStormDifferential(t *testing.T) {
	const (
		threads   = 6
		perThread = 256
	)
	numOps := chaosOps(700)
	causes := []struct {
		name  string
		cause htm.AbortCause
	}{
		{"spurious", htm.CauseSpurious},
		{"conflict", htm.CauseConflict},
		{"capacity", htm.CauseCapacity},
	}
	for _, structure := range []string{"bst", "abtree"} {
		for _, c := range causes {
			t.Run(structure+"/"+c.name, func(t *testing.T) {
				plan := htmtree.NewFaultPlan(0x5707+uint64(c.cause), htmtree.FaultRule{
					Point: htmtree.FaultTxAccess,
					Prob:  0.05,
					Cause: uint8(c.cause),
				})
				cfg := htmtree.Config{
					Algorithm:    htmtree.ThreePath,
					Shards:       4,
					ShardKeySpan: uint64(threads * perThread),
					Faults:       plan,
				}
				var (
					tree *htmtree.Tree
					err  error
				)
				if structure == "bst" {
					tree, err = htmtree.NewShardedBST(cfg)
				} else {
					tree, err = htmtree.NewShardedABTree(cfg)
				}
				if err != nil {
					t.Fatal(err)
				}
				chaosLockstep(t, tree, nil, threads, perThread, numOps, int64(0xab0+len(structure)))
				if plan.Fires(htmtree.FaultTxAccess) == 0 {
					t.Fatal("the storm never fired: the battery exercised nothing")
				}
			})
		}
	}
}

// TestChaosMigrationInterrupt stalls the adaptive router's migrations
// at every step the bracket protects — inside the quiesce gates, after
// the receiver insert loop, and after the routing-table swap — under a
// workload skewed onto one shard so migrations actually run. Lockstep
// agreement and the final key-sum prove interrupted migrations neither
// lose nor duplicate keys.
func TestChaosMigrationInterrupt(t *testing.T) {
	const (
		threads   = 6
		perThread = 128
	)
	numOps := chaosOps(700)
	plan := htmtree.NewFaultPlan(0x316,
		htmtree.FaultRule{Point: htmtree.FaultQuiesce, Every: 1, Stall: 200 * time.Microsecond},
		htmtree.FaultRule{Point: htmtree.FaultMigrateSwap, Every: 1, Stall: 200 * time.Microsecond},
		htmtree.FaultRule{Point: htmtree.FaultMigrateDelete, Every: 1, Stall: 200 * time.Microsecond},
	)
	cfg := htmtree.Config{
		Algorithm: htmtree.ThreePath,
		Shards:    4,
		// The workers' ranges cover only the first quarter of the key
		// span, so the range router maps everything to shard 0 and the
		// adaptive rebalancer must migrate boundaries to spread it.
		ShardKeySpan:      uint64(threads * perThread * 4),
		Router:            htmtree.RouterAdaptive,
		RebalanceCheckOps: 64,
		Faults:            plan,
	}
	tree, err := htmtree.NewShardedBST(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chaosLockstep(t, tree, nil, threads, perThread, numOps, 0x319)
	if t.Failed() {
		return
	}
	st := tree.Stats()
	if st.Rebalance.Migrations == 0 {
		t.Fatal("no migration ran: the battery exercised nothing")
	}
	t.Logf("migrations=%d keysMoved=%d quiesceStalls=%d swapStalls=%d deleteStalls=%d",
		st.Rebalance.Migrations, st.Rebalance.KeysMoved,
		plan.Fires(htmtree.FaultQuiesce), plan.Fires(htmtree.FaultMigrateSwap),
		plan.Fires(htmtree.FaultMigrateDelete))
}

// TestChaosEBRPinStall stalls threads inside the epoch-pin
// announcement — the window reclamation scans race against — delaying
// grace periods behind live pins. Lockstep agreement and invariants
// prove delayed reclamation never recycles a node under a reader.
func TestChaosEBRPinStall(t *testing.T) {
	const (
		threads   = 4
		perThread = 256
	)
	numOps := chaosOps(900)
	plan := htmtree.NewFaultPlan(0xebc, htmtree.FaultRule{
		Point: htmtree.FaultEBRPin, Every: 128, Stall: 100 * time.Microsecond,
	})
	tree, err := htmtree.NewBST(htmtree.Config{
		Algorithm: htmtree.ThreePath,
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaosLockstep(t, tree, nil, threads, perThread, numOps, 0xeb1)
	if !t.Failed() && plan.Fires(htmtree.FaultEBRPin) == 0 {
		t.Fatal("no pin stalled: the battery exercised nothing")
	}
}

// TestChaosAggWriterStall parks fallback writers inside the aggregate
// seqlock's write section (version odd) while other threads run
// aggregate queries: the readers must retry past the stalled writer
// and still return exactly consistent aggregates.
func TestChaosAggWriterStall(t *testing.T) {
	const (
		threads   = 4
		perThread = 128
	)
	numOps := chaosOps(500)
	plan := htmtree.NewFaultPlan(0xa99, htmtree.FaultRule{
		Point: htmtree.FaultAggFixup, Every: 4, Stall: 100 * time.Microsecond,
	})
	tree, err := htmtree.NewABTree(htmtree.Config{
		Algorithm: htmtree.ThreePath,
		// Force fallback traffic so the non-transactional fixup (the
		// injected seam) actually runs.
		SpuriousAbortEvery: 8,
		AttemptLimit:       2,
		Faults:             plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var wantSum, wantCnt uint64
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			h := tree.NewHandle()
			model := NewModel()
			rng := rand.New(rand.NewSource(int64(0xa90 + ti)))
			base := uint64(ti*perThread) + 1
			for i := 0; i < numOps; i++ {
				k := base + uint64(rng.Intn(perThread))
				switch rng.Intn(6) {
				case 0, 1:
					v := uint64(rng.Intn(1 << 30))
					h.Insert(k, v)
					model.Insert(k, v)
				case 2, 3:
					h.Delete(k)
					model.Delete(k)
				default:
					// Aggregate query inside the worker's own range:
					// exact agreement required even while a stalled
					// writer holds the seqlock odd.
					lo := base + uint64(rng.Intn(perThread))
					hi := lo + uint64(rng.Intn(perThread))
					if end := base + uint64(perThread); hi > end {
						hi = end
					}
					got, err := h.RangeAgg(lo, hi)
					if err != nil {
						t.Errorf("thread %d RangeAgg: %v", ti, err)
						return
					}
					sum, cnt, min, max := model.RangeAgg(lo, hi)
					if got.Sum != sum || got.Count != cnt || got.Min != min || got.Max != max {
						t.Errorf("thread %d op %d RangeAgg[%d,%d) = %+v, model (sum=%d,count=%d,min=%d,max=%d)",
							ti, i, lo, hi, got, sum, cnt, min, max)
						return
					}
				}
			}
			sum, count := model.KeySum()
			mu.Lock()
			wantSum += sum
			wantCnt += count
			mu.Unlock()
		}(ti)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	sum, count := tree.KeySum()
	if sum != wantSum || count != wantCnt {
		t.Fatalf("KeySum = (%d,%d), models (%d,%d)", sum, count, wantSum, wantCnt)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if plan.Fires(htmtree.FaultAggFixup) == 0 {
		t.Fatal("no fixup stalled: the battery exercised nothing")
	}
}

// TestChaosBatchFlushDelay stalls the asynchronous batching pipeline's
// flushes. Futures must still resolve with exactly the sequential
// results: workers enqueue rounds of distinct-key operations, flush,
// and compare every future against the model.
func TestChaosBatchFlushDelay(t *testing.T) {
	const (
		threads   = 4
		perThread = 256
		batchSize = 8
	)
	rounds := chaosOps(90)
	plan := htmtree.NewFaultPlan(0xba7c, htmtree.FaultRule{
		Point: htmtree.FaultBatchFlush, Every: 4, Stall: 100 * time.Microsecond,
	})
	tree, err := htmtree.NewBST(htmtree.Config{
		Algorithm:   htmtree.ThreePath,
		BatchMaxOps: batchSize,
		Faults:      plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var wantSum, wantCnt uint64
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			ah := tree.NewAsyncHandle()
			model := NewModel()
			rng := rand.New(rand.NewSource(int64(0xba0 + ti)))
			base := uint64(ti*perThread) + 1
			type pending struct {
				fut    htmtree.PointFuture
				ins    bool
				wantV  uint64
				wantOK bool
			}
			for r := 0; r < rounds; r++ {
				// Distinct keys within a round: the group executor may
				// reorder a batch, so same-key ops would race their own
				// batch; distinct keys make results order-independent.
				seen := map[uint64]bool{}
				var batch []pending
				for len(batch) < batchSize {
					k := base + uint64(rng.Intn(perThread))
					if seen[k] {
						continue
					}
					seen[k] = true
					if rng.Intn(2) == 0 {
						v := uint64(rng.Intn(1 << 30))
						wantV, wantOK := model.Insert(k, v)
						batch = append(batch, pending{ah.Insert(k, v), true, wantV, wantOK})
					} else {
						wantV, wantOK := model.Delete(k)
						batch = append(batch, pending{ah.Delete(k), false, wantV, wantOK})
					}
				}
				ah.Flush()
				for j, p := range batch {
					v, ok := p.fut.Wait()
					if ok != p.wantOK || (ok && v != p.wantV) {
						t.Errorf("thread %d round %d op %d (insert=%v) = (%d,%v), model (%d,%v)",
							ti, r, j, p.ins, v, ok, p.wantV, p.wantOK)
						return
					}
				}
			}
			sum, count := model.KeySum()
			mu.Lock()
			wantSum += sum
			wantCnt += count
			mu.Unlock()
		}(ti)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	sum, count := tree.KeySum()
	if sum != wantSum || count != wantCnt {
		t.Fatalf("KeySum = (%d,%d), models (%d,%d)", sum, count, wantSum, wantCnt)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if plan.Fires(htmtree.FaultBatchFlush) == 0 {
		t.Fatal("no flush stalled: the battery exercised nothing")
	}
}
