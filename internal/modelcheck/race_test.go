package modelcheck

import (
	"fmt"
	"sync"
	"testing"

	"htmtree"
)

// TestRacePathTransitions stresses the engine's execution-path
// transitions under the race detector: tiny attempt budgets plus
// injected spurious aborts force operations off the fast path, through
// the middle path, and onto the lock-free fallback while neighbouring
// goroutines keep committing transactionally — the fast↔middle↔fallback
// concurrency windows where unsynchronized accesses would hide. Sized
// for `go test -race -short ./...`.
func TestRacePathTransitions(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 4
		keySpan    = 256
	)
	opsPerG := 3000
	if testing.Short() {
		opsPerG = 800
	}
	for _, alg := range htmtree.Algorithms() {
		for _, shards := range []int{1, 4} {
			alg, shards := alg, shards
			t.Run(fmt.Sprintf("%s/x%d", alg, shards), func(t *testing.T) {
				t.Parallel()
				cfg := htmtree.Config{
					Algorithm: alg,
					// One attempt per HTM path: any abort demotes the
					// operation, so spurious aborts continually push
					// traffic down to the next path. (The pooled BST's
					// routing-key reads are Peek/GetStable, which neither
					// join the read set nor roll the spurious dice, so the
					// abort pressure per operation is unchanged from the
					// pre-pooling tree.)
					AttemptLimit:       1,
					FastLimit:          1,
					MiddleLimit:        1,
					SpuriousAbortEvery: 3,
					Shards:             shards,
					ShardKeySpan:       keySpan,
				}
				var (
					tree *htmtree.Tree
					err  error
				)
				if shards > 1 {
					tree, err = htmtree.NewShardedBST(cfg)
				} else {
					tree, err = htmtree.NewBST(cfg)
				}
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				sums := make([]int64, goroutines)
				counts := make([]int64, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						h := tree.NewHandle()
						var out []htmtree.KV
						for i := 0; i < opsPerG; i++ {
							k := uint64((g*7919+i*31)%keySpan) + 1
							switch i % 4 {
							case 0, 1:
								if _, existed := h.Insert(k, k); !existed {
									sums[g] += int64(k)
									counts[g]++
								}
							case 2:
								if _, existed := h.Delete(k); existed {
									sums[g] -= int64(k)
									counts[g]--
								}
							case 3:
								out = h.RangeQuery(k, k+16, out[:0])
							}
						}
					}(g)
				}
				wg.Wait()
				var wantSum, wantCount int64
				for g := range sums {
					wantSum += sums[g]
					wantCount += counts[g]
				}
				sum, count := tree.KeySum()
				if int64(sum) != wantSum || int64(count) != wantCount {
					t.Fatalf("key-sum (%d,%d), threads (%d,%d)", sum, count, wantSum, wantCount)
				}
				if err := tree.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				// The abort storm must actually have demoted operations:
				// every HTM algorithm needs its non-fast paths exercised.
				st := tree.Stats()
				switch alg {
				case htmtree.ThreePath:
					if st.Ops.Middle == 0 || st.Ops.Fallback == 0 {
						t.Fatalf("3-path transitions not exercised: %+v", st.Ops)
					}
				case htmtree.NonHTM:
					// Always on the fallback path by construction.
				default:
					if st.Ops.Fallback == 0 {
						t.Fatalf("fallback never reached: %+v", st.Ops)
					}
				}
			})
		}
	}
}
