package engine

import (
	"sync/atomic"

	"htmtree/internal/htm"
	"htmtree/internal/obs"
)

// This file attaches an engine to the live observability layer. The
// metric families deliberately register read closures over the SAME
// per-thread atomic counters Stats() has always summed — ops per path,
// aborts per path and cause, the retry policy's action counters — so
// the counters the hot path was already maintaining become the metric
// store directly: a scrape sums them on the scraper's goroutine, and
// the operation threads pay nothing beyond what the OpStats plumbing
// already cost. The only counters added for observability are ones
// nothing tracked before (fallback critical-section acquisitions, the
// monitor's quiesce count).

// policyActions names the PolicyStats fields for the
// htmtree_policy_actions_total family's action label.
var policyActions = []struct {
	name string
	get  func(*PolicyStats) *uint64
}{
	{"backoff", func(s *PolicyStats) *uint64 { return &s.Backoffs }},
	{"free_retry", func(s *PolicyStats) *uint64 { return &s.FreeRetries }},
	{"capacity_skip", func(s *PolicyStats) *uint64 { return &s.CapacitySkips }},
	{"demotion", func(s *PolicyStats) *uint64 { return &s.Demotions }},
	{"help", func(s *PolicyStats) *uint64 { return &s.Helps }},
}

// registerObs registers the engine's metric families on the node (one
// node per engine — the shard layer labels it with the shard index).
func (e *Engine) registerObs(n *obs.Node) {
	n.Counter("htmtree_ops_total",
		"Operations completed, by execution path.",
		func(emit obs.Point) {
			var per [htm.NumPaths]uint64
			e.mu.Lock()
			for _, th := range e.threads {
				for p := 1; p < htm.NumPaths; p++ {
					per[p] += atomic.LoadUint64(&th.ops[p])
				}
			}
			e.mu.Unlock()
			for p := 1; p < htm.NumPaths; p++ {
				emit(float64(per[p]), obs.L("path", htm.PathKind(p).String()))
			}
		})
	n.Counter("htmtree_tx_aborts_total",
		"Failed transactional attempts, by execution path and abort cause.",
		func(emit obs.Point) {
			var per AbortCounts
			e.mu.Lock()
			for _, th := range e.threads {
				for p := 1; p < htm.NumPaths; p++ {
					for c := 0; c < htm.NumCauses; c++ {
						per[p][c] += atomic.LoadUint64(&th.aborts[p][c])
					}
				}
			}
			e.mu.Unlock()
			for p := 1; p < htm.NumPaths; p++ {
				for c := 1; c < htm.NumCauses; c++ { // CauseNone never aborts
					emit(float64(per[p][c]),
						obs.L("path", htm.PathKind(p).String()),
						obs.L("cause", htm.AbortCause(c).String()))
				}
			}
		})
	n.Counter("htmtree_policy_actions_total",
		"Retry-policy actions taken after failed attempts, by action.",
		func(emit obs.Point) {
			var s PolicyStats
			e.mu.Lock()
			for _, th := range e.threads {
				s.addAtomic(&th.polstats)
			}
			e.mu.Unlock()
			for _, a := range policyActions {
				emit(float64(*a.get(&s)), obs.L("action", a.name))
			}
		})
	n.Counter("htmtree_fallback_acquisitions_total",
		"Fallback critical-section acquisitions (classic TLE lock takes plus helpable descriptors completed by their owner).",
		func(emit obs.Point) {
			var total uint64
			e.mu.Lock()
			for _, th := range e.threads {
				total += atomic.LoadUint64(&th.fallbackAcq)
			}
			e.mu.Unlock()
			emit(float64(total))
		})
	if mon := e.cfg.Monitor; mon != nil {
		n.Counter("htmtree_monitor_quiesces_total",
			"Completed update-monitor quiesces (escalated consistent reads and shard migrations).",
			func(emit obs.Point) { emit(float64(mon.Quiesces())) })
	}
}
