package engine

import (
	"testing"
	"time"

	"htmtree/internal/htm"
)

// TestMonitorPublishesUpdateCommits verifies, for every algorithm, that
// a completed update operation invalidates a monitor sample taken
// before it, that non-update operations do not, and that a quiescent
// monitor validates.
func TestMonitorPublishesUpdateCommits(t *testing.T) {
	t.Parallel()
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			mon := NewUpdateMonitor(nil)
			tm := htm.New(htm.Config{})
			e := New(Config{Algorithm: alg, Monitor: mon})
			th := e.NewThread(tm.NewThread())
			var c htm.Word

			s, ok := mon.Sample()
			if !ok {
				t.Fatal("idle monitor reported an in-flight update")
			}
			if !mon.Validate(s) {
				t.Fatal("idle monitor failed validation")
			}

			update := counterOp(&c)
			update.Update = true
			th.Run(update)
			if mon.Validate(s) {
				t.Fatalf("%s: update did not invalidate the sample", alg)
			}

			s2, ok := mon.Sample()
			if !ok {
				t.Fatal("monitor busy after update completed")
			}
			th.Run(counterOp(&c)) // not an update: must stay invisible
			if !mon.Validate(s2) {
				t.Fatalf("%s: non-update operation invalidated the sample", alg)
			}
		})
	}
}

// TestMonitorQuiesceGate verifies that updates wait at the gate while a
// reader holds it and proceed after release.
func TestMonitorQuiesceGate(t *testing.T) {
	t.Parallel()
	mon := NewUpdateMonitor(nil)
	tm := htm.New(htm.Config{})
	e := New(Config{Algorithm: AlgThreePath, Monitor: mon})
	th := e.NewThread(tm.NewThread())
	var c htm.Word

	release := mon.Quiesce()
	s, ok := mon.Sample()
	if !ok || !mon.Validate(s) {
		t.Fatal("quiesced monitor not stable")
	}
	done := make(chan struct{})
	go func() {
		op := counterOp(&c)
		op.Update = true
		th.Run(op)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("update ran through a held quiesce gate")
	case <-time.After(20 * time.Millisecond):
	}
	if !mon.Validate(s) {
		t.Fatal("sample invalidated while the gate was held")
	}
	release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("update never proceeded after gate release")
	}
	if mon.Validate(s) {
		t.Fatal("released update did not invalidate the sample")
	}
}
