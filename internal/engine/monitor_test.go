package engine

import (
	"testing"
	"time"

	"htmtree/internal/htm"
)

// TestMonitorPublishesUpdateCommits verifies, for every algorithm, that
// a completed update operation invalidates a monitor sample taken
// before it, that non-update operations do not, and that a quiescent
// monitor validates.
func TestMonitorPublishesUpdateCommits(t *testing.T) {
	t.Parallel()
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			mon := NewUpdateMonitor(nil)
			tm := htm.New(htm.Config{})
			e := New(Config{Algorithm: alg, Monitor: mon}, tm.Clock())
			th := e.NewThread(tm.NewThread())
			var c htm.Word
			c.Bind(tm.Clock())

			s, ok := mon.Sample()
			if !ok {
				t.Fatal("idle monitor reported an in-flight update")
			}
			if !mon.Validate(s) {
				t.Fatal("idle monitor failed validation")
			}

			update := counterOp(&c)
			update.Update = true
			th.Run(update)
			if mon.Validate(s) {
				t.Fatalf("%s: update did not invalidate the sample", alg)
			}

			s2, ok := mon.Sample()
			if !ok {
				t.Fatal("monitor busy after update completed")
			}
			th.Run(counterOp(&c)) // not an update: must stay invisible
			if !mon.Validate(s2) {
				t.Fatalf("%s: non-update operation invalidated the sample", alg)
			}
		})
	}
}

// TestMonitorQuiesceGate verifies that updates wait at the gate while a
// reader holds it and proceed after release.
func TestMonitorQuiesceGate(t *testing.T) {
	t.Parallel()
	mon := NewUpdateMonitor(nil)
	tm := htm.New(htm.Config{})
	e := New(Config{Algorithm: AlgThreePath, Monitor: mon}, tm.Clock())
	th := e.NewThread(tm.NewThread())
	var c htm.Word
	c.Bind(tm.Clock())

	release := mon.Quiesce()
	s, ok := mon.Sample()
	if !ok || !mon.Validate(s) {
		t.Fatal("quiesced monitor not stable")
	}
	done := make(chan struct{})
	go func() {
		op := counterOp(&c)
		op.Update = true
		th.Run(op)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("update ran through a held quiesce gate")
	case <-time.After(20 * time.Millisecond):
	}
	if !mon.Validate(s) {
		t.Fatal("sample invalidated while the gate was held")
	}
	release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("update never proceeded after gate release")
	}
	if mon.Validate(s) {
		t.Fatal("released update did not invalidate the sample")
	}
}

// TestMonitorGateBypass verifies a thread with SetGateBypass runs its
// updates straight through a held quiesce gate — the property the shard
// layer's migration relies on — while still publishing their commits.
func TestMonitorGateBypass(t *testing.T) {
	t.Parallel()
	mon := NewUpdateMonitor(nil)
	tm := htm.New(htm.Config{})
	e := New(Config{Algorithm: AlgThreePath, Monitor: mon}, tm.Clock())
	th := e.NewThread(tm.NewThread())
	th.SetGateBypass(true)
	var c htm.Word
	c.Bind(tm.Clock())

	release := mon.Quiesce()
	defer release()
	s, ok := mon.Sample()
	if !ok {
		t.Fatal("quiesced monitor reported an in-flight update")
	}
	done := make(chan struct{})
	go func() {
		op := counterOp(&c)
		op.Update = true
		th.Run(op)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("bypassing update blocked at a held gate")
	}
	if mon.Validate(s) {
		t.Fatal("bypassing update did not publish its commit")
	}
}

// TestMonitorQuiesceDrainsAllPaths verifies that, under
// EnableFullDrain, Quiesce waits for an in-flight update on a
// transactional path, not only for bracketed non-transactional ones:
// the update is admitted (enter) before the gate arrives, so Quiesce
// must not return until it completes.
func TestMonitorQuiesceDrainsAllPaths(t *testing.T) {
	t.Parallel()
	mon := NewUpdateMonitor(nil)
	mon.Bind(htm.NewClock())
	mon.EnableFullDrain()
	mon.enter() // simulate an update admitted but not yet complete

	quiesced := make(chan struct{})
	go func() {
		release := mon.Quiesce()
		close(quiesced)
		release()
	}()
	select {
	case <-quiesced:
		t.Fatal("Quiesce returned while an admitted update was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	mon.exit()
	select {
	case <-quiesced:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce never returned after the update drained")
	}
}

// TestMonitorBracket verifies Bracket behaves like a non-transactional
// update in flight: samples fail while open, and a sample taken before
// fails validation afterwards.
func TestMonitorBracket(t *testing.T) {
	t.Parallel()
	mon := NewUpdateMonitor(nil)
	mon.Bind(htm.NewClock())
	s, ok := mon.Sample()
	if !ok {
		t.Fatal("idle monitor reported an in-flight update")
	}
	done := mon.Bracket()
	if _, ok := mon.Sample(); ok {
		t.Fatal("Sample succeeded while a bracket was open")
	}
	done()
	if _, ok := mon.Sample(); !ok {
		t.Fatal("Sample failed after the bracket closed")
	}
	if mon.Validate(s) {
		t.Fatal("pre-bracket sample validated across the bracket")
	}
}
