package engine

import (
	"sync/atomic"

	"htmtree/internal/htm"
)

// UpdateMonitor publishes the commit points of a dictionary's update
// operations so that an external reader (the sharding layer's fan-out
// range queries) can tell whether any update committed, or was in
// flight, during a window of time. It is the per-shard half of the
// optimistic cross-shard snapshot validation scheme: the shard layer
// samples every overlapping shard's monitor, reads the shards, and
// re-validates the samples; an unchanged monitor proves the shard's
// logical content was stable over the whole window.
//
// Two disciplines cover the template's execution paths (Section 5 of
// the paper):
//
//   - Transactional paths (HTM fast path, middle path, TLE's elided
//     path) bump a version counter inside the update's own transaction
//     via htm.Word.AddAtCommit, so the bump is atomic with the
//     operation's commit — a reader either sees the operation and its
//     bump, or neither.
//   - Non-transactional paths (the lock-free fallback's SCX, TLE's
//     locked body, the Section 4 HTM-SCX algorithm) have no single
//     commit instruction the monitor can piggyback on, so they bracket
//     the whole operation with ingress/egress counters, seqlock style:
//     a reader treats "ingress != egress" or "ingress moved" as a
//     possible concurrent commit.
//
// The monitor also carries a quiesce gate — an Indicator, the same
// abstraction as the paper's fallback-presence indicator — that lets a
// reader that keeps losing the optimistic race briefly hold off new
// update operations (they wait at Thread.Run entry) so validation is
// guaranteed to succeed after the in-flight operations drain. The
// sharding layer's live key migration uses the same gate as a brief
// two-shard mutual exclusion: Quiesce drains every in-flight update
// (transactional or not, tracked by the inflight counter), after which
// the holder may mutate the shard through gate-bypassing handles while
// Bracket keeps concurrent optimistic readers invalidated.
type UpdateMonitor struct {
	// txver counts updates committed on transactional paths. Bumped via
	// AddAtCommit so concurrent updaters only collide on the commit-time
	// lock, not on each other's read sets.
	txver htm.Word
	// nin/nout bracket updates on non-transactional paths: nin is
	// incremented when such an operation starts, nout when it completes.
	// nin == nout means none is in flight. Plain atomics, not htm cells:
	// they are never accessed transactionally, and an htm.Word bump
	// would advance the global version clock — forcing unrelated
	// concurrent transactions process-wide into full read-set
	// validation on every bracketed update.
	nin, nout atomic.Uint64
	// inflight counts update operations between engine entry and
	// completion on every path (transactional or not), but only when
	// fullDrain is set: the two read-modify-writes per update it costs
	// are a per-shard serialization point, so plain Atomic dictionaries
	// keep the original read-only gate check and only rebalancing
	// dictionaries — whose migrations need to know that *no* update at
	// all is in flight — pay for the accounting. With fullDrain, Quiesce
	// waits for the counter to reach zero.
	inflight  atomic.Int64
	fullDrain bool
	// gate holds off new update operations while a reader quiesces the
	// shard. Readers Arrive/Depart; updaters wait while it is nonzero.
	gate Indicator
	// quiesces counts completed Quiesce calls (escalated readers and
	// migrations); the observability layer reads it at scrape time.
	quiesces atomic.Uint64
}

// NewUpdateMonitor creates a monitor. A nil gate selects the plain
// fetch-and-increment indicator; pass NewSNZIIndicator() for the
// scalable variant when many readers may escalate concurrently.
func NewUpdateMonitor(gate Indicator) *UpdateMonitor {
	if gate == nil {
		gate = &counterIndicator{}
	}
	return &UpdateMonitor{gate: gate}
}

// Bind associates the monitor's cells — the transactional version
// counter and the quiesce gate — with the version clock of the TM whose
// update transactions publish through it. engine.New binds the monitor
// of its Config; a monitor serves exactly one engine (one shard), so it
// joins exactly one clock domain.
func (m *UpdateMonitor) Bind(c *htm.Clock) {
	m.txver.Bind(c)
	m.gate.Bind(c)
}

// bumpTx publishes an update committing on a transactional path. Called
// by the engine inside the update's transaction, so the bump commits
// atomically with the operation.
func (m *UpdateMonitor) bumpTx(tx *htm.Tx) { m.txver.AddAtCommit(tx, 1) }

// beginNonTx / endNonTx bracket an update running on a path whose
// commit is not a single transaction.
func (m *UpdateMonitor) beginNonTx() { m.nin.Add(1) }
func (m *UpdateMonitor) endNonTx()   { m.nout.Add(1) }

// nonTxInFlight reports whether a bracketed update is in flight.
func (m *UpdateMonitor) nonTxInFlight() bool {
	return m.nin.Load() != m.nout.Load()
}

// EnableFullDrain switches the monitor to full in-flight accounting
// (see the inflight field). Must be called before the monitor is used;
// the shard layer sets it on rebalancing dictionaries, whose
// migrations need Quiesce to guarantee exclusive update access.
func (m *UpdateMonitor) EnableFullDrain() { m.fullDrain = true }

// enter admits an update operation: it waits out the quiesce gate and,
// under EnableFullDrain, registers the operation as in flight. The
// in-flight counter is raised before the gate is checked, so a Quiesce
// that observes the counter at zero after arriving on the gate knows
// no update can slip past it (an updater that raced the arrival either
// registered first — and Quiesce waits for it — or sees the gate and
// backs off). Called by the engine before an update operation starts;
// exit must be called when the operation completes.
func (m *UpdateMonitor) enter() {
	if !m.fullDrain {
		waitWhile(func() bool { return m.gate.Nonzero(nil) })
		return
	}
	for {
		m.inflight.Add(1)
		if !m.gate.Nonzero(nil) {
			return
		}
		m.inflight.Add(-1)
		waitWhile(func() bool { return m.gate.Nonzero(nil) })
	}
}

// exit marks an update admitted by enter as complete.
func (m *UpdateMonitor) exit() {
	if m.fullDrain {
		m.inflight.Add(-1)
	}
}

// Enter admits an update operation from outside the engine: the shard
// layer's rebalancing dictionaries route a point operation, Enter the
// target shard's monitor, and re-check the routing table before
// dispatching — the admission pins the shard (a migration's Quiesce
// waits for it), making route-and-admit atomic. The corresponding
// engine-level admission must then be bypassed
// (Thread.SetGateBypass), or a reader quiescing the gate between the
// two admissions would deadlock against the second. Exit must be
// called when the operation completes.
func (m *UpdateMonitor) Enter() { m.enter() }

// Exit marks an update admitted by Enter as complete.
func (m *UpdateMonitor) Exit() { m.exit() }

// MonitorSample is a reader's snapshot of a monitor, taken with Sample
// and checked with Validate.
type MonitorSample struct {
	ver uint64 // transactional-path version counter
	in  uint64 // non-transactional ingress counter
}

// Sample captures the monitor's state before a read of the shard.
// ok is false when a non-transactional update is in flight (the read
// would race its uninstrumented commit); the caller should retry.
//
// The read order matters for the validation proof: egress before
// ingress (so a bracketed operation spanning the reads is seen as in
// flight, never as complete), and the version counter last (so it is
// the latest point the pre-read state is known to cover).
func (m *UpdateMonitor) Sample() (MonitorSample, bool) {
	out := m.nout.Load()
	in := m.nin.Load()
	ver := m.txver.Get(nil)
	if in != out {
		return MonitorSample{}, false
	}
	return MonitorSample{ver: ver, in: in}, true
}

// Validate reports whether the shard's logical content has provably not
// changed since s was taken: no transactional update committed (version
// unchanged) and no non-transactional update started (ingress
// unchanged; s itself proved none was in flight).
func (m *UpdateMonitor) Validate(s MonitorSample) bool {
	return m.txver.Get(nil) == s.ver && m.nin.Load() == s.in
}

// Quiesce arrives on the gate — holding off update operations that have
// not yet started — and waits for in-flight updates to drain. The
// returned function releases the gate.
//
// Under EnableFullDrain every admitted update (on any path) is waited
// out: after Quiesce returns, no update is in flight and none can
// start until release, so a Sample/read/Validate pass is guaranteed to
// succeed and a writer holding the gate (the shard layer's key
// migration) has exclusive update access through gate-bypassing
// handles. Without it only non-transactional updates are drained; the
// finitely many transactional updates already past the gate can still
// commit, so a Sample/read/Validate loop under Quiesce terminates but
// may retry a bounded number of times.
func (m *UpdateMonitor) Quiesce() (release func()) {
	release = m.gate.Arrive()
	if m.fullDrain {
		waitWhile(func() bool { return m.inflight.Load() != 0 })
	} else {
		waitWhile(m.nonTxInFlight)
	}
	m.quiesces.Add(1)
	return release
}

// Quiesces returns the number of completed Quiesce calls.
func (m *UpdateMonitor) Quiesces() uint64 { return m.quiesces.Load() }

// Bracket registers an externally driven multi-operation update (the
// shard layer's key migration) exactly like a non-transactional update
// path: while the returned done function has not been called, readers
// sampling the monitor observe an update in flight and retry, and a
// sample taken before Bracket fails validation afterwards. Bracket does
// not wait on the gate; callers are expected to hold it (via Quiesce).
func (m *UpdateMonitor) Bracket() (done func()) {
	m.beginNonTx()
	return m.endNonTx
}
