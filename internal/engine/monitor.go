package engine

import (
	"sync/atomic"

	"htmtree/internal/htm"
)

// UpdateMonitor publishes the commit points of a dictionary's update
// operations so that an external reader (the sharding layer's fan-out
// range queries) can tell whether any update committed, or was in
// flight, during a window of time. It is the per-shard half of the
// optimistic cross-shard snapshot validation scheme: the shard layer
// samples every overlapping shard's monitor, reads the shards, and
// re-validates the samples; an unchanged monitor proves the shard's
// logical content was stable over the whole window.
//
// Two disciplines cover the template's execution paths (Section 5 of
// the paper):
//
//   - Transactional paths (HTM fast path, middle path, TLE's elided
//     path) bump a version counter inside the update's own transaction
//     via htm.Word.AddAtCommit, so the bump is atomic with the
//     operation's commit — a reader either sees the operation and its
//     bump, or neither.
//   - Non-transactional paths (the lock-free fallback's SCX, TLE's
//     locked body, the Section 4 HTM-SCX algorithm) have no single
//     commit instruction the monitor can piggyback on, so they bracket
//     the whole operation with ingress/egress counters, seqlock style:
//     a reader treats "ingress != egress" or "ingress moved" as a
//     possible concurrent commit.
//
// The monitor also carries a quiesce gate — an Indicator, the same
// abstraction as the paper's fallback-presence indicator — that lets a
// reader that keeps losing the optimistic race briefly hold off new
// update operations (they wait at Thread.Run entry) so validation is
// guaranteed to succeed after the in-flight operations drain.
type UpdateMonitor struct {
	// txver counts updates committed on transactional paths. Bumped via
	// AddAtCommit so concurrent updaters only collide on the commit-time
	// lock, not on each other's read sets.
	txver htm.Word
	// nin/nout bracket updates on non-transactional paths: nin is
	// incremented when such an operation starts, nout when it completes.
	// nin == nout means none is in flight. Plain atomics, not htm cells:
	// they are never accessed transactionally, and an htm.Word bump
	// would advance the global version clock — forcing unrelated
	// concurrent transactions process-wide into full read-set
	// validation on every bracketed update.
	nin, nout atomic.Uint64
	// gate holds off new update operations while a reader quiesces the
	// shard. Readers Arrive/Depart; updaters wait while it is nonzero.
	gate Indicator
}

// NewUpdateMonitor creates a monitor. A nil gate selects the plain
// fetch-and-increment indicator; pass NewSNZIIndicator() for the
// scalable variant when many readers may escalate concurrently.
func NewUpdateMonitor(gate Indicator) *UpdateMonitor {
	if gate == nil {
		gate = &counterIndicator{}
	}
	return &UpdateMonitor{gate: gate}
}

// bumpTx publishes an update committing on a transactional path. Called
// by the engine inside the update's transaction, so the bump commits
// atomically with the operation.
func (m *UpdateMonitor) bumpTx(tx *htm.Tx) { m.txver.AddAtCommit(tx, 1) }

// beginNonTx / endNonTx bracket an update running on a path whose
// commit is not a single transaction.
func (m *UpdateMonitor) beginNonTx() { m.nin.Add(1) }
func (m *UpdateMonitor) endNonTx()   { m.nout.Add(1) }

// nonTxInFlight reports whether a bracketed update is in flight.
func (m *UpdateMonitor) nonTxInFlight() bool {
	return m.nin.Load() != m.nout.Load()
}

// waitGate blocks while a reader holds the quiesce gate. Called by the
// engine before an update operation starts.
func (m *UpdateMonitor) waitGate() {
	waitWhile(func() bool { return m.gate.Nonzero(nil) })
}

// MonitorSample is a reader's snapshot of a monitor, taken with Sample
// and checked with Validate.
type MonitorSample struct {
	ver uint64 // transactional-path version counter
	in  uint64 // non-transactional ingress counter
}

// Sample captures the monitor's state before a read of the shard.
// ok is false when a non-transactional update is in flight (the read
// would race its uninstrumented commit); the caller should retry.
//
// The read order matters for the validation proof: egress before
// ingress (so a bracketed operation spanning the reads is seen as in
// flight, never as complete), and the version counter last (so it is
// the latest point the pre-read state is known to cover).
func (m *UpdateMonitor) Sample() (MonitorSample, bool) {
	out := m.nout.Load()
	in := m.nin.Load()
	ver := m.txver.Get(nil)
	if in != out {
		return MonitorSample{}, false
	}
	return MonitorSample{ver: ver, in: in}, true
}

// Validate reports whether the shard's logical content has provably not
// changed since s was taken: no transactional update committed (version
// unchanged) and no non-transactional update started (ingress
// unchanged; s itself proved none was in flight).
func (m *UpdateMonitor) Validate(s MonitorSample) bool {
	return m.txver.Get(nil) == s.ver && m.nin.Load() == s.in
}

// Quiesce arrives on the gate — holding off update operations that have
// not yet started — and waits for in-flight non-transactional updates
// to drain. The returned function releases the gate. While the gate is
// held, only the finitely many updates already past it can still
// commit, so a Sample/read/Validate loop under Quiesce terminates.
func (m *UpdateMonitor) Quiesce() (release func()) {
	release = m.gate.Arrive()
	waitWhile(m.nonTxInFlight)
	return release
}
