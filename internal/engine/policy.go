package engine

import (
	"runtime"
	"sync/atomic"

	"htmtree/internal/htm"
	"htmtree/internal/xrand"
)

// Action is what an attempt loop does after a failed transactional
// attempt, as directed by the engine's RetryPolicy.
type Action uint8

// Retry actions.
const (
	// ActionRetry re-attempts the same path, consuming one unit of the
	// path's attempt budget.
	ActionRetry Action = iota
	// ActionFreeRetry re-attempts the same path without consuming
	// budget. Policies must bound how often they grant it (the free
	// counter passed to AfterAbort exists for that), or a persistent
	// abort source — e.g. spurious injection on every access — would
	// pin the operation to the path forever.
	ActionFreeRetry
	// ActionNextPath abandons the path's remaining budget and moves the
	// operation to the algorithm's next path.
	ActionNextPath
)

// Decision is a RetryPolicy's verdict on one failed attempt.
type Decision struct {
	Action Action
	// Backoff is how many spin iterations to wait before re-attempting
	// (0 = re-begin immediately). Ignored for ActionNextPath.
	Backoff uint32
}

// Site carries the per-call-site state a RetryPolicy adapts on: a
// private PRNG stream for backoff randomization and a saturating
// capacity score. Handles that build their ops once (bst, abtree,
// citrus, kcas all do) should give each op its own Site via NewSite so
// capacity memory is per operation type; ops with a nil Site share
// their engine thread's. A Site must not be used by two goroutines
// concurrently.
type Site struct {
	rng xrand.State
	// id is the site's process-unique identity, carried on the flight
	// recorder's abort events so a dump can attribute an abort storm to
	// one operation type's call site.
	id uint64
	// capScore counts recent fast-path capacity aborts, saturating at
	// capScoreSaturation and decaying on fast-path commits. At or above
	// capScoreSkip the adaptive policy starts operations past the fast
	// path (the Limited Read/Write-Set HTM observation: a site whose
	// footprint cannot fit should stop burning hardware attempts).
	capScore uint32
}

// Site tuning. These are engine mechanism, shared by all policies that
// choose to consult the score.
const (
	capScoreSaturation = 8
	capScoreSkip       = 3
	// capProbeEvery makes a skipping site still try the fast path on
	// roughly one operation in capProbeEvery, so the score can decay
	// and the site recover when its footprint shrinks again.
	capProbeEvery = 16
)

// siteSeq distinguishes the PRNG streams of all sites in the process,
// so concurrent sites never walk the same backoff sequence in lockstep.
var siteSeq uint64

// NewSite returns a Site with its own PRNG stream.
func NewSite() *Site {
	n := atomic.AddUint64(&siteSeq, 1)
	return &Site{rng: *xrand.New(0xa5b35705b7e3f4d1, n), id: n}
}

func (s *Site) noteCapacity() {
	if s.capScore < capScoreSaturation {
		s.capScore++
	}
}

func (s *Site) noteFastCommit() {
	if s.capScore > 0 {
		s.capScore--
	}
}

// RetryPolicy decides, from the abort taxonomy, what a failed
// transactional attempt does next. One policy instance serves every
// thread of an engine, so implementations must be stateless (or
// internally synchronized); per-site mutable state belongs in the Site
// the engine passes in, which is owned by one goroutine at a time.
type RetryPolicy interface {
	// Name identifies the policy in benchmark output ("static",
	// "adaptive").
	Name() string
	// AfterAbort is consulted after every failed transactional attempt.
	// used and free are the budgeted and free attempts already consumed
	// on this path during this operation. The engine enforces the
	// path's budget itself; AfterAbort only chooses among retrying,
	// retrying for free, and abandoning the path.
	AfterAbort(site *Site, path htm.PathKind, ab htm.Abort, used, free int) Decision
	// SkipFast reports whether an operation at this site should start
	// past the fast path (on the middle path for 3-path, the software
	// path otherwise), typically because the site's capacity score says
	// its footprint will not fit anyway.
	SkipFast(site *Site) bool
}

// FallbackHelper is an optional RetryPolicy extension consulted by the
// helpable fallback (Config.HelpableFallback): when HelpWhileBlocked
// reports true, a fast-path thread blocked on the fallback lock word
// spends its wait helping the announced operation (one help, then
// re-check the word) instead of burning backoff spins. AdaptivePolicy
// opts in; StaticPolicy keeps the plain wait, preserving the baseline's
// behavior for comparison.
type FallbackHelper interface {
	HelpWhileBlocked() bool
}

// StaticPolicy is the cause-blind baseline: every abort consumes one
// budgeted attempt with no backoff, and no site ever skips the fast
// path. This is the fixed-budget loop of the paper's Section 7 setup
// (and of this engine before the abort taxonomy was surfaced), kept as
// the comparison point for the abortpolicy experiment.
type StaticPolicy struct{}

// Name returns "static".
func (StaticPolicy) Name() string { return "static" }

// AfterAbort always retries, consuming budget.
func (StaticPolicy) AfterAbort(*Site, htm.PathKind, htm.Abort, int, int) Decision {
	return Decision{Action: ActionRetry}
}

// SkipFast always reports false.
func (StaticPolicy) SkipFast(*Site) bool { return false }

// AdaptivePolicy adapts to the abort cause, in the style of the
// per-cause retry loops production TM locks use (Cavalia's RtmLock is
// the canonical shape):
//
//   - conflict: retry after a randomized backoff drawn from a bounded
//     exponentially growing window — the losers of a conflict spread
//     out instead of re-colliding on the same cache lines;
//   - capacity: abandon the path immediately (the footprint will not
//     shrink by retrying) and bump the site's capacity score, which at
//     capScoreSkip makes future operations start past the fast path;
//   - spurious: retry without consuming budget, up to FreeRetries per
//     path — transient events say nothing about the attempt's odds;
//   - explicit: retry, consuming budget (logical retries are the
//     structure's business; the engine handles its own busy codes).
type AdaptivePolicy struct {
	// BackoffBase and BackoffMax bound the conflict backoff window in
	// spin iterations: attempt i draws from [1, min(BackoffBase<<i,
	// BackoffMax)].
	BackoffBase uint32
	BackoffMax  uint32
	// FreeRetries is how many spurious aborts per path retry without
	// consuming budget before they start counting.
	FreeRetries int
}

// NewAdaptivePolicy returns an AdaptivePolicy with the default tuning.
func NewAdaptivePolicy() *AdaptivePolicy {
	return &AdaptivePolicy{BackoffBase: 16, BackoffMax: 4096, FreeRetries: 8}
}

// Name returns "adaptive".
func (*AdaptivePolicy) Name() string { return "adaptive" }

// AfterAbort implements the per-cause table above.
func (p *AdaptivePolicy) AfterAbort(site *Site, _ htm.PathKind, ab htm.Abort, used, free int) Decision {
	switch ab.Cause {
	case htm.CauseCapacity:
		return Decision{Action: ActionNextPath}
	case htm.CauseConflict:
		shift := used
		if shift > 16 {
			shift = 16
		}
		bound := uint64(p.BackoffBase) << uint(shift)
		if max := uint64(p.BackoffMax); bound > max {
			bound = max
		}
		return Decision{Action: ActionRetry, Backoff: uint32(site.rng.Uint64n(bound) + 1)}
	case htm.CauseSpurious:
		if free < p.FreeRetries {
			return Decision{Action: ActionFreeRetry}
		}
	}
	return Decision{Action: ActionRetry}
}

// HelpWhileBlocked opts fast-path threads blocked on the fallback lock
// into helping the announced operation (see FallbackHelper).
func (p *AdaptivePolicy) HelpWhileBlocked() bool { return true }

// SkipFast consults the site's capacity score, still probing the fast
// path on ~1/capProbeEvery operations so the score can recover.
func (p *AdaptivePolicy) SkipFast(site *Site) bool {
	if site.capScore < capScoreSkip {
		return false
	}
	return site.rng.Uint64n(capProbeEvery) != 0
}

// PolicyNames lists the selectable policies, default first.
var PolicyNames = []string{"adaptive", "static"}

// ParsePolicy converts a policy name to a fresh policy instance,
// reporting whether the name was recognized. An empty name selects the
// default (adaptive).
func ParsePolicy(s string) (RetryPolicy, bool) {
	switch s {
	case "", "adaptive":
		return NewAdaptivePolicy(), true
	case "static":
		return StaticPolicy{}, true
	default:
		return nil, false
	}
}

// PolicyStats counts retry-policy actions across an engine's threads.
type PolicyStats struct {
	// Backoffs counts randomized waits taken before conflict re-begins.
	Backoffs uint64
	// FreeRetries counts spurious-abort retries granted without
	// consuming attempt budget.
	FreeRetries uint64
	// CapacitySkips counts paths abandoned with budget remaining
	// (ActionNextPath).
	CapacitySkips uint64
	// Demotions counts operations that started past the fast path
	// because their site's capacity score was saturated.
	Demotions uint64
	// Helps counts announced fallback operations this engine's threads
	// helped complete while blocked (helpable fallback only).
	Helps uint64
}

// Merge adds another snapshot into s.
func (s *PolicyStats) Merge(o PolicyStats) {
	s.Backoffs += o.Backoffs
	s.FreeRetries += o.FreeRetries
	s.CapacitySkips += o.CapacitySkips
	s.Demotions += o.Demotions
	s.Helps += o.Helps
}

// addAtomic accumulates a live per-thread accumulator into s using
// atomic loads (the Stats counterpart of PolicyStats.Merge).
func (s *PolicyStats) addAtomic(o *PolicyStats) {
	s.Backoffs += atomic.LoadUint64(&o.Backoffs)
	s.FreeRetries += atomic.LoadUint64(&o.FreeRetries)
	s.CapacitySkips += atomic.LoadUint64(&o.CapacitySkips)
	s.Demotions += atomic.LoadUint64(&o.Demotions)
	s.Helps += atomic.LoadUint64(&o.Helps)
}

// backoffSpin busy-waits for roughly n iterations of register-only
// work, yielding the processor periodically so backoff under
// oversubscription cannot starve the conflict winner it is waiting for.
func backoffSpin(n uint32) {
	x := uint64(1)
	for i := uint32(0); i < n; i++ {
		// An LCG step the compiler cannot elide (x feeds the branch).
		x = x*6364136223846793005 + 1442695040888963407
		if x == 0 || i&255 == 255 {
			runtime.Gosched()
		}
	}
}
