package engine

import (
	"sync"
	"testing"

	"htmtree/internal/htm"
)

// counterOp builds an Op whose every body increments the shared cell c,
// the minimal "data structure" for exercising path policies.
func counterOp(c *htm.Word) Op {
	return Op{
		Fast:   func(tx *htm.Tx) { c.Set(tx, c.Get(tx)+1) },
		Middle: func(tx *htm.Tx) { c.Set(tx, c.Get(tx)+1) },
		Fallback: func() bool {
			v := c.Get(nil)
			return c.CAS(nil, v, v+1)
		},
		Locked: func() { c.Set(nil, c.Get(nil)+1) },
		SCXHTM: func(useHTM bool) bool {
			v := c.Get(nil)
			return c.CAS(nil, v, v+1)
		},
	}
}

func newEngineThread(t *testing.T, htmCfg htm.Config, engCfg Config) (*Engine, *Thread, *htm.Clock) {
	t.Helper()
	tm := htm.New(htmCfg)
	e := New(engCfg, tm.Clock())
	return e, e.NewThread(tm.NewThread()), tm.Clock()
}

func TestAlgorithmsCompleteConcurrently(t *testing.T) {
	t.Parallel()
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tm := htm.New(htm.Config{})
			e := New(Config{Algorithm: alg}, tm.Clock())
			var c htm.Word
			c.Bind(tm.Clock())
			const goroutines = 4
			const perG = 2500
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := e.NewThread(tm.NewThread())
					op := counterOp(&c)
					for i := 0; i < perG; i++ {
						th.Run(op)
					}
				}()
			}
			wg.Wait()
			if got := c.Get(nil); got != goroutines*perG {
				t.Fatalf("counter = %d, want %d", got, goroutines*perG)
			}
			if total := e.Stats().Total(); total != goroutines*perG {
				t.Fatalf("op stats total = %d, want %d", total, goroutines*perG)
			}
		})
	}
}

func TestNonHTMUsesOnlyFallback(t *testing.T) {
	t.Parallel()
	e, th, clk := newEngineThread(t, htm.Config{}, Config{Algorithm: AlgNonHTM})
	var c htm.Word
	c.Bind(clk)
	for i := 0; i < 10; i++ {
		if p := th.Run(counterOp(&c)); p != htm.PathFallback {
			t.Fatalf("completed on %v, want fallback", p)
		}
	}
	s := e.Stats()
	if s.Fast != 0 || s.Middle != 0 || s.Fallback != 10 {
		t.Fatalf("stats = %+v, want fallback only", s)
	}
}

func TestFastPathPreferred(t *testing.T) {
	t.Parallel()
	for _, alg := range []Algorithm{AlgTLE, AlgTwoPathConc, AlgTwoPathNCon, AlgThreePath, AlgSCXHTM} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			_, th, clk := newEngineThread(t, htm.Config{}, Config{Algorithm: alg})
			var c htm.Word
			c.Bind(clk)
			if p := th.Run(counterOp(&c)); p != htm.PathFast {
				t.Fatalf("uncontended op completed on %v, want fast", p)
			}
		})
	}
}

func TestAllAbortsForceFallback(t *testing.T) {
	t.Parallel()
	// SpuriousEvery=1 makes every transactional access abort, so every
	// algorithm with a software path must complete there.
	for _, alg := range []Algorithm{AlgTLE, AlgTwoPathConc, AlgTwoPathNCon, AlgThreePath} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			_, th, clk := newEngineThread(t, htm.Config{SpuriousEvery: 1}, Config{Algorithm: alg})
			var c htm.Word
			c.Bind(clk)
			if p := th.Run(counterOp(&c)); p != htm.PathFallback {
				t.Fatalf("completed on %v, want fallback", p)
			}
			if got := c.Get(nil); got != 1 {
				t.Fatalf("counter = %d, want 1", got)
			}
		})
	}
}

func TestThreePathMovesToMiddleWhenFallbackBusy(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	e := New(Config{Algorithm: AlgThreePath}, tm.Clock())
	th := e.NewThread(tm.NewThread())
	var c htm.Word
	c.Bind(tm.Clock())

	depart := e.cfg.Indicator.Arrive() // simulate an operation on the fallback path
	defer depart()

	if p := th.Run(counterOp(&c)); p != htm.PathMiddle {
		t.Fatalf("completed on %v, want middle while fallback busy", p)
	}
	// The fast path must have been abandoned after exactly one attempt
	// (it saw F != 0 and moved, rather than waiting).
	hs := th.H.Stats()
	if got := hs.Aborts[htm.PathFast][htm.CauseExplicit]; got != 1 {
		t.Fatalf("fast explicit aborts = %d, want 1 (immediate move to middle)", got)
	}
	if hs.Commits[htm.PathMiddle] != 1 {
		t.Fatalf("middle commits = %d, want 1", hs.Commits[htm.PathMiddle])
	}
}

func TestThreePathCapacitySkipsRetries(t *testing.T) {
	t.Parallel()
	// A fast body that always overflows the read capacity must move to
	// the middle path after a single attempt, and then (still
	// overflowing) to the fallback path after a single middle attempt.
	tm := htm.New(htm.Config{ReadCapacity: 4})
	e := New(Config{Algorithm: AlgThreePath}, tm.Clock())
	th := e.NewThread(tm.NewThread())
	cells := make([]htm.Word, 16)
	readAll := func(tx *htm.Tx) {
		for i := range cells {
			_ = cells[i].Get(tx)
		}
	}
	done := false
	p := th.Run(Op{
		Fast:     readAll,
		Middle:   readAll,
		Fallback: func() bool { done = true; return true },
	})
	if p != htm.PathFallback || !done {
		t.Fatalf("completed on %v (done=%v), want fallback", p, done)
	}
	hs := th.H.Stats()
	if got := hs.Aborts[htm.PathFast][htm.CauseCapacity]; got != 1 {
		t.Fatalf("fast capacity aborts = %d, want 1", got)
	}
	if got := hs.Aborts[htm.PathMiddle][htm.CauseCapacity]; got != 1 {
		t.Fatalf("middle capacity aborts = %d, want 1", got)
	}
}

func TestTLEMutualExclusion(t *testing.T) {
	t.Parallel()
	// While a TLE operation holds the global lock, fast-path
	// transactions must not commit. The locked body flips a plain (non
	// transactional, deliberately unsynchronized-looking but
	// cell-backed) flag; fast bodies assert they never observe it set.
	// One goroutine's fast body always aborts explicitly, so all its
	// operations run under the lock (per-TM clocks require one engine to
	// serve one TM, so the old per-thread spurious-abort trick is out).
	tm := htm.New(htm.Config{})
	e := New(Config{Algorithm: AlgTLE, AttemptLimit: 2}, tm.Clock())
	var inLocked htm.Word
	var c htm.Word
	inLocked.Bind(tm.Clock())
	c.Bind(tm.Clock())

	var wg sync.WaitGroup
	violated := make(chan struct{}, 1)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(forceLock bool) {
			defer wg.Done()
			th := e.NewThread(tm.NewThread())
			op := Op{
				Fast: func(tx *htm.Tx) {
					if forceLock {
						tx.Abort(CodeRetry) // drive this thread to the lock
					}
					if inLocked.Get(tx) != 0 {
						select {
						case violated <- struct{}{}:
						default:
						}
					}
					c.Set(tx, c.Get(tx)+1)
				},
				Locked: func() {
					inLocked.Set(nil, 1)
					c.Set(nil, c.Get(nil)+1)
					inLocked.Set(nil, 0)
				},
			}
			for i := 0; i < 2000; i++ {
				th.Run(op)
			}
		}(g == 0)
	}
	wg.Wait()
	select {
	case <-violated:
		t.Fatal("fast-path transaction committed while the TLE lock was held")
	default:
	}
	if got := c.Get(nil); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
}

func TestSCXHTMBudget(t *testing.T) {
	t.Parallel()
	_, th, _ := newEngineThread(t, htm.Config{}, Config{Algorithm: AlgSCXHTM, AttemptLimit: 3})
	htmCalls, fallbackCalls := 0, 0
	p := th.Run(Op{SCXHTM: func(useHTM bool) bool {
		if useHTM {
			htmCalls++
			return false // always fail on the HTM path
		}
		fallbackCalls++
		return fallbackCalls == 2 // fail once, then succeed
	}})
	if p != htm.PathFallback {
		t.Fatalf("completed on %v, want fallback", p)
	}
	if htmCalls != 3 || fallbackCalls != 2 {
		t.Fatalf("htmCalls=%d fallbackCalls=%d, want 3 and 2", htmCalls, fallbackCalls)
	}
}

func TestSNZIIndicatorWithThreePath(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	e := New(Config{Algorithm: AlgThreePath, Indicator: NewSNZIIndicator()}, tm.Clock())
	var c htm.Word
	c.Bind(tm.Clock())
	const goroutines = 4
	const perG = 1500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := e.NewThread(tm.NewThread())
			op := counterOp(&c)
			for i := 0; i < perG; i++ {
				th.Run(op)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(nil); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestParseAlgorithm(t *testing.T) {
	t.Parallel()
	for _, a := range Algorithms {
		got, ok := ParseAlgorithm(a.String())
		if !ok || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v,%v", a.String(), got, ok)
		}
	}
	if _, ok := ParseAlgorithm("nope"); ok {
		t.Fatal("ParseAlgorithm accepted an unknown name")
	}
}
