package engine

import (
	"runtime"
	"sync/atomic"

	"htmtree/internal/fault"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
	"htmtree/internal/obs"
)

// This file implements the helpable fallback path: the TLE critical
// section reimplemented as a lock-free lock in the style of "Lock-Free
// Locks Revisited" (Ben-David, Blelloch & Wei 2022).
//
// The classic TLE fallback serializes on the per-shard lock word e.tle,
// so one preempted fallback owner convoys every thread of the shard:
// fast-path transactions subscribe to the word and abort while it is
// held, and other fallback operations spin on it. The helpable variant
// removes the owner from the critical path:
//
//  1. The owner builds a HelpDesc — operation kind, arguments, and a
//     slot for the idempotent write plan — and publishes it in the TM's
//     announcement slot (htm.TM.Announce) *before* entering the locked
//     region.
//  2. Any thread can then drive the descriptor to completion via
//     execDesc: acquire the lock word for the descriptor's generation
//     (the acquisition is thread-agnostic — e.tle.CAS(nil, 0, d.gen) by
//     whichever executor gets there first, so a preempted owner cannot
//     convoy the acquisition either), run one tree attempt that ends in
//     an llxscx.SCXRecord, install the attempt with a CAS into the
//     descriptor, and run the record. The record is the idempotent
//     write plan: llxscx's help protocol makes concurrent and repeated
//     Run calls safe, so every executor can push the same record.
//  3. The install CAS is the linearization of the descriptor's result:
//     a terminal attempt (a committed record, or Rec == nil for a
//     logical no-op) is never removed from the descriptor, which makes
//     the protocol stale-proof — a delayed helper re-running an old
//     descriptor finds the terminal attempt and stops. Aborted records
//     are CASed out and the attempt repeated.
//  4. Release is derived, not owned: any thread observing a terminal
//     attempt performs the idempotent release (e.tle.CAS(nil, d.gen, 0)
//     plus the slot retraction), so the critical section ends as soon
//     as *anyone* notices it is done.
//
// Progress: while a descriptor is announced, every blocked thread —
// fast-path waiters (helpWait), classic lock acquirers, and threads
// blocked inside the TLE lock backend's Begin — works on the announced
// operation instead of spinning, so the operation completes as long as
// any thread is scheduled. Exclusion against the uninstrumented fast
// path is unchanged: fast transactions abort while the word is nonzero
// and validate it at commit, so no fast commit can interleave with the
// critical section's non-transactional writes.
//
// Reads (searches, range queries) are not helpable: their results
// cannot be delivered through an idempotent record, and the fast path's
// in-place leaf mutations make un-announced non-transactional reads
// unsound. Non-helpable operations that exhaust the fast path take the
// word classically (generation 1) and help while waiting — a documented
// departure from strict lock-freedom that only read-heavy fallback
// traffic can observe.

// HelpKind identifies the announced operation.
type HelpKind uint8

// Announced operation kinds.
const (
	HelpInsert HelpKind = iota + 1
	HelpDelete
)

// HelpAttempt is one installed execution attempt of an announced
// operation. Attempts are immutable once installed; the result fields
// are read only after the attempt is terminal, so concurrent observers
// never race on them.
type HelpAttempt struct {
	// Rec is the fallback SCX record that commits the operation's
	// writes, or nil when the attempt resolved to a logical no-op
	// (delete of an absent key), which is terminal immediately.
	Rec *llxscx.SCXRecord
	// Val and Found are the operation's result (previous value and
	// presence), valid once the attempt is terminal.
	Val   uint64
	Found bool
	// NeedFix records that the committed operation left a constraint
	// violation the *owner* must repair after the critical section (the
	// a-b-tree's degree violations); helpers cannot run the fix loop,
	// which re-enters the engine.
	NeedFix bool
}

// terminal reports whether the attempt reached a terminal state.
func (att *HelpAttempt) terminal() bool {
	return att.Rec == nil || att.Rec.State() == llxscx.StateCommitted
}

// HelpDesc is the announced closure descriptor of one fallback critical
// section. The engine allocates one per fallback entry (the fallback
// path is cold by construction); it implements htm.Announced.
type HelpDesc struct {
	// Kind, Key and Val are the operation and its arguments, fixed at
	// announce time so helpers never touch the owner's handle scratch.
	Kind HelpKind
	Key  uint64
	Val  uint64

	// gen is the value the executors hold the TLE word at: unique per
	// descriptor (from the engine's generation counter, starting at 2;
	// 1 is the classic non-helpable acquisition), so release CASes can
	// never free a word held for someone else.
	gen uint64

	// attempt is the currently installed execution attempt. nil → no
	// attempt in flight; an aborted attempt is CASed back to nil; a
	// terminal attempt stays forever.
	attempt atomic.Pointer[HelpAttempt]
}

// Finished implements htm.Announced: the descriptor is finished once a
// terminal attempt is installed.
func (d *HelpDesc) Finished() bool {
	att := d.attempt.Load()
	return att != nil && att.terminal()
}

// Install tries to install att as the descriptor's current attempt.
// The structure's help body calls it after preparing (but before
// running) the attempt's record; success makes the caller the attempt's
// preparer, responsible for node retirement if the record commits.
func (d *HelpDesc) Install(att *HelpAttempt) bool {
	return d.attempt.CompareAndSwap(nil, att)
}

// HelpableOp extends an Op with the announcement closure descriptor's
// ingredients. Ops carrying a non-nil Helpable run their fallback
// critical section through the helpable protocol when the engine has
// HelpableFallback set.
type HelpableOp struct {
	// Kind is the announced operation kind.
	Kind HelpKind
	// Args reads the operation's arguments from the handle scratch at
	// announce time (the descriptor copies them, so helpers are immune
	// to later scratch reuse).
	Args func() (key, val uint64)
	// Finish delivers the completed operation's result back into the
	// handle scratch, and the a-b-tree's deferred fix flag to the
	// owner. Called exactly once, by the owner, after the critical
	// section.
	Finish func(val uint64, found, needFix bool)
}

// SetHelpExec registers the structure's fallback-attempt executor: one
// tree attempt for the descriptor, using this thread's own handle state
// (search buffers, node pool, reclamation context), ending in
// HelpDesc.Install + SCXRecord.Run. Registering also installs the
// htm-level helper so this thread participates in helping whenever it
// waits on the TM (announce races, TLE lock backend, fast-path waits).
func (th *Thread) SetHelpExec(fn func(*HelpDesc)) {
	th.helpExec = fn
	th.H.SetHelper(th.helpAnnounced)
}

// helpAnnounced is the htm.Thread helper: it downcasts the announced
// descriptor and drives it to completion with this thread's executor.
func (th *Thread) helpAnnounced(a htm.Announced) bool {
	d, ok := a.(*HelpDesc)
	if !ok || th.helpExec == nil {
		return false
	}
	if th.rec != nil && !th.rec.Active() {
		// Helping runs non-transactional template code over shared
		// nodes, which is only safe inside an announced reclamation
		// epoch (pooled nodes must not be reused under the walk). The
		// engine's own helping points all sit inside an operation's
		// epoch; a direct Thread.Help call from outside one takes its
		// own cover here.
		th.rec.Begin()
		defer th.rec.End()
	}
	th.execDesc(d)
	return true
}

// nextGen returns a fresh descriptor generation (≥ 2; see HelpDesc.gen).
func (e *Engine) nextGen() uint64 { return e.genCtr.Add(1) + 1 }

// execDesc drives an announced descriptor to completion and returns its
// terminal attempt. Any number of threads (the owner and helpers) may
// run it concurrently; each loops until a terminal attempt exists, then
// performs the idempotent release.
func (th *Thread) execDesc(d *HelpDesc) *HelpAttempt {
	e := th.eng
	for {
		if att := d.attempt.Load(); att != nil {
			if att.terminal() {
				th.releaseDesc(d)
				if so := th.obs; so != nil {
					// The install CAS is the linearization; record that
					// this executor observed the terminal attempt.
					so.RareEvent(obs.EvInstall, htm.PathFallback, htm.CauseNone, d.gen, 0)
				}
				return att
			}
			if att.Rec.State() == llxscx.StateAborted {
				// Failed attempt: clear it so an executor can retry.
				d.attempt.CompareAndSwap(att, nil)
				continue
			}
			// In progress: push the installed record forward. Run is
			// idempotent and helper-safe.
			att.Rec.Run()
			continue
		}
		// No attempt in flight: hold the word for this descriptor, then
		// run one tree attempt. Whoever CASes first holds it; a word
		// held by another generation (a classic locked operation, or a
		// finished descriptor whose release we lost a race with) just
		// means waiting for that holder.
		if v := e.tle.Get(nil); v != d.gen {
			if v != 0 || !e.tle.CAS(nil, 0, d.gen) {
				runtime.Gosched()
				continue
			}
		}
		th.helpExec(d)
	}
}

// releaseDesc performs the idempotent end of the critical section:
// free the word if still held for this descriptor, and retract the
// announcement if still posted. Multiple observers may race here; the
// CASes make every step exactly-once.
func (th *Thread) releaseDesc(d *HelpDesc) {
	th.eng.tle.CAS(nil, d.gen, 0)
	th.H.TM().Retract(d)
}

// runHelpableFallback is the owner side of the protocol: announce the
// descriptor, then drive it like any helper, then deliver the result.
// The monitor bracket opens before the announcement because a helper
// may commit the operation at any moment after it is visible.
func (th *Thread) runHelpableFallback(op Op, mon *UpdateMonitor) {
	e := th.eng
	key, val := op.Helpable.Args()
	d := &HelpDesc{Kind: op.Helpable.Kind, Key: key, Val: val, gen: e.nextGen()}
	if mon != nil {
		mon.beginNonTx()
		defer mon.endNonTx()
	}
	so := th.obs
	if so != nil {
		freg := obs.StartFallbackRegion()
		defer obs.EndRegion(freg)
	}
	tm := th.H.TM()
	for !tm.Announce(d) {
		// Another critical section is announced: help it to completion
		// rather than waiting behind it.
		if th.H.Help() {
			atomic.AddUint64(&th.polstats.Helps, 1)
			if so != nil {
				so.RareEvent(obs.EvHelp, htm.PathFallback, htm.CauseNone, 0, 0)
			}
		} else {
			runtime.Gosched()
		}
	}
	if so != nil {
		so.RareEvent(obs.EvAnnounce, htm.PathFallback, htm.CauseNone, d.gen, 0)
	}
	if e.cfg.PreemptPoint != nil {
		e.cfg.PreemptPoint()
	}
	// Owner-fault seam: the descriptor is announced and visible, the
	// critical section is not yet executed — the exact window the
	// helpable protocol's progress claim covers. A Kill effect parks
	// this goroutine forever; any other fallback entrant (or
	// help-while-blocked fast-path waiter) must drive d to completion.
	e.cfg.Faults.Hit(fault.PointFallbackOwner)
	att := th.execDesc(d)
	atomic.AddUint64(&th.fallbackAcq, 1)
	if so != nil {
		so.RareEvent(obs.EvAcquire, htm.PathFallback, htm.CauseNone, d.gen, 0)
	}
	op.Helpable.Finish(att.Val, att.Found, att.NeedFix)
}

// helpWait waits for the TLE word to clear before a fast-path attempt,
// helping the announced operation instead of spinning when one is
// present (the RetryPolicy's FallbackHelper verdict enables this wait).
func (th *Thread) helpWait() {
	e := th.eng
	for i := 0; e.tle.Get(nil) != 0; i++ {
		if th.H.Help() {
			atomic.AddUint64(&th.polstats.Helps, 1)
			if so := th.obs; so != nil {
				so.RareEvent(obs.EvHelp, htm.PathFast, htm.CauseNone, 0, 0)
			}
			continue
		}
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
}
