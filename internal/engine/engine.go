// Package engine implements the execution-path policies of Brown's
// accelerated tree-update-template algorithms (PODC 2017, Sections 1 and
// 5): the original lock-free template (non-htm), transactional lock
// elision (tle), the two 2-path algorithms (with and without concurrency
// between the HTM fast path and the software fallback path), the 3-path
// algorithm that is the paper's contribution, and the standalone
// HTM-SCX algorithm of Section 4 as an ablation.
//
// The engine owns only policy: which body to attempt, how many times,
// when to wait and when to move between paths, and the bookkeeping
// (fallback-presence counter F or SNZI, TLE global lock, per-path
// operation counters). Data structures supply the bodies.
package engine

import (
	"fmt"
	"runtime"
	"runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"htmtree/internal/ebr"
	"htmtree/internal/fault"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
	"htmtree/internal/obs"
	"htmtree/internal/snzi"
)

// Algorithm selects one of the template implementations studied in the
// paper.
type Algorithm uint8

// Template algorithms. The names follow the paper: TwoPathConc is
// "2-path con" (concurrency between fast and fallback paths, so the fast
// path runs instrumented LLX/SCX code); TwoPathNCon is the non-concurrent
// variant (sequential fast path, fallback presence counter F); ThreePath
// is the paper's contribution.
const (
	AlgNonHTM Algorithm = iota + 1
	AlgTLE
	AlgTwoPathConc
	AlgTwoPathNCon
	AlgThreePath
	AlgSCXHTM // Section 4: HTM LLX/SCX primitives, operation structure unchanged
)

// Algorithms lists every algorithm in presentation order.
var Algorithms = []Algorithm{
	AlgNonHTM, AlgTLE, AlgTwoPathConc, AlgTwoPathNCon, AlgThreePath, AlgSCXHTM,
}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgNonHTM:
		return "non-htm"
	case AlgTLE:
		return "tle"
	case AlgTwoPathConc:
		return "2-path-con"
	case AlgTwoPathNCon:
		return "2-path-ncon"
	case AlgThreePath:
		return "3-path"
	case AlgSCXHTM:
		return "scx-htm"
	default:
		return fmt.Sprintf("algorithm(%d)", uint8(a))
	}
}

// ParseAlgorithm converts a name produced by Algorithm.String back to the
// algorithm, reporting whether the name was recognized.
func ParseAlgorithm(s string) (Algorithm, bool) {
	for _, a := range Algorithms {
		if a.String() == s {
			return a, true
		}
	}
	return 0, false
}

// Explicit abort codes used by the engine and the data-structure bodies.
const (
	// CodeRetry signals a logical retry: an LLX failed, a record was
	// concurrently finalized, or a validation check failed.
	CodeRetry uint8 = 0x01
	// CodeFallbackBusy signals that a fast-path transaction observed the
	// fallback-presence indicator non-zero.
	CodeFallbackBusy uint8 = 0x02
	// CodeLockHeld signals that a TLE transaction observed the global
	// lock held.
	CodeLockHeld uint8 = 0x03
)

// Default attempt budgets (paper Section 7: 20 attempts for the 2-path
// algorithms and TLE, 10 + 10 for 3-path).
const (
	DefaultAttemptLimit = 20
	DefaultFastLimit    = 10
	DefaultMiddleLimit  = 10
)

// Indicator abstracts the fallback-presence counter F. The paper notes a
// fetch-and-increment object suffices and a scalable non-zero indicator
// (SNZI) can replace it; both are provided.
type Indicator interface {
	// Arrive notes that an operation entered the fallback path and
	// returns the function that retracts this particular arrival.
	Arrive() (depart func())
	// Nonzero reports whether any operation is on the fallback path. A
	// transactional read (tx != nil) subscribes the caller so that a
	// change aborts it (for an SNZI, only 0↔nonzero transitions do).
	Nonzero(tx *htm.Tx) bool
	// Bind associates the indicator's cells with the version clock of
	// the TM whose transactions subscribe to it: arrivals mutate the
	// cells non-transactionally and must advance that clock. The engine
	// binds its indicator (and its monitor's gate) at construction.
	Bind(c *htm.Clock)
}

// counterIndicator is the plain fetch-and-increment implementation.
type counterIndicator struct {
	f htm.Word
}

func (c *counterIndicator) Arrive() func() {
	c.f.Add(1)
	return c.depart
}
func (c *counterIndicator) depart()                 { c.f.Add(^uint64(0)) }
func (c *counterIndicator) Nonzero(tx *htm.Tx) bool { return c.f.Get(tx) != 0 }
func (c *counterIndicator) Bind(clk *htm.Clock)     { c.f.Bind(clk) }

// snziIndicator adapts an SNZI to the Indicator interface.
type snziIndicator struct {
	s *snzi.SNZI
}

// NewSNZIIndicator returns an Indicator backed by a scalable non-zero
// indicator, the alternative to the fetch-and-increment counter the
// paper suggests in Section 5.
func NewSNZIIndicator() Indicator { return &snziIndicator{s: snzi.New()} }

func (si *snziIndicator) Arrive() func() {
	t := si.s.Arrive()
	return func() { si.s.Depart(t) }
}
func (si *snziIndicator) Nonzero(tx *htm.Tx) bool { return si.s.Nonzero(tx) }
func (si *snziIndicator) Bind(c *htm.Clock)       { si.s.Bind(c) }

// Config controls an Engine.
type Config struct {
	// Algorithm selects the template implementation. Required.
	Algorithm Algorithm
	// AttemptLimit is the fast-path budget for TLE and the 2-path
	// algorithms (default 20).
	AttemptLimit int
	// FastLimit and MiddleLimit are the 3-path budgets (default 10 each).
	FastLimit   int
	MiddleLimit int
	// Indicator overrides the fallback-presence indicator (default: a
	// fetch-and-increment counter). Use snzi.New() for the scalable
	// variant.
	Indicator Indicator
	// Monitor, when non-nil, publishes the commit point of every update
	// operation (Op.Update) so an external reader can validate that no
	// update committed during a window: transactional paths bump its
	// version counter inside the operation's transaction, and
	// non-transactional paths bracket the operation with its
	// ingress/egress counters. The sharding layer installs one monitor
	// per shard to make cross-shard range queries atomic.
	Monitor *UpdateMonitor
	// Policy is the retry policy consulted with the htm.Abort after
	// every failed transactional attempt, on every algorithm (default:
	// NewAdaptivePolicy; StaticPolicy restores the cause-blind
	// fixed-budget loops).
	Policy RetryPolicy
	// HelpableFallback replaces AlgTLE's locked fallback path with the
	// helpable lock-free lock protocol (see help.go): operations with a
	// Helpable descriptor are announced before the critical section and
	// any blocked thread drives them to completion instead of spinning
	// behind a possibly preempted owner. Ignored by other algorithms.
	HelpableFallback bool
	// PreemptPoint, when non-nil, is invoked at the most
	// preemption-sensitive point of the fallback path: right after the
	// classic lock acquisition (the baseline's convoy window), or right
	// after the announcement in helpable mode. Tests inject
	// runtime.Gosched here to force the convoy/help schedules.
	//
	// Deprecated: the same seam is fault.PointFallbackOwner on Faults,
	// which additionally supports deterministic triggers, stalls, and
	// permanent owner death. PreemptPoint remains as the zero-setup
	// hook existing tests use.
	PreemptPoint func()
	// Faults, when non-nil, arms the deterministic fault-injection
	// plane at the engine's seams: fault.PointFallbackOwner fires at
	// the PreemptPoint seam above (in helpable mode a Kill effect
	// parks the announced owner forever and helpers must complete the
	// operation — the lock-free progress guarantee under test), and
	// the plan is forwarded to the engine's reclamation domain for
	// fault.PointEBRPin. The HTM and shard layers carry their own
	// plan references; one shared *fault.Plan arms a whole structure.
	Faults *fault.Plan
	// Obs, when non-nil, attaches this engine to a live observability
	// domain (see obs.go in this package): New registers the metric
	// families that read the per-thread counters, and every NewThread
	// gains a flight-recorder thread with sampled latency capture,
	// runtime/trace op regions, and abort/help/acquire events.
	Obs *obs.Node
}

func (c Config) withDefaults() Config {
	if c.AttemptLimit == 0 {
		c.AttemptLimit = DefaultAttemptLimit
	}
	if c.FastLimit == 0 {
		c.FastLimit = DefaultFastLimit
	}
	if c.MiddleLimit == 0 {
		c.MiddleLimit = DefaultMiddleLimit
	}
	if c.Indicator == nil {
		c.Indicator = &counterIndicator{}
	}
	if c.Policy == nil {
		c.Policy = NewAdaptivePolicy()
	}
	return c
}

// Engine executes operations according to one of the template
// algorithms.
type Engine struct {
	cfg Config
	// tle is the TLE global lock word: 0 free, 1 held by a classic
	// locked operation, ≥ 2 held for the helpable descriptor of that
	// generation (see help.go).
	tle     htm.Word
	reclaim *ebr.Manager // epoch domain for the structure's node pools
	// genCtr feeds HelpDesc generations (nextGen).
	genCtr atomic.Uint64
	// helpingPolicy caches whether the retry policy opted into
	// help-while-blocked fast-path waits (FallbackHelper).
	helpingPolicy bool

	mu      sync.Mutex
	threads []*Thread
}

// New creates an engine bound to the version clock of the TM whose
// threads it will run (htm.TM.Clock). The engine's own cells — the TLE
// lock, the fallback-presence indicator, and the cells of the update
// monitor, all of which transactions subscribe to and non-transactional
// paths mutate — join that clock's synchronization domain here. Zero
// fields of cfg select defaults.
func New(cfg Config, clk *htm.Clock) *Engine {
	if cfg.Algorithm == 0 {
		cfg.Algorithm = AlgThreePath
	}
	e := &Engine{cfg: cfg.withDefaults(), reclaim: ebr.New()}
	e.reclaim.SetFaults(e.cfg.Faults)
	if fh, ok := e.cfg.Policy.(FallbackHelper); ok {
		e.helpingPolicy = fh.HelpWhileBlocked()
	}
	e.tle.Bind(clk)
	e.cfg.Indicator.Bind(clk)
	if e.cfg.Monitor != nil {
		e.cfg.Monitor.Bind(clk)
	}
	if e.cfg.Obs != nil {
		e.registerObs(e.cfg.Obs)
	}
	return e
}

// Algorithm returns the engine's algorithm.
func (e *Engine) Algorithm() Algorithm { return e.cfg.Algorithm }

// Thread is the per-goroutine execution context: the HTM thread, the
// tagged-sequence-number source, the reclamation context, and per-path
// operation counters.
type Thread struct {
	// H is the simulated-HTM thread context.
	H *htm.Thread
	// Tags produces the fresh tagged info values HTM-path SCXs write.
	Tags llxscx.TagSource

	eng *Engine
	ops [htm.NumPaths]uint64 // completions indexed by htm.PathKind
	// aborts counts failed transactional attempts per path and cause as
	// seen by the attempt loops; polstats counts the retry policy's
	// actions. Both are written with atomic adds so Stats may read them
	// from a reporting goroutine.
	aborts   [htm.NumPaths][htm.NumCauses]uint64
	polstats PolicyStats
	// fallbackAcq counts fallback critical-section acquisitions (classic
	// TLE lock takes and helpable descriptors driven to completion by
	// their owner), atomically — the observability layer's
	// htmtree_fallback_acquisitions_total family reads it.
	fallbackAcq uint64
	// obs is the thread's flight-recorder context, nil unless the engine
	// was built with Config.Obs.
	obs *obs.ThreadObs
	// site is the fallback policy site for ops built without their own.
	site Site

	// rec is the thread's epoch-based-reclamation context, created by
	// EnableReclaim; Run brackets every operation with its Begin/End so
	// grace periods cover all node references an operation may hold.
	rec *ebr.Thread
	// fastRecycle records whether nodes removed by fast-path commits may
	// be recycled immediately (the Section 9 rule); see EnableReclaim.
	fastRecycle bool

	// gateBypass exempts this thread's update operations from the
	// monitor's quiesce gate and in-flight accounting (commit publication
	// is unaffected). Set on the shard layer's migration handles, whose
	// operations run while the migrator itself holds the gate.
	gateBypass bool

	// helpExec is the structure's fallback-attempt executor for
	// announced descriptors (SetHelpExec); nil disables helping on this
	// thread.
	helpExec func(*HelpDesc)
}

// SetGateBypass exempts the thread's update operations from the update
// monitor's quiesce gate and in-flight accounting. Their commit points
// are still published (version bumps, non-transactional brackets), so
// optimistic readers validate against them as usual. Intended solely
// for the shard layer's key migration, which mutates two shards while
// holding their gates; bypassing threads must be externally serialized
// against gate holders.
func (th *Thread) SetGateBypass(bypass bool) { th.gateBypass = bypass }

// ReclaimReader registers a read-only context in the engine's epoch
// domain, for structure-level walks that run outside any engine thread
// (the sharding layer's consistent KeySum reads a tree while updaters
// run). Bracketing such a walk with the returned thread's Begin/End
// stalls grace periods for its duration, so pooled nodes cannot be
// reused — in particular, internal nodes' plain key/child arrays cannot
// be rewritten — while the walk holds references. The context retires
// nothing; the registration is permanent, so create one per tree, not
// per read.
func (e *Engine) ReclaimReader() *ebr.Thread {
	return e.reclaim.NewThread(func(any) {})
}

// NewThread registers a new engine thread wrapping the given HTM thread.
func (e *Engine) NewThread(h *htm.Thread) *Thread {
	e.mu.Lock()
	defer e.mu.Unlock()
	th := &Thread{H: h, eng: e, site: *NewSite()}
	if e.cfg.Obs != nil {
		th.obs = e.cfg.Obs.NewThread()
	}
	e.threads = append(e.threads, th)
	return th
}

// EnableReclaim creates the thread's epoch-based reclamation context in
// the engine's epoch domain: Run then brackets every operation with the
// ebr Begin/End (so grace periods cover all node references an operation
// holds), and Retire becomes usable. free receives every node whose
// reclamation completed — typically the structure's per-thread pool Put.
//
// nonTxReaders declares that the structure reads nodes outside both
// transactions and the fallback path's LLX protocol — the Section 8
// searches-outside-transactions optimization. Such readers do not abort
// on recycled cells, so immediate fast-path recycling is unsound and
// Retire falls back to grace periods for every node.
func (th *Thread) EnableReclaim(free func(any), nonTxReaders bool) {
	th.rec = th.eng.reclaim.NewThread(free)
	// The Section 9 immediate-recycle rule holds for nodes removed by
	// fast-path commits exactly when every thread that could still hold a
	// reference runs transactionally: the fast path of 3-path and
	// 2-path-ncon excludes the fallback path via the presence indicator,
	// and TLE's elided path excludes the locked path via the lock
	// subscription. 2-path-con's "fast" path is the instrumented body
	// running concurrently with fallback-path readers, and non-htm and
	// scx-htm commit removals non-transactionally, so none of them
	// qualifies.
	switch th.eng.cfg.Algorithm {
	case AlgThreePath, AlgTwoPathNCon:
		th.fastRecycle = !nonTxReaders
	case AlgTLE:
		// Under the helpable fallback, stale helpers may still be
		// reading nodes non-transactionally after the critical section's
		// derived release lets fast-path commits resume, so immediate
		// recycling of fast-path removals is unsound there.
		th.fastRecycle = !nonTxReaders && !th.eng.cfg.HelpableFallback
	default:
		th.fastRecycle = false
	}
}

// Retire hands a node removed by a completed operation to the thread's
// reclamation context and reports whether it was recycled immediately.
// p is the path the removing operation committed on; fastOK asserts
// that every field of x mutated on reuse is a transactional cell (so a
// stale transactional reader of a recycled x aborts rather than
// observing recycled state — structures pass false for nodes carrying
// reuse-mutable plain fields, which must always wait out a grace
// period). Nodes removed by fast-path commits recycle immediately when
// the algorithm's path exclusion allows it (see EnableReclaim);
// everything else waits two epochs.
func (th *Thread) Retire(p htm.PathKind, fastOK bool, x any) (immediate bool) {
	if fastOK && th.fastRecycle && p == htm.PathFast {
		th.rec.RetireFast(x)
		return true
	}
	th.rec.Retire(x)
	return false
}

// AbortCounts breaks failed transactional attempts down by execution
// path and abort cause (path index 0 is unused, as in htm.Stats).
type AbortCounts [htm.NumPaths][htm.NumCauses]uint64

// Merge adds another snapshot into a.
func (a *AbortCounts) Merge(o AbortCounts) {
	for p := 0; p < htm.NumPaths; p++ {
		for c := 0; c < htm.NumCauses; c++ {
			a[p][c] += o[p][c]
		}
	}
}

// On returns the abort count for one path and cause.
func (a *AbortCounts) On(p htm.PathKind, c htm.AbortCause) uint64 { return a[p][c] }

// PathTotal returns the aborts on path p across all causes.
func (a *AbortCounts) PathTotal(p htm.PathKind) uint64 {
	var n uint64
	for c := 0; c < htm.NumCauses; c++ {
		n += a[p][c]
	}
	return n
}

// Total returns the aborts across all paths and causes.
func (a *AbortCounts) Total() uint64 {
	var n uint64
	for p := 1; p < htm.NumPaths; p++ {
		n += a.PathTotal(htm.PathKind(p))
	}
	return n
}

// OpStats counts operation completions per execution path, failed
// transactional attempts per path and cause, and retry-policy actions.
type OpStats struct {
	Fast     uint64
	Middle   uint64
	Fallback uint64
	Aborts   AbortCounts
	Policy   PolicyStats
}

// Total returns the total number of completed operations.
func (s OpStats) Total() uint64 { return s.Fast + s.Middle + s.Fallback }

// Merge adds another snapshot into s (the shard layer's aggregation).
func (s *OpStats) Merge(o OpStats) {
	s.Fast += o.Fast
	s.Middle += o.Middle
	s.Fallback += o.Fallback
	s.Aborts.Merge(o.Aborts)
	s.Policy.Merge(o.Policy)
}

// Stats sums the per-path operation completions, per-cause abort counts
// and policy actions over all threads. Safe to call while threads run
// (the snapshot is then approximate).
func (e *Engine) Stats() OpStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var s OpStats
	for _, th := range e.threads {
		s.Fast += atomic.LoadUint64(&th.ops[htm.PathFast])
		s.Middle += atomic.LoadUint64(&th.ops[htm.PathMiddle])
		s.Fallback += atomic.LoadUint64(&th.ops[htm.PathFallback])
		for p := 0; p < htm.NumPaths; p++ {
			for c := 0; c < htm.NumCauses; c++ {
				s.Aborts[p][c] += atomic.LoadUint64(&th.aborts[p][c])
			}
		}
		s.Policy.addAtomic(&th.polstats)
	}
	return s
}

func (th *Thread) completed(p htm.PathKind) {
	atomic.AddUint64(&th.ops[p], 1)
}

func (th *Thread) noteAbort(p htm.PathKind, c htm.AbortCause) {
	atomic.AddUint64(&th.aborts[p][c], 1)
}

// Op supplies the bodies of one data-structure operation. Bodies are
// invoked repeatedly (one invocation per attempt) and must re-read all
// state from the top each time; results are delivered through variables
// the closures capture.
type Op struct {
	// Fast is the uninstrumented sequential body run inside a
	// transaction (used by TLE, 2-path-ncon and 3-path). It signals a
	// logical retry by calling tx.Abort(CodeRetry); completing normally
	// commits the operation.
	Fast func(tx *htm.Tx)
	// Middle is the instrumented template body (transactional LLX +
	// SCXInTx) run inside a transaction (used as 3-path's middle path
	// and as 2-path-con's fast path).
	Middle func(tx *htm.Tx)
	// Fallback is the original lock-free template body (LLXO/SCXO). It
	// returns false to request a retry.
	Fallback func() bool
	// Locked is the sequential body run under the TLE global lock; it
	// must always complete. Only used by AlgTLE.
	Locked func()
	// SCXHTM is the Section 4 body: template structure with
	// non-transactional LLX and the standalone HTM SCX when useHTM is
	// true, or SCXO when false. It returns false to request a retry.
	// Only used by AlgSCXHTM.
	SCXHTM func(useHTM bool) bool
	// Update marks operations that may change the dictionary's logical
	// content (inserts and deletes, but not searches, range queries, or
	// content-preserving rebalancing steps). When the engine has a
	// Monitor, update operations publish their commit through it and
	// wait at the quiesce gate.
	Update bool
	// Site carries the retry policy's per-call-site state (capacity
	// memory, backoff PRNG stream). Handles that build an Op once per
	// operation type should give it its own NewSite; nil shares the
	// engine thread's site across all of the thread's unsited ops.
	Site *Site
	// Helpable, when non-nil, lets the operation's fallback critical
	// section run through the helpable lock-free lock protocol under
	// AlgTLE with Config.HelpableFallback (see help.go). Operations
	// without it (reads, rebalancing steps) fall back to the classic
	// locked path.
	Helpable *HelpableOp
	// prepared records that Fast and Middle already include the
	// monitor's commit bump (Thread.PrepareOp), so Run need not wrap
	// them per call.
	prepared bool
}

// PrepareOp returns op with its transactional bodies pre-extended to
// bump the engine's update monitor at commit, so Run adds no
// per-operation closure allocations on monitored paths. Handles should
// call it once when they construct their update ops; Run falls back to
// wrapping unprepared ops on the fly. Without a monitor (or for
// non-update ops) op is returned unchanged.
func (th *Thread) PrepareOp(op Op) Op {
	mon := th.eng.cfg.Monitor
	if mon == nil || !op.Update || op.prepared {
		return op
	}
	if f := op.Fast; f != nil {
		op.Fast = func(tx *htm.Tx) {
			f(tx)
			mon.bumpTx(tx)
		}
	}
	if m := op.Middle; m != nil {
		op.Middle = func(tx *htm.Tx) {
			m(tx)
			mon.bumpTx(tx)
		}
	}
	op.prepared = true
	return op
}

// Run executes op under the engine's algorithm and returns the path the
// operation completed on.
//
// When the engine has an UpdateMonitor and op is an update, Run
// publishes the operation's commit point through the monitor:
// transactional paths bump the monitor's version counter inside the
// operation's own transaction (pre-wrapped by PrepareOp, or wrapped
// here for unprepared ops), non-transactional paths (the lock-free
// fallback, TLE's locked body, scx-htm) are bracketed by its
// ingress/egress counters, and the operation registers as in flight and
// waits at the monitor's quiesce gate before starting (threads with
// SetGateBypass skip the gate and the in-flight accounting, not the
// commit publication).
//
// On an observed engine (Config.Obs) Run additionally brackets the
// operation with a runtime/trace user region, captures every
// LatencySample-th operation's latency into the thread's histogram, and
// records a sampled completion event — all without allocating and
// without defers (a defer closing over locals allocates, which would
// break the steady-state 0 allocs/op gate).
func (th *Thread) Run(op Op) htm.PathKind {
	so := th.obs
	if so == nil {
		return th.run(op)
	}
	reg := obs.StartOpRegion()
	if so.MaybeTime() {
		t0 := time.Now()
		p := th.run(op)
		so.RecordLatency(uint64(time.Since(t0)))
		so.Event(obs.EvOp, p, htm.CauseNone, 0, 0)
		obs.EndRegion(reg)
		return p
	}
	p := th.run(op)
	so.Event(obs.EvOp, p, htm.CauseNone, 0, 0)
	obs.EndRegion(reg)
	return p
}

func (th *Thread) run(op Op) htm.PathKind {
	e := th.eng
	if th.rec != nil {
		// Bracket the whole operation as an ebr critical section: every
		// node reference any path of the operation obtains is covered by
		// the announced epoch until End, which is what makes grace-period
		// retirement (and hence pooled-node reuse) sound.
		th.rec.Begin()
		defer th.rec.End()
	}
	mon := e.cfg.Monitor
	if !op.Update {
		mon = nil
	}
	if mon != nil {
		if !th.gateBypass {
			mon.enter()
			defer mon.exit()
		}
		op = th.PrepareOp(op) // no-op for ops prepared at construction
	}
	switch e.cfg.Algorithm {
	case AlgNonHTM:
		th.runFallbackLoop(op, nil, mon)
		return htm.PathFallback

	case AlgTLE:
		return th.runTLE(op, mon)

	case AlgTwoPathConc:
		// Fast path: the whole operation in one transaction using the
		// HTM-based LLX and SCX; it may run concurrently with the
		// fallback path, so no presence indicator is needed.
		site := op.policySite(th)
		if !th.skipFast(site) &&
			th.runPath(site, htm.PathFast, e.cfg.AttemptLimit, false, nil, op.Middle) {
			th.completed(htm.PathFast)
			return htm.PathFast
		}
		th.runFallbackLoop(op, nil, mon)
		return htm.PathFallback

	case AlgTwoPathNCon:
		ind := e.cfg.Indicator
		site := op.policySite(th)
		// Wait for the fallback path to empty before each attempt (this
		// waiting is the 2-path-ncon bottleneck the paper highlights).
		if !th.skipFast(site) && th.runPath(site, htm.PathFast, e.cfg.AttemptLimit, false,
			func() { waitWhile(func() bool { return ind.Nonzero(nil) }) },
			func(tx *htm.Tx) {
				if ind.Nonzero(tx) {
					tx.Abort(CodeFallbackBusy)
				}
				op.Fast(tx)
			}) {
			th.completed(htm.PathFast)
			return htm.PathFast
		}
		th.runFallbackLoop(op, ind, mon)
		return htm.PathFallback

	case AlgThreePath:
		ind := e.cfg.Indicator
		site := op.policySite(th)
		// Fast path: move to the middle path when the policy gives up on
		// the path (a capacity abort under the adaptive policy — the
		// transaction cannot fit; hardware reports this via the "retry"
		// hint bit being clear), immediately if the fallback path is
		// busy, or after FastLimit attempts.
		if !th.skipFast(site) && th.runPath(site, htm.PathFast, e.cfg.FastLimit, true,
			nil,
			func(tx *htm.Tx) {
				if ind.Nonzero(tx) {
					tx.Abort(CodeFallbackBusy)
				}
				op.Fast(tx)
			}) {
			th.completed(htm.PathFast)
			return htm.PathFast
		}
		if th.runPath(site, htm.PathMiddle, e.cfg.MiddleLimit, false, nil, op.Middle) {
			th.completed(htm.PathMiddle)
			return htm.PathMiddle
		}
		th.runFallbackLoop(op, ind, mon)
		return htm.PathFallback

	case AlgSCXHTM:
		// The standalone HTM SCX commits inside op.SCXHTM where the
		// engine cannot reach, so both its modes count as
		// non-transactional for the monitor.
		if mon != nil {
			mon.beginNonTx()
			defer mon.endNonTx()
		}
		for i := 0; i < e.cfg.AttemptLimit; i++ {
			if op.SCXHTM(true) {
				th.completed(htm.PathFast)
				return htm.PathFast
			}
		}
		for !op.SCXHTM(false) {
		}
		th.completed(htm.PathFallback)
		return htm.PathFallback

	default:
		panic(fmt.Sprintf("engine: unknown algorithm %d", e.cfg.Algorithm))
	}
}

// runTLE implements transactional lock elision: the fast path subscribes
// to the global lock and aborts while it is held; when the retry policy
// exhausts the AttemptLimit budget the operation acquires the lock and
// runs the sequential body. Classic TLE is deadlock-free but not
// lock-free; with Config.HelpableFallback, update operations instead
// announce a descriptor and run the helpable lock-free lock protocol
// (help.go), and every wait on the lock word helps the announced
// operation along.
func (th *Thread) runTLE(op Op, mon *UpdateMonitor) htm.PathKind {
	e := th.eng
	site := op.policySite(th)
	helpable := e.cfg.HelpableFallback
	preWait := func() { waitWhile(func() bool { return e.tle.Get(nil) != 0 }) }
	if helpable && e.helpingPolicy {
		preWait = th.helpWait
	}
	if !th.skipFast(site) && th.runPath(site, htm.PathFast, e.cfg.AttemptLimit, false,
		preWait,
		func(tx *htm.Tx) {
			if e.tle.Get(tx) != 0 {
				tx.Abort(CodeLockHeld)
			}
			op.Fast(tx)
		}) {
		th.completed(htm.PathFast)
		return htm.PathFast
	}
	if helpable && op.Helpable != nil && th.helpExec != nil {
		th.runHelpableFallback(op, mon)
		th.completed(htm.PathFallback)
		return htm.PathFallback
	}
	so := th.obs
	var freg *trace.Region
	if so != nil {
		freg = obs.StartFallbackRegion()
	}
	for !e.tle.CAS(nil, 0, 1) {
		// In helpable mode a blocked classic acquirer still helps the
		// announced operation — required for the protocol's progress
		// argument, since the word stays held until the operation is
		// done.
		if helpable && th.H.Help() {
			atomic.AddUint64(&th.polstats.Helps, 1)
			if so != nil {
				so.RareEvent(obs.EvHelp, htm.PathFallback, htm.CauseNone, 0, 0)
			}
			continue
		}
		runtime.Gosched()
	}
	atomic.AddUint64(&th.fallbackAcq, 1)
	if so != nil {
		// Generation 1 marks the classic (non-helpable) acquisition.
		so.RareEvent(obs.EvAcquire, htm.PathFallback, htm.CauseNone, 1, 0)
		obs.EndRegion(freg)
	}
	if e.cfg.PreemptPoint != nil {
		e.cfg.PreemptPoint()
	}
	// Owner-fault seam: a Stall here models the classic convoy (every
	// thread blocked behind a descheduled lock holder). Kill is not
	// meaningful on this path — a dead classic owner wedges the engine
	// by design, which is exactly the weakness the helpable fallback
	// removes.
	e.cfg.Faults.Hit(fault.PointFallbackOwner)
	func() {
		// Release with defer, like the monitor bracket below: a panic
		// out of the locked body must not strand the global lock, which
		// would wedge every thread of the engine forever (elided
		// attempts subscribe to it and the locked path spins on it).
		defer e.tle.Set(nil, 0)
		// Bracket with defer, like runFallbackLoop: a panic out of the
		// locked body must not strand the ingress counter (which would
		// wedge every future Sample and Quiesce on this monitor).
		if mon != nil {
			mon.beginNonTx()
			defer mon.endNonTx()
		}
		op.Locked()
	}()
	th.completed(htm.PathFallback)
	return htm.PathFallback
}

// policySite resolves the Site the retry policy adapts on for this
// operation: the op's own, or the thread's shared site.
func (op *Op) policySite(th *Thread) *Site {
	if op.Site != nil {
		return op.Site
	}
	return &th.site
}

// skipFast asks the policy whether this operation should start past the
// fast path, counting the demotion when it says yes.
func (th *Thread) skipFast(site *Site) bool {
	if !th.eng.cfg.Policy.SkipFast(site) {
		return false
	}
	atomic.AddUint64(&th.polstats.Demotions, 1)
	return true
}

// runPath drives one execution path's attempt loop under the engine's
// retry policy, reporting whether an attempt committed. budget bounds
// the budgeted attempts (the policy may grant bounded free retries on
// top); preWait, when non-nil, runs before every attempt (TLE's lock
// wait, 2-path-ncon's indicator wait); busyBreak abandons the path
// immediately on an explicit CodeFallbackBusy abort (the 3-path fast
// loop's reaction to a busy fallback path, which is the algorithm's
// structure rather than retry policy).
func (th *Thread) runPath(site *Site, path htm.PathKind, budget int, busyBreak bool,
	preWait func(), body func(tx *htm.Tx)) bool {
	pol := th.eng.cfg.Policy
	free := 0
	for used := 0; used < budget; {
		if preWait != nil {
			preWait()
		}
		ok, ab := th.H.Atomic(path, body)
		if ok {
			if path == htm.PathFast {
				site.noteFastCommit()
			}
			return true
		}
		th.noteAbort(path, ab.Cause)
		if so := th.obs; so != nil {
			so.Event(obs.EvAbort, path, ab.Cause, site.id, uint64(ab.Code))
		}
		if ab.Cause == htm.CauseCapacity && path == htm.PathFast {
			site.noteCapacity()
		}
		if busyBreak && ab.Cause == htm.CauseExplicit && ab.Code == CodeFallbackBusy {
			return false
		}
		switch d := pol.AfterAbort(site, path, ab, used, free); d.Action {
		case ActionNextPath:
			atomic.AddUint64(&th.polstats.CapacitySkips, 1)
			return false
		case ActionFreeRetry:
			free++
			atomic.AddUint64(&th.polstats.FreeRetries, 1)
			if d.Backoff > 0 {
				atomic.AddUint64(&th.polstats.Backoffs, 1)
				backoffSpin(d.Backoff)
			}
		default:
			used++
			if d.Backoff > 0 {
				atomic.AddUint64(&th.polstats.Backoffs, 1)
				backoffSpin(d.Backoff)
			}
		}
	}
	return false
}

// runFallbackLoop runs the lock-free fallback body to completion,
// bracketing it with the presence indicator when one is in use and with
// the update monitor's ingress/egress counters when the operation is a
// monitored update (the fallback's SCX commits non-transactionally, so
// the bracket is how its commit point is published).
func (th *Thread) runFallbackLoop(op Op, ind Indicator, mon *UpdateMonitor) {
	if ind != nil {
		depart := ind.Arrive()
		defer depart()
	}
	if mon != nil {
		mon.beginNonTx()
		defer mon.endNonTx()
	}
	for !op.Fallback() {
	}
	th.completed(htm.PathFallback)
}

// waitWhile spins (yielding) while cond holds.
func waitWhile(cond func() bool) {
	for i := 0; cond(); i++ {
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
}
