package engine

import (
	"testing"

	"htmtree/internal/htm"
)

// txAlgorithms are the algorithms with a transactional fast path, i.e.
// the ones the retry policy actually steers.
var txAlgorithms = []Algorithm{AlgTLE, AlgTwoPathConc, AlgTwoPathNCon, AlgThreePath}

// TestTLELockedBodyPanicReleasesLock is the regression test for the TLE
// lock leak: a panic out of the locked body must release the global
// lock and rebalance the monitor's ingress/egress counters, or every
// later operation of the engine wedges (elided attempts subscribe to
// the lock; Sample never succeeds again).
func TestTLELockedBodyPanicReleasesLock(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	mon := NewUpdateMonitor(&counterIndicator{})
	e := New(Config{Algorithm: AlgTLE, AttemptLimit: 2, Monitor: mon}, tm.Clock())
	th := e.NewThread(tm.NewThread())
	var c htm.Word
	c.Bind(tm.Clock())

	// Drive the operation to the locked path (every elided attempt aborts
	// explicitly), then panic out of the locked body.
	func() {
		defer func() {
			if r := recover(); r != "locked-body-boom" {
				t.Fatalf("recovered %v, want locked-body-boom", r)
			}
		}()
		th.Run(Op{
			Update: true,
			Fast:   func(tx *htm.Tx) { tx.Abort(CodeRetry) },
			Locked: func() { panic("locked-body-boom") },
		})
	}()

	// The lock must be free: an ordinary TLE operation completes. If the
	// panic stranded the lock this spins forever and the test times out.
	done := make(chan struct{})
	go func() {
		defer close(done)
		th2 := e.NewThread(tm.NewThread())
		for i := 0; i < 10; i++ {
			th2.Run(Op{
				Update: true,
				Fast:   func(tx *htm.Tx) { c.Set(tx, c.Get(tx)+1) },
				Locked: func() { c.Set(nil, c.Get(nil)+1) },
			})
		}
	}()
	<-done
	if got := c.Get(nil); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	// The monitor's non-transactional bracket must be balanced: Sample
	// fails forever if the panic stranded the ingress counter.
	if _, ok := mon.Sample(); !ok {
		t.Fatal("monitor reports an update still in flight after the panic unwound")
	}
}

// TestAbortCauseBuckets induces each abort cause on each transactional
// algorithm and asserts it lands in the matching
// Stats().Aborts[path][cause] bucket.
func TestAbortCauseBuckets(t *testing.T) {
	t.Parallel()
	overflow := func(cells []htm.Word) func(tx *htm.Tx) {
		return func(tx *htm.Tx) {
			for i := range cells {
				_ = cells[i].Get(tx)
			}
		}
	}
	cases := []struct {
		name   string
		htmCfg htm.Config
		mkOp   func(clk *htm.Clock) Op
		cause  htm.AbortCause
	}{
		{
			name:   "spurious",
			htmCfg: htm.Config{SpuriousEvery: 1},
			mkOp: func(clk *htm.Clock) Op {
				var c htm.Word
				c.Bind(clk)
				op := counterOp(&c)
				return op
			},
			cause: htm.CauseSpurious,
		},
		{
			name:   "capacity",
			htmCfg: htm.Config{ReadCapacity: 2},
			mkOp: func(clk *htm.Clock) Op {
				cells := make([]htm.Word, 8)
				body := overflow(cells)
				return Op{Fast: body, Middle: body,
					Fallback: func() bool { return true },
					Locked:   func() {}}
			},
			cause: htm.CauseCapacity,
		},
		{
			name:   "explicit",
			htmCfg: htm.Config{},
			mkOp: func(clk *htm.Clock) Op {
				body := func(tx *htm.Tx) { tx.Abort(CodeRetry) }
				return Op{Fast: body, Middle: body,
					Fallback: func() bool { return true },
					Locked:   func() {}}
			},
			cause: htm.CauseExplicit,
		},
		{
			name:   "conflict",
			htmCfg: htm.Config{},
			mkOp: func(clk *htm.Clock) Op {
				var c, w htm.Word
				c.Bind(clk)
				// Read c, then invalidate the read from outside the
				// transaction: commit-time validation reports a conflict.
				body := func(tx *htm.Tx) {
					_ = c.Get(tx)
					c.Set(nil, c.Get(nil)+1)
					w.Set(tx, 1)
				}
				return Op{Fast: body, Middle: body,
					Fallback: func() bool { return true },
					Locked:   func() {}}
			},
			cause: htm.CauseConflict,
		},
	}
	for _, pol := range PolicyNames {
		for _, tc := range cases {
			for _, alg := range txAlgorithms {
				pol, tc, alg := pol, tc, alg
				t.Run(pol+"/"+tc.name+"/"+alg.String(), func(t *testing.T) {
					t.Parallel()
					p, _ := ParsePolicy(pol)
					tm := htm.New(tc.htmCfg)
					e := New(Config{Algorithm: alg, Policy: p,
						AttemptLimit: 4, FastLimit: 4, MiddleLimit: 4}, tm.Clock())
					th := e.NewThread(tm.NewThread())
					th.Run(tc.mkOp(tm.Clock()))
					s := e.Stats()
					if got := s.Aborts.On(htm.PathFast, tc.cause); got == 0 {
						t.Fatalf("Aborts[fast][%v] = 0, want > 0 (all: %v)", tc.cause, s.Aborts)
					}
					// Nothing may land in the other causes' buckets.
					for c := htm.AbortCause(1); c < htm.NumCauses; c++ {
						if c != tc.cause && s.Aborts.On(htm.PathFast, c) != 0 {
							t.Fatalf("Aborts[fast][%v] = %d, want 0", c, s.Aborts.On(htm.PathFast, c))
						}
					}
				})
			}
		}
	}
}

// TestAdaptiveCapacityConsumesPathBudget asserts the tentpole behavior:
// under the adaptive policy a capacity abort abandons the path after a
// single attempt on every algorithm (retrying cannot shrink the
// footprint), where the static policy burns the full budget.
func TestAdaptiveCapacityConsumesPathBudget(t *testing.T) {
	t.Parallel()
	for _, alg := range txAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tm := htm.New(htm.Config{ReadCapacity: 2})
			e := New(Config{Algorithm: alg, Policy: NewAdaptivePolicy()}, tm.Clock())
			th := e.NewThread(tm.NewThread())
			cells := make([]htm.Word, 8)
			body := func(tx *htm.Tx) {
				for i := range cells {
					_ = cells[i].Get(tx)
				}
			}
			p := th.Run(Op{Fast: body, Middle: body,
				Fallback: func() bool { return true },
				Locked:   func() {}})
			if p != htm.PathFallback {
				t.Fatalf("completed on %v, want fallback", p)
			}
			s := e.Stats()
			if got := s.Aborts.On(htm.PathFast, htm.CauseCapacity); got != 1 {
				t.Fatalf("fast capacity aborts = %d, want 1 (path abandoned immediately)", got)
			}
			wantSkips := uint64(1)
			if alg == AlgThreePath {
				if got := s.Aborts.On(htm.PathMiddle, htm.CauseCapacity); got != 1 {
					t.Fatalf("middle capacity aborts = %d, want 1", got)
				}
				wantSkips = 2
			}
			if s.Policy.CapacitySkips != wantSkips {
				t.Fatalf("CapacitySkips = %d, want %d", s.Policy.CapacitySkips, wantSkips)
			}
		})
	}
}

// TestStaticPolicyBurnsFullBudget pins the baseline: the cause-blind
// policy retries capacity aborts until the budget is gone.
func TestStaticPolicyBurnsFullBudget(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{ReadCapacity: 2})
	e := New(Config{Algorithm: AlgThreePath, Policy: StaticPolicy{},
		FastLimit: 4, MiddleLimit: 3}, tm.Clock())
	th := e.NewThread(tm.NewThread())
	cells := make([]htm.Word, 8)
	body := func(tx *htm.Tx) {
		for i := range cells {
			_ = cells[i].Get(tx)
		}
	}
	if p := th.Run(Op{Fast: body, Middle: body,
		Fallback: func() bool { return true }}); p != htm.PathFallback {
		t.Fatalf("completed on %v, want fallback", p)
	}
	s := e.Stats()
	if got := s.Aborts.On(htm.PathFast, htm.CauseCapacity); got != 4 {
		t.Fatalf("fast capacity aborts = %d, want FastLimit=4", got)
	}
	if got := s.Aborts.On(htm.PathMiddle, htm.CauseCapacity); got != 3 {
		t.Fatalf("middle capacity aborts = %d, want MiddleLimit=3", got)
	}
	if s.Policy != (PolicyStats{}) {
		t.Fatalf("static policy recorded actions: %+v", s.Policy)
	}
}

// TestAdaptiveSpuriousFreeRetries pins the free-retry accounting: with
// every access aborting spuriously, each transactional path grants
// exactly FreeRetries budget-exempt attempts on top of its budget.
func TestAdaptiveSpuriousFreeRetries(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{SpuriousEvery: 1})
	e := New(Config{Algorithm: AlgThreePath, Policy: NewAdaptivePolicy(),
		FastLimit: 4, MiddleLimit: 2}, tm.Clock())
	th := e.NewThread(tm.NewThread())
	var c htm.Word
	c.Bind(tm.Clock())
	if p := th.Run(counterOp(&c)); p != htm.PathFallback {
		t.Fatalf("completed on %v, want fallback", p)
	}
	s := e.Stats()
	free := NewAdaptivePolicy().FreeRetries
	if want := uint64(4 + free); s.Aborts.On(htm.PathFast, htm.CauseSpurious) != want {
		t.Fatalf("fast spurious aborts = %d, want budget+free = %d",
			s.Aborts.On(htm.PathFast, htm.CauseSpurious), want)
	}
	if want := uint64(2 + free); s.Aborts.On(htm.PathMiddle, htm.CauseSpurious) != want {
		t.Fatalf("middle spurious aborts = %d, want budget+free = %d",
			s.Aborts.On(htm.PathMiddle, htm.CauseSpurious), want)
	}
	if want := uint64(2 * free); s.Policy.FreeRetries != want {
		t.Fatalf("FreeRetries = %d, want %d", s.Policy.FreeRetries, want)
	}
}

// TestAdaptiveConflictBackoff checks conflict aborts take randomized
// backoffs (and only conflicts do).
func TestAdaptiveConflictBackoff(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	e := New(Config{Algorithm: AlgTwoPathConc, Policy: NewAdaptivePolicy(),
		AttemptLimit: 4}, tm.Clock())
	th := e.NewThread(tm.NewThread())
	var c, w htm.Word
	c.Bind(tm.Clock())
	body := func(tx *htm.Tx) {
		_ = c.Get(tx)
		c.Set(nil, c.Get(nil)+1) // invalidate our own read set
		w.Set(tx, 1)
	}
	if p := th.Run(Op{Middle: body, Fallback: func() bool { return true }}); p != htm.PathFallback {
		t.Fatalf("completed on %v, want fallback", p)
	}
	s := e.Stats()
	if s.Policy.Backoffs != 4 {
		t.Fatalf("Backoffs = %d, want one per conflict abort (4)", s.Policy.Backoffs)
	}
}

// TestCapacityDemotesSite checks the saturating capacity score: a site
// that keeps overflowing the fast path gets demoted (operations start
// on the middle path), with occasional probes keeping recovery
// possible.
func TestCapacityDemotesSite(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{ReadCapacity: 2})
	e := New(Config{Algorithm: AlgThreePath, Policy: NewAdaptivePolicy()}, tm.Clock())
	th := e.NewThread(tm.NewThread())
	cells := make([]htm.Word, 8)
	body := func(tx *htm.Tx) {
		for i := range cells {
			_ = cells[i].Get(tx)
		}
	}
	op := Op{Site: NewSite(), Fast: body, Middle: body,
		Fallback: func() bool { return true }}
	const runs = 64
	for i := 0; i < runs; i++ {
		th.Run(op)
	}
	s := e.Stats()
	if s.Policy.Demotions == 0 {
		t.Fatal("no demotions after repeated capacity overflow")
	}
	// Demoted operations skip the fast path entirely, so it sees far
	// fewer capacity aborts than one per run (only the pre-demotion runs
	// and the ~1/16 probes).
	fast := s.Aborts.On(htm.PathFast, htm.CauseCapacity)
	if fast+s.Policy.Demotions != runs {
		t.Fatalf("fast attempts (%d) + demotions (%d) != runs (%d)",
			fast, s.Policy.Demotions, runs)
	}
	if fast >= runs/2 {
		t.Fatalf("fast capacity aborts = %d of %d runs; site never demoted", fast, runs)
	}
}
