// Package dict defines the ordered-dictionary abstraction shared by the
// paper's data structures (Section 6): a set of uint64 keys with
// associated uint64 values, supporting Insert, Delete, Search and
// RangeQuery, plus the quiescent checksum the evaluation methodology
// (Section 7.1) uses for validation.
package dict

// KV is a key-value pair returned by range queries.
type KV struct {
	Key, Val uint64
}

// MaxKey is the largest key a client may use. Larger values are reserved
// for the data structures' internal sentinels.
const MaxKey = ^uint64(0) - 8

// Handle is a per-thread handle to a dictionary. A Handle must be used
// by one goroutine at a time; create one per worker.
type Handle interface {
	// Insert associates key with val, returning the previous value and
	// whether the key was already present.
	Insert(key, val uint64) (old uint64, existed bool)
	// Delete removes key, returning its value and whether it was present.
	Delete(key uint64) (old uint64, existed bool)
	// Search returns the value associated with key, if present.
	Search(key uint64) (val uint64, found bool)
	// RangeQuery appends all pairs with lo <= key < hi to out (in
	// ascending key order) and returns the extended slice.
	RangeQuery(lo, hi uint64, out []KV) []KV
}

// Dict is a concurrent ordered dictionary.
type Dict interface {
	// NewHandle registers a new per-thread handle.
	NewHandle() Handle
	// KeySum returns the sum and count of the keys present. It must only
	// be called while no operations are in flight; it is the checksum
	// the paper's key-sum validation compares against.
	KeySum() (sum, count uint64)
}
