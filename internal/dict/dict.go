// Package dict defines the ordered-dictionary abstraction shared by the
// paper's data structures (Section 6): a set of uint64 keys with
// associated uint64 values, supporting Insert, Delete, Search and
// RangeQuery, plus the quiescent checksum the evaluation methodology
// (Section 7.1) uses for validation.
package dict

// KV is a key-value pair returned by range queries.
type KV struct {
	Key, Val uint64
}

// MaxKey is the largest key a client may use. Larger values are reserved
// for the data structures' internal sentinels.
const MaxKey = ^uint64(0) - 8

// Agg is the aggregate tuple of a key range: the sum and count of the
// keys, and the smallest and largest key. Min and Max are meaningful
// only when Count > 0; an empty range holds the sentinels
// Min = ^uint64(0), Max = 0 (no client key is ^uint64(0), and a true
// maximum of 0 coincides with the sentinel harmlessly).
type Agg struct {
	Sum, Count, Min, Max uint64
}

// Merge folds o into a (the cross-subtree / cross-shard combiner).
func (a *Agg) Merge(o Agg) {
	a.Sum += o.Sum
	a.Count += o.Count
	if o.Count > 0 {
		if o.Min < a.Min {
			a.Min = o.Min
		}
		if o.Max > a.Max {
			a.Max = o.Max
		}
	}
}

// AggHandle is optionally implemented by handles that answer aggregate
// range queries. Structures with maintained subtree aggregates (the
// (a,b)-tree) answer in O(log n); the BST walks the range — the
// documented control for the walk-vs-aggregate ablation. The error is
// always nil for unsharded trees; the sharded dictionary rejects
// aggregate queries when its configuration cannot make them atomic.
type AggHandle interface {
	// RangeAgg returns the aggregate tuple of the keys in [lo, hi).
	RangeAgg(lo, hi uint64) (Agg, error)
}

// Handle is a per-thread handle to a dictionary. A Handle must be used
// by one goroutine at a time; create one per worker.
type Handle interface {
	// Insert associates key with val, returning the previous value and
	// whether the key was already present.
	Insert(key, val uint64) (old uint64, existed bool)
	// Delete removes key, returning its value and whether it was present.
	Delete(key uint64) (old uint64, existed bool)
	// Search returns the value associated with key, if present.
	Search(key uint64) (val uint64, found bool)
	// RangeQuery appends all pairs with lo <= key < hi to out (in
	// ascending key order) and returns the extended slice.
	RangeQuery(lo, hi uint64, out []KV) []KV
}

// Helper is optionally implemented by handles that can drive another
// thread's announced fallback operation to completion (the helpable
// lock-free fallback). Help performs at most one announced operation
// and reports whether it helped; chaos harnesses loop it to drain the
// descriptors of workers that died mid-operation.
type Helper interface {
	Help() bool
}

// Dict is a concurrent ordered dictionary.
type Dict interface {
	// NewHandle registers a new per-thread handle.
	NewHandle() Handle
	// KeySum returns the sum and count of the keys present. It must only
	// be called while no operations are in flight; it is the checksum
	// the paper's key-sum validation compares against.
	KeySum() (sum, count uint64)
}

// OpKind names a batched point operation.
type OpKind uint8

// Batched point-operation kinds.
const (
	OpInsert OpKind = iota + 1
	OpDelete
	OpSearch
)

// BatchOp is one point operation inside a batched group: the request
// fields (Kind, Key, Val) are filled by the batching layer, and the
// executor writes the operation's result into Out/OutOK — the (old,
// existed) pair for Insert and Delete, the (val, found) pair for
// Search — exactly as the corresponding Handle method would have
// returned it.
type BatchOp struct {
	Kind     OpKind
	Key, Val uint64
	Out      uint64
	OutOK    bool
}

// Exec runs op against h and records the result, preserving each
// method's return contract. It is the per-op building block group
// executors and the batching layer's fallback path share.
func (op *BatchOp) Exec(h Handle) {
	switch op.Kind {
	case OpInsert:
		op.Out, op.OutOK = h.Insert(op.Key, op.Val)
	case OpDelete:
		op.Out, op.OutOK = h.Delete(op.Key)
	case OpSearch:
		op.Out, op.OutOK = h.Search(op.Key)
	}
}

// GroupExecutor is optionally implemented by handles that can execute a
// key-sorted group of point operations with amortized per-operation
// overhead (the shard layer's handles: one routing-table acquisition
// and one monitor bracket per shard-group instead of per op). Ops
// sharing a key must keep their relative order — callers sort the
// group stably by key — and results are written into the slice
// elements. The batching layer falls back to executing ops one by one
// through the plain Handle methods when a handle does not implement it.
type GroupExecutor interface {
	ExecGroup(ops []BatchOp)
}
