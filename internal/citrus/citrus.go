// Package citrus implements the CITRUS node-oriented (internal) binary
// search tree of Arbel and Attiya (PODC 2014) — RCU-protected searches
// plus fine-grained per-node locking for updates — together with the
// 3-path HTM acceleration sketched in Section 10.1 of Brown's paper:
//
//   - The fallback path is CITRUS itself. Deleting a node with two
//     children replaces it with a copy holding the successor's key and
//     must call rcu.Synchronize before unlinking the successor — the
//     dominating cost of the algorithm.
//   - The middle path wraps the operation in a transaction: the
//     Synchronize disappears (the transaction is atomic), and instead of
//     acquiring locks the transaction merely reads each relevant lock
//     word (a free lock it subscribed to that is later acquired aborts
//     it). It still runs read-side critical sections because the
//     fallback path's Synchronize must observe it.
//   - The fast path drops the RCU calls and the lock-word reads as well;
//     it runs only while the fallback-presence indicator is zero.
package citrus

import (
	"fmt"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/rcu"
)

// sentinel key for the root (never a client key).
const keyInf = ^uint64(0)

// Node is an internal-BST node. Every shared field is a cell; lock is a
// spin-lock word acquired through cell CAS, so acquisitions bump the
// cell version and abort transactions that subscribed to it.
type Node struct {
	key    uint64
	val    htm.Word
	l, r   htm.Ref[Node]
	lock   htm.Word
	marked htm.Word
}

func newNode(clk *htm.Clock, key, val uint64, l, r *Node) *Node {
	n := &Node{key: key}
	n.val.Bind(clk)
	n.l.Bind(clk)
	n.r.Bind(clk)
	n.lock.Bind(clk)
	n.marked.Bind(clk)
	n.val.Init(val)
	n.l.Init(l)
	n.r.Init(r)
	return n
}

// tryLock attempts to acquire n's spin lock without blocking.
func (n *Node) tryLock() bool { return n.lock.CAS(nil, 0, 1) }

// unlock releases n's spin lock.
func (n *Node) unlock() { n.lock.Set(nil, 0) }

// lockFreeInTx checks inside a transaction that n's lock is free,
// aborting otherwise — the middle path's lock subscription.
func (n *Node) lockFreeInTx(tx *htm.Tx) {
	if n.lock.Get(tx) != 0 {
		tx.Abort(engine.CodeRetry)
	}
}

// Config configures a Tree.
type Config struct {
	// Algorithm selects the template implementation (default 3-path).
	Algorithm engine.Algorithm
	// HTM configures the simulated HTM.
	HTM htm.Config
	// Engine overrides attempt budgets and the fallback indicator.
	Engine engine.Config
}

// Tree is a CITRUS tree runnable under the template algorithms.
type Tree struct {
	tm   *htm.TM
	eng  *engine.Engine
	rcu  *rcu.RCU
	root *Node // sentinel with key ∞; the real tree hangs off root.l
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	if cfg.Algorithm == 0 {
		cfg.Algorithm = engine.AlgThreePath
	}
	ecfg := cfg.Engine
	ecfg.Algorithm = cfg.Algorithm
	tm := htm.New(cfg.HTM)
	return &Tree{
		tm:   tm,
		eng:  engine.New(ecfg, tm.Clock()),
		rcu:  rcu.New(),
		root: newNode(tm.Clock(), keyInf, 0, nil, nil),
	}
}

// OpStats returns per-path operation completions (workload.StatsProvider).
func (t *Tree) OpStats() engine.OpStats { return t.eng.Stats() }

// HTMStats returns transaction statistics (workload.StatsProvider).
func (t *Tree) HTMStats() htm.Stats { return t.tm.Stats() }

// Handle is a per-goroutine handle.
type Handle struct {
	t  *Tree
	e  *engine.Thread
	rd *rcu.Reader

	argKey, argVal uint64
	argLo, argHi   uint64
	resVal         uint64
	resFound       bool
	rqOut          []dict.KV

	insertOp, deleteOp, searchOp, rqOp engine.Op
}

var _ dict.Handle = (*Handle)(nil)

// NewHandle registers a per-goroutine handle.
func (t *Tree) NewHandle() dict.Handle {
	h := &Handle{t: t, e: t.eng.NewThread(t.tm.NewThread()), rd: t.rcu.NewReader()}
	h.insertOp = engine.Op{
		Site:   engine.NewSite(),
		Fast:   func(tx *htm.Tx) { t.insertTx(tx, h, false) },
		Middle: func(tx *htm.Tx) { t.insertMiddle(tx, h) },
		Fallback: func() bool {
			done := t.insertFallback(h)
			return done
		},
		Locked: func() { t.insertTx(nil, h, false) },
		SCXHTM: func(bool) bool { return t.insertFallback(h) },
	}
	h.deleteOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.deleteTx(tx, h, false) },
		Middle:   func(tx *htm.Tx) { t.deleteMiddle(tx, h) },
		Fallback: func() bool { return t.deleteFallback(h) },
		Locked:   func() { t.deleteTx(nil, h, false) },
		SCXHTM:   func(bool) bool { return t.deleteFallback(h) },
	}
	h.searchOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.searchBody(tx, h, false) },
		Middle:   func(tx *htm.Tx) { t.searchBody(tx, h, true) },
		Fallback: func() bool { t.searchFallback(h); return true },
		Locked:   func() { t.searchBody(nil, h, false) },
		SCXHTM:   func(bool) bool { t.searchFallback(h); return true },
	}
	h.rqOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.rqInTx(tx, h) },
		Middle:   func(tx *htm.Tx) { t.rqMiddle(tx, h) },
		Fallback: func() bool { t.rqFallback(h); return true },
		Locked:   func() { t.rqInTx(nil, h) },
		SCXHTM:   func(bool) bool { t.rqFallback(h); return true },
	}
	return h
}

// Insert associates key with val.
func (h *Handle) Insert(key, val uint64) (uint64, bool) {
	checkKey(key)
	h.argKey, h.argVal = key, val
	h.e.Run(h.insertOp)
	return h.resVal, h.resFound
}

// Delete removes key.
func (h *Handle) Delete(key uint64) (uint64, bool) {
	checkKey(key)
	h.argKey = key
	h.e.Run(h.deleteOp)
	return h.resVal, h.resFound
}

// Search looks up key.
func (h *Handle) Search(key uint64) (uint64, bool) {
	checkKey(key)
	h.argKey = key
	h.e.Run(h.searchOp)
	return h.resVal, h.resFound
}

// RangeQuery appends all pairs with lo <= key < hi in ascending order.
func (h *Handle) RangeQuery(lo, hi uint64, out []dict.KV) []dict.KV {
	h.argLo, h.argHi = lo, hi
	h.rqOut = h.rqOut[:0]
	h.e.Run(h.rqOp)
	return append(out, h.rqOut...)
}

func checkKey(key uint64) {
	if key > dict.MaxKey {
		panic(fmt.Sprintf("citrus: key %d exceeds dict.MaxKey", key))
	}
}

// childRef returns the child field of p a search for key follows.
func childRef(p *Node, key uint64) *htm.Ref[Node] {
	if key < p.key {
		return &p.l
	}
	return &p.r
}

// traverse descends from the root, returning the node holding key (nil
// if absent) and its last non-nil ancestor prev.
func (t *Tree) traverse(tx *htm.Tx, key uint64) (prev, cur *Node) {
	prev = t.root
	cur = t.root.l.Get(tx)
	for cur != nil && cur.key != key {
		prev = cur
		cur = childRef(cur, key).Get(tx)
	}
	return prev, cur
}

// ---- transactional paths ----

// insertTx is the sequential insert in a transaction (fast path / TLE
// locked body with tx == nil).
func (t *Tree) insertTx(tx *htm.Tx, h *Handle, lockCheck bool) {
	key, val := h.argKey, h.argVal
	prev, cur := t.traverse(tx, key)
	if cur != nil {
		if lockCheck {
			cur.lockFreeInTx(tx)
		}
		h.resVal, h.resFound = cur.val.Get(tx), true
		cur.val.Set(tx, val)
		return
	}
	if lockCheck {
		prev.lockFreeInTx(tx)
	}
	h.resVal, h.resFound = 0, false
	childRef(prev, key).Set(tx, newNode(t.tm.Clock(), key, val, nil, nil))
}

// insertMiddle wraps insertTx in a read-side critical section (the
// fallback path's Synchronize must observe middle-path operations) and
// checks lock words instead of acquiring them.
func (t *Tree) insertMiddle(tx *htm.Tx, h *Handle) {
	h.rd.Lock()
	defer h.rd.Unlock()
	t.insertTx(tx, h, true)
}

// deleteTx is the sequential delete in a transaction. Both unlink steps
// of the two-child case happen in one atomic transaction, which is
// exactly why the middle path needs no rcu.Synchronize (Section 10.1).
func (t *Tree) deleteTx(tx *htm.Tx, h *Handle, lockCheck bool) {
	key := h.argKey
	prev, cur := t.traverse(tx, key)
	if cur == nil {
		h.resVal, h.resFound = 0, false
		return
	}
	if lockCheck {
		prev.lockFreeInTx(tx)
		cur.lockFreeInTx(tx)
	}
	h.resVal, h.resFound = cur.val.Get(tx), true
	cl, cr := cur.l.Get(tx), cur.r.Get(tx)
	if cl == nil || cr == nil {
		child := cl
		if child == nil {
			child = cr
		}
		childRef(prev, key).Set(tx, child)
		cur.marked.Set(tx, 1)
		return
	}
	// Two children: find the successor (leftmost node of cur.r).
	sp, s := cur, cr
	for {
		sl := s.l.Get(tx)
		if sl == nil {
			break
		}
		sp, s = s, sl
	}
	if lockCheck {
		s.lockFreeInTx(tx)
		if sp != cur {
			sp.lockFreeInTx(tx)
		}
	}
	var repl *Node
	if sp == cur {
		// Successor is cur's right child: absorb it directly.
		repl = newNode(t.tm.Clock(), s.key, s.val.Get(tx), cl, s.r.Get(tx))
	} else {
		repl = newNode(t.tm.Clock(), s.key, s.val.Get(tx), cl, cr)
		sp.l.Set(tx, s.r.Get(tx))
	}
	childRef(prev, key).Set(tx, repl)
	cur.marked.Set(tx, 1)
	s.marked.Set(tx, 1)
}

// deleteMiddle is deleteTx inside a read-side critical section with
// lock-word checks.
func (t *Tree) deleteMiddle(tx *htm.Tx, h *Handle) {
	h.rd.Lock()
	defer h.rd.Unlock()
	t.deleteTx(tx, h, true)
}

func (t *Tree) searchBody(tx *htm.Tx, h *Handle, withRCU bool) {
	if withRCU {
		h.rd.Lock()
		defer h.rd.Unlock()
	}
	_, cur := t.traverse(tx, h.argKey)
	if cur != nil {
		h.resVal, h.resFound = cur.val.Get(tx), true
		return
	}
	h.resVal, h.resFound = 0, false
}

// ---- fallback path: CITRUS proper ----

// searchFallback is the RCU-protected lock-free search. Note that it
// deliberately does not check marked bits: a reader that reaches a node
// displaced by a concurrent two-child delete linearizes before the
// replacement (the key is still present, carried by the replacement
// copy), which is precisely the behaviour the CITRUS rcu_wait protocol
// is designed to keep correct.
func (t *Tree) searchFallback(h *Handle) {
	h.rd.Lock()
	defer h.rd.Unlock()
	_, cur := t.traverse(nil, h.argKey)
	if cur != nil {
		h.resVal, h.resFound = cur.val.Get(nil), true
		return
	}
	h.resVal, h.resFound = 0, false
}

// insertFallback returns false to retry.
func (t *Tree) insertFallback(h *Handle) bool {
	key, val := h.argKey, h.argVal
	h.rd.Lock()
	prev, cur := t.traverse(nil, key)
	h.rd.Unlock()

	if cur != nil {
		if !cur.tryLock() {
			return false
		}
		defer cur.unlock()
		if cur.marked.Get(nil) != 0 {
			return false
		}
		h.resVal, h.resFound = cur.val.Get(nil), true
		cur.val.Set(nil, val)
		return true
	}
	if !prev.tryLock() {
		return false
	}
	defer prev.unlock()
	if prev.marked.Get(nil) != 0 || childRef(prev, key).Get(nil) != nil {
		return false
	}
	h.resVal, h.resFound = 0, false
	childRef(prev, key).Set(nil, newNode(t.tm.Clock(), key, val, nil, nil))
	return true
}

// deleteFallback implements the CITRUS delete, including the
// rcu.Synchronize between replacing a two-child node and unlinking its
// successor — the step the HTM paths eliminate.
func (t *Tree) deleteFallback(h *Handle) bool {
	key := h.argKey
	h.rd.Lock()
	prev, cur := t.traverse(nil, key)
	h.rd.Unlock()

	if cur == nil {
		h.resVal, h.resFound = 0, false
		return true
	}
	if !prev.tryLock() {
		return false
	}
	defer prev.unlock()
	if !cur.tryLock() {
		return false
	}
	defer cur.unlock()
	if prev.marked.Get(nil) != 0 || cur.marked.Get(nil) != 0 ||
		childRef(prev, key).Get(nil) != cur {
		return false
	}

	h.resVal, h.resFound = cur.val.Get(nil), true
	cl, cr := cur.l.Get(nil), cur.r.Get(nil)
	if cl == nil || cr == nil {
		child := cl
		if child == nil {
			child = cr
		}
		childRef(prev, key).Set(nil, child)
		cur.marked.Set(nil, 1)
		return true
	}

	// Two children: lock the successor (and its parent when distinct).
	sp, s := cur, cr
	for {
		sl := s.l.Get(nil)
		if sl == nil {
			break
		}
		sp, s = s, sl
	}
	if sp != cur {
		if !sp.tryLock() {
			return false
		}
		defer sp.unlock()
	}
	if !s.tryLock() {
		return false
	}
	defer s.unlock()
	if sp.marked.Get(nil) != 0 || s.marked.Get(nil) != 0 || s.l.Get(nil) != nil {
		return false
	}
	if sp != cur && sp.l.Get(nil) != s {
		return false
	}

	if sp == cur {
		repl := newNode(t.tm.Clock(), s.key, s.val.Get(nil), cl, s.r.Get(nil))
		childRef(prev, key).Set(nil, repl)
		cur.marked.Set(nil, 1)
		s.marked.Set(nil, 1)
		return true
	}
	// Replace cur by a copy carrying the successor's key, wait for
	// readers that may already be descending toward the successor, then
	// unlink the successor.
	repl := newNode(t.tm.Clock(), s.key, s.val.Get(nil), cl, cr)
	childRef(prev, key).Set(nil, repl)
	cur.marked.Set(nil, 1)
	t.rcu.Synchronize()
	sp.l.Set(nil, s.r.Get(nil))
	s.marked.Set(nil, 1)
	return true
}

// ---- range queries ----

func (t *Tree) rqInTx(tx *htm.Tx, h *Handle) {
	h.rqOut = h.rqOut[:0]
	t.rqWalk(tx, t.root.l.Get(tx), h)
}

func (t *Tree) rqMiddle(tx *htm.Tx, h *Handle) {
	h.rd.Lock()
	defer h.rd.Unlock()
	t.rqInTx(tx, h)
}

func (t *Tree) rqFallback(h *Handle) {
	h.rd.Lock()
	defer h.rd.Unlock()
	h.rqOut = h.rqOut[:0]
	t.rqWalk(nil, t.root.l.Get(nil), h)
}

func (t *Tree) rqWalk(tx *htm.Tx, n *Node, h *Handle) {
	if n == nil {
		return
	}
	if h.argLo < n.key {
		t.rqWalk(tx, n.l.Get(tx), h)
	}
	if n.key >= h.argLo && n.key < h.argHi {
		h.rqOut = append(h.rqOut, dict.KV{Key: n.key, Val: n.val.Get(tx)})
	}
	if h.argHi > n.key {
		t.rqWalk(tx, n.r.Get(tx), h)
	}
}

// KeySum returns the sum and count of keys (quiescent use only).
func (t *Tree) KeySum() (sum, count uint64) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		walk(n.l.Get(nil))
		sum += n.key
		count++
		walk(n.r.Get(nil))
	}
	walk(t.root.l.Get(nil))
	return sum, count
}

// CheckInvariants validates the BST ordering (quiescent use only).
func (t *Tree) CheckInvariants() error {
	var walk func(n *Node, lo, hi uint64) error
	walk = func(n *Node, lo, hi uint64) error {
		if n == nil {
			return nil
		}
		if n.marked.Get(nil) != 0 {
			return fmt.Errorf("citrus: reachable marked node %d", n.key)
		}
		if n.key < lo || n.key >= hi {
			return fmt.Errorf("citrus: key %d outside (%d,%d)", n.key, lo, hi)
		}
		if err := walk(n.l.Get(nil), lo, n.key); err != nil {
			return err
		}
		return walk(n.r.Get(nil), n.key+1, hi)
	}
	return walk(t.root.l.Get(nil), 0, keyInf)
}
