package citrus

import (
	"math/rand"
	"sync"
	"testing"

	"htmtree/internal/engine"
	"htmtree/internal/htm"
)

var algorithms = engine.Algorithms

func TestSequentialOracle(t *testing.T) {
	t.Parallel()
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg})
			h := tr.NewHandle()
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(31))
			for i := 0; i < 6000; i++ {
				k := uint64(rng.Intn(200)) + 1
				switch rng.Intn(4) {
				case 0, 1:
					v := rng.Uint64()
					_, existed := h.Insert(k, v)
					if _, ok := oracle[k]; ok != existed {
						t.Fatalf("op %d Insert(%d) existed=%v", i, k, existed)
					}
					oracle[k] = v
				case 2:
					_, existed := h.Delete(k)
					if _, ok := oracle[k]; ok != existed {
						t.Fatalf("op %d Delete(%d) existed=%v", i, k, existed)
					}
					delete(oracle, k)
				case 3:
					v, found := h.Search(k)
					want, ok := oracle[k]
					if found != ok || (found && v != want) {
						t.Fatalf("op %d Search(%d)=(%d,%v) want (%d,%v)", i, k, v, found, want, ok)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			sum, count := tr.KeySum()
			var wantSum, wantCount uint64
			for k := range oracle {
				wantSum += k
				wantCount++
			}
			if sum != wantSum || count != wantCount {
				t.Fatalf("KeySum (%d,%d), oracle (%d,%d)", sum, count, wantSum, wantCount)
			}
		})
	}
}

// TestTwoChildDeletes drives the successor-replacement path (the one
// that needs rcu.Synchronize on the fallback path) deterministically.
func TestTwoChildDeletes(t *testing.T) {
	t.Parallel()
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath, engine.AlgTLE} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg})
			h := tr.NewHandle()
			// Build a bushy tree, then delete internal nodes (which have
			// two children) in an order that exercises replacements.
			order := []uint64{50, 25, 75, 12, 37, 62, 87, 6, 18, 31, 43, 56, 68, 81, 93}
			for _, k := range order {
				h.Insert(k, k*10)
			}
			for _, k := range []uint64{50, 25, 75, 12, 37} { // all have two children
				if v, ok := h.Delete(k); !ok || v != k*10 {
					t.Fatalf("Delete(%d) = (%d,%v)", k, v, ok)
				}
				if _, found := h.Search(k); found {
					t.Fatalf("key %d still visible after delete", k)
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
			// Successor keys must have survived the replacements.
			for _, k := range []uint64{56, 31, 81, 18, 43} {
				if v, ok := h.Search(k); !ok || v != k*10 {
					t.Fatalf("successor key %d lost: (%d,%v)", k, v, ok)
				}
			}
		})
	}
}

func TestConcurrentKeySum(t *testing.T) {
	t.Parallel()
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg})
			const goroutines = 4
			const perG = 2500
			sums := make([]int64, goroutines)
			counts := make([]int64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := tr.NewHandle()
					rng := rand.New(rand.NewSource(int64(g)*911 + 3))
					for i := 0; i < perG; i++ {
						k := uint64(rng.Intn(256)) + 1
						if rng.Intn(2) == 0 {
							if _, existed := h.Insert(k, k); !existed {
								sums[g] += int64(k)
								counts[g]++
							}
						} else {
							if _, existed := h.Delete(k); existed {
								sums[g] -= int64(k)
								counts[g]--
							}
						}
					}
				}(g)
			}
			wg.Wait()
			var wantSum, wantCount int64
			for g := range sums {
				wantSum += sums[g]
				wantCount += counts[g]
			}
			sum, count := tr.KeySum()
			if int64(sum) != wantSum || int64(count) != wantCount {
				t.Fatalf("key-sum: tree (%d,%d), threads (%d,%d)", sum, count, wantSum, wantCount)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentWithSearchers(t *testing.T) {
	t.Parallel()
	tr := New(Config{Algorithm: engine.AlgThreePath})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Permanent keys that updaters never touch: searchers must always
	// find them regardless of surrounding churn (exercises the
	// successor-replacement visibility property).
	hSetup := tr.NewHandle()
	for k := uint64(1000); k < 1032; k++ {
		hSetup.Insert(k, k)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(512)) + 1
				if rng.Intn(2) == 0 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tr.NewHandle()
		for i := 0; i < 30000; i++ {
			k := uint64(1000 + i%32)
			if v, ok := h.Search(k); !ok || v != k {
				t.Errorf("permanent key %d not found: (%d,%v)", k, v, ok)
				break
			}
		}
		close(stop)
	}()
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForcedFallbackSynchronize(t *testing.T) {
	t.Parallel()
	// Every transaction aborts: deletes run the full CITRUS fallback
	// protocol including rcu.Synchronize, concurrently.
	tr := New(Config{Algorithm: engine.AlgThreePath, HTM: htm.Config{SpuriousEvery: 1}})
	const goroutines = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(int64(g) + 77))
			for i := 0; i < 1200; i++ {
				k := uint64(rng.Intn(64)) + 1
				if rng.Intn(2) == 0 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := tr.OpStats(); st.Fast != 0 || st.Middle != 0 {
		t.Fatalf("HTM paths used despite forced aborts: %+v", st)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeQuery(t *testing.T) {
	t.Parallel()
	tr := New(Config{})
	h := tr.NewHandle()
	for k := uint64(1); k <= 100; k++ {
		h.Insert(k, k+5)
	}
	out := h.RangeQuery(40, 60, nil)
	if len(out) != 20 {
		t.Fatalf("RQ returned %d pairs, want 20", len(out))
	}
	for i, kv := range out {
		if kv.Key != uint64(40+i) || kv.Val != kv.Key+5 {
			t.Fatalf("RQ[%d] = %+v", i, kv)
		}
	}
}
