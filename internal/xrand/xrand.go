// Package xrand provides the deterministic splitmix64 PRNG used by the
// benchmark harness: fast, seedable per thread, and with no shared
// state, so throughput measurements do not contend on a random source.
package xrand

// State is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New for distinct streams.
type State struct {
	x uint64
}

// New returns a generator seeded for stream i of seed.
func New(seed, i uint64) *State {
	return &State{x: seed + i*0x9e3779b97f4a7c15}
}

// Next returns the next pseudo-random value.
func (s *State) Next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a value in [0, n). n must be positive.
func (s *State) Uint64n(n uint64) uint64 {
	return s.Next() % n
}

// Float64 returns a value in [0, 1).
func (s *State) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}
