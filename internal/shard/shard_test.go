package shard

import (
	"strings"
	"sync"
	"testing"

	"htmtree/internal/abtree"
	"htmtree/internal/bst"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
)

func newShardedBST(t *testing.T, shards int, span uint64) *Dict {
	t.Helper()
	d, err := New(Config{
		Shards:  shards,
		KeySpan: span,
		New: func(int, *engine.UpdateMonitor) dict.Dict {
			return bst.New(bst.Config{Algorithm: engine.AlgThreePath})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestConfigValidation drives every rejection path of Config through a
// table: each invalid configuration must be refused with an error that
// names the failing field and quotes the offending value, so a
// misconfigured caller can see at a glance what to fix.
func TestConfigValidation(t *testing.T) {
	t.Parallel()
	ctor := func(int, *engine.UpdateMonitor) dict.Dict {
		return bst.New(bst.Config{Algorithm: engine.AlgNonHTM})
	}
	hash4, err := NewHashRouter(4)
	if err != nil {
		t.Fatal(err)
	}
	range8, err := NewRangeRouter(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		want []string // substrings the error must contain: field name and value
	}{
		{
			name: "negative shards",
			cfg:  Config{Shards: -1, New: ctor},
			want: []string{"Config.Shards", "-1"},
		},
		{
			name: "nil constructor",
			cfg:  Config{Shards: 4},
			want: []string{"Config.New", "nil"},
		},
		{
			name: "negative rq retries",
			cfg:  Config{Shards: 4, New: ctor, Atomic: true, RQRetries: -2},
			want: []string{"Config.RQRetries", "-2"},
		},
		{
			name: "router shard count mismatch",
			cfg:  Config{Shards: 8, New: ctor, Router: hash4},
			want: []string{"Config.Router", "4", "8"},
		},
		{
			name: "rebalance on hash router",
			cfg:  Config{Shards: 4, New: ctor, Router: hash4, Rebalance: &RebalanceConfig{}},
			want: []string{"Config.Rebalance", "range router"},
		},
		{
			name: "rebalance on one shard",
			cfg:  Config{Shards: 1, New: ctor, Rebalance: &RebalanceConfig{}},
			want: []string{"Config.Rebalance", "at least 2 shards"},
		},
		{
			name: "negative rebalance check ops",
			cfg:  Config{Shards: 4, New: ctor, Rebalance: &RebalanceConfig{CheckOps: -5}},
			want: []string{"Config.Rebalance.CheckOps", "-5"},
		},
		{
			name: "negative rebalance ratio",
			cfg:  Config{Shards: 4, New: ctor, Rebalance: &RebalanceConfig{Ratio: -1}},
			want: []string{"Config.Rebalance.Ratio", "-1"},
		},
		{
			name: "rebalance move fraction too large",
			cfg:  Config{Shards: 4, New: ctor, Rebalance: &RebalanceConfig{MoveFraction: 1.5}},
			want: []string{"Config.Rebalance.MoveFraction", "1.5"},
		},
		{
			name: "negative rebalance move fraction",
			cfg:  Config{Shards: 4, New: ctor, Rebalance: &RebalanceConfig{MoveFraction: -0.25}},
			want: []string{"Config.Rebalance.MoveFraction", "-0.25"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := New(tc.cfg)
			if err == nil {
				t.Fatalf("accepted invalid config %+v", tc.cfg)
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("error %q does not mention %q", err, sub)
				}
			}
		})
	}

	// Valid defaults still work.
	d, err := New(Config{New: ctor})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShards() != DefaultShards {
		t.Fatalf("NumShards = %d, want default %d", d.NumShards(), DefaultShards)
	}
	// A supplied router resolves the shard count when Shards is zero.
	d, err = New(Config{New: ctor, Router: range8})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want router's 8", d.NumShards())
	}
}

func TestRoutingCoversKeySpace(t *testing.T) {
	t.Parallel()
	for _, shards := range []int{1, 2, 4, 7, 16} {
		d := newShardedBST(t, shards, 10000)
		prev := 0
		for k := uint64(0); k <= 10050; k++ {
			i := d.ShardFor(k)
			if i < 0 || i >= shards {
				t.Fatalf("shards=%d: ShardFor(%d) = %d out of range", shards, k, i)
			}
			if i < prev {
				t.Fatalf("shards=%d: routing not monotone at key %d", shards, k)
			}
			lo, hi := d.Bounds(i)
			if k < lo || (k >= hi && i != shards-1) {
				t.Fatalf("shards=%d: key %d routed to shard %d with bounds [%d,%d)",
					shards, k, i, lo, hi)
			}
			prev = i
		}
		// Keys far beyond the span (up to MaxKey) go to the last shard.
		if i := d.ShardFor(dict.MaxKey); i != shards-1 {
			t.Fatalf("shards=%d: ShardFor(MaxKey) = %d, want %d", shards, i, shards-1)
		}
	}
}

func TestPointOpsAndKeySum(t *testing.T) {
	t.Parallel()
	d := newShardedBST(t, 4, 1000)
	h := d.NewHandle()
	var wantSum, wantCount uint64
	for k := uint64(1); k <= 1000; k += 3 {
		if _, existed := h.Insert(k, k*2); existed {
			t.Fatalf("Insert(%d) reported existing", k)
		}
		wantSum += k
		wantCount++
	}
	if _, existed := h.Insert(7, 99); !existed {
		t.Fatal("re-Insert(7) did not report existing")
	}
	if v, ok := h.Search(7); !ok || v != 99 {
		t.Fatalf("Search(7) = (%d,%v), want (99,true)", v, ok)
	}
	if _, ok := h.Search(8); ok {
		t.Fatal("Search(8) found a missing key")
	}
	if old, existed := h.Delete(10); !existed || old != 20 {
		t.Fatalf("Delete(10) = (%d,%v), want (20,true)", old, existed)
	}
	wantSum -= 10
	wantCount--
	sum, count := d.KeySum()
	if sum != wantSum || count != wantCount {
		t.Fatalf("KeySum = (%d,%d), want (%d,%d)", sum, count, wantSum, wantCount)
	}
	if err := d.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

// TestRangeQueryAcrossShards checks fan-out range queries return exactly
// the keys in [lo,hi), globally sorted, for windows inside one shard,
// spanning two, and spanning all shards.
func TestRangeQueryAcrossShards(t *testing.T) {
	t.Parallel()
	const span = 1024
	d := newShardedBST(t, 8, span)
	h := d.NewHandle()
	for k := uint64(1); k <= span; k++ {
		h.Insert(k, k+7)
	}
	for _, w := range []struct{ lo, hi uint64 }{
		{5, 60},          // inside shard 0 (width 128)
		{100, 300},       // spans shards 0-2
		{1, span + 1},    // everything
		{500, 500},       // empty
		{700, 650},       // inverted: empty
		{span, 2 * span}, // tail, partially beyond stored keys
	} {
		out := h.RangeQuery(w.lo, w.hi, nil)
		var want []uint64
		for k := w.lo; k < w.hi && k <= span; k++ {
			if k >= 1 {
				want = append(want, k)
			}
		}
		if len(out) != len(want) {
			t.Fatalf("RQ[%d,%d): %d pairs, want %d", w.lo, w.hi, len(out), len(want))
		}
		for i, kv := range out {
			if kv.Key != want[i] || kv.Val != want[i]+7 {
				t.Fatalf("RQ[%d,%d)[%d] = (%d,%d), want (%d,%d)",
					w.lo, w.hi, i, kv.Key, kv.Val, want[i], want[i]+7)
			}
			if i > 0 && out[i-1].Key >= kv.Key {
				t.Fatalf("RQ[%d,%d) unsorted at index %d", w.lo, w.hi, i)
			}
		}
	}
}

func TestStatsAggregateAcrossShards(t *testing.T) {
	t.Parallel()
	d, err := New(Config{
		Shards:  4,
		KeySpan: 4000,
		New: func(int, *engine.UpdateMonitor) dict.Dict {
			return abtree.New(abtree.Config{Algorithm: engine.AlgThreePath})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := d.NewHandle()
	for k := uint64(1); k <= 4000; k++ {
		h.Insert(k, k)
	}
	// Rebalancing steps count as operations too, so the aggregate is at
	// least the number of inserts.
	ops := d.OpStats()
	if ops.Total() < 4000 {
		t.Fatalf("aggregated OpStats total = %d, want >= 4000", ops.Total())
	}
	// Every shard saw inserts, so the aggregate must exceed any single
	// shard's count.
	for i := 0; i < d.NumShards(); i++ {
		if sp, ok := d.Shard(i).(interface{ OpStats() engine.OpStats }); ok {
			if one := sp.OpStats().Total(); one == 0 || one >= ops.Total() {
				t.Fatalf("shard %d ops = %d of aggregate %d", i, one, ops.Total())
			}
		}
	}
	hs := d.HTMStats()
	var commits uint64
	for p := range hs.Commits {
		commits += hs.Commits[p]
	}
	if commits == 0 {
		t.Fatal("aggregated HTMStats recorded no commits")
	}
}

func TestConcurrentShardedUse(t *testing.T) {
	t.Parallel()
	const span = 512
	d := newShardedBST(t, 8, span)
	var wg sync.WaitGroup
	sums := make([]int64, 4)
	counts := make([]int64, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := d.NewHandle()
			for i := 0; i < 4000; i++ {
				k := uint64((g*31+i*7)%span) + 1
				if i%2 == 0 {
					if _, existed := h.Insert(k, k); !existed {
						sums[g] += int64(k)
						counts[g]++
					}
				} else {
					if _, existed := h.Delete(k); existed {
						sums[g] -= int64(k)
						counts[g]--
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var wantSum, wantCount int64
	for g := range sums {
		wantSum += sums[g]
		wantCount += counts[g]
	}
	sum, count := d.KeySum()
	if int64(sum) != wantSum || int64(count) != wantCount {
		t.Fatalf("key-sum (%d,%d), threads (%d,%d)", sum, count, wantSum, wantCount)
	}
	if err := d.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

func newAtomicShardedBST(t *testing.T, shards int, span uint64) *Dict {
	t.Helper()
	d, err := New(Config{
		Shards:  shards,
		KeySpan: span,
		Atomic:  true,
		New: func(_ int, mon *engine.UpdateMonitor) dict.Dict {
			return bst.New(bst.Config{
				Algorithm: engine.AlgThreePath,
				Engine:    engine.Config{Monitor: mon},
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestShardBoundaryKeys exercises range queries whose endpoints land
// exactly on partition boundaries: first/last key of each shard,
// windows starting or ending on a boundary, one-key windows at both
// edges, inverted and empty windows, and the full key space.
func TestShardBoundaryKeys(t *testing.T) {
	t.Parallel()
	const (
		shards = 4
		span   = 400 // width 100
	)
	for _, atomic := range []bool{false, true} {
		atomic := atomic
		t.Run(map[bool]string{false: "plain", true: "atomic"}[atomic], func(t *testing.T) {
			t.Parallel()
			var d *Dict
			if atomic {
				d = newAtomicShardedBST(t, shards, span)
			} else {
				d = newShardedBST(t, shards, span)
			}
			h := d.NewHandle()
			present := make(map[uint64]bool)
			// Populate only the keys adjacent to each boundary, plus the
			// extremes of the legal key space.
			for i := 0; i < shards; i++ {
				lo, hi := d.Bounds(i)
				for _, k := range []uint64{lo, lo + 1, hi - 2, hi - 1} {
					if k < 1 || k > dict.MaxKey {
						continue
					}
					h.Insert(k, k*3)
					present[k] = true
				}
			}
			h.Insert(dict.MaxKey, dict.MaxKey) // far beyond span: last shard
			present[dict.MaxKey] = true

			check := func(lo, hi uint64) {
				t.Helper()
				out := h.RangeQuery(lo, hi, nil)
				var want []uint64
				for k := range present {
					if k >= lo && k < hi {
						want = append(want, k)
					}
				}
				if len(out) != len(want) {
					t.Fatalf("RQ[%d,%d): %d pairs, want %d", lo, hi, len(out), len(want))
				}
				for i, kv := range out {
					if i > 0 && out[i-1].Key >= kv.Key {
						t.Fatalf("RQ[%d,%d) unsorted at %d", lo, hi, i)
					}
					if !present[kv.Key] || kv.Key < lo || kv.Key >= hi {
						t.Fatalf("RQ[%d,%d) returned unexpected key %d", lo, hi, kv.Key)
					}
				}
			}
			for i := 0; i < shards; i++ {
				blo, bhi := d.Bounds(i)
				check(blo, bhi)   // exactly one shard's range
				check(blo, blo+1) // one-key window at the lower edge
				if bhi > blo+1 && bhi < ^uint64(0) {
					check(bhi-1, bhi)   // one-key window at the upper edge
					check(blo+1, bhi+1) // window crossing the upper boundary
				}
			}
			check(0, span)             // whole configured span
			check(0, dict.MaxKey+1)    // full legal key space, incl. clamp tail
			check(span, dict.MaxKey+1) // tail only: everything routed to last shard
			if out := h.RangeQuery(300, 200, nil); len(out) != 0 {
				t.Fatalf("inverted window returned %d pairs", len(out))
			}
			if out := h.RangeQuery(250, 250, nil); len(out) != 0 {
				t.Fatalf("empty window returned %d pairs", len(out))
			}
			if err := d.CheckPartition(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAtomicRangeQueryMatchesPlain checks the atomic fan-out returns the
// same (quiescent) results as the plain one and reports its attempts.
func TestAtomicRangeQueryMatchesPlain(t *testing.T) {
	t.Parallel()
	const span = 1024
	d := newAtomicShardedBST(t, 8, span)
	h := d.NewHandle()
	for k := uint64(1); k <= span; k++ {
		h.Insert(k, k+7)
	}
	out := h.RangeQuery(100, 900, nil)
	if len(out) != 800 {
		t.Fatalf("RQ[100,900): %d pairs, want 800", len(out))
	}
	for i, kv := range out {
		if kv.Key != 100+uint64(i) || kv.Val != kv.Key+7 {
			t.Fatalf("RQ[100,900)[%d] = (%d,%d)", i, kv.Key, kv.Val)
		}
	}
	sum, count := d.KeySum()
	if count != span || sum != span*(span+1)/2 {
		t.Fatalf("KeySum = (%d,%d), want (%d,%d)", sum, count, uint64(span*(span+1)/2), span)
	}
	st := d.RQStats()
	// One multi-shard RQ and one KeySum ran, both quiescent: at least two
	// attempts, no escalations.
	if st.Attempts < 2 {
		t.Fatalf("RQStats.Attempts = %d, want >= 2", st.Attempts)
	}
	if st.Escalations != 0 || st.Retries != 0 {
		t.Fatalf("quiescent reads retried/escalated: %+v", st)
	}
}

// TestAtomicKeySumUnderConcurrentUpdates hammers KeySum while updaters
// run. Every validated snapshot must balance: the sum of a consistent
// cut of a workload that only ever inserts key k with value k and
// deletes it again is the sum of the keys it reports present.
func TestAtomicKeySumUnderConcurrentUpdates(t *testing.T) {
	t.Parallel()
	const span = 256
	d := newAtomicShardedBST(t, 8, span)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := d.NewHandle()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64((g*131+i*17)%span) + 1
				if i%2 == 0 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
			}
		}(g)
	}
	// A consistent cut of this workload always has sum == sum of a set
	// of distinct keys in [1, span]; bound-check each snapshot.
	for i := 0; i < 300; i++ {
		sum, count := d.KeySum()
		if count > span {
			t.Fatalf("KeySum count = %d > %d keys in play", count, span)
		}
		maxSum := count * span
		minSum := count * (count + 1) / 2
		if sum < minSum || sum > maxSum {
			t.Fatalf("KeySum (%d,%d) outside feasible envelope [%d,%d]",
				sum, count, minSum, maxSum)
		}
	}
	close(stop)
	wg.Wait()
}
