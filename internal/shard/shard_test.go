package shard

import (
	"sync"
	"testing"

	"htmtree/internal/abtree"
	"htmtree/internal/bst"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
)

func newShardedBST(t *testing.T, shards int, span uint64) *Dict {
	t.Helper()
	d, err := New(Config{
		Shards:  shards,
		KeySpan: span,
		New: func(int) dict.Dict {
			return bst.New(bst.Config{Algorithm: engine.AlgThreePath})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{Shards: -1, New: func(int) dict.Dict { return nil }}); err == nil {
		t.Fatal("accepted negative shard count")
	}
	if _, err := New(Config{Shards: 4}); err == nil {
		t.Fatal("accepted nil constructor")
	}
	d, err := New(Config{New: func(int) dict.Dict {
		return bst.New(bst.Config{Algorithm: engine.AlgNonHTM})
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShards() != DefaultShards {
		t.Fatalf("NumShards = %d, want default %d", d.NumShards(), DefaultShards)
	}
}

func TestRoutingCoversKeySpace(t *testing.T) {
	t.Parallel()
	for _, shards := range []int{1, 2, 4, 7, 16} {
		d := newShardedBST(t, shards, 10000)
		prev := 0
		for k := uint64(0); k <= 10050; k++ {
			i := d.ShardFor(k)
			if i < 0 || i >= shards {
				t.Fatalf("shards=%d: ShardFor(%d) = %d out of range", shards, k, i)
			}
			if i < prev {
				t.Fatalf("shards=%d: routing not monotone at key %d", shards, k)
			}
			lo, hi := d.Bounds(i)
			if k < lo || (k >= hi && i != shards-1) {
				t.Fatalf("shards=%d: key %d routed to shard %d with bounds [%d,%d)",
					shards, k, i, lo, hi)
			}
			prev = i
		}
		// Keys far beyond the span (up to MaxKey) go to the last shard.
		if i := d.ShardFor(dict.MaxKey); i != shards-1 {
			t.Fatalf("shards=%d: ShardFor(MaxKey) = %d, want %d", shards, i, shards-1)
		}
	}
}

func TestPointOpsAndKeySum(t *testing.T) {
	t.Parallel()
	d := newShardedBST(t, 4, 1000)
	h := d.NewHandle()
	var wantSum, wantCount uint64
	for k := uint64(1); k <= 1000; k += 3 {
		if _, existed := h.Insert(k, k*2); existed {
			t.Fatalf("Insert(%d) reported existing", k)
		}
		wantSum += k
		wantCount++
	}
	if _, existed := h.Insert(7, 99); !existed {
		t.Fatal("re-Insert(7) did not report existing")
	}
	if v, ok := h.Search(7); !ok || v != 99 {
		t.Fatalf("Search(7) = (%d,%v), want (99,true)", v, ok)
	}
	if _, ok := h.Search(8); ok {
		t.Fatal("Search(8) found a missing key")
	}
	if old, existed := h.Delete(10); !existed || old != 20 {
		t.Fatalf("Delete(10) = (%d,%v), want (20,true)", old, existed)
	}
	wantSum -= 10
	wantCount--
	sum, count := d.KeySum()
	if sum != wantSum || count != wantCount {
		t.Fatalf("KeySum = (%d,%d), want (%d,%d)", sum, count, wantSum, wantCount)
	}
	if err := d.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

// TestRangeQueryAcrossShards checks fan-out range queries return exactly
// the keys in [lo,hi), globally sorted, for windows inside one shard,
// spanning two, and spanning all shards.
func TestRangeQueryAcrossShards(t *testing.T) {
	t.Parallel()
	const span = 1024
	d := newShardedBST(t, 8, span)
	h := d.NewHandle()
	for k := uint64(1); k <= span; k++ {
		h.Insert(k, k+7)
	}
	for _, w := range []struct{ lo, hi uint64 }{
		{5, 60},          // inside shard 0 (width 128)
		{100, 300},       // spans shards 0-2
		{1, span + 1},    // everything
		{500, 500},       // empty
		{700, 650},       // inverted: empty
		{span, 2 * span}, // tail, partially beyond stored keys
	} {
		out := h.RangeQuery(w.lo, w.hi, nil)
		var want []uint64
		for k := w.lo; k < w.hi && k <= span; k++ {
			if k >= 1 {
				want = append(want, k)
			}
		}
		if len(out) != len(want) {
			t.Fatalf("RQ[%d,%d): %d pairs, want %d", w.lo, w.hi, len(out), len(want))
		}
		for i, kv := range out {
			if kv.Key != want[i] || kv.Val != want[i]+7 {
				t.Fatalf("RQ[%d,%d)[%d] = (%d,%d), want (%d,%d)",
					w.lo, w.hi, i, kv.Key, kv.Val, want[i], want[i]+7)
			}
			if i > 0 && out[i-1].Key >= kv.Key {
				t.Fatalf("RQ[%d,%d) unsorted at index %d", w.lo, w.hi, i)
			}
		}
	}
}

func TestStatsAggregateAcrossShards(t *testing.T) {
	t.Parallel()
	d, err := New(Config{
		Shards:  4,
		KeySpan: 4000,
		New: func(int) dict.Dict {
			return abtree.New(abtree.Config{Algorithm: engine.AlgThreePath})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := d.NewHandle()
	for k := uint64(1); k <= 4000; k++ {
		h.Insert(k, k)
	}
	// Rebalancing steps count as operations too, so the aggregate is at
	// least the number of inserts.
	ops := d.OpStats()
	if ops.Total() < 4000 {
		t.Fatalf("aggregated OpStats total = %d, want >= 4000", ops.Total())
	}
	// Every shard saw inserts, so the aggregate must exceed any single
	// shard's count.
	for i := 0; i < d.NumShards(); i++ {
		if sp, ok := d.Shard(i).(interface{ OpStats() engine.OpStats }); ok {
			if one := sp.OpStats().Total(); one == 0 || one >= ops.Total() {
				t.Fatalf("shard %d ops = %d of aggregate %d", i, one, ops.Total())
			}
		}
	}
	hs := d.HTMStats()
	var commits uint64
	for p := range hs.Commits {
		commits += hs.Commits[p]
	}
	if commits == 0 {
		t.Fatal("aggregated HTMStats recorded no commits")
	}
}

func TestConcurrentShardedUse(t *testing.T) {
	t.Parallel()
	const span = 512
	d := newShardedBST(t, 8, span)
	var wg sync.WaitGroup
	sums := make([]int64, 4)
	counts := make([]int64, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := d.NewHandle()
			for i := 0; i < 4000; i++ {
				k := uint64((g*31+i*7)%span) + 1
				if i%2 == 0 {
					if _, existed := h.Insert(k, k); !existed {
						sums[g] += int64(k)
						counts[g]++
					}
				} else {
					if _, existed := h.Delete(k); existed {
						sums[g] -= int64(k)
						counts[g]--
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var wantSum, wantCount int64
	for g := range sums {
		wantSum += sums[g]
		wantCount += counts[g]
	}
	sum, count := d.KeySum()
	if int64(sum) != wantSum || int64(count) != wantCount {
		t.Fatalf("key-sum (%d,%d), threads (%d,%d)", sum, count, wantSum, wantCount)
	}
	if err := d.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}
