package shard

import (
	"fmt"
)

// Router maps every key to the shard that owns it. A Dict publishes its
// router through an atomic pointer, so implementations must be
// immutable after construction: live rebalancing never mutates a router
// in place, it builds a successor table and swaps the pointer.
//
// Three families exist:
//
//   - NewRangeRouter: contiguous key ranges, one per shard, in shard
//     order. The default, and the only family live rebalancing can
//     migrate (boundaries move between neighbors).
//   - NewHashRouter: keys scattered by a mixing hash. Perfectly
//     insensitive to key skew, but every multi-key range query must
//     visit all shards and merge-sort the results.
//   - Migrated range routers, produced internally by the rebalancer from
//     an existing range router with one boundary moved.
type Router interface {
	// NumShards returns the number of partitions the router maps onto.
	NumShards() int
	// ShardFor returns the index of the shard owning key.
	ShardFor(key uint64) int
	// Bounds returns the key range [lo, hi) owned by shard i. For
	// ordered routers the ranges are contiguous and ascending, and the
	// last shard's hi is ^uint64(0); unordered routers own an
	// interleaving of the whole key space per shard and return
	// (0, ^uint64(0)) for every i.
	Bounds(i int) (lo, hi uint64)
	// Ordered reports whether ownership is contiguous and ascending in
	// the shard index — so a window [lo, hi) overlaps exactly shards
	// ShardFor(lo)..ShardFor(hi-1), and concatenating per-shard
	// ascending range-query results in index order is globally sorted.
	// Unordered (hash) routers fan range queries out to every shard and
	// merge.
	Ordered() bool
}

// rangeRouter owns contiguous key ranges: shard i owns [lo[i], lo[i+1])
// and the last shard owns [lo[n-1], ^uint64(0)). The uniform constructor
// additionally records the width so point routing stays the single
// integer division the pre-Router sharding layer used; migrated tables
// (width == 0) binary-search the boundary slice instead.
type rangeRouter struct {
	lo    []uint64 // ascending inclusive lower bounds; lo[0] == 0
	span  uint64   // exclusive upper bound the partition is balanced over
	width uint64   // uniform shard width, 0 for migrated (irregular) tables
}

// NewRangeRouter returns the contiguous-range router splitting
// [0, keySpan) uniformly across shards — the sharding layer's default
// routing, unchanged: keys at or beyond keySpan route to the last
// shard. keySpan 0 selects the full key space.
func NewRangeRouter(shards int, keySpan uint64) (Router, error) {
	r, err := newUniformRangeRouter(shards, keySpan)
	if err != nil {
		return nil, err
	}
	return r, nil
}

func newUniformRangeRouter(shards int, keySpan uint64) (*rangeRouter, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: NewRangeRouter shards = %d (want >= 1)", shards)
	}
	span := keySpan
	if span == 0 {
		span = maxKeySpan
	}
	// Ceiling division so shards*width covers the span; the last shard
	// additionally owns [span, ∞) via the routing clamp.
	width := (span-1)/uint64(shards) + 1
	lo := make([]uint64, shards)
	for i := range lo {
		lo[i] = uint64(i) * width
	}
	return &rangeRouter{lo: lo, span: span, width: width}, nil
}

func (r *rangeRouter) NumShards() int { return len(r.lo) }

func (r *rangeRouter) ShardFor(key uint64) int {
	if r.width != 0 {
		i := key / r.width
		if i >= uint64(len(r.lo)) {
			return len(r.lo) - 1 // keys beyond the span belong to the last shard
		}
		return int(i)
	}
	// Migrated table: the last shard whose lower bound is <= key.
	// Hand-rolled binary search — this is every point operation's
	// routing step, and sort.Search's closure indirection is measurable
	// there.
	lo, hi := 0, len(r.lo)
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if r.lo[mid] <= key {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func (r *rangeRouter) Bounds(i int) (lo, hi uint64) {
	if i == len(r.lo)-1 {
		return r.lo[i], ^uint64(0)
	}
	return r.lo[i], r.lo[i+1]
}

func (r *rangeRouter) Ordered() bool { return true }

// withBoundary returns a copy of r with shard i's inclusive lower bound
// moved to newLo. The caller guarantees lo stays strictly ascending.
func (r *rangeRouter) withBoundary(i int, newLo uint64) *rangeRouter {
	lo := make([]uint64, len(r.lo))
	copy(lo, r.lo)
	lo[i] = newLo
	return &rangeRouter{lo: lo, span: r.span}
}

// hashRouter scatters keys across shards with a splitmix64-style mixing
// hash, so any key skew — Zipfian, hot ranges, sequential — spreads
// uniformly. The price is locality: a range query cannot bound the
// shards its keys live on, so every multi-key window reads all shards
// and the fan-out merge-sorts the concatenated results.
type hashRouter struct {
	n uint64
}

// NewHashRouter returns a router scattering keys uniformly across
// shards by a mixing hash.
func NewHashRouter(shards int) (Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: NewHashRouter shards = %d (want >= 1)", shards)
	}
	return hashRouter{n: uint64(shards)}, nil
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer whose low
// bits depend on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r hashRouter) NumShards() int          { return int(r.n) }
func (r hashRouter) ShardFor(key uint64) int { return int(mix64(key) % r.n) }
func (r hashRouter) Bounds(int) (uint64, uint64) {
	return 0, ^uint64(0)
}
func (r hashRouter) Ordered() bool { return false }
