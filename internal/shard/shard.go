// Package shard implements a horizontally partitioned ordered
// dictionary: the key space is split into N contiguous ranges, each
// served by an independent inner dictionary (in this repository, a
// template tree with its own engine, HTM context, and fallback
// indicator — Brown, PODC 2017, Sections 5–6). Point operations route
// to the owning shard; range queries fan out to the overlapping shards
// and concatenate the per-shard results, which — because the partition
// is contiguous and each shard returns its pairs in ascending key
// order — yields a globally key-ordered result without a merge step.
//
// Sharding is the first scaling lever on top of Brown's template: each
// tree is self-contained, so partitioning multiplies the fallback
// indicators and transactional conflict domains, and update-heavy
// workloads that serialize on one tree's contended paths spread across
// N of them.
//
// # Consistency
//
// Point operations are linearizable exactly as the inner dictionaries
// are (each key lives in exactly one shard). Each shard's range query
// is atomic in isolation (it runs as a single template operation), but
// a fan-out that spans shards observes each shard at a possibly
// different point in time, so by default a cross-shard RangeQuery (and
// KeySum) may return a state no single linearization point ever
// produced.
//
// Config.Atomic repairs this with optimistic per-shard version
// validation, in the spirit of the hybrid validation of Ben-David et
// al. (Lock-Free Locks Revisited, 2022): every shard carries an
// engine.UpdateMonitor whose counters updaters advance exactly at
// operation commit (transactional paths bump inside the committing
// transaction; non-transactional paths bracket the operation,
// seqlock-style). A reader samples the monitors of every overlapping
// shard, reads the shards, and re-validates the samples; since all
// samples are taken before the first shard read and re-checked after
// the last, an unvalidated-change-free window proves every shard was
// simultaneously stable, so the concatenated result equals the state
// at one instant — a consistent cut. Readers that keep losing the
// optimistic race escalate after Config.RQRetries attempts: they
// arrive on the shards' quiesce gates (the paper's Indicator
// machinery), which holds new update operations at engine entry until
// validation is guaranteed to succeed. RQStats reports how often
// queries retried and escalated.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
)

// DefaultShards is the shard count when Config.Shards is zero.
const DefaultShards = 8

// DefaultRQRetries is the optimistic validation attempt budget before
// an atomic cross-shard read escalates to the quiesce gates.
const DefaultRQRetries = 8

// Config describes a sharded dictionary.
type Config struct {
	// Shards is the number of partitions (default DefaultShards).
	Shards int
	// KeySpan is the exclusive upper bound of the client key range the
	// partition is balanced over (default dict.MaxKey+1). Keys at or
	// above KeySpan are still legal: they route to the last shard, which
	// owns everything from its lower bound upward.
	KeySpan uint64
	// Atomic makes cross-shard RangeQuery and KeySum atomic via
	// per-shard version validation with quiesce escalation. It requires
	// the New constructor to wire the provided monitor into the inner
	// dictionary's engine (engine.Config.Monitor).
	Atomic bool
	// RQRetries bounds the optimistic validation attempts of an atomic
	// cross-shard read before it escalates to quiescing the overlapping
	// shards (default DefaultRQRetries). Ignored unless Atomic.
	RQRetries int
	// Gate overrides the quiesce-gate indicator installed in each
	// shard's monitor (default: a fetch-and-increment counter; use
	// engine.NewSNZIIndicator for the scalable variant). The factory is
	// called once per shard. Ignored unless Atomic.
	Gate func(i int) engine.Indicator
	// New constructs the inner dictionary for shard i. Each call must
	// return a fresh, independent instance. mon is non-nil exactly when
	// Atomic is set, and must then be installed as the inner engine's
	// Monitor so updates publish their commit points.
	New func(i int, mon *engine.UpdateMonitor) dict.Dict
}

// statsSource matches the data structures that expose engine and HTM
// statistics (workload.StatsProvider, without the import).
type statsSource interface {
	OpStats() engine.OpStats
	HTMStats() htm.Stats
}

// RQStats counts the outcomes of atomic cross-shard reads (RangeQuery
// and KeySum validation loops). All counters are zero when the
// dictionary was built without Config.Atomic.
type RQStats struct {
	// Attempts counts validated snapshot attempts, including the
	// successful final attempt of every read.
	Attempts uint64
	// Retries counts attempts invalidated by a concurrent update (or by
	// an update in flight at sampling time).
	Retries uint64
	// Escalations counts reads that exhausted the optimistic budget and
	// fell back to holding the shards' quiesce gates.
	Escalations uint64
}

// Dict is a sharded ordered dictionary. It implements dict.Dict.
type Dict struct {
	shards []dict.Dict
	width  uint64

	// mons holds one update monitor per shard when the dictionary was
	// built with Config.Atomic; nil otherwise.
	mons      []*engine.UpdateMonitor
	rqRetries int

	rqAttempts    atomic.Uint64
	rqRetried     atomic.Uint64
	rqEscalations atomic.Uint64

	// checkHandles are reserved for CheckPartition: handle registration
	// is permanent in the inner trees' engines, so a quiescent checker
	// must reuse one handle per shard rather than register new ones on
	// every call. checkMu serializes checkers (handles must not be used
	// by two goroutines at once, even quiescent ones).
	checkMu      sync.Mutex
	checkHandles []dict.Handle
}

// New builds a sharded dictionary from cfg.
func New(cfg Config) (*Dict, error) {
	n := cfg.Shards
	if n == 0 {
		n = DefaultShards
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", n)
	}
	if cfg.New == nil {
		return nil, fmt.Errorf("shard: nil constructor")
	}
	span := cfg.KeySpan
	if span == 0 {
		span = dict.MaxKey + 1
	}
	d := &Dict{
		shards: make([]dict.Dict, n),
		// Ceiling division so n*width covers the span; the last shard
		// additionally owns [span, ∞) via routing clamp.
		width:     (span-1)/uint64(n) + 1,
		rqRetries: cfg.RQRetries,
	}
	if d.rqRetries <= 0 {
		d.rqRetries = DefaultRQRetries
	}
	if cfg.Atomic {
		d.mons = make([]*engine.UpdateMonitor, n)
		for i := range d.mons {
			var gate engine.Indicator
			if cfg.Gate != nil {
				gate = cfg.Gate(i)
			}
			d.mons[i] = engine.NewUpdateMonitor(gate)
		}
	}
	for i := range d.shards {
		var mon *engine.UpdateMonitor
		if d.mons != nil {
			mon = d.mons[i]
		}
		d.shards[i] = cfg.New(i, mon)
	}
	return d, nil
}

// NumShards returns the number of partitions.
func (d *Dict) NumShards() int { return len(d.shards) }

// Shard returns the inner dictionary serving partition i.
func (d *Dict) Shard(i int) dict.Dict { return d.shards[i] }

// Atomic reports whether cross-shard reads are version-validated.
func (d *Dict) Atomic() bool { return d.mons != nil }

// ShardFor returns the index of the partition owning key.
func (d *Dict) ShardFor(key uint64) int {
	i := key / d.width
	if i >= uint64(len(d.shards)) {
		return len(d.shards) - 1 // keys beyond KeySpan belong to the last shard
	}
	return int(i)
}

// Bounds returns the key range [lo, hi) owned by partition i; the last
// partition's hi is ^uint64(0) (it owns everything upward).
func (d *Dict) Bounds(i int) (lo, hi uint64) {
	lo = uint64(i) * d.width
	if i == len(d.shards)-1 {
		return lo, ^uint64(0)
	}
	return lo, lo + d.width
}

// NewHandle registers a per-goroutine handle on every shard.
func (d *Dict) NewHandle() dict.Handle {
	hs := make([]dict.Handle, len(d.shards))
	for i, s := range d.shards {
		hs[i] = s.NewHandle()
	}
	h := &handle{d: d, hs: hs}
	if d.mons != nil {
		h.samples = make([]engine.MonitorSample, len(d.shards))
	}
	return h
}

// RQStats returns a snapshot of the atomic cross-shard read counters.
// Safe to call while readers run (the snapshot is then approximate).
func (d *Dict) RQStats() RQStats {
	return RQStats{
		Attempts:    d.rqAttempts.Load(),
		Retries:     d.rqRetried.Load(),
		Escalations: d.rqEscalations.Load(),
	}
}

// readConsistent runs read — an idempotent function reading shards
// [first, last] — inside the sample/read/validate loop, retrying until
// no update invalidated the window. After d.rqRetries failed attempts
// it escalates: it arrives on the overlapping shards' quiesce gates so
// new update operations wait at engine entry, after which only the
// finitely many updates already in flight can still invalidate the
// window, and the loop terminates. samples is caller scratch with
// capacity at least last-first+1.
func (d *Dict) readConsistent(first, last int, samples []engine.MonitorSample, read func()) {
	try := func() bool {
		d.rqAttempts.Add(1)
		samples = samples[:0]
		for s := first; s <= last; s++ {
			smp, ok := d.mons[s].Sample()
			if !ok {
				return false // a non-transactional update is mid-flight
			}
			samples = append(samples, smp)
		}
		read()
		for s := first; s <= last; s++ {
			if !d.mons[s].Validate(samples[s-first]) {
				return false
			}
		}
		return true
	}
	for attempt := 0; attempt < d.rqRetries; attempt++ {
		if try() {
			return
		}
		d.rqRetried.Add(1)
	}
	d.rqEscalations.Add(1)
	// Quiesce now, release via defer: if read() panics (it runs an
	// arbitrary inner dictionary) and the caller recovers, held gates
	// must not leak — they would park every future update forever.
	for s := first; s <= last; s++ {
		defer d.mons[s].Quiesce()()
	}
	for !try() {
		d.rqRetried.Add(1)
	}
}

// KeySum returns the sum and count of keys across all shards.
//
// Consistency: with Config.Atomic the result is a consistent cut — the
// sum and count of the keys present at one instant during the call, as
// if taken at a single linearization point — and KeySum may run
// concurrently with updates. Without Atomic it inherits the inner
// dictionaries' quiescent-only contract: each shard is summed at a
// different time, and a shard's walk may itself race updaters.
func (d *Dict) KeySum() (sum, count uint64) {
	read := func() {
		sum, count = 0, 0
		for _, s := range d.shards {
			ss, sc := s.KeySum()
			sum += ss
			count += sc
		}
	}
	if d.mons == nil {
		read()
		return sum, count
	}
	samples := make([]engine.MonitorSample, 0, len(d.shards))
	d.readConsistent(0, len(d.shards)-1, samples, read)
	return sum, count
}

// OpStats aggregates per-path operation counts across shards (shards
// whose inner dictionary exposes no statistics contribute zero).
func (d *Dict) OpStats() engine.OpStats {
	var agg engine.OpStats
	for _, s := range d.shards {
		if sp, ok := s.(statsSource); ok {
			os := sp.OpStats()
			agg.Fast += os.Fast
			agg.Middle += os.Middle
			agg.Fallback += os.Fallback
		}
	}
	return agg
}

// HTMStats aggregates transaction commit/abort counts across shards.
func (d *Dict) HTMStats() htm.Stats {
	var agg htm.Stats
	for _, s := range d.shards {
		if sp, ok := s.(statsSource); ok {
			agg.Merge(sp.HTMStats())
		}
	}
	return agg
}

// CheckPartition verifies the partition invariant: every key stored in
// shard i lies within Bounds(i). Quiescent use only.
func (d *Dict) CheckPartition() error {
	d.checkMu.Lock()
	defer d.checkMu.Unlock()
	if d.checkHandles == nil {
		d.checkHandles = make([]dict.Handle, len(d.shards))
		for i, s := range d.shards {
			d.checkHandles[i] = s.NewHandle()
		}
	}
	for i := range d.shards {
		lo, hi := d.Bounds(i)
		pairs := d.checkHandles[i].RangeQuery(0, dict.MaxKey+1, nil)
		for _, kv := range pairs {
			if kv.Key < lo || (kv.Key >= hi && i != len(d.shards)-1) {
				return fmt.Errorf("shard %d holds key %d outside its range [%d,%d)",
					i, kv.Key, lo, hi)
			}
		}
	}
	return nil
}

// handle is a per-goroutine handle spanning all shards.
type handle struct {
	d       *Dict
	hs      []dict.Handle
	samples []engine.MonitorSample // scratch for atomic fan-out validation
}

func (h *handle) Insert(key, val uint64) (old uint64, existed bool) {
	return h.hs[h.d.ShardFor(key)].Insert(key, val)
}

func (h *handle) Delete(key uint64) (old uint64, existed bool) {
	return h.hs[h.d.ShardFor(key)].Delete(key)
}

func (h *handle) Search(key uint64) (val uint64, found bool) {
	return h.hs[h.d.ShardFor(key)].Search(key)
}

// RangeQuery fans out to the shards overlapping [lo, hi) in partition
// order. Each shard filters to its own keys, so handing every shard the
// full interval and concatenating preserves global ascending key order.
// With Config.Atomic a multi-shard fan-out is additionally wrapped in
// the sample/read/validate loop, making the result a consistent cut; a
// window inside a single shard is atomic either way and skips the loop.
func (h *handle) RangeQuery(lo, hi uint64, out []dict.KV) []dict.KV {
	if hi <= lo {
		return out
	}
	first := h.d.ShardFor(lo)
	last := h.d.ShardFor(hi - 1)
	if h.d.mons == nil || first == last {
		for s := first; s <= last; s++ {
			out = h.hs[s].RangeQuery(lo, hi, out)
		}
		return out
	}
	base := len(out)
	h.d.readConsistent(first, last, h.samples[:0], func() {
		out = out[:base]
		for s := first; s <= last; s++ {
			out = h.hs[s].RangeQuery(lo, hi, out)
		}
	})
	return out
}
