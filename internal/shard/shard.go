// Package shard implements a horizontally partitioned ordered
// dictionary: the key space is divided among N independent inner
// dictionaries (in this repository, template trees with their own
// engine, HTM context, and fallback indicator — Brown, PODC 2017,
// Sections 5–6) by a pluggable Router. Point operations route to the
// owning shard; range queries fan out to the overlapping shards. Under
// the default contiguous-range router the per-shard results concatenate
// into a globally key-ordered result without a merge step; under the
// hash router every multi-key window reads all shards and merge-sorts.
//
// Sharding is the first scaling lever on top of Brown's template: each
// tree is self-contained, so partitioning multiplies the fallback
// indicators and transactional conflict domains, and update-heavy
// workloads that serialize on one tree's contended paths spread across
// N of them. The Router decides how well that spreading survives key
// skew: a static range split collapses a Zipfian or hot-range workload
// onto one shard, a hash split is skew-oblivious (but loses range
// locality), and Config.Rebalance makes the range split adaptive —
// boundary slices of a hot shard's key range migrate live to neighbor
// shards (see RebalanceConfig).
//
// # Consistency
//
// Point operations are linearizable exactly as the inner dictionaries
// are (each key lives in exactly one shard at every instant; during a
// migration both affected shards' updates are held off, and the routing
// table swaps only while the moved keys are present in both). Each
// shard's range query is atomic in isolation (it runs as a single
// template operation), but a fan-out that spans shards observes each
// shard at a possibly different point in time, so by default a
// cross-shard RangeQuery (and KeySum) may return a state no single
// linearization point ever produced.
//
// Config.Atomic repairs this with optimistic per-shard version
// validation, in the spirit of the hybrid validation of Ben-David et
// al. (Lock-Free Locks Revisited, 2022): every shard carries an
// engine.UpdateMonitor whose counters updaters advance exactly at
// operation commit (transactional paths bump inside the committing
// transaction; non-transactional paths bracket the operation,
// seqlock-style). A reader samples the monitors of every overlapping
// shard, reads the shards, and re-validates the samples; since all
// samples are taken before the first shard read and re-checked after
// the last, an unvalidated-change-free window proves every shard was
// simultaneously stable, so the concatenated result equals the state
// at one instant — a consistent cut. Readers that keep losing the
// optimistic race escalate after Config.RQRetries attempts: they
// arrive on the shards' quiesce gates (the paper's Indicator
// machinery), which holds new update operations at engine entry until
// validation is guaranteed to succeed. RQStats reports how often
// queries retried and escalated.
//
// A rebalancing dictionary always runs this validation (Config.Atomic
// is implied): the overlapping shard set is recomputed from the live
// routing table on every attempt and the attempt additionally fails if
// the table moved under it, while a migration brackets both affected
// monitors for its whole duration — so no fan-out can observe a
// half-moved range, and a reader holding stale routing can never
// validate. Escalated readers also hold the migration lock, so a
// stream of migrations cannot starve them.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/fault"
	"htmtree/internal/htm"
	"htmtree/internal/obs"
)

// DefaultShards is the shard count when Config.Shards is zero.
const DefaultShards = 8

// DefaultRQRetries is the optimistic validation attempt budget before
// an atomic cross-shard read escalates to the quiesce gates.
const DefaultRQRetries = 8

// maxKeySpan is the default partition span: the full legal key space.
const maxKeySpan = dict.MaxKey + 1

// Config describes a sharded dictionary.
type Config struct {
	// Shards is the number of partitions (default DefaultShards, or
	// Router.NumShards() when a Router is supplied).
	Shards int
	// KeySpan is the exclusive upper bound of the client key range the
	// partition is balanced over (default dict.MaxKey+1). Keys at or
	// above KeySpan are still legal: under range routing they route to
	// the last shard, which owns everything from its lower bound upward.
	// Ignored by the hash router.
	KeySpan uint64
	// Router overrides how keys map to shards (default: the contiguous
	// range router NewRangeRouter(Shards, KeySpan), preserving the
	// layer's original routing exactly). Use NewHashRouter for
	// skew-oblivious scattering — at the cost of every multi-key range
	// query visiting all shards.
	Router Router
	// Rebalance enables live key-range rebalancing: boundary slices of a
	// disproportionately busy shard's key range migrate to neighbor
	// shards at runtime. Requires range routing (the default router, or
	// one from NewRangeRouter) and at least two shards; implies the
	// version-validated read protocol of Atomic.
	Rebalance *RebalanceConfig
	// Atomic makes cross-shard RangeQuery and KeySum atomic via
	// per-shard version validation with quiesce escalation. It requires
	// the New constructor to wire the provided monitor into the inner
	// dictionary's engine (engine.Config.Monitor).
	Atomic bool
	// RQRetries bounds the optimistic validation attempts of an atomic
	// cross-shard read before it escalates to quiescing the overlapping
	// shards (default DefaultRQRetries). Ignored unless Atomic (or
	// Rebalance, which implies it).
	RQRetries int
	// Gate overrides the quiesce-gate indicator installed in each
	// shard's monitor (default: a fetch-and-increment counter; use
	// engine.NewSNZIIndicator for the scalable variant). The factory is
	// called once per shard. Ignored unless Atomic or Rebalance.
	Gate func(i int) engine.Indicator
	// New constructs the inner dictionary for shard i. Each call must
	// return a fresh, independent instance. mon is non-nil exactly when
	// Atomic or Rebalance is set, and must then be installed as the
	// inner engine's Monitor so updates publish their commit points.
	New func(i int, mon *engine.UpdateMonitor) dict.Dict
	// Obs, when non-nil, registers the shard layer's metric families
	// (cross-shard read outcomes, rebalancing activity) and records
	// quiesce/migration events in the flight recorder. Per-shard engine
	// metrics are wired separately, through each inner dictionary's
	// engine.Config.Obs.
	Obs *obs.Node
	// Faults, when non-nil, arms the deterministic fault-injection
	// plane at the shard layer's seams: fault.PointQuiesce fires while
	// a migration (or an escalated atomic read) holds monitor quiesce
	// gates, and fault.PointMigrateSwap / fault.PointMigrateDelete
	// interrupt a migration between its insert / routing-table-swap /
	// donor-delete steps. Inner-dictionary seams are armed through the
	// engine and HTM configs the Config.New constructor builds.
	Faults *fault.Plan
}

// validate resolves the shard count and checks every field, naming the
// failing field and the offending value in the error.
func (cfg Config) validate() (shards int, err error) {
	n := cfg.Shards
	if n == 0 {
		if cfg.Router != nil {
			n = cfg.Router.NumShards()
		} else {
			n = DefaultShards
		}
	}
	if n < 1 {
		return 0, fmt.Errorf("shard: Config.Shards = %d (want >= 1, or 0 for the default %d)",
			cfg.Shards, DefaultShards)
	}
	if cfg.New == nil {
		return 0, fmt.Errorf("shard: Config.New = nil (a per-shard dictionary constructor is required)")
	}
	if cfg.RQRetries < 0 {
		return 0, fmt.Errorf("shard: Config.RQRetries = %d (want >= 0; 0 selects the default %d)",
			cfg.RQRetries, DefaultRQRetries)
	}
	if cfg.Router != nil && cfg.Router.NumShards() != n {
		return 0, fmt.Errorf("shard: Config.Router covers %d shards but Config.Shards = %d",
			cfg.Router.NumShards(), cfg.Shards)
	}
	if cfg.Rebalance != nil {
		if err := cfg.Rebalance.validate(); err != nil {
			return 0, err
		}
		if n < 2 {
			return 0, fmt.Errorf("shard: Config.Rebalance requires at least 2 shards, Config.Shards = %d",
				cfg.Shards)
		}
		if cfg.Router != nil {
			if _, ok := cfg.Router.(*rangeRouter); !ok {
				return 0, fmt.Errorf("shard: Config.Rebalance requires a range router (NewRangeRouter), Config.Router is %T",
					cfg.Router)
			}
		}
	}
	return n, nil
}

// statsSource matches the data structures that expose engine and HTM
// statistics (workload.StatsProvider, without the import).
type statsSource interface {
	OpStats() engine.OpStats
	HTMStats() htm.Stats
}

// RQStats counts the outcomes of atomic cross-shard reads (RangeQuery
// and KeySum validation loops). All counters are zero when the
// dictionary was built without Config.Atomic or Config.Rebalance.
type RQStats struct {
	// Attempts counts validated snapshot attempts, including the
	// successful final attempt of every read.
	Attempts uint64
	// Retries counts attempts invalidated by a concurrent update or
	// migration (or by one in flight at sampling time).
	Retries uint64
	// Escalations counts reads that exhausted the optimistic budget and
	// fell back to holding the shards' quiesce gates.
	Escalations uint64
}

// routing is the unit the routing-table pointer stores (a Router is an
// interface value, which atomic.Pointer cannot hold directly).
type routing struct {
	r Router
}

// Dict is a sharded ordered dictionary. It implements dict.Dict.
type Dict struct {
	shards []dict.Dict

	// rt is the published routing table. Point operations and fan-outs
	// load it per attempt; rebalancing migrations swap it.
	rt atomic.Pointer[routing]

	// mons holds one update monitor per shard when the dictionary was
	// built with Config.Atomic or Config.Rebalance; nil otherwise.
	mons      []*engine.UpdateMonitor
	rqRetries int

	// reb is the live rebalancer; nil when rebalancing is disabled.
	reb *rebalancer

	// obsRec is the layer's shared flight-recorder thread (quiesce and
	// migration events may come from any goroutine; RareEvent is
	// multi-writer safe). nil unless built with Config.Obs.
	obsRec *obs.ThreadObs

	// faults is the armed fault plan (Config.Faults); nil-safe at every
	// seam.
	faults *fault.Plan

	rqAttempts    atomic.Uint64
	rqRetried     atomic.Uint64
	rqEscalations atomic.Uint64

	// Group-execution counters (see BatchStats in batch.go).
	batchOps           atomic.Uint64
	batchGroups        atomic.Uint64
	batchRouterLookups atomic.Uint64
	batchMonEnters     atomic.Uint64
	batchRestarts      atomic.Uint64

	// checkHandles are reserved for CheckPartition: handle registration
	// is permanent in the inner trees' engines, so a quiescent checker
	// must reuse one handle per shard rather than register new ones on
	// every call. checkMu serializes checkers (handles must not be used
	// by two goroutines at once, even quiescent ones).
	checkMu      sync.Mutex
	checkHandles []dict.Handle
}

// New builds a sharded dictionary from cfg.
func New(cfg Config) (*Dict, error) {
	n, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	r := cfg.Router
	if r == nil {
		rr, rerr := newUniformRangeRouter(n, cfg.KeySpan)
		if rerr != nil {
			return nil, rerr
		}
		r = rr
	}
	d := &Dict{
		shards:    make([]dict.Dict, n),
		rqRetries: cfg.RQRetries,
		faults:    cfg.Faults,
	}
	d.rt.Store(&routing{r: r})
	if d.rqRetries == 0 {
		d.rqRetries = DefaultRQRetries
	}
	if cfg.Atomic || cfg.Rebalance != nil {
		d.mons = make([]*engine.UpdateMonitor, n)
		for i := range d.mons {
			var gate engine.Indicator
			if cfg.Gate != nil {
				gate = cfg.Gate(i)
			}
			d.mons[i] = engine.NewUpdateMonitor(gate)
			if cfg.Rebalance != nil {
				// Migrations need Quiesce to mean "no update at all in
				// flight"; plain Atomic dictionaries skip the in-flight
				// accounting that costs.
				d.mons[i].EnableFullDrain()
			}
		}
	}
	if cfg.Rebalance != nil {
		d.reb = &rebalancer{
			cfg:     cfg.Rebalance.withDefaults(),
			lastOps: make([]uint64, n),
			deltas:  make([]uint64, n),
			handles: make([]dict.Handle, n),
		}
	}
	for i := range d.shards {
		var mon *engine.UpdateMonitor
		if d.mons != nil {
			mon = d.mons[i]
		}
		d.shards[i] = cfg.New(i, mon)
	}
	if cfg.Obs != nil {
		d.obsRec = cfg.Obs.NewThread()
		d.registerObs(cfg.Obs)
	}
	return d, nil
}

// NumShards returns the number of partitions.
func (d *Dict) NumShards() int { return len(d.shards) }

// Shard returns the inner dictionary serving partition i.
func (d *Dict) Shard(i int) dict.Dict { return d.shards[i] }

// Atomic reports whether cross-shard reads are version-validated.
func (d *Dict) Atomic() bool { return d.mons != nil }

// Router returns the current routing table. On a rebalancing dictionary
// the table may be superseded at any time; callers needing a stable
// view across several calls must capture the returned value once.
func (d *Dict) Router() Router { return d.rt.Load().r }

// ShardFor returns the index of the partition currently owning key.
func (d *Dict) ShardFor(key uint64) int { return d.Router().ShardFor(key) }

// Bounds returns the key range [lo, hi) currently owned by partition i;
// under range routing the last partition's hi is ^uint64(0) (it owns
// everything upward), and under hash routing every partition reports
// the full key space.
func (d *Dict) Bounds(i int) (lo, hi uint64) { return d.Router().Bounds(i) }

// NewHandle registers a per-goroutine handle on every shard.
//
// On a rebalancing dictionary the handle performs monitor admission
// itself: a point operation routes, Enters the target shard's monitor
// (pinning the shard — a migration cannot start while the operation is
// in flight), re-checks that the routing table did not move between
// routing and admission, and only then dispatches through inner handles
// whose own engine-level admission is bypassed. Without this, an
// updater could route to a shard, block at its quiesce gate while a
// migration moves its key away, and then commit into the wrong shard
// with stale routing. Inner dictionaries that cannot bypass the gate
// latch rebalancing off instead (migrations then never happen, so
// plain dispatch stays correct).
func (d *Dict) NewHandle() dict.Handle {
	hs := make([]dict.Handle, len(d.shards))
	for i, s := range d.shards {
		hs[i] = s.NewHandle()
	}
	h := &handle{d: d, hs: hs}
	if d.mons != nil {
		h.samples = make([]engine.MonitorSample, len(d.shards))
	}
	if d.reb != nil && !d.reb.disabled.Load() {
		bypassable := true
		for _, ih := range hs {
			if _, ok := ih.(gateBypasser); !ok {
				bypassable = false
				break
			}
		}
		if bypassable {
			for _, ih := range hs {
				ih.(gateBypasser).SetGateBypass(true)
			}
			h.admit = true
		} else {
			d.reb.disabled.Store(true)
		}
	}
	if d.reb == nil {
		// The routing table is published once at construction and never
		// swapped (only migrations store to d.rt), so every operation
		// through this handle may use a plain cached pointer instead of
		// a per-op atomic load. Handles on a rebalancing dictionary —
		// even ones that latched rebalancing off — keep loading: a
		// migration may already be in flight when the latch is observed.
		h.router = d.Router()
	}
	return h
}

// RQStats returns a snapshot of the atomic cross-shard read counters.
// Safe to call while readers run (the snapshot is then approximate).
func (d *Dict) RQStats() RQStats {
	return RQStats{
		Attempts:    d.rqAttempts.Load(),
		Retries:     d.rqRetried.Load(),
		Escalations: d.rqEscalations.Load(),
	}
}

// overlap returns the inclusive shard index range a window [lo, hi)
// fans out to under r: the boundary shards for ordered routers, every
// shard for unordered ones (except single-key windows, which always
// have a unique owner).
func overlap(r Router, lo, hi uint64) (first, last int) {
	if r.Ordered() {
		return r.ShardFor(lo), r.ShardFor(hi - 1)
	}
	if hi-lo == 1 {
		s := r.ShardFor(lo)
		return s, s
	}
	return 0, r.NumShards() - 1
}

// readConsistent runs read — an idempotent function reading the shards
// overlapping [lo, hi) under the supplied router — inside the
// sample/read/validate loop, retrying until no update invalidated the
// window. Each attempt reloads the routing table, and fails if the
// table was swapped after the samples were taken, so a migrated key
// range can never be read through stale routing. After d.rqRetries
// failed attempts it escalates: it takes the migration lock (when the
// dictionary rebalances) and arrives on the overlapping shards' quiesce
// gates, so new update operations and migrations wait while the
// finitely many updates already in flight drain, and the loop
// terminates. samples is caller scratch with capacity NumShards.
func (d *Dict) readConsistent(lo, hi uint64, samples []engine.MonitorSample, read func(r Router, first, last int)) {
	try := func() bool {
		d.rqAttempts.Add(1)
		rt := d.rt.Load()
		r := rt.r
		first, last := overlap(r, lo, hi)
		samples = samples[:0]
		for s := first; s <= last; s++ {
			smp, ok := d.mons[s].Sample()
			if !ok {
				return false // an update or migration is mid-flight
			}
			samples = append(samples, smp)
		}
		if d.rt.Load() != rt {
			return false // routing table swapped after sampling
		}
		read(r, first, last)
		for s := first; s <= last; s++ {
			if !d.mons[s].Validate(samples[s-first]) {
				return false
			}
		}
		return true
	}
	for attempt := 0; attempt < d.rqRetries; attempt++ {
		if try() {
			return
		}
		d.rqRetried.Add(1)
	}
	d.rqEscalations.Add(1)
	// Hold the migration lock while escalated: migrations bypass the
	// quiesce gates (they hold them), so without this a migration stream
	// could keep invalidating a gated reader forever. Rebalance checks
	// only TryLock, so updaters never block on an escalated reader here.
	if rb := d.reb; rb != nil {
		rb.mu.Lock()
		defer rb.mu.Unlock()
	}
	// With migrations excluded the routing table is stable; quiesce the
	// overlapping shards. Quiesce now, release via defer: if read()
	// panics (it runs an arbitrary inner dictionary) and the caller
	// recovers, held gates must not leak — they would park every future
	// update forever.
	first, last := overlap(d.Router(), lo, hi)
	for s := first; s <= last; s++ {
		defer d.mons[s].Quiesce()()
		if d.obsRec != nil {
			d.obsRec.RareEvent(obs.EvQuiesce, 0, htm.CauseNone, uint64(s), 0)
		}
	}
	// Quiesce-fault seam: the escalated reader holds every overlapping
	// shard's gate; an injected stall parks those shards' updates.
	d.faults.Hit(fault.PointQuiesce)
	for !try() {
		d.rqRetried.Add(1)
	}
}

// KeySum returns the sum and count of keys across all shards.
//
// Consistency: with Config.Atomic (or Config.Rebalance) the result is a
// consistent cut — the sum and count of the keys present at one instant
// during the call, as if taken at a single linearization point — and
// KeySum may run concurrently with updates and migrations. Without
// either it inherits the inner dictionaries' quiescent-only contract:
// each shard is summed at a different time, and a shard's walk may
// itself race updaters.
func (d *Dict) KeySum() (sum, count uint64) {
	read := func() {
		sum, count = 0, 0
		for _, s := range d.shards {
			ss, sc := s.KeySum()
			sum += ss
			count += sc
		}
	}
	if d.mons == nil {
		read()
		return sum, count
	}
	samples := make([]engine.MonitorSample, 0, len(d.shards))
	d.readConsistent(0, maxKeySpan, samples, func(Router, int, int) { read() })
	return sum, count
}

// OpStats aggregates per-path operation counts across shards (shards
// whose inner dictionary exposes no statistics contribute zero).
func (d *Dict) OpStats() engine.OpStats {
	var agg engine.OpStats
	for _, s := range d.shards {
		if sp, ok := s.(statsSource); ok {
			agg.Merge(sp.OpStats())
		}
	}
	return agg
}

// HTMStats aggregates transaction commit/abort counts across shards.
func (d *Dict) HTMStats() htm.Stats {
	var agg htm.Stats
	for _, s := range d.shards {
		if sp, ok := s.(statsSource); ok {
			agg.Merge(sp.HTMStats())
		}
	}
	return agg
}

// CheckPartition verifies the partition invariant: every key stored in
// shard i is routed to shard i by the current routing table. Quiescent
// use only.
func (d *Dict) CheckPartition() error {
	d.checkMu.Lock()
	defer d.checkMu.Unlock()
	if d.checkHandles == nil {
		d.checkHandles = make([]dict.Handle, len(d.shards))
		for i, s := range d.shards {
			d.checkHandles[i] = s.NewHandle()
		}
	}
	r := d.Router()
	for i := range d.shards {
		pairs := d.checkHandles[i].RangeQuery(0, maxKeySpan, nil)
		for _, kv := range pairs {
			if owner := r.ShardFor(kv.Key); owner != i {
				lo, hi := r.Bounds(i)
				return fmt.Errorf("shard %d holds key %d owned by shard %d (bounds [%d,%d))",
					i, kv.Key, owner, lo, hi)
			}
		}
	}
	return nil
}

// handle is a per-goroutine handle spanning all shards.
type handle struct {
	d       *Dict
	hs      []dict.Handle
	samples []engine.MonitorSample // scratch for atomic fan-out validation

	// router caches the routing table when the dictionary can never
	// swap it (no rebalancer), so the static point-op paths pay no
	// atomic load at all; nil on a rebalancing dictionary, whose paths
	// must observe table swaps and load the published pointer per op.
	router Router

	// admit marks that this handle performs shard-level monitor
	// admission for updates (rebalancing dictionaries; see NewHandle).
	admit bool
	// sinceCheck counts point operations since the last rebalance
	// evaluation this handle triggered (unused unless rebalancing).
	sinceCheck int

	// gidx and buckets are group-execution scratch (see ExecGroup).
	gidx    []int
	buckets [][]int
}

// Help fans a help attempt across every shard's handle (dict.Helper):
// each shard is an independent engine with its own announcement slot,
// so a dead owner may be parked on any of them. Returns true if any
// shard's announced operation was helped.
func (h *handle) Help() bool {
	helped := false
	for _, ih := range h.hs {
		if hh, ok := ih.(dict.Helper); ok && hh.Help() {
			helped = true
		}
	}
	return helped
}

// curRouter returns the routing table for a non-admitting operation:
// the handle-cached table when the dictionary can never swap it, the
// published pointer otherwise.
func (h *handle) curRouter() Router {
	if h.router != nil {
		return h.router
	}
	return h.d.Router()
}

// routeUpdate returns the shard handle owning key for an update. On a
// rebalancing dictionary (h.admit) it additionally admits the
// operation on the shard's monitor — release must then be called when
// the operation completes — and re-routes if a migration swapped the
// table between routing and admission, so the operation can never run
// against a shard that no longer owns its key.
func (h *handle) routeUpdate(key uint64) (target dict.Handle, release func()) {
	d := h.d
	if !h.admit {
		return h.hs[h.curRouter().ShardFor(key)], nil
	}
	for {
		rt := d.rt.Load()
		s := rt.r.ShardFor(key)
		mon := d.mons[s]
		mon.Enter()
		if d.rt.Load() == rt {
			return h.hs[s], mon.Exit
		}
		mon.Exit() // migrated under us: re-route against the new table
	}
}

// afterPointOp triggers a rebalance evaluation every CheckOps point
// operations on a rebalancing dictionary.
func (h *handle) afterPointOp() {
	rb := h.d.reb
	if rb == nil {
		return
	}
	h.sinceCheck++
	if h.sinceCheck >= rb.cfg.CheckOps {
		h.sinceCheck = 0
		h.d.maybeRebalance()
	}
}

func (h *handle) Insert(key, val uint64) (old uint64, existed bool) {
	target, release := h.routeUpdate(key)
	old, existed = target.Insert(key, val)
	if release != nil {
		release()
	}
	h.afterPointOp()
	return old, existed
}

func (h *handle) Delete(key uint64) (old uint64, existed bool) {
	target, release := h.routeUpdate(key)
	old, existed = target.Delete(key)
	if release != nil {
		release()
	}
	h.afterPointOp()
	return old, existed
}

// Search routes to the owning shard. On a rebalancing dictionary a hit
// is always linearizable (at the instant the routing table was loaded,
// the routed shard held the authoritative copy, and a migration keeps
// the moved keys present in the donor until after the table swap), but
// a miss could be stale: a migration completing between the table load
// and the shard read may have moved the key to a shard this search
// never visited. A miss therefore revalidates the table and re-routes
// if it changed — searches stay gate-free and pay only one extra
// atomic load on the miss path.
func (h *handle) Search(key uint64) (val uint64, found bool) {
	d := h.d
	if !h.admit {
		return h.hs[h.curRouter().ShardFor(key)].Search(key)
	}
	for {
		rt := d.rt.Load()
		val, found = h.hs[rt.r.ShardFor(key)].Search(key)
		if found || d.rt.Load() == rt {
			return val, found
		}
		// Miss under a routing change: retry against the new table.
	}
}

// readShards appends the pairs of [lo, hi) from shards first..last to
// out. Under an unordered router the concatenation interleaves shard
// outputs, so the appended suffix is merge-sorted before returning.
func (h *handle) readShards(r Router, first, last int, lo, hi uint64, out []dict.KV) []dict.KV {
	base := len(out)
	for s := first; s <= last; s++ {
		out = h.hs[s].RangeQuery(lo, hi, out)
	}
	if !r.Ordered() && last > first {
		seg := out[base:]
		sort.Slice(seg, func(i, j int) bool { return seg[i].Key < seg[j].Key })
	}
	return out
}

// RangeQuery fans out to the shards overlapping [lo, hi). Under range
// routing each shard filters to its own keys and the partition is
// contiguous, so handing every shard the full interval and
// concatenating in partition order preserves global ascending key
// order; under hash routing all shards are read and the results
// merge-sorted. With Config.Atomic (or Config.Rebalance) a fan-out is
// additionally wrapped in the sample/read/validate loop, making the
// result a consistent cut; on a non-rebalancing dictionary a window
// inside a single shard is atomic either way and skips the loop (with
// rebalancing even single-shard windows validate, because a concurrent
// migration may be moving the window's keys between shards).
func (h *handle) RangeQuery(lo, hi uint64, out []dict.KV) []dict.KV {
	if hi <= lo {
		return out
	}
	d := h.d
	if d.mons == nil {
		r := h.curRouter()
		first, last := overlap(r, lo, hi)
		return h.readShards(r, first, last, lo, hi, out)
	}
	if d.reb == nil {
		r := h.curRouter()
		if first, last := overlap(r, lo, hi); first == last {
			return h.readShards(r, first, last, lo, hi, out)
		}
	}
	base := len(out)
	d.readConsistent(lo, hi, h.samples[:0], func(r Router, first, last int) {
		out = out[:base]
		out = h.readShards(r, first, last, lo, hi, out)
	})
	return out
}
