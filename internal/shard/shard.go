// Package shard implements a horizontally partitioned ordered
// dictionary: the key space is split into N contiguous ranges, each
// served by an independent inner dictionary (in this repository, a
// template tree with its own engine, HTM context, and fallback
// indicator). Point operations route to the owning shard; range queries
// fan out to the overlapping shards and concatenate the per-shard
// results, which — because the partition is contiguous and each shard
// returns its pairs in ascending key order — yields a globally
// key-ordered result without a merge step.
//
// Sharding is the first scaling lever on top of Brown's template
// (PODC 2017): each tree is self-contained, so partitioning multiplies
// the fallback indicators and transactional conflict domains, and
// update-heavy workloads that serialize on one tree's contended paths
// spread across N of them.
//
// Consistency: point operations are linearizable exactly as the inner
// dictionaries are (each key lives in exactly one shard). A range query
// that spans shards is atomic per shard but not across shards — it
// observes each overlapped shard at a (possibly different) point in
// time, in ascending key order. KeySum retains its quiescent-only
// contract.
package shard

import (
	"fmt"
	"sync"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
)

// DefaultShards is the shard count when Config.Shards is zero.
const DefaultShards = 8

// Config describes a sharded dictionary.
type Config struct {
	// Shards is the number of partitions (default DefaultShards).
	Shards int
	// KeySpan is the exclusive upper bound of the client key range the
	// partition is balanced over (default dict.MaxKey+1). Keys at or
	// above KeySpan are still legal: they route to the last shard, which
	// owns everything from its lower bound upward.
	KeySpan uint64
	// New constructs the inner dictionary for shard i. Each call must
	// return a fresh, independent instance.
	New func(i int) dict.Dict
}

// statsSource matches the data structures that expose engine and HTM
// statistics (workload.StatsProvider, without the import).
type statsSource interface {
	OpStats() engine.OpStats
	HTMStats() htm.Stats
}

// Dict is a sharded ordered dictionary. It implements dict.Dict.
type Dict struct {
	shards []dict.Dict
	width  uint64

	// checkHandles are reserved for CheckPartition: handle registration
	// is permanent in the inner trees' engines, so a quiescent checker
	// must reuse one handle per shard rather than register new ones on
	// every call. checkMu serializes checkers (handles must not be used
	// by two goroutines at once, even quiescent ones).
	checkMu      sync.Mutex
	checkHandles []dict.Handle
}

// New builds a sharded dictionary from cfg.
func New(cfg Config) (*Dict, error) {
	n := cfg.Shards
	if n == 0 {
		n = DefaultShards
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", n)
	}
	if cfg.New == nil {
		return nil, fmt.Errorf("shard: nil constructor")
	}
	span := cfg.KeySpan
	if span == 0 {
		span = dict.MaxKey + 1
	}
	d := &Dict{
		shards: make([]dict.Dict, n),
		// Ceiling division so n*width covers the span; the last shard
		// additionally owns [span, ∞) via routing clamp.
		width: (span-1)/uint64(n) + 1,
	}
	for i := range d.shards {
		d.shards[i] = cfg.New(i)
	}
	return d, nil
}

// NumShards returns the number of partitions.
func (d *Dict) NumShards() int { return len(d.shards) }

// Shard returns the inner dictionary serving partition i.
func (d *Dict) Shard(i int) dict.Dict { return d.shards[i] }

// ShardFor returns the index of the partition owning key.
func (d *Dict) ShardFor(key uint64) int {
	i := key / d.width
	if i >= uint64(len(d.shards)) {
		return len(d.shards) - 1 // keys beyond KeySpan belong to the last shard
	}
	return int(i)
}

// Bounds returns the key range [lo, hi) owned by partition i; the last
// partition's hi is ^uint64(0) (it owns everything upward).
func (d *Dict) Bounds(i int) (lo, hi uint64) {
	lo = uint64(i) * d.width
	if i == len(d.shards)-1 {
		return lo, ^uint64(0)
	}
	return lo, lo + d.width
}

// NewHandle registers a per-goroutine handle on every shard.
func (d *Dict) NewHandle() dict.Handle {
	hs := make([]dict.Handle, len(d.shards))
	for i, s := range d.shards {
		hs[i] = s.NewHandle()
	}
	return &handle{d: d, hs: hs}
}

// KeySum returns the sum and count of keys across all shards.
// Quiescent use only, like the inner dictionaries.
func (d *Dict) KeySum() (sum, count uint64) {
	for _, s := range d.shards {
		ss, sc := s.KeySum()
		sum += ss
		count += sc
	}
	return sum, count
}

// OpStats aggregates per-path operation counts across shards (shards
// whose inner dictionary exposes no statistics contribute zero).
func (d *Dict) OpStats() engine.OpStats {
	var agg engine.OpStats
	for _, s := range d.shards {
		if sp, ok := s.(statsSource); ok {
			os := sp.OpStats()
			agg.Fast += os.Fast
			agg.Middle += os.Middle
			agg.Fallback += os.Fallback
		}
	}
	return agg
}

// HTMStats aggregates transaction commit/abort counts across shards.
func (d *Dict) HTMStats() htm.Stats {
	var agg htm.Stats
	for _, s := range d.shards {
		if sp, ok := s.(statsSource); ok {
			agg.Merge(sp.HTMStats())
		}
	}
	return agg
}

// CheckPartition verifies the partition invariant: every key stored in
// shard i lies within Bounds(i). Quiescent use only.
func (d *Dict) CheckPartition() error {
	d.checkMu.Lock()
	defer d.checkMu.Unlock()
	if d.checkHandles == nil {
		d.checkHandles = make([]dict.Handle, len(d.shards))
		for i, s := range d.shards {
			d.checkHandles[i] = s.NewHandle()
		}
	}
	for i := range d.shards {
		lo, hi := d.Bounds(i)
		pairs := d.checkHandles[i].RangeQuery(0, dict.MaxKey+1, nil)
		for _, kv := range pairs {
			if kv.Key < lo || (kv.Key >= hi && i != len(d.shards)-1) {
				return fmt.Errorf("shard %d holds key %d outside its range [%d,%d)",
					i, kv.Key, lo, hi)
			}
		}
	}
	return nil
}

// handle is a per-goroutine handle spanning all shards.
type handle struct {
	d  *Dict
	hs []dict.Handle
}

func (h *handle) Insert(key, val uint64) (old uint64, existed bool) {
	return h.hs[h.d.ShardFor(key)].Insert(key, val)
}

func (h *handle) Delete(key uint64) (old uint64, existed bool) {
	return h.hs[h.d.ShardFor(key)].Delete(key)
}

func (h *handle) Search(key uint64) (val uint64, found bool) {
	return h.hs[h.d.ShardFor(key)].Search(key)
}

// RangeQuery fans out to the shards overlapping [lo, hi) in partition
// order. Each shard filters to its own keys, so handing every shard the
// full interval and concatenating preserves global ascending key order.
func (h *handle) RangeQuery(lo, hi uint64, out []dict.KV) []dict.KV {
	if hi <= lo {
		return out
	}
	first := h.d.ShardFor(lo)
	last := h.d.ShardFor(hi - 1)
	for s := first; s <= last; s++ {
		out = h.hs[s].RangeQuery(lo, hi, out)
	}
	return out
}
