package shard

import (
	"testing"

	"htmtree/internal/bst"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
)

// TestRangeRouterMatchesLegacyRouting checks the uniform range router
// is bit-for-bit the pre-Router routing function: floor division by the
// ceiling width, clamped to the last shard.
func TestRangeRouterMatchesLegacyRouting(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		shards int
		span   uint64
	}{
		{1, 1000}, {2, 1000}, {7, 10000}, {8, 1 << 20}, {16, 4096}, {8, 10}, {3, 0},
	} {
		r, err := NewRangeRouter(tc.shards, tc.span)
		if err != nil {
			t.Fatal(err)
		}
		span := tc.span
		if span == 0 {
			span = dict.MaxKey + 1
		}
		width := (span-1)/uint64(tc.shards) + 1
		legacy := func(key uint64) int {
			i := key / width
			if i >= uint64(tc.shards) {
				return tc.shards - 1
			}
			return int(i)
		}
		probe := []uint64{0, 1, width - 1, width, width + 1, span - 1, span, span + 1,
			2*width - 1, 2 * width, dict.MaxKey, ^uint64(0)}
		for k := uint64(0); k < 3000; k++ {
			probe = append(probe, k*(span/3000+1))
		}
		for _, k := range probe {
			if got, want := r.ShardFor(k), legacy(k); got != want {
				t.Fatalf("shards=%d span=%d: ShardFor(%d) = %d, legacy %d",
					tc.shards, tc.span, k, got, want)
			}
		}
		if !r.Ordered() {
			t.Fatal("range router must be ordered")
		}
	}
}

// TestMigratedRangeRouterRouting checks boundary-table routing (the
// binary-search path) against the boundaries themselves.
func TestMigratedRangeRouterRouting(t *testing.T) {
	t.Parallel()
	base, err := newUniformRangeRouter(4, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Move shard 1's bound down and shard 3's up: bounds 0,50,200,350.
	r := base.withBoundary(1, 50).withBoundary(3, 350)
	wantLo := []uint64{0, 50, 200, 350}
	for i, lo := range wantLo {
		blo, bhi := r.Bounds(i)
		if blo != lo {
			t.Fatalf("Bounds(%d) lo = %d, want %d", i, blo, lo)
		}
		if i < 3 && bhi != wantLo[i+1] {
			t.Fatalf("Bounds(%d) hi = %d, want %d", i, bhi, wantLo[i+1])
		}
	}
	if _, hi := r.Bounds(3); hi != ^uint64(0) {
		t.Fatalf("last bound hi = %d, want ^0", hi)
	}
	for k := uint64(0); k <= 1000; k++ {
		want := 0
		for i, lo := range wantLo {
			if k >= lo {
				want = i
			}
		}
		if got := r.ShardFor(k); got != want {
			t.Fatalf("ShardFor(%d) = %d, want %d", k, got, want)
		}
	}
}

// TestHashRouterCoverageAndBalance checks the hash router assigns every
// key to a valid shard and spreads a contiguous key block evenly (every
// shard within 2x of the uniform share).
func TestHashRouterCoverageAndBalance(t *testing.T) {
	t.Parallel()
	const shards, keys = 8, 1 << 14
	r, err := NewHashRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ordered() {
		t.Fatal("hash router must be unordered")
	}
	counts := make([]int, shards)
	for k := uint64(1); k <= keys; k++ {
		i := r.ShardFor(k)
		if i < 0 || i >= shards {
			t.Fatalf("ShardFor(%d) = %d out of range", k, i)
		}
		counts[i]++
	}
	for i, c := range counts {
		if c < keys/shards/2 || c > keys/shards*2 {
			t.Fatalf("shard %d holds %d of %d sequential keys: hash not spreading", i, c, keys)
		}
	}
}

func newAdaptiveShardedBST(t *testing.T, shards int, span uint64, reb RebalanceConfig) *Dict {
	t.Helper()
	d, err := New(Config{
		Shards:    shards,
		KeySpan:   span,
		Atomic:    true,
		Rebalance: &reb,
		New: func(_ int, mon *engine.UpdateMonitor) dict.Dict {
			return bst.New(bst.Config{
				Algorithm: engine.AlgThreePath,
				Engine:    engine.Config{Monitor: mon},
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRebalanceMigratesHotBoundary hammers one shard's key range on an
// adaptive dictionary and checks that (a) migrations happen, (b) the
// hot shard's span shrinks, (c) every key remains reachable and the
// partition invariant holds afterwards.
func TestRebalanceMigratesHotBoundary(t *testing.T) {
	t.Parallel()
	const (
		shards = 4
		span   = 4000 // width 1000
	)
	d := newAdaptiveShardedBST(t, shards, span, RebalanceConfig{
		CheckOps: 64,
		Ratio:    1.1,
	})
	h := d.NewHandle()
	present := make(map[uint64]uint64)
	for k := uint64(1); k <= span; k += 7 { // spread keys over all shards
		h.Insert(k, k*3)
		present[k] = k * 3
	}
	origLo, origHi := d.Bounds(0)

	// Hot loop confined to shard 0's original range.
	for i := 0; i < 40000; i++ {
		k := uint64(i%997) + 1
		if i%2 == 0 {
			h.Insert(k, k*3)
			present[k] = k * 3
		} else {
			if _, existed := h.Delete(k); existed {
				delete(present, k)
			}
		}
	}

	st := d.RebalanceStats()
	if st.Migrations == 0 {
		t.Fatalf("no migrations under a fully skewed load: %+v", st)
	}
	lo, hi := d.Bounds(0)
	if lo != origLo {
		t.Fatalf("shard 0 lower bound moved: %d -> %d", origLo, lo)
	}
	if hi >= origHi {
		t.Fatalf("hot shard 0 span did not shrink: [%d,%d) -> [%d,%d), stats %+v",
			origLo, origHi, lo, hi, st)
	}
	// Every key must still be routed to a shard that has it.
	for k, v := range present {
		got, ok := h.Search(k)
		if !ok || got != v {
			t.Fatalf("Search(%d) = (%d,%v) after migrations, want (%d,true)", k, got, ok, v)
		}
	}
	out := h.RangeQuery(1, span+1, nil)
	if len(out) != len(present) {
		t.Fatalf("RangeQuery returned %d pairs, want %d", len(out), len(present))
	}
	for i, kv := range out {
		if i > 0 && out[i-1].Key >= kv.Key {
			t.Fatalf("fan-out unsorted at %d after migrations", i)
		}
		if v, ok := present[kv.Key]; !ok || v != kv.Val {
			t.Fatalf("RangeQuery pair (%d,%d) unexpected", kv.Key, kv.Val)
		}
	}
	var wantSum uint64
	for k := range present {
		wantSum += k
	}
	sum, count := d.KeySum()
	if count != uint64(len(present)) || sum != wantSum {
		t.Fatalf("KeySum = (%d,%d), want (%d,%d)", sum, count, wantSum, len(present))
	}
	if err := d.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

// TestHashRouterDict runs the basic dictionary operations over a
// hash-routed dictionary: point ops route consistently and fan-out
// range queries come back complete and sorted despite interleaved
// shard ownership.
func TestHashRouterDict(t *testing.T) {
	t.Parallel()
	r, err := NewHashRouter(8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Shards: 8,
		Router: r,
		New: func(int, *engine.UpdateMonitor) dict.Dict {
			return bst.New(bst.Config{Algorithm: engine.AlgThreePath})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := d.NewHandle()
	const keys = 2048
	for k := uint64(1); k <= keys; k++ {
		h.Insert(k, k+5)
	}
	for k := uint64(1); k <= keys; k += 97 {
		if v, ok := h.Search(k); !ok || v != k+5 {
			t.Fatalf("Search(%d) = (%d,%v)", k, v, ok)
		}
	}
	out := h.RangeQuery(100, 1100, nil)
	if len(out) != 1000 {
		t.Fatalf("RQ[100,1100): %d pairs, want 1000", len(out))
	}
	for i, kv := range out {
		if kv.Key != 100+uint64(i) || kv.Val != kv.Key+5 {
			t.Fatalf("RQ[100,1100)[%d] = (%d,%d)", i, kv.Key, kv.Val)
		}
	}
	// Single-key windows route to exactly one shard and stay correct.
	if out := h.RangeQuery(500, 501, nil); len(out) != 1 || out[0].Key != 500 {
		t.Fatalf("single-key window = %v", out)
	}
	if err := d.CheckPartition(); err != nil {
		t.Fatal(err)
	}
	sum, count := d.KeySum()
	if count != keys || sum != keys*(keys+1)/2 {
		t.Fatalf("KeySum = (%d,%d)", sum, count)
	}
}
