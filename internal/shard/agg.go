package shard

import (
	"fmt"

	"htmtree/internal/dict"
)

// Aggregate fan-out: a cross-shard RangeAgg merges per-shard aggregate
// tuples under the same sample/read/validate protocol RangeQuery uses,
// so the merged tuple is a consistent cut. Because each shard answers
// from maintained subtree aggregates in O(log n) instead of walking
// the range, the window between sampling and validation shrinks from
// O(range) to O(log n) — which is what makes bounded-retry validation
// succeed at large ranges.

var _ dict.AggHandle = (*handle)(nil)

// RangeAgg returns the aggregate tuple (sum/count/min/max) of the keys
// in [lo, hi) across all overlapping shards.
//
// It requires the version-validated read protocol: a dictionary built
// without Config.Atomic (or Config.Rebalance, which implies it) cannot
// order the per-shard reads against concurrent updates, and a merged
// sum over torn per-shard tuples is silently wrong — unlike a torn
// RangeQuery, there is no per-key output to cross-check. Such
// dictionaries reject the query with an error instead.
func (h *handle) RangeAgg(lo, hi uint64) (dict.Agg, error) {
	agg := dict.Agg{Min: ^uint64(0), Max: 0}
	if hi <= lo {
		return agg, nil
	}
	d := h.d
	if d.mons == nil {
		return agg, fmt.Errorf(
			"shard: Config.Atomic = false (cross-shard aggregate queries merge per-shard tuples and would return torn sums; set Config.Atomic, or Config.Rebalance which implies it)")
	}
	var err error
	readAgg := func(r Router, first, last int) {
		agg = dict.Agg{Min: ^uint64(0), Max: 0}
		err = nil
		for s := first; s <= last; s++ {
			ah, ok := h.hs[s].(dict.AggHandle)
			if !ok {
				err = fmt.Errorf(
					"shard: Config.New built a %T for shard %d, which does not implement dict.AggHandle", h.hs[s], s)
				return
			}
			a, aerr := ah.RangeAgg(lo, hi)
			if aerr != nil {
				err = aerr
				return
			}
			agg.Merge(a)
		}
	}
	// A window inside a single shard is atomic on its own (the inner
	// query is one template operation) — unless a migration could be
	// moving its keys between shards mid-read.
	if d.reb == nil {
		r := h.curRouter()
		if first, last := overlap(r, lo, hi); first == last {
			readAgg(r, first, last)
			return agg, err
		}
	}
	d.readConsistent(lo, hi, h.samples[:0], readAgg)
	return agg, err
}
