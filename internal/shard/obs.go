package shard

import "htmtree/internal/obs"

// registerObs registers the shard layer's metric families: the
// cross-shard read validation outcomes and the rebalancer's migration
// counters. Like the engine's families they are read closures over the
// counters this layer already maintained for RQStats/RebalanceStats —
// scrapes read the same atomics the stats snapshots do.
func (d *Dict) registerObs(n *obs.Node) {
	n.Counter("htmtree_rq_attempts_total",
		"Atomic cross-shard read snapshot attempts (including each read's successful final attempt).",
		func(emit obs.Point) { emit(float64(d.rqAttempts.Load())) })
	n.Counter("htmtree_rq_retries_total",
		"Cross-shard read attempts invalidated by a concurrent update or migration.",
		func(emit obs.Point) { emit(float64(d.rqRetried.Load())) })
	n.Counter("htmtree_rq_escalations_total",
		"Cross-shard reads that exhausted the optimistic budget and quiesced their shards.",
		func(emit obs.Point) { emit(float64(d.rqEscalations.Load())) })
	n.Counter("htmtree_exec_groups_total",
		"Shard groups executed by the batch pipeline (one routing decision and monitor bracket each).",
		func(emit obs.Point) { emit(float64(d.batchGroups.Load())) })
	n.Counter("htmtree_exec_group_ops_total",
		"Point operations executed through shard groups.",
		func(emit obs.Point) { emit(float64(d.batchOps.Load())) })
	n.Counter("htmtree_exec_restarts_total",
		"Shard-group executions restarted because a migration moved the group's keys mid-flight.",
		func(emit obs.Point) { emit(float64(d.batchRestarts.Load())) })
	if rb := d.reb; rb != nil {
		n.Counter("htmtree_rebalance_checks_total",
			"Full-window rebalance imbalance evaluations.",
			func(emit obs.Point) { emit(float64(rb.checks.Load())) })
		n.Counter("htmtree_migrations_total",
			"Completed key-range migrations between neighbor shards.",
			func(emit obs.Point) { emit(float64(rb.migrations.Load())) })
		n.Counter("htmtree_migration_keys_total",
			"Keys moved by completed migrations.",
			func(emit obs.Point) { emit(float64(rb.keysMoved.Load())) })
	}
}
