package shard

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"htmtree/internal/dict"
	"htmtree/internal/fault"
	"htmtree/internal/htm"
	"htmtree/internal/obs"
)

// Rebalancing defaults.
const (
	// DefaultRebalanceCheckOps is the number of point operations a
	// handle performs between imbalance evaluations.
	DefaultRebalanceCheckOps = 1024
	// DefaultRebalanceRatio is the busiest-shard-to-mean operation ratio
	// that triggers a migration.
	DefaultRebalanceRatio = 1.5
	// DefaultRebalanceMoveFraction is the largest fraction of the donor
	// shard's key span handed to its neighbor per migration.
	DefaultRebalanceMoveFraction = 0.5
	// rebalanceCooldown is the number of full-window evaluations during
	// which the rebalancer refuses to reverse its previous migration.
	rebalanceCooldown = 8
	// rebalanceSettle is the number of full-window evaluations skipped
	// after every migration, so the next decision is made on a window
	// measured entirely under the new boundary.
	rebalanceSettle = 2
)

// RebalanceConfig enables live key-range rebalancing on a range-routed
// dictionary: per-shard operation counters (the engines' OpStats,
// which the shard layer already aggregates) are compared periodically,
// and when one shard is doing disproportionately many operations, a
// boundary slice of its key range migrates to a neighbor shard. The
// migration quiesces exactly the two affected shards via their update
// monitors, moves the keys, and publishes a new routing table, so point
// operations, RangeQuery, KeySum, CheckPartition and RQStats stay
// correct throughout (reads on a rebalancing dictionary always run the
// version-validation loop, as if Config.Atomic were set).
type RebalanceConfig struct {
	// CheckOps is the number of point operations a handle performs
	// between imbalance evaluations (default DefaultRebalanceCheckOps).
	CheckOps int
	// Ratio triggers a migration when the busiest shard performed more
	// than Ratio times the per-shard mean of the operations since the
	// last evaluation (default DefaultRebalanceRatio). Values in (0, 1]
	// trigger on any imbalance — useful for forcing migrations in tests.
	Ratio float64
	// MinShardOps is the minimum operation count the busiest shard must
	// have accumulated since the last evaluation before a migration
	// triggers, so idle dictionaries never migrate on noise (default:
	// CheckOps).
	MinShardOps uint64
	// MoveFraction is the fraction of the donor shard's key span handed
	// to its neighbor per migration, in (0, 1) (default
	// DefaultRebalanceMoveFraction).
	MoveFraction float64
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.CheckOps == 0 {
		c.CheckOps = DefaultRebalanceCheckOps
	}
	if c.Ratio == 0 {
		c.Ratio = DefaultRebalanceRatio
	}
	if c.MinShardOps == 0 {
		c.MinShardOps = uint64(c.CheckOps)
	}
	if c.MoveFraction == 0 {
		c.MoveFraction = DefaultRebalanceMoveFraction
	}
	return c
}

// validate reports the first invalid field, with the offending value.
func (c RebalanceConfig) validate() error {
	if c.CheckOps < 0 {
		return fmt.Errorf("shard: Config.Rebalance.CheckOps = %d (want >= 0; 0 selects the default %d)",
			c.CheckOps, DefaultRebalanceCheckOps)
	}
	if c.Ratio < 0 || math.IsNaN(c.Ratio) {
		return fmt.Errorf("shard: Config.Rebalance.Ratio = %v (want > 0; 0 selects the default %v)",
			c.Ratio, DefaultRebalanceRatio)
	}
	if c.MoveFraction < 0 || c.MoveFraction >= 1 || math.IsNaN(c.MoveFraction) {
		return fmt.Errorf("shard: Config.Rebalance.MoveFraction = %v (want in (0, 1); 0 selects the default %v)",
			c.MoveFraction, DefaultRebalanceMoveFraction)
	}
	return nil
}

// RebalanceStats counts rebalancer activity. All counters are zero when
// the dictionary was built without Config.Rebalance.
type RebalanceStats struct {
	// Checks counts imbalance evaluations.
	Checks uint64
	// Migrations counts boundary migrations performed.
	Migrations uint64
	// KeysMoved counts keys moved between shards across all migrations.
	KeysMoved uint64
}

// rebalancer holds the mutable state of live key-range rebalancing.
// mu serializes migrations (and is taken by escalated atomic readers,
// so a quiesced read can never be starved by a migration stream);
// handle op paths only TryLock it, so they never block on an evaluation
// already in progress.
type rebalancer struct {
	cfg RebalanceConfig

	mu      sync.Mutex
	lastOps []uint64      // per-shard OpStats totals at the last evaluation
	deltas  []uint64      // evaluation scratch: per-shard ops since last check
	handles []dict.Handle // lazily created gate-bypassing migration handles
	scratch []dict.KV     // moved-pair buffer, reused across migrations

	// Anti-ping-pong state: the routing-table entry the last migration
	// moved, its direction, and the full-window evaluations left during
	// which reversing that move is blocked. A hot slice handed to a
	// neighbor can make the neighbor the new maximum; without the
	// cooldown the slice would bounce between the two shards on every
	// window.
	lastBoundary int
	lastDir      int
	cooldown     int
	settle       int

	// disabled latches when an inner dictionary's handles cannot bypass
	// the quiesce gate (they don't implement SetGateBypass); migrating
	// through gated handles would self-deadlock, so rebalancing shuts
	// itself off instead.
	disabled atomic.Bool

	checks     atomic.Uint64
	migrations atomic.Uint64
	keysMoved  atomic.Uint64
}

// gateBypasser is the optional handle capability migration requires
// (implemented by the bst and abtree handles).
type gateBypasser interface {
	SetGateBypass(bool)
}

// RebalanceStats returns a snapshot of the rebalancer counters. Safe to
// call while operations run (the snapshot is then approximate).
func (d *Dict) RebalanceStats() RebalanceStats {
	rb := d.reb
	if rb == nil {
		return RebalanceStats{}
	}
	return RebalanceStats{
		Checks:     rb.checks.Load(),
		Migrations: rb.migrations.Load(),
		KeysMoved:  rb.keysMoved.Load(),
	}
}

// Rebalancing reports whether live key-range rebalancing is enabled.
func (d *Dict) Rebalancing() bool { return d.reb != nil }

// migHandle returns the gate-bypassing migration handle for shard i,
// creating it on first use (handle registration is permanent in the
// inner engines, so migration reuses one handle per shard). It returns
// nil — and latches the rebalancer off — when the inner dictionary does
// not support gate bypass. Callers hold rb.mu.
func (rb *rebalancer) migHandle(d *Dict, i int) dict.Handle {
	if rb.handles[i] == nil {
		h := d.shards[i].NewHandle()
		gb, ok := h.(gateBypasser)
		if !ok {
			rb.disabled.Store(true)
			return nil
		}
		gb.SetGateBypass(true)
		rb.handles[i] = h
	}
	return rb.handles[i]
}

// maybeRebalance evaluates shard load and migrates one boundary range
// if the imbalance threshold is crossed. Called from handle point-op
// paths every CheckOps operations; at most one evaluation runs at a
// time and contenders return immediately.
func (d *Dict) maybeRebalance() {
	rb := d.reb
	if rb == nil || rb.disabled.Load() {
		return
	}
	if !rb.mu.TryLock() {
		return
	}
	defer rb.mu.Unlock()

	// Per-shard operation deltas since the last evaluation, from the
	// engines' own completion counters. The measurement window
	// accumulates across calls until the busiest shard has at least
	// MinShardOps in it — resetting on every call would keep the window
	// near one handle's check cadence and starve the trigger when many
	// handles poll concurrently.
	n := len(d.shards)
	var total, maxDelta uint64
	for i, s := range d.shards {
		var tot uint64
		if sp, ok := s.(statsSource); ok {
			tot = sp.OpStats().Total()
		}
		delta := tot - rb.lastOps[i]
		rb.deltas[i] = delta
		total += delta
		if delta > maxDelta {
			maxDelta = delta
		}
	}
	// Judge only full windows: a tiny window's multinomial noise makes
	// max/mean ratios meaningless and would migrate on phantom skew.
	if maxDelta < rb.cfg.MinShardOps || total < uint64(rb.cfg.CheckOps)*uint64(n) {
		return // window still too small to judge: keep accumulating
	}
	rb.checks.Add(1)
	if rb.cooldown > 0 {
		rb.cooldown--
	}
	for i := range rb.lastOps {
		rb.lastOps[i] += rb.deltas[i]
	}
	if rb.settle > 0 {
		rb.settle--
		return // let the previous migration show up in a clean window
	}

	// A boundary move only transfers load between neighbors, so the
	// unit of decision is the adjacent pair: pick the pair with the
	// largest load gap whose heavier side exceeds Ratio times the
	// lighter (and carries enough traffic to judge). Repeated windows
	// cascade a hot head down the chain pair by pair; once every pair
	// is within Ratio, migration stops — even if the global max/mean
	// ratio stays high because single hot keys cannot be split further.
	donor, receiver := -1, -1
	var bestGap uint64
	for i := 0; i+1 < n; i++ {
		heavy, light := i, i+1
		if rb.deltas[heavy] < rb.deltas[light] {
			heavy, light = light, heavy
		}
		dh, dl := rb.deltas[heavy], rb.deltas[light]
		if dh < rb.cfg.MinShardOps || float64(dl)*rb.cfg.Ratio > float64(dh) {
			continue // too little traffic, or the pair is already balanced
		}
		if dh-dl < total/uint64(2*n) {
			continue // the gap is immaterial next to the mean shard load
		}
		if gap := dh - dl; gap > bestGap {
			donor, receiver, bestGap = heavy, light, gap
		}
	}
	if donor < 0 {
		return
	}

	// Geometry of the move: the donor sheds a slice of its span on the
	// receiver's side. The last shard's routable tail is open-ended; its
	// span is measured against the configured key span.
	r := d.Router().(*rangeRouter)
	dlo, dhi := r.Bounds(donor)
	effHi := dhi
	if donor == n-1 {
		if r.span <= dlo {
			return // the whole configured span already migrated away
		}
		effHi = r.span
	}
	if effHi <= dlo+1 {
		return // one-key span: nothing left to split
	}

	// Move-size policy: assuming load roughly uniform within the donor's
	// span, handing over a fraction f = (1 - recv/donor)/2 of it would
	// equalize the pair; cap at MoveFraction. Hot keys concentrated in
	// the moved slice make the step overshoot, which the cooldown below
	// keeps from turning into a boundary ping-pong.
	f := (1 - float64(rb.deltas[receiver])/float64(rb.deltas[donor])) / 2
	if f > rb.cfg.MoveFraction {
		f = rb.cfg.MoveFraction
	}
	moved := uint64(float64(effHi-dlo) * f)
	if moved == 0 {
		moved = 1
	}
	if moved >= effHi-dlo {
		moved = effHi - dlo - 1
	}

	var mlo, mhi uint64 // key range changing owner
	var newR *rangeRouter
	var boundary, dir int
	if receiver == donor-1 {
		// Donate the donor's lower slice: the donor's own bound moves up.
		mlo, mhi = dlo, dlo+moved
		newR = r.withBoundary(donor, mhi)
		boundary, dir = donor, +1
	} else {
		// Donate the donor's upper slice: the receiver's bound moves
		// down. For the last shard the donated slice keeps the open tail.
		mlo, mhi = effHi-moved, dhi
		newR = r.withBoundary(receiver, mlo)
		boundary, dir = receiver, -1
	}
	if rb.cooldown > 0 && boundary == rb.lastBoundary && dir == -rb.lastDir {
		return // would undo the previous migration: wait out the cooldown
	}
	rb.lastBoundary, rb.lastDir = boundary, dir
	rb.cooldown, rb.settle = rebalanceCooldown, rebalanceSettle
	d.migrate(donor, receiver, mlo, mhi, newR)
}

// migrate moves the keys of [mlo, mhi) from donor to receiver and
// publishes newR as the routing table. The protocol (rb.mu held):
//
//  1. Quiesce both shards' update monitors: new updates wait at engine
//     entry and every in-flight update drains, so the migrator has
//     exclusive update access to exactly the two affected shards —
//     all other shards keep running untouched.
//  2. Bracket both monitors for the whole move, so an optimistic
//     cross-shard reader whose window overlaps either shard observes an
//     update in flight and retries until the migration is done.
//  3. Insert every moved pair into the receiver, then swap the routing
//     table, then delete the pairs from the donor — in that order a
//     concurrent point Search (reads are never gated) finds its key
//     whichever table it routed by.
//
// The migrator's own inserts and deletes run through gate-bypassing
// handles (step 1 holds the very gates they would otherwise wait on)
// but still publish their commits, so validation catches them.
func (d *Dict) migrate(donor, receiver int, mlo, mhi uint64, newR *rangeRouter) {
	rb := d.reb
	hd := rb.migHandle(d, donor)
	hr := rb.migHandle(d, receiver)
	if hd == nil || hr == nil {
		return // inner dictionary cannot bypass the gate; rebalancing latched off
	}

	releaseD := d.mons[donor].Quiesce()
	defer releaseD()
	releaseR := d.mons[receiver].Quiesce()
	defer releaseR()
	doneD := d.mons[donor].Bracket()
	defer doneD()
	doneR := d.mons[receiver].Bracket()
	defer doneR()
	if d.obsRec != nil {
		d.obsRec.RareEvent(obs.EvMigrateBegin, 0, htm.CauseNone,
			uint64(donor), uint64(receiver))
	}
	// Quiesce-fault seam: both monitors' gates are held — every update
	// on the donor and receiver shards is parked at its gate check for
	// the duration of an injected stall.
	d.faults.Hit(fault.PointQuiesce)

	rb.scratch = hd.RangeQuery(mlo, mhi, rb.scratch[:0])
	for _, kv := range rb.scratch {
		hr.Insert(kv.Key, kv.Val)
	}
	// Migration-fault seam: the moved slice exists on both shards and
	// the routing table still sends readers to the donor.
	d.faults.Hit(fault.PointMigrateSwap)
	d.rt.Store(&routing{r: newR})
	// Migration-fault seam: the table now routes to the receiver while
	// the donor still holds the (stale) slice pending deletion.
	d.faults.Hit(fault.PointMigrateDelete)
	for _, kv := range rb.scratch {
		hd.Delete(kv.Key)
	}

	rb.migrations.Add(1)
	rb.keysMoved.Add(uint64(len(rb.scratch)))
	if d.obsRec != nil {
		d.obsRec.RareEvent(obs.EvMigrateEnd, 0, htm.CauseNone,
			uint64(len(rb.scratch)), 0)
	}
}
