package shard

import (
	"sort"
	"testing"

	"htmtree/internal/bst"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
)

// sortedOps builds a stable-key-sorted batch the way the batching
// layer would, from (kind, key, val) triples in enqueue order.
func sortedOps(tr []dict.BatchOp) []dict.BatchOp {
	ops := append([]dict.BatchOp(nil), tr...)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
	return ops
}

// TestExecGroupMatchesPerOpDispatch runs the same operation stream
// through ExecGroup and through plain per-op dispatch on a twin
// dictionary and requires identical results and final content.
func TestExecGroupMatchesPerOpDispatch(t *testing.T) {
	t.Parallel()
	const span = 1 << 10
	batched := newShardedBST(t, 8, span)
	plain := newShardedBST(t, 8, span)
	bh := batched.NewHandle().(*handle)
	ph := plain.NewHandle()

	var stream []dict.BatchOp
	for i := 0; i < 500; i++ {
		k := uint64((i*293)%span) + 1
		switch i % 5 {
		case 0, 1:
			stream = append(stream, dict.BatchOp{Kind: dict.OpInsert, Key: k, Val: k * 3})
		case 2:
			stream = append(stream, dict.BatchOp{Kind: dict.OpDelete, Key: k})
		default:
			stream = append(stream, dict.BatchOp{Kind: dict.OpSearch, Key: k})
		}
	}
	for base := 0; base < len(stream); base += 64 {
		end := base + 64
		if end > len(stream) {
			end = len(stream)
		}
		group := sortedOps(stream[base:end])
		bh.ExecGroup(group)
		// The plain twin executes the same sorted order, so per-op
		// results must agree exactly.
		for i := range group {
			var want dict.BatchOp
			want = group[i]
			want.Out, want.OutOK = 0, false
			want.Exec(ph)
			if want.Out != group[i].Out || want.OutOK != group[i].OutOK {
				t.Fatalf("op %d (%+v): group result (%d,%v), per-op (%d,%v)",
					base+i, group[i], group[i].Out, group[i].OutOK, want.Out, want.OutOK)
			}
		}
	}
	bs, bc := batched.KeySum()
	ps, pc := plain.KeySum()
	if bs != ps || bc != pc {
		t.Fatalf("KeySum diverged: batched (%d,%d), plain (%d,%d)", bs, bc, ps, pc)
	}
	if err := batched.CheckPartition(); err != nil {
		t.Fatal(err)
	}
	st := batched.BatchStats()
	if st.Ops != 500 || st.Groups == 0 {
		t.Fatalf("BatchStats = %+v, want 500 ops in >0 groups", st)
	}
	// Ordered segmentation on a static router: one routing decision per
	// group and no monitor brackets (no rebalancer).
	if st.RouterLookups != st.Groups {
		t.Fatalf("ordered segmentation took %d lookups for %d groups", st.RouterLookups, st.Groups)
	}
	if st.MonitorEnters != 0 || st.Restarts != 0 {
		t.Fatalf("static dictionary bracketed monitors: %+v", st)
	}
}

// TestExecGroupHashRouter checks group execution under an unordered
// router: buckets by owner, per-op routing, per-key order preserved.
func TestExecGroupHashRouter(t *testing.T) {
	t.Parallel()
	r, err := NewHashRouter(8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Shards: 8,
		Router: r,
		New: func(int, *engine.UpdateMonitor) dict.Dict {
			return bst.New(bst.Config{Algorithm: engine.AlgThreePath})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := d.NewHandle().(*handle)
	// Insert then delete the same key inside one group: per-key order
	// must survive bucketing, so the delete sees the insert.
	ops := sortedOps([]dict.BatchOp{
		{Kind: dict.OpInsert, Key: 10, Val: 100},
		{Kind: dict.OpDelete, Key: 10},
		{Kind: dict.OpInsert, Key: 11, Val: 110},
		{Kind: dict.OpSearch, Key: 11},
	})
	h.ExecGroup(ops)
	for _, op := range ops {
		switch {
		case op.Kind == dict.OpDelete && (!op.OutOK || op.Out != 100):
			t.Fatalf("delete after same-group insert: (%d,%v)", op.Out, op.OutOK)
		case op.Kind == dict.OpSearch && (!op.OutOK || op.Out != 110):
			t.Fatalf("search after same-group insert: (%d,%v)", op.Out, op.OutOK)
		}
	}
	st := d.BatchStats()
	if st.Ops != 4 || st.RouterLookups != 4 {
		t.Fatalf("hash grouping stats = %+v, want per-op lookups", st)
	}
	if err := d.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

// TestStaticHandleCachesRouting proves the satellite fix: on a
// dictionary without a rebalancer, a handle routes through a pointer
// cached at registration and never reloads the published table — the
// per-op atomic load is gone. The proof is behavioral: swap the
// published table out from under the handle (illegal in production —
// only migrations swap, and only on rebalancing dictionaries) and
// observe the handle still routing by the table it cached.
func TestStaticHandleCachesRouting(t *testing.T) {
	t.Parallel()
	const span = 1 << 10
	d := newShardedBST(t, 4, span)
	h := d.NewHandle().(*handle)
	if h.admit {
		t.Fatal("static dictionary built an admitting handle")
	}
	if h.router == nil {
		t.Fatal("static handle did not cache the routing table")
	}

	// Key 1 lives in shard 0 under the cached table. Publish a rotated
	// table that would route it to shard 3; the handle must not notice.
	h.Insert(1, 11)
	rot, err := NewRangeRouter(4, span)
	if err != nil {
		t.Fatal(err)
	}
	rotated := rot.(*rangeRouter).withBoundary(1, 1) // shard 1 owns [1, …): key 1 moves owners
	d.rt.Store(&routing{r: rotated})
	if got := d.ShardFor(1); got != 1 {
		t.Fatalf("published table routes key 1 to shard %d, want 1 (swap had no effect)", got)
	}
	if v, ok := h.Search(1); !ok || v != 11 {
		t.Fatalf("handle consulted the swapped table: Search(1) = (%d,%v)", v, ok)
	}
	if _, ok := h.Delete(1); !ok {
		t.Fatal("handle consulted the swapped table on the update path")
	}

	// A rebalancing dictionary's handles must keep loading the
	// published pointer (migrations swap it live).
	rd, err := New(Config{
		Shards:    4,
		KeySpan:   span,
		Rebalance: &RebalanceConfig{},
		New: func(_ int, mon *engine.UpdateMonitor) dict.Dict {
			return bst.New(bst.Config{Algorithm: engine.AlgThreePath, Engine: engine.Config{Monitor: mon}})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rh := rd.NewHandle().(*handle)
	if !rh.admit || rh.router != nil {
		t.Fatalf("rebalancing handle admit=%v cache=%v, want admitting and uncached", rh.admit, rh.router)
	}
}

// BenchmarkPointOpRouting is the regression benchmark for the cached
// routing table: static routes through a handle-cached pointer, live
// through the published atomic (what every op paid before the fix).
func BenchmarkPointOpRouting(b *testing.B) {
	const span = 1 << 20
	mk := func(reb *RebalanceConfig) *Dict {
		d, err := New(Config{
			Shards:    8,
			KeySpan:   span,
			Rebalance: reb,
			New: func(_ int, mon *engine.UpdateMonitor) dict.Dict {
				return bst.New(bst.Config{Algorithm: engine.AlgThreePath, Engine: engine.Config{Monitor: mon}})
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	b.Run("static-cached", func(b *testing.B) {
		h := mk(nil).NewHandle()
		for i := 0; i < b.N; i++ {
			h.Search(uint64(i)%span + 1)
		}
	})
	b.Run("live-atomic", func(b *testing.B) {
		// Huge CheckOps: the rebalancer never evaluates, so the
		// difference measured is exactly the admission + rt.Load cost.
		h := mk(&RebalanceConfig{CheckOps: 1 << 30}).NewHandle()
		for i := 0; i < b.N; i++ {
			h.Search(uint64(i)%span + 1)
		}
	})
}
