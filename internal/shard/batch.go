package shard

import (
	"htmtree/internal/dict"
)

// BatchStats counts group-execution activity (dict.GroupExecutor calls
// from the batching layer). The amortization the batch subsystem exists
// for is visible directly: Ops/RouterLookups and Ops/MonitorEnters are
// the factors by which batching cut the per-operation routing and
// admission overhead — an unbatched stream pays one router lookup (and,
// on a rebalancing dictionary, one monitor bracket) per op, a batched
// stream pays one per shard-group.
type BatchStats struct {
	// Ops counts point operations executed through batched groups,
	// Groups the per-shard groups they were executed as (Ops/Groups is
	// the realized locality).
	Ops, Groups uint64
	// RouterLookups counts routing decisions taken while segmenting
	// groups: one ShardFor+Bounds per group under ordered routing, one
	// ShardFor per op under hash routing (which cannot bound a group's
	// owner set).
	RouterLookups uint64
	// MonitorEnters counts shard-level admission brackets taken by
	// group execution on a rebalancing dictionary — one per group,
	// where unbatched dispatch pays one per op.
	MonitorEnters uint64
	// Restarts counts groups abandoned and re-routed because a
	// migration swapped the routing table between routing and
	// admission; their operations re-executed under the new table, so
	// no batch ever commits through stale routing.
	Restarts uint64
}

// BatchStats returns a snapshot of the group-execution counters. Safe
// to call while operations run (the snapshot is then approximate).
func (d *Dict) BatchStats() BatchStats {
	return BatchStats{
		Ops:           d.batchOps.Load(),
		Groups:        d.batchGroups.Load(),
		RouterLookups: d.batchRouterLookups.Load(),
		MonitorEnters: d.batchMonEnters.Load(),
		Restarts:      d.batchRestarts.Load(),
	}
}

// ExecGroup implements dict.GroupExecutor: it executes a key-sorted
// group of point operations with one routing-table acquisition per
// pass, one routing decision per shard segment, and — on a rebalancing
// dictionary — one monitor admission bracket per segment instead of
// per operation. Results are written into ops exactly as the
// per-operation methods would have returned them.
//
// The group composes with live migration the same way routeUpdate
// does, lifted from ops to segments: a segment's shard monitor is
// Entered (pinning the shard against migration) and the routing table
// re-checked before any of its operations dispatch; if a migration
// swapped the table in between, the admission is dropped and every
// not-yet-executed operation is re-segmented against the new table.
// The admission pins the shard for the whole segment, so a migration
// waits for at most one batch segment — bounded by the batch size —
// rather than one op.
func (h *handle) ExecGroup(ops []dict.BatchOp) {
	if len(ops) == 0 {
		return
	}
	d := h.d
	d.batchOps.Add(uint64(len(ops)))

	r := h.curRouter()
	if !r.Ordered() {
		h.execGroupUnordered(r, ops)
	} else {
		h.execGroupOrdered(ops)
	}

	// Batched operations count toward the rebalancer's evaluation
	// cadence exactly like unbatched ones, so a purely batched workload
	// still triggers migrations.
	if rb := d.reb; rb != nil {
		h.sinceCheck += len(ops)
		if h.sinceCheck >= rb.cfg.CheckOps {
			h.sinceCheck = 0
			d.maybeRebalance()
		}
	}
}

// execGroupUnordered buckets ops by owner under a hash router — which
// cannot bound a sorted run's owner set, so routing stays per-op — and
// executes each bucket through one inner-handle dispatch run. Hash
// routers never rebalance (Config.validate rejects the combination),
// so no admission or re-routing is needed.
func (h *handle) execGroupUnordered(r Router, ops []dict.BatchOp) {
	d := h.d
	n := len(d.shards)
	if h.buckets == nil {
		h.buckets = make([][]int, n)
	}
	for s := range h.buckets {
		h.buckets[s] = h.buckets[s][:0]
	}
	for i := range ops {
		s := r.ShardFor(ops[i].Key)
		h.buckets[s] = append(h.buckets[s], i)
	}
	d.batchRouterLookups.Add(uint64(len(ops)))
	for s, idx := range h.buckets {
		if len(idx) == 0 {
			continue
		}
		target := h.hs[s]
		for _, i := range idx {
			ops[i].Exec(target)
		}
		d.batchGroups.Add(1)
	}
}

// execGroupOrdered segments the sorted ops into contiguous per-shard
// runs under the (possibly live) range routing table and executes each
// run with one admission bracket.
func (h *handle) execGroupOrdered(ops []dict.BatchOp) {
	d := h.d
	// idx holds the not-yet-executed ops in key order; a stale-table
	// restart re-segments exactly this suffix under the new table.
	idx := h.gidx[:0]
	for i := range ops {
		idx = append(idx, i)
	}
	h.gidx = idx // keep the (possibly regrown) scratch for the next group
	for len(idx) > 0 {
		var rt *routing
		var r Router
		if h.admit {
			rt = d.rt.Load()
			r = rt.r
		} else {
			r = h.curRouter()
		}
		stale := false
		i := 0
		for i < len(idx) {
			s := r.ShardFor(ops[idx[i]].Key)
			_, hi := r.Bounds(s)
			d.batchRouterLookups.Add(1)
			j := i + 1
			for j < len(idx) && ops[idx[j]].Key < hi {
				j++
			}
			if h.admit {
				mon := d.mons[s]
				mon.Enter()
				d.batchMonEnters.Add(1)
				if d.rt.Load() != rt {
					// A migration swapped the table between routing and
					// admission: this segment (and everything after it)
					// may be owned elsewhere now. Drop the admission and
					// re-route the whole unexecuted suffix.
					mon.Exit()
					d.batchRestarts.Add(1)
					stale = true
					break
				}
				target := h.hs[s]
				for _, k := range idx[i:j] {
					ops[k].Exec(target)
				}
				mon.Exit()
			} else {
				target := h.hs[s]
				for _, k := range idx[i:j] {
					ops[k].Exec(target)
				}
			}
			d.batchGroups.Add(1)
			i = j
		}
		idx = idx[i:]
		if !stale {
			break
		}
	}
}
