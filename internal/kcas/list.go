package kcas

import (
	"fmt"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
)

// listNode is a sorted-list node. All mutable state lives in one Cell
// holding an immutable state object, so one k-CAS over the states of
// adjacent nodes expresses every list operation:
//
//	insert:  1-CAS  [pred.state -> state with next=new]
//	update:  1-CAS  [curr.state -> state with new value]
//	delete:  2-CAS  [pred.state -> state skipping curr,
//	                 curr.state -> marked state]
//
// Marking and unlinking happen in the same k-CAS, so marked nodes are
// never reachable.
type listNode struct {
	key uint64
	st  Cell[listState]
}

// listState is the immutable per-node state.
type listState struct {
	val    uint64
	next   *listNode
	marked bool
}

// List is the 3-path sorted linked list dictionary of Section 10.2:
// a software k-CAS fallback path, an HTM middle path that performs the
// k-CAS as a transaction (no descriptors, but descriptor and mark
// checks), and an HTM fast path that additionally skips the descriptor
// checks — safe because the fast path never runs concurrently with the
// fallback path. Traversals run outside transactions on every path; the
// update transaction revalidates the states it depends on.
type List struct {
	tm   *htm.TM
	eng  *engine.Engine
	head *listNode
}

// ListConfig configures a List.
type ListConfig struct {
	// Algorithm selects the template implementation (default 3-path).
	Algorithm engine.Algorithm
	// HTM configures the simulated HTM.
	HTM htm.Config
	// Engine overrides attempt budgets and the fallback indicator.
	Engine engine.Config
}

// NewList creates an empty list.
func NewList(cfg ListConfig) *List {
	if cfg.Algorithm == 0 {
		cfg.Algorithm = engine.AlgThreePath
	}
	ecfg := cfg.Engine
	ecfg.Algorithm = cfg.Algorithm
	head := &listNode{}
	head.st.Init(&listState{})
	tm := htm.New(cfg.HTM)
	head.st.Bind(tm.Clock())
	return &List{
		tm:   tm,
		eng:  engine.New(ecfg, tm.Clock()),
		head: head,
	}
}

// OpStats returns per-path operation completions (workload.StatsProvider).
func (l *List) OpStats() engine.OpStats { return l.eng.Stats() }

// HTMStats returns transaction statistics (workload.StatsProvider).
func (l *List) HTMStats() htm.Stats { return l.tm.Stats() }

// ListHandle is a per-goroutine handle.
type ListHandle struct {
	l *List
	e *engine.Thread

	argKey, argVal uint64
	argLo, argHi   uint64
	resVal         uint64
	resFound       bool
	rqOut          []dict.KV

	insertOp, deleteOp, searchOp, rqOp engine.Op
}

var _ dict.Handle = (*ListHandle)(nil)

// NewHandle registers a per-goroutine handle.
func (l *List) NewHandle() dict.Handle {
	h := &ListHandle{l: l, e: l.eng.NewThread(l.tm.NewThread())}
	h.insertOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { l.insertTx(tx, h, false) },
		Middle:   func(tx *htm.Tx) { l.insertTx(tx, h, true) },
		Fallback: func() bool { return l.insertKCAS(h) },
		Locked:   func() { l.insertLocked(h) },
		SCXHTM:   func(bool) bool { return l.insertKCAS(h) },
	}
	h.deleteOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { l.deleteTx(tx, h, false) },
		Middle:   func(tx *htm.Tx) { l.deleteTx(tx, h, true) },
		Fallback: func() bool { return l.deleteKCAS(h) },
		Locked:   func() { l.deleteLocked(h) },
		SCXHTM:   func(bool) bool { return l.deleteKCAS(h) },
	}
	h.searchOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { l.searchBody(h) },
		Middle:   func(tx *htm.Tx) { l.searchBody(h) },
		Fallback: func() bool { l.searchBody(h); return true },
		Locked:   func() { l.searchBody(h) },
		SCXHTM:   func(bool) bool { l.searchBody(h); return true },
	}
	h.rqOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { l.rqTx(tx, h) },
		Middle:   func(tx *htm.Tx) { l.rqTx(tx, h) },
		Fallback: func() bool { l.rqPlain(h); return true },
		Locked:   func() { l.rqPlain(h) },
		SCXHTM:   func(bool) bool { l.rqPlain(h); return true },
	}
	return h
}

// search returns pred (last node with key < target), its observed state,
// curr (pred's successor, possibly nil), and curr's observed state. The
// traversal reads through descriptors without helping.
func (l *List) search(key uint64) (pred *listNode, ps *listState, curr *listNode, cs *listState) {
	pred = l.head
	ps = pred.st.ReadNoHelp()
	curr = ps.next
	for curr != nil {
		cs = curr.st.ReadNoHelp()
		if curr.key >= key {
			return pred, ps, curr, cs
		}
		pred, ps = curr, cs
		curr = cs.next
	}
	return pred, ps, nil, nil
}

// Insert associates key with val.
func (h *ListHandle) Insert(key, val uint64) (uint64, bool) {
	checkListKey(key)
	h.argKey, h.argVal = key, val
	h.e.Run(h.insertOp)
	return h.resVal, h.resFound
}

// Delete removes key.
func (h *ListHandle) Delete(key uint64) (uint64, bool) {
	checkListKey(key)
	h.argKey = key
	h.e.Run(h.deleteOp)
	return h.resVal, h.resFound
}

// Search looks up key.
func (h *ListHandle) Search(key uint64) (uint64, bool) {
	checkListKey(key)
	h.argKey = key
	h.e.Run(h.searchOp)
	return h.resVal, h.resFound
}

// RangeQuery appends all pairs with lo <= key < hi in ascending order.
func (h *ListHandle) RangeQuery(lo, hi uint64, out []dict.KV) []dict.KV {
	h.argLo, h.argHi = lo, hi
	h.rqOut = h.rqOut[:0]
	h.e.Run(h.rqOp)
	return append(out, h.rqOut...)
}

func checkListKey(key uint64) {
	if key == 0 || key > dict.MaxKey {
		panic(fmt.Sprintf("kcas: list key %d out of range [1, MaxKey]", key))
	}
}

// insertTx is the transactional insert (fast and middle paths): the
// traversal runs outside the transaction (unsubscribed reads); the
// update transaction revalidates the two states it depends on.
func (l *List) insertTx(tx *htm.Tx, h *ListHandle, checkDesc bool) {
	key, val := h.argKey, h.argVal
	pred, ps, curr, cs := l.search(key)
	if curr != nil && curr.key == key {
		if cs.marked {
			tx.Abort(AbortStale)
		}
		h.resVal, h.resFound = cs.val, true
		curr.st.WriteTx(tx, checkDesc, cs, &listState{val: val, next: cs.next})
		return
	}
	h.resVal, h.resFound = 0, false
	if ps.marked {
		tx.Abort(AbortStale)
	}
	n := &listNode{key: key}
	n.st.Init(&listState{val: val, next: curr})
	n.st.Bind(l.tm.Clock())
	pred.st.WriteTx(tx, checkDesc, ps, &listState{val: ps.val, next: n, marked: false})
}

// deleteTx is the transactional delete.
func (l *List) deleteTx(tx *htm.Tx, h *ListHandle, checkDesc bool) {
	key := h.argKey
	pred, ps, curr, cs := l.search(key)
	if curr == nil || curr.key != key || cs.marked {
		if curr != nil && curr.key == key && cs.marked {
			tx.Abort(AbortStale)
		}
		h.resVal, h.resFound = 0, false
		return
	}
	if ps.marked {
		tx.Abort(AbortStale)
	}
	h.resVal, h.resFound = cs.val, true
	pred.st.WriteTx(tx, checkDesc, ps, &listState{val: ps.val, next: cs.next})
	curr.st.WriteTx(tx, checkDesc, cs, &listState{val: cs.val, next: cs.next, marked: true})
}

// insertKCAS is the software fallback insert: a 1-CAS via the k-CAS
// machinery. It returns false to retry.
func (l *List) insertKCAS(h *ListHandle) bool {
	key, val := h.argKey, h.argVal
	pred, ps, curr, cs := l.search(key)
	if curr != nil && curr.key == key {
		if cs.marked {
			return false
		}
		h.resVal, h.resFound = cs.val, true
		return Apply(
			[]*Cell[listState]{&curr.st},
			[]*listState{cs},
			[]*listState{{val: val, next: cs.next}})
	}
	h.resVal, h.resFound = 0, false
	if ps.marked {
		return false
	}
	n := &listNode{key: key}
	n.st.Init(&listState{val: val, next: curr})
	n.st.Bind(l.tm.Clock())
	return Apply(
		[]*Cell[listState]{&pred.st},
		[]*listState{ps},
		[]*listState{{val: ps.val, next: n}})
}

// deleteKCAS is the software fallback delete: a 2-CAS that atomically
// unlinks and marks.
func (l *List) deleteKCAS(h *ListHandle) bool {
	key := h.argKey
	pred, ps, curr, cs := l.search(key)
	if curr == nil || curr.key != key {
		h.resVal, h.resFound = 0, false
		return true
	}
	if cs.marked || ps.marked {
		return false
	}
	h.resVal, h.resFound = cs.val, true
	return Apply(
		[]*Cell[listState]{&pred.st, &curr.st},
		[]*listState{ps, cs},
		[]*listState{
			{val: ps.val, next: cs.next},
			{val: cs.val, next: cs.next, marked: true},
		})
}

// insertLocked / deleteLocked are the TLE bodies (sequential, under the
// engine's global lock).
func (l *List) insertLocked(h *ListHandle) {
	key, val := h.argKey, h.argVal
	pred, ps, curr, cs := l.search(key)
	if curr != nil && curr.key == key {
		h.resVal, h.resFound = cs.val, true
		curr.st.e.Set(nil, &entry[listState]{v: &listState{val: val, next: cs.next}})
		return
	}
	h.resVal, h.resFound = 0, false
	n := &listNode{key: key}
	n.st.Init(&listState{val: val, next: curr})
	n.st.Bind(l.tm.Clock())
	pred.st.e.Set(nil, &entry[listState]{v: &listState{val: ps.val, next: n}})
}

func (l *List) deleteLocked(h *ListHandle) {
	key := h.argKey
	pred, ps, curr, cs := l.search(key)
	if curr == nil || curr.key != key {
		h.resVal, h.resFound = 0, false
		return
	}
	h.resVal, h.resFound = cs.val, true
	pred.st.e.Set(nil, &entry[listState]{v: &listState{val: ps.val, next: cs.next}})
	curr.st.e.Set(nil, &entry[listState]{v: &listState{val: cs.val, next: cs.next, marked: true}})
}

// searchBody is the read-only lookup, identical on every path (the
// traversal is naturally consistent: each state object is immutable).
func (l *List) searchBody(h *ListHandle) {
	_, _, curr, cs := l.search(h.argKey)
	if curr != nil && curr.key == h.argKey && !cs.marked {
		h.resVal, h.resFound = cs.val, true
		return
	}
	h.resVal, h.resFound = 0, false
}

// rqTx collects [lo,hi) inside a transaction (consistent snapshot).
func (l *List) rqTx(tx *htm.Tx, h *ListHandle) {
	h.rqOut = h.rqOut[:0]
	st := l.head.st.ReadTx(tx, false)
	curr := st.next
	for curr != nil {
		cs := curr.st.ReadTx(tx, false)
		if curr.key >= h.argHi {
			return
		}
		if curr.key >= h.argLo {
			h.rqOut = append(h.rqOut, dict.KV{Key: curr.key, Val: cs.val})
		}
		curr = cs.next
	}
}

// rqPlain collects [lo,hi) with an unsynchronized traversal (fallback
// path; immutable states make each step individually consistent).
func (l *List) rqPlain(h *ListHandle) {
	h.rqOut = h.rqOut[:0]
	_, _, curr, cs := l.search(h.argLo)
	for curr != nil && curr.key < h.argHi {
		if !cs.marked {
			h.rqOut = append(h.rqOut, dict.KV{Key: curr.key, Val: cs.val})
		}
		curr = cs.next
		if curr != nil {
			cs = curr.st.ReadNoHelp()
		}
	}
}

// KeySum returns the sum and count of keys (quiescent use only).
func (l *List) KeySum() (sum, count uint64) {
	st := l.head.st.Read()
	for n := st.next; n != nil; {
		sum += n.key
		count++
		ns := n.st.Read()
		n = ns.next
	}
	return sum, count
}
