// Package kcas implements a lock-free multi-word compare-and-swap
// (k-CAS) from single-word CAS in the style of Harris, Fraser and Pratt
// (DISC 2002), an HTM-accelerated variant, and the 3-path sorted linked
// list of Section 10.2 of Brown's paper built on top of them.
//
// A Cell[T] holds an immutable *T value behind an entry that may
// temporarily carry a k-CAS descriptor. Because the pre-operation value
// remains visible in the entry while a descriptor is installed, plain
// traversals read through in-flight operations naturally; only the
// update phase must reason about descriptors. Values are compared by
// pointer identity, so the freshness discipline (every state change
// installs a newly allocated value) rules the ABA problem out, exactly
// like property P1 of the LLX/SCX template.
//
// Callers performing multi-cell operations must present cells in a
// consistent global order (for the list: list order) so that recursive
// helping cannot cycle.
package kcas

import (
	"sync/atomic"

	"htmtree/internal/htm"
)

// MaxK is the largest number of cells one k-CAS may touch.
const MaxK = 4

// Status of a descriptor.
const (
	statusUndecided int32 = iota + 1
	statusSucceeded
	statusFailed
)

// entry is the content of a Cell: the (immutable) current value, plus
// the descriptor of an in-flight k-CAS when one is installed. idx is the
// cell's position within the descriptor.
type entry[T any] struct {
	v   *T
	d   *desc[T]
	idx int
}

// Cell is a shared word supporting k-CAS. The zero value holds nil.
type Cell[T any] struct {
	e htm.Ref[entry[T]]
}

// desc describes one k-CAS operation.
type desc[T any] struct {
	status atomic.Int32
	n      int
	cells  [MaxK]*Cell[T]
	exp    [MaxK]*T
	new    [MaxK]*T
}

// Init sets the cell's initial value without synchronization (the cell
// must not be shared yet).
func (c *Cell[T]) Init(v *T) {
	c.e.Init(&entry[T]{v: v})
}

// Bind associates the cell with the version clock of the TM whose
// transactions access it (htm.Ref.Bind): descriptor installation and
// cleanup mutate the cell non-transactionally and must advance that
// clock. Bind before the cell is shared.
func (c *Cell[T]) Bind(clk *htm.Clock) { c.e.Bind(clk) }

// Read returns the cell's current value, helping any in-flight k-CAS it
// encounters. tx must be nil (descriptor helping belongs to the software
// path; transactional code uses ReadTx).
func (c *Cell[T]) Read() *T {
	for {
		e := c.e.Get(nil)
		if e == nil {
			return nil
		}
		if e.d == nil {
			return e.v
		}
		switch e.d.status.Load() {
		case statusUndecided:
			help(e.d)
		case statusSucceeded:
			return e.d.new[e.idx]
		default: // failed
			return e.v
		}
	}
}

// ReadNoHelp returns the value without helping: in-flight descriptors
// are read through to the pre-operation value. This is what plain
// traversals use — it never blocks and never writes.
func (c *Cell[T]) ReadNoHelp() *T {
	e := c.e.Get(nil)
	if e == nil {
		return nil
	}
	if e.d != nil && e.d.status.Load() == statusSucceeded {
		return e.d.new[e.idx]
	}
	return e.v
}

// ReadTx reads the cell inside a transaction. If a descriptor is
// installed the transaction cannot proceed (helping inside a transaction
// is harmful; Section 4 of the paper): it aborts with code abortDesc.
// With checkDesc false (the fast path of Section 10.2, which cannot run
// concurrently with the fallback path) the descriptor check is skipped.
func (c *Cell[T]) ReadTx(tx *htm.Tx, checkDesc bool) *T {
	e := c.e.Get(tx)
	if e == nil {
		return nil
	}
	if checkDesc && e.d != nil {
		tx.Abort(AbortDesc)
	}
	return e.v
}

// WriteTx replaces the cell's value inside a transaction, verifying the
// expected current value (pointer identity).
func (c *Cell[T]) WriteTx(tx *htm.Tx, checkDesc bool, exp, v *T) {
	e := c.e.Get(tx)
	var cur *T
	if e != nil {
		if checkDesc && e.d != nil {
			tx.Abort(AbortDesc)
		}
		cur = e.v
	}
	if cur != exp {
		tx.Abort(AbortStale)
	}
	c.e.Set(tx, &entry[T]{v: v})
}

// Abort codes used by the transactional accessors.
const (
	// AbortDesc: a software k-CAS descriptor was encountered in a
	// transaction.
	AbortDesc uint8 = 0xC1
	// AbortStale: an expected value no longer matched.
	AbortStale uint8 = 0xC2
)

// Apply atomically replaces exp[i] with new[i] in cells[i] for all i, or
// does nothing, and reports which. Values compare by pointer identity.
// len(cells) must be in [1, MaxK]; cells must follow the caller's global
// cell order.
func Apply[T any](cells []*Cell[T], exp, new []*T) bool {
	if len(cells) == 0 || len(cells) > MaxK || len(exp) != len(cells) || len(new) != len(cells) {
		panic("kcas: bad Apply arguments")
	}
	d := &desc[T]{n: len(cells)}
	d.status.Store(statusUndecided)
	copy(d.cells[:], cells)
	copy(d.exp[:], exp)
	copy(d.new[:], new)
	return help(d)
}

// help drives d to completion on behalf of any thread.
func help[T any](d *desc[T]) bool {
	// Phase 1: install d into every cell, in order.
install:
	for i := 0; i < d.n && d.status.Load() == statusUndecided; i++ {
		c := d.cells[i]
		for {
			e := c.e.Get(nil)
			if e != nil && e.d == d {
				break // already installed (by a helper)
			}
			if e != nil && e.d != nil {
				if e.d.status.Load() == statusUndecided {
					help(e.d)
				} else {
					cleanup(e.d)
				}
				continue
			}
			var cur *T
			if e != nil {
				cur = e.v
			}
			if cur != d.exp[i] {
				d.status.CompareAndSwap(statusUndecided, statusFailed)
				break install
			}
			if c.e.CAS(nil, e, &entry[T]{v: cur, d: d, idx: i}) {
				break
			}
		}
	}
	// Phase 2: decide.
	d.status.CompareAndSwap(statusUndecided, statusSucceeded)
	// Phase 3: detach the descriptor, publishing the outcome.
	cleanup(d)
	return d.status.Load() == statusSucceeded
}

// cleanup replaces every installed marker entry with a plain entry
// holding the decided value.
func cleanup[T any](d *desc[T]) {
	succeeded := d.status.Load() == statusSucceeded
	for i := 0; i < d.n; i++ {
		c := d.cells[i]
		e := c.e.Get(nil)
		if e == nil || e.d != d {
			continue
		}
		v := e.v
		if succeeded {
			v = d.new[i]
		}
		c.e.CAS(nil, e, &entry[T]{v: v})
	}
}
