package kcas

import (
	"math/rand"
	"sync"
	"testing"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
)

type box struct{ v uint64 }

func TestApplyBasic(t *testing.T) {
	t.Parallel()
	var a, b Cell[box]
	clk := htm.NewClock()
	a.Bind(clk)
	b.Bind(clk)
	x0, y0 := &box{1}, &box{2}
	a.Init(x0)
	b.Init(y0)
	x1, y1 := &box{10}, &box{20}
	if !Apply([]*Cell[box]{&a, &b}, []*box{x0, y0}, []*box{x1, y1}) {
		t.Fatal("2-CAS with correct expectations failed")
	}
	if a.Read() != x1 || b.Read() != y1 {
		t.Fatal("2-CAS did not publish new values")
	}
	// Stale expectations must fail without changing anything.
	if Apply([]*Cell[box]{&a, &b}, []*box{x0, y0}, []*box{&box{0}, &box{0}}) {
		t.Fatal("2-CAS with stale expectations succeeded")
	}
	if a.Read() != x1 || b.Read() != y1 {
		t.Fatal("failed 2-CAS changed memory")
	}
}

func TestApplyPartialOverlapAtomicity(t *testing.T) {
	t.Parallel()
	// Concurrent 2-CAS chains over a shared middle cell: the sum of
	// successful operations must equal the final counters.
	var a, b, c Cell[box]
	clk := htm.NewClock()
	a.Bind(clk)
	b.Bind(clk)
	c.Bind(clk)
	a.Init(&box{0})
	b.Init(&box{0})
	c.Init(&box{0})
	var wg sync.WaitGroup
	succ := make([]uint64, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Thread 0 increments (a,b) atomically; thread 1 (b,c).
			var c1, c2 *Cell[box]
			if g == 0 {
				c1, c2 = &a, &b
			} else {
				c1, c2 = &b, &c
			}
			for i := 0; i < 5000; i++ {
				for {
					v1, v2 := c1.Read(), c2.Read()
					if Apply([]*Cell[box]{c1, c2}, []*box{v1, v2},
						[]*box{{v1.v + 1}, {v2.v + 1}}) {
						succ[g]++
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	av, bv, cv := a.Read().v, b.Read().v, c.Read().v
	if av != succ[0] || cv != succ[1] || bv != succ[0]+succ[1] {
		t.Fatalf("torn k-CAS: a=%d b=%d c=%d, succ=%v", av, bv, cv, succ)
	}
}

func TestReadHelpsInFlight(t *testing.T) {
	t.Parallel()
	// Manually install a descriptor (simulating a stalled thread) and
	// check that Read completes the operation.
	var a Cell[box]
	a.Bind(htm.NewClock())
	x0 := &box{5}
	a.Init(x0)
	x1 := &box{6}
	d := &desc[box]{n: 1}
	d.status.Store(statusUndecided)
	d.cells[0] = &a
	d.exp[0] = x0
	d.new[0] = x1
	e := a.e.Get(nil)
	if !a.e.CAS(nil, e, &entry[box]{v: x0, d: d, idx: 0}) {
		t.Fatal("manual install failed")
	}
	if got := a.Read(); got != x1 {
		t.Fatalf("Read returned %v, want helped value %v", got, x1)
	}
	if d.status.Load() != statusSucceeded {
		t.Fatal("descriptor not completed by reader")
	}
}

func TestReadNoHelpSeesThroughDescriptor(t *testing.T) {
	t.Parallel()
	var a Cell[box]
	a.Bind(htm.NewClock())
	x0 := &box{5}
	a.Init(x0)
	d := &desc[box]{n: 1}
	d.status.Store(statusUndecided)
	d.cells[0] = &a
	d.exp[0] = x0
	d.new[0] = &box{6}
	e := a.e.Get(nil)
	a.e.CAS(nil, e, &entry[box]{v: x0, d: d, idx: 0})
	if got := a.ReadNoHelp(); got != x0 {
		t.Fatalf("ReadNoHelp = %v, want pre-operation value %v", got, x0)
	}
	if d.status.Load() != statusUndecided {
		t.Fatal("ReadNoHelp must not help")
	}
}

var listAlgorithms = engine.Algorithms

func TestListSequentialOracle(t *testing.T) {
	t.Parallel()
	for _, alg := range listAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			l := NewList(ListConfig{Algorithm: alg})
			h := l.NewHandle()
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(23))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(100)) + 1
				switch rng.Intn(3) {
				case 0:
					v := rng.Uint64()
					_, existed := h.Insert(k, v)
					if _, ok := oracle[k]; ok != existed {
						t.Fatalf("Insert(%d) existed=%v", k, existed)
					}
					oracle[k] = v
				case 1:
					_, existed := h.Delete(k)
					if _, ok := oracle[k]; ok != existed {
						t.Fatalf("Delete(%d) existed=%v", k, existed)
					}
					delete(oracle, k)
				case 2:
					v, found := h.Search(k)
					want, ok := oracle[k]
					if found != ok || (found && v != want) {
						t.Fatalf("Search(%d) = (%d,%v) want (%d,%v)", k, v, found, want, ok)
					}
				}
			}
			sum, count := l.KeySum()
			var wantSum, wantCount uint64
			for k := range oracle {
				wantSum += k
				wantCount++
			}
			if sum != wantSum || count != wantCount {
				t.Fatalf("KeySum = (%d,%d), oracle (%d,%d)", sum, count, wantSum, wantCount)
			}
		})
	}
}

func TestListConcurrentKeySum(t *testing.T) {
	t.Parallel()
	for _, alg := range listAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			l := NewList(ListConfig{Algorithm: alg})
			const goroutines = 4
			const perG = 2000
			sums := make([]int64, goroutines)
			counts := make([]int64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := l.NewHandle()
					rng := rand.New(rand.NewSource(int64(g)*37 + 5))
					for i := 0; i < perG; i++ {
						k := uint64(rng.Intn(64)) + 1
						if rng.Intn(2) == 0 {
							if _, existed := h.Insert(k, k); !existed {
								sums[g] += int64(k)
								counts[g]++
							}
						} else {
							if _, existed := h.Delete(k); existed {
								sums[g] -= int64(k)
								counts[g]--
							}
						}
					}
				}(g)
			}
			wg.Wait()
			var wantSum, wantCount int64
			for g := range sums {
				wantSum += sums[g]
				wantCount += counts[g]
			}
			sum, count := l.KeySum()
			if int64(sum) != wantSum || int64(count) != wantCount {
				t.Fatalf("key-sum: list (%d,%d), threads (%d,%d)", sum, count, wantSum, wantCount)
			}
		})
	}
}

func TestListRangeQuery(t *testing.T) {
	t.Parallel()
	l := NewList(ListConfig{})
	h := l.NewHandle()
	for k := uint64(1); k <= 50; k++ {
		h.Insert(k, k*3)
	}
	out := h.RangeQuery(10, 20, nil)
	if len(out) != 10 {
		t.Fatalf("RQ returned %d pairs, want 10", len(out))
	}
	for i, kv := range out {
		if kv.Key != uint64(10+i) || kv.Val != kv.Key*3 {
			t.Fatalf("RQ[%d] = %+v", i, kv)
		}
	}
	var _ []dict.KV = out
}

func TestListForcedFallback(t *testing.T) {
	t.Parallel()
	// Every transaction aborts: all updates run through software k-CAS.
	l := NewList(ListConfig{Algorithm: engine.AlgThreePath, HTM: htm.Config{SpuriousEvery: 1}})
	h := l.NewHandle()
	for k := uint64(1); k <= 100; k++ {
		h.Insert(k, k)
	}
	for k := uint64(1); k <= 100; k += 2 {
		if _, ok := h.Delete(k); !ok {
			t.Fatalf("Delete(%d) missed", k)
		}
	}
	if _, count := l.KeySum(); count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
	if st := l.OpStats(); st.Fast != 0 || st.Middle != 0 {
		t.Fatalf("operations completed on HTM paths despite forced aborts: %+v", st)
	}
}
