// Package fault is the deterministic fault-injection plane: a registry
// of named injection points threaded through the protocol seams the
// engine's correctness arguments actually depend on — forced
// transactional aborts, owner stalls and permanent owner death inside
// the helpable fallback critical section, quiesce-gate delays and
// migration interruption, epoch-pin stalls that starve reclamation,
// aggregate-seqlock writer stalls, and batch flush delays — plus a
// progress watchdog (Liveness) that distinguishes "blocked on a dead
// owner" (a bug) from "helped past a dead owner" (the lock-free
// guarantee).
//
// A Plan compiles a seed and a set of per-point Rules into per-point
// trigger state. Every trigger decision is a pure function of
// (seed, point, encounter index), so a chaos failure reproduces from
// the pair (seed, plan) alone — scheduling decides only which
// goroutine encounters a point at which index, not whether that
// encounter fires.
//
// The package is a leaf: it imports nothing from this repository, so
// every layer (htm, engine, ebr, shard, abtree, batch, workload) can
// hold a *Plan. A nil plan is always legal and compiles each
// injection check down to a single predictable branch, which is what
// keeps the steady-state 0 allocs/op and obs-overhead gates intact
// when no faults are configured.
package fault

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection point. Points are compiled into the code
// at the seam they describe; a Plan activates any subset of them.
type Point uint8

// The point catalogue. Each constant documents the seam it is wired
// into and what an effect firing there exercises.
const (
	pointInvalid Point = iota
	// PointTxAccess fires on transactional cell accesses (the seam the
	// SpuriousEvery knob already uses) and forces an abort with the
	// rule's Cause — an abort storm by cause, under the retry policy's
	// real reactions.
	PointTxAccess
	// PointFallbackOwner fires when a fallback critical-section owner
	// is at its most preemption-sensitive point: right after the
	// helpable announce, or right after the classic TLE lock
	// acquisition. A Stall models a descheduled owner; Kill models a
	// crashed one (the goroutine parks forever) — helpers must then
	// complete the announced operation, which is the paper's progress
	// claim made executable. Kill is only meaningful under the
	// helpable fallback; a killed classic lock holder wedges the shard
	// by design.
	PointFallbackOwner
	// PointQuiesce fires after a migration quiesced and bracketed both
	// monitors — while it holds the gates updates wait at.
	PointQuiesce
	// PointMigrateSwap fires between a migration's receiver-insert
	// loop and the routing-table swap; PointMigrateDelete between the
	// swap and the donor-delete loop. Both interrupt the PR 3 bracket
	// at the steps concurrent searches race against.
	PointMigrateSwap
	PointMigrateDelete
	// PointEBRPin fires inside an epoch-based-reclamation Begin, while
	// the thread is pinned to the announced epoch — a stalled pin
	// lags the epoch and starves every other thread's grace periods.
	PointEBRPin
	// PointAggFixup fires inside the (a,b)-tree's aggVer seqlock
	// bracket, between the SCX swing and the completion of the
	// aggregate fixup — while every transactional reader and writer of
	// the tree is aborting on the odd seqlock.
	PointAggFixup
	// PointBatchFlush fires at the head of a batch pipeline flush,
	// before the group executes.
	PointBatchFlush
	// NumPoints bounds the point space.
	NumPoints
)

// String returns the point's wire name (stable; used in plan dumps and
// benchmark artifacts).
func (p Point) String() string {
	switch p {
	case PointTxAccess:
		return "tx-access"
	case PointFallbackOwner:
		return "fallback-owner"
	case PointQuiesce:
		return "quiesce"
	case PointMigrateSwap:
		return "migrate-swap"
	case PointMigrateDelete:
		return "migrate-delete"
	case PointEBRPin:
		return "ebr-pin"
	case PointAggFixup:
		return "agg-fixup"
	case PointBatchFlush:
		return "batch-flush"
	default:
		return fmt.Sprintf("point(%d)", uint8(p))
	}
}

// Rule arms one injection point. Trigger selection: Every fires on
// each Every-th encounter (after skipping the first After), Prob fires
// each encounter independently with the given probability (seeded by
// the plan, deterministic per encounter index); exactly one of the two
// should be set. Count bounds the total number of fires (0 =
// unlimited; 1 = one-shot).
type Rule struct {
	// Point is the seam this rule arms.
	Point Point
	// Every fires deterministically on every Every-th encounter.
	Every uint64
	// Prob fires each encounter independently with probability Prob
	// (0 < Prob <= 1), derived from the plan seed and the encounter
	// index.
	Prob float64
	// After skips the first After encounters entirely.
	After uint64
	// Count caps the number of fires; 0 is unlimited.
	Count uint64

	// Stall sleeps the encountering goroutine for the given duration.
	Stall time.Duration
	// Kill parks the encountering goroutine forever (until the
	// harness calls Plan.ReleaseKilled at teardown): permanent death
	// of whatever role the goroutine held at the point.
	Kill bool
	// Cause is the forced abort cause at PointTxAccess, in the HTM
	// layer's AbortCause encoding; 0 lets the site pick its default
	// (spurious).
	Cause uint8
	// Func is an arbitrary callback effect, run at the injection
	// point. This is the compatibility seam the deprecated
	// PreemptFallbackPoint hooks compile into.
	Func func()
	// Watch opens a Liveness stall window around this rule's Stall or
	// Kill effect, asserting other threads make progress while the
	// victim is out.
	Watch bool
}

// String renders the rule in the canonical reproduction syntax.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", r.Point)
	if r.Every > 0 {
		fmt.Fprintf(&b, " every=%d", r.Every)
	}
	if r.Prob > 0 {
		fmt.Fprintf(&b, " prob=%g", r.Prob)
	}
	if r.After > 0 {
		fmt.Fprintf(&b, " after=%d", r.After)
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, " count=%d", r.Count)
	}
	if r.Stall > 0 {
		fmt.Fprintf(&b, " stall=%s", r.Stall)
	}
	if r.Kill {
		b.WriteString(" kill")
	}
	if r.Cause != 0 {
		fmt.Fprintf(&b, " cause=%d", r.Cause)
	}
	if r.Func != nil {
		b.WriteString(" func")
	}
	return b.String()
}

// Effect is one fired fault, handed to the injection site. The site
// interprets Cause (the HTM seam aborts with it); Stall, Kill and Func
// are executed uniformly by Plan.Exec.
type Effect struct {
	Point Point
	// Seq is the 1-based fire index at this point.
	Seq   uint64
	Cause uint8
	Stall time.Duration
	Kill  bool
	Func  func()
	watch bool
}

// pointState is one compiled rule plus its live trigger counters.
type pointState struct {
	active bool
	kill   bool
	watch  bool
	cause  uint8
	every  uint64
	after  uint64
	probT  uint64 // fire when mix(seed, point, n) < probT; 0 = disabled
	count  uint64 // max fires; 0 = unlimited
	stall  time.Duration
	fn     func()

	hits  atomic.Uint64
	fires atomic.Uint64
}

// Plan is a compiled, live fault plan. One Plan may be shared by every
// layer of a dictionary (and by all shards of a sharded one): the
// per-point encounter counters are then global, so "every Nth fallback
// entry" means the Nth across the whole structure. All methods are
// safe on a nil receiver (the single-branch disabled fast path).
type Plan struct {
	seed  uint64
	rules []Rule
	pts   [NumPoints]pointState

	// onFire, lv and killCh are set before the plan is shared with
	// running threads (SetOnFire / Watch / New).
	onFire func(Effect)
	lv     *Liveness

	killCh   chan struct{}
	killOnce sync.Once
}

// New compiles a plan from a seed and rules. Two rules on the same
// point compose: trigger fields must agree (the second rule may leave
// them zero), and Func callbacks chain. Invalid rules panic — plans
// are built by harness code, not request paths.
func New(seed uint64, rules ...Rule) *Plan {
	p := &Plan{seed: seed, killCh: make(chan struct{})}
	for _, r := range rules {
		p.addRule(r)
	}
	return p
}

func (p *Plan) addRule(r Rule) {
	if r.Point <= pointInvalid || r.Point >= NumPoints {
		panic(fmt.Sprintf("fault: rule on invalid point %d", r.Point))
	}
	if r.Prob < 0 || r.Prob > 1 {
		panic(fmt.Sprintf("fault: rule %v: Prob out of [0, 1]", r))
	}
	if r.Every == 0 && r.Prob == 0 && r.Func == nil {
		panic(fmt.Sprintf("fault: rule %v: no trigger (set Every or Prob)", r))
	}
	if r.Every == 0 && r.Prob == 0 {
		r.Every = 1 // a bare Func rule fires on every encounter
	}
	p.rules = append(p.rules, r)
	s := &p.pts[r.Point]
	if s.active {
		// Compose with the existing rule: chain callbacks, adopt any
		// newly set effect fields, keep the first rule's trigger.
		if prev, next := s.fn, r.Func; prev != nil && next != nil {
			s.fn = func() { prev(); next() }
		} else if next != nil {
			s.fn = next
		}
		s.kill = s.kill || r.Kill
		s.watch = s.watch || r.Watch
		if r.Stall > s.stall {
			s.stall = r.Stall
		}
		if r.Cause != 0 {
			s.cause = r.Cause
		}
		return
	}
	*s = pointState{
		active: true,
		kill:   r.Kill,
		watch:  r.Watch,
		cause:  r.Cause,
		every:  r.Every,
		after:  r.After,
		count:  r.Count,
		stall:  r.Stall,
		fn:     r.Func,
	}
	if r.Prob > 0 {
		s.probT = uint64(r.Prob * float64(1<<63) * 2)
		if r.Prob >= 1 {
			s.probT = ^uint64(0)
		}
	}
}

// With returns a new plan extending p with extra rules (p itself is
// not modified and its counters are not inherited). A nil receiver
// compiles a fresh plan from the rules alone. This is the deprecated
// PreemptFallbackPoint shim's constructor.
func (p *Plan) With(rules ...Rule) *Plan {
	if p == nil {
		return New(0, rules...)
	}
	np := New(p.seed, p.rules...)
	for _, r := range rules {
		np.addRule(r)
	}
	np.onFire = p.onFire
	np.lv = p.lv
	return np
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// String renders the plan in the reproduction syntax the ARCHITECTURE
// docs describe: seed plus one clause per rule.
func (p *Plan) String() string {
	if p == nil {
		return "fault.Plan(nil)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%#x", p.seed)
	for _, r := range p.rules {
		b.WriteString("; ")
		b.WriteString(r.String())
	}
	return b.String()
}

// SetOnFire registers a hook invoked synchronously on every fire — the
// flight-recorder bridge (the obs layer records fired faults as cold
// events through it). Must be set before the plan is shared with
// running threads.
func (p *Plan) SetOnFire(fn func(Effect)) { p.onFire = fn }

// Watch attaches the progress watchdog: Stall/Kill effects of rules
// with Rule.Watch open stall windows on it. Must be set before the
// plan is shared with running threads. Returns p for chaining.
func (p *Plan) Watch(lv *Liveness) *Plan {
	p.lv = lv
	return p
}

// Liveness returns the attached watchdog, if any.
func (p *Plan) Liveness() *Liveness {
	if p == nil {
		return nil
	}
	return p.lv
}

// mix is splitmix64 over the plan seed, the point, and the encounter
// index: the deterministic coin for probabilistic rules.
func mix(seed uint64, pt Point, n uint64) uint64 {
	z := seed + uint64(pt)*0x9e3779b97f4a7c15 + n*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// At records one encounter of pt and reports whether it fires,
// returning the effect to apply. The nil-plan fast path is the single
// branch the hot-path gates rely on; an armed plan costs two more
// loads on points it does not arm. Sites that only need the uniform
// effects call Hit instead.
func (p *Plan) At(pt Point) (Effect, bool) {
	if p == nil {
		return Effect{}, false
	}
	return p.at(pt)
}

func (p *Plan) at(pt Point) (Effect, bool) {
	s := &p.pts[pt]
	if !s.active {
		return Effect{}, false
	}
	n := s.hits.Add(1)
	if n <= s.after {
		return Effect{}, false
	}
	m := n - s.after
	fire := false
	if s.every > 0 {
		fire = m%s.every == 0
	} else {
		fire = mix(p.seed, pt, n) < s.probT
	}
	if !fire {
		return Effect{}, false
	}
	seq := s.fires.Add(1)
	if s.count > 0 && seq > s.count {
		s.fires.Add(^uint64(0))
		return Effect{}, false
	}
	eff := Effect{
		Point: pt, Seq: seq, Cause: s.cause,
		Stall: s.stall, Kill: s.kill, Func: s.fn, watch: s.watch,
	}
	if p.onFire != nil {
		p.onFire(eff)
	}
	return eff, true
}

// Hit is At followed by Exec: the one-liner for seams whose effects
// are the uniform ones (Stall, Kill, Func). Nil-safe.
func (p *Plan) Hit(pt Point) {
	if p == nil {
		return
	}
	if eff, ok := p.at(pt); ok {
		p.exec(eff)
	}
}

// Exec applies an effect's uniform parts at the injection site: the
// callback, then the stall or the kill, bracketed by a Liveness stall
// window when the rule is watched. A Kill parks the calling goroutine
// until ReleaseKilled; its window stays open until Liveness.Finish.
func (p *Plan) Exec(e Effect) {
	if p == nil {
		return
	}
	p.exec(e)
}

func (p *Plan) exec(e Effect) {
	if e.Func != nil {
		e.Func()
	}
	if e.Kill {
		if e.watch && p.lv != nil {
			p.lv.stallBegin(e.Point, true)
		}
		<-p.killCh
		return
	}
	if e.Stall <= 0 {
		return
	}
	if e.watch && p.lv != nil {
		id := p.lv.stallBegin(e.Point, false)
		time.Sleep(e.Stall)
		p.lv.stallEnd(id)
		return
	}
	time.Sleep(e.Stall)
}

// Hits returns how many times pt has been encountered, Fires how many
// times it fired. Nil-safe.
func (p *Plan) Hits(pt Point) uint64 {
	if p == nil {
		return 0
	}
	return p.pts[pt].hits.Load()
}

// Fires returns the number of effects fired at pt.
func (p *Plan) Fires(pt Point) uint64 {
	if p == nil {
		return 0
	}
	n := p.pts[pt].fires.Load()
	if max := p.pts[pt].count; max > 0 && n > max {
		n = max
	}
	return n
}

// FireCounts returns the nonzero per-point fire counts, keyed by the
// point's wire name — the benchmark artifacts' shape.
func (p *Plan) FireCounts() map[string]uint64 {
	if p == nil {
		return nil
	}
	var m map[string]uint64
	for pt := Point(1); pt < NumPoints; pt++ {
		if n := p.Fires(pt); n > 0 {
			if m == nil {
				m = make(map[string]uint64)
			}
			m[pt.String()] = n
		}
	}
	return m
}

// ReleaseKilled resumes every goroutine parked by a Kill effect.
// During the run a kill is permanent — that is the fault being
// modelled; harnesses call this at teardown, after all assertions,
// so the test binary does not accumulate parked goroutines. Safe to
// call more than once, and on a nil plan.
func (p *Plan) ReleaseKilled() {
	if p == nil {
		return
	}
	p.killOnce.Do(func() { close(p.killCh) })
}

// Liveness is the progress watchdog: harness worker threads report
// completed operations (OpDone), watched Stall/Kill effects bracket
// stall windows, and Check asserts that system-wide throughput stayed
// nonzero while any window was open — the difference between "helped
// past a dead owner" (the lock-free guarantee) and "blocked on a dead
// owner" (a bug). Kill windows never end on their own; Finish closes
// them with the final operation count before Check.
//
// Windows that overlap in time share a Group and are judged on their
// merged span: when the injector has stalled several victims at once
// (or all workers, on a single-CPU host), an individual window with
// zero progress proves nothing about the protocol as long as the
// system progressed across the combined stalled period.
type Liveness struct {
	ops atomic.Uint64

	mu        sync.Mutex
	open      map[uint64]*StallWindow
	done      []StallWindow
	next      uint64
	nextGroup int
}

// StallWindow is one recorded stall: the operations the rest of the
// system completed between the victim's entry and its exit (or the
// harness's Finish, for kills).
type StallWindow struct {
	Point Point
	// Kill records that the victim died rather than stalled.
	Kill bool
	// OpsBefore and OpsAfter are the global completed-operation counts
	// at the window's open and close.
	OpsBefore, OpsAfter uint64
	// Group joins windows that overlapped in time: a window opened
	// while another was still open shares its group, and Check judges
	// progress per merged group rather than per window.
	Group int
}

// Progress returns the operations completed by other threads during
// the window.
func (w StallWindow) Progress() uint64 { return w.OpsAfter - w.OpsBefore }

// OpDone reports one completed operation. Nil-safe, so harness loops
// can call it unconditionally.
func (l *Liveness) OpDone() {
	if l == nil {
		return
	}
	l.ops.Add(1)
}

// Ops returns the completed-operation count so far.
func (l *Liveness) Ops() uint64 { return l.ops.Load() }

func (l *Liveness) stallBegin(pt Point, kill bool) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.open == nil {
		l.open = make(map[uint64]*StallWindow)
	}
	l.next++
	id := l.next
	group := 0
	for _, w := range l.open {
		// All currently-open windows already share one group (each
		// joined the group open at its own begin), so any of them
		// names it.
		group = w.Group
		break
	}
	if group == 0 {
		l.nextGroup++
		group = l.nextGroup
	}
	l.open[id] = &StallWindow{Point: pt, Kill: kill, OpsBefore: l.ops.Load(), Group: group}
	return id
}

func (l *Liveness) stallEnd(id uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	w, ok := l.open[id]
	if !ok {
		return
	}
	delete(l.open, id)
	w.OpsAfter = l.ops.Load()
	l.done = append(l.done, *w)
}

// Finish closes every still-open window (killed owners never close
// their own) at the current operation count. Call after the workload
// drained, before Check.
func (l *Liveness) Finish() {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.ops.Load()
	for id, w := range l.open {
		delete(l.open, id)
		w.OpsAfter = now
		l.done = append(l.done, *w)
	}
}

// Windows returns the closed stall windows recorded so far.
func (l *Liveness) Windows() []StallWindow {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]StallWindow(nil), l.done...)
}

// groupSpan is one merged stalled period: the union of a group's
// overlapping windows.
type groupSpan struct {
	point   Point
	kill    bool
	lo, hi  uint64
	windows int
}

// groups merges the closed windows by Group. The ops counter is
// monotone, so a group's merged progress is max(OpsAfter) minus
// min(OpsBefore) across its windows.
func (l *Liveness) groups() []groupSpan {
	byID := map[int]*groupSpan{}
	var order []int
	for _, w := range l.Windows() {
		g, ok := byID[w.Group]
		if !ok {
			g = &groupSpan{point: w.Point, lo: w.OpsBefore, hi: w.OpsAfter}
			byID[w.Group] = g
			order = append(order, w.Group)
		}
		if w.OpsBefore < g.lo {
			g.lo = w.OpsBefore
		}
		if w.OpsAfter > g.hi {
			g.hi = w.OpsAfter
		}
		g.kill = g.kill || w.Kill
		g.windows++
	}
	spans := make([]groupSpan, 0, len(order))
	for _, id := range order {
		spans = append(spans, *byID[id])
	}
	return spans
}

// MinProgress returns the smallest merged-group progress (and true),
// or (0, false) when no window closed. Individual windows can report
// zero progress legitimately when they overlap a progressing peer
// window; the group span is the meaningful survival metric.
func (l *Liveness) MinProgress() (uint64, bool) {
	spans := l.groups()
	if len(spans) == 0 {
		return 0, false
	}
	min := ^uint64(0)
	for _, g := range spans {
		if p := g.hi - g.lo; p < min {
			min = p
		}
	}
	return min, true
}

// Check returns an error naming the first merged stalled period during
// which the rest of the system completed no operations — a progress
// (lock-freedom) violation under the injected fault.
func (l *Liveness) Check() error {
	for i, g := range l.groups() {
		if g.hi == g.lo {
			verb := "stalled"
			if g.kill {
				verb = "dead"
			}
			return fmt.Errorf("fault: liveness violation: stalled period %d (%s owner at %s, %d overlapping windows) saw zero completed operations (system blocked behind the victim)",
				i, verb, g.point, g.windows)
		}
	}
	return nil
}
