package fault

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilPlanDisabled: every entry point is a no-op on a nil plan.
func TestNilPlanDisabled(t *testing.T) {
	var p *Plan
	if _, ok := p.At(PointTxAccess); ok {
		t.Fatal("nil plan fired")
	}
	p.Hit(PointFallbackOwner)
	p.Exec(Effect{Kill: true}) // must not park
	p.ReleaseKilled()
	if p.Hits(PointTxAccess) != 0 || p.Fires(PointTxAccess) != 0 {
		t.Fatal("nil plan counted")
	}
	if p.FireCounts() != nil {
		t.Fatal("nil plan reported fire counts")
	}
	if p.String() != "fault.Plan(nil)" {
		t.Fatalf("nil plan String = %q", p.String())
	}
}

// TestEveryTrigger: every=3 after=2 count=2 fires on encounters 5 and 8
// and never again.
func TestEveryTrigger(t *testing.T) {
	p := New(1, Rule{Point: PointTxAccess, Every: 3, After: 2, Count: 2})
	var fired []int
	for i := 1; i <= 20; i++ {
		if _, ok := p.At(PointTxAccess); ok {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 8 {
		t.Fatalf("fired at %v, want [5 8]", fired)
	}
	if p.Hits(PointTxAccess) != 20 || p.Fires(PointTxAccess) != 2 {
		t.Fatalf("hits=%d fires=%d", p.Hits(PointTxAccess), p.Fires(PointTxAccess))
	}
	// A point with no rule never fires and doesn't count.
	if _, ok := p.At(PointEBRPin); ok {
		t.Fatal("unarmed point fired")
	}
}

// TestProbTriggerDeterministic: the same (seed, encounter index) always
// makes the same decision, and the empirical rate is near Prob.
func TestProbTriggerDeterministic(t *testing.T) {
	const n = 100000
	run := func() []bool {
		p := New(42, Rule{Point: PointTxAccess, Prob: 0.25})
		out := make([]bool, n)
		for i := range out {
			_, out[i] = p.At(PointTxAccess)
		}
		return out
	}
	a, b := run(), run()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical plans", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits < n/5 || hits > n/3 {
		t.Fatalf("prob=0.25 fired %d/%d times", hits, n)
	}
	// A different seed makes different decisions.
	p2 := New(43, Rule{Point: PointTxAccess, Prob: 0.25})
	same := 0
	for i := 0; i < 1000; i++ {
		if _, ok := p2.At(PointTxAccess); ok == a[i] {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seed change did not change decisions")
	}
}

// TestEffectFields: cause/stall/kill/func flow from rule to effect.
func TestEffectFields(t *testing.T) {
	called := false
	p := New(7, Rule{
		Point: PointTxAccess, Every: 1, Cause: 3,
		Stall: time.Millisecond, Func: func() { called = true },
	})
	eff, ok := p.At(PointTxAccess)
	if !ok || eff.Cause != 3 || eff.Stall != time.Millisecond || eff.Kill || eff.Seq != 1 {
		t.Fatalf("effect %+v", eff)
	}
	p.Exec(eff)
	if !called {
		t.Fatal("Func effect not run")
	}
}

// TestOnFireHook: the recorder bridge sees every fire with its seq.
func TestOnFireHook(t *testing.T) {
	p := New(1, Rule{Point: PointQuiesce, Every: 2})
	var seen []uint64
	p.SetOnFire(func(e Effect) {
		if e.Point != PointQuiesce {
			t.Errorf("onFire point %v", e.Point)
		}
		seen = append(seen, e.Seq)
	})
	for i := 0; i < 6; i++ {
		p.Hit(PointQuiesce)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("onFire seqs %v", seen)
	}
}

// TestKillParksUntilRelease: a kill effect parks the goroutine; only
// ReleaseKilled resumes it.
func TestKillParksUntilRelease(t *testing.T) {
	p := New(1, Rule{Point: PointFallbackOwner, Every: 1, Kill: true})
	done := make(chan struct{})
	go func() {
		p.Hit(PointFallbackOwner)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("killed goroutine returned before release")
	case <-time.After(20 * time.Millisecond):
	}
	p.ReleaseKilled()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("killed goroutine did not resume after release")
	}
	p.ReleaseKilled() // idempotent
}

// TestWith: extension preserves the base rules with fresh counters and
// composes Func on the same point.
func TestWith(t *testing.T) {
	base := New(5, Rule{Point: PointTxAccess, Every: 2})
	base.Hit(PointTxAccess)
	calls := 0
	np := base.With(Rule{Point: PointFallbackOwner, Func: func() { calls++ }})
	if np.Hits(PointTxAccess) != 0 {
		t.Fatal("With inherited counters")
	}
	if _, ok := np.At(PointTxAccess); ok {
		t.Fatal("every=2 fired on first encounter")
	}
	if _, ok := np.At(PointTxAccess); !ok {
		t.Fatal("every=2 did not fire on second encounter")
	}
	np.Hit(PointFallbackOwner)
	np.Hit(PointFallbackOwner)
	if calls != 2 {
		t.Fatalf("bare Func rule fired %d times, want every encounter", calls)
	}
	// nil receiver compiles a fresh plan.
	var nilp *Plan
	np2 := nilp.With(Rule{Point: PointFallbackOwner, Func: func() {}})
	if np2 == nil {
		t.Fatal("nil.With returned nil")
	}
}

// TestComposedRules: two rules on one point chain their callbacks under
// the first rule's trigger.
func TestComposedRules(t *testing.T) {
	var order []int
	p := New(1,
		Rule{Point: PointBatchFlush, Every: 2, Func: func() { order = append(order, 1) }},
		Rule{Point: PointBatchFlush, Func: func() { order = append(order, 2) }},
	)
	p.Hit(PointBatchFlush)
	p.Hit(PointBatchFlush)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("composed order %v", order)
	}
}

// TestLivenessWindows: watched stalls bracket windows; Check flags a
// zero-progress window; Finish closes kill windows.
func TestLivenessWindows(t *testing.T) {
	lv := &Liveness{}
	p := New(1, Rule{Point: PointFallbackOwner, Every: 1, Stall: time.Millisecond, Watch: true}).Watch(lv)

	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() { // background progress while the victim stalls
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				lv.OpDone()
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	p.Hit(PointFallbackOwner)
	close(stop)
	wg.Wait()

	lv.Finish()
	ws := lv.Windows()
	if len(ws) != 1 || ws[0].Kill || ws[0].Point != PointFallbackOwner {
		t.Fatalf("windows %+v", ws)
	}
	if ws[0].Progress() == 0 {
		t.Fatal("no progress observed during stall")
	}
	if err := lv.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if min, ok := lv.MinProgress(); !ok || min == 0 {
		t.Fatalf("MinProgress = %d, %v", min, ok)
	}

	// A kill window with zero progress fails Check after Finish.
	lv2 := &Liveness{}
	p2 := New(1, Rule{Point: PointFallbackOwner, Every: 1, Kill: true, Watch: true}).Watch(lv2)
	defer p2.ReleaseKilled()
	started := make(chan struct{})
	go func() {
		close(started)
		p2.Hit(PointFallbackOwner)
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let it park and open the window
	lv2.Finish()
	if err := lv2.Check(); err == nil {
		t.Fatal("Check accepted a zero-progress kill window")
	}
}

// TestPlanString: the reproduction dump names seed and every rule.
func TestPlanString(t *testing.T) {
	p := New(0xbeef,
		Rule{Point: PointFallbackOwner, Every: 16, Count: 4, Kill: true, Watch: true},
		Rule{Point: PointTxAccess, Prob: 0.125, Cause: 2},
	)
	s := p.String()
	for _, want := range []string{"seed=0xbeef", "fallback-owner", "every=16", "count=4", "kill", "tx-access", "prob=0.125", "cause=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}

// TestPointNames: wire names are stable and unique.
func TestPointNames(t *testing.T) {
	seen := map[string]bool{}
	for pt := Point(1); pt < NumPoints; pt++ {
		n := pt.String()
		if n == "" || seen[n] {
			t.Fatalf("point %d name %q duplicate or empty", pt, n)
		}
		seen[n] = true
	}
}

// BenchmarkNilPlanAt measures the disabled fast path (and its zero
// allocations — the property the alloc gates depend on).
func BenchmarkNilPlanAt(b *testing.B) {
	var p *Plan
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := p.At(PointTxAccess); ok {
			b.Fatal("fired")
		}
	}
}

// BenchmarkArmedPlanMiss measures an armed plan on encounters that do
// not fire (the common case in an abort-storm run) — still 0 allocs.
func BenchmarkArmedPlanMiss(b *testing.B) {
	p := New(9, Rule{Point: PointTxAccess, Prob: 1e-12})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := p.At(PointTxAccess); ok {
			b.Fatal("fired")
		}
	}
}
