// Package ebr implements DEBRA-style epoch-based reclamation (Brown,
// PODC 2015), the scheme the paper's experiments used, together with
// the Section 9 observation: nodes removed inside a transaction can be
// recycled *immediately* when every observer is also transactional
// (a reader of recycled memory simply aborts), while nodes the
// fallback path may still reference must wait out a grace period.
//
// Go's garbage collector makes reclamation optional, so this package is
// used for node pooling: Retire defers recycling until two epoch
// advances guarantee no thread still holds a reference, and RetireFast
// recycles immediately (the 3-path fast-path discipline).
package ebr

import (
	"sync"
	"sync/atomic"

	"htmtree/internal/fault"
)

// advanceEvery is how many retirements a thread performs between
// attempts to advance the global epoch.
const advanceEvery = 32

// Manager coordinates epochs across threads.
type Manager struct {
	epoch atomic.Uint64
	// faults arms fault.PointEBRPin (SetFaults): a stall injected right
	// after a thread pins its epoch, which lags the global epoch and
	// starves every other thread's grace periods for the duration.
	faults *fault.Plan

	mu      sync.Mutex
	threads []*Thread
}

// New creates a manager. The free callback receives every object whose
// grace period has expired (typically returning it to a pool).
func New() *Manager {
	m := &Manager{}
	m.epoch.Store(1)
	return m
}

// Thread is a per-goroutine reclamation context.
type Thread struct {
	m       *Manager
	ann     atomic.Uint64 // announced epoch<<1 | active
	bags    [3][]any
	bagEra  [3]uint64
	lastE   uint64 // epoch last seen by Begin (drain gating)
	retires int
	free    func(any)
	faults  *fault.Plan // cached Manager.faults; Begin is per-op hot
}

// SetFaults arms the manager's fault-injection seam. Call before any
// NewThread; threads created earlier do not observe the plan.
func (m *Manager) SetFaults(p *fault.Plan) { m.faults = p }

// NewThread registers a thread whose expired retirees are passed to
// free.
func (m *Manager) NewThread(free func(any)) *Thread {
	t := &Thread{m: m, free: free, faults: m.faults}
	m.mu.Lock()
	m.threads = append(m.threads, t)
	m.mu.Unlock()
	return t
}

// Begin enters an operation: the thread announces the current epoch and
// becomes visible to grace-period computations. Operations must be
// bracketed Begin/End and must not nest. Bags are only scanned when the
// epoch moved since the previous Begin, which keeps the per-operation
// cost of an idle reclamation domain at two atomic operations.
func (t *Thread) Begin() {
	e := t.m.epoch.Load()
	t.ann.Store(e<<1 | 1)
	if t.faults != nil {
		// Pin-stall seam: the thread is announced in epoch e; a stall
		// here holds the global epoch back (tryAdvance skips past no
		// active lagging thread), so reclamation everywhere waits.
		t.faults.Hit(fault.PointEBRPin)
	}
	if e != t.lastE {
		t.lastE = e
		t.drain(e)
	}
}

// End leaves the operation.
func (t *Thread) End() {
	t.ann.Store(t.ann.Load() &^ 1)
}

// Active reports whether the thread is currently inside a Begin/End
// bracket. The helpable-fallback engine consults it before running
// helped operations, which read shared nodes and are only safe under an
// announced epoch.
func (t *Thread) Active() bool {
	return t.ann.Load()&1 == 1
}

// Retire schedules x for recycling once no thread can still hold a
// reference obtained before this call (two epoch advances).
func (t *Thread) Retire(x any) {
	e := t.m.epoch.Load()
	i := e % 3
	if t.bagEra[i] != e {
		// The bag holds retirees from an epoch that is at least 3 old:
		// their grace period has long expired.
		t.flush(i)
		t.bagEra[i] = e
	}
	t.bags[i] = append(t.bags[i], x)
	t.retires++
	if t.retires%advanceEvery == 0 {
		t.tryAdvance()
	}
}

// RetireFast recycles x immediately — the Section 9 fast-path rule,
// sound only when every thread that could still reference x runs
// transactionally (so a stale access aborts rather than observing the
// recycled object). The caller asserts that condition; for the 3-path
// algorithm it holds for nodes removed on the fast path, because the
// fallback path is excluded while the fast path runs and re-searches
// from the root afterwards.
func (t *Thread) RetireFast(x any) {
	t.free(x)
}

// drain frees bags whose grace period expired as of epoch e.
func (t *Thread) drain(e uint64) {
	for i := uint64(0); i < 3; i++ {
		if t.bagEra[i] != 0 && e >= t.bagEra[i]+2 {
			t.flush(i)
		}
	}
}

func (t *Thread) flush(i uint64) {
	for _, x := range t.bags[i] {
		t.free(x)
	}
	t.bags[i] = t.bags[i][:0]
	t.bagEra[i] = 0
}

// tryAdvance advances the global epoch when every active thread has
// announced it.
func (t *Thread) tryAdvance() {
	e := t.m.epoch.Load()
	t.m.mu.Lock()
	threads := t.m.threads
	t.m.mu.Unlock()
	for _, o := range threads {
		a := o.ann.Load()
		if a&1 == 1 && a>>1 != e {
			return // an active thread lags; no new grace period yet
		}
	}
	t.m.epoch.CompareAndSwap(e, e+1)
}

// Pool is a trivial free-list used as the free target in tests and
// benchmarks; it counts recycled objects so reuse is observable.
type Pool struct {
	mu       sync.Mutex
	items    []any
	Recycled atomic.Uint64
}

// Put stores x for reuse.
func (p *Pool) Put(x any) {
	p.Recycled.Add(1)
	p.mu.Lock()
	p.items = append(p.items, x)
	p.mu.Unlock()
}

// Get returns a recycled object, or nil.
func (p *Pool) Get() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.items) == 0 {
		return nil
	}
	x := p.items[len(p.items)-1]
	p.items = p.items[:len(p.items)-1]
	return x
}
