package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGracePeriodOrdering(t *testing.T) {
	t.Parallel()
	m := New()
	var freed []int
	th := m.NewThread(func(x any) { freed = append(freed, x.(int)) })

	th.Begin()
	th.Retire(1)
	th.End()
	if len(freed) != 0 {
		t.Fatal("retiree freed before any grace period")
	}
	// Drive epochs forward; with only one (quiescent) thread the epoch
	// advances freely and bags drain after two advances.
	for i := 0; i < 4*advanceEvery; i++ {
		th.Begin()
		th.Retire(100 + i)
		th.End()
	}
	th.Begin()
	th.End()
	if len(freed) == 0 {
		t.Fatal("nothing freed after multiple epoch advances")
	}
	if freed[0] != 1 {
		t.Fatalf("first freed = %d, want the first retiree", freed[0])
	}
}

func TestActiveThreadBlocksAdvance(t *testing.T) {
	t.Parallel()
	m := New()
	blocker := m.NewThread(func(any) {})
	freedCount := 0
	worker := m.NewThread(func(any) { freedCount++ })

	blocker.Begin() // stays active at the current epoch

	e0 := m.epoch.Load()
	for i := 0; i < 10*advanceEvery; i++ {
		worker.Begin()
		worker.Retire(i)
		worker.End()
	}
	// The epoch may advance once (the blocker announced e0), but a
	// second advance — and therefore any reclamation — requires the
	// blocker to move on: the two-advance grace period.
	if e := m.epoch.Load(); e > e0+1 {
		t.Fatalf("epoch advanced to %d past active thread at %d", e, e0)
	}
	if freedCount != 0 {
		t.Fatal("retirees freed while a pre-epoch thread was active")
	}
	blocker.End()
	for i := 0; i < 10*advanceEvery; i++ {
		worker.Begin()
		worker.Retire(1000 + i)
		worker.End()
	}
	if freedCount == 0 {
		t.Fatal("nothing freed after the blocker left")
	}
}

// TestNoUseAfterFree runs readers traversing a mutable chain while a
// writer unlinks and retires nodes: no reader may ever observe a node
// after its free callback ran.
func TestNoUseAfterFree(t *testing.T) {
	t.Parallel()
	type node struct {
		freed atomic.Bool
		next  atomic.Pointer[node]
	}
	m := New()
	var head atomic.Pointer[node]
	mk := func() *node { return &node{} }
	// chain of 8
	first := mk()
	cur := first
	for i := 0; i < 7; i++ {
		n := mk()
		cur.next.Store(n)
		cur = n
	}
	head.Store(first)

	var violations atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := m.NewThread(func(any) {})
			for {
				select {
				case <-stop:
					return
				default:
				}
				th.Begin()
				for n := head.Load(); n != nil; n = n.next.Load() {
					if n.freed.Load() {
						violations.Add(1)
					}
				}
				th.End()
			}
		}()
	}

	writer := m.NewThread(func(x any) { x.(*node).freed.Store(true) })
	for i := 0; i < 3000; i++ {
		writer.Begin()
		// Unlink the head node, push a replacement, retire the old one.
		old := head.Load()
		n := mk()
		n.next.Store(old.next.Load())
		head.Store(n)
		writer.Retire(old)
		writer.End()
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d use-after-free observations", v)
	}
}

func TestPoolRoundTrip(t *testing.T) {
	t.Parallel()
	var p Pool
	if p.Get() != nil {
		t.Fatal("empty pool returned an object")
	}
	p.Put(42)
	if got := p.Get(); got != 42 {
		t.Fatalf("Get = %v, want 42", got)
	}
	if p.Recycled.Load() != 1 {
		t.Fatal("recycle count wrong")
	}
}

// TestRetireFastImmediate documents the Section 9 fast-path rule.
func TestRetireFastImmediate(t *testing.T) {
	t.Parallel()
	m := New()
	var p Pool
	th := m.NewThread(p.Put)
	th.RetireFast(7)
	if got := p.Get(); got != 7 {
		t.Fatalf("RetireFast did not recycle immediately: %v", got)
	}
}
