package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGracePeriodOrdering(t *testing.T) {
	t.Parallel()
	m := New()
	var freed []int
	th := m.NewThread(func(x any) { freed = append(freed, x.(int)) })

	th.Begin()
	th.Retire(1)
	th.End()
	if len(freed) != 0 {
		t.Fatal("retiree freed before any grace period")
	}
	// Drive epochs forward; with only one (quiescent) thread the epoch
	// advances freely and bags drain after two advances.
	for i := 0; i < 4*advanceEvery; i++ {
		th.Begin()
		th.Retire(100 + i)
		th.End()
	}
	th.Begin()
	th.End()
	if len(freed) == 0 {
		t.Fatal("nothing freed after multiple epoch advances")
	}
	if freed[0] != 1 {
		t.Fatalf("first freed = %d, want the first retiree", freed[0])
	}
}

func TestActiveThreadBlocksAdvance(t *testing.T) {
	t.Parallel()
	m := New()
	blocker := m.NewThread(func(any) {})
	freedCount := 0
	worker := m.NewThread(func(any) { freedCount++ })

	blocker.Begin() // stays active at the current epoch

	e0 := m.epoch.Load()
	for i := 0; i < 10*advanceEvery; i++ {
		worker.Begin()
		worker.Retire(i)
		worker.End()
	}
	// The epoch may advance once (the blocker announced e0), but a
	// second advance — and therefore any reclamation — requires the
	// blocker to move on: the two-advance grace period.
	if e := m.epoch.Load(); e > e0+1 {
		t.Fatalf("epoch advanced to %d past active thread at %d", e, e0)
	}
	if freedCount != 0 {
		t.Fatal("retirees freed while a pre-epoch thread was active")
	}
	blocker.End()
	for i := 0; i < 10*advanceEvery; i++ {
		worker.Begin()
		worker.Retire(1000 + i)
		worker.End()
	}
	if freedCount == 0 {
		t.Fatal("nothing freed after the blocker left")
	}
}

// TestNoUseAfterFree runs readers traversing a mutable chain while a
// writer unlinks and retires nodes: no reader may ever observe a node
// after its free callback ran.
func TestNoUseAfterFree(t *testing.T) {
	t.Parallel()
	type node struct {
		freed atomic.Bool
		next  atomic.Pointer[node]
	}
	m := New()
	var head atomic.Pointer[node]
	mk := func() *node { return &node{} }
	// chain of 8
	first := mk()
	cur := first
	for i := 0; i < 7; i++ {
		n := mk()
		cur.next.Store(n)
		cur = n
	}
	head.Store(first)

	var violations atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := m.NewThread(func(any) {})
			for {
				select {
				case <-stop:
					return
				default:
				}
				th.Begin()
				for n := head.Load(); n != nil; n = n.next.Load() {
					if n.freed.Load() {
						violations.Add(1)
					}
				}
				th.End()
			}
		}()
	}

	writer := m.NewThread(func(x any) { x.(*node).freed.Store(true) })
	for i := 0; i < 3000; i++ {
		writer.Begin()
		// Unlink the head node, push a replacement, retire the old one.
		old := head.Load()
		n := mk()
		n.next.Store(old.next.Load())
		head.Store(n)
		writer.Retire(old)
		writer.End()
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d use-after-free observations", v)
	}
}

func TestPoolRoundTrip(t *testing.T) {
	t.Parallel()
	var p Pool
	if p.Get() != nil {
		t.Fatal("empty pool returned an object")
	}
	p.Put(42)
	if got := p.Get(); got != 42 {
		t.Fatalf("Get = %v, want 42", got)
	}
	if p.Recycled.Load() != 1 {
		t.Fatal("recycle count wrong")
	}
}

// TestRetireFastImmediate documents the Section 9 fast-path rule.
func TestRetireFastImmediate(t *testing.T) {
	t.Parallel()
	m := New()
	var p Pool
	th := m.NewThread(p.Put)
	th.RetireFast(7)
	if got := p.Get(); got != 7 {
		t.Fatalf("RetireFast did not recycle immediately: %v", got)
	}
}

// TestActiveReportsSection checks the Active query the helpable
// fallback's helper guard relies on: a thread is active exactly while
// it is inside a Begin/End section, through repeated sections, and
// retiring from within a section does not disturb the report.
func TestActiveReportsSection(t *testing.T) {
	t.Parallel()
	m := New()
	th := m.NewThread(func(any) {})
	if th.Active() {
		t.Fatal("fresh thread reports active")
	}
	for i := 0; i < 3; i++ {
		th.Begin()
		if !th.Active() {
			t.Fatalf("section %d: thread inside Begin/End reports inactive", i)
		}
		th.Retire(i)
		if !th.Active() {
			t.Fatalf("section %d: Retire flipped the active report", i)
		}
		th.End()
		if th.Active() {
			t.Fatalf("section %d: thread after End reports active", i)
		}
	}
}

// TestRetireOncePerNode retires each of a set of nodes exactly once
// from whichever of two threads claims it first — the helpable
// fallback's install-claim discipline — and checks every node is freed
// exactly once and none is lost.
func TestRetireOncePerNode(t *testing.T) {
	t.Parallel()
	m := New()
	const nodes = 200
	var freed [nodes]atomic.Uint32
	mk := func() func(any) {
		return func(x any) {
			if i := x.(int); i >= 0 {
				freed[i].Add(1)
			}
		}
	}
	a := m.NewThread(mk())
	b := m.NewThread(mk())

	var claims [nodes]atomic.Bool
	var wg sync.WaitGroup
	for _, th := range []*Thread{a, b} {
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			for i := 0; i < nodes; i++ {
				th.Begin()
				if claims[i].CompareAndSwap(false, true) {
					th.Retire(i)
				}
				th.End()
			}
		}(th)
	}
	wg.Wait()
	// Drain: epoch advances are driven by Retire, so push sentinel
	// retirees (negative, ignored by the free callback) until every
	// bag has aged out.
	for i := 0; i < 4*advanceEvery; i++ {
		a.Begin()
		a.Retire(-1)
		a.End()
		b.Begin()
		b.Retire(-1)
		b.End()
	}
	for i := range freed {
		if n := freed[i].Load(); n != 1 {
			t.Fatalf("node %d freed %d times, want exactly once", i, n)
		}
	}
}
