// Package rcu provides userspace read-copy-update primitives (Desnoyers
// et al., IEEE TPDS 2012): read-side critical sections that cost two
// atomic stores, and a Synchronize (the paper's rcu_wait) that blocks
// until every read-side critical section that started before it has
// ended. Section 10.1 of Brown's paper uses these primitives in the
// CITRUS search tree and then shows how the 3-path template removes the
// Synchronize from the HTM paths.
package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RCU is a reader-registry domain. Create with New.
type RCU struct {
	global atomic.Uint64

	mu      sync.Mutex
	readers []*Reader
}

// New creates an RCU domain.
func New() *RCU {
	r := &RCU{}
	r.global.Store(2)
	return r
}

// Reader is a per-goroutine read-side handle.
type Reader struct {
	slot atomic.Uint64
	r    *RCU
}

// NewReader registers a reader.
func (r *RCU) NewReader() *Reader {
	rd := &Reader{r: r}
	r.mu.Lock()
	r.readers = append(r.readers, rd)
	r.mu.Unlock()
	return rd
}

// Lock enters a read-side critical section (the paper's rcu_begin).
// Critical sections must not nest.
func (rd *Reader) Lock() {
	rd.slot.Store(rd.r.global.Load() | 1)
}

// Unlock leaves the read-side critical section (rcu_end).
func (rd *Reader) Unlock() {
	rd.slot.Store(0)
}

// Synchronize blocks until every read-side critical section that
// started before the call has ended (rcu_wait).
func (r *RCU) Synchronize() {
	g := r.global.Add(2)
	r.mu.Lock()
	readers := r.readers
	r.mu.Unlock()
	for _, rd := range readers {
		for i := 0; ; i++ {
			v := rd.slot.Load()
			if v == 0 || v >= g {
				break
			}
			if i%64 == 63 {
				runtime.Gosched()
			}
		}
	}
}
