package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSynchronizeWaitsForActiveReader(t *testing.T) {
	t.Parallel()
	r := New()
	rd := r.NewReader()
	rd.Lock()

	done := make(chan struct{})
	go func() {
		r.Synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Synchronize returned while a pre-existing reader was active")
	case <-time.After(20 * time.Millisecond):
	}
	rd.Unlock()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Synchronize did not return after the reader left")
	}
}

func TestSynchronizeIgnoresLaterReaders(t *testing.T) {
	t.Parallel()
	r := New()
	rd := r.NewReader()
	// A reader that starts after Synchronize begins must not be waited
	// for. We emulate the ordering by locking after the grace period
	// number is taken: Synchronize runs concurrently, the reader enters
	// "late", and Synchronize must still terminate.
	var entered sync.WaitGroup
	entered.Add(1)
	go func() {
		entered.Done()
		// Late reader, repeatedly entering and leaving.
		for i := 0; i < 100; i++ {
			rd.Lock()
			rd.Unlock()
		}
	}()
	entered.Wait()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			r.Synchronize()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize livelocked against later readers")
	}
}

// TestGracePeriodProtectsReclamation models the canonical RCU use:
// unlink, synchronize, free. Readers must never observe a freed cell.
func TestGracePeriodProtectsReclamation(t *testing.T) {
	t.Parallel()
	type cell struct {
		freed atomic.Bool
	}
	r := New()
	var ptr atomic.Pointer[cell]
	ptr.Store(&cell{})

	var violations atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd := r.NewReader()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rd.Lock()
				c := ptr.Load()
				if c.freed.Load() {
					violations.Add(1)
				}
				rd.Unlock()
			}
		}()
	}

	for i := 0; i < 300; i++ {
		old := ptr.Load()
		ptr.Store(&cell{})
		r.Synchronize()
		old.freed.Store(true) // "free" the old cell
	}
	close(stop)
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d readers observed a freed cell", n)
	}
}
