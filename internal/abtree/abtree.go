// Package abtree implements the relaxed (a,b)-tree of Section 6.2 of
// Brown's "A Template for Implementing Fast Lock-free Trees Using HTM"
// (PODC 2017), based on Jacobsen and Larsen's relaxed-balance variant of
// (a,b)-trees, runnable under every template algorithm the paper
// studies.
//
// The tree is leaf-oriented: key-value pairs live in leaves (up to b per
// leaf), internal nodes hold routing keys and between 2 and b children.
// Balance is relaxed: updates may leave violations — a *tagged* internal
// node (created by a leaf or internal split; the subtree is one level
// too tall) or an *underfull* node (degree below a) — which are repaired
// by separate rebalancing steps, each itself a template operation:
//
//   - root-untag: a tagged root loses its tag (height grows legally),
//   - absorb: a tagged node's children merge into its parent,
//   - split-push-up: a full parent and its tagged child redistribute
//     into two nodes under a new tagged parent (the tag moves up),
//   - join: an underfull node merges with a sibling,
//   - share: an underfull node rebalances keys with a sibling,
//   - root-collapse: a unary internal root is removed (height shrinks).
//
// Every update fixes the violations reachable on its key's search path
// before returning, so a quiescent tree is a proper (a,b)-tree: no tags,
// all degrees in [a,b] (root exempt), uniform leaf depth.
//
// Per the paper, the fast path modifies leaf key/value arrays in place
// (they are transactional cells) and creates nodes only on splits, while
// the middle and fallback paths follow the template discipline of
// replacing nodes; rebalancing steps create new nodes on every path
// (Section 6.2's closing remark).
package abtree

import (
	"fmt"
	"sync"
	"sync/atomic"

	"htmtree/internal/dict"
	"htmtree/internal/ebr"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
	"htmtree/internal/nodepool"
)

// Default degree bounds (paper Section 7: a=6, b=16 so a node spans four
// cache lines).
const (
	DefaultA = 6
	DefaultB = 16
)

// Node is an (a,b)-tree node.
//
// Internal nodes: keys (immutable routing keys, len = degree-1), children
// (cells, len = degree, fixed at creation — structural changes replace
// the node), tagged (immutable).
//
// Leaves: size and the first size entries of lkeys/lvals hold the pairs
// in ascending key order. They are cells because the fast path mutates
// them in place; the template paths replace the leaf instead and only
// ever read them.
type Node struct {
	hdr    llxscx.Hdr
	leaf   bool
	tagged bool

	keys     []uint64
	children []htm.Ref[Node]

	size  htm.Word
	lkeys []htm.Word
	lvals []htm.Word

	// Subtree aggregates (agg.go). Every node maintains the sum of the
	// keys in its subtree in aggSum; internal nodes additionally hold
	// count/min/max (a leaf derives them from size and lkeys). min/max
	// hold the sentinels ^0/0 while the subtree is empty.
	aggSum   htm.Word
	aggCount htm.Word
	aggMin   htm.Word
	aggMax   htm.Word
}

// Tagged reports the node's tag (exported for tests).
func (n *Node) Tagged() bool { return n.tagged }

// Leaf reports whether the node is a leaf (exported for tests).
func (n *Node) Leaf() bool { return n.leaf }

// kv is a key/value pair in flight between nodes.
type kv struct {
	k, v uint64
}

// newLeaf builds a bootstrap leaf with capacity b holding pairs
// (sorted), bound to clk. Steady-state operations allocate through the
// handle pools instead (Handle.newLeaf in pool.go).
func newLeaf(clk *htm.Clock, b int, pairs []kv) *Node {
	n := &Node{
		leaf:  true,
		lkeys: make([]htm.Word, b),
		lvals: make([]htm.Word, b),
	}
	n.hdr.Bind(clk)
	n.size.Bind(clk)
	n.aggSum.Bind(clk)
	for i := 0; i < b; i++ {
		n.lkeys[i].Bind(clk)
		n.lvals[i].Bind(clk)
	}
	n.size.Init(uint64(len(pairs)))
	n.aggSum.Init(sumPairs(pairs))
	for i, p := range pairs {
		n.lkeys[i].Init(p.k)
		n.lvals[i].Init(p.v)
	}
	return n
}

// newInternal builds a bootstrap internal node bound to clk.
// len(children) must equal len(keys)+1.
func newInternal(clk *htm.Clock, keys []uint64, children []*Node, tagged bool) *Node {
	n := &Node{
		keys:     append([]uint64(nil), keys...),
		children: make([]htm.Ref[Node], len(children)),
		tagged:   tagged,
	}
	n.hdr.Bind(clk)
	n.aggSum.Bind(clk)
	n.aggCount.Bind(clk)
	n.aggMin.Bind(clk)
	n.aggMax.Bind(clk)
	for i, c := range children {
		n.children[i].Bind(clk)
		n.children[i].Init(c)
	}
	initAggs(nil, n)
	return n
}

// degree returns the node's degree: number of children for internal
// nodes, number of pairs for leaves (read through tx).
func (n *Node) degree(tx *htm.Tx) int {
	if n.leaf {
		return int(n.size.Get(tx))
	}
	return len(n.children)
}

// childIndex returns the index of the child a search for key follows.
func childIndex(n *Node, key uint64) int {
	i := 0
	for i < len(n.keys) && key >= n.keys[i] {
		i++
	}
	return i
}

// Config configures a Tree.
type Config struct {
	// A and B are the degree bounds (defaults 6 and 16; B >= 2A-1).
	A, B int
	// Algorithm selects the template implementation (default 3-path).
	Algorithm engine.Algorithm
	// HTM configures the simulated HTM.
	HTM htm.Config
	// Engine overrides attempt budgets and the fallback indicator.
	Engine engine.Config
	// SearchOutsideTx enables the Section 8 optimization.
	SearchOutsideTx bool
}

// Tree is a concurrent relaxed (a,b)-tree.
type Tree struct {
	tm  *htm.TM
	eng *engine.Engine
	cfg Config
	// entry is the permanent entry point; entry.children[0] is the root.
	entry *Node

	// sumMu serializes KeySum's shared reclamation context sumRd, which
	// keeps the walk inside the epoch domain so pooled nodes — whose
	// reuse rewrites internal nodes' plain key/child arrays — cannot be
	// recycled under it (the sharding layer runs KeySum concurrently
	// with updates when validating consistent cuts).
	sumMu sync.Mutex
	sumRd *ebr.Thread

	// aggVer is the aggregate seqlock (agg.go): odd exactly while a
	// non-transactional mutator is between its SCX swing and the
	// completion of its aggregate fixup.
	aggVer htm.Word

	// aggFastQ/aggWalkQ count aggregate queries answered by the O(log n)
	// aggregate descent vs the leaf-walk fallback (Stats.Aggregate).
	aggFastQ, aggWalkQ atomic.Uint64
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	if cfg.A == 0 {
		cfg.A = DefaultA
	}
	if cfg.B == 0 {
		cfg.B = DefaultB
	}
	if cfg.A < 2 || cfg.B < 2*cfg.A-1 {
		panic(fmt.Sprintf("abtree: invalid degree bounds a=%d b=%d (need a>=2, b>=2a-1)",
			cfg.A, cfg.B))
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = engine.AlgThreePath
	}
	ecfg := cfg.Engine
	ecfg.Algorithm = cfg.Algorithm
	tm := htm.New(cfg.HTM)
	t := &Tree{
		tm:  tm,
		eng: engine.New(ecfg, tm.Clock()),
		cfg: cfg,
	}
	t.entry = newInternal(tm.Clock(), nil,
		[]*Node{newLeaf(tm.Clock(), cfg.B, nil)}, false)
	t.aggVer.Bind(tm.Clock())
	t.sumRd = t.eng.ReclaimReader()
	return t
}

// TM exposes the tree's transactional memory (for statistics).
func (t *Tree) TM() *htm.TM { return t.tm }

// Engine exposes the tree's execution engine (for statistics).
func (t *Tree) Engine() *engine.Engine { return t.eng }

// OpStats returns per-path operation completion counts
// (workload.StatsProvider).
func (t *Tree) OpStats() engine.OpStats { return t.eng.Stats() }

// HTMStats returns per-path transaction commit/abort counts
// (workload.StatsProvider).
func (t *Tree) HTMStats() htm.Stats { return t.tm.Stats() }

// Handle is a per-thread handle to the tree. It owns the thread's node
// pools (pool.go): steady-state operations draw leaves and internal
// nodes (with their key/child arrays) from the pools and removals feed
// them back through epoch-based reclamation.
type Handle struct {
	t   *Tree
	e   *engine.Thread
	clk *htm.Clock

	argKey, argVal uint64
	argLo, argHi   uint64
	resVal         uint64
	resFound       bool
	needFix        bool
	fixMore        bool
	rqOut          []dict.KV
	resAgg         dict.Agg

	// path records the internal nodes on an update's search path, root
	// child first down to the leaf's parent (agg.go maintenance).
	path []*Node
	// pend holds rebalance replacement nodes whose aggregate rebuild is
	// deferred into the non-transactional SCX bracket (prims.scx).
	pend []pendAgg

	// merge scratch: capacity b+1 so a full leaf plus one pair fits.
	buf []kv
	// split scratch for the fast path's routing-key/child argument
	// slices, so splits do not allocate slice headers per operation.
	kbuf []uint64
	cbuf []*Node

	// pool holds the thread's node free lists and attempt state
	// (internal/nodepool; wired to the tree's node kinds in pool.go).
	pool *nodepool.Pool[Node]

	insertOp, deleteOp, searchOp, rqOp, fixOp, aggOp engine.Op
}

var _ dict.Handle = (*Handle)(nil)

// NewHandle registers a per-thread handle.
func (t *Tree) NewHandle() dict.Handle { return t.newHandle() }

func (t *Tree) newHandle() *Handle {
	h := &Handle{
		t:    t,
		e:    t.eng.NewThread(t.tm.NewThread()),
		clk:  t.tm.Clock(),
		buf:  make([]kv, 0, t.cfg.B+1),
		kbuf: make([]uint64, 0, 1),
		cbuf: make([]*Node, 0, 2),
	}
	h.pool = nodepool.New[Node](func(n *Node) bool { return n.leaf }, h.freshNode, h.e)
	h.e.EnableReclaim(h.pool.Release, t.cfg.SearchOutsideTx)
	h.e.SetHelpExec(h.helpExec)
	h.buildOps()
	return h
}

// SetGateBypass exempts this handle's updates from the update monitor's
// quiesce gate (engine.Thread.SetGateBypass). Used by the shard layer's
// key migration, which operates on the tree while holding the gate.
func (h *Handle) SetGateBypass(bypass bool) { h.e.SetGateBypass(bypass) }

// Help drives the currently announced fallback operation (if any) to
// completion on this handle's thread and reports whether it helped
// (dict.Helper). The help body covers itself with the tree's
// reclamation domain, so Help is safe outside any operation — chaos
// harnesses loop it to drain the descriptor of a worker that died
// after announcing.
func (h *Handle) Help() bool { return h.e.H.Help() }

// KeySum returns the sum and count of keys. The walk joins the tree's
// reclamation domain (Begin/End on a dedicated reader context), so
// concurrent updaters cannot recycle nodes under it — in particular,
// internal nodes' plain key/child arrays cannot be rewritten while the
// walk reads them. The sharding layer's consistent cuts rely on this:
// they call KeySum while updates run and discard racing results via
// monitor validation, which requires the racing walk itself to be
// memory-safe on pooled nodes.
func (t *Tree) KeySum() (sum, count uint64) {
	t.sumMu.Lock()
	defer t.sumMu.Unlock()
	t.sumRd.Begin()
	defer t.sumRd.End()
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.leaf {
			sz := int(n.size.Get(nil))
			for i := 0; i < sz; i++ {
				sum += n.lkeys[i].Get(nil)
				count++
			}
			return
		}
		for i := range n.children {
			walk(n.children[i].Get(nil))
		}
	}
	walk(t.entry.children[0].Get(nil))
	return sum, count
}

// CheckInvariants validates the tree structure (quiescent use only).
// With strict set it additionally demands full balance: no tagged
// nodes, all degrees within [a,b] (root exempt below a), and uniform
// leaf depth — which must hold whenever all updates have completed,
// since every update repairs the violations it creates.
//
// It always verifies the maintained subtree aggregates: every node's
// sum/count/min/max cells must equal the tuple recomputed from the
// leaves beneath it (with the empty-subtree sentinels ^0/0 for
// min/max), and the aggregate seqlock must be released.
func (t *Tree) CheckInvariants(strict bool) error {
	if v := t.aggVer.Get(nil); v&1 != 0 {
		return fmt.Errorf("abtree: aggregate seqlock held at quiescence (aggVer=%d)", v)
	}
	root := t.entry.children[0].Get(nil)
	leafDepth := -1
	var walk func(n *Node, lo, hi uint64, depth int, isRoot bool) (dict.Agg, error)
	walk = func(n *Node, lo, hi uint64, depth int, isRoot bool) (dict.Agg, error) {
		agg := dict.Agg{Min: aggEmptyMin, Max: aggEmptyMax}
		if n == nil {
			return agg, fmt.Errorf("abtree: nil node reachable")
		}
		if n.hdr.Marked(nil) {
			return agg, fmt.Errorf("abtree: reachable marked node at depth %d", depth)
		}
		if n.leaf {
			sz := int(n.size.Get(nil))
			if sz > t.cfg.B {
				return agg, fmt.Errorf("abtree: leaf size %d exceeds b=%d", sz, t.cfg.B)
			}
			if strict && !isRoot && sz < t.cfg.A {
				return agg, fmt.Errorf("abtree: underfull leaf (size %d < a=%d)", sz, t.cfg.A)
			}
			prev := uint64(0)
			for i := 0; i < sz; i++ {
				k := n.lkeys[i].Get(nil)
				if i > 0 && k <= prev {
					return agg, fmt.Errorf("abtree: leaf keys unsorted (%d after %d)", k, prev)
				}
				if k < lo || k >= hi {
					return agg, fmt.Errorf("abtree: leaf key %d outside routing range [%d,%d)", k, lo, hi)
				}
				prev = k
				agg.Merge(dict.Agg{Sum: k, Count: 1, Min: k, Max: k})
			}
			if got := n.aggSum.Get(nil); got != agg.Sum {
				return agg, fmt.Errorf("abtree: leaf aggSum %d, keys sum to %d", got, agg.Sum)
			}
			if strict {
				if leafDepth == -1 {
					leafDepth = depth
				} else if leafDepth != depth {
					return agg, fmt.Errorf("abtree: leaves at depths %d and %d", leafDepth, depth)
				}
			}
			return agg, nil
		}
		d := len(n.children)
		if d != len(n.keys)+1 {
			return agg, fmt.Errorf("abtree: internal degree %d with %d keys", d, len(n.keys))
		}
		if d > t.cfg.B {
			return agg, fmt.Errorf("abtree: internal degree %d exceeds b=%d", d, t.cfg.B)
		}
		if d < 1 {
			return agg, fmt.Errorf("abtree: internal node with no children")
		}
		if strict {
			if n.tagged {
				return agg, fmt.Errorf("abtree: tagged node survived rebalancing")
			}
			if !isRoot && d < t.cfg.A {
				return agg, fmt.Errorf("abtree: underfull internal node (degree %d < a=%d)", d, t.cfg.A)
			}
			if isRoot && d < 2 {
				return agg, fmt.Errorf("abtree: unary root survived rebalancing")
			}
		}
		for i := 0; i < len(n.keys); i++ {
			if n.keys[i] < lo || n.keys[i] >= hi {
				return agg, fmt.Errorf("abtree: routing key %d outside [%d,%d)", n.keys[i], lo, hi)
			}
			if i > 0 && n.keys[i] <= n.keys[i-1] {
				return agg, fmt.Errorf("abtree: routing keys unsorted")
			}
		}
		childDepth := depth + 1
		if n.tagged {
			// A tagged node is a height violation: its subtree counts
			// one level shorter for depth purposes.
			childDepth = depth
		}
		for i := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			ca, err := walk(n.children[i].Get(nil), clo, chi, childDepth, false)
			if err != nil {
				return agg, err
			}
			agg.Merge(ca)
		}
		if got := (dict.Agg{
			Sum:   n.aggSum.Get(nil),
			Count: n.aggCount.Get(nil),
			Min:   n.aggMin.Get(nil),
			Max:   n.aggMax.Get(nil),
		}); got != agg {
			return agg, fmt.Errorf(
				"abtree: stale aggregates at depth %d: cells {sum %d count %d min %d max %d}, leaves say {sum %d count %d min %d max %d}",
				depth, got.Sum, got.Count, got.Min, got.Max,
				agg.Sum, agg.Count, agg.Min, agg.Max)
		}
		return agg, nil
	}
	_, err := walk(root, 0, ^uint64(0), 0, true)
	return err
}
