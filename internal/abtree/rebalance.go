package abtree

import (
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
)

// maxFixIterations bounds the repair loop defensively. Cooperative
// executions finish in a handful of iterations (one per level of the
// chain a violation can climb); the bound only guards against unbounded
// helping under pathological contention.
const maxFixIterations = 1 << 17

// vKind classifies a balance violation (Section 6.2 / Jacobsen-Larsen).
type vKind uint8

const (
	vNone         vKind = iota // path is clean
	vCollapseRoot              // unary internal root: height shrinks
	vUntagRoot                 // tagged root: height grows legally
	vTag                       // tagged non-root: absorb or split-push-up
	vUnderfull                 // degree < a non-root: join or share
)

// violation identifies the highest violation on a key's search path.
type violation struct {
	kind     vKind
	gp, p, n *Node
	pIdx     int // index of p within gp
	nIdx     int // index of n within p
}

// findViolation walks key's search path from the root and returns the
// first (highest) violation.
func (t *Tree) findViolation(tx *htm.Tx, key uint64) violation {
	a := t.cfg.A
	var gp *Node
	p := t.entry
	pIdx, nIdx := 0, 0
	n := p.children[0].Get(tx)
	for {
		if n.leaf {
			if p != t.entry && int(n.size.Get(tx)) < a {
				return violation{kind: vUnderfull, gp: gp, p: p, n: n, pIdx: pIdx, nIdx: nIdx}
			}
			return violation{kind: vNone}
		}
		if p == t.entry {
			if len(n.children) == 1 {
				return violation{kind: vCollapseRoot, p: p, n: n}
			}
			if n.tagged {
				return violation{kind: vUntagRoot, p: p, n: n}
			}
		} else {
			if n.tagged {
				return violation{kind: vTag, gp: gp, p: p, n: n, pIdx: pIdx, nIdx: nIdx}
			}
			if len(n.children) < a {
				return violation{kind: vUnderfull, gp: gp, p: p, n: n, pIdx: pIdx, nIdx: nIdx}
			}
		}
		gp, pIdx = p, nIdx
		p = n
		nIdx = childIndex(p, key)
		n = p.children[nIdx].Get(tx)
	}
}

// runFixLoop repairs violations on the handle's current key path until
// none remain (each repair step is its own template operation run
// through the engine, exactly as the paper prescribes).
func (h *Handle) runFixLoop() {
	for i := 0; i < maxFixIterations; i++ {
		h.fixMore = false
		h.settle(h.e.Run(h.fixOp))
		if !h.fixMore {
			return
		}
	}
}

// fixBody performs (at most) one rebalancing step for the highest
// violation on the key's path. It sets h.fixMore when the caller should
// look again (a violation was found, whether or not this attempt fixed
// it). Returns false to request a retry in fallback modes.
func (t *Tree) fixBody(pr *prims) bool {
	h := pr.h
	h.beginAttempt()
	t.aggGuard(pr.tx)
	vio := t.findViolation(pr.tx, h.argKey)
	if vio.kind == vNone {
		h.fixMore = false
		return true
	}
	h.fixMore = true
	switch vio.kind {
	case vCollapseRoot:
		return t.fixCollapseRoot(pr, vio)
	case vUntagRoot:
		return t.fixUntagRoot(pr, vio)
	case vTag:
		return t.fixTag(pr, vio)
	default: // vUnderfull
		return t.fixUnderfull(pr, vio)
	}
}

// snapshotChildren reads n's children within an LLX.
func (pr *prims) snapshotChildren(n *Node) ([]*Node, *llxscx.Info, bool) {
	snap := make([]*Node, len(n.children))
	info, _ := pr.llx(&n.hdr, func() {
		for i := range n.children {
			snap[i] = n.children[i].Get(pr.tx)
		}
	})
	if pr.failed {
		return nil, nil, false
	}
	return snap, info, true
}

// copyNode builds a fresh copy of n (content snapshot taken within an
// LLX), optionally overriding the tag.
func (pr *prims) copyNode(n *Node, tagged bool) (*Node, *llxscx.Info, bool) {
	if n.leaf {
		info, _ := pr.llx(&n.hdr, func() { readLeaf(pr.tx, n, &pr.h.buf) })
		if pr.failed {
			return nil, nil, false
		}
		return pr.h.newLeaf(pr.h.buf), info, true
	}
	snap, info, ok := pr.snapshotChildren(n)
	if !ok {
		return nil, nil, false
	}
	nn := pr.h.newInternal(n.keys, snap, tagged)
	pr.aggInit(nn)
	return nn, info, true
}

// fixUntagRoot replaces a tagged root with an untagged copy: the height
// increase becomes permanent.
func (t *Tree) fixUntagRoot(pr *prims, vio violation) bool {
	n := vio.n
	var cur *Node
	ei, _ := pr.llx(&t.entry.hdr, func() { cur = t.entry.children[0].Get(pr.tx) })
	if pr.failed {
		return false
	}
	if cur != n {
		pr.fail()
		return false
	}
	nn, ni, ok := pr.copyNode(n, false)
	if !ok {
		return false
	}
	if !pr.scx(
		[]*llxscx.Hdr{&t.entry.hdr, &n.hdr}, []*llxscx.Info{ei, ni},
		[]*llxscx.Hdr{&n.hdr}, &t.entry.children[0], n, nn) {
		return false
	}
	pr.h.remove(n)
	return true
}

// fixCollapseRoot removes a unary internal root, shrinking the height.
// The fast path relinks the child directly; the template paths must
// install a copy (the child pointer field may never reacquire a value
// it previously held — the ABA rule of Section 6.1).
func (t *Tree) fixCollapseRoot(pr *prims, vio violation) bool {
	n := vio.n
	var cur *Node
	ei, _ := pr.llx(&t.entry.hdr, func() { cur = t.entry.children[0].Get(pr.tx) })
	if pr.failed {
		return false
	}
	if cur != n {
		pr.fail()
		return false
	}
	var child *Node
	ni, _ := pr.llx(&n.hdr, func() { child = n.children[0].Get(pr.tx) })
	if pr.failed {
		return false
	}
	if pr.m == modeFast {
		t.entry.children[0].Set(pr.tx, child)
		n.hdr.SetMarked(pr.tx)
		pr.h.remove(n)
		return true
	}
	nc, ci, ok := pr.copyNode(child, child.tagged)
	if !ok {
		return false
	}
	if !pr.scx(
		[]*llxscx.Hdr{&t.entry.hdr, &n.hdr, &child.hdr},
		[]*llxscx.Info{ei, ni, ci},
		[]*llxscx.Hdr{&n.hdr, &child.hdr},
		&t.entry.children[0], n, nc) {
		return false
	}
	pr.h.remove(n)
	pr.h.remove(child)
	return true
}

// fixTag repairs a tagged non-root node n under parent p: if p has room,
// n's children are absorbed into p; otherwise p and n redistribute into
// two nodes under a new tagged parent and the violation moves up
// (split-push-up).
func (t *Tree) fixTag(pr *prims, vio violation) bool {
	b := t.cfg.B
	gp, p, n := vio.gp, vio.p, vio.n

	var pCur *Node
	gi, _ := pr.llx(&gp.hdr, func() { pCur = gp.children[vio.pIdx].Get(pr.tx) })
	if pr.failed {
		return false
	}
	if pCur != p {
		pr.fail()
		return false
	}
	pSnap, pi, ok := pr.snapshotChildren(p)
	if !ok {
		return false
	}
	if vio.nIdx >= len(pSnap) || pSnap[vio.nIdx] != n {
		pr.fail()
		return false
	}
	nSnap, ni, ok := pr.snapshotChildren(n)
	if !ok {
		return false
	}

	// Combined child/key sequences of p with n expanded in place.
	children := make([]*Node, 0, len(pSnap)+len(nSnap)-1)
	children = append(children, pSnap[:vio.nIdx]...)
	children = append(children, nSnap...)
	children = append(children, pSnap[vio.nIdx+1:]...)
	keys := make([]uint64, 0, len(children)-1)
	keys = append(keys, p.keys[:vio.nIdx]...)
	keys = append(keys, n.keys...)
	keys = append(keys, p.keys[vio.nIdx:]...)

	v := []*llxscx.Hdr{&gp.hdr, &p.hdr, &n.hdr}
	infos := []*llxscx.Info{gi, pi, ni}
	r := []*llxscx.Hdr{&p.hdr, &n.hdr}
	fld := &gp.children[vio.pIdx]

	if len(children) <= b {
		// Absorb: one untagged replacement for p, with p's key content —
		// its aggregates are p's own tuple.
		repl := pr.h.newInternal(keys, children, false)
		pr.aggFrom(repl, p)
		if !pr.scx(v, infos, r, fld, p, repl) {
			return false
		}
		pr.h.remove(p)
		pr.h.remove(n)
		return true
	}
	// Split-push-up: two halves under a new parent that inherits the tag
	// (unless it becomes the root). left/right rebuild from their
	// (pre-existing) children; np, whose children are the new halves,
	// takes p's tuple — same key content.
	lo := (len(children) + 1) / 2
	left := pr.h.newInternal(keys[:lo-1], children[:lo], false)
	pr.aggInit(left)
	right := pr.h.newInternal(keys[lo:], children[lo:], false)
	pr.aggInit(right)
	np := pr.h.newInternal([]uint64{keys[lo-1]}, []*Node{left, right}, gp != t.entry)
	pr.aggFrom(np, p)
	if !pr.scx(v, infos, r, fld, p, np) {
		return false
	}
	pr.h.remove(p)
	pr.h.remove(n)
	return true
}

// fixUnderfull repairs an underfull non-root node n: it joins with or
// shares from an adjacent sibling. A tagged sibling is repaired first
// (its subtree is one level taller, so it cannot be joined directly).
func (t *Tree) fixUnderfull(pr *prims, vio violation) bool {
	b := t.cfg.B
	gp, p, n := vio.gp, vio.p, vio.n

	var pCur *Node
	gi, _ := pr.llx(&gp.hdr, func() { pCur = gp.children[vio.pIdx].Get(pr.tx) })
	if pr.failed {
		return false
	}
	if pCur != p {
		pr.fail()
		return false
	}
	pSnap, pi, ok := pr.snapshotChildren(p)
	if !ok {
		return false
	}
	if vio.nIdx >= len(pSnap) || pSnap[vio.nIdx] != n {
		pr.fail()
		return false
	}
	if len(pSnap) < 2 {
		// p is unary (transient mid-rebalance state): its own violation
		// sits above n's and must be repaired first; the path walk will
		// find it (p unary implies p is underfull or the root).
		pr.fail()
		return false
	}

	sIdx := vio.nIdx + 1
	if vio.nIdx > 0 {
		sIdx = vio.nIdx - 1
	}
	s := pSnap[sIdx]
	if s.tagged {
		// Repair the taller, tagged sibling first.
		return t.fixTag(pr, violation{
			kind: vTag, gp: gp, p: p, n: s, pIdx: vio.pIdx, nIdx: sIdx,
		})
	}
	if s.leaf != n.leaf {
		// Levels disagree without a tag: a concurrent restructuring is
		// mid-flight somewhere; retry from a fresh search.
		pr.fail()
		return false
	}

	li, ri := vio.nIdx, sIdx // left/right order of n and s within p
	if sIdx < vio.nIdx {
		li, ri = sIdx, vio.nIdx
	}
	left, right := pSnap[li], pSnap[ri]
	sep := p.keys[li]

	// Snapshot both nodes' content, in child order (V order is fixed
	// top-down, left-to-right for the SCX freezing discipline).
	var leftPairs, rightPairs []kv
	var leftSnap, rightSnap []*Node
	var leftInfo, rightInfo *llxscx.Info
	if n.leaf {
		leftInfo, _ = pr.llx(&left.hdr, func() {
			readLeaf(pr.tx, left, &pr.h.buf)
			leftPairs = append([]kv(nil), pr.h.buf...)
		})
		if pr.failed {
			return false
		}
		rightInfo, _ = pr.llx(&right.hdr, func() {
			readLeaf(pr.tx, right, &pr.h.buf)
			rightPairs = append([]kv(nil), pr.h.buf...)
		})
		if pr.failed {
			return false
		}
	} else {
		leftSnap, leftInfo, ok = pr.snapshotChildren(left)
		if !ok {
			return false
		}
		rightSnap, rightInfo, ok = pr.snapshotChildren(right)
		if !ok {
			return false
		}
	}

	v := []*llxscx.Hdr{&gp.hdr, &p.hdr, &left.hdr, &right.hdr}
	infos := []*llxscx.Info{gi, pi, leftInfo, rightInfo}
	r := []*llxscx.Hdr{&p.hdr, &left.hdr, &right.hdr}
	fld := &gp.children[vio.pIdx]

	degL, degR := left.degree(pr.tx), right.degree(pr.tx)
	if n.leaf {
		degL, degR = len(leftPairs), len(rightPairs)
	}

	if degL+degR <= b {
		// Join left and right into one node.
		var m *Node
		if n.leaf {
			m = pr.h.newLeaf(append(append(make([]kv, 0, degL+degR), leftPairs...), rightPairs...))
		} else {
			keys := make([]uint64, 0, degL+degR-1)
			keys = append(keys, left.keys...)
			keys = append(keys, sep)
			keys = append(keys, right.keys...)
			m = pr.h.newInternal(keys, append(append(make([]*Node, 0, degL+degR), leftSnap...), rightSnap...), false)
			pr.aggInit(m)
		}
		var repl *Node
		if gp == t.entry && len(pSnap) == 2 {
			// p was the root and would become unary: collapse directly.
			repl = m
		} else {
			nk := make([]uint64, 0, len(p.keys)-1)
			nk = append(nk, p.keys[:li]...)
			nk = append(nk, p.keys[li+1:]...)
			nc := make([]*Node, 0, len(pSnap)-1)
			nc = append(nc, pSnap[:li]...)
			nc = append(nc, m)
			nc = append(nc, pSnap[ri+1:]...)
			repl = pr.h.newInternal(nk, nc, false)
			// repl replaces p with identical key content (m is the join of
			// p's two children), so it takes p's tuple.
			pr.aggFrom(repl, p)
		}
		if !pr.scx(v, infos, r, fld, p, repl) {
			return false
		}
		pr.h.remove(p)
		pr.h.remove(left)
		pr.h.remove(right)
		return true
	}

	// Share: redistribute so both nodes have at least a entries.
	lo := (degL + degR + 1) / 2
	var nl, nr *Node
	var newSep uint64
	if n.leaf {
		all := append(append(make([]kv, 0, degL+degR), leftPairs...), rightPairs...)
		nl = pr.h.newLeaf(all[:lo])
		nr = pr.h.newLeaf(all[lo:])
		newSep = all[lo].k
	} else {
		allC := append(append(make([]*Node, 0, degL+degR), leftSnap...), rightSnap...)
		allK := make([]uint64, 0, degL+degR-1)
		allK = append(allK, left.keys...)
		allK = append(allK, sep)
		allK = append(allK, right.keys...)
		nl = pr.h.newInternal(allK[:lo-1], allC[:lo], false)
		pr.aggInit(nl)
		nr = pr.h.newInternal(allK[lo:], allC[lo:], false)
		pr.aggInit(nr)
		newSep = allK[lo-1]
	}
	nk := append([]uint64(nil), p.keys...)
	nk[li] = newSep
	nc := make([]*Node, len(pSnap))
	copy(nc, pSnap)
	nc[li], nc[ri] = nl, nr
	repl := pr.h.newInternal(nk, nc, false)
	pr.aggFrom(repl, p)
	if !pr.scx(v, infos, r, fld, p, repl) {
		return false
	}
	pr.h.remove(p)
	pr.h.remove(left)
	pr.h.remove(right)
	return true
}
