package abtree

import (
	"fmt"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
)

// buildOps constructs the per-handle engine ops once.
func (h *Handle) buildOps() {
	t := h.t
	// Helpable-fallback completion (engine/help.go): the terminal
	// attempt carries the result and whether the helped update left a
	// balance violation; the owner runs the fix loop itself after the
	// engine returns (Insert/Delete below).
	finish := func(val uint64, found, needFix bool) {
		h.resVal, h.resFound, h.needFix = val, found, needFix
	}
	// Locked (TLE) update and fix bodies run the fast-mode code with a
	// nil tx, mutating cells non-transactionally; the whole body takes
	// the aggVer bracket so its aggregate updates are atomic against
	// transactional readers and against a lagging helped-record
	// installer's fixup, which runs outside the TLE lock (agg.go).
	h.insertOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.insertBody(&prims{t: t, h: h, tx: tx, m: modeFast}) },
		Middle:   func(tx *htm.Tx) { t.insertBody(&prims{t: t, h: h, tx: tx, m: modeMiddle}) },
		Fallback: func() bool { return t.insertBody(&prims{t: t, h: h, m: modeFallback}) },
		Locked: func() {
			t.aggAcquire()
			t.insertBody(&prims{t: t, h: h, m: modeFast})
			t.aggRelease()
		},
		SCXHTM: func(useHTM bool) bool {
			return t.insertBody(&prims{t: t, h: h, m: modeSCXHTM, useHTM: useHTM})
		},
		Helpable: &engine.HelpableOp{
			Kind:   engine.HelpInsert,
			Args:   func() (uint64, uint64) { return h.argKey, h.argVal },
			Finish: finish,
		},
		Update: true,
	}
	h.deleteOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.deleteBody(&prims{t: t, h: h, tx: tx, m: modeFast}) },
		Middle:   func(tx *htm.Tx) { t.deleteBody(&prims{t: t, h: h, tx: tx, m: modeMiddle}) },
		Fallback: func() bool { return t.deleteBody(&prims{t: t, h: h, m: modeFallback}) },
		Locked: func() {
			t.aggAcquire()
			t.deleteBody(&prims{t: t, h: h, m: modeFast})
			t.aggRelease()
		},
		SCXHTM: func(useHTM bool) bool {
			return t.deleteBody(&prims{t: t, h: h, m: modeSCXHTM, useHTM: useHTM})
		},
		Helpable: &engine.HelpableOp{
			Kind:   engine.HelpDelete,
			Args:   func() (uint64, uint64) { return h.argKey, 0 },
			Finish: finish,
		},
		Update: true,
	}
	h.searchOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.searchBody(tx, h) },
		Middle:   func(tx *htm.Tx) { t.searchBody(tx, h) },
		Fallback: func() bool { t.searchBody(nil, h); return true },
		Locked:   func() { t.searchBody(nil, h) },
		SCXHTM:   func(bool) bool { t.searchBody(nil, h); return true },
	}
	h.rqOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.rqInTx(tx, h) },
		Middle:   func(tx *htm.Tx) { t.rqInTx(tx, h) },
		Fallback: func() bool { return t.rqFallback(h) },
		Locked:   func() { t.rqInTx(nil, h) },
		SCXHTM:   func(bool) bool { return t.rqFallback(h) },
	}
	// fixOp is deliberately not an Update: rebalancing steps restructure
	// nodes but never change the logical key/value content, so they need
	// not invalidate cross-shard snapshot validation.
	h.fixOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.fixBody(&prims{t: t, h: h, tx: tx, m: modeFast}) },
		Middle:   func(tx *htm.Tx) { t.fixBody(&prims{t: t, h: h, tx: tx, m: modeMiddle}) },
		Fallback: func() bool { return t.fixBody(&prims{t: t, h: h, m: modeFallback}) },
		Locked: func() {
			t.aggAcquire()
			t.fixBody(&prims{t: t, h: h, m: modeFast})
			t.aggRelease()
		},
		SCXHTM: func(useHTM bool) bool {
			return t.fixBody(&prims{t: t, h: h, m: modeSCXHTM, useHTM: useHTM})
		},
	}
	// Aggregate range query (agg.go): the transactional paths descend via
	// the aggregate cells; paths without a transaction use the
	// LLX-validated leaf walk — under the TLE lock the walk still needs
	// LLX validation because a lagging helped-record installer can swing
	// a pointer outside the lock.
	h.aggOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.aggInTx(tx, h) },
		Middle:   func(tx *htm.Tx) { t.aggInTx(tx, h) },
		Fallback: func() bool { return t.aggFallback(h) },
		Locked: func() {
			for !t.aggFallback(h) {
			}
		},
		SCXHTM: func(bool) bool { return t.aggFallback(h) },
	}
	// Pre-wrap the update ops' transactional bodies with the engine's
	// monitor bump (no-op without a monitor) so Run stays allocation-free.
	h.insertOp = h.e.PrepareOp(h.insertOp)
	h.deleteOp = h.e.PrepareOp(h.deleteOp)
}

// Insert associates key with val.
func (h *Handle) Insert(key, val uint64) (uint64, bool) {
	checkKey(key)
	h.argKey, h.argVal = key, val
	h.needFix = false
	h.settle(h.e.Run(h.insertOp))
	if h.needFix {
		h.runFixLoop()
	}
	return h.resVal, h.resFound
}

// Delete removes key.
func (h *Handle) Delete(key uint64) (uint64, bool) {
	checkKey(key)
	h.argKey = key
	h.needFix = false
	h.settle(h.e.Run(h.deleteOp))
	if h.needFix {
		h.runFixLoop()
	}
	return h.resVal, h.resFound
}

// Search looks up key.
func (h *Handle) Search(key uint64) (uint64, bool) {
	checkKey(key)
	h.argKey = key
	h.e.Run(h.searchOp)
	return h.resVal, h.resFound
}

// RangeQuery appends all pairs with lo <= key < hi to out in ascending
// key order.
func (h *Handle) RangeQuery(lo, hi uint64, out []dict.KV) []dict.KV {
	h.argLo, h.argHi = lo, hi
	h.rqOut = h.rqOut[:0]
	h.e.Run(h.rqOp)
	return append(out, h.rqOut...)
}

func checkKey(key uint64) {
	if key > dict.MaxKey {
		panic(fmt.Sprintf("abtree: key %d exceeds dict.MaxKey", key))
	}
}

// searchLeaf descends to the leaf covering key. It returns the
// grandparent (nil above the root), parent, leaf, the index of the
// parent within the grandparent, and the index of the leaf within the
// parent. The entry sentinel acts as the root's parent.
func (t *Tree) searchLeaf(tx *htm.Tx, key uint64) (gp, p, u *Node, pIdx, uIdx int) {
	p = t.entry
	u = p.children[0].Get(tx)
	for !u.leaf {
		gp, pIdx = p, uIdx
		p = u
		uIdx = childIndex(p, key)
		u = p.children[uIdx].Get(tx)
	}
	return gp, p, u, pIdx, uIdx
}

// leafFind locates key within leaf u, returning its position (or the
// insertion point) and whether it is present.
func leafFind(tx *htm.Tx, u *Node, key uint64) (pos int, found bool) {
	sz := int(u.size.Get(tx))
	for i := 0; i < sz; i++ {
		k := u.lkeys[i].Get(tx)
		if k == key {
			return i, true
		}
		if k > key {
			return i, false
		}
	}
	return sz, false
}

// readLeaf reads leaf u's pairs into buf (reset first).
func readLeaf(tx *htm.Tx, u *Node, buf *[]kv) {
	*buf = (*buf)[:0]
	sz := int(u.size.Get(tx))
	for i := 0; i < sz; i++ {
		*buf = append(*buf, kv{k: u.lkeys[i].Get(tx), v: u.lvals[i].Get(tx)})
	}
}

// locateForUpdate runs the search phase for insert/delete, recording
// the internal nodes below the entry sentinel into h.path (the leaf's
// ancestors, root child first) for aggregate maintenance. Updates
// always descend with subscribed reads, even under Section 8
// (SearchOutsideTx): the recorded path receives aggregate deltas at
// commit, so the transaction must be invalidated if any node on it is
// replaced — exactly what subscription provides. Searches and range
// queries keep the unsubscribed-search optimization.
func (t *Tree) locateForUpdate(pr *prims, key uint64) (p, u *Node, uIdx int) {
	h := pr.h
	h.path = h.path[:0]
	p = t.entry
	u = p.children[0].Get(pr.tx)
	for !u.leaf {
		p = u
		h.path = append(h.path, p)
		uIdx = childIndex(p, key)
		u = p.children[uIdx].Get(pr.tx)
	}
	return p, u, uIdx
}

// insertBody implements Insert on every path. It returns false to
// request a retry (fallback modes); transactional modes abort instead.
func (t *Tree) insertBody(pr *prims) bool {
	h := pr.h
	h.beginAttempt()
	t.aggGuard(pr.tx)
	key, val := h.argKey, h.argVal
	b := t.cfg.B
	p, u, uIdx := t.locateForUpdate(pr, key)

	if pr.m == modeFast {
		tx := pr.tx
		pos, found := leafFind(tx, u, key)
		if found {
			// Update the value in place — the fast path's node-creation
			// saving (Section 6.2). Values don't feed the aggregates.
			h.resVal, h.resFound = u.lvals[pos].Get(tx), true
			h.needFix = false
			u.lvals[pos].Set(tx, val)
			return true
		}
		h.resVal, h.resFound = 0, false
		sz := int(u.size.Get(tx))
		if sz < b {
			for i := sz; i > pos; i-- {
				u.lkeys[i].Set(tx, u.lkeys[i-1].Get(tx))
				u.lvals[i].Set(tx, u.lvals[i-1].Get(tx))
			}
			u.lkeys[pos].Set(tx, key)
			u.lvals[pos].Set(tx, val)
			u.size.Set(tx, uint64(sz+1))
			u.aggSum.AddAtCommit(tx, key)
			aggApplyInsert(tx, h.path, key)
			h.needFix = false
			return true
		}
		// Full leaf: split, keeping u (rewritten in place) as the left
		// child — only a sibling and a parent are created (Section 6.2).
		readLeaf(tx, u, &h.buf)
		h.buf = insertAt(h.buf, pos, kv{k: key, v: val})
		lo := (len(h.buf) + 1) / 2
		right := h.newLeaf(h.buf[lo:])
		for i := 0; i < lo; i++ {
			u.lkeys[i].Set(tx, h.buf[i].k)
			u.lvals[i].Set(tx, h.buf[i].v)
		}
		u.size.Set(tx, uint64(lo))
		u.aggSum.Set(tx, sumPairs(h.buf[:lo]))
		h.kbuf = append(h.kbuf[:0], h.buf[lo].k)
		h.cbuf = append(h.cbuf[:0], u, right)
		np := h.newInternal(h.kbuf, h.cbuf, p != t.entry)
		setAggsFromPairs(np, h.buf)
		p.children[uIdx].Set(tx, np)
		aggApplyInsert(tx, h.path, key)
		h.needFix = np.tagged
		return true
	}

	// Template modes: replace the leaf (or grow a split subtree).
	var uCur *Node
	pi, _ := pr.llx(&p.hdr, func() { uCur = p.children[uIdx].Get(pr.tx) })
	if pr.failed {
		return false
	}
	if uCur != u {
		pr.fail()
		return false
	}
	ui, _ := pr.llx(&u.hdr, func() { readLeaf(pr.tx, u, &h.buf) })
	if pr.failed {
		return false
	}

	v := []*llxscx.Hdr{&p.hdr, &u.hdr}
	infos := []*llxscx.Info{pi, ui}
	r := []*llxscx.Hdr{&u.hdr}
	fld := &p.children[uIdx]

	pos, found := findInBuf(h.buf, key)
	if found {
		// Value update: the replacement leaf has the same key content, so
		// no aggregate changes anywhere.
		h.resVal, h.resFound = h.buf[pos].v, true
		h.needFix = false
		h.buf[pos].v = val
		if !pr.scx(v, infos, r, fld, u, h.newLeaf(h.buf)) {
			return false
		}
		h.remove(u)
		return true
	}
	h.resVal, h.resFound = 0, false
	h.buf = insertAt(h.buf, pos, kv{k: key, v: val})
	// Ancestor aggregates: the middle path rides the transaction (the
	// deltas commit with the swing); the non-transactional paths record
	// a fixup for the SCX bracket (prims.scx).
	if len(h.buf) <= b {
		h.needFix = false
		if pr.m == modeMiddle {
			aggApplyInsert(pr.tx, h.path, key)
		} else {
			pr.aggPlan(aggInsert, key)
		}
		if !pr.scx(v, infos, r, fld, u, h.newLeaf(h.buf)) {
			return false
		}
		h.remove(u)
		return true
	}
	// Full leaf: replace u with a tagged parent over two half leaves —
	// three new nodes on the template paths (Section 6.2).
	lo := (len(h.buf) + 1) / 2
	left := h.newLeaf(h.buf[:lo])
	right := h.newLeaf(h.buf[lo:])
	h.kbuf = append(h.kbuf[:0], h.buf[lo].k)
	h.cbuf = append(h.cbuf[:0], left, right)
	np := h.newInternal(h.kbuf, h.cbuf, p != t.entry)
	setAggsFromPairs(np, h.buf)
	h.needFix = np.tagged
	if pr.m == modeMiddle {
		aggApplyInsert(pr.tx, h.path, key)
	} else {
		// The SCX bracket's path fixup applies +key to every ancestor of
		// the new leaf — np, the replacement subtree root, included — so
		// np must be published with the pre-insert sum/count. Its min/max
		// may already include key: the fixup's conditional update is a
		// no-op when the cell already holds the key.
		np.aggSum.Init(sumPairs(h.buf) - key)
		np.aggCount.Init(uint64(len(h.buf) - 1))
		pr.aggPlan(aggInsert, key)
	}
	if !pr.scx(v, infos, r, fld, u, np) {
		return false
	}
	h.remove(u)
	return true
}

// deleteBody implements Delete on every path.
func (t *Tree) deleteBody(pr *prims) bool {
	h := pr.h
	h.beginAttempt()
	t.aggGuard(pr.tx)
	key := h.argKey
	a := t.cfg.A
	p, u, uIdx := t.locateForUpdate(pr, key)

	if pr.m == modeFast {
		tx := pr.tx
		pos, found := leafFind(tx, u, key)
		if !found {
			h.resVal, h.resFound = 0, false
			h.needFix = false
			return true
		}
		h.resVal, h.resFound = u.lvals[pos].Get(tx), true
		sz := int(u.size.Get(tx))
		// The leaf's post-delete min/max, read before the shift overwrites
		// the cells (the ancestor cascade must not read back cells this
		// transaction has written).
		cmin, cmax := aggEmptyMin, aggEmptyMax
		if sz > 1 {
			if pos == 0 {
				cmin = u.lkeys[1].Get(tx)
			} else {
				cmin = u.lkeys[0].Get(tx)
			}
			if pos == sz-1 {
				cmax = u.lkeys[sz-2].Get(tx)
			} else {
				cmax = u.lkeys[sz-1].Get(tx)
			}
		}
		for i := pos; i < sz-1; i++ {
			u.lkeys[i].Set(tx, u.lkeys[i+1].Get(tx))
			u.lvals[i].Set(tx, u.lvals[i+1].Get(tx))
		}
		u.size.Set(tx, uint64(sz-1))
		u.aggSum.AddAtCommit(tx, -key)
		aggApplyDelete(tx, h.path, u, key, cmin, cmax)
		h.needFix = p != t.entry && sz-1 < a
		return true
	}

	var uCur *Node
	pi, _ := pr.llx(&p.hdr, func() { uCur = p.children[uIdx].Get(pr.tx) })
	if pr.failed {
		return false
	}
	if uCur != u {
		pr.fail()
		return false
	}
	ui, _ := pr.llx(&u.hdr, func() { readLeaf(pr.tx, u, &h.buf) })
	if pr.failed {
		return false
	}
	pos, found := findInBuf(h.buf, key)
	if !found {
		h.resVal, h.resFound = 0, false
		h.needFix = false
		return true
	}
	h.resVal, h.resFound = h.buf[pos].v, true
	h.buf = append(h.buf[:pos], h.buf[pos+1:]...)
	h.needFix = p != t.entry && len(h.buf) < a
	if pr.m == modeMiddle {
		// The replacement leaf isn't linked yet, so the cascade's skip
		// pointer is u (still p's child at read time); its post-delete
		// min/max come from the buffer.
		cmin, cmax := aggEmptyMin, aggEmptyMax
		if len(h.buf) > 0 {
			cmin, cmax = h.buf[0].k, h.buf[len(h.buf)-1].k
		}
		aggApplyDelete(pr.tx, h.path, u, key, cmin, cmax)
	} else {
		pr.aggPlan(aggDelete, key)
	}
	if !pr.scx(
		[]*llxscx.Hdr{&p.hdr, &u.hdr}, []*llxscx.Info{pi, ui},
		[]*llxscx.Hdr{&u.hdr}, &p.children[uIdx], u, h.newLeaf(h.buf)) {
		return false
	}
	h.remove(u)
	return true
}

// searchBody implements Search (read-only on every path).
func (t *Tree) searchBody(tx *htm.Tx, h *Handle) {
	_, _, u, _, _ := t.searchLeaf(tx, h.argKey)
	pos, found := leafFind(tx, u, h.argKey)
	if found {
		h.resVal, h.resFound = u.lvals[pos].Get(tx), true
		return
	}
	h.resVal, h.resFound = 0, false
}

// findInBuf locates key in a sorted pair buffer.
func findInBuf(buf []kv, key uint64) (pos int, found bool) {
	for i, p := range buf {
		if p.k == key {
			return i, true
		}
		if p.k > key {
			return i, false
		}
	}
	return len(buf), false
}

// insertAt inserts p at position pos.
func insertAt(buf []kv, pos int, p kv) []kv {
	buf = append(buf, kv{})
	copy(buf[pos+1:], buf[pos:])
	buf[pos] = p
	return buf
}

// ---- range queries ----

// rqInTx collects [lo,hi) inside a transaction (fast/middle paths; TLE
// locked body when tx == nil).
func (t *Tree) rqInTx(tx *htm.Tx, h *Handle) {
	h.rqOut = h.rqOut[:0]
	t.rqWalk(tx, t.entry.children[0].Get(tx), h)
}

func (t *Tree) rqWalk(tx *htm.Tx, n *Node, h *Handle) {
	if n.leaf {
		rqCollectLeaf(tx, n, h)
		return
	}
	for i := range n.children {
		if rqChildOverlaps(n, i, h.argLo, h.argHi) {
			t.rqWalk(tx, n.children[i].Get(tx), h)
		}
	}
}

// rqChildOverlaps reports whether child i's routing range intersects
// [lo,hi).
func rqChildOverlaps(n *Node, i int, lo, hi uint64) bool {
	if i > 0 && n.keys[i-1] >= hi {
		return false
	}
	if i < len(n.keys) && n.keys[i] <= lo {
		return false
	}
	return true
}

func rqCollectLeaf(tx *htm.Tx, n *Node, h *Handle) {
	sz := int(n.size.Get(tx))
	for i := 0; i < sz; i++ {
		k := n.lkeys[i].Get(tx)
		if k >= h.argLo && k < h.argHi {
			h.rqOut = append(h.rqOut, dict.KV{Key: k, Val: n.lvals[i].Get(tx)})
		}
	}
}

// rqFallback collects the range with an LLX-validated DFS, restarting on
// any failed LLX.
func (t *Tree) rqFallback(h *Handle) bool {
	h.rqOut = h.rqOut[:0]
	var root *Node
	if _, st := llxscx.LLX(nil, &t.entry.hdr, func() {
		root = t.entry.children[0].Get(nil)
	}); st != llxscx.StatusOK {
		return false
	}
	return t.rqWalkLLX(root, h)
}

func (t *Tree) rqWalkLLX(n *Node, h *Handle) bool {
	if n.leaf {
		ok := true
		if _, st := llxscx.LLX(nil, &n.hdr, func() { rqCollectLeaf(nil, n, h) }); st != llxscx.StatusOK {
			ok = false
		}
		return ok
	}
	var snap []*Node
	if _, st := llxscx.LLX(nil, &n.hdr, func() {
		snap = make([]*Node, len(n.children))
		for i := range n.children {
			snap[i] = n.children[i].Get(nil)
		}
	}); st != llxscx.StatusOK {
		return false
	}
	for i, c := range snap {
		if rqChildOverlaps(n, i, h.argLo, h.argHi) {
			if !t.rqWalkLLX(c, h) {
				return false
			}
		}
	}
	return true
}
