package abtree

import (
	"runtime"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/fault"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
)

// Subtree aggregates (sum/count/min/max of keys), maintained inside the
// same commit that performs each structural or content change so that
// KeySum-class analytics descend in O(log n) instead of walking every
// leaf.
//
// Representation. Internal nodes carry four aggregate cells
// (aggSum/aggCount/aggMin/aggMax). Leaves carry only aggSum: a leaf's
// count is its size cell and its min/max are its first and last keys,
// so no extra leaf state is needed. An empty subtree holds the
// sentinels min = ^0, max = 0 (no key is ^0 — dict.MaxKey is below it —
// and a real max of 0 coincides with the sentinel harmlessly: readers
// gate min/max on count > 0).
//
// Maintenance. Transactional paths (fast, middle, and the TLE locked
// body, which runs the fast-mode code under the lock) update the
// aggregates of every internal node on the leaf's search path inside
// the operation's transaction: sum and count via AddAtCommit — a
// write-set-only commutative delta, so concurrent updates through the
// same ancestor (including the root) never invalidate each other's
// snapshots — and min/max via a subscribed read plus a conditional
// write (inserts) or a recompute-on-boundary cascade (deletes).
// Non-transactional paths (the lock-free fallback, SCXHTM, and the
// helpable fallback's announced records) cannot ride a commit, so they
// bracket the SCX swing and a post-swing path fixup in the tree-level
// aggVer seqlock below. Rebalancing transformations are content-neutral
// (no ancestor deltas); their replacement nodes' aggregates are
// rebuilt from their children — immediately inside the transaction on
// transactional paths, deferred into the aggVer bracket on
// non-transactional ones (the LLX/SCX validation covers the replaced
// nodes' headers, not their children's aggregate cells, so a middle-
// path commit under an untouched child could otherwise slip a delta in
// between the snapshot and the swing).
//
// The aggVer seqlock. aggVer is odd exactly while a non-transactional
// mutator is between its SCX swing and the completion of its aggregate
// fixup. Every transactional body — updates and aggregate queries —
// reads aggVer first and aborts while it is odd: writers that began
// earlier are killed by commit-time validation (the bracket's CAS
// ticks the version clock, forcing full read-set validation), and
// read-only transactions, which skip commit validation entirely, are
// exactly the reason the guard must be read before any aggregate cell
// (a query beginning mid-bracket could otherwise read post-swing
// structure with pre-fixup ancestor aggregates). Brackets serialize
// against each other on the CAS.

// Empty-subtree sentinels for aggMin/aggMax.
const (
	aggEmptyMin = ^uint64(0)
	aggEmptyMax = uint64(0)
)

// aggKind tags the pending aggregate fixup a non-transactional leaf
// operation hands to its SCX bracket.
type aggKind uint8

const (
	aggNone aggKind = iota
	aggInsert
	aggDelete
)

// aggAcquire takes the tree's aggregate seqlock (aggVer even -> odd).
// The successful CAS ticks the version clock, so every transactional
// writer that began earlier fails commit validation on its subscribed
// aggVer read.
func (t *Tree) aggAcquire() {
	for i := 0; ; i++ {
		v := t.aggVer.Peek()
		if v&1 == 0 && t.aggVer.CAS(nil, v, v+1) {
			return
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

// aggRelease drops the seqlock (odd -> even). Only the bracket holder
// stores to aggVer while it is odd, so the Peek is exact.
func (t *Tree) aggRelease() {
	t.aggVer.Set(nil, t.aggVer.Peek()+1)
}

// aggGuard subscribes tx to the aggregate seqlock and aborts while a
// non-transactional aggregate fixup is in flight. Every transactional
// update and aggregate-query body calls it before touching the tree.
func (t *Tree) aggGuard(tx *htm.Tx) {
	if tx != nil && t.aggVer.Get(tx)&1 != 0 {
		tx.Abort(engine.CodeRetry)
	}
}

// childAgg reads one child's aggregate tuple. Internal nodes hold the
// tuple in cells; leaves derive count/min/max from size and the key
// array. min/max are the empty sentinels when count is 0.
func childAgg(tx *htm.Tx, c *Node) (sum, count, mn, mx uint64) {
	if c.leaf {
		sz := c.size.Get(tx)
		if sz == 0 {
			return c.aggSum.Get(tx), 0, aggEmptyMin, aggEmptyMax
		}
		return c.aggSum.Get(tx), sz, c.lkeys[0].Get(tx), c.lkeys[sz-1].Get(tx)
	}
	return c.aggSum.Get(tx), c.aggCount.Get(tx), c.aggMin.Get(tx), c.aggMax.Get(tx)
}

// childMin returns the smallest key in c's subtree (sentinel ^0 when
// empty); childMax symmetrically. Internal aggMin/aggMax hold the
// sentinels when empty, so no count read is needed — which matters in
// delete cascades, where the path child's count cell has a pending
// AddAtCommit and must not be read back.
func childMin(tx *htm.Tx, c *Node) uint64 {
	if c.leaf {
		if sz := c.size.Get(tx); sz > 0 {
			return c.lkeys[0].Get(tx)
		}
		return aggEmptyMin
	}
	return c.aggMin.Get(tx)
}

func childMax(tx *htm.Tx, c *Node) uint64 {
	if c.leaf {
		if sz := c.size.Get(tx); sz > 0 {
			return c.lkeys[sz-1].Get(tx)
		}
		return aggEmptyMax
	}
	return c.aggMax.Get(tx)
}

// initAggs rebuilds n's aggregate cells from its children. Writes use
// Init: n is private until the swing that publishes it, and the swing
// bumps the parent pointer's version, so no reader can reach the cells
// with a stale snapshot. Reads go through tx when non-nil (subscribing
// them, so a concurrent commit under an untouched child invalidates
// this transaction) and are plain spin-reads inside an aggVer bracket
// otherwise (where nothing can commit).
func initAggs(tx *htm.Tx, n *Node) {
	var sum, count uint64
	mn, mx := aggEmptyMin, aggEmptyMax
	for i := range n.children {
		c := n.children[i].Get(tx)
		s, ct, lo, hi := childAgg(tx, c)
		sum += s
		count += ct
		if ct > 0 {
			if lo < mn {
				mn = lo
			}
			if hi > mx {
				mx = hi
			}
		}
	}
	n.aggSum.Init(sum)
	n.aggCount.Init(count)
	n.aggMin.Init(mn)
	n.aggMax.Init(mx)
}

// setAggsFromPairs initializes a private internal node's aggregates
// from the pair buffer its (equally private) leaf children were built
// from — the leaf-split case, where reading the children's cells back
// inside the transaction would be pure overhead.
func setAggsFromPairs(n *Node, pairs []kv) {
	var sum uint64
	for _, p := range pairs {
		sum += p.k
	}
	n.aggSum.Init(sum)
	n.aggCount.Init(uint64(len(pairs)))
	if len(pairs) == 0 {
		n.aggMin.Init(aggEmptyMin)
		n.aggMax.Init(aggEmptyMax)
		return
	}
	n.aggMin.Init(pairs[0].k)
	n.aggMax.Init(pairs[len(pairs)-1].k)
}

// sumPairs returns the key sum of a pair buffer (leaf aggSum at
// construction).
func sumPairs(pairs []kv) uint64 {
	var s uint64
	for _, p := range pairs {
		s += p.k
	}
	return s
}

// aggCopy initializes dst's aggregates from src's tuple — the
// replacement-of-the-parent case: every rebalance transformation
// replaces the violating node's parent p with a subtree of identical
// key content, so p's own (subscribed) tuple is the replacement's, and
// reading it avoids touching the other new nodes' cells (whose
// recycled versions could spuriously abort the transaction).
func aggCopy(tx *htm.Tx, dst, src *Node) {
	s, ct, mn, mx := childAgg(tx, src)
	dst.aggSum.Init(s)
	dst.aggCount.Init(ct)
	dst.aggMin.Init(mn)
	dst.aggMax.Init(mx)
}

// pendAgg is a deferred aggregate rebuild (non-transactional paths run
// it inside the SCX bracket): initAggs(dst) when src is nil, aggCopy
// from src otherwise.
type pendAgg struct{ dst, src *Node }

// aggInit rebuilds a rebalance replacement node's aggregates from its
// children — which must all be pre-existing nodes: immediately on
// transactional paths, deferred into the SCX bracket on
// non-transactional ones (see the drift discussion atop this file).
func (pr *prims) aggInit(n *Node) {
	if pr.m == modeFast || pr.m == modeMiddle {
		initAggs(pr.tx, n)
		return
	}
	pr.h.pend = append(pr.h.pend, pendAgg{dst: n})
}

// aggFrom sets dst's aggregates to src's tuple (dst replaces src with
// identical key content), with the same immediate/deferred split as
// aggInit. Use it whenever dst's children include other new nodes.
func (pr *prims) aggFrom(dst, src *Node) {
	if pr.m == modeFast || pr.m == modeMiddle {
		aggCopy(pr.tx, dst, src)
		return
	}
	pr.h.pend = append(pr.h.pend, pendAgg{dst: dst, src: src})
}

// aggPlan records the aggregate fixup a non-transactional leaf
// operation needs after its swing.
func (pr *prims) aggPlan(kind aggKind, key uint64) {
	pr.aggKind, pr.aggKey = kind, key
}

// aggApplyInsert applies an insert's +key delta to every internal node
// on the recorded search path, inside the operation's transaction (tx
// may be nil under the TLE lock, where the whole body runs inside an
// aggVer bracket and the cells take immediate non-transactional adds).
func aggApplyInsert(tx *htm.Tx, path []*Node, key uint64) {
	for _, n := range path {
		n.aggSum.AddAtCommit(tx, key)
		n.aggCount.AddAtCommit(tx, 1)
		if key < n.aggMin.Get(tx) {
			n.aggMin.Set(tx, key)
		}
		if key > n.aggMax.Get(tx) {
			n.aggMax.Set(tx, key)
		}
	}
}

// aggApplyDelete applies a delete's -key delta bottom-up along the
// recorded search path. min/max use recompute-on-boundary: the deleted
// key can be an ancestor's min (max) only if it was the path child's
// min (max), so the cascade is a prefix from the leaf upward. The path
// child's fresh min/max are carried in plain values (its count cell
// has a pending AddAtCommit and must not be read back); siblings are
// read through their cells.
func aggApplyDelete(tx *htm.Tx, path []*Node, child *Node, key, cmin, cmax uint64) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		n.aggSum.AddAtCommit(tx, -key)
		n.aggCount.AddAtCommit(tx, ^uint64(0))
		newMin := n.aggMin.Get(tx)
		if key == newMin {
			newMin = cmin
			for j := range n.children {
				c := n.children[j].Get(tx)
				if c == child {
					continue
				}
				if v := childMin(tx, c); v < newMin {
					newMin = v
				}
			}
			if v := n.aggMin.Get(tx); v != newMin {
				n.aggMin.Set(tx, newMin)
			}
		}
		newMax := n.aggMax.Get(tx)
		if key == newMax {
			newMax = cmax
			for j := range n.children {
				c := n.children[j].Get(tx)
				if c == child {
					continue
				}
				if v := childMax(tx, c); v > newMax {
					newMax = v
				}
			}
			if v := n.aggMax.Get(tx); v != newMax {
				n.aggMax.Set(tx, newMax)
			}
		}
		child, cmin, cmax = n, newMin, newMax
	}
}

// aggFixupNonTx applies a leaf operation's aggregate deltas inside an
// aggVer bracket. The pre-bracket search path may contain nodes that
// were replaced since the search, so it re-descends by key with plain
// reads — the bracket freezes both structure and aggregates (no
// transaction can commit, and other non-transactional mutators
// serialize on the bracket), so the descent finds exactly the
// ancestors of the just-installed leaf.
func (t *Tree) aggFixupNonTx(h *Handle, kind aggKind, key uint64) {
	// Seqlock-writer fault seam: aggVer is odd and the fixup has not
	// run — an injected stall here holds every transactional reader
	// and writer of the tree in abort-retry for the duration (they
	// subscribe to aggVer), the worst case the PR 8 bracket design
	// must stay safe under.
	t.cfg.Engine.Faults.Hit(fault.PointAggFixup)
	path := h.path[:0]
	n := t.entry.children[0].Get(nil)
	for !n.leaf {
		path = append(path, n)
		n = n.children[childIndex(n, key)].Get(nil)
	}
	h.path = path
	if kind == aggInsert {
		for _, a := range path {
			a.aggSum.Add(key)
			a.aggCount.Add(1)
			if key < a.aggMin.Get(nil) {
				a.aggMin.Set(nil, key)
			}
			if key > a.aggMax.Get(nil) {
				a.aggMax.Set(nil, key)
			}
		}
		return
	}
	// Delete: bottom-up, recomputing boundary mins/maxes directly from
	// the (already fixed) children.
	for i := len(path) - 1; i >= 0; i-- {
		a := path[i]
		a.aggSum.Add(-key)
		a.aggCount.Add(^uint64(0))
		if a.aggMin.Get(nil) == key {
			mn := aggEmptyMin
			for j := range a.children {
				if v := childMin(nil, a.children[j].Get(nil)); v < mn {
					mn = v
				}
			}
			a.aggMin.Set(nil, mn)
		}
		if a.aggMax.Get(nil) == key {
			mx := aggEmptyMax
			for j := range a.children {
				if v := childMax(nil, a.children[j].Get(nil)); v > mx {
					mx = v
				}
			}
			a.aggMax.Set(nil, mx)
		}
	}
}

// ---- aggregate queries ----

// RangeAgg returns the sum/count/min/max of the keys in [lo, hi). The
// fast and middle paths descend via the aggregate cells in O(log n)
// (O(1) for the whole-tree query: the root's cells answer it); paths
// without a transaction fall back to the LLX-validated leaf walk, the
// same traversal RangeQuery uses. Min is ^uint64(0) and Max is 0 when
// Count is 0. The error is always nil for an unsharded tree (the
// signature is shared with the sharded dictionary, where aggregate
// reads can be rejected by configuration).
var _ dict.AggHandle = (*Handle)(nil)

func (h *Handle) RangeAgg(lo, hi uint64) (dict.Agg, error) {
	h.argLo, h.argHi = lo, hi
	switch h.e.Run(h.aggOp) {
	case htm.PathFast, htm.PathMiddle:
		h.t.aggFastQ.Add(1)
	default:
		h.t.aggWalkQ.Add(1)
	}
	return h.resAgg, nil
}

// AggStats returns how many aggregate queries were answered by the
// O(log n) aggregate descent vs the O(range) leaf walk fallback.
func (t *Tree) AggStats() (fast, walk uint64) {
	return t.aggFastQ.Load(), t.aggWalkQ.Load()
}

// aggInTx answers the aggregate query inside a transaction, descending
// via the aggregate cells: a subtree fully inside [lo, hi) contributes
// its aggregate tuple without being entered; a partially covered leaf
// is walked key by key. The aggVer guard must be read before any
// aggregate cell (see the file comment).
func (t *Tree) aggInTx(tx *htm.Tx, h *Handle) {
	t.aggGuard(tx)
	h.resAgg = dict.Agg{Min: aggEmptyMin, Max: aggEmptyMax}
	t.aggDescend(tx, t.entry.children[0].Get(tx), 0, ^uint64(0), h)
}

func (t *Tree) aggDescend(tx *htm.Tx, n *Node, nlo, nhi uint64, h *Handle) {
	lo, hi := h.argLo, h.argHi
	if lo <= nlo && nhi <= hi {
		s, ct, mn, mx := childAgg(tx, n)
		h.resAgg.Merge(dict.Agg{Sum: s, Count: ct, Min: mn, Max: mx})
		return
	}
	if n.leaf {
		aggCollectLeaf(tx, n, h)
		return
	}
	for i := range n.children {
		if !rqChildOverlaps(n, i, lo, hi) {
			continue
		}
		clo, chi := nlo, nhi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		t.aggDescend(tx, n.children[i].Get(tx), clo, chi, h)
	}
}

// aggCollectLeaf folds a leaf's in-range keys into the accumulator.
func aggCollectLeaf(tx *htm.Tx, n *Node, h *Handle) {
	sz := int(n.size.Get(tx))
	for i := 0; i < sz; i++ {
		k := n.lkeys[i].Get(tx)
		if k >= h.argLo && k < h.argHi {
			h.resAgg.Merge(dict.Agg{Sum: k, Count: 1, Min: k, Max: k})
		}
	}
}

// aggFallback answers the aggregate query with an LLX-validated leaf
// walk (rqFallback's traversal, accumulating instead of collecting),
// restarting on any failed LLX. Child snapshots live on the stack up
// to degree 32, so steady-state queries stay allocation-free at the
// default b = 16.
func (t *Tree) aggFallback(h *Handle) bool {
	h.resAgg = dict.Agg{Min: aggEmptyMin, Max: aggEmptyMax}
	var root *Node
	if _, st := llxscx.LLX(nil, &t.entry.hdr, func() {
		root = t.entry.children[0].Get(nil)
	}); st != llxscx.StatusOK {
		return false
	}
	return t.aggWalkLLX(root, h)
}

func (t *Tree) aggWalkLLX(n *Node, h *Handle) bool {
	if n.leaf {
		ok := true
		if _, st := llxscx.LLX(nil, &n.hdr, func() { aggCollectLeaf(nil, n, h) }); st != llxscx.StatusOK {
			ok = false
		}
		return ok
	}
	var arr [32]*Node
	var snap []*Node
	if len(n.children) <= len(arr) {
		snap = arr[:len(n.children)]
	} else {
		snap = make([]*Node, len(n.children))
	}
	if _, st := llxscx.LLX(nil, &n.hdr, func() {
		for i := range n.children {
			snap[i] = n.children[i].Get(nil)
		}
	}); st != llxscx.StatusOK {
		return false
	}
	for i, c := range snap {
		if rqChildOverlaps(n, i, h.argLo, h.argHi) {
			if !t.aggWalkLLX(c, h) {
				return false
			}
		}
	}
	return true
}
