package abtree

import (
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
)

// mode selects which flavour of the template primitives a body runs
// with. One implementation of each structural change serves all four
// execution paths.
type mode uint8

const (
	// modeFast: sequential code — plain (transactional) reads and direct
	// writes; marks removed nodes. Used inside fast-path transactions
	// and, with a nil tx, as the TLE locked body.
	modeFast mode = iota + 1
	// modeMiddle: transactional LLX + SCXInTx (the instrumented
	// transaction of Section 5).
	modeMiddle
	// modeFallback: the original lock-free LLXO/SCXO.
	modeFallback
	// modeSCXHTM: template structure with non-transactional LLX and the
	// standalone HTM SCX of Section 4.
	modeSCXHTM
)

// prims carries one operation attempt's execution context.
type prims struct {
	t  *Tree
	h  *Handle
	tx *htm.Tx
	m  mode
	// useHTM selects SCXHTM vs SCXO within modeSCXHTM.
	useHTM bool
	// failed is set when a fallback-mode primitive fails; the body must
	// unwind and return false to the engine.
	failed bool
}

// fail aborts the attempt: transactional modes abort the enclosing
// transaction (not returning); fallback modes set the failed flag, which
// callers must check after every llx/scx.
func (pr *prims) fail() {
	if pr.tx != nil {
		pr.tx.Abort(engine.CodeRetry)
	}
	pr.failed = true
}

// llx takes a snapshot of the record with header hdr. It returns the
// linked info value (nil in fast mode, which needs none) and whether the
// snapshot succeeded; on failure in transactional modes it does not
// return.
func (pr *prims) llx(hdr *llxscx.Hdr, readFields func()) (*llxscx.Info, bool) {
	switch pr.m {
	case modeFast:
		// Sequential code: no synchronization metadata. The transaction
		// (or TLE lock) provides atomicity; Section 8's marked check
		// happens in the bodies where required.
		if readFields != nil {
			readFields()
		}
		return nil, true
	case modeMiddle:
		info, st := llxscx.LLX(pr.tx, hdr, readFields)
		if st != llxscx.StatusOK {
			pr.fail()
		}
		return info, true
	default: // modeFallback, modeSCXHTM
		info, st := llxscx.LLX(nil, hdr, readFields)
		if st != llxscx.StatusOK {
			pr.fail()
			return nil, false
		}
		return info, true
	}
}

// scx performs the update phase: change fld from old to new and finalize
// the records in r, where v lists every record (with its linked info)
// that must be unchanged. It reports success; in transactional modes it
// always succeeds (conflicts abort the transaction instead).
func (pr *prims) scx(v []*llxscx.Hdr, infos []*llxscx.Info, r []*llxscx.Hdr,
	fld *htm.Ref[Node], old, new *Node) bool {
	switch pr.m {
	case modeFast:
		for _, hdr := range r {
			hdr.SetMarked(pr.tx)
		}
		fld.Set(pr.tx, new)
		return true
	case modeMiddle:
		llxscx.SCXInTx(pr.tx, &pr.h.e.Tags, v, r)
		fld.Set(pr.tx, new)
		return true
	case modeSCXHTM:
		if pr.useHTM {
			ok, _ := llxscx.SCXHTM(pr.h.e.H, htm.PathFast, &pr.h.e.Tags,
				v, infos, r, fld, new)
			if !ok {
				pr.failed = true
			}
			return ok
		}
		fallthrough
	default: // modeFallback
		if !llxscx.SCXO(v, infos, r, fld, old, new) {
			pr.failed = true
			return false
		}
		return true
	}
}
