package abtree

import (
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
)

// mode selects which flavour of the template primitives a body runs
// with. One implementation of each structural change serves all four
// execution paths.
type mode uint8

const (
	// modeFast: sequential code — plain (transactional) reads and direct
	// writes; marks removed nodes. Used inside fast-path transactions
	// and, with a nil tx, as the TLE locked body.
	modeFast mode = iota + 1
	// modeMiddle: transactional LLX + SCXInTx (the instrumented
	// transaction of Section 5).
	modeMiddle
	// modeFallback: the original lock-free LLXO/SCXO.
	modeFallback
	// modeSCXHTM: template structure with non-transactional LLX and the
	// standalone HTM SCX of Section 4.
	modeSCXHTM
)

// prims carries one operation attempt's execution context.
type prims struct {
	t  *Tree
	h  *Handle
	tx *htm.Tx
	m  mode
	// useHTM selects SCXHTM vs SCXO within modeSCXHTM.
	useHTM bool
	// failed is set when a fallback-mode primitive fails; the body must
	// unwind and return false to the engine.
	failed bool
	// aggKind/aggKey describe the aggregate fixup a non-transactional
	// leaf operation needs after its swing (agg.go aggPlan); scx applies
	// it inside the aggVer bracket.
	aggKind aggKind
	aggKey  uint64
}

// fail aborts the attempt: transactional modes abort the enclosing
// transaction (not returning); fallback modes set the failed flag, which
// callers must check after every llx/scx.
func (pr *prims) fail() {
	if pr.tx != nil {
		pr.tx.Abort(engine.CodeRetry)
	}
	pr.failed = true
}

// llx takes a snapshot of the record with header hdr. It returns the
// linked info value (nil in fast mode, which needs none) and whether the
// snapshot succeeded; on failure in transactional modes it does not
// return.
func (pr *prims) llx(hdr *llxscx.Hdr, readFields func()) (*llxscx.Info, bool) {
	switch pr.m {
	case modeFast:
		// Sequential code: no synchronization metadata. The transaction
		// (or TLE lock) provides atomicity; Section 8's marked check
		// happens in the bodies where required.
		if readFields != nil {
			readFields()
		}
		return nil, true
	case modeMiddle:
		info, st := llxscx.LLX(pr.tx, hdr, readFields)
		if st != llxscx.StatusOK {
			pr.fail()
		}
		return info, true
	default: // modeFallback, modeSCXHTM
		info, st := llxscx.LLX(nil, hdr, readFields)
		if st != llxscx.StatusOK {
			pr.fail()
			return nil, false
		}
		return info, true
	}
}

// scx performs the update phase: change fld from old to new and finalize
// the records in r, where v lists every record (with its linked info)
// that must be unchanged. It reports success; in transactional modes it
// always succeeds (conflicts abort the transaction instead).
func (pr *prims) scx(v []*llxscx.Hdr, infos []*llxscx.Info, r []*llxscx.Hdr,
	fld *htm.Ref[Node], old, new *Node) bool {
	switch pr.m {
	case modeFast:
		for _, hdr := range r {
			hdr.SetMarked(pr.tx)
		}
		fld.Set(pr.tx, new)
		return true
	case modeMiddle:
		llxscx.SCXInTx(pr.tx, &pr.h.e.Tags, v, r)
		fld.Set(pr.tx, new)
		return true
	default: // modeSCXHTM, modeFallback
		// Non-transactional swing: when aggregate work rides on it
		// (deferred rebalance rebuilds or a leaf op's path fixup), take
		// the aggVer bracket so the swing and the fixup form one atomic
		// step against transactional readers (agg.go).
		bracket := pr.aggKind != aggNone || len(pr.h.pend) > 0
		if bracket {
			pr.t.aggAcquire()
			for _, pe := range pr.h.pend {
				if pe.src != nil {
					aggCopy(nil, pe.dst, pe.src)
				} else {
					initAggs(nil, pe.dst)
				}
			}
			pr.h.pend = pr.h.pend[:0]
		}
		var ok bool
		if pr.m == modeSCXHTM && pr.useHTM {
			ok, _ = llxscx.SCXHTM(pr.h.e.H, htm.PathFast, &pr.h.e.Tags,
				v, infos, r, fld, new)
		} else {
			ok = llxscx.SCXO(v, infos, r, fld, old, new)
		}
		if ok && pr.aggKind != aggNone {
			pr.t.aggFixupNonTx(pr.h, pr.aggKind, pr.aggKey)
		}
		if bracket {
			pr.t.aggRelease()
		}
		if !ok {
			pr.failed = true
		}
		return ok
	}
}
