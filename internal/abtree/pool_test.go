package abtree

import (
	"testing"

	"htmtree/internal/engine"
	"htmtree/internal/htm"
)

// TestLeafPoolRecyclesOnFastPath drives fast-path joins (deleting down
// to underfull leaves with tiny degree bounds) and checks that removed
// leaves recycle immediately and are reused.
func TestLeafPoolRecyclesOnFastPath(t *testing.T) {
	t.Parallel()
	tr := New(Config{A: 2, B: 4, Algorithm: engine.AlgThreePath})
	h := tr.newHandle()
	for round := 0; round < 20; round++ {
		for k := uint64(1); k <= 64; k++ {
			h.Insert(k, k)
		}
		for k := uint64(1); k <= 64; k++ {
			h.Delete(k)
		}
	}
	st := h.ReclaimStats()
	if st.RetiredFast == 0 {
		t.Fatalf("fast-path rebalancing never recycled a leaf immediately: %+v", st)
	}
	if st.Reused == 0 {
		t.Fatalf("pool never reused a node: %+v", st)
	}
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

// TestInternalNodesNeverFastRecycle asserts the white-box rule that
// internal nodes — whose routing-key array and child-array length are
// plain memory rewritten on reuse — always take the grace period, even
// when removed by a fast-path commit.
func TestInternalNodesNeverFastRecycle(t *testing.T) {
	t.Parallel()
	tr := New(Config{Algorithm: engine.AlgThreePath})
	h := tr.newHandle()
	h.Insert(1, 1) // establish the handle's reclamation context

	before := h.ReclaimStats()
	n := &Node{leaf: false}
	h.remove(n)
	h.settle(htm.PathFast)
	st := h.ReclaimStats()
	if st.RetiredFast != before.RetiredFast {
		t.Fatalf("internal node recycled immediately on the fast path: %+v", st)
	}
	if st.RetiredGrace != before.RetiredGrace+1 {
		t.Fatalf("internal node not grace-retired: %+v", st)
	}

	// A leaf in the same position recycles immediately.
	l := &Node{leaf: true}
	l.hdr.Bind(tr.tm.Clock())
	h.remove(l)
	h.settle(htm.PathFast)
	if got := h.ReclaimStats(); got.RetiredFast != st.RetiredFast+1 {
		t.Fatalf("leaf not recycled immediately on the fast path: %+v", got)
	}
}

// TestInternalArrayReuse verifies pooled internal nodes hand their
// key/child arrays back out: after churn that creates and destroys
// internal nodes, reuse draws from the pool without growing past the
// capacity-b arrays.
func TestInternalArrayReuse(t *testing.T) {
	t.Parallel()
	tr := New(Config{A: 2, B: 4, Algorithm: engine.AlgThreePath})
	h := tr.newHandle()
	for k := uint64(1); k <= 256; k++ {
		h.Insert(k, k)
	}
	warm := h.ReclaimStats()
	for round := 0; round < 10; round++ {
		for k := uint64(1); k <= 256; k += 2 {
			h.Delete(k)
		}
		for k := uint64(1); k <= 256; k += 2 {
			h.Insert(k, k)
		}
	}
	st := h.ReclaimStats()
	if st.Reused == warm.Reused {
		t.Fatal("rebalancing churn never reused pooled nodes")
	}
	growth := float64(st.Fresh-warm.Fresh) / float64(st.Reused-warm.Reused)
	if growth > 0.5 {
		t.Fatalf("pool mostly missing: %d fresh vs %d reused after warmup", st.Fresh-warm.Fresh, st.Reused-warm.Reused)
	}
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}
