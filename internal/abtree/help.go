package abtree

import (
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
)

// Helpable-fallback support (engine/help.go): the announced-descriptor
// bodies below are the fallback template operations of ops.go with two
// changes. Arguments come from the descriptor — never from the handle's
// argument scratch, which belongs to whatever operation this thread
// itself has in flight — and the update phase splits SCXO into build /
// Install / Run so the SCX record is published in the descriptor before
// it executes: the install CAS is the operation's claim, and whichever
// thread installed the record retires the removed nodes exactly once.
//
// The handle's merge/split buffers (buf, kbuf, cbuf) are reused here:
// helping only happens at attempt boundaries (before a transactional
// attempt begins, or while blocked on the fallback word), never in the
// middle of this thread's own body, so the scratch is dead at every
// helping point.
//
// A helped delete reports the underfull/tagged violation it may create
// through HelpAttempt.NeedFix; the announcing owner — not the helper —
// runs the fix loop after the engine returns, since rebalancing steps
// are ordinary engine operations a helper cannot nest.

// helpExec runs one fallback attempt for the announced descriptor using
// this handle's pools and reclamation context (engine.Thread.SetHelpExec).
func (h *Handle) helpExec(d *engine.HelpDesc) {
	switch d.Kind {
	case engine.HelpInsert:
		h.t.helpInsert(h, d)
	case engine.HelpDelete:
		h.t.helpDelete(h, d)
	}
}

// finishRecord is the shared tail of a help body: install the prepared
// attempt, and if this thread won the claim, run the record and — on
// commit — retire the removed nodes and settle the pool state. A lost
// install race discards the attempt's unpublished allocations so they
// cannot be mistaken for published nodes by a later Settle.
//
// Aggregate maintenance: when the record changes key content, the
// whole install/run/fixup span takes the aggVer bracket. The bracket
// must be held before Install — once installed, any thread's LLX can
// help perform the swing, so acquiring first is what pins every
// possible swing instant inside the bracket — and only the installing
// thread (the one whose Install succeeded) applies the path fixup,
// giving exactly-once semantics. A value-update insert replaces the
// leaf with identical key content and needs no bracket.
func (h *Handle) finishRecord(d *engine.HelpDesc, att *engine.HelpAttempt, removed ...*Node) {
	needAgg := att.Rec != nil && !(d.Kind == engine.HelpInsert && att.Found)
	if needAgg {
		h.t.aggAcquire()
	}
	if !d.Install(att) {
		if needAgg {
			h.t.aggRelease()
		}
		h.beginAttempt() // discard this attempt's unpublished nodes
		return
	}
	if att.Rec.Run() {
		if needAgg {
			kind := aggInsert
			if d.Kind == engine.HelpDelete {
				kind = aggDelete
			}
			h.t.aggFixupNonTx(h, kind, d.Key)
		}
		for _, n := range removed {
			h.remove(n)
		}
		h.settle(htm.PathFallback)
	}
	if needAgg {
		h.t.aggRelease()
	}
}

// helpInsert is insertBody's template mode (ops.go) with descriptor
// arguments and the split SCX. It performs one attempt; the engine's
// executor loop re-drives it until an attempt is installed and terminal.
func (t *Tree) helpInsert(h *Handle, d *engine.HelpDesc) {
	h.beginAttempt()
	key, val := d.Key, d.Val
	b := t.cfg.B
	_, p, u, _, uIdx := t.searchLeaf(nil, key)

	var uCur *Node
	pi, st := llxscx.LLX(nil, &p.hdr, func() { uCur = p.children[uIdx].Get(nil) })
	if st != llxscx.StatusOK {
		return
	}
	if uCur != u {
		return // the tree changed under us; re-search
	}
	ui, st := llxscx.LLX(nil, &u.hdr, func() { readLeaf(nil, u, &h.buf) })
	if st != llxscx.StatusOK {
		return
	}

	v := []*llxscx.Hdr{&p.hdr, &u.hdr}
	infos := []*llxscx.Info{pi, ui}
	r := []*llxscx.Hdr{&u.hdr}
	fld := &p.children[uIdx]

	pos, found := findInBuf(h.buf, key)
	if found {
		oldVal := h.buf[pos].v
		h.buf[pos].v = val
		rec := llxscx.NewRecord(v, infos, r, fld, u, h.newLeaf(h.buf))
		h.finishRecord(d, &engine.HelpAttempt{Rec: rec, Val: oldVal, Found: true}, u)
		return
	}
	h.buf = insertAt(h.buf, pos, kv{k: key, v: val})
	if len(h.buf) <= b {
		rec := llxscx.NewRecord(v, infos, r, fld, u, h.newLeaf(h.buf))
		h.finishRecord(d, &engine.HelpAttempt{Rec: rec}, u)
		return
	}
	// Full leaf: replace u with a tagged parent over two half leaves.
	lo := (len(h.buf) + 1) / 2
	left := h.newLeaf(h.buf[:lo])
	right := h.newLeaf(h.buf[lo:])
	h.kbuf = append(h.kbuf[:0], h.buf[lo].k)
	h.cbuf = append(h.cbuf[:0], left, right)
	np := h.newInternal(h.kbuf, h.cbuf, p != t.entry)
	setAggsFromPairs(np, h.buf)
	// finishRecord's path fixup applies +key to every ancestor of the new
	// leaf, np included: publish np with the pre-insert sum/count (see
	// insertBody).
	np.aggSum.Init(sumPairs(h.buf) - key)
	np.aggCount.Init(uint64(len(h.buf) - 1))
	rec := llxscx.NewRecord(v, infos, r, fld, u, np)
	h.finishRecord(d, &engine.HelpAttempt{Rec: rec, NeedFix: np.tagged}, u)
}

// helpDelete is deleteBody's template mode (ops.go) with descriptor
// arguments and the split SCX. An absent key installs a terminal no-op
// attempt (Rec == nil): absence was determined while the fallback word
// excluded fast-path commits, so it is the operation's linearization.
func (t *Tree) helpDelete(h *Handle, d *engine.HelpDesc) {
	h.beginAttempt()
	key := d.Key
	a := t.cfg.A
	_, p, u, _, uIdx := t.searchLeaf(nil, key)

	var uCur *Node
	pi, st := llxscx.LLX(nil, &p.hdr, func() { uCur = p.children[uIdx].Get(nil) })
	if st != llxscx.StatusOK {
		return
	}
	if uCur != u {
		return
	}
	ui, st := llxscx.LLX(nil, &u.hdr, func() { readLeaf(nil, u, &h.buf) })
	if st != llxscx.StatusOK {
		return
	}
	pos, found := findInBuf(h.buf, key)
	if !found {
		d.Install(&engine.HelpAttempt{})
		return
	}
	oldVal := h.buf[pos].v
	h.buf = append(h.buf[:pos], h.buf[pos+1:]...)
	needFix := p != t.entry && len(h.buf) < a
	rec := llxscx.NewRecord(
		[]*llxscx.Hdr{&p.hdr, &u.hdr}, []*llxscx.Info{pi, ui},
		[]*llxscx.Hdr{&u.hdr}, &p.children[uIdx], u, h.newLeaf(h.buf))
	h.finishRecord(d, &engine.HelpAttempt{Rec: rec, Val: oldVal, Found: true, NeedFix: needFix}, u)
}
