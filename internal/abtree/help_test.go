package abtree

import (
	"sync/atomic"
	"testing"

	"htmtree/internal/engine"
	"htmtree/internal/htm"
)

// helpableConfig returns a TLE configuration whose fast path can never
// commit (every transactional access aborts spuriously), so every
// update reaches the helpable fallback deterministically. Minimum legal
// degree bounds (a=2, b=3) make splits and underfull leaves cheap to
// provoke.
func helpableConfig(preempt func()) Config {
	return Config{
		A:         2,
		B:         3,
		Algorithm: engine.AlgTLE,
		HTM:       htm.Config{SpuriousEvery: 1},
		Engine: engine.Config{
			HelpableFallback: true,
			AttemptLimit:     1,
			PreemptPoint:     preempt,
		},
	}
}

// TestHelpableHelperCompletes parks an announcing owner right after it
// publishes its delete descriptor and has a helper complete the
// operation alone. The committed delete underfills a leaf, so the
// NeedFix verdict must travel through the descriptor back to the owner,
// whose fix loop then restores the degree invariants (a helper cannot
// rebalance — the fix loop re-enters the engine).
func TestHelpableHelperCompletes(t *testing.T) {
	t.Parallel()
	var hook atomic.Value // func()
	tr := New(helpableConfig(func() {
		if f, ok := hook.Load().(func()); ok && f != nil {
			f()
		}
	}))
	h1 := tr.newHandle()
	h2 := tr.newHandle()
	const n = 40
	for k := uint64(1); k <= n; k++ {
		h1.Insert(k, k*10)
	}

	announced := make(chan struct{})
	resume := make(chan struct{})
	var fired atomic.Bool
	hook.Store(func() {
		if fired.CompareAndSwap(false, true) {
			announced <- struct{}{}
			<-resume
		}
	})

	done := make(chan struct{})
	var old uint64
	var existed bool
	go func() {
		defer close(done)
		old, existed = h1.Delete(7)
	}()
	<-announced
	if !h2.e.H.Help() {
		t.Fatal("helper found nothing to help")
	}
	if _, ok := h2.Search(7); ok {
		t.Fatal("key 7 still present after helped delete")
	}
	close(resume)
	<-done
	if !existed || old != 70 {
		t.Fatalf("owner Delete returned (%d,%v), want (70,true)", old, existed)
	}
	// The owner ran its fix loop after the helped commit: strict
	// invariants (no tags, degrees within bounds on the search path)
	// must hold for the quiescent tree.
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		want, wantOK := k*10, true
		if k == 7 {
			want, wantOK = 0, false
		}
		if v, ok := h2.Search(k); ok != wantOK || v != want {
			t.Fatalf("Search(%d) = (%d,%v), want (%d,%v)", k, v, ok, want, wantOK)
		}
	}
}

// TestHelpableConcurrentKeySum drives every update through the helpable
// fallback under real concurrency, with splits and rebalancing steps in
// constant play (tiny degree bounds, small key range).
func TestHelpableConcurrentKeySum(t *testing.T) {
	t.Parallel()
	testConcurrentKeySum(t, helpableConfig(nil), 4, 1500, 32)
}

// TestHelpableConcurrentKeySumMixed keeps the fast path mostly alive so
// helpable fallbacks interleave with fast-path commits.
func TestHelpableConcurrentKeySumMixed(t *testing.T) {
	t.Parallel()
	testConcurrentKeySum(t, Config{
		Algorithm: engine.AlgTLE,
		HTM:       htm.Config{SpuriousEvery: 40},
		Engine:    engine.Config{HelpableFallback: true, AttemptLimit: 2},
	}, 4, 2000, 64)
}
