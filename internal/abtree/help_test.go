package abtree

import (
	"runtime"
	"sync/atomic"
	"testing"

	"htmtree/internal/engine"
	"htmtree/internal/fault"
	"htmtree/internal/htm"
)

// helpableConfig returns a TLE configuration whose fast path can never
// commit (every transactional access aborts spuriously), so every
// update reaches the helpable fallback deterministically. Minimum legal
// degree bounds (a=2, b=3) make splits and underfull leaves cheap to
// provoke.
func helpableConfig(preempt func()) Config {
	return Config{
		A:         2,
		B:         3,
		Algorithm: engine.AlgTLE,
		HTM:       htm.Config{SpuriousEvery: 1},
		Engine: engine.Config{
			HelpableFallback: true,
			AttemptLimit:     1,
			PreemptPoint:     preempt,
		},
	}
}

// TestHelpableHelperCompletes parks an announcing owner right after it
// publishes its delete descriptor and has a helper complete the
// operation alone. The committed delete underfills a leaf, so the
// NeedFix verdict must travel through the descriptor back to the owner,
// whose fix loop then restores the degree invariants (a helper cannot
// rebalance — the fix loop re-enters the engine).
func TestHelpableHelperCompletes(t *testing.T) {
	t.Parallel()
	var hook atomic.Value // func()
	tr := New(helpableConfig(func() {
		if f, ok := hook.Load().(func()); ok && f != nil {
			f()
		}
	}))
	h1 := tr.newHandle()
	h2 := tr.newHandle()
	const n = 40
	for k := uint64(1); k <= n; k++ {
		h1.Insert(k, k*10)
	}

	announced := make(chan struct{})
	resume := make(chan struct{})
	var fired atomic.Bool
	hook.Store(func() {
		if fired.CompareAndSwap(false, true) {
			announced <- struct{}{}
			<-resume
		}
	})

	done := make(chan struct{})
	var old uint64
	var existed bool
	go func() {
		defer close(done)
		old, existed = h1.Delete(7)
	}()
	<-announced
	if !h2.e.H.Help() {
		t.Fatal("helper found nothing to help")
	}
	if _, ok := h2.Search(7); ok {
		t.Fatal("key 7 still present after helped delete")
	}
	close(resume)
	<-done
	if !existed || old != 70 {
		t.Fatalf("owner Delete returned (%d,%v), want (70,true)", old, existed)
	}
	// The owner ran its fix loop after the helped commit: strict
	// invariants (no tags, degrees within bounds on the search path)
	// must hold for the quiescent tree.
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		want, wantOK := k*10, true
		if k == 7 {
			want, wantOK = 0, false
		}
		if v, ok := h2.Search(k); ok != wantOK || v != want {
			t.Fatalf("Search(%d) = (%d,%v), want (%d,%v)", k, v, ok, want, wantOK)
		}
	}
}

// TestHelpableConcurrentKeySum drives every update through the helpable
// fallback under real concurrency, with splits and rebalancing steps in
// constant play (tiny degree bounds, small key range).
func TestHelpableConcurrentKeySum(t *testing.T) {
	t.Parallel()
	testConcurrentKeySum(t, helpableConfig(nil), 4, 1500, 32)
}

// TestHelpableConcurrentKeySumMixed keeps the fast path mostly alive so
// helpable fallbacks interleave with fast-path commits.
func TestHelpableConcurrentKeySumMixed(t *testing.T) {
	t.Parallel()
	testConcurrentKeySum(t, Config{
		Algorithm: engine.AlgTLE,
		HTM:       htm.Config{SpuriousEvery: 40},
		Engine:    engine.Config{HelpableFallback: true, AttemptLimit: 2},
	}, 4, 2000, 64)
}

// TestHelpableOwnerDeath kills the announcing owner permanently at the
// fault plane's owner seam: the goroutine parks forever right after
// publishing its delete descriptor. A helper completes the operation
// exactly once — but a helper never runs the owner's deferred fix
// loop, so the committed delete's degree violation is allowed to
// persist while the owner is dead (the documented relaxed-tree
// consequence of a crash). Releasing the owner at teardown must then
// deliver the helper's result AND run the deferred fix, restoring
// strict invariants.
func TestHelpableOwnerDeath(t *testing.T) {
	t.Parallel()
	const n = 40
	// The prefill's fallback-entry count is not n: inserts that split
	// leaves run the owner fix loop, which re-enters the fallback.
	// Replay the identical (deterministic, single-threaded) prefill
	// against a probe plan that counts the seam without ever firing,
	// and kill exactly the first post-prefill entry — the delete.
	probe := fault.New(1, fault.Rule{Point: fault.PointFallbackOwner, Every: 1 << 60})
	pcfg := helpableConfig(nil)
	pcfg.Engine.Faults = probe
	ptr := New(pcfg)
	ph := ptr.newHandle()
	for k := uint64(1); k <= n; k++ {
		ph.Insert(k, k*10)
	}
	prefillEntries := probe.Hits(fault.PointFallbackOwner)

	plan := fault.New(1, fault.Rule{
		Point: fault.PointFallbackOwner,
		Every: 1, After: prefillEntries, Count: 1,
		Kill: true,
	})
	cfg := helpableConfig(nil)
	cfg.Engine.Faults = plan
	tr := New(cfg)
	h1 := tr.newHandle()
	h2 := tr.newHandle()
	for k := uint64(1); k <= n; k++ {
		h1.Insert(k, k*10)
	}

	done := make(chan struct{})
	var old uint64
	var existed bool
	go func() {
		defer close(done)
		old, existed = h1.Delete(7)
	}()
	for plan.Fires(fault.PointFallbackOwner) == 0 {
		runtime.Gosched()
	}
	if !h2.e.H.Help() {
		t.Fatal("helper found nothing to help")
	}
	if _, ok := h2.Search(7); ok {
		t.Fatal("key 7 still present after helped delete")
	}
	// Finished descriptor retracted despite the dead owner.
	if h2.e.H.Help() {
		t.Fatal("helped a finished operation")
	}
	select {
	case <-done:
		t.Fatal("killed owner returned before release")
	default:
	}
	// Structural invariants (keys ordered, reachable, no leaks) must
	// hold with the owner dead; strict degree bounds need not — only
	// the dead owner could have repaired the underfull leaf.
	if err := tr.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	// Teardown: unpark the owner. It observes the terminal attempt,
	// returns the helper's result, and runs the deferred fix loop.
	plan.ReleaseKilled()
	<-done
	if !existed || old != 70 {
		t.Fatalf("released owner Delete returned (%d,%v), want (70,true)", old, existed)
	}
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatalf("strict invariants after owner release (fix loop must have run): %v", err)
	}
	for k := uint64(1); k <= n; k++ {
		want, wantOK := k*10, true
		if k == 7 {
			want, wantOK = 0, false
		}
		if v, ok := h2.Search(k); ok != wantOK || v != want {
			t.Fatalf("Search(%d) = (%d,%v), want (%d,%v)", k, v, ok, want, wantOK)
		}
	}
}
