package abtree

import (
	"htmtree/internal/htm"
	"htmtree/internal/nodepool"
)

// Node pooling (paper Section 9): the shared discipline lives in
// internal/nodepool; this file wires it to the (a,b)-tree's node kinds.
//
//   - Leaves may recycle immediately after fast-path removals: every
//     reuse-mutable leaf field is a transactional cell (size, lkeys,
//     lvals, header), so a stale transactional reader of a recycled
//     leaf aborts on the version-advancing Recycle stores. The leaf
//     flag and the array headers are write-once (pools are segregated
//     by kind and arrays are allocated at capacity b).
//   - Internal nodes always wait out a grace period: their routing-key
//     array and the length of their child array are plain memory that
//     reuse rewrites, which is only safe once no reader can hold the
//     node — exactly what two epoch advances guarantee (every operation
//     is bracketed by the engine's ebr Begin/End).

// ReclaimStats counts a handle's node-pool activity. Exported for tests
// and diagnostics.
type ReclaimStats = nodepool.Stats

// ReclaimStats returns a snapshot of the handle's pool counters.
func (h *Handle) ReclaimStats() ReclaimStats { return h.pool.Stats() }

// PoolSize returns the number of nodes currently in the handle's free
// lists (white-box tests).
func (h *Handle) PoolSize() int { return h.pool.Size() }

// freshNode heap-allocates a node shell of the given kind (the pool's
// fresh callback); newLeaf/newInternal bind and size the arrays.
func (h *Handle) freshNode(leaf bool) *Node {
	n := &Node{leaf: leaf}
	n.hdr.Bind(h.clk)
	return n
}

// newLeaf builds a leaf holding pairs (sorted) from the pool. Only the
// first len(pairs) entries are (re-)initialized: a stale reader always
// reads the size cell first, and entries beyond the recycled size keep
// their old value and version, which is exactly what the reader's
// snapshot is entitled to see.
func (h *Handle) newLeaf(pairs []kv) *Node {
	b := h.t.cfg.B
	n, recycled := h.pool.Take(true)
	if recycled {
		n.hdr.Recycle()
		n.size.Recycle(uint64(len(pairs)))
		n.aggSum.Recycle(sumPairs(pairs))
		for i, p := range pairs {
			n.lkeys[i].Recycle(p.k)
			n.lvals[i].Recycle(p.v)
		}
		return n
	}
	n.lkeys = make([]htm.Word, b)
	n.lvals = make([]htm.Word, b)
	for i := 0; i < b; i++ {
		n.lkeys[i].Bind(h.clk)
		n.lvals[i].Bind(h.clk)
	}
	n.size.Bind(h.clk)
	n.size.Init(uint64(len(pairs)))
	n.aggSum.Bind(h.clk)
	n.aggSum.Init(sumPairs(pairs))
	for i, p := range pairs {
		n.lkeys[i].Init(p.k)
		n.lvals[i].Init(p.v)
	}
	return n
}

// newInternal builds an internal node from the pool, reusing the pooled
// node's key and child arrays when they have capacity. Internal nodes
// only ever reach the pool after a grace period, so no reader holds
// them here and the plain rewrites are safe.
func (h *Handle) newInternal(keys []uint64, children []*Node, tagged bool) *Node {
	n, recycled := h.pool.Take(false)
	n.tagged = tagged
	if recycled && cap(n.keys) >= len(keys) && cap(n.children) >= len(children) {
		n.hdr.Reset()
		n.keys = n.keys[:len(keys)]
		copy(n.keys, keys)
		n.children = n.children[:len(children)]
		for i, c := range children {
			n.children[i].Init(c)
		}
		return n
	}
	if recycled {
		n.hdr.Reset()
	}
	// Allocate the arrays at full capacity so every future reuse of this
	// node fits any degree up to b, binding every cell up to capacity —
	// reuse reslices into it and must find bound cells.
	b := h.t.cfg.B
	ck, cc := b-1, b
	if len(keys) > ck {
		ck = len(keys)
	}
	if len(children) > cc {
		cc = len(children)
	}
	n.keys = append(make([]uint64, 0, ck), keys...)
	// Aggregate cells: first allocation binds them (callers fill them via
	// initAggs/setAggsFromPairs before publication); recycled nodes keep
	// their bindings.
	n.aggSum.Bind(h.clk)
	n.aggCount.Bind(h.clk)
	n.aggMin.Bind(h.clk)
	n.aggMax.Bind(h.clk)
	full := make([]htm.Ref[Node], cc)
	for i := range full {
		full[i].Bind(h.clk)
	}
	n.children = full[:len(children)]
	for i, c := range children {
		n.children[i].Init(c)
	}
	return n
}

// beginAttempt, remove and settle delegate to the shared pool (see
// nodepool's attempt-lifecycle contract). beginAttempt also drops any
// deferred aggregate rebuilds a failed attempt left behind: the pool
// may hand those nodes back out, and a stale rebuild would clobber a
// node reused with new content.
func (h *Handle) beginAttempt() {
	h.pend = h.pend[:0]
	h.pool.BeginAttempt()
}
func (h *Handle) remove(n *Node)           { h.pool.Remove(n) }
func (h *Handle) settle(path htm.PathKind) { h.pool.Settle(path) }
