package abtree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
)

var algorithms = engine.Algorithms

func TestEmptyTree(t *testing.T) {
	t.Parallel()
	tr := New(Config{})
	h := tr.NewHandle()
	if _, found := h.Search(42); found {
		t.Fatal("found key in empty tree")
	}
	if _, existed := h.Delete(42); existed {
		t.Fatal("deleted key from empty tree")
	}
	if out := h.RangeQuery(0, 100, nil); len(out) != 0 {
		t.Fatalf("range query on empty tree returned %v", out)
	}
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidDegreeBoundsPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted b < 2a-1")
		}
	}()
	New(Config{A: 6, B: 10})
}

func TestSequentialOracle(t *testing.T) {
	t.Parallel()
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg, A: 2, B: 4}) // small nodes stress rebalancing
			h := tr.NewHandle()
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(11))
			const keyRange = 300
			for i := 0; i < 9000; i++ {
				k := uint64(rng.Intn(keyRange)) + 1
				switch rng.Intn(4) {
				case 0, 1:
					v := rng.Uint64()
					old, existed := h.Insert(k, v)
					wantOld, wantExisted := oracle[k], oracleHas(oracle, k)
					if existed != wantExisted || (existed && old != wantOld) {
						t.Fatalf("op %d Insert(%d): got (%d,%v) want (%d,%v)",
							i, k, old, existed, wantOld, wantExisted)
					}
					oracle[k] = v
				case 2:
					old, existed := h.Delete(k)
					wantOld, wantExisted := oracle[k], oracleHas(oracle, k)
					if existed != wantExisted || (existed && old != wantOld) {
						t.Fatalf("op %d Delete(%d): got (%d,%v) want (%d,%v)",
							i, k, old, existed, wantOld, wantExisted)
					}
					delete(oracle, k)
				case 3:
					v, found := h.Search(k)
					wantV, wantFound := oracle[k], oracleHas(oracle, k)
					if found != wantFound || (found && v != wantV) {
						t.Fatalf("op %d Search(%d): got (%d,%v) want (%d,%v)",
							i, k, v, found, wantV, wantFound)
					}
				}
				if i%1500 == 1499 {
					if err := tr.CheckInvariants(true); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
				}
			}
			verifyAgainstOracle(t, tr, oracle)
		})
	}
}

func oracleHas(m map[uint64]uint64, k uint64) bool {
	_, ok := m[k]
	return ok
}

func verifyAgainstOracle(t *testing.T, tr *Tree, oracle map[uint64]uint64) {
	t.Helper()
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	var wantSum, wantCount uint64
	for k := range oracle {
		wantSum += k
		wantCount++
	}
	sum, count := tr.KeySum()
	if sum != wantSum || count != wantCount {
		t.Fatalf("KeySum = (%d,%d), oracle (%d,%d)", sum, count, wantSum, wantCount)
	}
	h := tr.NewHandle()
	out := h.RangeQuery(0, dict.MaxKey, nil)
	if uint64(len(out)) != wantCount {
		t.Fatalf("full RQ returned %d pairs, want %d", len(out), wantCount)
	}
	for i, kvp := range out {
		if i > 0 && out[i-1].Key >= kvp.Key {
			t.Fatalf("RQ out of order at %d", i)
		}
		if want, ok := oracle[kvp.Key]; !ok || want != kvp.Val {
			t.Fatalf("RQ pair (%d,%d) disagrees with oracle", kvp.Key, kvp.Val)
		}
	}
}

// TestAscendingInsertDescendingDelete drives long split chains and then
// long join/collapse chains with default degrees.
func TestAscendingInsertDescendingDelete(t *testing.T) {
	t.Parallel()
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath, engine.AlgTLE} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg})
			h := tr.NewHandle()
			const n = 3000
			for k := uint64(1); k <= n; k++ {
				h.Insert(k, k*2)
			}
			if err := tr.CheckInvariants(true); err != nil {
				t.Fatalf("after inserts: %v", err)
			}
			if sum, count := tr.KeySum(); count != n || sum != n*(n+1)/2 {
				t.Fatalf("after inserts: sum=%d count=%d", sum, count)
			}
			for k := uint64(n); k >= 1; k-- {
				if _, ok := h.Delete(k); !ok {
					t.Fatalf("Delete(%d) missed", k)
				}
			}
			if err := tr.CheckInvariants(true); err != nil {
				t.Fatalf("after deletes: %v", err)
			}
			if _, count := tr.KeySum(); count != 0 {
				t.Fatalf("tree not empty: %d keys", count)
			}
		})
	}
}

func TestQuickCheckAgainstMap(t *testing.T) {
	t.Parallel()
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			f := func(ops []uint32) bool {
				tr := New(Config{Algorithm: alg, A: 2, B: 4})
				h := tr.NewHandle()
				oracle := map[uint64]uint64{}
				for _, op := range ops {
					k := uint64(op%64) + 1
					v := uint64(op >> 8)
					switch (op >> 6) % 3 {
					case 0:
						h.Insert(k, v)
						oracle[k] = v
					case 1:
						h.Delete(k)
						delete(oracle, k)
					case 2:
						got, found := h.Search(k)
						want, ok := oracle[k]
						if found != ok || (found && got != want) {
							return false
						}
					}
				}
				if err := tr.CheckInvariants(true); err != nil {
					return false
				}
				sum, count := tr.KeySum()
				var wantSum, wantCount uint64
				for k := range oracle {
					wantSum += k
					wantCount++
				}
				return sum == wantSum && count == wantCount
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentKeySum is the paper's Section 7.1 validation under every
// algorithm.
func TestConcurrentKeySum(t *testing.T) {
	t.Parallel()
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			testConcurrentKeySum(t, Config{Algorithm: alg}, 4, 3000, 512)
		})
	}
}

func TestConcurrentKeySumSmallNodes(t *testing.T) {
	t.Parallel()
	// a=2, b=4 with a tiny key range maximizes rebalancing contention.
	for _, alg := range []engine.Algorithm{engine.AlgThreePath, engine.AlgTwoPathConc, engine.AlgNonHTM} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			testConcurrentKeySum(t, Config{Algorithm: alg, A: 2, B: 4}, 4, 2500, 48)
		})
	}
}

func TestConcurrentKeySumSearchOutsideTx(t *testing.T) {
	t.Parallel()
	testConcurrentKeySum(t, Config{
		Algorithm:       engine.AlgThreePath,
		SearchOutsideTx: true,
	}, 4, 3000, 256)
}

func TestConcurrentKeySumWithSpuriousAborts(t *testing.T) {
	t.Parallel()
	testConcurrentKeySum(t, Config{
		Algorithm: engine.AlgThreePath,
		HTM:       htm.Config{SpuriousEvery: 50},
	}, 4, 2000, 128)
}

func testConcurrentKeySum(t *testing.T, cfg Config, goroutines, opsPerG, keyRange int) {
	t.Helper()
	tr := New(cfg)
	sums := make([]int64, goroutines)
	counts := make([]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)*104729 + 17))
			for i := 0; i < opsPerG; i++ {
				k := uint64(rng.Intn(keyRange)) + 1
				if rng.Intn(2) == 0 {
					if _, existed := h.Insert(k, k*10); !existed {
						sums[g] += int64(k)
						counts[g]++
					}
				} else {
					if _, existed := h.Delete(k); existed {
						sums[g] -= int64(k)
						counts[g]--
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var wantSum, wantCount int64
	for g := 0; g < goroutines; g++ {
		wantSum += sums[g]
		wantCount += counts[g]
	}
	sum, count := tr.KeySum()
	if int64(sum) != wantSum || int64(count) != wantCount {
		t.Fatalf("key-sum check failed: tree (%d,%d), threads (%d,%d)",
			sum, count, wantSum, wantCount)
	}
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentRangeQueries(t *testing.T) {
	t.Parallel()
	for _, alg := range []engine.Algorithm{engine.AlgThreePath, engine.AlgTLE} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := tr.NewHandle()
					rng := rand.New(rand.NewSource(int64(g)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := uint64(rng.Intn(2048)) + 1
						if rng.Intn(2) == 0 {
							h.Insert(k, k)
						} else {
							h.Delete(k)
						}
					}
				}(g)
			}
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 200; i++ {
				lo := uint64(rng.Intn(2048))
				hi := lo + uint64(rng.Intn(512))
				out := h.RangeQuery(lo, hi, nil)
				for j, kvp := range out {
					if kvp.Key < lo || kvp.Key >= hi {
						t.Errorf("RQ[%d,%d) returned out-of-range key %d", lo, hi, kvp.Key)
					}
					if kvp.Key != kvp.Val {
						t.Errorf("RQ returned mismatched pair (%d,%d)", kvp.Key, kvp.Val)
					}
					if j > 0 && out[j-1].Key >= kvp.Key {
						t.Errorf("RQ result unsorted")
					}
				}
			}
			close(stop)
			wg.Wait()
			if err := tr.CheckInvariants(true); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHeavyWorkloadUsesFallback: oversized range queries must overflow
// the HTM capacity and complete on the fallback path.
func TestHeavyWorkloadUsesFallback(t *testing.T) {
	t.Parallel()
	tr := New(Config{Algorithm: engine.AlgThreePath, HTM: htm.POWER8Config()})
	h := tr.NewHandle()
	for k := uint64(1); k <= 3000; k++ {
		h.Insert(k, k)
	}
	before := tr.Engine().Stats()
	out := h.RangeQuery(1, 3001, nil)
	if len(out) != 3000 {
		t.Fatalf("RQ returned %d keys, want 3000", len(out))
	}
	after := tr.Engine().Stats()
	if after.Fallback != before.Fallback+1 {
		t.Fatalf("large RQ did not complete on the fallback path (%d -> %d)",
			before.Fallback, after.Fallback)
	}
}

func TestPathUsageLightWorkload(t *testing.T) {
	t.Parallel()
	tr := New(Config{Algorithm: engine.AlgThreePath})
	h := tr.NewHandle()
	rng := rand.New(rand.NewSource(3))
	const ops = 5000
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(100000)) + 1
		if rng.Intn(2) == 0 {
			h.Insert(k, k)
		} else {
			h.Delete(k)
		}
	}
	s := tr.Engine().Stats()
	if frac := float64(s.Fast) / float64(s.Total()); frac < 0.95 {
		t.Fatalf("fast-path completion fraction = %.3f, want >= 0.95 single-threaded", frac)
	}
}

// TestLeafNodeSizes verifies in-place leaf layout after fast-path
// operations: sorted, correctly sized, values aligned.
func TestLeafLayoutAfterInPlaceOps(t *testing.T) {
	t.Parallel()
	tr := New(Config{Algorithm: engine.AlgThreePath})
	h := tr.NewHandle()
	keys := rand.New(rand.NewSource(1)).Perm(64)
	for _, k := range keys {
		h.Insert(uint64(k)+1, uint64(k*7))
	}
	for _, k := range keys {
		if v, ok := h.Search(uint64(k) + 1); !ok || v != uint64(k*7) {
			t.Fatalf("Search(%d) = %d,%v", k+1, v, ok)
		}
	}
	for i, k := range keys {
		if i%2 == 0 {
			h.Delete(uint64(k) + 1)
		}
	}
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		_, ok := h.Search(uint64(k) + 1)
		if want := i%2 != 0; ok != want {
			t.Fatalf("Search(%d) present=%v, want %v", k+1, ok, want)
		}
	}
}
