package obs

import (
	"context"
	"runtime/trace"
)

// runtime/trace user-region names emitted around the engine's
// operation lifecycle. `go tool trace` groups regions by these names
// under the "User-defined regions" view.
const (
	// RegionOp spans one dictionary operation end to end (all paths,
	// including retries and the fallback).
	RegionOp = "htmtree/op"
	// RegionFallback spans a fallback critical-section acquisition: the
	// classic TLE lock wait, or announce-to-completion in helpable mode.
	// A long RegionFallback inside a RegionOp is a convoy, visible
	// directly in the trace viewer.
	RegionFallback = "htmtree/fallback"
)

// traceCtx is the shared context regions attach to; the engine has no
// per-operation context (that would allocate), so regions all belong to
// the background task.
var traceCtx = context.Background()

// StartOpRegion opens the per-operation trace region, or returns nil
// when tracing is off. The enabled check inlines into the caller, so
// the untraced per-operation cost is one atomic load — not a
// trace.StartRegion call. End with EndRegion (nil-safe).
func StartOpRegion() *trace.Region {
	if !trace.IsEnabled() {
		return nil
	}
	return trace.StartRegion(traceCtx, RegionOp)
}

// StartFallbackRegion opens the fallback-acquisition trace region, or
// returns nil when tracing is off.
func StartFallbackRegion() *trace.Region {
	if !trace.IsEnabled() {
		return nil
	}
	return trace.StartRegion(traceCtx, RegionFallback)
}

// EndRegion closes a region from Start*Region, tolerating the nil a
// disabled start returned.
func EndRegion(r *trace.Region) {
	if r != nil {
		r.End()
	}
}
