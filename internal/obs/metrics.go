package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"htmtree/internal/hist"
)

// Label is one metric label pair.
type Label struct{ K, V string }

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{K: k, V: v} }

// Point emits one sample of a counter or gauge family with optional
// labels (the registering Node's constant labels are appended
// automatically).
type Point func(v float64, labels ...Label)

// HistPoint emits one histogram sample set. The *hist.Hist must be a
// stable snapshot (not a live per-thread accumulator).
type HistPoint func(h *hist.Hist, labels ...Label)

type familyKind uint8

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// family is one named metric with its registered collectors. Collectors
// accumulate as components register (one per shard, typically) and all
// run at scrape time.
type family struct {
	name, help string
	kind       familyKind
	collect    []func(emit Point)
	collectH   []func(emit HistPoint)
}

// registry is the pull-model family table. Registration happens at
// construction time (under mu); scrapes walk a sorted snapshot.
type registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

func (r *registry) family(name, help string, kind familyKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fams == nil {
		r.fams = make(map[string]*family)
	}
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.fams[name] = f
	}
	return f
}

func (r *registry) sorted() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Counter registers a cumulative family; collect is invoked at every
// scrape and must emit current totals (monotone across calls). Multiple
// registrations of the same name (one per shard) accumulate collectors
// under one exposition family.
func (n *Node) Counter(name, help string, collect func(emit Point)) {
	f := n.o.reg.family(name, help, kindCounter)
	n.add(f, collect)
}

// Gauge registers an instantaneous-value family.
func (n *Node) Gauge(name, help string, collect func(emit Point)) {
	f := n.o.reg.family(name, help, kindGauge)
	n.add(f, collect)
}

func (n *Node) add(f *family, collect func(emit Point)) {
	labels := n.labels
	f.collect = append(f.collect, func(emit Point) {
		collect(func(v float64, ls ...Label) {
			emit(v, append(ls, labels...)...)
		})
	})
}

// Histogram registers a histogram family; collect must emit stable
// hist.Hist snapshots (merge live hist.Atomic accumulators into a fresh
// Hist first).
func (n *Node) Histogram(name, help string, collect func(emit HistPoint)) {
	f := n.o.reg.family(name, help, kindHistogram)
	labels := n.labels
	f.collectH = append(f.collectH, func(emit HistPoint) {
		collect(func(h *hist.Hist, ls ...Label) {
			emit(h, append(ls, labels...)...)
		})
	})
}

// LatencySnapshot merges every recorder thread's sampled latency
// histogram into one stable snapshot.
func (o *Obs) LatencySnapshot() *hist.Hist {
	o.mu.Lock()
	threads := append([]*ThreadObs(nil), o.threads...)
	o.mu.Unlock()
	h := &hist.Hist{}
	for _, t := range threads {
		t.lat.Snapshot(h)
	}
	return h
}

// renderLabels formats a label set as {k="v",...}, escaping values per
// the exposition format. Empty set renders as the empty string.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		for _, r := range l.V {
			switch r {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteRune(r)
			}
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if v == float64(uint64(v)) {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms export cumulative `le` buckets via
// hist.Cumulative — exact for the integer samples the histograms hold.
func (o *Obs) WriteProm(w io.Writer) error {
	for _, f := range o.reg.sorted() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, strings.ReplaceAll(f.help, "\n", " "), f.name, f.kind); err != nil {
			return err
		}
		var werr error
		emit := func(v float64, ls ...Label) {
			if werr != nil {
				return
			}
			_, werr = fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(ls), formatValue(v))
		}
		for _, c := range f.collect {
			c(emit)
		}
		emitH := func(h *hist.Hist, ls ...Label) {
			if werr != nil {
				return
			}
			base := renderLabels(ls)
			for _, cb := range h.Cumulative() {
				lab := fmt.Sprintf(`{le="%d"}`, cb.Le)
				if base != "" {
					lab = base[:len(base)-1] + fmt.Sprintf(`,le="%d"}`, cb.Le)
				}
				if _, werr = fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lab, cb.Count); werr != nil {
					return
				}
			}
			lab := `{le="+Inf"}`
			if base != "" {
				lab = base[:len(base)-1] + `,le="+Inf"}`
			}
			_, werr = fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %d\n%s_count%s %d\n",
				f.name, lab, h.Count(), f.name, base, h.Sum(), f.name, base, h.Count())
		}
		for _, c := range f.collectH {
			c(emitH)
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// varsPoint is one sample in the /vars JSON snapshot.
type varsPoint struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// varsHist is one histogram sample set in the /vars JSON snapshot.
type varsHist struct {
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    uint64            `json:"sum"`
	Max    uint64            `json:"max"`
	P50    uint64            `json:"p50_ns"`
	P99    uint64            `json:"p99_ns"`
	P999   uint64            `json:"p999_ns"`
}

// Vars is the /vars JSON snapshot shape, version-stamped with the same
// schema number as the htmbench CSV/JSON rows.
type Vars struct {
	Schema        int                    `json:"schema"`
	UptimeSeconds float64                `json:"uptime_seconds"`
	Metrics       map[string][]varsPoint `json:"metrics"`
	Histograms    map[string][]varsHist  `json:"histograms"`
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.K] = l.V
	}
	return m
}

// Snapshot collects every family into a Vars value.
func (o *Obs) Snapshot() Vars {
	v := Vars{
		Schema:        SchemaVersion,
		UptimeSeconds: time.Since(o.start).Seconds(),
		Metrics:       map[string][]varsPoint{},
		Histograms:    map[string][]varsHist{},
	}
	for _, f := range o.reg.sorted() {
		for _, c := range f.collect {
			c(func(val float64, ls ...Label) {
				v.Metrics[f.name] = append(v.Metrics[f.name],
					varsPoint{Labels: labelMap(ls), Value: val})
			})
		}
		for _, c := range f.collectH {
			c(func(h *hist.Hist, ls ...Label) {
				v.Histograms[f.name] = append(v.Histograms[f.name], varsHist{
					Labels: labelMap(ls),
					Count:  h.Count(), Sum: h.Sum(), Max: h.Max(),
					P50: h.Quantile(0.50), P99: h.Quantile(0.99), P999: h.Quantile(0.999),
				})
			})
		}
	}
	return v
}

// WriteVars writes the /vars JSON snapshot.
func (o *Obs) WriteVars(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o.Snapshot())
}
