package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"htmtree/internal/htm"
)

// expoLine matches one Prometheus text-exposition sample line.
var expoLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ([0-9.eE+-]+|NaN|[+-]Inf)$`)

// checkExposition validates every line of a /metrics body: comments are
// HELP/TYPE pairs, sample lines parse, and each sample's family was
// declared by a preceding TYPE line.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("unexpected comment %q", line)
			}
			continue
		}
		if !expoLine.MatchString(line) {
			t.Fatalf("unparsable sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q has no TYPE declaration", name)
		}
	}
}

func TestWritePromFormat(t *testing.T) {
	o := New(Config{})
	var hits uint64 = 41
	o.Node(L("shard", "0")).Counter("test_hits_total", "Test counter.",
		func(emit Point) { emit(float64(hits), L("path", "fast")) })
	o.Node(L("shard", "1")).Counter("test_hits_total", "Test counter.",
		func(emit Point) { emit(1.5) })
	o.Node().Gauge("test_temp", "Escaping: \"quoted\\path\".",
		func(emit Point) { emit(3, L("v", "a\"b\\c\nd")) })
	th := o.Node().NewThread()
	for i := uint64(1); i <= 100; i++ {
		th.RecordLatency(i * 10)
	}

	var b strings.Builder
	if err := o.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	checkExposition(t, out)

	for _, want := range []string{
		"# TYPE test_hits_total counter",
		`test_hits_total{path="fast",shard="0"} 41`,
		`test_hits_total{shard="1"} 1.5`,
		"# TYPE test_temp gauge",
		`test_temp{v="a\"b\\c\nd"} 3`,
		"# TYPE htmtree_op_latency_ns histogram",
		`htmtree_op_latency_ns_bucket{le="+Inf"} 100`,
		"htmtree_op_latency_ns_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Bucket counts must be cumulative and end at the total count.
	lines := strings.Split(out, "\n")
	prev := uint64(0)
	for _, line := range lines {
		if !strings.HasPrefix(line, "htmtree_op_latency_ns_bucket") {
			continue
		}
		var c uint64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &c); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if c < prev {
			t.Fatalf("non-cumulative bucket sequence at %q", line)
		}
		prev = c
	}
	if prev != 100 {
		t.Fatalf("last bucket = %d, want 100", prev)
	}
}

func TestVarsSnapshot(t *testing.T) {
	o := New(Config{})
	o.Node().Counter("test_total", "t.", func(emit Point) { emit(7) })
	th := o.Node().NewThread()
	th.RecordLatency(500)
	v := o.Snapshot()
	if v.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", v.Schema, SchemaVersion)
	}
	if got := v.Metrics["test_total"]; len(got) != 1 || got[0].Value != 7 {
		t.Fatalf("test_total = %+v", got)
	}
	hs := v.Histograms["htmtree_op_latency_ns"]
	if len(hs) != 1 || hs[0].Count != 1 || hs[0].Sum != 500 || hs[0].Max != 500 {
		t.Fatalf("latency histogram = %+v", hs)
	}
	var b strings.Builder
	if err := o.WriteVars(&b); err != nil {
		t.Fatal(err)
	}
	var decoded Vars
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("WriteVars output does not parse: %v", err)
	}
}

func TestEventsChronology(t *testing.T) {
	o := New(Config{EventSample: 1})
	t1 := o.Node().NewThread()
	t2 := o.Node().NewThread()
	// Interleave across threads; timestamps are monotone per put call.
	t1.RareEvent(EvAnnounce, htm.PathFallback, htm.CauseNone, 2, 0)
	t2.RareEvent(EvHelp, htm.PathFast, htm.CauseNone, 0, 0)
	t1.RareEvent(EvAcquire, htm.PathFallback, htm.CauseNone, 2, 0)
	t2.Event(EvAbort, htm.PathMiddle, htm.CauseConflict, 7, 9)
	evs := o.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events not chronological at %d: %+v", i, evs)
		}
	}
	kinds := map[EventKind]Event{}
	for _, ev := range evs {
		kinds[ev.Kind] = ev
	}
	ab := kinds[EvAbort]
	if ab.KindName != "abort" || ab.PathName != "middle" || ab.CauseName != "conflict" ||
		ab.A != 7 || ab.B != 9 || ab.Thread != t2.ID() {
		t.Fatalf("abort event decoded wrong: %+v", ab)
	}
	if an := kinds[EvAnnounce]; an.A != 2 || an.CauseName != "" {
		t.Fatalf("announce event decoded wrong: %+v", an)
	}
}

func TestEventSamplingAndWrap(t *testing.T) {
	o := New(Config{EventSample: 8, EventBuffer: 4})
	th := o.Node().NewThread()
	for i := 0; i < 64; i++ {
		th.Event(EvOp, htm.PathFast, htm.CauseNone, uint64(i), 0)
	}
	if got := len(o.Events()); got != 4 {
		// 64/8 = 8 sampled, ring keeps the last 4.
		t.Fatalf("got %d events, want ring capacity 4", got)
	}
	for i := 0; i < 10; i++ {
		th.RareEvent(EvQuiesce, 0, htm.CauseNone, uint64(i), 0)
	}
	evs := o.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events after wrap, want 4", len(evs))
	}
	// The retained window is the newest events, in order.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.A != want {
			t.Fatalf("event %d: A = %d, want %d (%+v)", i, ev.A, want, evs)
		}
	}
}

func TestDisabledCaptures(t *testing.T) {
	o := New(Config{LatencySample: -1, EventSample: -1, EventBuffer: -1})
	th := o.Node().NewThread()
	if th.MaybeTime() {
		t.Fatal("MaybeTime sampled with latency capture disabled")
	}
	th.Event(EvOp, htm.PathFast, htm.CauseNone, 0, 0)
	th.RareEvent(EvQuiesce, 0, htm.CauseNone, 0, 0)
	if evs := o.Events(); len(evs) != 0 {
		t.Fatalf("recorder disabled but drained %d events", len(evs))
	}
	if h := o.LatencySnapshot(); h.Count() != 0 {
		t.Fatalf("latency disabled but histogram holds %d samples", h.Count())
	}
}

func TestRecordingAllocFree(t *testing.T) {
	o := New(Config{EventSample: 1})
	th := o.Node().NewThread()
	if n := testing.AllocsPerRun(200, func() {
		if th.MaybeTime() {
			th.RecordLatency(123)
		}
		th.Event(EvOp, htm.PathFast, htm.CauseNone, 0, 0)
		th.RareEvent(EvAcquire, htm.PathFallback, htm.CauseNone, 1, 0)
	}); n != 0 {
		t.Fatalf("recording allocates %v/op, want 0", n)
	}
}

func TestServeEndpoints(t *testing.T) {
	o := New(Config{EventSample: 1})
	th := o.Node().NewThread()
	th.RareEvent(EvAcquire, htm.PathFallback, htm.CauseNone, 1, 0)
	th.RecordLatency(250)

	var live atomic.Pointer[Obs]
	live.Store(o)
	srv, err := Serve("127.0.0.1:0", live.Load)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	checkExposition(t, body)
	if !strings.Contains(body, "htmtree_recorder_threads 1") {
		t.Fatalf("/metrics missing recorder gauge:\n%s", body)
	}

	code, body = get("/vars")
	if code != http.StatusOK {
		t.Fatalf("/vars status %d", code)
	}
	var v Vars
	if err := json.Unmarshal([]byte(body), &v); err != nil || v.Schema != SchemaVersion {
		t.Fatalf("/vars bad body (err %v, schema %d):\n%s", err, v.Schema, body)
	}

	code, body = get("/events")
	if code != http.StatusOK {
		t.Fatalf("/events status %d", code)
	}
	var dump struct {
		Schema int     `json:"schema"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/events does not parse: %v\n%s", err, body)
	}
	if len(dump.Events) != 1 || dump.Events[0].KindName != "acquire" {
		t.Fatalf("/events = %+v, want one acquire", dump.Events)
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}

	live.Store(nil)
	if code, body := get("/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("nil source: status %d body %q", code, body)
	}
}
