package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/trace"
	"time"
)

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts an HTTP server on addr exposing:
//
//	/metrics       Prometheus text exposition format
//	/vars          JSON snapshot, schema-stamped (SchemaVersion)
//	/events        chronological flight-recorder dump (JSON)
//	/debug/pprof/  the standard pprof handlers (profile, heap, trace, ...)
//
// src resolves the currently observed domain at each request — a
// benchmark driver that rebuilds its tree per trial swaps an
// atomic.Pointer behind it; requests while no domain is live get 503.
// The listener is bound synchronously (so the caller learns about a
// bad/busy addr immediately, and Addr reports the resolved port for
// addr ":0"); serving then proceeds on a background goroutine until
// Close.
func Serve(addr string, src func() *Obs) (*Server, error) {
	mux := http.NewServeMux()
	withObs := func(h func(o *Obs, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			o := src()
			if o == nil {
				http.Error(w, "no observed tree is live", http.StatusServiceUnavailable)
				return
			}
			h(o, w, r)
		}
	}
	mux.HandleFunc("/metrics", withObs(func(o *Obs, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.WriteProm(w)
	}))
	mux.HandleFunc("/vars", withObs(func(o *Obs, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		o.WriteVars(w)
	}))
	mux.HandleFunc("/events", withObs(func(o *Obs, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Schema int     `json:"schema"`
			Events []Event `json:"events"`
		}{Schema: SchemaVersion, Events: o.Events()})
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, waiting briefly for in-flight requests.
func (s *Server) Close() error {
	done := make(chan error, 1)
	go func() { done <- s.srv.Close() }()
	select {
	case err := <-done:
		return err
	case <-time.After(2 * time.Second):
		return s.ln.Close()
	}
}

// Tracing reports whether a runtime execution trace is being collected;
// instrumented layers may use it to skip region bookkeeping entirely.
// trace.StartRegion already no-ops when tracing is off, so this is an
// optimization seam, not a correctness one.
func Tracing() bool { return trace.IsEnabled() }
