// Package obs is the live observability layer: a pull-model metrics
// registry over the engine's existing per-thread atomic counters, a
// per-thread ring-buffer flight recorder of fixed-size structured
// events, Prometheus/JSON/pprof HTTP exposition (Serve), and
// runtime/trace user regions around operation execution.
//
// The design splits responsibility so the hot path stays allocation-free
// and near-free when idle:
//
//   - Metrics are not pushed. The per-thread counters the engine already
//     maintains (operation completions per path, aborts per path and
//     cause, retry-policy actions) ARE the metric store; families
//     register read closures that sum them at scrape time. The hot path
//     pays nothing it was not already paying, and a scrape costs the
//     scraper, not the operation threads.
//   - Latencies and events are sampled per thread (every Nth op), and
//     recorded into per-thread structures: a hist.Atomic histogram and a
//     fixed-size event ring written with individual atomic word stores.
//     Threads never contend with each other, and a concurrent reader
//     (the /metrics or /events handler) sees a consistent-enough
//     best-effort snapshot without any lock on the hot path.
//   - runtime/trace regions cost one inlined enabled-check when tracing
//     is off (Start*Region returns nil without calling into
//     runtime/trace), so they are always emitted when observability is
//     configured.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"htmtree/internal/hist"
	"htmtree/internal/htm"
)

// SchemaVersion stamps every machine-readable export of this repository:
// htmbench CSV/JSON rows and the /vars snapshot all carry it, so a
// consumer can match a live scrape against a committed benchmark
// baseline.
const SchemaVersion = 2

// Defaults for Config's zero values.
const (
	DefaultLatencySample = 64
	DefaultEventSample   = 64
	DefaultEventBuffer   = 2048
)

// Config tunes the sampling discipline. The zero value selects the
// defaults; negative values disable the corresponding capture entirely
// (metrics families still work — they read counters the engine
// maintains regardless).
type Config struct {
	// LatencySample records every Nth operation's latency into the
	// per-thread histogram (two clock reads per sampled op). 0 selects
	// DefaultLatencySample; negative disables latency capture.
	LatencySample int
	// EventSample records every Nth hot-path event (op completions,
	// aborts) in the flight recorder. Cold-path events (announce, help,
	// install, fallback acquisition, quiesce, migration) are always
	// recorded — they are rare by construction and are the ones that
	// explain a convoy. 0 selects DefaultEventSample; negative disables
	// hot-path events (cold events are still kept).
	EventSample int
	// EventBuffer is the per-thread flight-recorder capacity in events
	// (rounded up to a power of two). 0 selects DefaultEventBuffer;
	// negative disables the recorder entirely.
	EventBuffer int
}

func (c Config) withDefaults() Config {
	if c.LatencySample == 0 {
		c.LatencySample = DefaultLatencySample
	}
	if c.EventSample == 0 {
		c.EventSample = DefaultEventSample
	}
	if c.EventBuffer == 0 {
		c.EventBuffer = DefaultEventBuffer
	}
	return c
}

// Obs is one tree's observability domain: the metric registry and the
// set of flight-recorder threads. Create one per observed tree (New),
// attach per-shard Nodes to the layers that register metrics and spawn
// recorder threads, and expose it with Serve.
type Obs struct {
	cfg   Config
	start time.Time

	reg registry

	mu      sync.Mutex
	threads []*ThreadObs
}

// New creates an observability domain.
func New(cfg Config) *Obs {
	o := &Obs{cfg: cfg.withDefaults(), start: time.Now()}
	o.Node().Gauge("htmtree_uptime_seconds",
		"Seconds since this tree's observability domain was created.",
		func(emit Point) { emit(time.Since(o.start).Seconds()) })
	o.Node().Gauge("htmtree_recorder_threads",
		"Flight-recorder threads registered (operation threads plus system recorders).",
		func(emit Point) {
			o.mu.Lock()
			n := len(o.threads)
			o.mu.Unlock()
			emit(float64(n))
		})
	o.Node().Histogram("htmtree_op_latency_ns",
		"Sampled per-operation latency in nanoseconds (every Config.LatencySample-th op per thread).",
		func(emit HistPoint) { emit(o.LatencySnapshot()) })
	return o
}

// Start returns the domain's epoch; event timestamps are nanoseconds
// since it.
func (o *Obs) Start() time.Time { return o.start }

// Node returns a registration handle whose metric families and recorder
// threads carry the given constant labels (the shard layer attaches
// `shard="i"`). Nodes are cheap; create one per labelled component.
func (o *Obs) Node(labels ...Label) *Node {
	return &Node{o: o, labels: labels}
}

// Node is a labelled registration handle into an Obs domain.
type Node struct {
	o      *Obs
	labels []Label
}

// Domain returns the Obs this node registers into.
func (n *Node) Domain() *Obs { return n.o }

// NewThread creates a flight-recorder thread in the node's domain.
// Sampled (hot-path) methods on the returned ThreadObs must be called
// from a single goroutine at a time; RareEvent is safe from any.
func (n *Node) NewThread() *ThreadObs {
	o := n.o
	t := &ThreadObs{o: o}
	if o.cfg.LatencySample > 0 {
		t.latEvery = uint64(o.cfg.LatencySample)
	}
	if o.cfg.EventSample > 0 {
		t.evEvery = uint64(o.cfg.EventSample)
	}
	if o.cfg.EventBuffer > 0 {
		size := 1
		for size < o.cfg.EventBuffer {
			size <<= 1
		}
		t.ring = make([]uint64, size*4)
		t.mask = uint64(size - 1)
	}
	t.evCtr = evNever
	if t.evEvery > 0 && t.ring != nil {
		t.evCtr = int64(t.evEvery)
	}
	o.mu.Lock()
	t.id = len(o.threads)
	o.threads = append(o.threads, t)
	o.mu.Unlock()
	return t
}

// EventKind classifies a flight-recorder event.
type EventKind uint8

// The event taxonomy. Hot events (EvOp, EvAbort) are subject to
// Config.EventSample; everything else records unconditionally.
const (
	EvNone         EventKind = iota
	EvOp                     // operation completed; Path is the final path
	EvAbort                  // transactional attempt aborted; Path, Cause, A=policy site id, B=explicit abort code
	EvAnnounce               // helpable descriptor announced; A=descriptor generation
	EvHelp                   // this thread helped an announced operation while blocked
	EvInstall                // terminal attempt observed installed; A=descriptor generation
	EvAcquire                // fallback lock acquired; A=generation (1 = classic TLE acquisition)
	EvQuiesce                // monitor quiesce completed; A=shard
	EvMigrateBegin           // key migration started; A=donor shard, B=receiver shard
	EvMigrateEnd             // key migration finished; A=keys moved
	EvFaultAbort             // injected fault forced a transactional abort; A=fault point, B=fire seq
	EvFaultStall             // injected fault stalled the encountering goroutine; A=fault point, B=fire seq
	EvFaultKill              // injected fault killed (parked forever) the encountering goroutine; A=fault point, B=fire seq
)

// String returns the event kind's wire name.
func (k EventKind) String() string {
	switch k {
	case EvOp:
		return "op"
	case EvAbort:
		return "abort"
	case EvAnnounce:
		return "announce"
	case EvHelp:
		return "help"
	case EvInstall:
		return "install"
	case EvAcquire:
		return "acquire"
	case EvQuiesce:
		return "quiesce"
	case EvMigrateBegin:
		return "migrate_begin"
	case EvMigrateEnd:
		return "migrate_end"
	case EvFaultAbort:
		return "fault_abort"
	case EvFaultStall:
		return "fault_stall"
	case EvFaultKill:
		return "fault_kill"
	default:
		return "none"
	}
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// TS is nanoseconds since the domain's Start.
	TS uint64 `json:"ts_ns"`
	// Thread is the recorder thread's registration index.
	Thread int `json:"thread"`
	// Seq orders events within one thread (TS has clock granularity).
	Seq  uint32    `json:"seq"`
	Kind EventKind `json:"-"`
	// KindName is Kind's wire name, for the JSON dump.
	KindName string         `json:"kind"`
	Path     htm.PathKind   `json:"-"`
	Cause    htm.AbortCause `json:"-"`
	// PathName and CauseName are Path's and Cause's wire names (empty
	// when the event carries no path / the cause is none).
	PathName  string `json:"path,omitempty"`
	CauseName string `json:"cause,omitempty"`
	A         uint64 `json:"a"`
	B         uint64 `json:"b"`
}

// ThreadObs is one flight-recorder thread: a sampled latency histogram
// and an event ring. The sampled methods (MaybeTime, RecordLatency,
// Event) follow the engine's per-thread single-writer discipline —
// exactly one goroutine calls them at a time — which keeps their
// sampling counters plain fields. RareEvent and the scrape-side readers
// are safe concurrently with everything: the ring is written with
// individual atomic word stores into a slot reserved by an atomic
// cursor add, so a reader sees each word either before or after a
// write; at the wrap boundary a slot being overwritten can decode as a
// mix of the old and new event (best-effort by design — the recorder
// favors a wait-free hot path over an exact dump, and the dump's
// consumers diagnose convoys, not audits).
type ThreadObs struct {
	o  *Obs
	id int

	lat      hist.Atomic
	latEvery uint64 // sample period; 0 = disabled
	latCtr   uint64

	evEvery uint64 // hot-event sample period; 0 = disabled
	evCtr   int64  // countdown to the next recorded hot event

	seq  uint32
	pos  uint64   // atomic: next event index
	ring []uint64 // 4 words per event; nil = recorder disabled
	mask uint64
}

// ID returns the thread's registration index in its domain.
func (t *ThreadObs) ID() int { return t.id }

// MaybeTime reports whether this operation's latency should be
// captured, advancing the thread's sampling counter. Single-writer.
func (t *ThreadObs) MaybeTime() bool {
	if t.latEvery == 0 {
		return false
	}
	t.latCtr++
	if t.latCtr < t.latEvery {
		return false
	}
	t.latCtr = 0
	return true
}

// RecordLatency records one sampled operation latency in nanoseconds.
func (t *ThreadObs) RecordLatency(ns uint64) { t.lat.Record(ns) }

// evNever parks a disabled recorder's countdown so far away that the
// decrement-only fast path never reaches it.
const evNever = 1 << 62

// Event records a hot-path event, subject to the event sampling period.
// Single-writer. The body is a single countdown so it inlines into the
// engine's per-operation path; everything else lives in evFire.
func (t *ThreadObs) Event(kind EventKind, path htm.PathKind, cause htm.AbortCause, a, b uint64) {
	t.evCtr--
	if t.evCtr > 0 {
		return
	}
	t.evFire(kind, path, cause, a, b)
}

// evFire records one sampled hot event and rearms the countdown (or
// parks it when hot events are disabled).
func (t *ThreadObs) evFire(kind EventKind, path htm.PathKind, cause htm.AbortCause, a, b uint64) {
	if t.evEvery == 0 || t.ring == nil {
		t.evCtr = evNever
		return
	}
	t.evCtr = int64(t.evEvery)
	t.put(kind, path, cause, a, b)
}

// RareEvent records a cold-path event unconditionally. Safe from any
// goroutine (the shard layer's migration and quiesce recorders are
// shared).
func (t *ThreadObs) RareEvent(kind EventKind, path htm.PathKind, cause htm.AbortCause, a, b uint64) {
	if t.ring == nil {
		return
	}
	t.put(kind, path, cause, a, b)
}

func (t *ThreadObs) put(kind EventKind, path htm.PathKind, cause htm.AbortCause, a, b uint64) {
	ts := uint64(time.Since(t.o.start))
	seq := atomic.AddUint32(&t.seq, 1)
	slot := (atomic.AddUint64(&t.pos, 1) - 1) & t.mask
	i := slot * 4
	atomic.StoreUint64(&t.ring[i], ts)
	atomic.StoreUint64(&t.ring[i+1],
		uint64(kind)<<56|uint64(path&0xf)<<52|uint64(cause&0xf)<<48|uint64(seq))
	atomic.StoreUint64(&t.ring[i+2], a)
	atomic.StoreUint64(&t.ring[i+3], b)
}

// drain decodes the thread's retained events (oldest first).
func (t *ThreadObs) drain(into []Event) []Event {
	if t.ring == nil {
		return into
	}
	end := atomic.LoadUint64(&t.pos)
	n := end
	if max := t.mask + 1; n > max {
		n = max
	}
	for i := end - n; i < end; i++ {
		j := (i & t.mask) * 4
		meta := atomic.LoadUint64(&t.ring[j+1])
		kind := EventKind(meta >> 56)
		if kind == EvNone {
			continue
		}
		cause := htm.AbortCause(meta >> 48 & 0xf)
		ev := Event{
			TS:       atomic.LoadUint64(&t.ring[j]),
			Thread:   t.id,
			Seq:      uint32(meta),
			Kind:     kind,
			KindName: kind.String(),
			Path:     htm.PathKind(meta >> 52 & 0xf),
			Cause:    cause,
			A:        atomic.LoadUint64(&t.ring[j+2]),
			B:        atomic.LoadUint64(&t.ring[j+3]),
		}
		if ev.Path != 0 {
			ev.PathName = ev.Path.String()
		}
		if cause != htm.CauseNone {
			ev.CauseName = cause.String()
		}
		into = append(into, ev)
	}
	return into
}

// Events returns the chronological merge of every recorder thread's
// retained events (by timestamp, then thread and per-thread sequence).
// Safe to call while threads record; the result is the best-effort
// snapshot the ThreadObs comment describes.
func (o *Obs) Events() []Event {
	o.mu.Lock()
	threads := append([]*ThreadObs(nil), o.threads...)
	o.mu.Unlock()
	var out []Event
	for _, t := range threads {
		out = t.drain(out)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		return a.Seq < b.Seq
	})
	return out
}
