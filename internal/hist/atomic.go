package hist

import "sync/atomic"

// Atomic is a histogram whose Record is safe to run concurrently with
// readers (Snapshot) and with other recorders. It exists for live
// observability: a per-thread Atomic is written by exactly one
// operation thread (so the adds are uncontended and stay cheap) while a
// /metrics scrape snapshots it from an HTTP goroutine at any moment.
// Every field is updated with individual atomic operations, so a
// snapshot taken mid-Record may be ahead or behind by in-flight samples
// on any one field — each field is monotone and individually exact, the
// cross-field skew is bounded by the number of concurrent in-flight
// Records (one, under the single-writer discipline). The zero value is
// an empty histogram ready for use.
type Atomic struct {
	counts [numBuckets]uint64
	count  uint64
	sum    uint64
	max    uint64
}

// Record adds one sample. It never allocates, and is safe to run
// concurrently with Snapshot and other Records.
func (a *Atomic) Record(v uint64) {
	atomic.AddUint64(&a.counts[bucket(v)], 1)
	atomic.AddUint64(&a.count, 1)
	atomic.AddUint64(&a.sum, v)
	for {
		m := atomic.LoadUint64(&a.max)
		if v <= m || atomic.CompareAndSwapUint64(&a.max, m, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (a *Atomic) Count() uint64 { return atomic.LoadUint64(&a.count) }

// Snapshot adds the current contents into a plain Hist (bucket-wise,
// like Merge), reading every field atomically. The quantile, bucket and
// cumulative exports then run on the stable copy. Safe to call while
// Records are in flight; the copy reflects some recent state of each
// field independently (see the type comment).
func (a *Atomic) Snapshot(into *Hist) {
	for i := range a.counts {
		into.counts[i] += atomic.LoadUint64(&a.counts[i])
	}
	into.count += atomic.LoadUint64(&a.count)
	into.sum += atomic.LoadUint64(&a.sum)
	if m := atomic.LoadUint64(&a.max); m > into.max {
		into.max = m
	}
}
