// Package hist provides a fixed-size, allocation-free latency histogram
// in the HDR style: values bucket by their highest set bit, with each
// power-of-two range subdivided into 2^subBits linear sub-buckets, so
// the relative quantization error is bounded by 2^-subBits (~3%) across
// the full uint64 range. Record is a single array increment — safe for
// per-operation capture on a benchmark hot path — and histograms merge
// by bucket-wise addition, so each thread records into a private Hist
// and the driver merges once at the end.
package hist

import "math/bits"

// subBits is the per-power-of-two subdivision: 2^subBits sub-buckets
// per binary order of magnitude, bounding relative error by 2^-subBits.
const subBits = 5

// subCount is the number of sub-buckets per power of two.
const subCount = 1 << subBits

// numBuckets spans the full uint64 range: values below subCount map
// exactly (one bucket per value), every higher power of two contributes
// subCount buckets.
const numBuckets = (64-subBits)<<subBits + subCount

// Hist is a histogram of uint64 samples (latencies in nanoseconds, by
// convention). The zero value is an empty histogram ready for use. A
// Hist is not synchronized: one writer at a time (the per-thread
// capture discipline), with Merge/quantile reads after the writers
// stop.
type Hist struct {
	counts [numBuckets]uint64
	count  uint64
	sum    uint64
	max    uint64
}

// bucket maps a value to its bucket index: the identity below subCount,
// then (highest set bit, next subBits bits) above — monotone, so bucket
// order is value order.
func bucket(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - 1 // MSB position, >= subBits
	sub := (v >> (exp - subBits)) & (subCount - 1)
	return int(exp-subBits+1)<<subBits | int(sub)
}

// bucketLow returns the smallest value mapping to bucket i (the inverse
// of bucket at bucket boundaries).
func bucketLow(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	exp := uint(i>>subBits) + subBits - 1
	sub := uint64(i & (subCount - 1))
	return 1<<exp | sub<<(exp-subBits)
}

// bucketMid returns the representative (midpoint) value of bucket i.
func bucketMid(i int) uint64 {
	lo := bucketLow(i)
	if i < subCount {
		return lo
	}
	width := uint64(1) << (uint(i>>subBits) - 1) // 2^(exp-subBits)
	return lo + width/2
}

// Record adds one sample. It never allocates.
func (h *Hist) Record(v uint64) {
	h.counts[bucket(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge adds every sample of o into h (bucket-wise; exact counts, and
// the merged maximum is the larger of the two). It never allocates.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset empties the histogram.
func (h *Hist) Reset() {
	*h = Hist{}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Max returns the largest recorded sample (exact, not quantized), or 0
// when empty.
func (h *Hist) Max() uint64 { return h.max }

// Sum returns the sum of all recorded samples.
func (h *Hist) Sum() uint64 { return h.sum }

// Mean returns the mean sample, or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns a representative value at quantile q in [0, 1]: the
// midpoint of the bucket holding the sample of rank ceil(q*count), so
// the result is within the bucket's ~2^-subBits relative width of the
// true order statistic. Quantile(1) returns the exact maximum. Returns
// 0 when the histogram is empty.
func (h *Hist) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	rank := uint64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank >= h.count {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return h.max
}

// Bucket is one non-empty histogram bucket in an export: Count samples
// in [Low, High).
type Bucket struct {
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order
// (allocates; intended for post-run export, not the capture path).
func (h *Hist) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		high := uint64(1)<<63 - 1 + uint64(1)<<63 // max uint64 for the last bucket
		if i+1 < numBuckets {
			high = bucketLow(i + 1)
		}
		out = append(out, Bucket{Low: bucketLow(i), High: high, Count: c})
	}
	return out
}

// CumBucket is one step of a cumulative (Prometheus `le`-style) bucket
// export: Count samples were recorded with value <= Le.
type CumBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Cumulative returns the histogram as cumulative `le` buckets in the
// Prometheus exposition sense: one entry per non-empty internal bucket,
// in ascending Le order, where Count is the running total of samples
// with value <= Le. Samples are integers, so the inclusive upper bound
// of the half-open internal bucket [Low, High) is exactly High-1 — the
// export loses no precision relative to Buckets. The final entry's
// Count equals Count() (the `+Inf` bucket is implied). Allocates;
// intended for scrape-time exposition, not the capture path.
func (h *Hist) Cumulative() []CumBucket {
	var out []CumBucket
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		le := uint64(1)<<63 - 1 + uint64(1)<<63 // max uint64 for the last bucket
		if i+1 < numBuckets {
			le = bucketLow(i+1) - 1
		}
		out = append(out, CumBucket{Le: le, Count: cum})
	}
	return out
}
