package hist

import (
	"math"
	"sort"
	"testing"
)

// TestBucketRoundTrip checks that every bucket's lower bound maps back
// to that bucket, and that bucket assignment is monotone across every
// bucket boundary (v-1 lands strictly below v's bucket at each Low).
func TestBucketRoundTrip(t *testing.T) {
	for i := 0; i < numBuckets; i++ {
		lo := bucketLow(i)
		if got := bucket(lo); got != i {
			t.Fatalf("bucket(bucketLow(%d)) = %d, want %d (low %d)", i, got, i, lo)
		}
		if lo > 0 {
			if got := bucket(lo - 1); got != i-1 {
				t.Fatalf("bucket(%d) = %d, want %d (boundary below bucket %d)",
					lo-1, got, i-1, i)
			}
		}
		if mid := bucketMid(i); bucket(mid) != i {
			t.Fatalf("bucketMid(%d) = %d lands in bucket %d", i, mid, bucket(mid))
		}
	}
	// The extremes of the domain must be representable.
	if got := bucket(0); got != 0 {
		t.Fatalf("bucket(0) = %d", got)
	}
	if got := bucket(math.MaxUint64); got != numBuckets-1 {
		t.Fatalf("bucket(MaxUint64) = %d, want %d", got, numBuckets-1)
	}
}

// TestBucketRelativeError checks the quantization guarantee: a bucket's
// width never exceeds 2^-subBits of its lower bound (for values above
// the exact range).
func TestBucketRelativeError(t *testing.T) {
	for i := subCount; i < numBuckets-1; i++ {
		lo, hi := bucketLow(i), bucketLow(i+1)
		if width := hi - lo; float64(width) > float64(lo)/float64(subCount)+1 {
			t.Fatalf("bucket %d: width %d exceeds %d/%d", i, width, lo, subCount)
		}
	}
}

// lcg is a tiny deterministic PRNG for reference distributions.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// TestQuantileAccuracy records deterministic samples spanning several
// orders of magnitude and compares every interesting quantile against
// the exact order statistic from a sorted reference copy. The histogram
// answer must be within one bucket width (~2^-subBits relative) of the
// truth.
func TestQuantileAccuracy(t *testing.T) {
	var h Hist
	var r lcg = 12345
	const n = 200000
	ref := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		// Latency-shaped: mostly small values, a heavy tail up to ~2^40.
		shift := r.next() % 34
		v := 100 + r.next()%(uint64(1)<<(6+shift))
		ref = append(ref, v)
		h.Record(v)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })

	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if h.Max() != ref[n-1] {
		t.Fatalf("Max = %d, want %d (exact)", h.Max(), ref[n-1])
	}
	var sum uint64
	for _, v := range ref {
		sum += v
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %d, want %d (exact)", h.Sum(), sum)
	}

	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999} {
		rank := int(q*float64(n)+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		want := ref[rank]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if relErr > 1.0/subCount {
			t.Errorf("Quantile(%v) = %d, reference %d (rel err %.4f > %.4f)",
				q, got, want, relErr, 1.0/subCount)
		}
	}
	if got := h.Quantile(1); got != ref[n-1] {
		t.Fatalf("Quantile(1) = %d, want exact max %d", got, ref[n-1])
	}
}

// TestQuantileEdgeCases covers empty and single-sample histograms.
func TestQuantileEdgeCases(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 7", q, got)
		}
	}
	if h.Mean() != 7 {
		t.Fatalf("Mean = %v, want 7", h.Mean())
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("Reset did not empty the histogram")
	}
}

// TestMerge checks that merging per-thread histograms is exact: the
// merge of disjoint recordings equals recording everything into one.
func TestMerge(t *testing.T) {
	var a, b, all Hist
	var r lcg = 999
	for i := 0; i < 50000; i++ {
		v := r.next() % (1 << 30)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	var m Hist
	m.Merge(&a)
	m.Merge(&b)
	if m.Count() != all.Count() || m.Sum() != all.Sum() || m.Max() != all.Max() {
		t.Fatalf("merge totals (%d,%d,%d) != direct (%d,%d,%d)",
			m.Count(), m.Sum(), m.Max(), all.Count(), all.Sum(), all.Max())
	}
	if m.counts != all.counts {
		t.Fatal("merged bucket array differs from direct recording")
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if m.Quantile(q) != all.Quantile(q) {
			t.Fatalf("Quantile(%v): merged %d != direct %d", q, m.Quantile(q), all.Quantile(q))
		}
	}
}

// TestBucketsExport checks the non-empty bucket export covers every
// sample exactly once with consistent ranges.
func TestBucketsExport(t *testing.T) {
	var h Hist
	var r lcg = 4242
	const n = 10000
	for i := 0; i < n; i++ {
		h.Record(r.next() % (1 << 20))
	}
	var total uint64
	prevHigh := uint64(0)
	for _, b := range h.Buckets() {
		if b.Low < prevHigh {
			t.Fatalf("bucket [%d,%d) overlaps previous (high %d)", b.Low, b.High, prevHigh)
		}
		if b.High <= b.Low {
			t.Fatalf("bucket [%d,%d) is empty-ranged", b.Low, b.High)
		}
		if b.Count == 0 {
			t.Fatal("export contains an empty bucket")
		}
		prevHigh = b.High
		total += b.Count
	}
	if total != n {
		t.Fatalf("exported counts sum to %d, want %d", total, n)
	}
}

// TestRecordZeroAlloc is the package-local allocation gate: Record,
// Merge, and Quantile must not allocate (the repo-level gate in
// alloc_gate_test.go checks the same through the workload capture
// path).
func TestRecordZeroAlloc(t *testing.T) {
	var h, o Hist
	var r lcg = 1
	if avg := testing.AllocsPerRun(1000, func() {
		h.Record(r.next() % (1 << 22))
	}); avg != 0 {
		t.Fatalf("Record allocates %v per op", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		o.Merge(&h)
	}); avg != 0 {
		t.Fatalf("Merge allocates %v per op", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.99)
	}); avg != 0 {
		t.Fatalf("Quantile allocates %v per op", avg)
	}
}

// TestCumulativeProperty is the property test for the Prometheus-style
// cumulative export: against random sample sets it cross-checks
// Cumulative against Buckets (same boundaries, running totals) and
// against Quantile (the value Quantile(q) returns must be covered by
// the first cumulative bucket whose count reaches rank(q)).
func TestCumulativeProperty(t *testing.T) {
	rng := lcg(42)
	for trial := 0; trial < 20; trial++ {
		var h Hist
		n := int(rng.next()%5000) + 1
		for i := 0; i < n; i++ {
			// Mix magnitudes: some tiny exact-range values, some huge.
			v := rng.next() >> (rng.next() % 60)
			h.Record(v)
		}

		cum := h.Cumulative()
		bks := h.Buckets()
		if len(cum) != len(bks) {
			t.Fatalf("trial %d: %d cumulative vs %d plain buckets", trial, len(cum), len(bks))
		}
		var running uint64
		for i, b := range bks {
			running += b.Count
			// Same boundary: le is the inclusive form of the half-open
			// [Low, High) bucket, exact for integer samples.
			wantLe := b.High - 1
			if b.High == math.MaxUint64 {
				wantLe = math.MaxUint64
			}
			if cum[i].Le != wantLe {
				t.Fatalf("trial %d bucket %d: le %d, want %d", trial, i, cum[i].Le, wantLe)
			}
			if cum[i].Count != running {
				t.Fatalf("trial %d bucket %d: cumulative %d, want %d", trial, i, cum[i].Count, running)
			}
			if i > 0 && cum[i].Le <= cum[i-1].Le {
				t.Fatalf("trial %d: le not strictly increasing at %d", trial, i)
			}
		}
		if cum[len(cum)-1].Count != h.Count() {
			t.Fatalf("trial %d: last cumulative %d != count %d", trial, cum[len(cum)-1].Count, h.Count())
		}

		// Quantile cross-check: the order statistic of rank ceil(q*n)
		// must lie in the first cumulative bucket reaching that rank,
		// and Quantile answers with a value from that same bucket (its
		// midpoint, or the exact max for the top rank).
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
			rank := uint64(q*float64(h.Count()) + 0.5)
			if rank < 1 {
				rank = 1
			}
			if rank >= h.Count() {
				continue // Quantile returns the exact max here
			}
			idx := sort.Search(len(cum), func(i int) bool { return cum[i].Count >= rank })
			if idx == len(cum) {
				t.Fatalf("trial %d q=%v: rank %d beyond cumulative total", trial, q, rank)
			}
			v := h.Quantile(q)
			lo := uint64(0)
			if idx > 0 {
				lo = cum[idx-1].Le + 1
			}
			if v < lo || v > cum[idx].Le {
				t.Fatalf("trial %d q=%v: Quantile=%d outside cumulative bucket [%d, %d]",
					trial, q, v, lo, cum[idx].Le)
			}
		}
	}
}

// TestAtomicMatchesHist records the same deterministic stream into a
// plain Hist and an Atomic and requires identical snapshots, then
// hammers one Atomic from several goroutines and checks the merged
// totals are exact.
func TestAtomicMatchesHist(t *testing.T) {
	rng := lcg(7)
	var h Hist
	var a Atomic
	for i := 0; i < 10000; i++ {
		v := rng.next() >> (rng.next() % 60)
		h.Record(v)
		a.Record(v)
	}
	var snap Hist
	a.Snapshot(&snap)
	if snap != h {
		t.Fatal("atomic snapshot differs from plain histogram on identical input")
	}

	var b Atomic
	const workers, per = 8, 5000
	done := make(chan uint64, workers)
	for w := 0; w < workers; w++ {
		go func(seed uint64) {
			r := lcg(seed)
			var sum uint64
			for i := 0; i < per; i++ {
				v := r.next() % 1_000_000
				sum += v
				b.Record(v)
			}
			done <- sum
		}(uint64(w + 1))
	}
	var wantSum uint64
	for w := 0; w < workers; w++ {
		wantSum += <-done
	}
	var merged Hist
	b.Snapshot(&merged)
	if merged.Count() != workers*per {
		t.Fatalf("concurrent count %d, want %d", merged.Count(), workers*per)
	}
	if merged.Sum() != wantSum {
		t.Fatalf("concurrent sum %d, want %d", merged.Sum(), wantSum)
	}
}
