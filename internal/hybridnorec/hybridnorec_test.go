package hybridnorec

import (
	"math/rand"
	"sync"
	"testing"

	"htmtree/internal/htm"
)

func TestAtomicCounterHW(t *testing.T) {
	t.Parallel()
	tm := New(htm.Config{}, 0)
	th := tm.NewThread()
	var c htm.Word
	c.Bind(tm.inner.Clock())
	for i := 0; i < 100; i++ {
		hw := th.Atomic(func(tx *Tx) { tx.Write(&c, tx.Read(&c)+1) })
		if !hw {
			t.Fatal("uncontended transaction fell to the software path")
		}
	}
	if got := c.Get(nil); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestSoftwarePathCommits(t *testing.T) {
	t.Parallel()
	// Force every hardware attempt to abort: all work lands on the
	// software NOrec path.
	tm := New(htm.Config{SpuriousEvery: 1}, 3)
	th := tm.NewThread()
	var c htm.Word
	c.Bind(tm.inner.Clock())
	for i := 0; i < 50; i++ {
		if hw := th.Atomic(func(tx *Tx) { tx.Write(&c, tx.Read(&c)+1) }); hw {
			t.Fatal("hardware path committed despite forced aborts")
		}
	}
	if got := c.Get(nil); got != 50 {
		t.Fatalf("counter = %d, want 50", got)
	}
}

func TestConcurrentCounterMixedPaths(t *testing.T) {
	t.Parallel()
	tm := New(htm.Config{SpuriousEvery: 20}, 4) // frequent software fallback
	var c htm.Word
	c.Bind(tm.inner.Clock())
	const goroutines = 6
	const perG = 1500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; i < perG; i++ {
				th.Atomic(func(tx *Tx) { tx.Write(&c, tx.Read(&c)+1) })
			}
		}()
	}
	wg.Wait()
	if got := c.Get(nil); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestSoftwareReadConsistency(t *testing.T) {
	t.Parallel()
	// Software transactions must never observe x != y while writers
	// keep them equal.
	tm := New(htm.Config{}, 1)
	var x, y htm.Word
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tm.NewThread()
		for {
			select {
			case <-stop:
				return
			default:
			}
			th.Atomic(func(tx *Tx) {
				v := tx.Read(&x) + 1
				tx.Write(&x, v)
				tx.Write(&y, v)
			})
		}
	}()
	thR := tm.NewThread()
	for i := 0; i < 20000; i++ {
		thR.Atomic(func(tx *Tx) {
			xv := tx.Read(&x)
			yv := tx.Read(&y)
			if xv != yv {
				t.Errorf("inconsistent snapshot: x=%d y=%d", xv, yv)
			}
		})
	}
	close(stop)
	wg.Wait()
}

func TestBSTOracle(t *testing.T) {
	t.Parallel()
	tr := NewBST(htm.Config{SpuriousEvery: 100}, 4) // exercise both paths
	h := tr.NewHandle()
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(200)) + 1
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			_, existed := h.Insert(k, v)
			if _, ok := oracle[k]; ok != existed {
				t.Fatalf("Insert(%d) existed=%v, oracle %v", k, existed, ok)
			}
			oracle[k] = v
		case 1:
			_, existed := h.Delete(k)
			if _, ok := oracle[k]; ok != existed {
				t.Fatalf("Delete(%d) existed=%v, oracle %v", k, existed, ok)
			}
			delete(oracle, k)
		case 2:
			v, found := h.Search(k)
			want, ok := oracle[k]
			if found != ok || (found && v != want) {
				t.Fatalf("Search(%d) = (%d,%v), oracle (%d,%v)", k, v, found, want, ok)
			}
		}
	}
	sum, count := tr.KeySum()
	var wantSum, wantCount uint64
	for k := range oracle {
		wantSum += k
		wantCount++
	}
	if sum != wantSum || count != wantCount {
		t.Fatalf("KeySum = (%d,%d), oracle (%d,%d)", sum, count, wantSum, wantCount)
	}
}

func TestBSTConcurrentKeySum(t *testing.T) {
	t.Parallel()
	tr := NewBST(htm.Config{SpuriousEvery: 200}, 6)
	const goroutines = 4
	const perG = 2000
	sums := make([]int64, goroutines)
	counts := make([]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(int64(g) + 31))
			for i := 0; i < perG; i++ {
				k := uint64(rng.Intn(128)) + 1
				if rng.Intn(2) == 0 {
					if _, existed := h.Insert(k, k); !existed {
						sums[g] += int64(k)
						counts[g]++
					}
				} else {
					if _, existed := h.Delete(k); existed {
						sums[g] -= int64(k)
						counts[g]--
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var wantSum, wantCount int64
	for g := range sums {
		wantSum += sums[g]
		wantCount += counts[g]
	}
	sum, count := tr.KeySum()
	if int64(sum) != wantSum || int64(count) != wantCount {
		t.Fatalf("key-sum check failed: tree (%d,%d), threads (%d,%d)",
			sum, count, wantSum, wantCount)
	}
}

func TestBSTRangeQuery(t *testing.T) {
	t.Parallel()
	tr := NewBST(htm.Config{}, 0)
	h := tr.NewHandle()
	for k := uint64(1); k <= 100; k++ {
		h.Insert(k, k*2)
	}
	out := h.RangeQuery(10, 20, nil)
	if len(out) != 10 {
		t.Fatalf("RQ returned %d pairs, want 10", len(out))
	}
	for i, kv := range out {
		if kv.Key != uint64(10+i) || kv.Val != kv.Key*2 {
			t.Fatalf("RQ[%d] = %+v", i, kv)
		}
	}
}
