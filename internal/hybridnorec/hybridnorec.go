// Package hybridnorec implements the Hybrid NOrec transactional memory
// (Dalessandro et al., ASPLOS 2011) that Section 7.3 of Brown's paper
// compares against, together with the unbalanced BST built on it for
// Figure 17.
//
// Hybrid NOrec combines a NOrec software path — a single global
// sequence lock, value-based read validation, buffered writes — with a
// hardware fast path. To let software transactions detect hardware
// commits, every *updating* hardware transaction increments the global
// sequence counter at commit. That counter is the contention hotspot the
// paper highlights: beyond a handful of threads every updating hardware
// transaction conflicts with every other on the counter word, producing
// the negative scaling visible in Figure 17 even though the transactions
// touch disjoint tree data.
package hybridnorec

import (
	"runtime"

	"htmtree/internal/htm"
)

// DefaultAttempts is the hardware attempt budget before an operation
// moves to the software path.
const DefaultAttempts = 20

// abort code for "software writer holds the sequence lock".
const codeSeqLockHeld uint8 = 0xB1

// TM is a Hybrid NOrec transactional memory instance.
type TM struct {
	inner    *htm.TM
	gclk     htm.Word // NOrec global sequence lock: odd = software commit in flight
	attempts int
}

// New creates a Hybrid NOrec TM over the given simulated-HTM
// configuration.
func New(cfg htm.Config, attempts int) *TM {
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	tm := &TM{inner: htm.New(cfg), attempts: attempts}
	// The NOrec sequence lock is mutated non-transactionally by software
	// commits and subscribed by hardware transactions: same clock domain.
	tm.gclk.Bind(tm.inner.Clock())
	return tm
}

// HTMStats exposes the underlying hardware-transaction statistics.
func (tm *TM) HTMStats() htm.Stats { return tm.inner.Stats() }

// Thread is a per-goroutine Hybrid NOrec context.
type Thread struct {
	tm *TM
	h  *htm.Thread
	sw swTx
}

// NewThread registers a new thread.
func (tm *TM) NewThread() *Thread {
	return &Thread{tm: tm, h: tm.inner.NewThread()}
}

// Tx is a transaction handle: exactly one of hw/sw is active.
type Tx struct {
	hw    *htm.Tx
	sw    *swTx
	wrote bool
}

// Read reads a word cell transactionally.
func (tx *Tx) Read(c *htm.Word) uint64 {
	if tx.hw != nil {
		return c.Get(tx.hw)
	}
	return tx.sw.readWord(c)
}

// Write writes a word cell transactionally.
func (tx *Tx) Write(c *htm.Word, v uint64) {
	tx.wrote = true
	if tx.hw != nil {
		c.Set(tx.hw, v)
		return
	}
	tx.sw.writeWord(c, v)
}

// ReadRef reads a pointer cell transactionally.
func ReadRef[T any](tx *Tx, c *htm.Ref[T]) *T {
	if tx.hw != nil {
		return c.Get(tx.hw)
	}
	return readRefSW(tx.sw, c)
}

// WriteRef writes a pointer cell transactionally.
func WriteRef[T any](tx *Tx, c *htm.Ref[T], p *T) {
	tx.wrote = true
	if tx.hw != nil {
		c.Set(tx.hw, p)
		return
	}
	tx.sw.apply = append(tx.sw.apply, func() { c.Set(nil, p) })
}

// Atomic runs fn as a Hybrid NOrec transaction: up to the attempt budget
// on the hardware path, then on the NOrec software path (which always
// commits). fn may be re-executed and must be side-effect free outside
// transactional reads/writes.
//
// The caller must not retain tx. Read-own-write within one transaction
// is supported on the hardware path only; the data structures in this
// package do not require it.
func (th *Thread) Atomic(fn func(tx *Tx)) (hwCommitted bool) {
	for i := 0; i < th.tm.attempts; i++ {
		tx := Tx{}
		ok, _ := th.h.Atomic(htm.PathFast, func(hw *htm.Tx) {
			tx.hw = hw
			// Subscribe to the sequence lock: a software commit in
			// flight forces an abort.
			if th.tm.gclk.Get(hw)%2 == 1 {
				hw.Abort(codeSeqLockHeld)
			}
			fn(&tx)
			if tx.wrote {
				// Signal software transactions — the Figure 17 hotspot.
				th.tm.gclk.Set(hw, th.tm.gclk.Get(hw)+2)
			}
		})
		if ok {
			return true
		}
	}
	// Software path: NOrec.
	sw := &th.sw
	for {
		if th.runSoftware(fn, sw) {
			return false
		}
	}
}

// runSoftware executes one software attempt, translating mid-run
// validation failures (swAbort panics) into a retry.
func (th *Thread) runSoftware(fn func(tx *Tx), sw *swTx) (done bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(swAbort); !ok {
				panic(r)
			}
			done = false
		}
	}()
	sw.reset(th.tm)
	tx := Tx{sw: sw}
	fn(&tx)
	if !tx.wrote {
		// Reads were kept consistent incrementally; nothing to publish.
		return true
	}
	return sw.commit()
}

// swAbort is the panic payload that unwinds a software transaction whose
// snapshot became inconsistent mid-run (the NOrec restart).
type swAbort struct{}

// swTx is the NOrec software transaction: value-based validation against
// a global sequence lock.
type swTx struct {
	tm    *TM
	snap  uint64
	valid []func() bool
	apply []func()
}

func (sw *swTx) reset(tm *TM) {
	sw.tm = tm
	sw.valid = sw.valid[:0]
	sw.apply = sw.apply[:0]
	sw.snap = sw.waitEven()
}

// waitEven spins until the sequence lock is even and returns it.
func (sw *swTx) waitEven() uint64 {
	for i := 0; ; i++ {
		v := sw.tm.gclk.Get(nil)
		if v%2 == 0 {
			return v
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

// postRead revalidates after each read if the global clock moved — the
// NOrec discipline that gives opacity with a single global word. An
// inconsistent snapshot aborts (and restarts) the transaction.
func (sw *swTx) postRead() {
	for {
		cur := sw.tm.gclk.Get(nil)
		if cur == sw.snap {
			return
		}
		snap := sw.waitEven()
		if !sw.revalidate() {
			panic(swAbort{})
		}
		sw.snap = snap
	}
}

func (sw *swTx) revalidate() bool {
	for _, v := range sw.valid {
		if !v() {
			return false
		}
	}
	return true
}

func (sw *swTx) readWord(c *htm.Word) uint64 {
	v := c.Get(nil)
	sw.valid = append(sw.valid, func() bool { return c.Get(nil) == v })
	sw.postRead()
	return v
}

func readRefSW[T any](sw *swTx, c *htm.Ref[T]) *T {
	p := c.Get(nil)
	sw.valid = append(sw.valid, func() bool { return c.Get(nil) == p })
	sw.postRead()
	return p
}

func (sw *swTx) writeWord(c *htm.Word, v uint64) {
	sw.apply = append(sw.apply, func() { c.Set(nil, v) })
}

// commit acquires the sequence lock, validates the read set, applies
// the write set and releases. It returns false when validation failed
// and the transaction must re-execute.
func (sw *swTx) commit() bool {
	for {
		snap := sw.snap
		if !sw.tm.gclk.CAS(nil, snap, snap+1) {
			cur := sw.waitEven()
			if !sw.revalidate() {
				return false
			}
			sw.snap = cur
			continue
		}
		if !sw.revalidate() {
			sw.tm.gclk.Set(nil, snap) // release without publishing
			return false
		}
		for _, a := range sw.apply {
			a()
		}
		sw.tm.gclk.Set(nil, snap+2)
		return true
	}
}
