package hybridnorec

import (
	"fmt"

	"htmtree/internal/dict"
	"htmtree/internal/htm"
)

// Sentinel keys, as in the template BST (Section 6.1 of the paper).
const (
	keyInf1 = ^uint64(0) - 1
	keyInf2 = ^uint64(0)
)

// node is an external-BST node; every shared field is a transactional
// cell because Hybrid NOrec instruments all shared accesses.
type node struct {
	key  uint64
	leaf bool
	val  htm.Word
	l, r htm.Ref[node]
}

func leafNode(clk *htm.Clock, key, val uint64) *node {
	n := &node{key: key, leaf: true}
	n.val.Bind(clk)
	n.l.Bind(clk)
	n.r.Bind(clk)
	n.val.Init(val)
	return n
}

func internalNode(clk *htm.Clock, key uint64, left, right *node) *node {
	n := &node{key: key}
	n.val.Bind(clk)
	n.l.Bind(clk)
	n.r.Bind(clk)
	n.l.Init(left)
	n.r.Init(right)
	return n
}

// BST is the unbalanced external binary search tree implemented on
// Hybrid NOrec for the Figure 17 comparison: sequential tree code
// wrapped in hybrid transactions, with every shared read and write going
// through the TM (the compiled-in instrumentation the paper describes).
type BST struct {
	tm   *TM
	root *node
}

// NewBST creates an empty tree over a Hybrid NOrec TM with the given
// hardware configuration.
func NewBST(cfg htm.Config, attempts int) *BST {
	tm := New(cfg, attempts)
	clk := tm.inner.Clock()
	return &BST{
		tm:   tm,
		root: internalNode(clk, keyInf2, leafNode(clk, keyInf1, 0), leafNode(clk, keyInf2, 0)),
	}
}

// TM exposes the underlying hybrid TM (for statistics).
func (t *BST) TM() *TM { return t.tm }

// Handle is a per-goroutine handle.
type Handle struct {
	t  *BST
	th *Thread

	resVal   uint64
	resFound bool
}

var _ dict.Handle = (*Handle)(nil)

// NewHandle registers a per-goroutine handle.
func (t *BST) NewHandle() dict.Handle {
	return &Handle{t: t, th: t.tm.NewThread()}
}

func childRef(p *node, key uint64) *htm.Ref[node] {
	if key < p.key {
		return &p.l
	}
	return &p.r
}

// search descends to the leaf for key inside tx.
func (t *BST) search(tx *Tx, key uint64) (gp, p, l *node) {
	p = t.root
	l = ReadRef(tx, &p.l)
	for !l.leaf {
		gp, p = p, l
		l = ReadRef(tx, childRef(l, key))
	}
	return gp, p, l
}

// Insert associates key with val.
func (h *Handle) Insert(key, val uint64) (uint64, bool) {
	checkKey(key)
	t := h.t
	h.th.Atomic(func(tx *Tx) {
		_, p, l := t.search(tx, key)
		if l.key == key {
			h.resVal, h.resFound = tx.Read(&l.val), true
			tx.Write(&l.val, val)
			return
		}
		h.resVal, h.resFound = 0, false
		clk := t.tm.inner.Clock()
		nl := leafNode(clk, key, val)
		var ni *node
		if key < l.key {
			ni = internalNode(clk, l.key, nl, l)
		} else {
			ni = internalNode(clk, key, l, nl)
		}
		WriteRef(tx, childRef(p, key), ni)
	})
	return h.resVal, h.resFound
}

// Delete removes key.
func (h *Handle) Delete(key uint64) (uint64, bool) {
	checkKey(key)
	t := h.t
	h.th.Atomic(func(tx *Tx) {
		gp, p, l := t.search(tx, key)
		if l.key != key {
			h.resVal, h.resFound = 0, false
			return
		}
		h.resVal, h.resFound = tx.Read(&l.val), true
		if gp == nil {
			WriteRef(tx, &t.root.l, leafNode(t.tm.inner.Clock(), keyInf1, 0))
			return
		}
		var s *node
		if key < p.key {
			s = ReadRef(tx, &p.r)
		} else {
			s = ReadRef(tx, &p.l)
		}
		WriteRef(tx, childRef(gp, key), s)
	})
	return h.resVal, h.resFound
}

// Search looks up key.
func (h *Handle) Search(key uint64) (uint64, bool) {
	checkKey(key)
	t := h.t
	h.th.Atomic(func(tx *Tx) {
		_, _, l := t.search(tx, key)
		if l.key == key {
			h.resVal, h.resFound = tx.Read(&l.val), true
			return
		}
		h.resVal, h.resFound = 0, false
	})
	return h.resVal, h.resFound
}

// RangeQuery appends all pairs with lo <= key < hi in ascending order.
func (h *Handle) RangeQuery(lo, hi uint64, out []dict.KV) []dict.KV {
	t := h.t
	base := len(out)
	h.th.Atomic(func(tx *Tx) {
		out = out[:base]
		out = t.rqWalk(tx, ReadRef(tx, &t.root.l), lo, hi, out)
	})
	return out
}

func (t *BST) rqWalk(tx *Tx, n *node, lo, hi uint64, out []dict.KV) []dict.KV {
	if n.leaf {
		if n.key >= lo && n.key < hi && n.key < keyInf1 {
			out = append(out, dict.KV{Key: n.key, Val: tx.Read(&n.val)})
		}
		return out
	}
	if lo < n.key {
		out = t.rqWalk(tx, ReadRef(tx, &n.l), lo, hi, out)
	}
	if hi > n.key {
		out = t.rqWalk(tx, ReadRef(tx, &n.r), lo, hi, out)
	}
	return out
}

// KeySum returns the sum and count of keys (quiescent use only).
func (t *BST) KeySum() (sum, count uint64) {
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if n.key < keyInf1 {
				sum += n.key
				count++
			}
			return
		}
		walk(n.l.Get(nil))
		walk(n.r.Get(nil))
	}
	walk(t.root)
	return sum, count
}

func checkKey(key uint64) {
	if key > dict.MaxKey {
		panic(fmt.Sprintf("hybridnorec: key %d exceeds dict.MaxKey", key))
	}
}
