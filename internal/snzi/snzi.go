// Package snzi implements a scalable non-zero indicator (Ellen, Lev,
// Luchangco and Moir, "SNZI: Scalable NonZero Indicators", PODC 2007).
//
// Brown's paper (Section 5) suggests an SNZI as a drop-in replacement
// for the global fetch-and-increment object F that counts operations on
// the fallback path: fast-path transactions subscribe only to the
// indicator bit, which changes exactly on 0↔nonzero transitions, so a
// second, third, ... operation arriving on the fallback path does not
// abort fast-path transactions the way a shared counter would.
//
// The implementation is the two-level SNZI tree from the paper: leaf
// nodes absorb arrivals and departures and propagate only their own
// 0↔nonzero transitions to the root, whose separate indicator word I is
// what queries (and hardware transactions) read.
package snzi

import (
	"sync/atomic"

	"htmtree/internal/htm"
)

// defaultLeaves is the fan-out of the two-level SNZI tree.
const defaultLeaves = 8

// SNZI is a scalable non-zero indicator. Create one with New.
type SNZI struct {
	root   root
	leaves []leaf
	next   atomic.Uint64 // round-robin leaf assignment
}

// New creates an SNZI with the default fan-out. Before any Arrive or
// Depart, the SNZI must be bound (Bind) to the version clock of the TM
// whose transactions subscribe to it.
func New() *SNZI {
	s := &SNZI{leaves: make([]leaf, defaultLeaves)}
	for i := range s.leaves {
		s.leaves[i].parent = &s.root
	}
	return s
}

// Bind associates every SNZI cell with the version clock of the TM whose
// transactions read the indicator: arrivals and departures mutate the
// cells non-transactionally and must advance that TM's clock to stay
// strongly atomic with respect to its transactions.
func (s *SNZI) Bind(c *htm.Clock) {
	s.root.x.Bind(c)
	s.root.i.Bind(c)
	for i := range s.leaves {
		s.leaves[i].x.Bind(c)
	}
}

// Ticket identifies an arrival so the matching departure hits the same
// leaf.
type Ticket struct {
	l *leaf
}

// Arrive announces presence and returns the ticket to depart with.
func (s *SNZI) Arrive() Ticket {
	l := &s.leaves[s.next.Add(1)%uint64(len(s.leaves))]
	l.arrive()
	return Ticket{l: l}
}

// Depart retracts the arrival identified by t.
func (s *SNZI) Depart(t Ticket) {
	t.l.depart()
}

// Nonzero reports whether there are more arrivals than departures. A
// transactional read subscribes the caller to the indicator word only,
// which changes exactly on 0↔nonzero transitions.
func (s *SNZI) Nonzero(tx *htm.Tx) bool {
	return s.root.i.Get(tx) != 0
}

// leaf state packing: halves<<32 | version. "halves" counts arrivals in
// units of one half, so 1 represents the paper's intermediate value ½.
func packLeaf(halves, ver uint32) uint64 { return uint64(halves)<<32 | uint64(ver) }
func unpackLeaf(x uint64) (halves, ver uint32) {
	return uint32(x >> 32), uint32(x)
}

type leaf struct {
	x      htm.Word
	parent *root
}

// arrive implements the SNZI-node Arrive of the paper (Figure 3),
// with counts in halves.
func (l *leaf) arrive() {
	succ := false
	undo := 0
	for !succ {
		x := l.x.Get(nil)
		c, v := unpackLeaf(x)
		switch {
		case c >= 2: // at least one full arrival present
			if l.x.CAS(nil, x, packLeaf(c+2, v)) {
				succ = true
			}
		case c == 0:
			if l.x.CAS(nil, x, packLeaf(1, v+1)) { // write the intermediate ½
				succ = true
				x = packLeaf(1, v+1)
				c, v = 1, v+1
			}
		}
		if c == 1 { // intermediate value: propagate to the root, then fix up
			l.parent.arrive()
			if !l.x.CAS(nil, x, packLeaf(2, v)) {
				undo++
			}
		}
	}
	for ; undo > 0; undo-- {
		l.parent.depart()
	}
}

func (l *leaf) depart() {
	for {
		x := l.x.Get(nil)
		c, v := unpackLeaf(x)
		if l.x.CAS(nil, x, packLeaf(c-2, v)) {
			if c == 2 { // this leaf became zero
				l.parent.depart()
			}
			return
		}
	}
}

// root state packing: count<<32 | announce<<31 | version (31 bits).
func packRoot(c uint32, a bool, v uint32) uint64 {
	x := uint64(c)<<32 | uint64(v&0x7fffffff)
	if a {
		x |= 1 << 31
	}
	return x
}
func unpackRoot(x uint64) (c uint32, a bool, v uint32) {
	return uint32(x >> 32), x&(1<<31) != 0, uint32(x) & 0x7fffffff
}

type root struct {
	x htm.Word // (count, announce, version)
	i htm.Word // the indicator word transactions subscribe to
}

// arrive implements the SNZI-root Arrive of the paper (Figure 4).
func (r *root) arrive() {
	var nc uint32
	var na bool
	var nv uint32
	for {
		x := r.x.Get(nil)
		c, a, v := unpackRoot(x)
		if c == 0 {
			nc, na, nv = 1, true, v+1
		} else {
			nc, na, nv = c+1, a, v
		}
		if r.x.CAS(nil, x, packRoot(nc, na, nv)) {
			break
		}
	}
	if na {
		r.i.Set(nil, 1)
		r.x.CAS(nil, packRoot(nc, true, nv), packRoot(nc, false, nv))
	}
}

// depart implements the SNZI-root Depart of the paper (Figure 4).
func (r *root) depart() {
	for {
		x := r.x.Get(nil)
		c, _, v := unpackRoot(x)
		if !r.x.CAS(nil, x, packRoot(c-1, false, v)) {
			continue
		}
		if c >= 2 {
			return
		}
		for {
			y := r.x.Get(nil)
			yc, ya, yv := unpackRoot(y)
			if yv != v {
				return // someone arrived meanwhile; they own the indicator
			}
			r.i.Set(nil, 0)
			if r.x.CAS(nil, y, packRoot(yc, ya, yv+1)) {
				return
			}
		}
	}
}
