package snzi

import (
	"sync"
	"testing"

	"htmtree/internal/htm"
)

func TestBasicTransitions(t *testing.T) {
	t.Parallel()
	s := New()
	s.Bind(htm.NewClock())
	if s.Nonzero(nil) {
		t.Fatal("fresh SNZI reports nonzero")
	}
	t1 := s.Arrive()
	if !s.Nonzero(nil) {
		t.Fatal("nonzero not reported after arrive")
	}
	t2 := s.Arrive()
	s.Depart(t1)
	if !s.Nonzero(nil) {
		t.Fatal("nonzero dropped while one arrival remains")
	}
	s.Depart(t2)
	if s.Nonzero(nil) {
		t.Fatal("nonzero reported after all departures")
	}
}

func TestPhasedConcurrency(t *testing.T) {
	t.Parallel()
	s := New()
	s.Bind(htm.NewClock())
	const n = 16
	tickets := make([]Ticket, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); tickets[i] = s.Arrive() }(i)
	}
	wg.Wait()
	if !s.Nonzero(nil) {
		t.Fatal("nonzero false with 16 arrivals present")
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); s.Depart(tickets[i]) }(i)
	}
	wg.Wait()
	if s.Nonzero(nil) {
		t.Fatal("nonzero true after all departed")
	}
}

func TestRandomStressEndsZero(t *testing.T) {
	t.Parallel()
	s := New()
	s.Bind(htm.NewClock())
	const goroutines = 8
	const pairs = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var held []Ticket
			for i := 0; i < pairs; i++ {
				held = append(held, s.Arrive())
				if i%3 != 0 { // keep some arrivals outstanding for a while
					s.Depart(held[len(held)-1])
					held = held[:len(held)-1]
				}
			}
			for _, tk := range held {
				s.Depart(tk)
			}
		}()
	}
	wg.Wait()
	if s.Nonzero(nil) {
		t.Fatal("nonzero after balanced arrivals/departures")
	}
}

// TestIndicatorStableWhileNonzero is the scalability property the paper
// wants from an SNZI: while the count stays above zero, additional
// arrivals and departures do not touch the indicator word. We verify it
// behaviourally: a transaction that read the indicator still commits
// after heavy churn, which would be impossible had the indicator word
// been written.
func TestIndicatorStableWhileNonzero(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	th := tm.NewThread()
	s := New()
	s.Bind(tm.Clock())

	base := s.Arrive() // keep the count above zero throughout

	ok, ab := th.Atomic(htm.PathFast, func(tx *htm.Tx) {
		if !s.Nonzero(tx) {
			t.Error("Nonzero false while an arrival is present")
		}
		// Churn: many arrive/depart pairs while the transaction holds
		// its read subscription on the indicator word.
		for i := 0; i < 64; i++ {
			s.Depart(s.Arrive())
		}
	})
	if !ok {
		t.Fatalf("transaction aborted (%+v): churn touched the indicator word", ab)
	}
	s.Depart(base)

	// And the inverse: a 0↔nonzero transition must abort a writing
	// subscriber at commit. (A read-only transaction may still commit —
	// it legitimately serializes at its begin snapshot.)
	var w htm.Word
	ok, _ = th.Atomic(htm.PathFast, func(tx *htm.Tx) {
		if s.Nonzero(tx) {
			t.Error("Nonzero true with no arrivals")
		}
		w.Set(tx, 1)
		s.Depart(s.Arrive()) // 0 -> 1 -> 0 transition
	})
	if ok {
		t.Fatal("writing transaction survived a 0<->nonzero indicator transition")
	}
}
