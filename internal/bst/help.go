package bst

import (
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
)

// Helpable-fallback support (engine/help.go): the announced-descriptor
// bodies below are the fallback template operations of ops.go with two
// changes. Arguments come from the descriptor — never from the handle
// scratch, which belongs to whatever operation this thread itself has
// in flight — and the update phase splits SCXO into build / Install /
// Run so the SCX record is published in the descriptor before it
// executes: the install CAS is the operation's claim, and whichever
// thread installed the record retires the removed nodes exactly once.

// helpExec runs one fallback attempt for the announced descriptor using
// this handle's pools and reclamation context (engine.Thread.SetHelpExec).
func (h *Handle) helpExec(d *engine.HelpDesc) {
	switch d.Kind {
	case engine.HelpInsert:
		h.t.helpInsert(h, d)
	case engine.HelpDelete:
		h.t.helpDelete(h, d)
	}
}

// finishRecord is the shared tail of a help body: install the prepared
// attempt, and if this thread won the claim, run the record and — on
// commit — retire the removed nodes and settle the pool state. A lost
// install race discards the attempt's unpublished allocations so they
// cannot be mistaken for published nodes by a later Settle.
func (h *Handle) finishRecord(d *engine.HelpDesc, att *engine.HelpAttempt, removed ...*Node) {
	if !d.Install(att) {
		h.beginAttempt() // discard this attempt's unpublished nodes
		return
	}
	if att.Rec.Run() {
		for _, n := range removed {
			h.remove(n)
		}
		h.settle(htm.PathFallback)
	}
}

// helpInsert is insertTemplate (ops.go) with descriptor arguments and
// the split SCX. It performs one attempt; the engine's executor loop
// re-drives it until an attempt is installed and terminal.
func (t *Tree) helpInsert(h *Handle, d *engine.HelpDesc) {
	h.beginAttempt()
	key, val := d.Key, d.Val
	_, p, _ := t.search(nil, key)
	var pl, pr *Node
	pi, st := llxscx.LLX(nil, &p.hdr, func() {
		pl = p.l.Get(nil)
		pr = p.r.Get(nil)
	})
	if st != llxscx.StatusOK {
		return
	}
	l := pl
	if key >= p.key.Peek() {
		l = pr
	}
	if !l.leaf {
		return // the tree changed under us; re-search
	}
	li, st := llxscx.LLX(nil, &l.hdr, nil)
	if st != llxscx.StatusOK {
		return
	}

	v := []*llxscx.Hdr{&p.hdr, &l.hdr}
	infos := []*llxscx.Info{pi, li}
	fld := childRef(p, key)

	lk := l.key.Peek()
	if lk == key {
		// Key present: replace the leaf with a copy holding the new
		// value, reporting the previous one.
		oldVal := l.val.Get(nil)
		nl := h.newLeaf(key, val)
		rec := llxscx.NewRecord(v, infos, []*llxscx.Hdr{&l.hdr}, fld, l, nl)
		h.finishRecord(d, &engine.HelpAttempt{Rec: rec, Val: oldVal, Found: true}, l)
		return
	}
	nl := h.newLeaf(key, val)
	var ni *Node
	if key < lk {
		ni = h.newInternal(lk, nl, l)
	} else {
		ni = h.newInternal(key, l, nl)
	}
	rec := llxscx.NewRecord(v, infos, nil, fld, l, ni)
	h.finishRecord(d, &engine.HelpAttempt{Rec: rec})
}

// helpDelete is deleteTemplate (ops.go) with descriptor arguments and
// the split SCX. An absent key installs a terminal no-op attempt
// (Rec == nil): absence was determined while the lock word excluded
// fast-path commits, so it is the operation's linearization.
func (t *Tree) helpDelete(h *Handle, d *engine.HelpDesc) {
	h.beginAttempt()
	key := d.Key
	gp, p, l := t.search(nil, key)
	if l.key.Peek() != key {
		d.Install(&engine.HelpAttempt{})
		return
	}
	if gp == nil {
		// l hangs off the root: replace with a fresh sentinel leaf.
		var rl *Node
		ri, st := llxscx.LLX(nil, &t.root.hdr, func() { rl = t.root.l.Get(nil) })
		if st != llxscx.StatusOK {
			return
		}
		if !rl.leaf {
			return
		}
		if rl.key.Peek() != key {
			d.Install(&engine.HelpAttempt{})
			return
		}
		li, st := llxscx.LLX(nil, &rl.hdr, nil)
		if st != llxscx.StatusOK {
			return
		}
		oldVal := rl.val.Get(nil)
		rec := llxscx.NewRecord(
			[]*llxscx.Hdr{&t.root.hdr, &rl.hdr}, []*llxscx.Info{ri, li},
			[]*llxscx.Hdr{&rl.hdr}, &t.root.l, rl, h.newLeaf(keyInf1, 0))
		h.finishRecord(d, &engine.HelpAttempt{Rec: rec, Val: oldVal, Found: true}, rl)
		return
	}

	var gl, gr *Node
	gi, st := llxscx.LLX(nil, &gp.hdr, func() {
		gl = gp.l.Get(nil)
		gr = gp.r.Get(nil)
	})
	if st != llxscx.StatusOK {
		return
	}
	p2 := gl
	if key >= gp.key.Peek() {
		p2 = gr
	}
	if p2 != p {
		return
	}
	var pl, pr *Node
	pi, st := llxscx.LLX(nil, &p.hdr, func() {
		pl = p.l.Get(nil)
		pr = p.r.Get(nil)
	})
	if st != llxscx.StatusOK {
		return
	}
	l2, s := pl, pr
	if key >= p.key.Peek() {
		l2, s = pr, pl
	}
	if l2 != l {
		return
	}
	li, st := llxscx.LLX(nil, &l.hdr, nil)
	if st != llxscx.StatusOK {
		return
	}
	var sl, sr *Node
	si, st := llxscx.LLX(nil, &s.hdr, func() {
		if !s.leaf {
			sl = s.l.Get(nil)
			sr = s.r.Get(nil)
		}
	})
	if st != llxscx.StatusOK {
		return
	}
	oldVal := l.val.Get(nil)
	var ns *Node
	if s.leaf {
		ns = h.newLeaf(s.key.Peek(), s.val.Get(nil))
	} else {
		ns = h.newInternal(s.key.Peek(), sl, sr)
	}
	rec := llxscx.NewRecord(
		[]*llxscx.Hdr{&gp.hdr, &p.hdr, &l.hdr, &s.hdr},
		[]*llxscx.Info{gi, pi, li, si},
		[]*llxscx.Hdr{&p.hdr, &l.hdr, &s.hdr},
		childRef(gp, key), p, ns)
	h.finishRecord(d, &engine.HelpAttempt{Rec: rec, Val: oldVal, Found: true}, p, l, s)
}
