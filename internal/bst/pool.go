package bst

import (
	"htmtree/internal/htm"
	"htmtree/internal/nodepool"
)

// Node pooling (paper Section 9): the shared discipline lives in
// internal/nodepool; this file wires it to the BST's node kinds. Leaves
// removed by fast-path commits recycle immediately — sound because the
// fast path excludes the fallback path, so every thread that can still
// hold a reference runs transactionally and aborts on the leaf's
// version-advancing Recycle stores (the leaf key is a cell for exactly
// this reason). Internal nodes always wait out a grace period: their
// routing keys are read with plain loads on the descent hot path
// (htm.Word.Peek), which is only sound if no reader can ever observe a
// reuse.

// ReclaimStats counts a handle's node-pool activity. Exported for tests
// and diagnostics.
type ReclaimStats = nodepool.Stats

// ReclaimStats returns a snapshot of the handle's pool counters.
func (h *Handle) ReclaimStats() ReclaimStats { return h.pool.Stats() }

// PoolSize returns the number of nodes currently sitting in the
// handle's free lists (white-box tests).
func (h *Handle) PoolSize() int { return h.pool.Size() }

// freshNode heap-allocates a node of the given kind with its cells
// bound to the tree's clock (the pool's fresh callback).
func (h *Handle) freshNode(leaf bool) *Node {
	n := &Node{leaf: leaf}
	n.bind(h.clk)
	return n
}

// newLeaf builds a leaf holding key/val from the pool. Recycled nodes
// re-initialize their cells with version-advancing stores so stale
// transactional readers abort; fresh nodes use plain Init (version 0 is
// readable at any snapshot).
func (h *Handle) newLeaf(key, val uint64) *Node {
	n, recycled := h.pool.Take(true)
	if recycled {
		n.hdr.Recycle()
		n.key.Recycle(key)
		n.val.Recycle(val)
	} else {
		n.key.Init(key)
		n.val.Init(val)
	}
	return n
}

// newInternal builds an internal node routing by key from the pool.
// Internal nodes only reach the pool through a grace period, so no
// thread can still hold them and plain (non-version-advancing) stores
// re-initialize them.
func (h *Handle) newInternal(key uint64, left, right *Node) *Node {
	n, recycled := h.pool.Take(false)
	if recycled {
		n.hdr.Reset()
	}
	n.key.Init(key)
	n.l.Init(left)
	n.r.Init(right)
	return n
}

// beginAttempt, remove and settle delegate to the shared pool (see
// nodepool's attempt-lifecycle contract).
func (h *Handle) beginAttempt()            { h.pool.BeginAttempt() }
func (h *Handle) remove(n *Node)           { h.pool.Remove(n) }
func (h *Handle) settle(path htm.PathKind) { h.pool.Settle(path) }
