package bst

import (
	"runtime"
	"sync/atomic"
	"testing"

	"htmtree/internal/engine"
	"htmtree/internal/fault"
	"htmtree/internal/htm"
)

// helpHook is an installable engine.Config.PreemptPoint: tests arm it
// only for the operation under scrutiny so setup traffic does not trip
// it.
type helpHook struct {
	fn atomic.Value // func()
}

func (p *helpHook) point() {
	if f, ok := p.fn.Load().(func()); ok && f != nil {
		f()
	}
}

func (p *helpHook) arm(f func()) { p.fn.Store(f) }

// helpableConfig returns a TLE configuration whose fast path can never
// commit (every transactional access aborts spuriously), so every
// update reaches the helpable fallback deterministically.
func helpableConfig(hook *helpHook) Config {
	cfg := Config{
		Algorithm: engine.AlgTLE,
		HTM:       htm.Config{SpuriousEvery: 1},
		Engine: engine.Config{
			HelpableFallback: true,
			AttemptLimit:     1,
		},
	}
	if hook != nil {
		cfg.Engine.PreemptPoint = hook.point
	}
	return cfg
}

// TestHelpableHelperCompletes parks the announcing owner right after it
// publishes its descriptor (before it executes anything) and verifies a
// helper thread completes the operation alone: the protocol's central
// property — the announcer is not on the critical path.
func TestHelpableHelperCompletes(t *testing.T) {
	t.Parallel()
	hook := &helpHook{}
	tr := New(helpableConfig(hook))
	h1 := tr.newHandle()
	h2 := tr.newHandle()

	announced := make(chan struct{})
	resume := make(chan struct{})
	var fired atomic.Bool
	hook.arm(func() {
		// CAS guard, not sync.Once: other operations (the helper's
		// searches) also pass the hook and must not serialize behind
		// the parked owner.
		if fired.CompareAndSwap(false, true) {
			announced <- struct{}{}
			<-resume
		}
	})

	done := make(chan struct{})
	var old uint64
	var existed bool
	go func() {
		defer close(done)
		old, existed = h1.Insert(42, 7)
	}()
	<-announced
	// The owner is parked after announcing; the helper must finish the
	// whole operation (acquire the word, install, run, release).
	if !h2.e.H.Help() {
		t.Fatal("helper found nothing to help")
	}
	if v, ok := h2.Search(42); !ok || v != 7 {
		t.Fatalf("after help, before owner resumed: Search(42) = (%d,%v), want (7,true)", v, ok)
	}
	close(resume)
	<-done
	if existed || old != 0 {
		t.Fatalf("owner Insert returned (%d,%v), want (0,false)", old, existed)
	}
	// The finished descriptor was retracted: nothing left to help.
	if h2.e.H.Help() {
		t.Fatal("helped a finished operation")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHelpableHelperCompletesDelete is the delete variant, checking the
// helper delivers the removed value through the descriptor and that the
// removed nodes are retired exactly once across both handles.
func TestHelpableHelperCompletesDelete(t *testing.T) {
	t.Parallel()
	hook := &helpHook{}
	tr := New(helpableConfig(hook))
	h1 := tr.newHandle()
	h2 := tr.newHandle()
	h1.Insert(5, 50)
	h1.Insert(10, 100)

	base := retired(h1) + retired(h2)
	announced := make(chan struct{})
	resume := make(chan struct{})
	var fired atomic.Bool
	hook.arm(func() {
		if fired.CompareAndSwap(false, true) {
			announced <- struct{}{}
			<-resume
		}
	})

	done := make(chan struct{})
	var old uint64
	var existed bool
	go func() {
		defer close(done)
		old, existed = h1.Delete(5)
	}()
	<-announced
	if !h2.e.H.Help() {
		t.Fatal("helper found nothing to help")
	}
	if _, ok := h2.Search(5); ok {
		t.Fatal("key 5 still present after helped delete")
	}
	close(resume)
	<-done
	if !existed || old != 50 {
		t.Fatalf("owner Delete returned (%d,%v), want (50,true)", old, existed)
	}
	// The general-case BST delete unlinks parent, leaf, and sibling:
	// exactly three retirements, by whichever thread installed the
	// attempt, and no double retirement by the other.
	if d := retired(h1) + retired(h2) - base; d != 3 {
		t.Fatalf("helped delete retired %d nodes, want exactly 3", d)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHelpableOwnerCompletes runs the protocol with no helper at all:
// the owner drives its own descriptor, and afterwards the slot is clean.
func TestHelpableOwnerCompletes(t *testing.T) {
	t.Parallel()
	tr := New(helpableConfig(nil))
	h1 := tr.newHandle()
	h2 := tr.newHandle()
	if old, existed := h1.Insert(1, 2); existed || old != 0 {
		t.Fatalf("Insert(1) = (%d,%v), want (0,false)", old, existed)
	}
	if old, existed := h1.Insert(1, 3); !existed || old != 2 {
		t.Fatalf("re-Insert(1) = (%d,%v), want (2,true)", old, existed)
	}
	if old, existed := h1.Delete(1); !existed || old != 3 {
		t.Fatalf("Delete(1) = (%d,%v), want (3,true)", old, existed)
	}
	if old, existed := h1.Delete(1); existed || old != 0 {
		t.Fatalf("re-Delete(1) = (%d,%v), want (0,false)", old, existed)
	}
	if h2.e.H.Help() {
		t.Fatal("helper found work after the owner finished everything")
	}
	if tr.Engine().Stats().Fallback == 0 {
		t.Fatal("no operation completed on the fallback path; test is not exercising the helpable protocol")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHelpableBothRace lets the owner and a helper drive the same
// descriptor concurrently and verifies exactly-once effects: one
// result, one set of retirements, a consistent tree.
func TestHelpableBothRace(t *testing.T) {
	t.Parallel()
	for round := 0; round < 50; round++ {
		hook := &helpHook{}
		tr := New(helpableConfig(hook))
		h1 := tr.newHandle()
		h2 := tr.newHandle()
		h1.Insert(5, 50)
		h1.Insert(10, 100)

		base := retired(h1) + retired(h2)
		announced := make(chan struct{})
		var fired atomic.Bool
		hook.arm(func() {
			if fired.CompareAndSwap(false, true) {
				close(announced)
			}
		})

		done := make(chan struct{})
		var old uint64
		var existed bool
		go func() {
			defer close(done)
			old, existed = h1.Delete(5)
		}()
		<-announced
		// Race the owner to the descriptor until the owner reports done.
		for {
			select {
			case <-done:
			default:
				h2.e.H.Help()
				runtime.Gosched()
				continue
			}
			break
		}
		if !existed || old != 50 {
			t.Fatalf("round %d: Delete(5) = (%d,%v), want (50,true)", round, old, existed)
		}
		if _, ok := h2.Search(5); ok {
			t.Fatalf("round %d: key 5 still present", round)
		}
		if v, ok := h2.Search(10); !ok || v != 100 {
			t.Fatalf("round %d: Search(10) = (%d,%v), want (100,true)", round, v, ok)
		}
		if d := retired(h1) + retired(h2) - base; d != 3 {
			t.Fatalf("round %d: raced delete retired %d nodes, want exactly 3", round, d)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHelpableConcurrentKeySum is the protocol under real concurrency:
// every update forced through the helpable fallback, with the keysum
// harness's per-thread accounting cross-checked against the tree.
func TestHelpableConcurrentKeySum(t *testing.T) {
	t.Parallel()
	testConcurrentKeySum(t, helpableConfig(nil), 4, 2000, 32)
}

// TestHelpableConcurrentKeySumMixed keeps the fast path mostly alive
// (occasional spurious aborts) so helpable fallbacks interleave with
// fast-path commits, exercising the word-subscription exclusion.
func TestHelpableConcurrentKeySumMixed(t *testing.T) {
	t.Parallel()
	testConcurrentKeySum(t, Config{
		Algorithm: engine.AlgTLE,
		HTM:       htm.Config{SpuriousEvery: 40},
		Engine:    engine.Config{HelpableFallback: true, AttemptLimit: 2},
	}, 4, 3000, 64)
}

// retired sums a handle's node retirements on every route.
func retired(h *Handle) uint64 {
	s := h.ReclaimStats()
	return s.RetiredFast + s.RetiredGrace
}

// TestHelpableOwnerDeath is the permanent-failure variant of the parked
// owner tests above: the fault plane kills the announcing owner right
// after it publishes its delete descriptor — the goroutine parks
// forever, it never executes, finishes, or retires anything. A helper
// must complete the operation exactly once (result visible, exactly
// three retirements, slot retracted) while the owner is provably still
// dead; only the test's teardown releases it, at which point the owner
// observes the terminal attempt and returns the helper's result.
func TestHelpableOwnerDeath(t *testing.T) {
	t.Parallel()
	plan := fault.New(1, fault.Rule{
		Point: fault.PointFallbackOwner,
		// The two prefill inserts are fallback entries 1 and 2; kill
		// the third entry — the delete — and nothing after it.
		Every: 1, After: 2, Count: 1,
		Kill: true,
	})
	cfg := helpableConfig(nil)
	cfg.Engine.Faults = plan
	tr := New(cfg)
	h1 := tr.newHandle()
	h2 := tr.newHandle()
	h1.Insert(5, 50)
	h1.Insert(10, 100)

	base := retired(h1) + retired(h2)
	done := make(chan struct{})
	var old uint64
	var existed bool
	go func() {
		defer close(done)
		old, existed = h1.Delete(5)
	}()
	// The fire counter increments just before the owner parks; one
	// yield later the descriptor is the only announced work.
	for plan.Fires(fault.PointFallbackOwner) == 0 {
		runtime.Gosched()
	}
	if !h2.e.H.Help() {
		t.Fatal("helper found nothing to help")
	}
	if _, ok := h2.Search(5); ok {
		t.Fatal("key 5 still present after helped delete")
	}
	if d := retired(h1) + retired(h2) - base; d != 3 {
		t.Fatalf("helped delete retired %d nodes, want exactly 3 (owner is dead; the helper owns retirement)", d)
	}
	// The finished descriptor was retracted even though its owner never
	// woke: release is derived from the terminal attempt, not owned.
	if h2.e.H.Help() {
		t.Fatal("helped a finished operation")
	}
	select {
	case <-done:
		t.Fatal("killed owner returned before release")
	default:
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Teardown: unpark the owner. It finds the terminal attempt and
	// must deliver the helper's result — not re-execute.
	plan.ReleaseKilled()
	<-done
	if !existed || old != 50 {
		t.Fatalf("released owner Delete returned (%d,%v), want (50,true)", old, existed)
	}
	if d := retired(h1) + retired(h2) - base; d != 3 {
		t.Fatalf("retirements after owner release = %d, want still 3 (no re-execution)", d)
	}
}
