package bst

import (
	"fmt"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
)

// buildOps constructs the per-handle engine ops once, wiring each
// algorithm's path bodies to the handle's scratch argument/result
// fields.
func (h *Handle) buildOps() {
	t := h.t
	// finish delivers a helped operation's result into the handle
	// scratch (shared by both update ops; the bst has no deferred fix).
	finish := func(val uint64, found, _ bool) { h.resVal, h.resFound = val, found }
	h.insertOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.insertFast(tx, h) },
		Middle:   func(tx *htm.Tx) { t.insertMiddle(tx, h) },
		Fallback: func() bool { return t.insertTemplate(h, false) },
		Locked:   func() { t.insertFast(nil, h) },
		SCXHTM:   func(useHTM bool) bool { return t.insertTemplate(h, useHTM) },
		Update:   true,
		Helpable: &engine.HelpableOp{
			Kind:   engine.HelpInsert,
			Args:   func() (uint64, uint64) { return h.argKey, h.argVal },
			Finish: finish,
		},
	}
	h.deleteOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.deleteFast(tx, h) },
		Middle:   func(tx *htm.Tx) { t.deleteMiddle(tx, h) },
		Fallback: func() bool { return t.deleteTemplate(h, false) },
		Locked:   func() { t.deleteFast(nil, h) },
		SCXHTM:   func(useHTM bool) bool { return t.deleteTemplate(h, useHTM) },
		Update:   true,
		Helpable: &engine.HelpableOp{
			Kind:   engine.HelpDelete,
			Args:   func() (uint64, uint64) { return h.argKey, 0 },
			Finish: finish,
		},
	}
	h.searchOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.searchBody(tx, h) },
		Middle:   func(tx *htm.Tx) { t.searchBody(tx, h) },
		Fallback: func() bool { t.searchBody(nil, h); return true },
		Locked:   func() { t.searchBody(nil, h) },
		SCXHTM:   func(bool) bool { t.searchBody(nil, h); return true },
	}
	h.rqOp = engine.Op{
		Site:     engine.NewSite(),
		Fast:     func(tx *htm.Tx) { t.rqInTx(tx, h) },
		Middle:   func(tx *htm.Tx) { t.rqInTx(tx, h) },
		Fallback: func() bool { return t.rqFallback(h) },
		Locked:   func() { t.rqInTx(nil, h) },
		SCXHTM:   func(bool) bool { return t.rqFallback(h) },
	}
	// Pre-wrap the update ops' transactional bodies with the engine's
	// monitor bump (no-op without a monitor) so Run stays allocation-free.
	h.insertOp = h.e.PrepareOp(h.insertOp)
	h.deleteOp = h.e.PrepareOp(h.deleteOp)
}

// Insert associates key with val (paper Figures 12/13).
func (h *Handle) Insert(key, val uint64) (uint64, bool) {
	checkKey(key)
	h.argKey, h.argVal = key, val
	h.settle(h.e.Run(h.insertOp))
	return h.resVal, h.resFound
}

// Delete removes key.
func (h *Handle) Delete(key uint64) (uint64, bool) {
	checkKey(key)
	h.argKey = key
	h.settle(h.e.Run(h.deleteOp))
	return h.resVal, h.resFound
}

// Search looks up key.
func (h *Handle) Search(key uint64) (uint64, bool) {
	checkKey(key)
	h.argKey = key
	h.e.Run(h.searchOp)
	return h.resVal, h.resFound
}

// RangeQuery appends all pairs with lo <= key < hi to out in ascending
// key order.
func (h *Handle) RangeQuery(lo, hi uint64, out []dict.KV) []dict.KV {
	if hi > dict.MaxKey+1 {
		hi = dict.MaxKey + 1
	}
	h.argLo, h.argHi = lo, hi
	h.rqOut = h.rqOut[:0]
	h.e.Run(h.rqOp)
	return append(out, h.rqOut...)
}

// RangeAgg returns the aggregate tuple of the keys in [lo, hi) by
// walking the range — the BST deliberately keeps the O(range)
// implementation behind dict.AggHandle as the control for the
// walk-vs-aggregate ablation (the (a,b)-tree answers in O(log n) from
// maintained subtree aggregates). Steady-state queries reuse the
// retained range buffer, so they stay allocation-free.
func (h *Handle) RangeAgg(lo, hi uint64) (dict.Agg, error) {
	if hi > dict.MaxKey+1 {
		hi = dict.MaxKey + 1
	}
	h.argLo, h.argHi = lo, hi
	h.rqOut = h.rqOut[:0]
	h.e.Run(h.rqOp)
	agg := dict.Agg{Min: ^uint64(0), Max: 0}
	for _, p := range h.rqOut {
		agg.Sum += p.Key
		agg.Count++
		if p.Key < agg.Min {
			agg.Min = p.Key
		}
		if p.Key > agg.Max {
			agg.Max = p.Key
		}
	}
	return agg, nil
}

var _ dict.AggHandle = (*Handle)(nil)

func checkKey(key uint64) {
	if key > dict.MaxKey {
		panic(fmt.Sprintf("bst: key %d exceeds dict.MaxKey", key))
	}
}

// locate finds the operation point for the fast and middle paths. With
// SearchOutsideTx enabled (Section 8) the descent uses unsubscribed
// reads and the caller revalidates inside the transaction; otherwise the
// descent itself is transactional.
func (t *Tree) locate(tx *htm.Tx, key uint64) (gp, p, l *Node) {
	if t.cfg.SearchOutsideTx && tx != nil {
		return t.search(nil, key)
	}
	return t.search(tx, key)
}

// revalidate confirms, inside the transaction, that an out-of-band
// search result is still current: every node is unmarked and the links
// still hold (Section 8: abort as soon as a marked node is seen).
func revalidate(tx *htm.Tx, key uint64, gp, p, l *Node) {
	if gp != nil {
		if gp.hdr.Marked(tx) || childRef(gp, key).Get(tx) != p {
			tx.Abort(engine.CodeRetry)
		}
	}
	if p.hdr.Marked(tx) || childRef(p, key).Get(tx) != l || l.hdr.Marked(tx) {
		tx.Abort(engine.CodeRetry)
	}
}

// ---- fast path (sequential code of Figure 13; also the TLE locked body
// when tx == nil) ----

func (t *Tree) insertFast(tx *htm.Tx, h *Handle) {
	h.beginAttempt()
	key, val := h.argKey, h.argVal
	gp, p, l := t.locate(tx, key)
	if t.cfg.SearchOutsideTx && tx != nil {
		revalidate(tx, key, gp, p, l)
	}
	lk := l.key.GetStable(tx)
	if lk == key {
		// Directly update the value in place: the big fast-path win the
		// paper describes (no node creation).
		h.resVal, h.resFound = l.val.Get(tx), true
		l.val.Set(tx, val)
		return
	}
	h.resVal, h.resFound = 0, false
	nl := h.newLeaf(key, val)
	var ni *Node
	if key < lk {
		ni = h.newInternal(lk, nl, l)
	} else {
		ni = h.newInternal(key, l, nl)
	}
	childRef(p, key).Set(tx, ni)
}

func (t *Tree) deleteFast(tx *htm.Tx, h *Handle) {
	h.beginAttempt()
	key := h.argKey
	gp, p, l := t.locate(tx, key)
	if t.cfg.SearchOutsideTx && tx != nil {
		revalidate(tx, key, gp, p, l)
	}
	if l.key.GetStable(tx) != key {
		h.resVal, h.resFound = 0, false
		return
	}
	h.resVal, h.resFound = l.val.Get(tx), true
	if gp == nil {
		// l hangs directly off the root: restore the empty-tree sentinel.
		t.root.l.Set(tx, h.newLeaf(keyInf1, 0))
		l.hdr.SetMarked(tx)
		h.remove(l)
		return
	}
	// Reuse the sibling directly instead of copying it (Figure 13).
	var s *Node
	if key < p.key.Peek() {
		s = p.r.Get(tx)
	} else {
		s = p.l.Get(tx)
	}
	childRef(gp, key).Set(tx, s)
	p.hdr.SetMarked(tx)
	l.hdr.SetMarked(tx)
	h.remove(p)
	h.remove(l)
}

func (t *Tree) searchBody(tx *htm.Tx, h *Handle) {
	_, _, l := t.search(tx, h.argKey)
	if l.key.GetStable(tx) == h.argKey {
		h.resVal, h.resFound = l.val.Get(tx), true
		return
	}
	h.resVal, h.resFound = 0, false
}

// ---- middle path (template code of Figure 12 inside one transaction,
// with transactional LLX and SCXInTx; Section 5) ----

func (t *Tree) insertMiddle(tx *htm.Tx, h *Handle) {
	h.beginAttempt()
	key, val := h.argKey, h.argVal
	_, p, _ := t.locate(tx, key)
	var pl, pr *Node
	if _, st := llxscx.LLX(tx, &p.hdr, func() {
		pl = p.l.Get(tx)
		pr = p.r.Get(tx)
	}); st != llxscx.StatusOK {
		tx.Abort(engine.CodeRetry)
	}
	l := pl
	if key >= p.key.Peek() {
		l = pr
	}
	if !l.leaf {
		// Only possible with an out-of-band search: p moved. Retry.
		tx.Abort(engine.CodeRetry)
	}
	if _, st := llxscx.LLX(tx, &l.hdr, nil); st != llxscx.StatusOK {
		tx.Abort(engine.CodeRetry)
	}
	lk := l.key.GetStable(tx)
	if lk == key {
		// Replace the leaf by a new copy holding the new value: the
		// template may not modify immutable fields in place.
		h.resVal, h.resFound = l.val.Get(tx), true
		nl := h.newLeaf(key, val)
		llxscx.SCXInTx(tx, &h.e.Tags,
			[]*llxscx.Hdr{&p.hdr, &l.hdr}, []*llxscx.Hdr{&l.hdr})
		childRef(p, key).Set(tx, nl)
		h.remove(l)
		return
	}
	h.resVal, h.resFound = 0, false
	nl := h.newLeaf(key, val)
	var ni *Node
	if key < lk {
		ni = h.newInternal(lk, nl, l)
	} else {
		ni = h.newInternal(key, l, nl)
	}
	llxscx.SCXInTx(tx, &h.e.Tags,
		[]*llxscx.Hdr{&p.hdr, &l.hdr}, nil)
	childRef(p, key).Set(tx, ni)
}

func (t *Tree) deleteMiddle(tx *htm.Tx, h *Handle) {
	h.beginAttempt()
	key := h.argKey
	gp, p, l := t.locate(tx, key)
	if l.key.GetStable(tx) != key {
		h.resVal, h.resFound = 0, false
		return
	}
	if gp == nil {
		// l hangs off the root: replace it with a fresh sentinel leaf.
		var rl *Node
		if _, st := llxscx.LLX(tx, &t.root.hdr, func() {
			rl = t.root.l.Get(tx)
		}); st != llxscx.StatusOK {
			tx.Abort(engine.CodeRetry)
		}
		if !rl.leaf {
			tx.Abort(engine.CodeRetry) // tree grew meanwhile; retry
		}
		if rl.key.GetStable(tx) != key {
			h.resVal, h.resFound = 0, false
			return
		}
		if _, st := llxscx.LLX(tx, &rl.hdr, nil); st != llxscx.StatusOK {
			tx.Abort(engine.CodeRetry)
		}
		h.resVal, h.resFound = rl.val.Get(tx), true
		llxscx.SCXInTx(tx, &h.e.Tags,
			[]*llxscx.Hdr{&t.root.hdr, &rl.hdr}, []*llxscx.Hdr{&rl.hdr})
		t.root.l.Set(tx, h.newLeaf(keyInf1, 0))
		h.remove(rl)
		return
	}

	var gl, gr *Node
	if _, st := llxscx.LLX(tx, &gp.hdr, func() {
		gl = gp.l.Get(tx)
		gr = gp.r.Get(tx)
	}); st != llxscx.StatusOK {
		tx.Abort(engine.CodeRetry)
	}
	p2 := gl
	if key >= gp.key.Peek() {
		p2 = gr
	}
	if p2 != p {
		tx.Abort(engine.CodeRetry)
	}
	var pl, pr *Node
	if _, st := llxscx.LLX(tx, &p.hdr, func() {
		pl = p.l.Get(tx)
		pr = p.r.Get(tx)
	}); st != llxscx.StatusOK {
		tx.Abort(engine.CodeRetry)
	}
	l2, s := pl, pr
	if key >= p.key.Peek() {
		l2, s = pr, pl
	}
	if l2 != l {
		tx.Abort(engine.CodeRetry)
	}
	if _, st := llxscx.LLX(tx, &l.hdr, nil); st != llxscx.StatusOK {
		tx.Abort(engine.CodeRetry)
	}
	var sl, sr *Node
	if _, st := llxscx.LLX(tx, &s.hdr, func() {
		if !s.leaf {
			sl = s.l.Get(tx)
			sr = s.r.Get(tx)
		}
	}); st != llxscx.StatusOK {
		tx.Abort(engine.CodeRetry)
	}
	h.resVal, h.resFound = l.val.Get(tx), true
	// Replace p and l with a copy of the sibling (Figure 12).
	var ns *Node
	if s.leaf {
		ns = h.newLeaf(s.key.GetStable(tx), s.val.Get(tx))
	} else {
		ns = h.newInternal(s.key.Peek(), sl, sr)
	}
	llxscx.SCXInTx(tx, &h.e.Tags,
		[]*llxscx.Hdr{&gp.hdr, &p.hdr, &l.hdr, &s.hdr},
		[]*llxscx.Hdr{&p.hdr, &l.hdr, &s.hdr})
	childRef(gp, key).Set(tx, ns)
	h.remove(p)
	h.remove(l)
	h.remove(s)
}

// ---- fallback path (original template with LLXO/SCXO, Figure 12) and
// the Section 4 standalone-HTM-SCX variant (useHTM == true) ----

// insertTemplate returns false to request a retry.
func (t *Tree) insertTemplate(h *Handle, useHTM bool) bool {
	h.beginAttempt()
	key, val := h.argKey, h.argVal
	_, p, _ := t.search(nil, key)
	var pl, pr *Node
	pi, st := llxscx.LLX(nil, &p.hdr, func() {
		pl = p.l.Get(nil)
		pr = p.r.Get(nil)
	})
	if st != llxscx.StatusOK {
		return false
	}
	l := pl
	if key >= p.key.Peek() {
		l = pr
	}
	if !l.leaf {
		return false // the tree changed under us; re-search
	}
	li, st := llxscx.LLX(nil, &l.hdr, nil)
	if st != llxscx.StatusOK {
		return false
	}

	v := []*llxscx.Hdr{&p.hdr, &l.hdr}
	infos := []*llxscx.Info{pi, li}
	fld := childRef(p, key)

	lk := l.key.Peek()
	if lk == key {
		h.resVal, h.resFound = l.val.Get(nil), true
		nl := h.newLeaf(key, val)
		if !t.runSCX(h, useHTM, v, infos, []*llxscx.Hdr{&l.hdr}, fld, l, nl) {
			return false
		}
		h.remove(l)
		return true
	}
	h.resVal, h.resFound = 0, false
	nl := h.newLeaf(key, val)
	var ni *Node
	if key < lk {
		ni = h.newInternal(lk, nl, l)
	} else {
		ni = h.newInternal(key, l, nl)
	}
	return t.runSCX(h, useHTM, v, infos, nil, fld, l, ni)
}

func (t *Tree) deleteTemplate(h *Handle, useHTM bool) bool {
	h.beginAttempt()
	key := h.argKey
	gp, p, l := t.search(nil, key)
	if l.key.Peek() != key {
		h.resVal, h.resFound = 0, false
		return true
	}
	if gp == nil {
		// l hangs off the root: replace with a fresh sentinel leaf.
		var rl *Node
		ri, st := llxscx.LLX(nil, &t.root.hdr, func() { rl = t.root.l.Get(nil) })
		if st != llxscx.StatusOK {
			return false
		}
		if !rl.leaf {
			return false
		}
		if rl.key.Peek() != key {
			h.resVal, h.resFound = 0, false
			return true
		}
		li, st := llxscx.LLX(nil, &rl.hdr, nil)
		if st != llxscx.StatusOK {
			return false
		}
		h.resVal, h.resFound = rl.val.Get(nil), true
		if !t.runSCX(h, useHTM,
			[]*llxscx.Hdr{&t.root.hdr, &rl.hdr}, []*llxscx.Info{ri, li},
			[]*llxscx.Hdr{&rl.hdr}, &t.root.l, rl, h.newLeaf(keyInf1, 0)) {
			return false
		}
		h.remove(rl)
		return true
	}

	var gl, gr *Node
	gi, st := llxscx.LLX(nil, &gp.hdr, func() {
		gl = gp.l.Get(nil)
		gr = gp.r.Get(nil)
	})
	if st != llxscx.StatusOK {
		return false
	}
	p2 := gl
	if key >= gp.key.Peek() {
		p2 = gr
	}
	if p2 != p {
		return false
	}
	var pl, pr *Node
	pi, st := llxscx.LLX(nil, &p.hdr, func() {
		pl = p.l.Get(nil)
		pr = p.r.Get(nil)
	})
	if st != llxscx.StatusOK {
		return false
	}
	l2, s := pl, pr
	if key >= p.key.Peek() {
		l2, s = pr, pl
	}
	if l2 != l {
		return false
	}
	li, st := llxscx.LLX(nil, &l.hdr, nil)
	if st != llxscx.StatusOK {
		return false
	}
	var sl, sr *Node
	si, st := llxscx.LLX(nil, &s.hdr, func() {
		if !s.leaf {
			sl = s.l.Get(nil)
			sr = s.r.Get(nil)
		}
	})
	if st != llxscx.StatusOK {
		return false
	}
	h.resVal, h.resFound = l.val.Get(nil), true
	var ns *Node
	if s.leaf {
		ns = h.newLeaf(s.key.Peek(), s.val.Get(nil))
	} else {
		ns = h.newInternal(s.key.Peek(), sl, sr)
	}
	if !t.runSCX(h, useHTM,
		[]*llxscx.Hdr{&gp.hdr, &p.hdr, &l.hdr, &s.hdr},
		[]*llxscx.Info{gi, pi, li, si},
		[]*llxscx.Hdr{&p.hdr, &l.hdr, &s.hdr},
		childRef(gp, key), p, ns) {
		return false
	}
	h.remove(p)
	h.remove(l)
	h.remove(s)
	return true
}

// runSCX dispatches the update phase to SCXO or the standalone HTM SCX.
func (t *Tree) runSCX(h *Handle, useHTM bool,
	v []*llxscx.Hdr, infos []*llxscx.Info, r []*llxscx.Hdr,
	fld *htm.Ref[Node], old, new *Node) bool {
	if useHTM {
		ok, _ := llxscx.SCXHTM(h.e.H, htm.PathFast, &h.e.Tags, v, infos, r, fld, new)
		return ok
	}
	return llxscx.SCXO(v, infos, r, fld, old, new)
}

// ---- range queries ----

// rqInTx collects the range inside a transaction (fast and middle
// paths; also the TLE locked body with tx == nil). A range too large for
// the transactional read capacity aborts and the engine redirects the
// operation toward the fallback path — the dynamic that defines the
// paper's heavy workloads.
func (t *Tree) rqInTx(tx *htm.Tx, h *Handle) {
	h.rqOut = h.rqOut[:0]
	t.rqWalkTx(tx, t.root.l.Get(tx), h)
}

func (t *Tree) rqWalkTx(tx *htm.Tx, n *Node, h *Handle) {
	if n.leaf {
		if k := n.key.GetStable(tx); k >= h.argLo && k < h.argHi && k < keyInf1 {
			h.rqOut = append(h.rqOut, dict.KV{Key: k, Val: n.val.Get(tx)})
		}
		return
	}
	k := n.key.Peek() // internal: grace-protected
	if h.argLo < k {
		t.rqWalkTx(tx, n.l.Get(tx), h)
	}
	if h.argHi > k {
		t.rqWalkTx(tx, n.r.Get(tx), h)
	}
}

// rqFallback collects the range with an LLX-validated DFS, restarting
// when a concurrent SCX invalidates a node (returns false so the engine
// retries).
func (t *Tree) rqFallback(h *Handle) bool {
	h.rqOut = h.rqOut[:0]
	var root *Node
	if _, st := llxscx.LLX(nil, &t.root.hdr, func() {
		root = t.root.l.Get(nil)
	}); st != llxscx.StatusOK {
		return false
	}
	return t.rqWalkLLX(root, h)
}

func (t *Tree) rqWalkLLX(n *Node, h *Handle) bool {
	if n.leaf {
		// Fallback path: the presence indicator excludes immediate
		// recycling while this walk runs, so a plain peek is sound.
		if k := n.key.Peek(); k >= h.argLo && k < h.argHi && k < keyInf1 {
			h.rqOut = append(h.rqOut, dict.KV{Key: k, Val: n.val.Get(nil)})
		}
		return true
	}
	var nl, nr *Node
	if _, st := llxscx.LLX(nil, &n.hdr, func() {
		nl = n.l.Get(nil)
		nr = n.r.Get(nil)
	}); st != llxscx.StatusOK {
		return false
	}
	k := n.key.Peek()
	if h.argLo < k && !t.rqWalkLLX(nl, h) {
		return false
	}
	if h.argHi > k && !t.rqWalkLLX(nr, h) {
		return false
	}
	return true
}
