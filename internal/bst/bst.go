// Package bst implements the unbalanced external (leaf-oriented) binary
// search tree of Section 6.1 of Brown's "A Template for Implementing
// Fast Lock-free Trees Using HTM" (PODC 2017), runnable under every
// template algorithm the paper studies.
//
// The tree is leaf-oriented: dictionary keys live in leaves; internal
// nodes hold routing keys (keys strictly less than a node's key are in
// its left subtree) and always have exactly two children. Two sentinel
// keys ∞₁ < ∞₂ above dict.MaxKey frame the structure as in Ellen et
// al. (PODC 2010): the root is internal(∞₂) with right child leaf(∞₂),
// and the user tree (initially leaf(∞₁)) hangs off its left child.
//
// Three operation bodies exist per operation:
//
//   - fast: the sequential code of Figure 13, run inside a transaction
//     (or under the TLE lock, or standalone when invoked with a nil
//     transaction). It mutates leaf values in place and reuses the
//     sibling on deletion.
//   - middle: the template code of Figure 12 inside one transaction,
//     using transactional LLX and SCXInTx.
//   - fallback: the original lock-free template code using LLXO/SCXO.
//
// The searches-outside-transactions optimization of Section 8 is
// available via Config.SearchOutsideTx: fast/middle bodies then locate
// their operation point with unsubscribed (non-transactional) reads and
// revalidate inside the transaction via the marked bits.
package bst

import (
	"fmt"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
)

// Sentinel keys (paper Section 6.1 / Ellen et al.).
const (
	keyInf1 = ^uint64(0) - 1 // ∞₁: largest key in the user subtree
	keyInf2 = ^uint64(0)     // ∞₂: root sentinel
)

// Node is a BST node. Internal nodes route by key; leaves carry a
// key/value pair. Only child pointers are mutable under the template;
// the fast path additionally mutates leaf values in place (val is
// therefore a cell) — which is safe precisely because the fast path
// never runs concurrently with the fallback path (Section 6.1).
type Node struct {
	hdr  llxscx.Hdr
	key  uint64
	leaf bool
	val  htm.Word
	l, r htm.Ref[Node]
}

// Key returns the node's (immutable) key. Exported for tests.
func (n *Node) Key() uint64 { return n.key }

func newLeaf(key, val uint64) *Node {
	n := &Node{key: key, leaf: true}
	n.val.Init(val)
	return n
}

func newInternal(key uint64, left, right *Node) *Node {
	n := &Node{key: key}
	n.l.Init(left)
	n.r.Init(right)
	return n
}

// Config configures a Tree.
type Config struct {
	// Algorithm selects the template implementation (default 3-path).
	Algorithm engine.Algorithm
	// HTM configures the simulated HTM.
	HTM htm.Config
	// Engine overrides attempt budgets and the fallback indicator; its
	// Algorithm field is ignored in favour of Algorithm above.
	Engine engine.Config
	// SearchOutsideTx enables the Section 8 optimization.
	SearchOutsideTx bool
}

// Tree is a concurrent BST. Create with New; access through per-thread
// handles from NewHandle.
type Tree struct {
	tm   *htm.TM
	eng  *engine.Engine
	root *Node
	cfg  Config
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	if cfg.Algorithm == 0 {
		cfg.Algorithm = engine.AlgThreePath
	}
	ecfg := cfg.Engine
	ecfg.Algorithm = cfg.Algorithm
	t := &Tree{
		tm:   htm.New(cfg.HTM),
		eng:  engine.New(ecfg),
		root: newInternal(keyInf2, newLeaf(keyInf1, 0), newLeaf(keyInf2, 0)),
		cfg:  cfg,
	}
	return t
}

// TM exposes the tree's transactional memory (for statistics).
func (t *Tree) TM() *htm.TM { return t.tm }

// Engine exposes the tree's execution engine (for statistics).
func (t *Tree) Engine() *engine.Engine { return t.eng }

// OpStats returns per-path operation completion counts
// (workload.StatsProvider).
func (t *Tree) OpStats() engine.OpStats { return t.eng.Stats() }

// HTMStats returns per-path transaction commit/abort counts
// (workload.StatsProvider).
func (t *Tree) HTMStats() htm.Stats { return t.tm.Stats() }

// Handle is a per-thread handle to the tree. Operation arguments and
// results travel through the handle's scratch fields so the engine op
// closures can be built once per handle instead of once per operation.
type Handle struct {
	t *Tree
	e *engine.Thread

	argKey, argVal uint64
	argLo, argHi   uint64
	resVal         uint64
	resFound       bool
	rqOut          []dict.KV

	insertOp, deleteOp, searchOp, rqOp engine.Op
}

var _ dict.Handle = (*Handle)(nil)

// NewHandle registers a per-thread handle.
func (t *Tree) NewHandle() dict.Handle { return t.newHandle() }

func (t *Tree) newHandle() *Handle {
	h := &Handle{t: t, e: t.eng.NewThread(t.tm.NewThread())}
	h.buildOps()
	return h
}

// SetGateBypass exempts this handle's updates from the update monitor's
// quiesce gate (engine.Thread.SetGateBypass). Used by the shard layer's
// key migration, which operates on the tree while holding the gate.
func (h *Handle) SetGateBypass(bypass bool) { h.e.SetGateBypass(bypass) }

// childRef returns the child field of p that a search for key follows.
func childRef(p *Node, key uint64) *htm.Ref[Node] {
	if key < p.key {
		return &p.l
	}
	return &p.r
}

// search descends from the root, returning the grandparent (nil when the
// leaf hangs directly off the root), parent and leaf on key's search
// path. With tx == nil the reads are plain atomic reads; inside a
// transaction they subscribe the caller.
func (t *Tree) search(tx *htm.Tx, key uint64) (gp, p, l *Node) {
	p = t.root
	l = p.l.Get(tx) // real keys are always < ∞₂, so the search goes left
	for !l.leaf {
		gp, p = p, l
		l = childRef(l, key).Get(tx)
	}
	return gp, p, l
}

// KeySum returns the sum and count of user keys. Quiescent use only.
func (t *Tree) KeySum() (sum, count uint64) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.leaf {
			if n.key < keyInf1 {
				sum += n.key
				count++
			}
			return
		}
		walk(n.l.Get(nil))
		walk(n.r.Get(nil))
	}
	walk(t.root)
	return sum, count
}

// CheckInvariants validates the structural invariants of the tree
// (quiescent use only) and returns a descriptive error when one fails:
// internal nodes have two children, keys respect the routing rule, the
// sentinel frame is intact, and no reachable node is marked.
func (t *Tree) CheckInvariants() error {
	return checkNode(t.root, 0, keyInf2)
}

// checkNode verifies the subtree at n routes keys in [lo, hi] correctly
// (hi inclusive since ∞₂ == MaxUint64).
func checkNode(n *Node, lo, hi uint64) error {
	if n == nil {
		return fmt.Errorf("bst: nil node reachable")
	}
	if n.hdr.Marked(nil) {
		return fmt.Errorf("bst: reachable node with key %d is marked", n.key)
	}
	if n.key < lo || n.key > hi {
		return fmt.Errorf("bst: key %d outside routing range [%d,%d]", n.key, lo, hi)
	}
	if n.leaf {
		return nil
	}
	l, r := n.l.Get(nil), n.r.Get(nil)
	if l == nil || r == nil {
		return fmt.Errorf("bst: internal node %d missing a child", n.key)
	}
	if n.key == 0 {
		return fmt.Errorf("bst: internal node with key 0 (nothing can route left)")
	}
	if err := checkNode(l, lo, n.key-1); err != nil {
		return err
	}
	return checkNode(r, n.key, hi)
}
