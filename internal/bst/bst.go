// Package bst implements the unbalanced external (leaf-oriented) binary
// search tree of Section 6.1 of Brown's "A Template for Implementing
// Fast Lock-free Trees Using HTM" (PODC 2017), runnable under every
// template algorithm the paper studies.
//
// The tree is leaf-oriented: dictionary keys live in leaves; internal
// nodes hold routing keys (keys strictly less than a node's key are in
// its left subtree) and always have exactly two children. Two sentinel
// keys ∞₁ < ∞₂ above dict.MaxKey frame the structure as in Ellen et
// al. (PODC 2010): the root is internal(∞₂) with right child leaf(∞₂),
// and the user tree (initially leaf(∞₁)) hangs off its left child.
//
// Three operation bodies exist per operation:
//
//   - fast: the sequential code of Figure 13, run inside a transaction
//     (or under the TLE lock, or standalone when invoked with a nil
//     transaction). It mutates leaf values in place and reuses the
//     sibling on deletion.
//   - middle: the template code of Figure 12 inside one transaction,
//     using transactional LLX and SCXInTx.
//   - fallback: the original lock-free template code using LLXO/SCXO.
//
// The searches-outside-transactions optimization of Section 8 is
// available via Config.SearchOutsideTx: fast/middle bodies then locate
// their operation point with unsubscribed (non-transactional) reads and
// revalidate inside the transaction via the marked bits.
package bst

import (
	"fmt"
	"sync"

	"htmtree/internal/dict"
	"htmtree/internal/ebr"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/llxscx"
	"htmtree/internal/nodepool"
)

// Sentinel keys (paper Section 6.1 / Ellen et al.).
const (
	keyInf1 = ^uint64(0) - 1 // ∞₁: largest key in the user subtree
	keyInf2 = ^uint64(0)     // ∞₂: root sentinel
)

// Node is a BST node. Internal nodes route by key; leaves carry a
// key/value pair. Only child pointers are mutable under the template;
// the fast path additionally mutates leaf values in place (val is
// therefore a cell) — which is safe precisely because the fast path
// never runs concurrently with the fallback path (Section 6.1).
//
// The key is a cell, not a plain field, because nodes are pooled and a
// recycled node's key changes. The two node kinds read it differently:
// internal nodes are reused only after a grace period (no reader can
// ever observe their rewrite), so routing reads use the plain-load
// Peek; leaves may recycle immediately after fast-path removals, so a
// transactional leaf-key read uses GetStable — a stale reader that
// still holds the leaf (obtained before its removal committed) aborts
// on the recycled key rather than misreport membership. The leaf flag
// stays plain — the pools are segregated by node kind, so it is
// write-once for the node's lifetime.
type Node struct {
	hdr  llxscx.Hdr
	key  htm.Word
	leaf bool
	val  htm.Word
	l, r htm.Ref[Node]
}

// Key returns the node's current key. Exported for tests.
func (n *Node) Key() uint64 { return n.key.GetStable(nil) }

// bind joins every cell of the node to the tree's clock domain. Called
// once per node lifetime (heap allocation), not per pool reuse.
func (n *Node) bind(clk *htm.Clock) {
	n.hdr.Bind(clk)
	n.key.Bind(clk)
	n.val.Bind(clk)
	n.l.Bind(clk)
	n.r.Bind(clk)
}

// newLeaf and newInternal build heap nodes for tree bootstrap; steady
// state operations allocate through the handle pools instead
// (Handle.newLeaf / Handle.newInternal in pool.go).
func newLeaf(clk *htm.Clock, key, val uint64) *Node {
	n := &Node{leaf: true}
	n.bind(clk)
	n.key.Init(key)
	n.val.Init(val)
	return n
}

func newInternal(clk *htm.Clock, key uint64, left, right *Node) *Node {
	n := &Node{}
	n.bind(clk)
	n.key.Init(key)
	n.l.Init(left)
	n.r.Init(right)
	return n
}

// Config configures a Tree.
type Config struct {
	// Algorithm selects the template implementation (default 3-path).
	Algorithm engine.Algorithm
	// HTM configures the simulated HTM.
	HTM htm.Config
	// Engine overrides attempt budgets and the fallback indicator; its
	// Algorithm field is ignored in favour of Algorithm above.
	Engine engine.Config
	// SearchOutsideTx enables the Section 8 optimization.
	SearchOutsideTx bool
}

// Tree is a concurrent BST. Create with New; access through per-thread
// handles from NewHandle.
type Tree struct {
	tm   *htm.TM
	eng  *engine.Engine
	root *Node
	cfg  Config

	// sumMu serializes KeySum's shared reclamation context sumRd, which
	// keeps the walk inside the epoch domain so pooled nodes cannot be
	// recycled under it (the sharding layer runs KeySum concurrently
	// with updates when validating consistent cuts).
	sumMu sync.Mutex
	sumRd *ebr.Thread
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	if cfg.Algorithm == 0 {
		cfg.Algorithm = engine.AlgThreePath
	}
	ecfg := cfg.Engine
	ecfg.Algorithm = cfg.Algorithm
	tm := htm.New(cfg.HTM)
	t := &Tree{
		tm:  tm,
		eng: engine.New(ecfg, tm.Clock()),
		cfg: cfg,
	}
	t.root = newInternal(tm.Clock(), keyInf2,
		newLeaf(tm.Clock(), keyInf1, 0), newLeaf(tm.Clock(), keyInf2, 0))
	t.sumRd = t.eng.ReclaimReader()
	return t
}

// TM exposes the tree's transactional memory (for statistics).
func (t *Tree) TM() *htm.TM { return t.tm }

// Engine exposes the tree's execution engine (for statistics).
func (t *Tree) Engine() *engine.Engine { return t.eng }

// OpStats returns per-path operation completion counts
// (workload.StatsProvider).
func (t *Tree) OpStats() engine.OpStats { return t.eng.Stats() }

// HTMStats returns per-path transaction commit/abort counts
// (workload.StatsProvider).
func (t *Tree) HTMStats() htm.Stats { return t.tm.Stats() }

// Handle is a per-thread handle to the tree. Operation arguments and
// results travel through the handle's scratch fields so the engine op
// closures can be built once per handle instead of once per operation.
// The handle also owns the thread's node pools (pool.go): steady-state
// inserts draw nodes from them and deletions feed them back through
// epoch-based reclamation, so the point-operation hot path allocates
// nothing.
type Handle struct {
	t   *Tree
	e   *engine.Thread
	clk *htm.Clock

	argKey, argVal uint64
	argLo, argHi   uint64
	resVal         uint64
	resFound       bool
	rqOut          []dict.KV

	// pool holds the thread's node free lists and attempt state
	// (internal/nodepool; wired to the BST's node kinds in pool.go).
	pool *nodepool.Pool[Node]

	insertOp, deleteOp, searchOp, rqOp engine.Op
}

var _ dict.Handle = (*Handle)(nil)

// NewHandle registers a per-thread handle.
func (t *Tree) NewHandle() dict.Handle { return t.newHandle() }

func (t *Tree) newHandle() *Handle {
	h := &Handle{t: t, e: t.eng.NewThread(t.tm.NewThread()), clk: t.tm.Clock()}
	h.pool = nodepool.New[Node](func(n *Node) bool { return n.leaf }, h.freshNode, h.e)
	h.e.EnableReclaim(h.pool.Release, t.cfg.SearchOutsideTx)
	h.e.SetHelpExec(h.helpExec)
	h.buildOps()
	return h
}

// SetGateBypass exempts this handle's updates from the update monitor's
// quiesce gate (engine.Thread.SetGateBypass). Used by the shard layer's
// key migration, which operates on the tree while holding the gate.
func (h *Handle) SetGateBypass(bypass bool) { h.e.SetGateBypass(bypass) }

// Help drives the currently announced fallback operation (if any) to
// completion on this handle's thread and reports whether it helped
// (dict.Helper). The help body covers itself with the tree's
// reclamation domain, so Help is safe outside any operation — chaos
// harnesses loop it to drain the descriptor of a worker that died
// after announcing.
func (h *Handle) Help() bool { return h.e.H.Help() }

// childRef returns the child field of p that a search for key follows.
// p is always internal, and internal nodes are reused only after a
// grace period, so the routing key is immutable for as long as anyone
// can hold p: a plain Peek suffices (and keeps the descent at one
// validated read per level).
func childRef(p *Node, key uint64) *htm.Ref[Node] {
	if key < p.key.Peek() {
		return &p.l
	}
	return &p.r
}

// search descends from the root, returning the grandparent (nil when the
// leaf hangs directly off the root), parent and leaf on key's search
// path. With tx == nil the reads are plain atomic reads; inside a
// transaction they subscribe the caller.
func (t *Tree) search(tx *htm.Tx, key uint64) (gp, p, l *Node) {
	p = t.root
	l = p.l.Get(tx) // real keys are always < ∞₂, so the search goes left
	for !l.leaf {
		gp, p = p, l
		l = childRef(l, key).Get(tx)
	}
	return gp, p, l
}

// KeySum returns the sum and count of user keys. The walk joins the
// tree's reclamation domain (Begin/End on a dedicated reader context),
// so concurrent updaters cannot recycle nodes under it: the sharding
// layer's consistent cuts call KeySum while updates run and rely on the
// monitor validation to discard racing results — which requires the
// racing walk itself to be memory-safe on pooled nodes.
func (t *Tree) KeySum() (sum, count uint64) {
	t.sumMu.Lock()
	defer t.sumMu.Unlock()
	t.sumRd.Begin()
	defer t.sumRd.End()
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.leaf {
			if k := n.key.GetStable(nil); k < keyInf1 {
				sum += k
				count++
			}
			return
		}
		walk(n.l.Get(nil))
		walk(n.r.Get(nil))
	}
	walk(t.root)
	return sum, count
}

// CheckInvariants validates the structural invariants of the tree
// (quiescent use only) and returns a descriptive error when one fails:
// internal nodes have two children, keys respect the routing rule, the
// sentinel frame is intact, and no reachable node is marked.
func (t *Tree) CheckInvariants() error {
	return checkNode(t.root, 0, keyInf2)
}

// checkNode verifies the subtree at n routes keys in [lo, hi] correctly
// (hi inclusive since ∞₂ == MaxUint64).
func checkNode(n *Node, lo, hi uint64) error {
	if n == nil {
		return fmt.Errorf("bst: nil node reachable")
	}
	key := n.key.GetStable(nil)
	if n.hdr.Marked(nil) {
		return fmt.Errorf("bst: reachable node with key %d is marked", key)
	}
	if key < lo || key > hi {
		return fmt.Errorf("bst: key %d outside routing range [%d,%d]", key, lo, hi)
	}
	if n.leaf {
		return nil
	}
	l, r := n.l.Get(nil), n.r.Get(nil)
	if l == nil || r == nil {
		return fmt.Errorf("bst: internal node %d missing a child", key)
	}
	if key == 0 {
		return fmt.Errorf("bst: internal node with key 0 (nothing can route left)")
	}
	if err := checkNode(l, lo, key-1); err != nil {
		return err
	}
	return checkNode(r, key, hi)
}
