package bst

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
)

// algorithms under test everywhere.
var algorithms = engine.Algorithms

func TestEmptyTree(t *testing.T) {
	t.Parallel()
	tr := New(Config{})
	h := tr.NewHandle()
	if _, found := h.Search(42); found {
		t.Fatal("found key in empty tree")
	}
	if _, existed := h.Delete(42); existed {
		t.Fatal("deleted key from empty tree")
	}
	if out := h.RangeQuery(0, 100, nil); len(out) != 0 {
		t.Fatalf("range query on empty tree returned %v", out)
	}
	if sum, count := tr.KeySum(); sum != 0 || count != 0 {
		t.Fatalf("KeySum = %d,%d want 0,0", sum, count)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOracle(t *testing.T) {
	t.Parallel()
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg})
			h := tr.NewHandle()
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(7))
			const keyRange = 200
			for i := 0; i < 8000; i++ {
				k := uint64(rng.Intn(keyRange))
				switch rng.Intn(4) {
				case 0, 1:
					v := rng.Uint64()
					old, existed := h.Insert(k, v)
					wantOld, wantExisted := oracle[k], false
					if _, ok := oracle[k]; ok {
						wantExisted = true
					}
					if existed != wantExisted || (existed && old != wantOld) {
						t.Fatalf("Insert(%d): got (%d,%v) want (%d,%v)",
							k, old, existed, wantOld, wantExisted)
					}
					oracle[k] = v
				case 2:
					old, existed := h.Delete(k)
					wantOld, wantExisted := oracle[k], false
					if _, ok := oracle[k]; ok {
						wantExisted = true
					}
					if existed != wantExisted || (existed && old != wantOld) {
						t.Fatalf("Delete(%d): got (%d,%v) want (%d,%v)",
							k, old, existed, wantOld, wantExisted)
					}
					delete(oracle, k)
				case 3:
					v, found := h.Search(k)
					wantV, wantFound := oracle[k], false
					if _, ok := oracle[k]; ok {
						wantFound = true
					}
					if found != wantFound || (found && v != wantV) {
						t.Fatalf("Search(%d): got (%d,%v) want (%d,%v)",
							k, v, found, wantV, wantFound)
					}
				}
				if i%1000 == 999 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				}
			}
			verifyAgainstOracle(t, tr, oracle)
		})
	}
}

func verifyAgainstOracle(t *testing.T, tr *Tree, oracle map[uint64]uint64) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var wantSum, wantCount uint64
	for k := range oracle {
		wantSum += k
		wantCount++
	}
	sum, count := tr.KeySum()
	if sum != wantSum || count != wantCount {
		t.Fatalf("KeySum = (%d,%d), oracle (%d,%d)", sum, count, wantSum, wantCount)
	}
	// A full range query must reproduce the oracle exactly.
	h := tr.NewHandle()
	out := h.RangeQuery(0, dict.MaxKey, nil)
	if uint64(len(out)) != wantCount {
		t.Fatalf("full RQ returned %d pairs, want %d", len(out), wantCount)
	}
	for i, kv := range out {
		if i > 0 && out[i-1].Key >= kv.Key {
			t.Fatalf("RQ out of order at %d: %d >= %d", i, out[i-1].Key, kv.Key)
		}
		if want, ok := oracle[kv.Key]; !ok || want != kv.Val {
			t.Fatalf("RQ pair (%d,%d) disagrees with oracle (%d,%v)",
				kv.Key, kv.Val, want, ok)
		}
	}
}

func TestDeleteToEmptyAndReinsert(t *testing.T) {
	t.Parallel()
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg})
			h := tr.NewHandle()
			for round := 0; round < 50; round++ {
				// Exercises the gp==nil delete case (leaf at depth 1).
				h.Insert(5, 50)
				h.Insert(3, 30)
				if _, ok := h.Delete(5); !ok {
					t.Fatal("delete 5 failed")
				}
				if _, ok := h.Delete(3); !ok {
					t.Fatal("delete 3 failed")
				}
				if _, found := h.Search(3); found {
					t.Fatal("key 3 survived delete")
				}
				if sum, count := tr.KeySum(); sum != 0 || count != 0 {
					t.Fatalf("tree not empty: sum=%d count=%d", sum, count)
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestQuickCheckAgainstMap(t *testing.T) {
	t.Parallel()
	for _, alg := range []engine.Algorithm{engine.AlgNonHTM, engine.AlgThreePath} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			f := func(ops []uint32) bool {
				tr := New(Config{Algorithm: alg})
				h := tr.NewHandle()
				oracle := map[uint64]uint64{}
				for _, op := range ops {
					k := uint64(op % 64)
					v := uint64(op >> 8)
					switch (op >> 6) % 3 {
					case 0:
						h.Insert(k, v)
						oracle[k] = v
					case 1:
						h.Delete(k)
						delete(oracle, k)
					case 2:
						got, found := h.Search(k)
						want, ok := oracle[k]
						if found != ok || (found && got != want) {
							return false
						}
					}
				}
				if err := tr.CheckInvariants(); err != nil {
					return false
				}
				sum, count := tr.KeySum()
				var wantSum, wantCount uint64
				for k := range oracle {
					wantSum += k
					wantCount++
				}
				return sum == wantSum && count == wantCount
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentKeySum is the paper's Section 7.1 validation: each
// thread tracks the sum of keys it successfully inserted minus those it
// deleted; the total must match the final tree contents.
func TestConcurrentKeySum(t *testing.T) {
	t.Parallel()
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			testConcurrentKeySum(t, Config{Algorithm: alg}, 4, 4000, 128)
		})
	}
}

func TestConcurrentKeySumSearchOutsideTx(t *testing.T) {
	t.Parallel()
	testConcurrentKeySum(t, Config{
		Algorithm:       engine.AlgThreePath,
		SearchOutsideTx: true,
	}, 4, 4000, 128)
}

func TestConcurrentKeySumTinyKeyRange(t *testing.T) {
	t.Parallel()
	// Hammers the root / gp==nil special cases under contention.
	for _, alg := range []engine.Algorithm{engine.AlgThreePath, engine.AlgTwoPathConc, engine.AlgTLE} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			testConcurrentKeySum(t, Config{Algorithm: alg}, 4, 3000, 4)
		})
	}
}

func TestConcurrentKeySumWithSpuriousAborts(t *testing.T) {
	t.Parallel()
	// Heavy spurious aborts push operations onto middle and fallback
	// paths, exercising cross-path interleavings.
	testConcurrentKeySum(t, Config{
		Algorithm: engine.AlgThreePath,
		HTM:       htm.Config{SpuriousEvery: 50},
	}, 4, 3000, 64)
}

func testConcurrentKeySum(t *testing.T, cfg Config, goroutines, opsPerG, keyRange int) {
	t.Helper()
	tr := New(cfg)
	sums := make([]int64, goroutines)
	counts := make([]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for i := 0; i < opsPerG; i++ {
				k := uint64(rng.Intn(keyRange)) + 1
				if rng.Intn(2) == 0 {
					if _, existed := h.Insert(k, k*10); !existed {
						sums[g] += int64(k)
						counts[g]++
					}
				} else {
					if _, existed := h.Delete(k); existed {
						sums[g] -= int64(k)
						counts[g]--
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var wantSum, wantCount int64
	for g := 0; g < goroutines; g++ {
		wantSum += sums[g]
		wantCount += counts[g]
	}
	sum, count := tr.KeySum()
	if int64(sum) != wantSum || int64(count) != wantCount {
		t.Fatalf("key-sum check failed: tree (%d,%d), threads (%d,%d)",
			sum, count, wantSum, wantCount)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Engine().Stats().Total(); got != uint64(goroutines*opsPerG) {
		t.Fatalf("engine completed %d ops, want %d", got, goroutines*opsPerG)
	}
}

// TestConcurrentRangeQueries mixes updaters with a range-query thread
// and checks the structural properties every linearizable RQ must have.
func TestConcurrentRangeQueries(t *testing.T) {
	t.Parallel()
	for _, alg := range []engine.Algorithm{engine.AlgThreePath, engine.AlgTLE, engine.AlgTwoPathConc} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := tr.NewHandle()
					rng := rand.New(rand.NewSource(int64(g)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := uint64(rng.Intn(512)) + 1
						if rng.Intn(2) == 0 {
							h.Insert(k, k)
						} else {
							h.Delete(k)
						}
					}
				}(g)
			}
			h := tr.NewHandle()
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 300; i++ {
				lo := uint64(rng.Intn(512))
				hi := lo + uint64(rng.Intn(128))
				out := h.RangeQuery(lo, hi, nil)
				for j, kv := range out {
					if kv.Key < lo || kv.Key >= hi {
						t.Errorf("RQ[%d,%d) returned out-of-range key %d", lo, hi, kv.Key)
					}
					if kv.Key != kv.Val { // updaters always insert val == key
						t.Errorf("RQ returned mismatched pair (%d,%d)", kv.Key, kv.Val)
					}
					if j > 0 && out[j-1].Key >= kv.Key {
						t.Errorf("RQ result unsorted")
					}
				}
			}
			close(stop)
			wg.Wait()
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHeavyWorkloadUsesFallback reproduces the mechanism behind the
// paper's heavy workloads: with a small transactional capacity, large
// range queries cannot commit on the HTM paths and must complete on the
// fallback path.
func TestHeavyWorkloadUsesFallback(t *testing.T) {
	t.Parallel()
	tr := New(Config{
		Algorithm: engine.AlgThreePath,
		HTM:       htm.POWER8Config(),
	})
	h := tr.NewHandle()
	for k := uint64(1); k <= 2000; k++ {
		h.Insert(k, k)
	}
	before := tr.Engine().Stats()
	out := h.RangeQuery(1, 2001, nil)
	if len(out) != 2000 {
		t.Fatalf("RQ returned %d keys, want 2000", len(out))
	}
	after := tr.Engine().Stats()
	if after.Fallback != before.Fallback+1 {
		t.Fatalf("large RQ completed on an HTM path (fallback %d -> %d); "+
			"capacity model not effective", before.Fallback, after.Fallback)
	}
	hs := tr.TM().Stats()
	if hs.Aborts[htm.PathFast][htm.CauseCapacity] == 0 {
		t.Fatal("no capacity abort recorded for the oversized range query")
	}
}

// TestRangeQuerySortedUnderPrefill checks RQ pruning correctness on a
// broad prefilled tree for every algorithm.
func TestRangeQueryPruning(t *testing.T) {
	t.Parallel()
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := New(Config{Algorithm: alg})
			h := tr.NewHandle()
			var want []uint64
			for k := uint64(0); k < 300; k += 3 {
				h.Insert(k, k+1)
				want = append(want, k)
			}
			out := h.RangeQuery(50, 200, nil)
			var wantInRange []uint64
			for _, k := range want {
				if k >= 50 && k < 200 {
					wantInRange = append(wantInRange, k)
				}
			}
			if len(out) != len(wantInRange) {
				t.Fatalf("RQ returned %d keys, want %d", len(out), len(wantInRange))
			}
			for i, kv := range out {
				if kv.Key != wantInRange[i] || kv.Val != kv.Key+1 {
					t.Fatalf("RQ[%d] = (%d,%d), want (%d,%d)",
						i, kv.Key, kv.Val, wantInRange[i], wantInRange[i]+1)
				}
			}
			if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Key < out[j].Key }) {
				t.Fatal("RQ result unsorted")
			}
		})
	}
}

func TestPathUsageLightWorkload(t *testing.T) {
	t.Parallel()
	// In an uncontended light workload almost everything must complete
	// on the fast path (paper Section 7.2 reports >= 86%, avg 97%).
	tr := New(Config{Algorithm: engine.AlgThreePath})
	h := tr.NewHandle()
	rng := rand.New(rand.NewSource(3))
	const ops = 5000
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(1000)) + 1
		if rng.Intn(2) == 0 {
			h.Insert(k, k)
		} else {
			h.Delete(k)
		}
	}
	s := tr.Engine().Stats()
	if frac := float64(s.Fast) / float64(s.Total()); frac < 0.95 {
		t.Fatalf("fast-path completion fraction = %.3f, want >= 0.95 single-threaded", frac)
	}
}
