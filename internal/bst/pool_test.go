package bst

import (
	"testing"

	"htmtree/internal/engine"
)

// TestPoolReuseSteadyState: a delete/insert cycle on the fast path must
// reach a steady state where every insert draws from the pool and no
// fresh nodes are allocated.
func TestPoolReuseSteadyState(t *testing.T) {
	t.Parallel()
	tr := New(Config{Algorithm: engine.AlgThreePath})
	h := tr.newHandle()
	for k := uint64(1); k <= 64; k++ {
		h.Insert(k, k)
	}
	// Warm the grace-period circulation: internal nodes come back from
	// the epoch bags in batches, so the pool needs a few epochs' worth
	// of nodes in flight before it sustains the cycle alone.
	for i := 0; i < 300; i++ {
		k := uint64(i%64) + 1
		h.Delete(k)
		h.Insert(k, k)
	}
	warm := h.ReclaimStats()
	for i := 0; i < 1000; i++ {
		k := uint64(i%64) + 1
		h.Delete(k)
		h.Insert(k, k)
	}
	st := h.ReclaimStats()
	if st.Reused == warm.Reused {
		t.Fatal("steady-state cycle never reused a pooled node")
	}
	if st.Fresh != warm.Fresh {
		t.Fatalf("steady-state cycle heap-allocated %d nodes", st.Fresh-warm.Fresh)
	}
	if st.RetiredFast == warm.RetiredFast {
		t.Fatal("fast-path deletions never recycled immediately")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRetireFastGatedByFallbackReader is the white-box reclamation
// check: while an operation is (simulated) live on the fallback path,
// removals must not recycle immediately — the deleting operation is
// pushed off the fast path by the presence indicator, and its nodes
// take the grace period, so none can be handed out under the reader.
func TestRetireFastGatedByFallbackReader(t *testing.T) {
	t.Parallel()
	ind := engine.NewSNZIIndicator()
	tr := New(Config{
		Algorithm: engine.AlgThreePath,
		Engine:    engine.Config{Indicator: ind},
	})
	h := tr.newHandle()
	for k := uint64(1); k <= 64; k++ {
		h.Insert(k, k)
	}

	// Unobstructed: a fast-path delete recycles immediately — the nodes
	// are in the pool before the next operation starts.
	before := h.ReclaimStats()
	h.Delete(10)
	after := h.ReclaimStats()
	if after.RetiredFast == before.RetiredFast {
		t.Fatalf("unobstructed fast-path delete did not recycle immediately: %+v", after)
	}
	if h.PoolSize() == 0 {
		t.Fatal("immediately recycled nodes not in the pool")
	}

	// Drain the pool back into the tree so pool-size observations below
	// start from zero.
	for h.PoolSize() > 0 {
		k := uint64(1000 + h.PoolSize())
		h.Insert(k, k)
	}

	// A live fallback-path operation (simulated by arriving on the
	// engine's presence indicator, exactly what runFallbackLoop does)
	// must force the delete off the fast path and its removals to the
	// grace period: nothing is handed out while the reader is live.
	depart := ind.Arrive()
	mid := h.ReclaimStats()
	poolBefore := h.PoolSize()
	h.Delete(20)
	st := h.ReclaimStats()
	if st.RetiredFast != mid.RetiredFast {
		t.Fatalf("RetireFast happened while a fallback-path reader was live: %+v", st)
	}
	if st.RetiredGrace == mid.RetiredGrace {
		t.Fatal("delete under a live fallback reader retired nothing")
	}
	if h.PoolSize() != poolBefore {
		t.Fatal("grace-period node reached the pool while the fallback reader was live")
	}
	depart()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSearchOutsideTxDisablesFastRecycle: with Section 8 out-of-band
// searches enabled, every path has non-transactional readers, so no
// removal may recycle immediately.
func TestSearchOutsideTxDisablesFastRecycle(t *testing.T) {
	t.Parallel()
	tr := New(Config{Algorithm: engine.AlgThreePath, SearchOutsideTx: true})
	h := tr.newHandle()
	for k := uint64(1); k <= 64; k++ {
		h.Insert(k, k)
	}
	for k := uint64(1); k <= 64; k++ {
		h.Delete(k)
	}
	st := h.ReclaimStats()
	if st.RetiredFast != 0 {
		t.Fatalf("RetireFast used despite out-of-band searches: %+v", st)
	}
	if st.RetiredGrace == 0 {
		t.Fatal("deletes retired nothing")
	}
}

// TestTwoPathConcNeverFastRecycles: 2-path-con's "fast" path is the
// instrumented body running concurrently with the fallback path, so the
// Section 9 immediate-recycle rule never applies.
func TestTwoPathConcNeverFastRecycles(t *testing.T) {
	t.Parallel()
	tr := New(Config{Algorithm: engine.AlgTwoPathConc})
	h := tr.newHandle()
	for k := uint64(1); k <= 32; k++ {
		h.Insert(k, k)
	}
	for k := uint64(1); k <= 32; k++ {
		h.Delete(k)
	}
	if st := h.ReclaimStats(); st.RetiredFast != 0 {
		t.Fatalf("2-path-con recycled immediately: %+v", st)
	}
}
