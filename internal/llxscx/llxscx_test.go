package llxscx

import (
	"sync"
	"testing"

	"htmtree/internal/htm"
)

// tnode is a minimal Data-record: an immutable payload guarded by a Hdr.
type tnode struct {
	hdr Hdr
	val uint64
}

// troot is a Data-record with one mutable child pointer, the smallest
// structure on which the tree update template is exercisable. It carries
// the clock its records are bound to so helpers can bind replacements.
type troot struct {
	hdr   Hdr
	child htm.Ref[tnode]
	clk   *htm.Clock
}

// tn builds a tnode bound to clk.
func tn(clk *htm.Clock, val uint64) *tnode {
	n := &tnode{val: val}
	n.hdr.Bind(clk)
	return n
}

func newChain(clk *htm.Clock) (*troot, *tnode) {
	c := tn(clk, 0)
	r := &troot{clk: clk}
	r.hdr.Bind(clk)
	r.child.Bind(clk)
	r.child.Set(nil, c)
	return r, c
}

func TestSCXOBasic(t *testing.T) {
	t.Parallel()
	root, c0 := newChain(htm.NewClock())

	var seen *tnode
	pi, st := LLX(nil, &root.hdr, func() { seen = root.child.Get(nil) })
	if st != StatusOK {
		t.Fatalf("LLX(root) = %v, want ok", st)
	}
	if seen != c0 {
		t.Fatal("snapshot did not observe initial child")
	}
	ci, st := LLX(nil, &c0.hdr, nil)
	if st != StatusOK {
		t.Fatalf("LLX(child) = %v, want ok", st)
	}

	c1 := tn(root.clk, c0.val+1)
	ok := SCXO(
		[]*Hdr{&root.hdr, &c0.hdr},
		[]*Info{pi, ci},
		[]*Hdr{&c0.hdr},
		&root.child, c0, c1,
	)
	if !ok {
		t.Fatal("SCXO failed with no contention")
	}
	if got := root.child.Get(nil); got != c1 {
		t.Fatalf("child = %v, want new node", got)
	}
	if !c0.hdr.Marked(nil) {
		t.Fatal("finalized record not marked")
	}
	if _, st := LLX(nil, &c0.hdr, nil); st != StatusFinalized {
		t.Fatalf("LLX(finalized) = %v, want finalized", st)
	}
	// The root must remain LLX-able (it was in V but not in R).
	if _, st := LLX(nil, &root.hdr, nil); st != StatusOK {
		t.Fatalf("LLX(root) after SCX = %v, want ok", st)
	}
}

func TestSCXOStaleLinkFails(t *testing.T) {
	t.Parallel()
	root, c0 := newChain(htm.NewClock())

	pi, _ := LLX(nil, &root.hdr, nil)
	ci, _ := LLX(nil, &c0.hdr, nil)

	// Another operation replaces the child first.
	pi2, _ := LLX(nil, &root.hdr, nil)
	ci2, _ := LLX(nil, &c0.hdr, nil)
	mid := tn(root.clk, 100)
	if !SCXO([]*Hdr{&root.hdr, &c0.hdr}, []*Info{pi2, ci2}, []*Hdr{&c0.hdr}, &root.child, c0, mid) {
		t.Fatal("setup SCX failed")
	}

	// The SCX with stale linked LLXs must fail and leave memory intact.
	stale := tn(root.clk, 1)
	if SCXO([]*Hdr{&root.hdr, &c0.hdr}, []*Info{pi, ci}, []*Hdr{&c0.hdr}, &root.child, c0, stale) {
		t.Fatal("SCX with stale linked LLX succeeded")
	}
	if got := root.child.Get(nil); got != mid {
		t.Fatalf("child = %v, want %v", got, mid)
	}
}

// TestLLXHelpsInProgressSCX freezes a record for a stalled SCX and checks
// that a subsequent LLX helps the operation to completion.
func TestLLXHelpsInProgressSCX(t *testing.T) {
	t.Parallel()
	root, c0 := newChain(htm.NewClock())

	pi, _ := LLX(nil, &root.hdr, nil)
	ci, _ := LLX(nil, &c0.hdr, nil)
	c1 := tn(root.clk, 7)

	// Build the SCX-record by hand and freeze only the first record,
	// simulating a thread that crashed mid-SCX.
	rec := &SCXRecord{
		nv:  2,
		nr:  1,
		fld: &fieldOp[tnode]{ref: &root.child, old: c0, new: c1},
	}
	rec.state.Store(StateInProgress)
	rec.v = [MaxV]*Hdr{&root.hdr, &c0.hdr}
	rec.infos = [MaxV]*Info{pi, ci}
	rec.r = [MaxV]*Hdr{&c0.hdr}
	rec.self.Rec = rec
	if !root.hdr.info.CAS(nil, pi, &rec.self) {
		t.Fatal("manual freeze failed")
	}

	// LLX on the frozen record must help the SCX finish, then report
	// Fail (the caller retries and will then see the new state).
	if _, st := LLX(nil, &root.hdr, nil); st != StatusFail {
		t.Fatalf("LLX(frozen) = %v, want fail", st)
	}
	if rec.state.Load() != StateCommitted {
		t.Fatalf("record state = %d, want committed", rec.state.Load())
	}
	if got := root.child.Get(nil); got != c1 {
		t.Fatal("helped SCX did not apply the field update")
	}
	if !c0.hdr.Marked(nil) {
		t.Fatal("helped SCX did not mark the finalized record")
	}
	// And the structure is operable afterwards.
	if _, st := LLX(nil, &root.hdr, nil); st != StatusOK {
		t.Fatalf("LLX after helping = %v, want ok", st)
	}
}

func TestTagFreshness(t *testing.T) {
	t.Parallel()
	var tags TagSource
	seen := make(map[*Info]bool)
	for i := 0; i < 100; i++ {
		in := tags.Next()
		if in.Rec != nil {
			t.Fatal("tagged info has Rec set")
		}
		if seen[in] {
			t.Fatal("TagSource returned a repeated pointer")
		}
		seen[in] = true
	}
}

func TestSCXHTMBasicAndP1(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	th := tm.NewThread()
	var tags TagSource
	root, c0 := newChain(tm.Clock())

	var infosSeen []*Info
	cur := c0
	for i := 0; i < 3; i++ {
		var snap *tnode
		pi, st := LLX(nil, &root.hdr, func() { snap = root.child.Get(nil) })
		if st != StatusOK {
			t.Fatalf("LLX = %v", st)
		}
		ci, st := LLX(nil, &cur.hdr, nil)
		if st != StatusOK {
			t.Fatalf("LLX(child) = %v", st)
		}
		if snap != cur {
			t.Fatal("unexpected child")
		}
		next := tn(root.clk, cur.val+1)
		ok, ab := SCXHTM(th, htm.PathFast, &tags,
			[]*Hdr{&root.hdr, &cur.hdr}, []*Info{pi, ci},
			[]*Hdr{&cur.hdr}, &root.child, next)
		if !ok {
			t.Fatalf("SCXHTM failed: %+v", ab)
		}
		infosSeen = append(infosSeen, root.hdr.InfoValue(nil))
		cur = next
	}
	if cur.val != 3 {
		t.Fatalf("chain value = %d, want 3", cur.val)
	}
	// P1: each successful SCX left a fresh info value.
	for i := 0; i < len(infosSeen); i++ {
		for j := i + 1; j < len(infosSeen); j++ {
			if infosSeen[i] == infosSeen[j] {
				t.Fatal("info value repeated across SCXs (P1 violated)")
			}
		}
	}
}

func TestSCXHTMDetectsStaleLink(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	th := tm.NewThread()
	var tags TagSource
	root, c0 := newChain(tm.Clock())

	pi, _ := LLX(nil, &root.hdr, nil)
	ci, _ := LLX(nil, &c0.hdr, nil)

	// Intervening SCXO invalidates the links.
	pi2, _ := LLX(nil, &root.hdr, nil)
	ci2, _ := LLX(nil, &c0.hdr, nil)
	mid := &tnode{val: 50}
	if !SCXO([]*Hdr{&root.hdr, &c0.hdr}, []*Info{pi2, ci2}, []*Hdr{&c0.hdr}, &root.child, c0, mid) {
		t.Fatal("setup SCX failed")
	}

	ok, ab := SCXHTM(th, htm.PathFast, &tags,
		[]*Hdr{&root.hdr, &c0.hdr}, []*Info{pi, ci},
		[]*Hdr{&c0.hdr}, &root.child, &tnode{val: 1})
	if ok {
		t.Fatal("SCXHTM with stale link committed")
	}
	if ab.Cause != htm.CauseExplicit || ab.Code != AbortCodeSCX {
		t.Fatalf("abort = %+v, want explicit %#x", ab, AbortCodeSCX)
	}
	if got := root.child.Get(nil); got != mid {
		t.Fatal("failed SCXHTM changed memory")
	}
}

func TestSCXInTx(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	th := tm.NewThread()
	var tags TagSource
	root, c0 := newChain(tm.Clock())

	ok, ab := th.Atomic(htm.PathMiddle, func(tx *htm.Tx) {
		var c *tnode
		_, st := LLX(tx, &root.hdr, func() { c = root.child.Get(tx) })
		if st != StatusOK {
			tx.Abort(1)
		}
		if _, st := LLX(tx, &c.hdr, nil); st != StatusOK {
			tx.Abort(1)
		}
		SCXInTx(tx, &tags, []*Hdr{&root.hdr, &c.hdr}, []*Hdr{&c.hdr})
		root.child.Set(tx, tn(root.clk, c.val+1))
	})
	if !ok {
		t.Fatalf("in-tx SCX failed: %+v", ab)
	}
	if got := root.child.Get(nil); got.val != 1 {
		t.Fatalf("child val = %d, want 1", got.val)
	}
	if !c0.hdr.Marked(nil) {
		t.Fatal("in-tx SCX did not mark the removed record")
	}
	if _, st := LLX(nil, &c0.hdr, nil); st != StatusFinalized {
		t.Fatal("removed record not finalized for fallback-path readers")
	}
}

func TestLLXInTxNoHelping(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	th := tm.NewThread()
	root, c0 := newChain(tm.Clock())

	// Freeze root for a stalled SCX as in TestLLXHelpsInProgressSCX.
	pi, _ := LLX(nil, &root.hdr, nil)
	ci, _ := LLX(nil, &c0.hdr, nil)
	rec := &SCXRecord{nv: 2, nr: 1,
		fld: &fieldOp[tnode]{ref: &root.child, old: c0, new: tn(root.clk, 9)}}
	rec.state.Store(StateInProgress)
	rec.v = [MaxV]*Hdr{&root.hdr, &c0.hdr}
	rec.infos = [MaxV]*Info{pi, ci}
	rec.r = [MaxV]*Hdr{&c0.hdr}
	rec.self.Rec = rec
	if !root.hdr.info.CAS(nil, pi, &rec.self) {
		t.Fatal("manual freeze failed")
	}

	ok, _ := th.Atomic(htm.PathMiddle, func(tx *htm.Tx) {
		if _, st := LLX(tx, &root.hdr, nil); st != StatusFail {
			t.Errorf("in-tx LLX on frozen record = %v, want fail", st)
		}
		tx.Abort(1)
	})
	if ok {
		t.Fatal("probe transaction committed unexpectedly")
	}
	if rec.state.Load() != StateInProgress {
		t.Fatal("in-tx LLX helped a fallback SCX (it must not)")
	}
}

// TestMixedPathChainStress is the core interoperability test: threads
// mixing all SCX flavours (fallback SCXO, standalone SCXHTM, and
// whole-operation transactions with SCXInTx) repeatedly replace the
// chain's child with a node holding val+1. Atomicity of the template
// means the final value equals the number of successful SCXs.
func TestMixedPathChainStress(t *testing.T) {
	t.Parallel()
	tm := htm.New(htm.Config{})
	root, _ := newChain(tm.Clock())

	const goroutines = 6
	const opsPerG = 3000
	successes := make([]uint64, goroutines)
	var wg sync.WaitGroup

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tm.NewThread()
			var tags TagSource
			for i := 0; i < opsPerG; i++ {
				var ok bool
				switch (g + i) % 3 {
				case 0: // fallback path: original SCX
					ok = chainIncrSCXO(root)
				case 1: // standalone HTM SCX
					ok = chainIncrSCXHTM(th, &tags, root)
				case 2: // whole operation inside one transaction
					ok = chainIncrInTx(th, &tags, root)
				}
				if ok {
					successes[g]++
				}
			}
		}(g)
	}
	wg.Wait()

	var want uint64
	for _, s := range successes {
		want += s
	}
	if want == 0 {
		t.Fatal("no operation succeeded")
	}
	if got := root.child.Get(nil).val; got != want {
		t.Fatalf("final chain value = %d, want %d (successful SCXs)", got, want)
	}
}

func chainIncrSCXO(root *troot) bool {
	var c *tnode
	pi, st := LLX(nil, &root.hdr, func() { c = root.child.Get(nil) })
	if st != StatusOK {
		return false
	}
	ci, st := LLX(nil, &c.hdr, nil)
	if st != StatusOK {
		return false
	}
	next := tn(root.clk, c.val+1)
	return SCXO([]*Hdr{&root.hdr, &c.hdr}, []*Info{pi, ci}, []*Hdr{&c.hdr},
		&root.child, c, next)
}

func chainIncrSCXHTM(th *htm.Thread, tags *TagSource, root *troot) bool {
	var c *tnode
	pi, st := LLX(nil, &root.hdr, func() { c = root.child.Get(nil) })
	if st != StatusOK {
		return false
	}
	ci, st := LLX(nil, &c.hdr, nil)
	if st != StatusOK {
		return false
	}
	next := tn(root.clk, c.val+1)
	ok, _ := SCXHTM(th, htm.PathFast, tags,
		[]*Hdr{&root.hdr, &c.hdr}, []*Info{pi, ci}, []*Hdr{&c.hdr},
		&root.child, next)
	return ok
}

func chainIncrInTx(th *htm.Thread, tags *TagSource, root *troot) bool {
	const retryCode = 0x33
	ok, _ := th.Atomic(htm.PathMiddle, func(tx *htm.Tx) {
		var c *tnode
		_, st := LLX(tx, &root.hdr, func() { c = root.child.Get(tx) })
		if st != StatusOK {
			tx.Abort(retryCode)
		}
		if _, st := LLX(tx, &c.hdr, nil); st != StatusOK {
			tx.Abort(retryCode)
		}
		SCXInTx(tx, tags, []*Hdr{&root.hdr, &c.hdr}, []*Hdr{&c.hdr})
		root.child.Set(tx, tn(root.clk, c.val+1))
	})
	return ok
}

func TestStatusString(t *testing.T) {
	t.Parallel()
	if StatusOK.String() != "ok" || StatusFail.String() != "fail" ||
		StatusFinalized.String() != "finalized" {
		t.Fatal("Status.String mismatch")
	}
}
