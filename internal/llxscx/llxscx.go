// Package llxscx implements the LLX and SCX synchronization primitives
// of Brown, Ellen and Ruppert ("Pragmatic primitives for non-blocking
// data structures", PODC 2013) together with the HTM-accelerated variants
// derived in Brown's "A Template for Implementing Fast Lock-free Trees
// Using HTM" (PODC 2017).
//
// A Data-record is any struct embedding a Hdr, which carries the two
// synchronization fields of the paper: info (a pointer used both to
// freeze the record for an in-progress SCX and to witness changes — the
// ABA-prevention property P1) and marked (set when the record is being
// finalized, i.e. permanently removed).
//
// Four flavours of SCX are provided:
//
//   - SCXO: the original lock-free implementation (paper Figure 2), used
//     on the fallback path. It creates an SCX-record that other threads
//     can help complete.
//   - SCXHTM: the standalone HTM implementation (paper Figure 4, the end
//     point of the Section 4 transformation chain). It runs its own
//     transaction, writes fresh tagged sequence numbers instead of
//     SCX-record pointers, and never needs help.
//   - SCXInTx: the Section 5 variant used when the entire template
//     operation already runs inside one transaction (the middle path and
//     the 2-path-concurrent fast path). The freezing comparison loop is
//     elided because the linked LLXs executed in the same transaction
//     subscribe the info fields.
//   - LLX: one implementation serving both worlds (paper Figure 8): with
//     a nil *htm.Tx it is the original LLXO plus the tagged-value test;
//     inside a transaction it performs transactional reads and never
//     helps (helping inside a transaction is both unnecessary for
//     progress and harmful, Section 4).
//
// Property P1 — between any two changes to a record's user fields, a
// value never previously contained in the info field is stored there —
// is preserved by always writing freshly allocated *Info values: fallback
// SCX-records carry their own unique Info, and each HTM SCX allocates a
// fresh tagged Info (Rec == nil). This replaces the paper's pointer
// tagging, which Go's garbage collector rules out, while preserving
// exactly the property the tag encoding served.
package llxscx

import (
	"sync/atomic"

	"htmtree/internal/htm"
)

// MaxV is the maximum length of an SCX's V sequence. The data structures
// in this repository need at most 4 (BST delete and (a,b)-tree
// rebalancing use V = {grandparent, parent, node, sibling}).
const MaxV = 6

// AbortCodeSCX is the explicit-abort code used when a standalone HTM SCX
// detects that a record changed since its linked LLX (the transactional
// analogue of a failed freezing CAS).
const AbortCodeSCX uint8 = 0xA1

// State of an SCX-record.
const (
	StateInProgress int32 = iota + 1
	StateCommitted
	StateAborted
)

// Info is the value stored in a record's info field. A fallback-path SCX
// stores an Info whose Rec points at its SCX-record; an HTM-path SCX
// stores a fresh Info with Rec == nil, playing the role of the paper's
// tagged sequence number (always-committed, never helped). A nil *Info
// (the zero value of a header) is treated like a tagged value.
type Info struct {
	// Rec is the SCX-record this Info belongs to, or nil for a tagged
	// sequence number.
	Rec *SCXRecord
	// Seq is the per-thread sequence number for tagged values; it exists
	// for diagnostics only (freshness comes from Info's identity).
	Seq uint64
}

// stateOf returns the effective state of an info value: tagged values
// (nil or Rec == nil) behave exactly like SCX-records whose state is
// Committed (Section 4 of the paper).
func stateOf(info *Info) int32 {
	if info == nil || info.Rec == nil {
		return StateCommitted
	}
	return info.Rec.state.Load()
}

// Hdr carries the synchronization fields of a Data-record. Embed it in
// any node type. The zero value is an unfrozen, unmarked record; like
// every htm cell, it must be bound to the owning TM's clock (Bind)
// before fallback-path SCXs mutate it non-transactionally.
type Hdr struct {
	info   htm.Ref[Info]
	marked htm.Word
}

// Bind associates the header's cells with the version clock of the TM
// whose transactions access the record. Call once before the record is
// published (node pools bind when a node is first created).
func (h *Hdr) Bind(c *htm.Clock) {
	h.info.Bind(c)
	h.marked.Bind(c)
}

// Recycle resets a pooled record's header for reuse — unfrozen and
// unmarked — advancing the cells' versions so stale transactional
// readers abort rather than observe the recycled record (see
// htm.Word.Recycle for the full contract).
func (h *Hdr) Recycle() {
	h.info.Recycle(nil)
	h.marked.Recycle(0)
}

// Reset resets a pooled record's header with plain stores. Only sound
// when no thread can still hold the record — i.e. it was reclaimed
// through a grace period, not recycled immediately.
func (h *Hdr) Reset() {
	h.info.Init(nil)
	h.marked.Init(0)
}

// Marked reports whether the record has been marked for finalization.
// Pass the enclosing transaction, or nil outside one.
func (h *Hdr) Marked(tx *htm.Tx) bool { return h.marked.Get(tx) != 0 }

// SetMarked marks the record. It is exported for fast-path sequential
// code, which marks removed nodes directly inside its transaction
// (Sections 6 and 8 of the paper).
func (h *Hdr) SetMarked(tx *htm.Tx) { h.marked.Set(tx, 1) }

// InfoValue returns the current content of the info field (diagnostics
// and tests).
func (h *Hdr) InfoValue(tx *htm.Tx) *Info { return h.info.Get(tx) }

// fieldCAS applies an SCX-record's single field update. The concrete
// type captures the typed field pointer; the interface keeps SCXRecord
// monomorphic.
type fieldCAS interface{ cas() }

// fieldOp is the fieldCAS implementation for a child-pointer field.
type fieldOp[T any] struct {
	ref      *htm.Ref[T]
	old, new *T
}

func (f *fieldOp[T]) cas() { f.ref.CAS(nil, f.old, f.new) }

// SCXRecord is the descriptor created by fallback-path SCXs (paper
// Figure 2). Helpers use it to complete or abort the operation.
type SCXRecord struct {
	state     atomic.Int32
	allFrozen atomic.Bool
	nv, nr    int
	v         [MaxV]*Hdr
	infos     [MaxV]*Info
	r         [MaxV]*Hdr
	fld       fieldCAS
	self      Info
}

// Status is the result of an LLX.
type Status uint8

// LLX outcomes.
const (
	StatusOK        Status = iota + 1 // snapshot taken; info value returned
	StatusFail                        // concurrent SCX; retry
	StatusFinalized                   // record was finalized (removed)
)

// String returns a short name for the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusFail:
		return "fail"
	case StatusFinalized:
		return "finalized"
	default:
		return "status(?)"
	}
}

// LLX attempts to take a snapshot of the mutable fields of the record
// with header h (paper Figures 2 and 8). readFields, if non-nil, is
// invoked to read the record's mutable fields into caller-owned
// variables; the protocol guarantees that if LLX returns StatusOK those
// reads form an atomic snapshot and the returned *Info witnesses it (to
// be passed to a subsequent SCX as the linked info value).
//
// With tx == nil this is the original helping LLX. Inside a transaction
// it performs transactional reads and never helps: an in-progress
// fallback SCX simply yields StatusFail, and the caller is expected to
// abort and retry (possibly on another path).
func LLX(tx *htm.Tx, h *Hdr, readFields func()) (*Info, Status) {
	marked1 := h.marked.Get(tx) != 0
	rinfo := h.info.Get(tx)
	state := stateOf(rinfo)
	marked2 := h.marked.Get(tx) != 0

	if state == StateAborted || (state == StateCommitted && !marked2) {
		// The record was not frozen when state was read.
		if readFields != nil {
			readFields()
		}
		if h.info.Get(tx) == rinfo {
			return rinfo, StatusOK
		}
	}

	if tx != nil {
		// Transactional context: no helping (Section 4). The info cell
		// is already subscribed, so any change aborts the transaction.
		if stateOf(rinfo) == StateCommitted && marked1 {
			return nil, StatusFinalized
		}
		return nil, StatusFail
	}

	if (stateOf(rinfo) == StateCommitted ||
		(stateOf(rinfo) == StateInProgress && help(rinfo.Rec))) && marked1 {
		return nil, StatusFinalized
	}
	rinfo2 := h.info.Get(nil)
	if stateOf(rinfo2) == StateInProgress {
		help(rinfo2.Rec)
	}
	return nil, StatusFail
}

// SCXO is the original lock-free SCX (paper Figure 2). v is the sequence
// of records that must be unchanged since their linked LLXs returned the
// corresponding infos values; the records in r (indices into v's records
// given as headers) are finalized; fld is the child-pointer field to
// change from old to new. It returns true if the SCX succeeded.
//
// Preconditions (paper Section 3): the caller performed a linked LLX on
// every record in v obtaining infos, new was never previously contained
// in fld, and r is a subsequence of v.
func SCXO[T any](v []*Hdr, infos []*Info, r []*Hdr, fld *htm.Ref[T], old, new *T) bool {
	return NewRecord(v, infos, r, fld, old, new).Run()
}

// NewRecord builds a fallback-path SCX-record without running it. The
// helpable-fallback engine uses this split to publish the record in an
// announcement slot before (or while) executing it, so that any thread
// can drive the same record to completion. Preconditions are those of
// SCXO.
func NewRecord[T any](v []*Hdr, infos []*Info, r []*Hdr, fld *htm.Ref[T], old, new *T) *SCXRecord {
	rec := &SCXRecord{
		nv:  len(v),
		nr:  len(r),
		fld: &fieldOp[T]{ref: fld, old: old, new: new},
	}
	rec.state.Store(StateInProgress)
	copy(rec.v[:], v)
	copy(rec.infos[:], infos)
	copy(rec.r[:], r)
	rec.self.Rec = rec
	return rec
}

// Run drives the record to completion (paper Figure 2, Help) and
// reports whether it committed. It is idempotent and safe to call
// concurrently from any number of threads: a record that already
// committed returns true again, an aborted one returns false again.
func (rec *SCXRecord) Run() bool { return help(rec) }

// State returns the record's current state (StateInProgress,
// StateCommitted or StateAborted).
func (rec *SCXRecord) State() int32 { return rec.state.Load() }

// help runs the body of the original SCX (paper Figure 2, Help) to
// completion on behalf of any thread. It may be called concurrently by
// multiple helpers.
func help(rec *SCXRecord) bool {
	// Freeze all records in V to protect their mutable fields.
	for i := 0; i < rec.nv; i++ {
		h := rec.v[i]
		if !h.info.CAS(nil, rec.infos[i], &rec.self) { // freezing CAS
			if h.info.Get(nil) != &rec.self {
				// Could not freeze h: it is frozen for another SCX.
				if rec.allFrozen.Load() {
					// The SCX already completed successfully (another
					// helper finished it).
					return true
				}
				// Unfreeze everything frozen for this SCX.
				rec.state.Store(StateAborted) // abort step
				return false
			}
		}
	}
	rec.allFrozen.Store(true) // frozen step
	for i := 0; i < rec.nr; i++ {
		rec.r[i].marked.Set(nil, 1) // mark step
	}
	rec.fld.cas() // update CAS
	// Finalize all records in R and unfreeze all records in V \ R.
	rec.state.Store(StateCommitted) // commit step
	return true
}

// TagSource produces the fresh tagged info values HTM-path SCXs write in
// place of SCX-record pointers (paper Section 4, "eliminating the
// creation of SCX-records"). One TagSource per thread.
type TagSource struct {
	seq uint64
}

// Next returns a fresh tagged Info. Freshness (property P1) comes from
// the allocation: no info field has ever contained this pointer.
func (t *TagSource) Next() *Info {
	t.seq++
	return &Info{Seq: t.seq}
}

// SCXHTM is the standalone HTM SCX (paper Figures 4 and 11): it runs its
// own transaction on the given path, verifies that no record in v has
// changed since its linked LLX (explicitly aborting with AbortCodeSCX
// otherwise), stores a fresh tagged info value in every record of v,
// marks the records of r, and writes new into fld. It returns whether
// the transaction committed and the abort details otherwise; an explicit
// abort with AbortCodeSCX plays the role of SCX returning false.
func SCXHTM[T any](th *htm.Thread, path htm.PathKind, tags *TagSource,
	v []*Hdr, infos []*Info, r []*Hdr, fld *htm.Ref[T], new *T) (bool, htm.Abort) {
	return th.Atomic(path, func(tx *htm.Tx) {
		// Abort if any record in V changed since the linked LLX.
		for i, h := range v {
			if h.info.Get(tx) != infos[i] {
				tx.Abort(AbortCodeSCX)
			}
		}
		tag := tags.Next()
		for _, h := range v {
			h.info.Set(tx, tag) // change info to a value never seen before
		}
		for _, h := range r {
			h.marked.Set(tx, 1) // mark each record to be finalized
		}
		fld.Set(tx, new) // perform the update
	})
}

// SCXInTx is the SCX variant for template operations that already run
// entirely inside one transaction (paper Section 5): the freezing
// comparison is elided because the linked LLXs in the same transaction
// subscribed the info fields, so any change aborts the transaction. The
// caller performs the field update itself (a transactional write) after
// this returns.
//
// Precondition: every record in v was LLXed inside tx.
func SCXInTx(tx *htm.Tx, tags *TagSource, v []*Hdr, r []*Hdr) {
	tag := tags.Next()
	for _, h := range v {
		h.info.Set(tx, tag)
	}
	for _, h := range r {
		h.marked.Set(tx, 1)
	}
}
