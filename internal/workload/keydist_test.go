package workload

import (
	"testing"
	"time"

	"htmtree/internal/engine"
	"htmtree/internal/xrand"
)

// TestZipfGenSkewAndBounds checks the quick-Zipf generator stays in
// [1, n] and is actually skewed: the first percentile of ranks should
// absorb far more than its uniform share of the draws.
func TestZipfGenSkewAndBounds(t *testing.T) {
	t.Parallel()
	const n, draws = 10000, 200000
	zg := newZipfGen(n, 0.99)
	rng := xrand.New(42, 0)
	lowHundred := 0
	for i := 0; i < draws; i++ {
		r := zg.draw(rng)
		if r < 1 || r > n {
			t.Fatalf("draw %d out of [1,%d]", r, n)
		}
		if r <= n/100 {
			lowHundred++
		}
	}
	// Theta 0.99 puts well over half the mass on the first 1% of ranks
	// (a uniform generator would put 1% there).
	if frac := float64(lowHundred) / draws; frac < 0.4 {
		t.Fatalf("first 1%% of ranks drew %.3f of the mass; generator not Zipfian", frac)
	}
}

// TestHotRangeKeyGen checks DistHotRange sends the configured fraction
// of draws into the hot slice.
func TestHotRangeKeyGen(t *testing.T) {
	t.Parallel()
	cfg := Config{Dist: DistHotRange, HotOpFrac: 0.9, HotKeyFrac: 0.125, KeyRange: 8000}
	gen := keyGen(cfg, nil, 1, 8000)
	rng := xrand.New(7, 0)
	const draws = 100000
	hot := 0
	for i := 0; i < draws; i++ {
		k := gen(rng)
		if k < 1 || k > 8000 {
			t.Fatalf("key %d out of range", k)
		}
		if k <= 1000 {
			hot++
		}
	}
	frac := float64(hot) / draws
	// 90% targeted + ~1.25% of the uniform remainder ≈ 0.911.
	if frac < 0.85 || frac > 0.97 {
		t.Fatalf("hot slice drew %.3f of the mass, want ≈0.91", frac)
	}
}

// TestPinnedUpdatersStayHome checks pinning keeps an updater's traffic
// inside its home shard: a single pinned thread (home shard 0) must
// put essentially all measured operations on shard 0 — and the trial
// must still pass key-sum validation. (A multi-thread balance
// assertion would measure the Go scheduler, not the router, on small
// machines.)
func TestPinnedUpdatersStayHome(t *testing.T) {
	t.Parallel()
	spec := Spec{Structure: "bst", Algorithm: engine.AlgThreePath, Shards: 4, KeySpan: 4000}
	d := spec.New()
	res := Run(d, Config{
		Threads:     1,
		Duration:    50 * time.Millisecond,
		KeyRange:    4000,
		Kind:        Light,
		Seed:        3,
		PinUpdaters: true,
	})
	if !res.KeySumOK {
		t.Fatal("pinned trial failed key-sum validation")
	}
	if res.Ops == 0 {
		t.Fatal("pinned trial did no work")
	}
	if res.MaxShardShare < 0.99 {
		t.Fatalf("pinned thread leaked off its home shard: MaxShardShare = %.3f, want ≈1.0",
			res.MaxShardShare)
	}

	// The same trial unpinned spreads across all four shards.
	res = Run(spec.New(), Config{
		Threads:  1,
		Duration: 50 * time.Millisecond,
		KeyRange: 4000,
		Kind:     Light,
		Seed:     3,
	})
	if !res.KeySumOK {
		t.Fatal("unpinned trial failed key-sum validation")
	}
	if res.MaxShardShare > 0.5 {
		t.Fatalf("unpinned MaxShardShare = %.3f, want ≈0.25", res.MaxShardShare)
	}
}

// TestPinnedUpdaterIntervals checks the per-thread interval derivation:
// threads map round-robin onto shards and intersect the trial key
// range.
func TestPinnedUpdaterIntervals(t *testing.T) {
	t.Parallel()
	spec := Spec{Structure: "bst", Algorithm: engine.AlgNonHTM, Shards: 4, KeySpan: 4000}
	d := spec.New()
	cfg := Config{KeyRange: 4000, PinUpdaters: true}
	for i := 0; i < 8; i++ {
		lo, hi := updaterInterval(d, cfg, i)
		shard := i % 4
		wantLo := uint64(shard * 1000)
		if wantLo < 1 {
			wantLo = 1
		}
		wantHi := uint64(shard*1000 + 999)
		if shard == 3 {
			wantHi = 4000 // last shard clamped to the trial key range
		}
		if lo != wantLo || hi != wantHi {
			t.Fatalf("thread %d interval [%d,%d], want [%d,%d]", i, lo, hi, wantLo, wantHi)
		}
	}
	// Unpinned or unsharded: full range.
	if lo, hi := updaterInterval(d, Config{KeyRange: 4000}, 2); lo != 1 || hi != 4000 {
		t.Fatalf("unpinned interval [%d,%d]", lo, hi)
	}
}

// TestSpecRouterNames pins the CSV labels of router specs.
func TestSpecRouterNames(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		spec Spec
		want string
	}{
		{Spec{Structure: "bst", Algorithm: engine.AlgThreePath, Shards: 8}, "bst/3-path/x8"},
		{Spec{Structure: "bst", Algorithm: engine.AlgThreePath, Shards: 8, Router: "range"}, "bst/3-path/x8"},
		{Spec{Structure: "bst", Algorithm: engine.AlgThreePath, Shards: 8, Router: "hash"}, "bst/3-path/x8/hash"},
		{Spec{Structure: "abtree", Algorithm: engine.AlgThreePath, Shards: 4, Router: "adaptive", AtomicRQ: true}, "abtree/3-path/x4/adaptive/atomic"},
	} {
		if got := tc.spec.Name(); got != tc.want {
			t.Fatalf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// TestSpecRouterConstruction smoke-tests that hash and adaptive specs
// build working dictionaries.
func TestSpecRouterConstruction(t *testing.T) {
	t.Parallel()
	for _, router := range []string{"range", "hash", "adaptive"} {
		d := Spec{
			Structure: "bst", Algorithm: engine.AlgThreePath,
			Shards: 4, KeySpan: 1000, Router: router,
		}.New()
		h := d.NewHandle()
		for k := uint64(1); k <= 100; k++ {
			h.Insert(k, k)
		}
		if v, ok := h.Search(50); !ok || v != 50 {
			t.Fatalf("router %s: Search(50) = (%d,%v)", router, v, ok)
		}
		if out := h.RangeQuery(1, 101, nil); len(out) != 100 {
			t.Fatalf("router %s: RQ returned %d pairs", router, len(out))
		}
		if sum, count := d.KeySum(); count != 100 || sum != 5050 {
			t.Fatalf("router %s: KeySum = (%d,%d)", router, sum, count)
		}
	}
}
