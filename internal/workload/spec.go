package workload

import (
	"fmt"
	"runtime"
	"strconv"

	"htmtree/internal/abtree"
	"htmtree/internal/bst"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/fault"
	"htmtree/internal/htm"
	"htmtree/internal/obs"
	"htmtree/internal/shard"
)

// Spec names one dictionary configuration for benchmarks and tests: a
// structure, a template algorithm, and an optional shard count. It is
// the shard-aware counterpart of constructing a tree directly, so sweep
// drivers (cmd/htmbench, bench_test.go) can enumerate configurations
// uniformly.
type Spec struct {
	// Structure is "bst" or "abtree".
	Structure string
	// Algorithm selects the template implementation.
	Algorithm engine.Algorithm
	// Shards partitions the key space across that many independent trees
	// (0 or 1 means unsharded).
	Shards int
	// KeySpan balances the partition over [0, KeySpan); set it to the
	// trial's key range. Ignored when unsharded; defaults to the full
	// key space.
	KeySpan uint64
	// SearchOutsideTx enables the Section 8 optimization.
	SearchOutsideTx bool
	// AtomicRQ makes cross-shard RangeQuery and KeySum atomic via
	// per-shard version validation (ignored when unsharded).
	AtomicRQ bool
	// Router selects the shard routing policy: "" or "range" (the
	// contiguous default), "hash" (skew-oblivious scattering), or
	// "adaptive" (range routing plus live key-range rebalancing).
	// Ignored when unsharded.
	Router string
	// RebalanceCheckOps and RebalanceRatio tune the adaptive router's
	// evaluation cadence and trigger threshold (0 selects the shard
	// layer defaults). Ignored unless Router is "adaptive".
	RebalanceCheckOps int
	RebalanceRatio    float64
	// HTM overrides the simulated-HTM configuration.
	HTM htm.Config
	// Policy selects the engine retry policy by name ("" or "adaptive",
	// "static"); see engine.ParsePolicy.
	Policy string
	// Helpable replaces the TLE fallback's classic spin lock with the
	// announce/help protocol (engine.Config.HelpableFallback). TLE only.
	Helpable bool
	// AttemptLimit overrides the fast-path attempt budget for TLE and
	// the 2-path algorithms (0 keeps the engine default). Oversubscribed
	// trials set it low to force fallback traffic.
	AttemptLimit int
	// PreemptFallback injects a scheduling yield (runtime.Gosched) right
	// after each fallback operation takes — or, with Helpable, announces
	// under — the fallback lock, simulating the worst-case preemption of
	// a lock holder that oversubscription makes likely.
	PreemptFallback bool
	// PreemptPoint, when non-nil, replaces PreemptFallback's Gosched
	// with an arbitrary injection at the same spot. Benchmarks model a
	// full OS descheduling (the lock holder losing its quantum to a
	// runnable peer) with a short sleep here — a yield alone puts the
	// owner back on the run queue, which understates the convoy.
	PreemptPoint func()
	// Observe, when non-nil, attaches the live observability layer
	// (metrics registry, flight recorder, latency sampling) with the
	// given configuration. Retrieve the domain via NewObserved; a plain
	// New discards it.
	Observe *obs.Config
	// Faults, when non-nil, arms the deterministic fault-injection
	// plane across every layer of the constructed dictionary (HTM
	// accesses, fallback owners, reclamation pins, and — when sharded —
	// quiesce gates and migrations). The chaos experiment's seam. When
	// Observe is also set, fired faults are recorded in the flight
	// recorder.
	Faults *fault.Plan
}

// Name returns a compact label, e.g. "abtree/3-path/x8" or
// "abtree/3-path/x8/hash". An explicit Shards of 1 is labeled "/x1"
// so a shard sweep's baseline stays distinguishable from unsharded
// (Shards == 0) series; non-default routers and atomic-RQ specs are
// suffixed so configurations cannot be confused in CSV output.
func (s Spec) Name() string {
	n := s.Structure + "/" + s.Algorithm.String()
	if s.Shards >= 1 {
		n += fmt.Sprintf("/x%d", s.Shards)
	}
	if s.Router != "" && s.Router != "range" {
		n += "/" + s.Router
	}
	if s.AtomicRQ {
		n += "/atomic"
	}
	if s.Helpable {
		n += "/help"
	}
	return n
}

// New constructs a fresh dictionary instance described by the spec.
// It panics on an unknown structure name (specs are authored by sweep
// drivers, not end users).
func (s Spec) New() dict.Dict {
	d, _ := s.NewObserved()
	return d
}

// NewObserved constructs the spec's dictionary together with its
// observability domain. The domain is nil unless Spec.Observe is set;
// with it, each engine registers its metric families (per-shard trees
// under a shard="i" label) and every engine thread carries a flight
// recorder.
func (s Spec) NewObserved() (dict.Dict, *obs.Obs) {
	var o *obs.Obs
	if s.Observe != nil {
		o = obs.New(*s.Observe)
		if s.Faults != nil {
			// Bridge fired faults into the flight recorder so a chaos
			// run's event stream names its injections (cold events;
			// A = fault point, B = per-point fire sequence).
			rec := o.Node().NewThread()
			s.Faults.SetOnFire(func(e fault.Effect) {
				kind := obs.EvFaultStall
				switch {
				case e.Point == fault.PointTxAccess:
					kind = obs.EvFaultAbort
				case e.Kill:
					kind = obs.EvFaultKill
				}
				rec.RareEvent(kind, 0, htm.CauseNone, uint64(e.Point), e.Seq)
			})
		}
	}
	root := func() *obs.Node {
		if o == nil {
			return nil
		}
		return o.Node()
	}
	mk := func(mon *engine.UpdateMonitor, node *obs.Node) dict.Dict {
		pol, ok := engine.ParsePolicy(s.Policy)
		if !ok {
			panic(fmt.Sprintf("workload: unknown retry policy %q", s.Policy))
		}
		ecfg := engine.Config{
			Monitor:          mon,
			Policy:           pol,
			HelpableFallback: s.Helpable,
			AttemptLimit:     s.AttemptLimit,
			Obs:              node,
			Faults:           s.Faults,
		}
		if s.PreemptFallback {
			ecfg.PreemptPoint = runtime.Gosched
		}
		if s.PreemptPoint != nil {
			ecfg.PreemptPoint = s.PreemptPoint
		}
		hcfg := s.HTM
		if hcfg.Faults == nil {
			hcfg.Faults = s.Faults
		}
		switch s.Structure {
		case "bst":
			return bst.New(bst.Config{
				Algorithm:       s.Algorithm,
				SearchOutsideTx: s.SearchOutsideTx,
				Engine:          ecfg,
				HTM:             hcfg,
			})
		case "abtree":
			return abtree.New(abtree.Config{
				Algorithm:       s.Algorithm,
				SearchOutsideTx: s.SearchOutsideTx,
				Engine:          ecfg,
				HTM:             hcfg,
			})
		default:
			panic(fmt.Sprintf("workload: unknown structure %q", s.Structure))
		}
	}
	if s.Shards <= 1 {
		return mk(nil, root()), o
	}
	scfg := shard.Config{
		Shards:  s.Shards,
		KeySpan: s.KeySpan,
		Atomic:  s.AtomicRQ,
		Obs:     root(),
		Faults:  s.Faults,
		New: func(i int, mon *engine.UpdateMonitor) dict.Dict {
			var node *obs.Node
			if o != nil {
				node = o.Node(obs.L("shard", strconv.Itoa(i)))
			}
			return mk(mon, node)
		},
	}
	switch s.Router {
	case "", "range":
	case "hash":
		r, err := shard.NewHashRouter(s.Shards)
		if err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
		scfg.Router = r
	case "adaptive":
		scfg.Rebalance = &shard.RebalanceConfig{
			CheckOps: s.RebalanceCheckOps,
			Ratio:    s.RebalanceRatio,
		}
	default:
		panic(fmt.Sprintf("workload: unknown router %q", s.Router))
	}
	d, err := shard.New(scfg)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err)) // only reachable via an invalid Spec
	}
	return d, o
}
