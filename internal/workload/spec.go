package workload

import (
	"fmt"

	"htmtree/internal/abtree"
	"htmtree/internal/bst"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/shard"
)

// Spec names one dictionary configuration for benchmarks and tests: a
// structure, a template algorithm, and an optional shard count. It is
// the shard-aware counterpart of constructing a tree directly, so sweep
// drivers (cmd/htmbench, bench_test.go) can enumerate configurations
// uniformly.
type Spec struct {
	// Structure is "bst" or "abtree".
	Structure string
	// Algorithm selects the template implementation.
	Algorithm engine.Algorithm
	// Shards partitions the key space across that many independent trees
	// (0 or 1 means unsharded).
	Shards int
	// KeySpan balances the partition over [0, KeySpan); set it to the
	// trial's key range. Ignored when unsharded; defaults to the full
	// key space.
	KeySpan uint64
	// SearchOutsideTx enables the Section 8 optimization.
	SearchOutsideTx bool
	// HTM overrides the simulated-HTM configuration.
	HTM htm.Config
}

// Name returns a compact label, e.g. "abtree/3-path/x8". An explicit
// Shards of 1 is labeled "/x1" so a shard sweep's baseline stays
// distinguishable from unsharded (Shards == 0) series.
func (s Spec) Name() string {
	n := s.Structure + "/" + s.Algorithm.String()
	if s.Shards >= 1 {
		n += fmt.Sprintf("/x%d", s.Shards)
	}
	return n
}

// New constructs a fresh dictionary instance described by the spec.
// It panics on an unknown structure name (specs are authored by sweep
// drivers, not end users).
func (s Spec) New() dict.Dict {
	mk := func() dict.Dict {
		switch s.Structure {
		case "bst":
			return bst.New(bst.Config{
				Algorithm:       s.Algorithm,
				SearchOutsideTx: s.SearchOutsideTx,
				HTM:             s.HTM,
			})
		case "abtree":
			return abtree.New(abtree.Config{
				Algorithm:       s.Algorithm,
				SearchOutsideTx: s.SearchOutsideTx,
				HTM:             s.HTM,
			})
		default:
			panic(fmt.Sprintf("workload: unknown structure %q", s.Structure))
		}
	}
	if s.Shards <= 1 {
		return mk()
	}
	d, err := shard.New(shard.Config{
		Shards:  s.Shards,
		KeySpan: s.KeySpan,
		New:     func(int) dict.Dict { return mk() },
	})
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err)) // only reachable via invalid Shards
	}
	return d
}
