// Package workload implements the microbenchmark methodology of Section
// 7.1 of Brown's paper: prefilled trees, light workloads (n update
// threads doing 50% inserts / 50% deletes on uniform keys) and heavy
// workloads (n-1 update threads plus one thread performing range queries
// whose lengths follow the ⌊x²·S⌋+1 distribution), timed trials
// measuring completed operations per second, and per-thread key-sum
// checksums validating every trial. An analytics workload (beyond the
// paper) swaps the heavy workload's range-query thread for one issuing
// aggregate queries over maintained subtree aggregates.
package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"htmtree/internal/batch"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/fault"
	"htmtree/internal/hist"
	"htmtree/internal/htm"
	"htmtree/internal/shard"
	"htmtree/internal/xrand"
)

// Kind selects the workload of Section 7.1.
type Kind uint8

// Workloads.
const (
	Light Kind = iota + 1 // n update threads
	Heavy                 // n-1 update threads + 1 range-query thread
	// Analytics is Heavy with the query thread issuing aggregate
	// queries (dict.AggHandle.RangeAgg) instead of range queries, over
	// the same ⌊x²·S⌋+1 length distribution: the PR 8 analytics mix.
	// The dictionary must implement aggregate queries (on a sharded
	// dictionary that additionally requires Atomic); a spec that does
	// not is a driver bug and panics.
	Analytics
)

// String returns the paper's name for the workload.
func (k Kind) String() string {
	switch k {
	case Light:
		return "light"
	case Heavy:
		return "heavy"
	case Analytics:
		return "analytics"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// StatsProvider is implemented by data structures that expose their
// engine and HTM statistics (used for the Figure 16 and Section 7.2
// tables).
type StatsProvider interface {
	OpStats() engine.OpStats
	HTMStats() htm.Stats
}

// Config describes one trial.
type Config struct {
	// Threads is the total number of worker threads n.
	Threads int
	// Duration is the measurement window (paper: one second per trial).
	Duration time.Duration
	// KeyRange is K: updates draw keys uniformly from [1, K].
	KeyRange uint64
	// RQSizeMax is S: range-query lengths are ⌊x²·S⌋+1 for uniform x.
	RQSizeMax uint64
	// Kind selects light or heavy.
	Kind Kind
	// Seed makes trials deterministic.
	Seed uint64
	// SkipPrefill leaves the structure empty at trial start.
	SkipPrefill bool

	// Dist selects the update threads' key distribution (default
	// DistUniform, the paper's methodology). DistZipf and DistHotRange
	// model skewed traffic that collapses a range-routed sharded tree
	// onto one shard.
	Dist KeyDist
	// ZipfTheta is the Zipf parameter in (0, 1) for DistZipf (default
	// 0.99, the YCSB convention; larger is more skewed).
	ZipfTheta float64
	// HotOpFrac and HotKeyFrac parameterize DistHotRange: HotOpFrac of
	// the operations target the lowest HotKeyFrac slice of the key range
	// (defaults DefaultHotOpFrac and DefaultHotKeyFrac).
	HotOpFrac, HotKeyFrac float64
	// PinUpdaters pins each update thread to one home shard: thread i
	// draws its keys from shard (i mod NumShards)'s key bounds, so
	// updaters never contend across shard boundaries — the
	// conflict-domain win sharding exists for, made explicit. Requires a
	// dictionary exposing NumShards/Bounds with contiguous per-shard
	// bounds (a range-routed shard.Dict); otherwise threads fall back to
	// the full key range.
	PinUpdaters bool
	// BatchOps switches update threads to the asynchronous batched
	// path: each thread enqueues its inserts/deletes into a batch
	// pipeline flushed every BatchOps operations, settling the futures
	// (and the key-sum accounting) after each flush. 0 or 1 keeps the
	// paper's per-operation dispatch. Range-query threads are never
	// batched.
	BatchOps int
	// MeasureLatency captures per-operation latency into per-thread
	// histograms (internal/hist; zero-allocation on the operation path),
	// merged into Result.Latency / Result.RQLatency after the trial.
	// Tail quantiles are the point of the oversubscription experiments:
	// throughput barely distinguishes a convoying fallback lock from a
	// helpable one, but p99.9 does. Ignored by batched updaters, whose
	// per-operation enqueue time is not an operation latency.
	MeasureLatency bool
	// YieldEvery makes each worker yield the processor (runtime.Gosched)
	// between operations, every N completed operations; 0 never yields.
	// Oversubscribed latency trials set 1: a worker that runs operations
	// back to back keeps the processor for its full scheduling quantum
	// and is then preempted mid-operation, charging a multi-quantum
	// run-queue wait to whichever operation was in flight — a
	// procs-bound noise population that lands at the p999 rank in every
	// variant and masks the effect under test. Yielding between
	// operations moves that wait between timed windows.
	YieldEvery int
	// Liveness, when non-nil, receives one OpDone per completed
	// operation from every worker. Chaos trials watch it to prove
	// system-wide progress continues while an injected fault stalls or
	// kills an announced fallback owner.
	Liveness *fault.Liveness
	// Faults, when non-nil, arms fault injection in the batching
	// pipeline each batched updater builds (PointBatchFlush). Faults in
	// the dictionary itself are armed at construction via Spec.Faults.
	Faults *fault.Plan
}

// ShardInfo is implemented by sharded dictionaries that expose their
// partition layout (shard.Dict). PinUpdaters uses it to give each
// updater a home shard.
type ShardInfo interface {
	NumShards() int
	Bounds(i int) (lo, hi uint64)
}

// Result reports one trial.
type Result struct {
	// Ops is the number of operations completed in the window.
	Ops uint64
	// UpdateOps, RQOps and AggOps split Ops by operation class
	// (AggOps counts the Analytics workload's aggregate queries).
	UpdateOps, RQOps, AggOps uint64
	// Throughput is Ops per second.
	Throughput float64
	// PathStats counts operation completions per execution path over the
	// whole run (including prefill).
	PathStats engine.OpStats
	// HTMStats counts transaction commits/aborts per path and cause.
	HTMStats htm.Stats
	// KeySumOK reports whether the Section 7.1 checksum validated.
	KeySumOK bool
	// FinalSize is the number of keys at the end of the trial.
	FinalSize uint64
	// Rebalance reports live shard-rebalancing activity (zero unless
	// the dictionary is a shard.Dict with rebalancing enabled).
	Rebalance shard.RebalanceStats
	// Batch reports group-execution activity (zero unless the
	// dictionary is a shard.Dict and Config.BatchOps batched the
	// updaters).
	Batch shard.BatchStats
	// Latency and RQLatency are the merged per-operation latency
	// histograms of the update and range-query threads (nanoseconds;
	// nil unless Config.MeasureLatency).
	Latency, RQLatency *hist.Hist
	// MaxShardShare is the fraction of the trial's per-shard engine
	// operations served by the busiest shard (prefill excluded): 1/N is
	// perfectly balanced, 1.0 is total collapse onto one shard. Zero
	// when the dictionary is not sharded. This is the router-quality
	// metric: a skewed key distribution drives it toward 1 under static
	// range routing, while hash and adaptive routing hold it near 1/N —
	// on multi-core hosts the difference is exactly the serialized
	// fraction of the conflict domain.
	MaxShardShare float64
}

// shardOpTotals returns each shard's cumulative engine operation count.
func shardOpTotals(sd *shard.Dict) []uint64 {
	tot := make([]uint64, sd.NumShards())
	for i := range tot {
		if sp, ok := sd.Shard(i).(StatsProvider); ok {
			tot[i] = sp.OpStats().Total()
		}
	}
	return tot
}

// delta accumulates one worker thread's contribution to a trial. The
// embedded histograms are recorded by the owning thread only and merged
// after every worker stopped (they also pad deltas apart, so the hot
// counters of adjacent threads no longer share cache lines).
type delta struct {
	ops, updates, rqs, aggs uint64
	sum                     int64
	count                   int64
	lat                     hist.Hist
}

// runBatchedUpdater is an update thread's loop when Config.BatchOps
// batches operations: inserts and deletes enqueue into a pipeline over
// the thread's handle and settle — futures waited, key-sum deltas
// booked — every BatchOps operations. The pipeline flushes by size
// (the explicit Flush only drains the final partial batch), so the
// measured path is sorted group execution through dict.GroupExecutor
// when the dictionary supports it.
func runBatchedUpdater(h dict.Handle, cfg Config, rng *xrand.State, gen func(*xrand.State) uint64, st *delta, stop *atomic.Bool) {
	pl := batch.New(h, batch.Config{MaxOps: cfg.BatchOps, Faults: cfg.Faults})
	type rec struct {
		k   uint64
		ins bool
		pr  *batch.PointPromise
	}
	recs := make([]rec, 0, cfg.BatchOps)
	settle := func() {
		pl.Flush()
		for _, rc := range recs {
			res := rc.pr.Wait()
			if rc.ins && !res.OK {
				st.sum += int64(rc.k)
				st.count++
			}
			if !rc.ins && res.OK {
				st.sum -= int64(rc.k)
				st.count--
			}
		}
		recs = recs[:0]
	}
	for !stop.Load() {
		k := gen(rng)
		if rng.Next()&1 == 0 {
			recs = append(recs, rec{k, true, pl.Insert(k, k)})
		} else {
			recs = append(recs, rec{k, false, pl.Delete(k)})
		}
		st.updates++
		st.ops++
		cfg.Liveness.OpDone()
		if len(recs) >= cfg.BatchOps {
			settle()
		}
	}
	settle()
}

// Prefill inserts each key of [1, KeyRange] independently with
// probability 1/2 — the stationary distribution of the paper's 50/50
// update prefill — in a shuffled order (sorted insertion would build a
// degenerate, path-shaped BST; the paper's random-key prefill yields
// logarithmic depth with high probability). It returns the sum and
// count of inserted keys.
func Prefill(d dict.Dict, cfg Config) (sum, count uint64) {
	workers := cfg.Threads
	if workers < 1 {
		workers = 1
	}
	if workers > 8 {
		workers = 8
	}
	// Select the random half, then shuffle the insertion order.
	rng := xrand.New(cfg.Seed^0xda7a5e7, 0)
	keys := make([]uint64, 0, cfg.KeyRange/2+1)
	for k := uint64(1); k <= cfg.KeyRange; k++ {
		if rng.Next()&1 == 0 {
			keys = append(keys, k)
		}
	}
	for i := len(keys) - 1; i > 0; i-- {
		j := int(rng.Uint64n(uint64(i + 1)))
		keys[i], keys[j] = keys[j], keys[i]
	}

	sums := make([]uint64, workers)
	counts := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := d.NewHandle()
			for i := w; i < len(keys); i += workers {
				k := keys[i]
				if _, existed := h.Insert(k, k); !existed {
					sums[w] += k
					counts[w]++
				}
				// Prefill counts toward the liveness watchdog too: with
				// faults armed, a stall can fire during prefill, and its
				// progress window needs the peers' inserts to be visible.
				cfg.Liveness.OpDone()
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		sum += sums[w]
		count += counts[w]
	}
	return sum, count
}

// RQLen draws a range-query length from the paper's ⌊x²·S⌋+1
// distribution: many small queries, a few very large ones.
func RQLen(rng *xrand.State, s uint64) uint64 {
	x := rng.Float64()
	return uint64(x*x*float64(s)) + 1
}

// Run executes one trial: prefill, timed measurement, key-sum
// validation.
func Run(d dict.Dict, cfg Config) Result {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 10000
	}
	if cfg.RQSizeMax == 0 {
		cfg.RQSizeMax = 1000
	}
	if cfg.Kind == 0 {
		cfg.Kind = Light
	}

	var baseSum, baseCount uint64
	if !cfg.SkipPrefill {
		baseSum, baseCount = Prefill(d, cfg)
	}

	// Shared Zipf state (O(KeyRange) harmonic precomputation, done once
	// per trial; draws are O(1) and contention-free).
	var zg *zipfGen
	if cfg.Dist == DistZipf {
		zg = newZipfGen(cfg.KeyRange, cfg.ZipfTheta)
	}

	// Per-shard operation baseline, so MaxShardShare reflects only the
	// measured window, not the (uniform) prefill.
	var shardBase []uint64
	if sd, ok := d.(*shard.Dict); ok {
		shardBase = shardOpTotals(sd)
	}

	var stop atomic.Bool
	deltas := make([]delta, cfg.Threads)
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	start := make(chan struct{})

	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(i int) {
			defer wg.Done()
			h := d.NewHandle()
			rng := xrand.New(cfg.Seed, uint64(i)+1)
			isRQ := cfg.Kind == Heavy && i == cfg.Threads-1
			isAgg := cfg.Kind == Analytics && i == cfg.Threads-1
			var ah dict.AggHandle
			if isAgg {
				var ok bool
				if ah, ok = h.(dict.AggHandle); !ok {
					panic(fmt.Sprintf("workload: Analytics needs aggregate queries, but %T does not implement dict.AggHandle", h))
				}
			}
			klo, khi := updaterInterval(d, cfg, i)
			gen := keyGen(cfg, zg, klo, khi)
			var out []dict.KV
			ready.Done()
			<-start
			st := &deltas[i]
			if !isRQ && !isAgg && cfg.BatchOps > 1 {
				runBatchedUpdater(h, cfg, rng, gen, st, &stop)
				return
			}
			measure := cfg.MeasureLatency
			for !stop.Load() {
				var t0 time.Time
				if measure {
					t0 = time.Now()
				}
				if isAgg {
					lo := rng.Uint64n(cfg.KeyRange) + 1
					if _, err := ah.RangeAgg(lo, lo+RQLen(rng, cfg.RQSizeMax)); err != nil {
						panic(fmt.Sprintf("workload: aggregate query failed: %v", err))
					}
					st.aggs++
				} else if isRQ {
					lo := rng.Uint64n(cfg.KeyRange) + 1
					out = h.RangeQuery(lo, lo+RQLen(rng, cfg.RQSizeMax), out[:0])
					st.rqs++
				} else {
					k := gen(rng)
					if rng.Next()&1 == 0 {
						if _, existed := h.Insert(k, k); !existed {
							st.sum += int64(k)
							st.count++
						}
					} else {
						if _, existed := h.Delete(k); existed {
							st.sum -= int64(k)
							st.count--
						}
					}
					st.updates++
				}
				if measure {
					st.lat.Record(uint64(time.Since(t0)))
				}
				st.ops++
				cfg.Liveness.OpDone()
				if cfg.YieldEvery > 0 && st.ops%uint64(cfg.YieldEvery) == 0 {
					runtime.Gosched()
				}
			}
		}(i)
	}
	ready.Wait()
	close(start)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()

	var res Result
	if cfg.MeasureLatency {
		res.Latency = &hist.Hist{}
		res.RQLatency = &hist.Hist{}
	}
	var deltaSum, deltaCount int64
	for i := range deltas {
		res.Ops += deltas[i].ops
		res.UpdateOps += deltas[i].updates
		res.RQOps += deltas[i].rqs
		res.AggOps += deltas[i].aggs
		deltaSum += deltas[i].sum
		deltaCount += deltas[i].count
		if cfg.MeasureLatency {
			// The heavy and analytics workloads' dedicated query thread
			// is the last one; its histogram holds query latencies,
			// every other thread's holds update latencies.
			if (cfg.Kind == Heavy || cfg.Kind == Analytics) && i == cfg.Threads-1 {
				res.RQLatency.Merge(&deltas[i].lat)
			} else {
				res.Latency.Merge(&deltas[i].lat)
			}
		}
	}
	res.Throughput = float64(res.Ops) / cfg.Duration.Seconds()

	sum, count := d.KeySum()
	res.FinalSize = count
	res.KeySumOK = int64(sum) == int64(baseSum)+deltaSum &&
		int64(count) == int64(baseCount)+deltaCount

	if sp, ok := d.(StatsProvider); ok {
		res.PathStats = sp.OpStats()
		res.HTMStats = sp.HTMStats()
	}
	if sd, ok := d.(*shard.Dict); ok {
		res.Rebalance = sd.RebalanceStats()
		res.Batch = sd.BatchStats()
		tot := shardOpTotals(sd)
		var sum, max uint64
		for i := range tot {
			delta := tot[i] - shardBase[i]
			sum += delta
			if delta > max {
				max = delta
			}
		}
		if sum > 0 {
			res.MaxShardShare = float64(max) / float64(sum)
		}
	}
	return res
}

// updaterInterval returns the inclusive key interval [lo, hi] update
// thread i draws from: the full [1, KeyRange] by default, or the
// thread's home-shard slice of it when cfg.PinUpdaters and the
// dictionary exposes its partition layout. An empty intersection
// (a shard entirely outside the trial's key range, or hash routing's
// full-space bounds) falls back to the full range.
func updaterInterval(d dict.Dict, cfg Config, i int) (lo, hi uint64) {
	lo, hi = 1, cfg.KeyRange
	if !cfg.PinUpdaters {
		return lo, hi
	}
	si, ok := d.(ShardInfo)
	if !ok {
		return lo, hi
	}
	n := si.NumShards()
	if n < 1 {
		return lo, hi
	}
	blo, bhi := si.Bounds(i % n) // bhi exclusive
	if blo < 1 {
		blo = 1
	}
	if bhi > cfg.KeyRange+1 || bhi == 0 {
		bhi = cfg.KeyRange + 1
	}
	if blo >= bhi {
		return lo, hi // empty slice: stay unpinned
	}
	return blo, bhi - 1
}
