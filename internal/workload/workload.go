// Package workload implements the microbenchmark methodology of Section
// 7.1 of Brown's paper: prefilled trees, light workloads (n update
// threads doing 50% inserts / 50% deletes on uniform keys) and heavy
// workloads (n-1 update threads plus one thread performing range queries
// whose lengths follow the ⌊x²·S⌋+1 distribution), timed trials
// measuring completed operations per second, and per-thread key-sum
// checksums validating every trial.
package workload

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/xrand"
)

// Kind selects the workload of Section 7.1.
type Kind uint8

// Workloads.
const (
	Light Kind = iota + 1 // n update threads
	Heavy                 // n-1 update threads + 1 range-query thread
)

// String returns the paper's name for the workload.
func (k Kind) String() string {
	switch k {
	case Light:
		return "light"
	case Heavy:
		return "heavy"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// StatsProvider is implemented by data structures that expose their
// engine and HTM statistics (used for the Figure 16 and Section 7.2
// tables).
type StatsProvider interface {
	OpStats() engine.OpStats
	HTMStats() htm.Stats
}

// Config describes one trial.
type Config struct {
	// Threads is the total number of worker threads n.
	Threads int
	// Duration is the measurement window (paper: one second per trial).
	Duration time.Duration
	// KeyRange is K: updates draw keys uniformly from [1, K].
	KeyRange uint64
	// RQSizeMax is S: range-query lengths are ⌊x²·S⌋+1 for uniform x.
	RQSizeMax uint64
	// Kind selects light or heavy.
	Kind Kind
	// Seed makes trials deterministic.
	Seed uint64
	// SkipPrefill leaves the structure empty at trial start.
	SkipPrefill bool
}

// Result reports one trial.
type Result struct {
	// Ops is the number of operations completed in the window.
	Ops uint64
	// UpdateOps and RQOps split Ops by operation class.
	UpdateOps, RQOps uint64
	// Throughput is Ops per second.
	Throughput float64
	// PathStats counts operation completions per execution path over the
	// whole run (including prefill).
	PathStats engine.OpStats
	// HTMStats counts transaction commits/aborts per path and cause.
	HTMStats htm.Stats
	// KeySumOK reports whether the Section 7.1 checksum validated.
	KeySumOK bool
	// FinalSize is the number of keys at the end of the trial.
	FinalSize uint64
}

// Prefill inserts each key of [1, KeyRange] independently with
// probability 1/2 — the stationary distribution of the paper's 50/50
// update prefill — in a shuffled order (sorted insertion would build a
// degenerate, path-shaped BST; the paper's random-key prefill yields
// logarithmic depth with high probability). It returns the sum and
// count of inserted keys.
func Prefill(d dict.Dict, cfg Config) (sum, count uint64) {
	workers := cfg.Threads
	if workers < 1 {
		workers = 1
	}
	if workers > 8 {
		workers = 8
	}
	// Select the random half, then shuffle the insertion order.
	rng := xrand.New(cfg.Seed^0xda7a5e7, 0)
	keys := make([]uint64, 0, cfg.KeyRange/2+1)
	for k := uint64(1); k <= cfg.KeyRange; k++ {
		if rng.Next()&1 == 0 {
			keys = append(keys, k)
		}
	}
	for i := len(keys) - 1; i > 0; i-- {
		j := int(rng.Uint64n(uint64(i + 1)))
		keys[i], keys[j] = keys[j], keys[i]
	}

	sums := make([]uint64, workers)
	counts := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := d.NewHandle()
			for i := w; i < len(keys); i += workers {
				k := keys[i]
				if _, existed := h.Insert(k, k); !existed {
					sums[w] += k
					counts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		sum += sums[w]
		count += counts[w]
	}
	return sum, count
}

// RQLen draws a range-query length from the paper's ⌊x²·S⌋+1
// distribution: many small queries, a few very large ones.
func RQLen(rng *xrand.State, s uint64) uint64 {
	x := rng.Float64()
	return uint64(x*x*float64(s)) + 1
}

// Run executes one trial: prefill, timed measurement, key-sum
// validation.
func Run(d dict.Dict, cfg Config) Result {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	if cfg.KeyRange == 0 {
		cfg.KeyRange = 10000
	}
	if cfg.RQSizeMax == 0 {
		cfg.RQSizeMax = 1000
	}
	if cfg.Kind == 0 {
		cfg.Kind = Light
	}

	var baseSum, baseCount uint64
	if !cfg.SkipPrefill {
		baseSum, baseCount = Prefill(d, cfg)
	}

	var stop atomic.Bool
	type delta struct {
		ops, updates, rqs uint64
		sum               int64
		count             int64
	}
	deltas := make([]delta, cfg.Threads)
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	start := make(chan struct{})

	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(i int) {
			defer wg.Done()
			h := d.NewHandle()
			rng := xrand.New(cfg.Seed, uint64(i)+1)
			isRQ := cfg.Kind == Heavy && i == cfg.Threads-1
			var out []dict.KV
			ready.Done()
			<-start
			st := &deltas[i]
			for !stop.Load() {
				if isRQ {
					lo := rng.Uint64n(cfg.KeyRange) + 1
					out = h.RangeQuery(lo, lo+RQLen(rng, cfg.RQSizeMax), out[:0])
					st.rqs++
				} else {
					k := rng.Uint64n(cfg.KeyRange) + 1
					if rng.Next()&1 == 0 {
						if _, existed := h.Insert(k, k); !existed {
							st.sum += int64(k)
							st.count++
						}
					} else {
						if _, existed := h.Delete(k); existed {
							st.sum -= int64(k)
							st.count--
						}
					}
					st.updates++
				}
				st.ops++
			}
		}(i)
	}
	ready.Wait()
	close(start)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()

	var res Result
	var deltaSum, deltaCount int64
	for i := range deltas {
		res.Ops += deltas[i].ops
		res.UpdateOps += deltas[i].updates
		res.RQOps += deltas[i].rqs
		deltaSum += deltas[i].sum
		deltaCount += deltas[i].count
	}
	res.Throughput = float64(res.Ops) / cfg.Duration.Seconds()

	sum, count := d.KeySum()
	res.FinalSize = count
	res.KeySumOK = int64(sum) == int64(baseSum)+deltaSum &&
		int64(count) == int64(baseCount)+deltaCount

	if sp, ok := d.(StatsProvider); ok {
		res.PathStats = sp.OpStats()
		res.HTMStats = sp.HTMStats()
	}
	return res
}
