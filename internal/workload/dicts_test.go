package workload

import (
	"math/rand"
	"sync"
	"testing"

	"htmtree/internal/abtree"
	"htmtree/internal/bst"
	"htmtree/internal/citrus"
	"htmtree/internal/dict"
	"htmtree/internal/engine"
	"htmtree/internal/htm"
	"htmtree/internal/hybridnorec"
	"htmtree/internal/kcas"
)

// everyDict enumerates one instance of every dictionary in the
// repository under its default (3-path where applicable) configuration.
func everyDict() map[string]dict.Dict {
	return map[string]dict.Dict{
		"bst":          bst.New(bst.Config{Algorithm: engine.AlgThreePath}),
		"abtree":       abtree.New(abtree.Config{Algorithm: engine.AlgThreePath}),
		"citrus":       citrus.New(citrus.Config{Algorithm: engine.AlgThreePath}),
		"kcas-list":    kcas.NewList(kcas.ListConfig{Algorithm: engine.AlgThreePath}),
		"hybrid-norec": hybridnorec.NewBST(htm.Config{}, 0),
	}
}

// TestDictContractSequential runs one randomized operation stream
// against every dictionary and a map oracle: all implementations must
// agree on every return value.
func TestDictContractSequential(t *testing.T) {
	t.Parallel()
	for name, d := range everyDict() {
		name, d := name, d
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := d.NewHandle()
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(77))
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(128)) + 1
				switch rng.Intn(4) {
				case 0, 1:
					v := rng.Uint64() >> 1
					old, existed := h.Insert(k, v)
					wantOld, wantEx := oracle[k], false
					if _, ok := oracle[k]; ok {
						wantEx = true
					}
					if existed != wantEx || (existed && old != wantOld) {
						t.Fatalf("op %d Insert(%d): (%d,%v) want (%d,%v)",
							i, k, old, existed, wantOld, wantEx)
					}
					oracle[k] = v
				case 2:
					old, existed := h.Delete(k)
					wantOld, wantEx := oracle[k], false
					if _, ok := oracle[k]; ok {
						wantEx = true
					}
					if existed != wantEx || (existed && old != wantOld) {
						t.Fatalf("op %d Delete(%d): (%d,%v) want (%d,%v)",
							i, k, old, existed, wantOld, wantEx)
					}
					delete(oracle, k)
				case 3:
					got, found := h.Search(k)
					want, ok := oracle[k]
					if found != ok || (found && got != want) {
						t.Fatalf("op %d Search(%d): (%d,%v) want (%d,%v)",
							i, k, got, found, want, ok)
					}
				}
			}
			// Final state: KeySum and a full range query must agree
			// with the oracle.
			var wantSum, wantCount uint64
			for k := range oracle {
				wantSum += k
				wantCount++
			}
			sum, count := d.KeySum()
			if sum != wantSum || count != wantCount {
				t.Fatalf("KeySum (%d,%d), oracle (%d,%d)", sum, count, wantSum, wantCount)
			}
			out := h.RangeQuery(1, 200, nil)
			if uint64(len(out)) != wantCount {
				t.Fatalf("full RQ: %d pairs, oracle %d", len(out), wantCount)
			}
			for i, kv := range out {
				if i > 0 && out[i-1].Key >= kv.Key {
					t.Fatal("RQ unsorted")
				}
				if want := oracle[kv.Key]; want != kv.Val {
					t.Fatalf("RQ pair (%d,%d) disagrees with oracle %d", kv.Key, kv.Val, want)
				}
			}
		})
	}
}

// TestDictContractConcurrentKeySum applies the paper's key-sum
// methodology uniformly to every dictionary.
func TestDictContractConcurrentKeySum(t *testing.T) {
	t.Parallel()
	for name, d := range everyDict() {
		name, d := name, d
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const goroutines = 4
			const perG = 1500
			sums := make([]int64, goroutines)
			counts := make([]int64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := d.NewHandle()
					rng := rand.New(rand.NewSource(int64(g)*13 + 7))
					for i := 0; i < perG; i++ {
						k := uint64(rng.Intn(96)) + 1
						if rng.Intn(2) == 0 {
							if _, existed := h.Insert(k, k); !existed {
								sums[g] += int64(k)
								counts[g]++
							}
						} else {
							if _, existed := h.Delete(k); existed {
								sums[g] -= int64(k)
								counts[g]--
							}
						}
					}
				}(g)
			}
			wg.Wait()
			var wantSum, wantCount int64
			for g := range sums {
				wantSum += sums[g]
				wantCount += counts[g]
			}
			sum, count := d.KeySum()
			if int64(sum) != wantSum || int64(count) != wantCount {
				t.Fatalf("%s key-sum: (%d,%d), threads (%d,%d)",
					name, sum, count, wantSum, wantCount)
			}
		})
	}
}
