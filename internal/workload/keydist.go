package workload

import (
	"fmt"
	"math"

	"htmtree/internal/xrand"
)

// Hot-range defaults: 90% of the operations land in the lowest 1/8 of
// the key range — one shard's worth under the default 8-way range
// split.
const (
	DefaultHotOpFrac  = 0.9
	DefaultHotKeyFrac = 0.125
)

// KeyDist selects the key distribution update threads draw from.
type KeyDist uint8

// Key distributions.
const (
	// DistUniform draws keys uniformly from the key range (the paper's
	// Section 7.1 methodology; the default).
	DistUniform KeyDist = iota
	// DistZipf draws keys Zipfian with parameter Config.ZipfTheta: key k
	// is drawn with probability proportional to 1/k^theta, so the low
	// keys are disproportionately hot. Under range-routed sharding this
	// concentrates almost all updates on the first shard — the
	// skew-collapse scenario hash and adaptive routing exist for.
	DistZipf
	// DistHotRange sends Config.HotOpFrac of the operations into the
	// lowest Config.HotKeyFrac slice of the key range and spreads the
	// rest uniformly — an adversarial single-hot-shard workload.
	DistHotRange
)

// String returns the distribution's benchmark label.
func (d KeyDist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistZipf:
		return "zipf"
	case DistHotRange:
		return "hotrange"
	default:
		return fmt.Sprintf("dist(%d)", uint8(d))
	}
}

// zipfGen draws ranks in [1, n] Zipfian with parameter theta in (0, 1),
// using the Gray et al. quick-Zipf inversion popularized by YCSB: O(n)
// precomputation of the harmonic normalizer, O(1) per draw. The
// generator is immutable after construction and safe to share across
// worker goroutines (each supplies its own PRNG).
type zipfGen struct {
	n            uint64
	theta        float64
	alpha        float64
	zetan        float64
	eta          float64
	thresh1, th2 float64
}

func newZipfGen(n uint64, theta float64) *zipfGen {
	if n < 1 {
		n = 1
	}
	if theta <= 0 || theta >= 1 || math.IsNaN(theta) {
		theta = 0.99
	}
	zetan := 0.0
	for i := uint64(1); i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	alpha := 1 / (1 - theta)
	eta := (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
	return &zipfGen{
		n:       n,
		theta:   theta,
		alpha:   alpha,
		zetan:   zetan,
		eta:     eta,
		thresh1: 1 / zetan,
		th2:     (1 + math.Pow(0.5, theta)) / zetan,
	}
}

// draw returns a rank in [1, n].
func (z *zipfGen) draw(rng *xrand.State) uint64 {
	u := rng.Float64()
	if u < z.thresh1 {
		return 1
	}
	if u < z.th2 {
		return 2
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		return z.n
	}
	return r + 1
}

// keyGen produces the update keys for one worker: a draw function over
// the worker's key interval [lo, hi] (inclusive), following cfg.Dist.
// zg is the shared Zipf generator (nil unless cfg.Dist == DistZipf).
func keyGen(cfg Config, zg *zipfGen, lo, hi uint64) func(rng *xrand.State) uint64 {
	size := hi - lo + 1
	switch cfg.Dist {
	case DistZipf:
		// Ranks are drawn over the full generator and folded into the
		// worker's interval, so a pinned worker sees the same shape.
		return func(rng *xrand.State) uint64 {
			r := zg.draw(rng) - 1
			if r >= size {
				r %= size
			}
			return lo + r
		}
	case DistHotRange:
		opFrac := cfg.HotOpFrac
		if opFrac <= 0 || opFrac > 1 || math.IsNaN(opFrac) {
			opFrac = DefaultHotOpFrac
		}
		keyFrac := cfg.HotKeyFrac
		if keyFrac <= 0 || keyFrac > 1 || math.IsNaN(keyFrac) {
			keyFrac = DefaultHotKeyFrac
		}
		hot := uint64(float64(size) * keyFrac)
		if hot == 0 {
			hot = 1
		}
		return func(rng *xrand.State) uint64 {
			if rng.Float64() < opFrac {
				return lo + rng.Uint64n(hot)
			}
			return lo + rng.Uint64n(size)
		}
	default:
		return func(rng *xrand.State) uint64 {
			return lo + rng.Uint64n(size)
		}
	}
}
