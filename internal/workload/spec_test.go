package workload

import (
	"testing"

	"htmtree/internal/engine"
	"htmtree/internal/shard"
)

func TestSpecNames(t *testing.T) {
	t.Parallel()
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Structure: "bst", Algorithm: engine.AlgNonHTM}, "bst/non-htm"},
		{Spec{Structure: "abtree", Algorithm: engine.AlgThreePath, Shards: 8}, "abtree/3-path/x8"},
		{Spec{Structure: "bst", Algorithm: engine.AlgTLE, Shards: 1}, "bst/tle/x1"},
	}
	for _, c := range cases {
		if got := c.spec.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

// TestSpecRunsTrials drives a short trial through every structure,
// sharded and not, and requires the key-sum checksum to validate — the
// shard layer must keep the workload contract intact.
func TestSpecRunsTrials(t *testing.T) {
	t.Parallel()
	for _, structure := range []string{"bst", "abtree"} {
		for _, shards := range []int{1, 4} {
			shards := shards
			spec := Spec{
				Structure: structure,
				Algorithm: engine.AlgThreePath,
				Shards:    shards,
				KeySpan:   2048,
			}
			t.Run(spec.Name(), func(t *testing.T) {
				t.Parallel()
				d := spec.New()
				if shards > 1 {
					sd, ok := d.(*shard.Dict)
					if !ok || sd.NumShards() != shards {
						t.Fatalf("Spec.New() did not build a %d-shard dictionary", shards)
					}
				}
				res := Run(d, Config{
					Threads:   4,
					Duration:  20_000_000, // 20ms
					KeyRange:  2048,
					RQSizeMax: 256,
					Kind:      Heavy,
					Seed:      42,
				})
				if !res.KeySumOK {
					t.Fatal("key-sum validation failed")
				}
				if res.Ops == 0 {
					t.Fatal("trial completed no operations")
				}
				if res.PathStats.Total() == 0 {
					t.Fatal("no per-path stats aggregated")
				}
			})
		}
	}
}
