package workload

import (
	"testing"
	"time"

	"htmtree/internal/abtree"
	"htmtree/internal/bst"
	"htmtree/internal/engine"
	"htmtree/internal/xrand"
)

func TestPrefillHalfFull(t *testing.T) {
	t.Parallel()
	tr := bst.New(bst.Config{Algorithm: engine.AlgThreePath})
	cfg := Config{Threads: 4, KeyRange: 20000, Seed: 42}
	sum, count := Prefill(tr, cfg)
	gotSum, gotCount := tr.KeySum()
	if gotSum != sum || gotCount != count {
		t.Fatalf("prefill bookkeeping mismatch: tree (%d,%d) vs returned (%d,%d)",
			gotSum, gotCount, sum, count)
	}
	// Binomial(20000, 1/2): far outside [9000,11000] is astronomically
	// unlikely.
	if count < 9000 || count > 11000 {
		t.Fatalf("prefill count = %d, want about half of 20000", count)
	}
}

func TestRQLenDistribution(t *testing.T) {
	t.Parallel()
	rng := xrand.New(7, 0)
	const s = 1000
	var small, large int
	for i := 0; i < 10000; i++ {
		l := RQLen(rng, s)
		if l < 1 || l > s {
			t.Fatalf("RQLen = %d outside [1,%d]", l, s)
		}
		if l <= s/10 {
			small++
		}
		if l > s/2 {
			large++
		}
	}
	// x^2 biases toward small: P(len <= S/10) = sqrt(0.1) ~ 31.6%,
	// P(len > S/2) = 1-sqrt(0.5) ~ 29.3%.
	if small < 2500 || large > 3500 {
		t.Fatalf("distribution shape off: small=%d large=%d of 10000", small, large)
	}
}

func TestRunLightTrialValidates(t *testing.T) {
	t.Parallel()
	tr := bst.New(bst.Config{Algorithm: engine.AlgThreePath})
	res := Run(tr, Config{
		Threads:  4,
		Duration: 150 * time.Millisecond,
		KeyRange: 1024,
		Kind:     Light,
		Seed:     1,
	})
	if !res.KeySumOK {
		t.Fatal("key-sum validation failed")
	}
	if res.Ops == 0 || res.Throughput == 0 {
		t.Fatalf("no operations measured: %+v", res)
	}
	if res.RQOps != 0 {
		t.Fatalf("light workload performed %d range queries", res.RQOps)
	}
	if res.PathStats.Total() == 0 {
		t.Fatal("no path statistics collected")
	}
}

func TestRunHeavyTrialValidates(t *testing.T) {
	t.Parallel()
	tr := abtree.New(abtree.Config{Algorithm: engine.AlgThreePath})
	res := Run(tr, Config{
		Threads:   4,
		Duration:  150 * time.Millisecond,
		KeyRange:  4096,
		RQSizeMax: 2000,
		Kind:      Heavy,
		Seed:      2,
	})
	if !res.KeySumOK {
		t.Fatal("key-sum validation failed")
	}
	if res.RQOps == 0 {
		t.Fatal("heavy workload performed no range queries")
	}
	if res.UpdateOps == 0 {
		t.Fatal("heavy workload performed no updates")
	}
}

func TestRunAllAlgorithmsShort(t *testing.T) {
	t.Parallel()
	for _, alg := range engine.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			tr := bst.New(bst.Config{Algorithm: alg})
			res := Run(tr, Config{
				Threads:  2,
				Duration: 60 * time.Millisecond,
				KeyRange: 256,
				Kind:     Light,
				Seed:     3,
			})
			if !res.KeySumOK {
				t.Fatalf("%v: key-sum validation failed", alg)
			}
		})
	}
}

// TestBatchedUpdatersValidate runs a short batched-updater trial on a
// sharded dictionary: the key-sum checksum must still balance (futures
// report exact per-op results even though execution is reordered and
// grouped), and the group-execution counters must show the batched
// path was actually taken.
func TestBatchedUpdatersValidate(t *testing.T) {
	t.Parallel()
	spec := Spec{Structure: "abtree", Algorithm: engine.AlgThreePath, Shards: 8, KeySpan: 4096}
	res := Run(spec.New(), Config{
		Threads:  4,
		Duration: 50 * time.Millisecond,
		KeyRange: 4096,
		Kind:     Light,
		Seed:     42,
		BatchOps: 32,
	})
	if !res.KeySumOK {
		t.Fatalf("batched trial failed key-sum validation: %+v", res)
	}
	if res.Batch.Ops == 0 || res.Batch.Groups == 0 {
		t.Fatalf("batched trial never exercised group execution: %+v", res.Batch)
	}
	if res.UpdateOps == 0 {
		t.Fatal("no updates completed")
	}
	// Sorted 32-op batches over 8 shards must amortize routing below
	// one lookup per op.
	if res.Batch.RouterLookups >= res.Batch.Ops {
		t.Fatalf("no routing amortization: %d lookups for %d ops",
			res.Batch.RouterLookups, res.Batch.Ops)
	}
}

// TestRunMeasuresLatency checks the per-operation latency capture: with
// MeasureLatency set, every update lands in Result.Latency and every
// range query in Result.RQLatency, with exact counts (the capture path
// is per-thread and merged once, so nothing is sampled or dropped) and
// sane quantile ordering.
func TestRunMeasuresLatency(t *testing.T) {
	t.Parallel()
	tr := bst.New(bst.Config{Algorithm: engine.AlgTLE})
	res := Run(tr, Config{
		Threads:        4,
		Duration:       120 * time.Millisecond,
		KeyRange:       2048,
		RQSizeMax:      500,
		Kind:           Heavy,
		Seed:           9,
		MeasureLatency: true,
	})
	if !res.KeySumOK {
		t.Fatal("key-sum validation failed")
	}
	if res.Latency == nil || res.RQLatency == nil {
		t.Fatal("latency histograms not populated")
	}
	if got := res.Latency.Count(); got != res.UpdateOps {
		t.Fatalf("update latency count = %d, want %d (one sample per update)",
			got, res.UpdateOps)
	}
	if got := res.RQLatency.Count(); got != res.RQOps {
		t.Fatalf("RQ latency count = %d, want %d (one sample per range query)",
			got, res.RQOps)
	}
	p50, p99 := res.Latency.Quantile(0.5), res.Latency.Quantile(0.99)
	if p50 == 0 || p99 < p50 || res.Latency.Max() < p99 {
		t.Fatalf("quantiles out of order: p50=%d p99=%d max=%d",
			p50, p99, res.Latency.Max())
	}

	// Without the flag the histograms stay nil — no capture overhead.
	res = Run(tr, Config{
		Threads: 2, Duration: 40 * time.Millisecond, KeyRange: 256,
		Kind: Light, Seed: 10,
	})
	if res.Latency != nil || res.RQLatency != nil {
		t.Fatal("latency histograms allocated without MeasureLatency")
	}
}
