package batch

import "sync"

// flusher is the part of a Pipeline a Promise needs: Wait on a promise
// whose operation is still buffered must force the buffer out instead
// of deadlocking.
type flusher interface {
	Flush()
}

// Promise is a lightweight future for one asynchronous operation. The
// zero value is not usable; promises are created by a Pipeline when an
// operation is enqueued and completed exactly once when its batch
// executes.
//
// Wait blocks until the result is available — flushing the owning
// pipeline first if the operation is still buffered, so waiting on an
// unflushed op completes instead of deadlocking — and is idempotent:
// every call returns the same result. OnComplete registers a callback
// instead; callbacks run on the goroutine that completes the promise
// (or immediately, on the caller, if it already completed) and must
// not call back into the owning pipeline.
type Promise[T any] struct {
	fl flusher

	mu     sync.Mutex
	done   chan struct{} // lazily created by a Wait that must block
	val    T
	filled bool
	cbs    []func(T)
}

func newPromise[T any](fl flusher) *Promise[T] {
	return &Promise[T]{fl: fl}
}

// complete fulfills the promise. Must be called at most once, and never
// while the completing goroutine holds the owning pipeline's lock (a
// callback may Wait on another promise of the same pipeline).
func (p *Promise[T]) complete(v T) {
	p.mu.Lock()
	p.val = v
	p.filled = true
	if p.done != nil {
		close(p.done)
	}
	cbs := p.cbs
	p.cbs = nil
	p.mu.Unlock()
	for _, cb := range cbs {
		cb(v)
	}
}

// Done reports whether the result is available without blocking.
func (p *Promise[T]) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.filled
}

// Wait returns the operation's result, blocking until it is available.
// If the operation is still sitting in its pipeline's buffer, Wait
// flushes the pipeline first. Calling Wait more than once is allowed
// and returns the same result every time.
func (p *Promise[T]) Wait() T {
	p.mu.Lock()
	if p.filled {
		v := p.val
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	if p.fl != nil {
		p.fl.Flush()
	}
	p.mu.Lock()
	if p.filled {
		v := p.val
		p.mu.Unlock()
		return v
	}
	// Still pending: another goroutine's flush (a timer firing between
	// our check and our Flush) holds the op. Block until it completes.
	if p.done == nil {
		p.done = make(chan struct{})
	}
	done := p.done
	p.mu.Unlock()
	<-done
	return p.val // ordered after complete by the channel close
}

// OnComplete registers fn to run with the result when it becomes
// available. If the promise already completed, fn runs immediately on
// the calling goroutine; otherwise it runs on the goroutine executing
// the batch. fn must not call back into the owning pipeline (enqueue,
// Flush, or Wait on an unflushed promise): completion runs outside the
// pipeline lock, but a callback that re-enters a pipeline mid-flush
// would interleave with the very batch completing it.
func (p *Promise[T]) OnComplete(fn func(T)) {
	p.mu.Lock()
	if !p.filled {
		p.cbs = append(p.cbs, fn)
		p.mu.Unlock()
		return
	}
	v := p.val
	p.mu.Unlock()
	fn(v)
}

// PointResult is the result of an asynchronous Insert, Delete, or
// Search: Insert and Delete report the previous value and whether the
// key existed; Search reports the value found and whether the key was
// present.
type PointResult struct {
	Val uint64
	OK  bool
}

// PointPromise is the future of an asynchronous point operation.
type PointPromise = Promise[PointResult]
