package batch

import (
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"htmtree/internal/dict"
)

// fakeHandle is a sequential dict.Handle over a map that records the
// key order in which point operations executed.
type fakeHandle struct {
	m     map[uint64]uint64
	order []uint64
}

func newFake() *fakeHandle { return &fakeHandle{m: make(map[uint64]uint64)} }

func (h *fakeHandle) Insert(key, val uint64) (uint64, bool) {
	h.order = append(h.order, key)
	old, ok := h.m[key]
	h.m[key] = val
	return old, ok
}

func (h *fakeHandle) Delete(key uint64) (uint64, bool) {
	h.order = append(h.order, key)
	old, ok := h.m[key]
	delete(h.m, key)
	return old, ok
}

func (h *fakeHandle) Search(key uint64) (uint64, bool) {
	h.order = append(h.order, key)
	v, ok := h.m[key]
	return v, ok
}

func (h *fakeHandle) RangeQuery(lo, hi uint64, out []dict.KV) []dict.KV {
	var keys []uint64
	for k := range h.m {
		if k >= lo && k < hi {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		out = append(out, dict.KV{Key: k, Val: h.m[k]})
	}
	return out
}

func TestWaitOnUnflushedOpFlushes(t *testing.T) {
	t.Parallel()
	p := New(newFake(), Config{MaxOps: 100})
	pr := p.Insert(7, 70)
	if pr.Done() {
		t.Fatal("promise done before any flush trigger")
	}
	if got := p.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	if r := pr.Wait(); r.OK {
		t.Fatalf("first insert reported existing key: %+v", r)
	}
	if got := p.Pending(); got != 0 {
		t.Fatalf("Pending after Wait = %d, want 0 (Wait must flush)", got)
	}
	// The op really executed: a search sees it.
	if r := p.Search(7).Wait(); !r.OK || r.Val != 70 {
		t.Fatalf("Search(7) = %+v, want (70, true)", r)
	}
}

func TestDoubleWaitIsIdempotent(t *testing.T) {
	t.Parallel()
	p := New(newFake(), Config{MaxOps: 100})
	p.Insert(1, 11).Wait()
	pr := p.Insert(1, 22)
	first := pr.Wait()
	second := pr.Wait()
	if first != second {
		t.Fatalf("Wait not idempotent: %+v then %+v", first, second)
	}
	if !first.OK || first.Val != 11 {
		t.Fatalf("second insert saw %+v, want previous value (11, true)", first)
	}
}

func TestSizeThresholdFlush(t *testing.T) {
	t.Parallel()
	ctr := &Counters{}
	p := New(newFake(), Config{MaxOps: 4, Counters: ctr})
	var prs []*PointPromise
	for i := uint64(0); i < 3; i++ {
		prs = append(prs, p.Insert(i+1, i))
	}
	for i, pr := range prs {
		if pr.Done() {
			t.Fatalf("promise %d done below the size threshold", i)
		}
	}
	last := p.Insert(99, 9) // fourth op: threshold reached
	for i, pr := range append(prs, last) {
		if !pr.Done() {
			t.Fatalf("promise %d not done after threshold flush", i)
		}
	}
	st := ctr.Snapshot()
	if st.SizeFlushes != 1 || st.Flushes != 1 || st.FlushedOps != 4 {
		t.Fatalf("counters after threshold flush: %+v", st)
	}
}

func TestTimerFlush(t *testing.T) {
	t.Parallel()
	ctr := &Counters{}
	p := New(newFake(), Config{MaxOps: 100, MaxDelay: 5 * time.Millisecond, Counters: ctr})
	done := make(chan PointResult, 1)
	pr := p.Insert(3, 33)
	pr.OnComplete(func(r PointResult) { done <- r })
	select {
	case r := <-done:
		if r.OK {
			t.Fatalf("timer-flushed insert reported existing key: %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("MaxDelay timer never flushed the buffer")
	}
	st := ctr.Snapshot()
	if st.TimerFlushes != 1 || st.SizeFlushes != 0 {
		t.Fatalf("counters after timer flush: %+v", st)
	}
	// The timer re-arms for the next buffered op.
	pr2 := p.Search(3)
	if r := pr2.Wait(); !r.OK || r.Val != 33 {
		t.Fatalf("Search(3) = %+v, want (33, true)", r)
	}
}

func TestEmptyFlushIsNoop(t *testing.T) {
	t.Parallel()
	ctr := &Counters{}
	fh := newFake()
	p := New(fh, Config{MaxOps: 4, Counters: ctr})
	p.Flush()
	p.Flush()
	if st := ctr.Snapshot(); st != (Stats{}) {
		t.Fatalf("empty flushes moved counters: %+v", st)
	}
	if len(fh.order) != 0 {
		t.Fatalf("empty flush executed %d ops", len(fh.order))
	}
	// A range query over an empty buffer runs but credits no flush.
	p.RangeQuery(0, 100)
	if st := ctr.Snapshot(); st.RangeFlushes != 0 {
		t.Fatalf("empty-buffer RangeQuery counted a flush: %+v", ctr.Snapshot())
	}
}

// TestPerKeyOrderAndResults checks the batch's result contract: ops on
// one key resolve as in a sequential execution preserving per-key
// enqueue order, regardless of cross-key reordering.
func TestPerKeyOrderAndResults(t *testing.T) {
	t.Parallel()
	p := New(newFake(), Config{MaxOps: 100})
	ins := p.Insert(5, 50)  // (0, false)
	sr1 := p.Search(5)      // (50, true): sees the buffered insert
	del := p.Delete(5)      // (50, true)
	sr2 := p.Search(5)      // (0, false)
	ins2 := p.Insert(2, 20) // (0, false): different key, may reorder
	p.Flush()
	if r := ins.Wait(); r.OK {
		t.Fatalf("Insert(5) = %+v, want fresh", r)
	}
	if r := sr1.Wait(); !r.OK || r.Val != 50 {
		t.Fatalf("Search(5) after insert = %+v, want (50, true)", r)
	}
	if r := del.Wait(); !r.OK || r.Val != 50 {
		t.Fatalf("Delete(5) = %+v, want (50, true)", r)
	}
	if r := sr2.Wait(); r.OK {
		t.Fatalf("Search(5) after delete = %+v, want absent", r)
	}
	if r := ins2.Wait(); r.OK {
		t.Fatalf("Insert(2) = %+v, want fresh", r)
	}
}

// TestFlushExecutesSorted checks that a flushed batch reaches the
// handle in ascending key order with same-key enqueue order preserved.
func TestFlushExecutesSorted(t *testing.T) {
	t.Parallel()
	fh := newFake()
	p := New(fh, Config{MaxOps: 100})
	keys := []uint64{9, 2, 7, 2, 5, 9}
	for _, k := range keys {
		p.Insert(k, k)
	}
	p.Flush()
	want := append([]uint64(nil), keys...)
	sort.SliceStable(want, func(i, j int) bool { return want[i] < want[j] })
	if len(fh.order) != len(want) {
		t.Fatalf("executed %d ops, want %d", len(fh.order), len(want))
	}
	for i := range want {
		if fh.order[i] != want[i] {
			t.Fatalf("execution order %v, want sorted %v", fh.order, want)
		}
	}
}

func TestRangeQueryFlushSemantics(t *testing.T) {
	t.Parallel()
	// Default: the query observes the pipeline's own buffered writes.
	p := New(newFake(), Config{MaxOps: 100})
	p.Insert(4, 40)
	got := p.RangeQuery(0, 10).Wait()
	if len(got) != 1 || got[0].Key != 4 {
		t.Fatalf("flushing RangeQuery = %v, want the buffered insert", got)
	}
	// RangeNoFlush: the buffer stays put and the query misses it.
	p2 := New(newFake(), Config{MaxOps: 100, RangeNoFlush: true})
	pr := p2.Insert(4, 40)
	if got := p2.RangeQuery(0, 10).Wait(); len(got) != 0 {
		t.Fatalf("RangeNoFlush query = %v, want empty", got)
	}
	if pr.Done() {
		t.Fatal("RangeNoFlush query flushed the buffer")
	}
	if got := p2.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestOnCompleteAfterCompletionRunsInline(t *testing.T) {
	t.Parallel()
	p := New(newFake(), Config{MaxOps: 1}) // every op flushes immediately
	pr := p.Insert(1, 10)
	if !pr.Done() {
		t.Fatal("MaxOps=1 op not executed synchronously")
	}
	var ran atomic.Bool
	pr.OnComplete(func(PointResult) { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("OnComplete on a completed promise did not run inline")
	}
}
