// Package batch implements the asynchronous, batched operation layer
// over a dictionary handle: point operations (Insert/Delete/Search)
// enqueue into a per-pipeline buffer and return a Promise immediately;
// when the buffer reaches Config.MaxOps (or Config.MaxDelay elapses, or
// the client flushes explicitly, or a Promise is waited on), the whole
// buffer is sorted stably by key and executed as one group.
//
// The point is amortization: the template's per-operation cost is
// dominated by fixed overhead — handle dispatch, router lookup, and
// (on rebalancing sharded trees) a monitor admission bracket per
// operation (Brown, PODC 2017, Section 7 measures exactly this fixed
// cost dominating at low contention). A handle that implements
// dict.GroupExecutor (the shard layer's) receives the sorted group
// whole and pays one routing-table acquisition and one monitor bracket
// per shard-group instead of per op; any other handle still gains the
// sorted key locality (adjacent keys traverse overlapping tree paths,
// so the simulated HTM's read sets stay warm) with ops executed one by
// one.
//
// # Ordering semantics
//
// A batch may reorder operations on different keys: execution order is
// stable-sorted by key, then grouped by owning shard. Operations on the
// same key keep their enqueue order (the sort is stable and a key's ops
// all land in the same shard-group), so every promise resolves to the
// value its operation would have seen in a sequential execution that
// preserves per-key program order — which, for a dictionary, determines
// every point result uniquely. Range queries are the sync points: by
// default an asynchronous RangeQuery first flushes the buffered point
// ops (read-your-writes), runs immediately, and returns an
// already-completed promise; Config.RangeNoFlush trades that for
// leaving the buffer in place.
package batch

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"htmtree/internal/dict"
	"htmtree/internal/fault"
)

// DefaultMaxOps is the flush threshold when Config.MaxOps is zero.
const DefaultMaxOps = 64

// Config tunes a Pipeline.
type Config struct {
	// MaxOps is the buffer size that triggers a flush (default
	// DefaultMaxOps). 1 degenerates to synchronous execution through
	// the batching machinery.
	MaxOps int
	// MaxDelay bounds how long an enqueued operation may sit in the
	// buffer before a background timer flushes it (0 disables the
	// timer: the buffer flushes only on size, RangeQuery, Flush, or
	// Wait). With a timer the pipeline may flush from a background
	// goroutine, which the pipeline lock makes safe against concurrent
	// enqueues.
	MaxDelay time.Duration
	// RangeNoFlush leaves buffered point operations in place when an
	// asynchronous RangeQuery arrives, so the query does not observe
	// the pipeline's own pending writes. Default (false) flushes first:
	// read-your-writes.
	RangeNoFlush bool
	// Counters, when non-nil, aggregates this pipeline's flush activity
	// into a shared sink (the tree-level Stats.Batch); nil keeps the
	// counts pipeline-private.
	Counters *Counters
	// Faults, when non-nil, arms fault.PointBatchFlush: an injected
	// stall at the head of each flush delays every Promise of the
	// group — the chaos harness's model of a stuck ingress queue.
	Faults *fault.Plan
}

// Counters aggregates pipeline activity, safe for concurrent pipelines
// to share.
type Counters struct {
	flushes    atomic.Uint64
	flushedOps atomic.Uint64
	sizeF      atomic.Uint64
	timerF     atomic.Uint64
	explicitF  atomic.Uint64
	rangeF     atomic.Uint64
}

// Stats is a Counters snapshot.
type Stats struct {
	// Flushes counts non-empty buffer flushes, FlushedOps the point
	// operations they carried (FlushedOps/Flushes is the realized mean
	// batch size).
	Flushes, FlushedOps uint64
	// SizeFlushes, TimerFlushes, ExplicitFlushes and RangeFlushes split
	// Flushes by trigger: the MaxOps threshold, the MaxDelay timer, an
	// explicit Flush or Wait, and a flushing RangeQuery.
	SizeFlushes, TimerFlushes, ExplicitFlushes, RangeFlushes uint64
}

// Snapshot returns the current counts. Safe to call while pipelines
// run (the snapshot is then approximate).
func (c *Counters) Snapshot() Stats {
	return Stats{
		Flushes:         c.flushes.Load(),
		FlushedOps:      c.flushedOps.Load(),
		SizeFlushes:     c.sizeF.Load(),
		TimerFlushes:    c.timerF.Load(),
		ExplicitFlushes: c.explicitF.Load(),
		RangeFlushes:    c.rangeF.Load(),
	}
}

// RangePromise is the future of an asynchronous range query.
type RangePromise = Promise[[]dict.KV]

// pending is one buffered operation and its promise.
type pending struct {
	op dict.BatchOp
	pr *PointPromise
}

// Pipeline buffers asynchronous operations over one dictionary handle.
// It is safe for the enqueueing goroutine and the MaxDelay timer to
// race; the underlying handle is only ever driven under the pipeline
// lock, satisfying its one-goroutine-at-a-time contract. Sharing one
// Pipeline between several enqueueing goroutines is legal but
// serializes them; the intended shape is one pipeline per worker, like
// handles.
type Pipeline struct {
	h   dict.Handle
	ge  dict.GroupExecutor // non-nil when h supports group execution
	cfg Config
	ctr *Counters

	mu         sync.Mutex
	pend       []pending
	ops        []dict.BatchOp // execution scratch, reused across flushes
	slab       []PointPromise // block-allocated promises (one alloc per batch, not per op)
	timer      *time.Timer
	timerArmed bool
}

// New builds a pipeline over h. If h implements dict.GroupExecutor
// (shard-layer handles do), flushed groups execute through it with
// amortized routing and admission; otherwise ops execute one by one in
// sorted order.
func New(h dict.Handle, cfg Config) *Pipeline {
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = DefaultMaxOps
	}
	ctr := cfg.Counters
	if ctr == nil {
		ctr = &Counters{}
	}
	ge, _ := h.(dict.GroupExecutor)
	return &Pipeline{h: h, ge: ge, cfg: cfg, ctr: ctr}
}

// Insert enqueues an asynchronous insert. The promise resolves to the
// previous value and whether the key already existed, as Handle.Insert
// would have returned at the operation's place in the batch.
func (p *Pipeline) Insert(key, val uint64) *PointPromise {
	return p.add(dict.BatchOp{Kind: dict.OpInsert, Key: key, Val: val})
}

// Delete enqueues an asynchronous delete; the promise resolves to the
// removed value and whether the key was present.
func (p *Pipeline) Delete(key uint64) *PointPromise {
	return p.add(dict.BatchOp{Kind: dict.OpDelete, Key: key})
}

// Search enqueues an asynchronous search; the promise resolves to the
// value found and whether the key was present at the operation's place
// in the batch (a search enqueued after an insert of the same key sees
// that insert).
func (p *Pipeline) Search(key uint64) *PointPromise {
	return p.add(dict.BatchOp{Kind: dict.OpSearch, Key: key})
}

// RangeQuery runs an asynchronous range query over [lo, hi). Unless
// Config.RangeNoFlush is set it first flushes the buffered point
// operations, so the result reflects the pipeline's own pending
// writes. The query executes before RangeQuery returns; the promise is
// already completed and exists for API symmetry (OnComplete chains).
func (p *Pipeline) RangeQuery(lo, hi uint64) *RangePromise {
	pr := newPromise[[]dict.KV](nil)
	p.mu.Lock()
	var ready []pending
	if !p.cfg.RangeNoFlush {
		ready = p.flushLocked(&p.ctr.rangeF)
	}
	out := p.h.RangeQuery(lo, hi, nil)
	p.mu.Unlock()
	finish(ready)
	pr.complete(out)
	return pr
}

// Flush executes every buffered operation now and completes its
// promise. Flushing an empty pipeline is a no-op (no group executes,
// no counter moves).
func (p *Pipeline) Flush() {
	p.mu.Lock()
	ready := p.flushLocked(&p.ctr.explicitF)
	p.mu.Unlock()
	finish(ready)
}

// Pending returns the number of buffered, not yet executed operations.
func (p *Pipeline) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pend)
}

// Close flushes the pipeline and stops its MaxDelay timer. The
// pipeline remains usable; Close exists so an abandoned pipeline does
// not leave operations parked behind a timer that already fired.
func (p *Pipeline) Close() { p.Flush() }

func (p *Pipeline) add(op dict.BatchOp) *PointPromise {
	p.mu.Lock()
	if len(p.slab) == 0 {
		p.slab = make([]PointPromise, p.cfg.MaxOps)
		for i := range p.slab {
			p.slab[i].fl = p
		}
	}
	pr := &p.slab[0]
	p.slab = p.slab[1:]
	p.pend = append(p.pend, pending{op: op, pr: pr})
	if len(p.pend) >= p.cfg.MaxOps {
		ready := p.flushLocked(&p.ctr.sizeF)
		p.mu.Unlock()
		finish(ready)
		return pr
	}
	if p.cfg.MaxDelay > 0 && !p.timerArmed {
		p.armTimerLocked()
	}
	p.mu.Unlock()
	return pr
}

// armTimerLocked schedules the MaxDelay flush for the buffer that just
// became non-empty.
func (p *Pipeline) armTimerLocked() {
	p.timerArmed = true
	if p.timer == nil {
		p.timer = time.AfterFunc(p.cfg.MaxDelay, p.timerFlush)
		return
	}
	p.timer.Reset(p.cfg.MaxDelay)
}

// timerFlush runs on the timer goroutine when MaxDelay elapses.
func (p *Pipeline) timerFlush() {
	p.mu.Lock()
	p.timerArmed = false
	ready := p.flushLocked(&p.ctr.timerF)
	p.mu.Unlock()
	finish(ready)
}

// flushLocked sorts and executes the buffered group under the pipeline
// lock and hands back the executed entries; the caller completes their
// promises after unlocking (a completion callback may Wait on another
// promise of this pipeline, which re-enters the lock). cause is the
// per-trigger counter to credit; an empty buffer executes nothing and
// credits nothing.
func (p *Pipeline) flushLocked(cause *atomic.Uint64) []pending {
	if p.timerArmed {
		p.timer.Stop()
		p.timerArmed = false
	}
	if len(p.pend) == 0 {
		return nil
	}
	// Flush-delay fault seam: the group is about to execute; an
	// injected stall holds the pipeline lock and every buffered
	// Promise for the duration.
	p.cfg.Faults.Hit(fault.PointBatchFlush)
	ready := p.pend
	p.pend = make([]pending, 0, p.cfg.MaxOps)
	// Stable by key: ops on the same key keep enqueue order, which is
	// what makes the batch's per-op results well-defined.
	slices.SortStableFunc(ready, func(a, b pending) int {
		switch {
		case a.op.Key < b.op.Key:
			return -1
		case a.op.Key > b.op.Key:
			return 1
		default:
			return 0
		}
	})
	ops := p.ops[:0]
	for i := range ready {
		ops = append(ops, ready[i].op)
	}
	if p.ge != nil {
		p.ge.ExecGroup(ops)
	} else {
		for i := range ops {
			ops[i].Exec(p.h)
		}
	}
	for i := range ready {
		ready[i].op = ops[i]
	}
	p.ops = ops[:0]
	p.ctr.flushes.Add(1)
	p.ctr.flushedOps.Add(uint64(len(ready)))
	cause.Add(1)
	return ready
}

// finish completes the promises of an executed group.
func finish(ready []pending) {
	for i := range ready {
		ready[i].pr.complete(PointResult{Val: ready[i].op.Out, OK: ready[i].op.OutOK})
	}
}
