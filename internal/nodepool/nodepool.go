// Package nodepool implements the per-handle node-pooling discipline
// shared by the template data structures (paper Section 9): steady-state
// inserts draw nodes from per-thread free lists, and deletions feed the
// lists back through the engine's epoch-based reclamation.
//
// One Pool serves one handle (one goroutine); nothing here is locked.
// The pools are segregated by node kind — leaves and internal nodes —
// because the two kinds follow different recycling disciplines that the
// structures encode identically:
//
//   - Leaves may recycle immediately after fast-path removals
//     (engine.Thread.Retire with fastOK): every reuse-mutable leaf field
//     is a transactional cell re-initialized with version-advancing
//     Recycle stores, so a stale transactional reader aborts rather
//     than observe the recycled leaf.
//   - Internal nodes always wait out a grace period: their routing keys
//     are read with plain loads on the descent hot path (htm.Word.Peek
//     or plain arrays), which is only sound if no reader can ever
//     observe a reuse.
//
// Attempt lifecycle: a body draws nodes with Take (recording them in
// the attempt's allocation list) and marks the nodes it unlinks with
// Remove. Each attempt starts with BeginAttempt — nodes drawn by a
// failed previous attempt were never published, so they return straight
// to the pools — and a completed operation calls Settle: the committed
// attempt's nodes are published (forgotten) and its removals retire
// under the rules above.
package nodepool

import "htmtree/internal/htm"

// Stats counts a pool's activity. Exported by the structures as their
// handle ReclaimStats.
type Stats struct {
	// Fresh counts heap allocations; Reused counts pool hits.
	Fresh, Reused uint64
	// RetiredFast counts removals recycled immediately under the
	// Section 9 fast-path rule; RetiredGrace counts removals deferred a
	// grace period.
	RetiredFast, RetiredGrace uint64
	// Freed counts nodes that reached the pools (immediately or after
	// their grace period expired).
	Freed uint64
}

// Retirer hands removed nodes to epoch-based reclamation; implemented
// by engine.Thread.
type Retirer interface {
	// Retire schedules x for reuse once safe, returning whether it was
	// recycled immediately. fastOK asserts every reuse-mutable field of
	// x is a transactional cell.
	Retire(p htm.PathKind, fastOK bool, x any) (immediate bool)
}

// Pool is the per-handle pooling state for node type N.
type Pool[N any] struct {
	leaf, inner    []*N
	alloc, removed []*N
	stats          Stats

	isLeaf func(*N) bool
	fresh  func(leaf bool) *N
	ret    Retirer
}

// New creates a pool. isLeaf routes nodes between the two free lists
// (and decides Settle's fastOK: only leaves may recycle immediately);
// fresh heap-allocates a node of the given kind with its cells bound to
// the owning TM's clock; ret is the handle's engine thread.
func New[N any](isLeaf func(*N) bool, fresh func(leaf bool) *N, ret Retirer) *Pool[N] {
	return &Pool[N]{isLeaf: isLeaf, fresh: fresh, ret: ret}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool[N]) Stats() Stats { return p.stats }

// Size returns the number of nodes currently in the free lists
// (white-box tests).
func (p *Pool[N]) Size() int { return len(p.leaf) + len(p.inner) }

// putBack returns a node to the matching free list.
func (p *Pool[N]) putBack(n *N) {
	if p.isLeaf(n) {
		p.leaf = append(p.leaf, n)
	} else {
		p.inner = append(p.inner, n)
	}
}

// Release receives a node whose reclamation completed and pools it; it
// is the handle's ebr free callback (engine.Thread.EnableReclaim).
func (p *Pool[N]) Release(x any) {
	p.putBack(x.(*N))
	p.stats.Freed++
}

// Take draws a node of the given kind from its pool, falling back to
// the heap, and records it in the attempt's allocation list. recycled
// reports a pool hit: the caller must re-initialize a recycled node's
// cells (with Recycle stores for leaves, which stale readers may still
// hold; plain stores suffice for grace-only internal nodes).
func (p *Pool[N]) Take(leaf bool) (n *N, recycled bool) {
	pool := &p.inner
	if leaf {
		pool = &p.leaf
	}
	if k := len(*pool); k > 0 {
		n = (*pool)[k-1]
		(*pool)[k-1] = nil
		*pool = (*pool)[:k-1]
		p.stats.Reused++
		recycled = true
	} else {
		n = p.fresh(leaf)
		p.stats.Fresh++
	}
	p.alloc = append(p.alloc, n)
	return n, recycled
}

// BeginAttempt resets the per-attempt state: nodes drawn by a previous
// attempt of this operation were never published (the attempt aborted
// or its SCX failed), so they return to the pools, and the previous
// attempt's removal list is discarded.
func (p *Pool[N]) BeginAttempt() {
	for i, n := range p.alloc {
		p.putBack(n)
		p.alloc[i] = nil
	}
	p.alloc = p.alloc[:0]
	p.removed = p.removed[:0]
}

// Remove records that the current attempt unlinks n; if the attempt
// commits, Settle retires n.
func (p *Pool[N]) Remove(n *N) {
	p.removed = append(p.removed, n)
}

// Settle finishes a completed operation: the committed attempt's drawn
// nodes are published (forgotten) and its removed nodes retire — leaves
// immediately when the completing path permits, internal nodes always
// after a grace period.
func (p *Pool[N]) Settle(path htm.PathKind) {
	for i := range p.alloc {
		p.alloc[i] = nil
	}
	p.alloc = p.alloc[:0]
	for i, n := range p.removed {
		if p.ret.Retire(path, p.isLeaf(n), n) {
			p.stats.RetiredFast++
		} else {
			p.stats.RetiredGrace++
		}
		p.removed[i] = nil
	}
	p.removed = p.removed[:0]
}
