package htm

import (
	"sync"
	"testing"
)

func TestBackendKindString(t *testing.T) {
	t.Parallel()
	if got := BackendSim.String(); got != "sim" {
		t.Errorf("BackendSim = %q, want sim", got)
	}
	if got := BackendTLELock.String(); got != "tle-lock" {
		t.Errorf("BackendTLELock = %q, want tle-lock", got)
	}
	if got := NewBackend(BackendSim).Name(); got != "sim" {
		t.Errorf("sim backend Name = %q", got)
	}
	if got := NewBackend(BackendTLELock).Name(); got != "tle-lock" {
		t.Errorf("tle-lock backend Name = %q", got)
	}
}

func TestBackendAccessor(t *testing.T) {
	t.Parallel()
	tm := New(Config{Backend: BackendTLELock})
	if got := tm.Backend().Name(); got != "tle-lock" {
		t.Fatalf("Backend().Name() = %q, want tle-lock", got)
	}
}

// TestTLELockBackendSerializes runs the concurrent-counter workload on
// the mutex backend. With every transaction of the TM serialized under
// one lock and no non-transactional writers, no attempt can ever abort.
func TestTLELockBackendSerializes(t *testing.T) {
	t.Parallel()
	tm := New(Config{Backend: BackendTLELock})
	const goroutines = 8
	const perG = 2000
	var c Word
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; i < perG; i++ {
				ok, ab := th.Atomic(PathFast, func(tx *Tx) {
					c.Set(tx, c.Get(tx)+1)
				})
				if !ok {
					t.Errorf("serialized transaction aborted: %+v", ab)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Get(nil); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestTLELockBackendIgnoresSimKnobs verifies the capacity and spurious
// configuration only applies to the simulator: under the mutex backend a
// transaction may touch any number of cells and never fails spuriously.
func TestTLELockBackendIgnoresSimKnobs(t *testing.T) {
	t.Parallel()
	tm := New(Config{
		Backend:       BackendTLELock,
		ReadCapacity:  2,
		WriteCapacity: 2,
		SpuriousEvery: 1, // would abort every access on the simulator
	})
	th := tm.NewThread()
	cells := make([]Word, 64)
	ok, ab := th.Atomic(PathFast, func(tx *Tx) {
		for i := range cells {
			cells[i].Set(tx, cells[i].Get(tx)+1)
		}
	})
	if !ok {
		t.Fatalf("tle-lock transaction aborted: %+v", ab)
	}
	for i := range cells {
		if got := cells[i].Get(nil); got != 1 {
			t.Fatalf("cells[%d] = %d, want 1", i, got)
		}
	}
}

// TestTLELockBackendStrongAtomicity checks the mutex backend still runs
// the versioned commit protocol: a non-transactional reader (modelling
// fallback-path code, which does not take the mutex) must never observe
// a torn multi-cell commit.
func TestTLELockBackendStrongAtomicity(t *testing.T) {
	t.Parallel()
	tm := New(Config{Backend: BackendTLELock})
	var x, y Word
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := tm.NewThread()
			for {
				select {
				case <-stop:
					return
				default:
				}
				th.Atomic(PathFast, func(tx *Tx) {
					v := x.Get(tx) + 1
					x.Set(tx, v)
					y.Set(tx, v)
				})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100000; i++ {
			yv := y.Get(nil)
			xv := x.Get(nil)
			if xv < yv {
				t.Errorf("torn read: x=%d < y=%d", xv, yv)
				break
			}
		}
		close(stop)
	}()
	wg.Wait()
}

// TestForeignPanicReleasesTLELock is the regression test for attempt
// teardown on foreign panics: a panic unwinding the transaction body
// must still release the backend's Begin-acquired mutex, or the TM
// deadlocks forever after.
func TestForeignPanicReleasesTLELock(t *testing.T) {
	t.Parallel()
	tm := New(Config{Backend: BackendTLELock})
	th := tm.NewThread()
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		th.Atomic(PathFast, func(*Tx) { panic("boom") })
	}()
	// Another thread must be able to begin (i.e. lock) immediately; if the
	// unwound attempt stranded the mutex this blocks forever and the test
	// times out.
	done := make(chan struct{})
	go func() {
		defer close(done)
		th2 := tm.NewThread()
		if ok, ab := th2.Atomic(PathFast, func(*Tx) {}); !ok {
			t.Errorf("transaction after panic aborted: %+v", ab)
		}
	}()
	<-done
	// The panicking thread itself is reusable too.
	if ok, ab := th.Atomic(PathFast, func(*Tx) {}); !ok {
		t.Fatalf("panicking thread unusable: %+v", ab)
	}
}

// TestForeignPanicDropsLog verifies a foreign panic zeroes the write
// set's buffered ptr entries (not merely truncates), so an abandoned
// attempt on an idle thread cannot pin nodes against reclamation.
func TestForeignPanicDropsLog(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	type node struct{ k int }
	var r Ref[node]
	var w Word
	func() {
		defer func() { recover() }()
		th.Atomic(PathFast, func(tx *Tx) {
			_ = w.Get(tx)
			r.Set(tx, &node{1})
			panic("boom")
		})
	}()
	tx := &th.tx
	if len(tx.reads) != 0 || len(tx.writes) != 0 {
		t.Fatalf("log not truncated: %d reads, %d writes", len(tx.reads), len(tx.writes))
	}
	for i := range tx.writes[:cap(tx.writes)] {
		if e := &tx.writes[:cap(tx.writes)][i]; e.ptr != nil || e.c != nil {
			t.Fatalf("write entry %d not zeroed: %+v", i, e)
		}
	}
	for i := range tx.reads[:cap(tx.reads)] {
		if e := &tx.reads[:cap(tx.reads)][i]; e.ver != nil {
			t.Fatalf("read entry %d not zeroed: %+v", i, e)
		}
	}
}

// TestThreadStatsConcurrent hammers Thread.Stats from a reporting
// goroutine while the owner commits and aborts transactions; under the
// race detector this fails if either side bypasses the atomic counters.
func TestThreadStatsConcurrent(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = th.Stats()
			_ = tm.Stats()
		}
	}()
	var x Word
	for i := 0; i < 20000; i++ {
		th.Atomic(PathFast, func(tx *Tx) { x.Set(tx, uint64(i)) })
		th.Atomic(PathMiddle, func(tx *Tx) { tx.Abort(1) })
	}
	close(stop)
	wg.Wait()
	s := th.Stats()
	if s.Commits[PathFast] != 20000 || s.Aborts[PathMiddle][CauseExplicit] != 20000 {
		t.Fatalf("stats = %+v, want 20000 fast commits and middle explicit aborts", s)
	}
}
