package htm

// Announced is an operation descriptor published in a TM's announcement
// slot (one per TM, i.e. per shard). The helpable-fallback engine
// ("Lock-Free Locks Revisited", Ben-David, Blelloch & Wei 2022)
// announces the fallback critical section here before executing it, so
// that any thread finding the fallback lock taken can run the announced
// operation to completion instead of spinning behind a possibly
// preempted owner.
//
// Finished reports whether the operation has reached a terminal state;
// a finished descriptor left in the slot is garbage that the next
// Announce clears.
type Announced interface {
	Finished() bool
}

// announceBox wraps an Announced so the slot can be a typed atomic
// pointer (interfaces cannot be CASed directly).
type announceBox struct {
	a Announced
}

// Announce tries to install a as the TM's current announcement. It
// fails (returns false) only when another unfinished operation is
// already announced; a leftover finished descriptor is cleared and the
// install retried. On success the backend is notified via
// Backend.Announce so blocking backends (the TLE lock) switch their
// waiters to helping.
func (tm *TM) Announce(a Announced) bool {
	box := &announceBox{a: a}
	for {
		cur := tm.ann.Load()
		if cur != nil {
			if !cur.a.Finished() {
				return false
			}
			tm.Retract(cur.a)
			continue
		}
		if tm.ann.CompareAndSwap(nil, box) {
			tm.backend.Announce(a)
			return true
		}
	}
}

// Retract clears the announcement slot if it still holds a. Any thread
// observing that a finished may retract it; the slot CAS guarantees the
// backend sees exactly one retraction per successful Announce.
func (tm *TM) Retract(a Announced) {
	cur := tm.ann.Load()
	if cur != nil && cur.a == a && tm.ann.CompareAndSwap(cur, nil) {
		tm.backend.Announce(nil)
	}
}

// Announcement returns the TM's currently announced operation, or nil.
func (tm *TM) Announcement() Announced {
	if box := tm.ann.Load(); box != nil {
		return box.a
	}
	return nil
}

// SetHelper registers the function that runs an announced operation on
// behalf of this thread. The engine layer installs a closure that
// downcasts the descriptor and drives it with this thread's own handle
// state (node pools, EBR record). fn must be reentrancy-free: it is
// never invoked while a previous invocation on this thread is still on
// the stack.
func (th *Thread) SetHelper(fn func(Announced) bool) { th.helper = fn }

// Help runs the TM's announced operation, if any, on behalf of this
// thread and reports whether it helped. It is a no-op inside a
// transaction: helping executes non-transactional fallback-path code,
// which must not nest under a live transaction log.
func (th *Thread) Help() bool {
	if th.inTx {
		return false
	}
	return th.tm.backend.Help(th)
}

// runHelp is the backend-facing help entry: unlike Help it may run
// while the thread is formally inside Atomic, because a blocking
// backend's Begin calls it before the attempt has established a
// snapshot or logged any access (the only state is an empty log, which
// the announced operation cannot disturb).
func (th *Thread) runHelp() bool {
	if th.helper == nil || th.helping {
		return false
	}
	a := th.tm.Announcement()
	if a == nil || a.Finished() {
		return false
	}
	th.helping = true
	defer func() { th.helping = false }()
	return th.helper(a)
}
