package htm

import (
	"runtime"
	"sync/atomic"
)

// Version-word encoding: version<<1 | lockBit.
const lockBit = 1

// cell is the interface the transaction log uses to apply buffered writes
// without knowing the concrete cell type.
type cell interface {
	version() *atomic.Uint64
	applyWord(v uint64)
	applyPtr(p any)
	applyAdd(delta uint64)
}

// Non-transactional lock acquisition backoff bounds: an acquirer that
// loses the CAS spins reading the version word for a bounded,
// exponentially growing number of iterations before retrying, and yields
// the processor once the bound is saturated. Under contention this keeps
// most acquirers off the cache line (the raw CAS spin it replaces turned
// every waiter into a line-invalidation source — a contention amplifier
// on exactly the multi-writer workloads per-TM clocks exist for).
const (
	backoffInitial = 4
	backoffMax     = 1024
)

// acquireNonTx locks a version word for a non-transactional operation
// (these critical sections are a handful of instructions long) and
// returns the pre-lock version word. Waiting uses bounded exponential
// backoff rather than a raw CAS spin.
func acquireNonTx(ver *atomic.Uint64) uint64 {
	v := ver.Load()
	if v&lockBit == 0 && ver.CompareAndSwap(v, v|lockBit) {
		return v // uncontended fast path: one load, one CAS
	}
	backoff := backoffInitial
	for {
		// Wait until the word reads unlocked before touching it with a
		// CAS again, pausing exponentially longer each round.
		for i := 0; ; i++ {
			v = ver.Load()
			if v&lockBit == 0 {
				break
			}
			if i >= backoff {
				runtime.Gosched()
				i = 0
			}
		}
		if ver.CompareAndSwap(v, v|lockBit) {
			return v
		}
		if backoff < backoffMax {
			backoff <<= 1
		} else {
			runtime.Gosched()
		}
	}
}

// Word is a shared uint64 cell. The zero value is an unlocked cell
// holding 0 bound to no clock: it supports transactional access and
// non-transactional reads immediately, but must be bound to the owning
// TM's clock (Bind) before any non-transactional mutation.
type Word struct {
	clk *Clock
	ver atomic.Uint64
	val atomic.Uint64
}

func (w *Word) version() *atomic.Uint64 { return &w.ver }
func (w *Word) applyWord(v uint64)      { w.val.Store(v) }
func (w *Word) applyPtr(any)            { panic("htm: applyPtr on Word") }

// applyAdd folds a commutative increment into the cell. Only called
// during commit while the cell's version word is locked by this
// transaction, so the read-modify-write is race-free.
func (w *Word) applyAdd(delta uint64) { w.val.Store(w.val.Load() + delta) }

// Bind associates the cell with the version clock of the TM whose
// transactions access it. Non-transactional mutations advance this clock
// (keeping the TM's transactions strongly atomic with respect to them),
// so they panic on an unbound cell. Bind before the cell is shared.
// Rebinding to the same clock is a no-op; rebinding to a different
// clock panics — a cell serving two clock domains would silently break
// strong atomicity in one of them (e.g. one Indicator shared between
// two engines), so it must fail loudly instead.
func (w *Word) Bind(c *Clock) {
	if w.clk != nil && w.clk != c {
		panic("htm: cell already bound to a different TM clock (one cell cannot serve two clock domains)")
	}
	w.clk = c
}

// clock returns the bound clock, diagnosing a miswired cell loudly
// rather than failing with a nil dereference.
func (w *Word) clock() *Clock {
	if w.clk == nil {
		panic("htm: non-transactional mutation of a cell not bound to a TM clock (call Bind first)")
	}
	return w.clk
}

// Init sets the cell's value without version bookkeeping. It must only
// be used on cells that are not yet reachable by other threads (e.g.
// fields of a freshly allocated node before it is published); the cell
// keeps version 0, so transactions at any snapshot may read it.
func (w *Word) Init(v uint64) { w.val.Store(v) }

// Recycle re-initializes a cell of a pooled node for reuse. Unlike Init
// it is safe while stale transactional readers may still hold a
// reference to the node: it locks the version word (waiting out a zombie
// commit that transiently locked it), writes the value under the lock,
// and unlocks with the version advanced to the clock's current value —
// which is at least the removing operation's commit version, so any
// transaction whose snapshot predates the node's removal observes a
// version beyond its snapshot and aborts instead of reading the recycled
// value.
//
// Recycle must only be called while the node is privately owned (drawn
// from a pool, not yet republished); non-transactional readers must be
// excluded by the caller's reclamation discipline (ebr: RetireFast only
// when every possible reader is transactional).
func (w *Word) Recycle(v uint64) {
	c := w.clock()
	acquireNonTx(&w.ver)
	w.val.Store(v)
	w.ver.Store(c.Now() << 1)
}

// Get reads the cell. With a nil tx it performs a non-transactional
// atomic read; otherwise the read joins tx's read set and may abort tx.
func (w *Word) Get(tx *Tx) uint64 {
	if tx == nil {
		for i := 0; ; i++ {
			v1 := w.ver.Load()
			if v1&lockBit == 0 {
				val := w.val.Load()
				if w.ver.Load() == v1 {
					return val
				}
			}
			if i%128 == 127 {
				runtime.Gosched()
			}
		}
	}
	if buf, ok := tx.findWrite(&w.ver); ok {
		return buf.word
	}
	v := tx.readVersion(&w.ver)
	val := w.val.Load()
	if w.ver.Load() != v {
		tx.abort(CauseConflict)
	}
	tx.logRead(&w.ver, v)
	return val
}

// Peek reads the cell's value with a single atomic load — no version
// check, no snapshot validation, no read-set entry. It is only sound
// for cells that are immutable for as long as any thread can hold the
// enclosing node: write-once cells, and cells of pooled nodes that are
// reused exclusively after a grace period (so no reader — stale or
// otherwise — can ever observe the rewrite). Cells of nodes that may
// recycle immediately (ebr.RetireFast) must use GetStable instead.
func (w *Word) Peek() uint64 { return w.val.Load() }

// GetStable reads a cell whose value is immutable while its enclosing
// node is reachable — only pool recycling ever rewrites it (e.g. a
// pooled node's routing key). The read is validated against the
// transaction's snapshot exactly like Get (a recycled cell's advanced
// version aborts a stale reader), but it does not join the read set:
// the only event that can change the cell is a recycle, a recycle
// implies the node was first unlinked, and the unlink already
// invalidates the read-set entry of the pointer that led here. Skipping
// the read-set entry keeps hot search loops at one logged read per
// node instead of two.
//
// The caller asserts the cell is never written transactionally (it is
// not looked up in the write set).
func (w *Word) GetStable(tx *Tx) uint64 {
	if tx == nil {
		return w.Get(nil)
	}
	v := tx.readVersion(&w.ver)
	val := w.val.Load()
	if w.ver.Load() != v {
		tx.abort(CauseConflict)
	}
	return val
}

// Set writes the cell. With a nil tx the store is immediate (locking the
// cell and advancing the bound TM clock); otherwise it is buffered until
// tx commits.
func (w *Word) Set(tx *Tx, v uint64) {
	if tx == nil {
		c := w.clock() // resolve before locking: a miswired cell must not panic while holding the lock
		acquireNonTx(&w.ver)
		nv := c.tick()
		w.val.Store(v)
		w.ver.Store(nv << 1)
		return
	}
	tx.logWrite(w, &w.ver, v, nil, false)
}

// CAS atomically replaces old with new and reports whether it did. Inside
// a transaction it reduces to a read, a comparison and a buffered write —
// exactly the sequential-code transformation of Section 4 of the paper.
func (w *Word) CAS(tx *Tx, old, new uint64) bool {
	if tx != nil {
		if w.Get(tx) != old {
			return false
		}
		w.Set(tx, new)
		return true
	}
	c := w.clock()
	prev := acquireNonTx(&w.ver)
	if w.val.Load() != old {
		w.ver.Store(prev) // release without a version bump: nothing changed
		return false
	}
	nv := c.tick()
	w.val.Store(new)
	w.ver.Store(nv << 1)
	return true
}

// AddAtCommit queues a commutative increment of the cell that is
// applied atomically at the transaction's commit, against whatever value
// the cell holds at that moment. The cell joins the write set (so the
// commit locks it and bumps its version) but not the read set: unlike
// Get-then-Set, two transactions that both AddAtCommit the same cell do
// not invalidate each other's snapshots, and can only collide on the
// brief commit-time lock. This is the primitive behind per-shard version
// counters: every update publishes a version bump exactly at its commit
// point without serializing whole update transactions against each
// other.
//
// A cell with a pending AddAtCommit must not be read or written again in
// the same transaction (its final value is unknowable until commit);
// doing so panics.
func (w *Word) AddAtCommit(tx *Tx, delta uint64) {
	if tx == nil {
		w.Add(delta)
		return
	}
	tx.logAdd(w, &w.ver, delta)
}

// Add atomically adds delta (which may be negative via two's complement)
// to the cell outside any transaction and returns the new value.
func (w *Word) Add(delta uint64) uint64 {
	c := w.clock()
	acquireNonTx(&w.ver)
	nv := c.tick()
	v := w.val.Load() + delta
	w.val.Store(v)
	w.ver.Store(nv << 1)
	return v
}

// Ref is a shared pointer cell holding a *T. The zero value is an
// unlocked cell holding nil; like Word, it must be bound to the owning
// TM's clock before any non-transactional mutation.
type Ref[T any] struct {
	clk *Clock
	ver atomic.Uint64
	val atomic.Pointer[T]
}

func (r *Ref[T]) version() *atomic.Uint64 { return &r.ver }
func (r *Ref[T]) applyWord(uint64)        { panic("htm: applyWord on Ref") }
func (r *Ref[T]) applyAdd(uint64)         { panic("htm: applyAdd on Ref") }
func (r *Ref[T]) applyPtr(p any) {
	if p == nil {
		r.val.Store(nil)
		return
	}
	r.val.Store(p.(*T))
}

// Bind associates the cell with the version clock of the TM whose
// transactions access it. See Word.Bind; rebinding to a different clock
// panics.
func (r *Ref[T]) Bind(c *Clock) {
	if r.clk != nil && r.clk != c {
		panic("htm: cell already bound to a different TM clock (one cell cannot serve two clock domains)")
	}
	r.clk = c
}

func (r *Ref[T]) clock() *Clock {
	if r.clk == nil {
		panic("htm: non-transactional mutation of a cell not bound to a TM clock (call Bind first)")
	}
	return r.clk
}

// Init sets the cell's value without version bookkeeping. See Word.Init.
func (r *Ref[T]) Init(p *T) { r.val.Store(p) }

// Recycle re-initializes a pooled cell for reuse; see Word.Recycle.
func (r *Ref[T]) Recycle(p *T) {
	c := r.clock()
	acquireNonTx(&r.ver)
	r.val.Store(p)
	r.ver.Store(c.Now() << 1)
}

// Get reads the cell. With a nil tx it performs a non-transactional
// atomic read; otherwise the read joins tx's read set and may abort tx.
func (r *Ref[T]) Get(tx *Tx) *T {
	if tx == nil {
		for i := 0; ; i++ {
			v1 := r.ver.Load()
			if v1&lockBit == 0 {
				p := r.val.Load()
				if r.ver.Load() == v1 {
					return p
				}
			}
			if i%128 == 127 {
				runtime.Gosched()
			}
		}
	}
	if buf, ok := tx.findWrite(&r.ver); ok {
		if buf.ptr == nil {
			return nil
		}
		return buf.ptr.(*T)
	}
	v := tx.readVersion(&r.ver)
	p := r.val.Load()
	if r.ver.Load() != v {
		tx.abort(CauseConflict)
	}
	tx.logRead(&r.ver, v)
	return p
}

// Set writes the cell. With a nil tx the store is immediate; otherwise it
// is buffered until tx commits.
func (r *Ref[T]) Set(tx *Tx, p *T) {
	if tx == nil {
		c := r.clock()
		acquireNonTx(&r.ver)
		nv := c.tick()
		r.val.Store(p)
		r.ver.Store(nv << 1)
		return
	}
	var boxed any
	if p != nil {
		boxed = p
	}
	tx.logWrite(r, &r.ver, 0, boxed, true)
}

// CAS atomically replaces old with new (pointer identity) and reports
// whether it did.
func (r *Ref[T]) CAS(tx *Tx, old, new *T) bool {
	if tx != nil {
		if r.Get(tx) != old {
			return false
		}
		r.Set(tx, new)
		return true
	}
	c := r.clock()
	prev := acquireNonTx(&r.ver)
	if r.val.Load() != old {
		r.ver.Store(prev)
		return false
	}
	nv := c.tick()
	r.val.Store(new)
	r.ver.Store(nv << 1)
	return true
}
