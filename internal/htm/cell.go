package htm

import (
	"runtime"
	"sync/atomic"
)

// clock is the global version clock. Every write to shared memory —
// transactional commit or non-transactional store/CAS — advances it, and
// transactions validate their read sets against it. A single process-wide
// monotonic counter (rather than one per TM) keeps cells free-standing
// and zero-value-ready; sharing it across TM instances is harmless
// because only monotonicity matters.
var clock atomic.Uint64

// ClockValue returns the current value of the global version clock.
// It is exported for tests and diagnostics.
func ClockValue() uint64 { return clock.Load() }

// Version-word encoding: version<<1 | lockBit.
const lockBit = 1

// cell is the interface the transaction log uses to apply buffered writes
// without knowing the concrete cell type.
type cell interface {
	version() *atomic.Uint64
	applyWord(v uint64)
	applyPtr(p any)
	applyAdd(delta uint64)
}

// acquireNonTx locks a version word for a non-transactional operation,
// spinning (these critical sections are a handful of instructions long)
// and returning the pre-lock version word.
func acquireNonTx(ver *atomic.Uint64) uint64 {
	for i := 0; ; i++ {
		v := ver.Load()
		if v&lockBit == 0 && ver.CompareAndSwap(v, v|lockBit) {
			return v
		}
		if i%128 == 127 {
			runtime.Gosched()
		}
	}
}

// Word is a shared uint64 cell. The zero value is an unlocked cell
// holding 0. All access, transactional (tx != nil) and non-transactional
// (tx == nil), must go through its methods.
type Word struct {
	ver atomic.Uint64
	val atomic.Uint64
}

func (w *Word) version() *atomic.Uint64 { return &w.ver }
func (w *Word) applyWord(v uint64)      { w.val.Store(v) }
func (w *Word) applyPtr(any)            { panic("htm: applyPtr on Word") }

// applyAdd folds a commutative increment into the cell. Only called
// during commit while the cell's version word is locked by this
// transaction, so the read-modify-write is race-free.
func (w *Word) applyAdd(delta uint64) { w.val.Store(w.val.Load() + delta) }

// Init sets the cell's value without version bookkeeping. It must only
// be used on cells that are not yet reachable by other threads (e.g.
// fields of a freshly allocated node before it is published); the cell
// keeps version 0, so transactions at any snapshot may read it.
func (w *Word) Init(v uint64) { w.val.Store(v) }

// Get reads the cell. With a nil tx it performs a non-transactional
// atomic read; otherwise the read joins tx's read set and may abort tx.
func (w *Word) Get(tx *Tx) uint64 {
	if tx == nil {
		for i := 0; ; i++ {
			v1 := w.ver.Load()
			if v1&lockBit == 0 {
				val := w.val.Load()
				if w.ver.Load() == v1 {
					return val
				}
			}
			if i%128 == 127 {
				runtime.Gosched()
			}
		}
	}
	if buf, ok := tx.findWrite(w); ok {
		return buf.word
	}
	v := tx.readVersion(&w.ver)
	val := w.val.Load()
	if w.ver.Load() != v {
		tx.abort(CauseConflict)
	}
	tx.logRead(&w.ver, v)
	return val
}

// Set writes the cell. With a nil tx the store is immediate (locking the
// cell and bumping the global clock); otherwise it is buffered until tx
// commits.
func (w *Word) Set(tx *Tx, v uint64) {
	if tx == nil {
		acquireNonTx(&w.ver)
		nv := clock.Add(1)
		w.val.Store(v)
		w.ver.Store(nv << 1)
		return
	}
	tx.logWrite(w, v, nil, false)
}

// CAS atomically replaces old with new and reports whether it did. Inside
// a transaction it reduces to a read, a comparison and a buffered write —
// exactly the sequential-code transformation of Section 4 of the paper.
func (w *Word) CAS(tx *Tx, old, new uint64) bool {
	if tx != nil {
		if w.Get(tx) != old {
			return false
		}
		w.Set(tx, new)
		return true
	}
	prev := acquireNonTx(&w.ver)
	if w.val.Load() != old {
		w.ver.Store(prev) // release without a version bump: nothing changed
		return false
	}
	nv := clock.Add(1)
	w.val.Store(new)
	w.ver.Store(nv << 1)
	return true
}

// AddAtCommit queues a commutative increment of the cell that is
// applied atomically at the transaction's commit, against whatever value
// the cell holds at that moment. The cell joins the write set (so the
// commit locks it and bumps its version) but not the read set: unlike
// Get-then-Set, two transactions that both AddAtCommit the same cell do
// not invalidate each other's snapshots, and can only collide on the
// brief commit-time lock. This is the primitive behind per-shard version
// counters: every update publishes a version bump exactly at its commit
// point without serializing whole update transactions against each
// other.
//
// A cell with a pending AddAtCommit must not be read or written again in
// the same transaction (its final value is unknowable until commit);
// doing so panics.
func (w *Word) AddAtCommit(tx *Tx, delta uint64) {
	if tx == nil {
		w.Add(delta)
		return
	}
	tx.logAdd(w, delta)
}

// Add atomically adds delta (which may be negative via two's complement)
// to the cell outside any transaction and returns the new value.
func (w *Word) Add(delta uint64) uint64 {
	acquireNonTx(&w.ver)
	nv := clock.Add(1)
	v := w.val.Load() + delta
	w.val.Store(v)
	w.ver.Store(nv << 1)
	return v
}

// Ref is a shared pointer cell holding a *T. The zero value is an
// unlocked cell holding nil.
type Ref[T any] struct {
	ver atomic.Uint64
	val atomic.Pointer[T]
}

func (r *Ref[T]) version() *atomic.Uint64 { return &r.ver }
func (r *Ref[T]) applyWord(uint64)        { panic("htm: applyWord on Ref") }
func (r *Ref[T]) applyAdd(uint64)         { panic("htm: applyAdd on Ref") }
func (r *Ref[T]) applyPtr(p any) {
	if p == nil {
		r.val.Store(nil)
		return
	}
	r.val.Store(p.(*T))
}

// Init sets the cell's value without version bookkeeping. See Word.Init.
func (r *Ref[T]) Init(p *T) { r.val.Store(p) }

// Get reads the cell. With a nil tx it performs a non-transactional
// atomic read; otherwise the read joins tx's read set and may abort tx.
func (r *Ref[T]) Get(tx *Tx) *T {
	if tx == nil {
		for i := 0; ; i++ {
			v1 := r.ver.Load()
			if v1&lockBit == 0 {
				p := r.val.Load()
				if r.ver.Load() == v1 {
					return p
				}
			}
			if i%128 == 127 {
				runtime.Gosched()
			}
		}
	}
	if buf, ok := tx.findWrite(r); ok {
		if buf.ptr == nil {
			return nil
		}
		return buf.ptr.(*T)
	}
	v := tx.readVersion(&r.ver)
	p := r.val.Load()
	if r.ver.Load() != v {
		tx.abort(CauseConflict)
	}
	tx.logRead(&r.ver, v)
	return p
}

// Set writes the cell. With a nil tx the store is immediate; otherwise it
// is buffered until tx commits.
func (r *Ref[T]) Set(tx *Tx, p *T) {
	if tx == nil {
		acquireNonTx(&r.ver)
		nv := clock.Add(1)
		r.val.Store(p)
		r.ver.Store(nv << 1)
		return
	}
	var boxed any
	if p != nil {
		boxed = p
	}
	tx.logWrite(r, 0, boxed, true)
}

// CAS atomically replaces old with new (pointer identity) and reports
// whether it did.
func (r *Ref[T]) CAS(tx *Tx, old, new *T) bool {
	if tx != nil {
		if r.Get(tx) != old {
			return false
		}
		r.Set(tx, new)
		return true
	}
	prev := acquireNonTx(&r.ver)
	if r.val.Load() != old {
		r.ver.Store(prev)
		return false
	}
	nv := clock.Add(1)
	r.val.Store(new)
	r.ver.Store(nv << 1)
	return true
}
