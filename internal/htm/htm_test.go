package htm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestWordNonTxBasics(t *testing.T) {
	t.Parallel()
	var w Word
	w.Bind(NewClock())
	if got := w.Get(nil); got != 0 {
		t.Fatalf("zero value = %d, want 0", got)
	}
	w.Set(nil, 42)
	if got := w.Get(nil); got != 42 {
		t.Fatalf("after Set = %d, want 42", got)
	}
	if !w.CAS(nil, 42, 43) {
		t.Fatal("CAS(42,43) failed")
	}
	if w.CAS(nil, 42, 99) {
		t.Fatal("CAS with stale expected succeeded")
	}
	if got := w.Add(7); got != 50 {
		t.Fatalf("Add = %d, want 50", got)
	}
	if got := w.Add(^uint64(0)); got != 49 { // -1 in two's complement
		t.Fatalf("Add(-1) = %d, want 49", got)
	}
}

func TestRefNonTxBasics(t *testing.T) {
	t.Parallel()
	type node struct{ k int }
	var r Ref[node]
	r.Bind(NewClock())
	if got := r.Get(nil); got != nil {
		t.Fatalf("zero value = %v, want nil", got)
	}
	a, b := &node{1}, &node{2}
	r.Set(nil, a)
	if got := r.Get(nil); got != a {
		t.Fatalf("Get = %v, want %v", got, a)
	}
	if !r.CAS(nil, a, b) {
		t.Fatal("CAS(a,b) failed")
	}
	if r.CAS(nil, a, b) {
		t.Fatal("stale CAS succeeded")
	}
	r.Set(nil, nil)
	if got := r.Get(nil); got != nil {
		t.Fatalf("Get after Set(nil) = %v, want nil", got)
	}
}

func TestTxCommitAndVisibility(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	var x, y Word
	ok, ab := th.Atomic(PathFast, func(tx *Tx) {
		x.Set(tx, 1)
		y.Set(tx, 2)
		if got := x.Get(tx); got != 1 {
			t.Errorf("read-own-write x = %d, want 1", got)
		}
	})
	if !ok {
		t.Fatalf("commit failed: %+v", ab)
	}
	if x.Get(nil) != 1 || y.Get(nil) != 2 {
		t.Fatalf("post-commit values = %d,%d want 1,2", x.Get(nil), y.Get(nil))
	}
}

func TestTxExplicitAbortHasNoEffect(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	var x Word
	x.Bind(tm.Clock())
	x.Set(nil, 10)
	ok, ab := th.Atomic(PathFast, func(tx *Tx) {
		x.Set(tx, 99)
		tx.Abort(7)
	})
	if ok {
		t.Fatal("aborted transaction reported commit")
	}
	if ab.Cause != CauseExplicit || ab.Code != 7 {
		t.Fatalf("abort = %+v, want explicit code 7", ab)
	}
	if got := x.Get(nil); got != 10 {
		t.Fatalf("x = %d after abort, want 10", got)
	}
}

func TestTxConflictWithNonTxWrite(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	var x, y Word
	x.Bind(tm.Clock())
	ok, ab := th.Atomic(PathFast, func(tx *Tx) {
		_ = x.Get(tx)
		// A non-transactional write from "another thread" (simulated
		// inline; the cell API does not care which goroutine writes).
		x.Set(nil, 5)
		y.Set(tx, 1)
	})
	if ok {
		t.Fatal("transaction with invalidated read set committed")
	}
	if ab.Cause != CauseConflict {
		t.Fatalf("cause = %v, want conflict", ab.Cause)
	}
	if y.Get(nil) != 0 {
		t.Fatal("aborted write became visible")
	}
}

func TestTxOpacitySnapshotRead(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	var x Word
	x.Bind(tm.Clock())
	ok, ab := th.Atomic(PathFast, func(tx *Tx) {
		x.Set(nil, 1) // bump the cell version past rv
		_ = x.Get(tx) // must abort: written after begin
		t.Error("read of post-begin write did not abort")
	})
	if ok || ab.Cause != CauseConflict {
		t.Fatalf("ok=%v abort=%+v, want conflict abort", ok, ab)
	}
}

func TestTxCapacityAbort(t *testing.T) {
	t.Parallel()
	tm := New(Config{ReadCapacity: 4, WriteCapacity: 4})
	th := tm.NewThread()
	cells := make([]Word, 8)

	ok, ab := th.Atomic(PathFast, func(tx *Tx) {
		for i := range cells {
			_ = cells[i].Get(tx)
		}
	})
	if ok || ab.Cause != CauseCapacity {
		t.Fatalf("read overflow: ok=%v abort=%+v, want capacity", ok, ab)
	}

	ok, ab = th.Atomic(PathFast, func(tx *Tx) {
		for i := range cells {
			cells[i].Set(tx, 1)
		}
	})
	if ok || ab.Cause != CauseCapacity {
		t.Fatalf("write overflow: ok=%v abort=%+v, want capacity", ok, ab)
	}
}

func TestTxSpuriousAbort(t *testing.T) {
	t.Parallel()
	tm := New(Config{SpuriousEvery: 1}) // every access aborts
	th := tm.NewThread()
	var x Word
	ok, ab := th.Atomic(PathFast, func(tx *Tx) { _ = x.Get(tx) })
	if ok || ab.Cause != CauseSpurious {
		t.Fatalf("ok=%v abort=%+v, want spurious", ok, ab)
	}
}

func TestNestedAtomicPanics(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Atomic did not panic")
		}
	}()
	th.Atomic(PathFast, func(*Tx) {
		th.Atomic(PathFast, func(*Tx) {})
	})
}

func TestUserPanicPropagates(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		// The thread must be reusable after a user panic.
		if ok, _ := th.Atomic(PathFast, func(*Tx) {}); !ok {
			t.Fatal("thread unusable after user panic")
		}
	}()
	th.Atomic(PathFast, func(*Tx) { panic("boom") })
}

func TestStatsCounting(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	var x Word
	th.Atomic(PathFast, func(tx *Tx) { x.Set(tx, 1) })
	th.Atomic(PathMiddle, func(tx *Tx) { tx.Abort(1) })
	s := tm.Stats()
	if s.Commits[PathFast] != 1 {
		t.Fatalf("fast commits = %d, want 1", s.Commits[PathFast])
	}
	if s.Aborts[PathMiddle][CauseExplicit] != 1 {
		t.Fatalf("middle explicit aborts = %d, want 1", s.Aborts[PathMiddle][CauseExplicit])
	}
	if s.TotalAborts(PathMiddle) != 1 {
		t.Fatalf("TotalAborts = %d, want 1", s.TotalAborts(PathMiddle))
	}
}

// TestConcurrentCounter increments a shared counter from many goroutines
// using transactions (retrying on abort) and checks no increment is lost.
func TestConcurrentCounter(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	const goroutines = 8
	const perG = 2000
	var c Word
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; i < perG; i++ {
				for {
					ok, _ := th.Atomic(PathFast, func(tx *Tx) {
						c.Set(tx, c.Get(tx)+1)
					})
					if ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Get(nil); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestStrongAtomicity checks that non-transactional readers never observe
// a torn multi-cell commit: transactions keep x == y, and a racing
// non-transactional reader that snapshots both must agree.
func TestStrongAtomicity(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	var x, y Word
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := tm.NewThread()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				th.Atomic(PathFast, func(tx *Tx) {
					v := x.Get(tx) + 1
					x.Set(tx, v)
					y.Set(tx, v)
				})
			}
		}(uint64(g))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200000; i++ {
			// Reading y first then x bounds x's value from below by y's:
			// with atomic commits, xv >= yv always holds.
			yv := y.Get(nil)
			xv := x.Get(nil)
			if xv < yv {
				t.Errorf("torn read: x=%d < y=%d", xv, yv)
				break
			}
		}
		close(stop)
	}()
	wg.Wait()
}

// TestTornCommitInvisible checks a transactional reader sees the two
// halves of a committed pair consistently.
func TestTornCommitInvisible(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	var x, y Word
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tm.NewThread()
		for {
			select {
			case <-stop:
				return
			default:
			}
			th.Atomic(PathFast, func(tx *Tx) {
				v := x.Get(tx) + 1
				x.Set(tx, v)
				y.Set(tx, v)
			})
		}
	}()

	th := tm.NewThread()
	for i := 0; i < 100000; i++ {
		th.Atomic(PathMiddle, func(tx *Tx) {
			xv := x.Get(tx)
			yv := y.Get(tx)
			if xv != yv {
				t.Errorf("inconsistent snapshot: x=%d y=%d", xv, yv)
			}
		})
	}
	close(stop)
	wg.Wait()
}

// TestQuickSequentialModel cross-checks single-threaded transactional
// execution against a plain model: any committed sequence of ops must
// leave cells equal to the model.
func TestQuickSequentialModel(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	f := func(ops []uint16) bool {
		const n = 8
		var cells [n]Word
		for i := range cells {
			cells[i].Bind(tm.Clock())
		}
		var model [n]uint64
		for _, op := range ops {
			idx := int(op) % n
			val := uint64(op >> 4)
			switch (op >> 2) % 3 {
			case 0:
				cells[idx].Set(nil, val)
				model[idx] = val
			case 1:
				ok, _ := th.Atomic(PathFast, func(tx *Tx) {
					cells[idx].Set(tx, cells[idx].Get(tx)+val)
				})
				if !ok {
					return false
				}
				model[idx] += val
			case 2:
				if cells[idx].Get(nil) != model[idx] {
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			if cells[i].Get(nil) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPOWER8ConfigSmallFootprint(t *testing.T) {
	t.Parallel()
	cfg := POWER8Config().withDefaults()
	if cfg.ReadCapacity >= DefaultReadCapacity {
		t.Fatalf("POWER8 read capacity %d not smaller than default %d",
			cfg.ReadCapacity, DefaultReadCapacity)
	}
}

func TestPathAndCauseStrings(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		got, want string
	}{
		{PathFast.String(), "fast"},
		{PathMiddle.String(), "middle"},
		{PathFallback.String(), "fallback"},
		{CauseExplicit.String(), "explicit"},
		{CauseConflict.String(), "conflict"},
		{CauseCapacity.String(), "capacity"},
		{CauseSpurious.String(), "spurious"},
		{CauseNone.String(), "none"},
	} {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}

func TestAddAtCommit(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	var ver, data Word
	ver.Bind(tm.Clock())

	// A committed transaction applies the increment against the value at
	// commit time; an aborted one leaves the cell untouched.
	ok, _ := th.Atomic(PathFast, func(tx *Tx) {
		data.Set(tx, 10)
		ver.AddAtCommit(tx, 1)
		ver.AddAtCommit(tx, 2) // accumulates with the first
	})
	if !ok {
		t.Fatal("transaction aborted")
	}
	if got := ver.Get(nil); got != 3 {
		t.Fatalf("ver = %d, want 3", got)
	}
	ok, ab := th.Atomic(PathFast, func(tx *Tx) {
		ver.AddAtCommit(tx, 100)
		tx.Abort(0x7f)
	})
	if ok || ab.Cause != CauseExplicit {
		t.Fatalf("explicit abort not reported: ok=%v ab=%+v", ok, ab)
	}
	if got := ver.Get(nil); got != 3 {
		t.Fatalf("ver after aborted tx = %d, want 3", got)
	}
	// Outside a transaction it degenerates to a plain Add.
	ver.AddAtCommit(nil, 4)
	if got := ver.Get(nil); got != 7 {
		t.Fatalf("ver after non-tx AddAtCommit = %d, want 7", got)
	}
}

// TestAddAtCommitDoesNotJoinReadSet verifies the motivating property:
// a transaction that only AddAtCommits a hot cell is not invalidated by
// another thread's committed bump of that cell, whereas a Get-based
// increment would be.
func TestAddAtCommitDoesNotJoinReadSet(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	t1, t2 := tm.NewThread(), tm.NewThread()
	var ver, a, b Word
	ok, ab := t1.Atomic(PathFast, func(tx *Tx) {
		a.Set(tx, 1)
		ver.AddAtCommit(tx, 1)
		// A concurrent committed update to ver must not conflict with us.
		if ok2, _ := t2.Atomic(PathFast, func(tx2 *Tx) {
			b.Set(tx2, 1)
			ver.AddAtCommit(tx2, 1)
		}); !ok2 {
			t.Error("inner transaction aborted")
		}
	})
	if !ok {
		t.Fatalf("outer transaction aborted: %+v", ab)
	}
	if got := ver.Get(nil); got != 2 {
		t.Fatalf("ver = %d, want 2", got)
	}
}

func TestAddAtCommitConcurrent(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	var ver Word
	const (
		goroutines = 4
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := tm.NewThread()
			var scratch Word
			for i := 0; i < perG; i++ {
				for {
					ok, _ := th.Atomic(PathFast, func(tx *Tx) {
						scratch.Set(tx, uint64(i))
						ver.AddAtCommit(tx, 1)
					})
					if ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := ver.Get(nil); got != goroutines*perG {
		t.Fatalf("ver = %d, want %d", got, goroutines*perG)
	}
}

func TestAddAtCommitMisusePanics(t *testing.T) {
	t.Parallel()
	tm := New(Config{})
	th := tm.NewThread()
	var w Word
	expectPanic := func(name string, fn func(tx *Tx)) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
			th.inTx = false // unwind bypassed Atomic's bookkeeping
		}()
		th.Atomic(PathFast, fn)
	}
	expectPanic("read after AddAtCommit", func(tx *Tx) {
		w.AddAtCommit(tx, 1)
		w.Get(tx)
	})
	expectPanic("Set after AddAtCommit", func(tx *Tx) {
		w.AddAtCommit(tx, 1)
		w.Set(tx, 5)
	})
	expectPanic("AddAtCommit after Set", func(tx *Tx) {
		w.Set(tx, 5)
		w.AddAtCommit(tx, 1)
	})
}
