package htm

import (
	"fmt"
	"sync/atomic"

	"htmtree/internal/fault"
)

// PathKind identifies the execution path a transaction (or operation) ran
// on, for statistics. It mirrors the three-path vocabulary of the paper.
type PathKind uint8

// Execution paths.
const (
	PathFast PathKind = iota + 1
	PathMiddle
	PathFallback

	// NumPaths is the size of per-path counter arrays: index 0 is unused
	// so the path constants can start at one.
	NumPaths = 4
)

// String returns the paper's name for the path.
func (p PathKind) String() string {
	switch p {
	case PathFast:
		return "fast"
	case PathMiddle:
		return "middle"
	case PathFallback:
		return "fallback"
	default:
		return fmt.Sprintf("path(%d)", uint8(p))
	}
}

// AbortCause classifies why a transaction aborted, mirroring the RTM
// status word.
type AbortCause uint8

// Abort causes.
const (
	CauseNone     AbortCause = iota // committed
	CauseExplicit                   // Tx.Abort was invoked (xabort)
	CauseConflict                   // read/write conflict with another thread
	CauseCapacity                   // read or write set exceeded capacity
	CauseSpurious                   // injected best-effort failure

	// NumCauses is the size of per-cause counter arrays.
	NumCauses = 5
)

// String returns a short name for the cause.
func (c AbortCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseExplicit:
		return "explicit"
	case CauseConflict:
		return "conflict"
	case CauseCapacity:
		return "capacity"
	case CauseSpurious:
		return "spurious"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// Abort describes the outcome of an aborted transaction: the cause, plus
// the user code passed to Tx.Abort for explicit aborts (like the xabort
// immediate on Intel hardware).
type Abort struct {
	Cause AbortCause
	Code  uint8
}

// Stats counts transaction outcomes per execution path.
type Stats struct {
	Commits [NumPaths]uint64
	Aborts  [NumPaths][NumCauses]uint64
}

func (s *Stats) add(o *Stats) {
	for p := 0; p < NumPaths; p++ {
		s.Commits[p] += atomic.LoadUint64(&o.Commits[p])
		for c := 0; c < NumCauses; c++ {
			s.Aborts[p][c] += atomic.LoadUint64(&o.Aborts[p][c])
		}
	}
}

// Merge adds another snapshot into s. Unlike add it reads o without
// atomics, so o must be a snapshot (e.g. a TM.Stats result), not a live
// per-thread accumulator.
func (s *Stats) Merge(o Stats) {
	for p := 0; p < NumPaths; p++ {
		s.Commits[p] += o.Commits[p]
		for c := 0; c < NumCauses; c++ {
			s.Aborts[p][c] += o.Aborts[p][c]
		}
	}
}

// TotalAborts returns the number of aborts on path p across all causes.
func (s *Stats) TotalAborts(p PathKind) uint64 {
	var n uint64
	for c := 0; c < NumCauses; c++ {
		n += s.Aborts[p][c]
	}
	return n
}

// Thread is a per-goroutine transactional context. A Thread must not be
// shared between goroutines concurrently.
type Thread struct {
	tm    *TM
	id    int
	rng   uint64
	tx    Tx
	inTx  bool
	stats Stats
	// helper runs a TM-announced operation on this thread's behalf
	// (SetHelper); helping guards against reentrant helping.
	helper  func(Announced) bool
	helping bool
	// faults caches the TM's fault plan (Config.Faults) so the
	// per-access injection check is one field load and branch.
	faults *fault.Plan
}

// ID returns the thread's registration index within its TM.
func (th *Thread) ID() int { return th.id }

// TM returns the transactional memory this thread belongs to.
func (th *Thread) TM() *TM { return th.tm }

// Stats returns a snapshot of this thread's transaction statistics. The
// counters are read through the same atomic path the owning goroutine
// writes them with, so a reporting goroutine may call this concurrently
// with transaction activity.
func (th *Thread) Stats() Stats {
	var s Stats
	s.add(&th.stats)
	return s
}

// next returns the next value of the thread's splitmix64 PRNG.
func (th *Thread) next() uint64 {
	th.rng += 0x9e3779b97f4a7c15
	z := th.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Faults returns the thread's armed fault plan, if any (nil otherwise).
func (th *Thread) Faults() *fault.Plan { return th.faults }

// txAbort is the panic payload used to unwind an aborting transaction.
// It never escapes Thread.Atomic.
type txAbort struct {
	cause AbortCause
	code  uint8
}

type readEntry struct {
	ver  *atomic.Uint64
	seen uint64
}

type writeEntry struct {
	c cell
	// ver caches c.version(): the address of the cell's version word,
	// unique per cell, so write-set membership scans compare one pointer
	// instead of two interface words (runtime.ifaceeq showed up as the
	// single hottest function once aggregate maintenance grew the write
	// set to ~2 entries per tree level).
	ver     *atomic.Uint64
	word    uint64
	ptr     any
	isPtr   bool
	isAdd   bool // word is a commutative delta applied at commit (AddAtCommit)
	prevVer uint64
}

// Tx is a single transaction attempt. It is only valid inside the
// function passed to Thread.Atomic and must not be retained.
type Tx struct {
	th     *Thread
	rv     uint64
	reads  []readEntry
	writes []writeEntry
	path   PathKind
}

// Path returns the execution path label this transaction was started
// under.
func (tx *Tx) Path() PathKind { return tx.path }

// reset clears the transaction log for a new attempt. The snapshot (rv)
// is established afterwards by the backend's Begin.
func (tx *Tx) reset(path PathKind) {
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.path = path
}

// drop forgets the logged accesses of an abandoned attempt. The write
// set buffers ptr values and the per-thread Tx lives as long as the
// thread, so the entries must be zeroed — not just truncated — or the
// dead attempt would pin arbitrary nodes against reclamation.
func (tx *Tx) drop() {
	clear(tx.reads[:cap(tx.reads)])
	clear(tx.writes[:cap(tx.writes)])
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
}

// Abort explicitly aborts the transaction with a user code, like the
// xabort instruction. It does not return.
func (tx *Tx) Abort(code uint8) {
	panic(txAbort{cause: CauseExplicit, code: code})
}

// abort aborts the transaction for an internal reason. It does not
// return.
func (tx *Tx) abort(cause AbortCause) {
	panic(txAbort{cause: cause})
}

// maybeSpurious injects a spurious abort with the configured probability,
// and gives an armed fault plan its shot at forcing an abort by cause
// (fault.PointTxAccess — the chaos harness's abort storm).
func (tx *Tx) maybeSpurious() {
	every := tx.th.tm.cfg.SpuriousEvery
	if every != 0 && tx.th.next()%every == 0 {
		tx.abort(CauseSpurious)
	}
	if p := tx.th.faults; p != nil {
		if eff, ok := p.At(fault.PointTxAccess); ok {
			cause := CauseSpurious
			if eff.Cause != 0 {
				cause = AbortCause(eff.Cause)
			}
			tx.abort(cause)
		}
	}
}

// readVersion loads a cell version for a transactional read, spinning
// briefly on locked cells (a commit in flight) and aborting on conflict
// or snapshot violation.
func (tx *Tx) readVersion(ver *atomic.Uint64) uint64 {
	spin := tx.th.tm.cfg.LockSpin
	for i := 0; ; i++ {
		v := ver.Load()
		if v&lockBit == 0 {
			if v>>1 > tx.rv {
				// Written after this transaction began: the snapshot
				// cannot be extended, so this is a data conflict.
				tx.abort(CauseConflict)
			}
			return v
		}
		if i >= spin {
			tx.abort(CauseConflict)
		}
	}
}

// admitRead vets a read-set append with the TM's backend. The simulator
// is special-cased so the per-access hot path stays devirtualized.
func (tx *Tx) admitRead() {
	if tx.th.tm.sim {
		tx.maybeSpurious()
		if len(tx.reads) >= tx.th.tm.cfg.ReadCapacity {
			tx.abort(CauseCapacity)
		}
		return
	}
	tx.th.tm.backend.Admit(tx, false, len(tx.reads))
}

// admitWrite is admitRead for the write set. n is the entry count the
// access needs admitted: the set's size for an append, the entry's index
// for an overwrite (which never grows the footprint, so it can only
// abort spuriously).
func (tx *Tx) admitWrite(n int) {
	if tx.th.tm.sim {
		tx.maybeSpurious()
		if n >= tx.th.tm.cfg.WriteCapacity {
			tx.abort(CauseCapacity)
		}
		return
	}
	tx.th.tm.backend.Admit(tx, true, n)
}

func (tx *Tx) logRead(ver *atomic.Uint64, seen uint64) {
	tx.admitRead()
	tx.reads = append(tx.reads, readEntry{ver: ver, seen: seen})
}

// logWrite, logAdd and findWrite take the cell's version-word address
// from the caller (a concrete field access) rather than calling
// c.version() through the interface: the scans run on every
// transactional access, so both the dynamic dispatch and the interface
// comparison it would take to dedup entries are measurable.
func (tx *Tx) logWrite(c cell, ver *atomic.Uint64, word uint64, ptr any, isPtr bool) {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].ver == ver {
			if tx.writes[i].isAdd {
				panic("htm: Set on a cell with a pending AddAtCommit")
			}
			tx.admitWrite(i)
			tx.writes[i].word = word
			tx.writes[i].ptr = ptr
			return
		}
	}
	tx.admitWrite(len(tx.writes))
	tx.writes = append(tx.writes, writeEntry{c: c, ver: ver, word: word, ptr: ptr, isPtr: isPtr})
}

// logAdd queues a commutative increment (see Word.AddAtCommit). Repeated
// adds to the same cell accumulate; mixing with Set is unsupported.
func (tx *Tx) logAdd(c cell, ver *atomic.Uint64, delta uint64) {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].ver == ver {
			if !tx.writes[i].isAdd {
				panic("htm: AddAtCommit on a cell already written in this transaction")
			}
			tx.admitWrite(i)
			tx.writes[i].word += delta
			return
		}
	}
	tx.admitWrite(len(tx.writes))
	tx.writes = append(tx.writes, writeEntry{c: c, ver: ver, word: delta, isAdd: true})
}

// findWrite reports whether the cell with the given version word is in
// the write set and returns its entry. A cell with a pending commutative
// increment cannot be read back (its final value is only known at
// commit).
func (tx *Tx) findWrite(ver *atomic.Uint64) (*writeEntry, bool) {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].ver == ver {
			if tx.writes[i].isAdd {
				panic("htm: transactional read of a cell with a pending AddAtCommit")
			}
			return &tx.writes[i], true
		}
	}
	return nil, false
}

// ownsLock reports whether ver is the version word of a cell in the
// write set (and therefore locked by this transaction during commit).
func (tx *Tx) ownsLock(ver *atomic.Uint64) bool {
	for i := range tx.writes {
		if tx.writes[i].ver == ver {
			return true
		}
	}
	return false
}

// releaseLocks unlocks the first n write-set cells, restoring their
// pre-lock versions.
func (tx *Tx) releaseLocks(n int) {
	for i := 0; i < n; i++ {
		w := &tx.writes[i]
		w.ver.Store(w.prevVer)
	}
}

// commit attempts to commit the transaction, returning CauseNone on
// success.
func (tx *Tx) commit() AbortCause {
	if len(tx.writes) == 0 {
		// Read-only transactions are consistent at rv by construction.
		return CauseNone
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		ver := w.ver
		v := ver.Load()
		if v&lockBit != 0 || !ver.CompareAndSwap(v, v|lockBit) {
			// Abort rather than wait: this is how HTM resolves
			// write-write contention.
			tx.releaseLocks(i)
			return CauseConflict
		}
		w.prevVer = v
	}
	wv := tx.th.tm.clock.tick()
	if wv != tx.rv+1 {
		// Some other write (transactional or not) happened since begin:
		// the read set must be validated.
		for i := range tx.reads {
			rd := &tx.reads[i]
			v := rd.ver.Load()
			if v == rd.seen {
				continue
			}
			if v == rd.seen|lockBit && tx.ownsLock(rd.ver) {
				continue
			}
			tx.releaseLocks(len(tx.writes))
			return CauseConflict
		}
	}
	nv := wv << 1
	for i := range tx.writes {
		w := &tx.writes[i]
		switch {
		case w.isAdd:
			w.c.applyAdd(w.word)
		case w.isPtr:
			w.c.applyPtr(w.ptr)
		default:
			w.c.applyWord(w.word)
		}
		w.ver.Store(nv)
	}
	return CauseNone
}

// Atomic runs fn as a single transaction attempt on the given path and
// reports whether it committed, together with the abort details
// otherwise. Like hardware transactions, an attempt that aborts has no
// effect on shared memory; unlike hardware, fn is re-entered from the top
// only if the caller retries.
//
// fn must not start nested transactions, perform non-transactional cell
// operations, or retain tx. Panics other than transaction aborts
// propagate to the caller.
func (th *Thread) Atomic(path PathKind, fn func(tx *Tx)) (bool, Abort) {
	if th.inTx {
		panic("htm: nested transaction")
	}
	th.inTx = true
	tx := &th.tx
	tx.reset(path)
	th.tm.backend.Begin(tx)
	cause, code := th.runTx(tx, fn)
	th.tm.backend.End(tx, cause == CauseNone)
	th.inTx = false
	if cause == CauseNone {
		atomic.AddUint64(&th.stats.Commits[path], 1)
		return true, Abort{}
	}
	atomic.AddUint64(&th.stats.Aborts[path][cause], 1)
	return false, Abort{Cause: cause, Code: code}
}

// runTx executes fn and commit, translating abort panics into a cause.
func (th *Thread) runTx(tx *Tx, fn func(tx *Tx)) (cause AbortCause, code uint8) {
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(txAbort)
			if !ok {
				// A foreign panic is unwinding the attempt past Atomic:
				// tear the attempt down here, since Atomic's post-call
				// code will never run. drop (rather than wait for the
				// next reset) so the dead write set's ptr entries don't
				// pin nodes against reclamation on a thread that never
				// transacts again.
				tx.drop()
				th.tm.backend.End(tx, false)
				th.inTx = false
				panic(r)
			}
			cause, code = a.cause, a.code
		}
	}()
	fn(tx)
	return th.tm.backend.Commit(tx), 0
}
