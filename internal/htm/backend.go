package htm

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Backend is the transactional-memory implementation behind a TM: how a
// transaction begins, which accesses it admits, how it commits, and how
// an attempt — committed or aborted — is torn down. Thread.Atomic and
// the transaction log drive whichever Backend the TM was built with, so
// the execution-path policies layered on top (internal/engine) are
// backend-agnostic.
//
// The contract mirrors a hardware TM attempt:
//
//   - Begin is called once per attempt, after the transaction log has
//     been cleared, and must establish the attempt's snapshot (for the
//     simulator, read the version clock into tx.rv).
//   - Admit is called before each transactional access is appended to
//     the read or write set (write says which; n is the set's current
//     size). It either returns, admitting the access, or aborts the
//     attempt by panicking through tx.abort — this is where capacity
//     limits and injected spurious failures live.
//   - Commit is called after the transaction body returns normally. It
//     returns CauseNone on success or the abort cause otherwise, and on
//     failure must leave shared memory untouched (attempts are all-or-
//     nothing, like XBEGIN/XEND).
//   - End is called exactly once per attempt, after commit or abort —
//     including aborts raised by foreign panics unwinding the body — so
//     a backend that acquired a resource in Begin can always release it.
//
// Implementations must be safe for concurrent use by all threads of
// their TM; per-attempt state belongs on the Tx.
//
// # Native RTM seam
//
// A real hardware backend (Intel RTM via XBEGIN/XEND, or POWER tbegin.)
// would slot in here as a third implementation with Begin issuing the
// begin instruction through a //go:noescape assembly stub (e.g.
// rtm_amd64.s behind a build tag), Admit a no-op (the cache tracks the
// working set), Commit issuing XEND, and the abort status word decoded
// into an Abort{Cause, Code} — _XABORT_CONFLICT → CauseConflict,
// _XABORT_CAPACITY → CauseCapacity, _XABORT_EXPLICIT → CauseExplicit
// with the xabort immediate in Code, anything else → CauseSpurious.
// The blocker is not this seam but Go itself: goroutines migrate OS
// threads at preemption points, and an open hardware transaction cannot
// survive a migration, so a native backend additionally needs
// runtime.LockOSThread bracketing and a guarantee of no function calls
// that might grow the stack inside the transaction body.
type Backend interface {
	// Name identifies the backend in diagnostics and benchmark output.
	Name() string
	// Begin starts one attempt (establish the snapshot, acquire any
	// backend-wide resource).
	Begin(tx *Tx)
	// Admit vets one transactional access before it joins the read
	// (write=false) or write (write=true) set of current size n; it
	// aborts the attempt via tx.abort instead of returning to reject it.
	Admit(tx *Tx, write bool, n int)
	// Commit attempts to make the buffered write set visible atomically,
	// returning CauseNone on success.
	Commit(tx *Tx) AbortCause
	// End tears down the attempt; committed reports whether Commit
	// succeeded. Called exactly once per Begin, on every exit route.
	End(tx *Tx, committed bool)
	// Announce notifies the backend that a fallback operation was
	// announced in the TM's slot (a != nil) or retracted (a == nil),
	// bracketing the window in which blocked threads should help
	// instead of waiting. Calls are balanced: one nil per non-nil.
	Announce(a Announced)
	// Help runs the TM's announced operation, if any, on behalf of th,
	// reporting whether it helped. Backends that can block in Begin
	// call th.runHelp while waiting; this method is the engine-facing
	// entry used by retry policies (via Thread.Help).
	Help(th *Thread) bool
}

// BackendKind selects one of the built-in Backend implementations.
type BackendKind uint8

// Built-in backends.
const (
	// BackendSim is the default TL2-flavoured simulator: optimistic
	// per-cell versioning with configurable capacity limits and spurious
	// abort injection (see the package comment).
	BackendSim BackendKind = iota
	// BackendTLELock runs every transaction of the TM under a single
	// mutex — transactional lock elision without the elision, the
	// classic software substitute on machines with no TM at all.
	// Transactions never conflict with each other and have no footprint
	// limit, so capacity and spurious aborts cannot occur; commit still
	// runs the simulator's versioned protocol so transactions stay
	// strongly atomic with respect to non-transactional cell operations
	// (fallback-path code does not take the mutex).
	BackendTLELock
)

// String returns the backend's name.
func (k BackendKind) String() string {
	switch k {
	case BackendTLELock:
		return "tle-lock"
	default:
		return "sim"
	}
}

// simBackend is the TL2-flavoured simulator described in the package
// comment. It is stateless (everything lives on the TM and Tx), so one
// shared instance serves every TM. The hot-path transaction log
// bypasses the interface for this backend (TM.sim) to keep
// transactional accesses devirtualized and allocation-free.
type simBackend struct{}

func (simBackend) Name() string { return "sim" }

func (simBackend) Begin(tx *Tx) { tx.rv = tx.th.tm.clock.Now() }

func (simBackend) Admit(tx *Tx, write bool, n int) {
	tx.maybeSpurious()
	limit := tx.th.tm.cfg.ReadCapacity
	if write {
		limit = tx.th.tm.cfg.WriteCapacity
	}
	if n >= limit {
		tx.abort(CauseCapacity)
	}
}

func (simBackend) Commit(tx *Tx) AbortCause { return tx.commit() }

func (simBackend) End(*Tx, bool) {}

// Announce is a no-op: the simulator never blocks, so it has no waiters
// to redirect; helping for the simulated backend is driven entirely at
// the engine layer (a thread that finds the fallback lock word set
// helps via Thread.Help between attempts).
func (simBackend) Announce(Announced) {}

// Help runs the announced operation on th's behalf. The simulator
// itself never calls this (it has no blocking point); it exists for the
// engine-facing Thread.Help entry.
func (simBackend) Help(th *Thread) bool { return th.runHelp() }

// tleLockBackend implements BackendTLELock: a per-TM mutex held for the
// whole attempt. See the BackendTLELock docs for the semantics.
type tleLockBackend struct {
	mu sync.Mutex
	// announced counts announced-but-not-retracted fallback operations
	// (0 or 1 in practice; balanced Announce calls keep it exact). When
	// nonzero, Begin switches from blocking on the mutex to a
	// try-lock/help loop so a thread serialized behind the lock spends
	// its wait completing the announced operation.
	announced atomic.Int32
}

func (b *tleLockBackend) Name() string { return "tle-lock" }

func (b *tleLockBackend) Begin(tx *Tx) {
	if b.announced.Load() > 0 {
		for !b.mu.TryLock() {
			if !tx.th.runHelp() {
				runtime.Gosched()
			}
		}
	} else {
		b.mu.Lock()
	}
	tx.rv = tx.th.tm.clock.Now()
}

// Admit admits everything: a mutex has no footprint limit, and the
// injected-failure model belongs to the simulator.
func (b *tleLockBackend) Admit(*Tx, bool, int) {}

// Commit runs the versioned commit even though no other transaction can
// be in flight: non-transactional cell operations on the fallback path
// do not take the mutex, so the version-clock protocol is still what
// provides strong atomicity against them (and conflict aborts remain
// possible for exactly that reason).
func (b *tleLockBackend) Commit(tx *Tx) AbortCause { return tx.commit() }

func (b *tleLockBackend) End(*Tx, bool) { b.mu.Unlock() }

// Announce tracks the announcement window (see the announced field).
func (b *tleLockBackend) Announce(a Announced) {
	if a != nil {
		b.announced.Add(1)
	} else {
		b.announced.Add(-1)
	}
}

// Help runs the announced operation on th's behalf (engine-facing
// entry; Begin's wait loop calls runHelp directly).
func (b *tleLockBackend) Help(th *Thread) bool { return th.runHelp() }

// NewBackend returns a fresh instance of a built-in backend. Backends
// carry per-TM state (the TLE mutex), so every TM needs its own value.
func NewBackend(k BackendKind) Backend {
	switch k {
	case BackendTLELock:
		return &tleLockBackend{}
	default:
		return simBackend{}
	}
}
