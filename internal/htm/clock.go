package htm

import "sync/atomic"

// Clock is a version clock owned by a TM instance. Transactions snapshot
// it at begin and advance it at commit; non-transactional cell mutations
// advance it through the cell's binding (see Word.Bind). Each TM carries
// its own clock, so trees built on separate TM instances — in particular
// the shards of a sharded dictionary — never contend on a shared
// version-clock cache line. Only cells bound to the same clock form one
// synchronization domain: transactions of a TM must only access cells
// bound to that TM's clock.
//
// The counter is padded to a cache line on both sides so that clocks
// embedded next to other hot state (and next to each other in slices)
// never false-share.
type Clock struct {
	_ [64]byte
	v atomic.Uint64
	_ [64 - 8]byte
}

// NewClock returns a free-standing clock for cells used outside any TM
// (software-only tests and structures). Cells that transactions of a TM
// access must instead be bound to that TM's clock (TM.Clock).
func NewClock() *Clock { return &Clock{} }

// Now returns the clock's current value.
func (c *Clock) Now() uint64 { return c.v.Load() }

// tick advances the clock and returns the new value.
func (c *Clock) tick() uint64 { return c.v.Add(1) }
